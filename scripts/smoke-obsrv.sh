#!/bin/sh
# Smoke test of the replayd observability endpoints: boot a backup with
# -http, scrape /metrics and /healthz, and fail on any non-200 response
# or a /metrics body with no replay_* series. No primary is involved —
# an idle, listening backup must already serve everything.
set -eu

BIN="${TMPDIR:-/tmp}/replayd-smoke-$$"
LOG="${TMPDIR:-/tmp}/replayd-smoke-$$.log"
go build -o "$BIN" ./cmd/replayd

"$BIN" backup -listen 127.0.0.1:17070 -http 127.0.0.1:19090 -workers 2 >"$LOG" 2>&1 &
PID=$!
cleanup() {
    kill "$PID" 2>/dev/null || true
    wait "$PID" 2>/dev/null || true
    rm -f "$BIN" "$LOG"
}
trap cleanup EXIT INT TERM

fetch() {
    # curl or wget, whichever the runner has.
    if command -v curl >/dev/null 2>&1; then
        curl -fsS "$1"
    else
        wget -q -O - "$1"
    fi
}

# Wait for the HTTP listener (the process prints its address once up).
up=""
for _ in $(seq 1 50); do
    if fetch http://127.0.0.1:19090/healthz >/dev/null 2>&1; then
        up=1
        break
    fi
    if ! kill -0 "$PID" 2>/dev/null; then
        echo "replayd exited during startup:" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 0.2
done
if [ -z "$up" ]; then
    echo "observability endpoint never came up:" >&2
    cat "$LOG" >&2
    exit 1
fi

health=$(fetch http://127.0.0.1:19090/healthz)
echo "$health" | grep -q '"healthy": true' || {
    echo "unhealthy /healthz: $health" >&2
    exit 1
}

metrics=$(fetch http://127.0.0.1:19090/metrics)
echo "$metrics" | grep -q '^replay_' || {
    echo "/metrics has no replay_* series:" >&2
    echo "$metrics" >&2
    exit 1
}
echo "$metrics" | grep -q '^# TYPE replay_commit_seconds histogram' || {
    echo "/metrics missing the commit latency histogram" >&2
    exit 1
}

fetch http://127.0.0.1:19090/varz | grep -q '"health"' || {
    echo "/varz missing health document" >&2
    exit 1
}

echo "obsrv smoke: ok"
