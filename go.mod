module aets

go 1.22
