// Operations: running a backup node like an operator would — replay with
// AETS, serve snapshot queries through the executor, bound memory with
// version-chain vacuuming, cut a checkpoint, and fail over to a second
// node that restores the checkpoint and resumes the epoch stream.
//
// Run with: go run ./examples/operations
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"aets/internal/grouping"
	"aets/internal/htap"
	"aets/internal/primary"
	"aets/internal/workload"
)

func main() {
	gen := workload.NewTPCC(4)
	p := primary.New(gen, 7)
	encs := p.GenerateEncoded(20000, 1024)
	plan := grouping.Build(htap.TPCCRates(1000),
		workload.TableIDs(gen.Tables()), grouping.Options{Eps: 0.05, MinPts: 2})

	// --- Node A: replay the first half of the stream -----------------------
	nodeA, err := htap.NewNode(htap.KindAETS, plan, htap.Options{Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	half := len(encs) / 2
	for i := 0; i < half; i++ {
		if err := nodeA.Feed(&encs[i]); err != nil {
			log.Fatal(err)
		}
	}
	nodeA.Drain()

	// Serve a snapshot query at the freshest visible state.
	snap := nodeA.Query(0, workload.TPCCOrderLine)
	rows, _ := snap.Count(workload.TPCCOrderLine)
	maxTS, _ := snap.MaxCommitTS(workload.TPCCOrderLine)
	fmt.Printf("node A: %d order_line rows visible, freshest commit ts %d\n", rows, maxTS)

	// Bound version-chain memory: retain only what queries at the visible
	// timestamp can still request.
	before := nodeA.Memtable().Table(workload.TPCCStock).VersionCount()
	removed := nodeA.Vacuum(nodeA.VisibleTS())
	after := nodeA.Memtable().Table(workload.TPCCStock).VersionCount()
	fmt.Printf("node A: vacuum pruned %d versions (stock table: %d → %d)\n", removed, before, after)

	// Cut a checkpoint and retire node A.
	var ckpt bytes.Buffer
	meta, err := nodeA.Checkpoint(&ckpt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("node A: checkpoint at epoch %d, %d KiB\n", meta.LastEpochSeq, ckpt.Len()/1024)
	if err := nodeA.Close(); err != nil {
		log.Fatal(err)
	}

	// --- Node B: restore and resume ---------------------------------------
	nodeB, restored, err := htap.RestoreNode(&ckpt, htap.KindAETS, plan, htap.Options{Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer nodeB.Close()
	fmt.Printf("node B: restored to epoch %d (visible ts %d), resuming stream\n",
		restored.LastEpochSeq, nodeB.VisibleTS())

	stop := nodeB.StartVacuumLoop(epochVacuumEvery, 2_000_000) // keep ~2000 txns of history
	defer stop()

	for i := half; i < len(encs); i++ {
		if err := nodeB.Feed(&encs[i]); err != nil {
			log.Fatal(err)
		}
	}
	nodeB.Drain()

	snap = nodeB.Query(p.LastCommitTS(), workload.TPCCOrderLine, workload.TPCCCustomer)
	rows, _ = snap.Count(workload.TPCCOrderLine)
	fmt.Printf("node B: caught up — %d order_line rows at primary ts %d\n", rows, p.LastCommitTS())
}

// epochVacuumEvery is how often the background vacuum fires.
const epochVacuumEvery = 50 * time.Millisecond
