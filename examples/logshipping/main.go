// Log shipping: a primary and a backup in one process connected by a real
// TCP socket, exercising the same wire protocol as cmd/replayd. The
// primary executes TPC-C and streams epochs; the backup replays them with
// AETS while a reader polls visibility.
//
// Run with: go run ./examples/logshipping
package main

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"log"
	"net"
	"time"

	"aets/internal/epoch"
	"aets/internal/grouping"
	"aets/internal/htap"
	"aets/internal/memtable"
	"aets/internal/primary"
	"aets/internal/workload"
)

const txns = 20000

func main() {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	addr := ln.Addr().String()
	fmt.Printf("backup listening on %s\n", addr)

	done := make(chan error, 1)
	go func() { done <- backup(ln) }()

	if err := ship(addr); err != nil {
		log.Fatal(err)
	}
	if err := <-done; err != nil {
		log.Fatal(err)
	}
}

// ship is the primary: generate, encode, stream.
func ship(addr string) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	w := bufio.NewWriterSize(conn, 1<<20)

	p := primary.New(workload.NewTPCC(8), 1)
	encs := p.GenerateEncoded(txns, 2048)
	for i := range encs {
		if err := writeEpoch(w, &encs[i]); err != nil {
			return err
		}
	}
	fmt.Printf("primary: shipped %d epochs (%d txns)\n", len(encs), txns)
	return w.Flush()
}

// backup receives the stream and replays it with AETS.
func backup(ln net.Listener) error {
	conn, err := ln.Accept()
	if err != nil {
		return err
	}
	defer conn.Close()

	gen := workload.NewTPCC(8)
	plan := grouping.Build(htap.TPCCRates(1000), workload.TableIDs(gen.Tables()),
		grouping.Options{Eps: 0.05, MinPts: 2})
	mt := memtable.New()
	r, err := htap.NewReplayer(htap.KindAETS, mt, plan, htap.Options{Workers: 4})
	if err != nil {
		return err
	}
	r.Start()
	defer r.Stop()

	br := bufio.NewReaderSize(conn, 1<<20)
	start := time.Now()
	var got int
	for {
		enc, err := readEpoch(br)
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		got += enc.TxnCount
		r.Feed(enc)
	}
	r.Drain()
	if err := r.Err(); err != nil {
		return err
	}
	elapsed := time.Since(start)
	fmt.Printf("backup: replayed %d txns in %v (%.0f txns/s), visible ts %d, order_line rows %d\n",
		got, elapsed.Round(time.Millisecond), float64(got)/elapsed.Seconds(),
		r.GlobalTS(), mt.Table(workload.TPCCOrderLine).Len())
	return nil
}

// The replayd wire format: header + epoch payload, little endian.

func writeEpoch(w io.Writer, enc *epoch.Encoded) error {
	var hdr [36]byte
	binary.LittleEndian.PutUint64(hdr[0:], enc.Seq)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(enc.TxnCount))
	binary.LittleEndian.PutUint64(hdr[12:], enc.LastTxnID)
	binary.LittleEndian.PutUint64(hdr[20:], uint64(enc.LastCommitTS))
	binary.LittleEndian.PutUint32(hdr[28:], uint32(enc.EntryCount))
	binary.LittleEndian.PutUint32(hdr[32:], uint32(len(enc.Buf)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(enc.Buf)
	return err
}

func readEpoch(r io.Reader) (*epoch.Encoded, error) {
	var hdr [36]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	enc := &epoch.Encoded{
		Seq:          binary.LittleEndian.Uint64(hdr[0:]),
		TxnCount:     int(binary.LittleEndian.Uint32(hdr[8:])),
		LastTxnID:    binary.LittleEndian.Uint64(hdr[12:]),
		LastCommitTS: int64(binary.LittleEndian.Uint64(hdr[20:])),
		EntryCount:   int(binary.LittleEndian.Uint32(hdr[28:])),
	}
	n := binary.LittleEndian.Uint32(hdr[32:])
	if n > 0 {
		enc.Buf = make([]byte, n)
		if _, err := io.ReadFull(r, enc.Buf); err != nil {
			return nil, err
		}
	}
	return enc, nil
}
