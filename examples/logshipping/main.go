// Log shipping: a primary and a backup in one process connected by a
// real TCP socket, using the internal/ship replication transport — the
// same protocol as cmd/replayd. The primary executes TPC-C and streams
// epochs through a fault-injected connection that is severed mid-epoch;
// the sender reconnects, the handshake resumes from the backup's
// cursor, and the backup replays everything exactly once with AETS.
// While the stream runs, the backup's observability endpoints are live
// on a loopback port; the example scrapes its own /healthz at the end.
//
// Run with: go run ./examples/logshipping
package main

import (
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"time"

	"aets/internal/grouping"
	"aets/internal/htap"
	"aets/internal/metrics"
	"aets/internal/obsrv"
	"aets/internal/primary"
	"aets/internal/ship"
	"aets/internal/workload"
)

const txns = 20000

func main() {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	addr := ln.Addr().String()
	fmt.Printf("backup listening on %s\n", addr)

	done := make(chan error, 1)
	go func() { done <- backup(ln) }()

	if err := shipEpochs(addr); err != nil {
		log.Fatal(err)
	}
	if err := <-done; err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shipping metrics: %s\n", metrics.Default.Line("ship_"))
}

func schema() uint64 {
	gen := workload.NewTPCC(8)
	return ship.SchemaHash("tpcc", workload.TableIDs(gen.Tables()))
}

// shipEpochs is the primary: generate, encode, stream — through a
// connection that is deliberately cut 300 KB into the stream to show
// reconnect and cursor-based resume.
func shipEpochs(addr string) error {
	dial := ship.FaultDialer(
		func() (net.Conn, error) { return net.Dial("tcp", addr) },
		func(i int) ship.FaultOpts {
			if i == 0 {
				return ship.FaultOpts{CutWriteAfter: 300_000} // sever mid-epoch
			}
			return ship.FaultOpts{}
		})
	s, err := ship.NewSender(ship.SenderConfig{
		Dial:      dial,
		Schema:    schema(),
		Window:    8,
		RetryBase: 5 * time.Millisecond,
		Metrics:   ship.NewMetrics(metrics.Default),
	})
	if err != nil {
		return err
	}

	p := primary.New(workload.NewTPCC(8), 1)
	encs := p.GenerateEncoded(txns, 2048)
	for i := range encs {
		if err := s.Send(&encs[i]); err != nil {
			return err
		}
	}
	if err := s.Close(); err != nil {
		return err
	}
	st := s.Stats()
	fmt.Printf("primary: shipped %d epochs (%d txns), %d acked, survived %d reconnect(s)\n",
		len(encs), txns, st.Acked, st.Reconnects)
	return nil
}

// backup receives the stream and replays it with AETS, accepting
// connections until the sender signals a clean end of stream.
func backup(ln net.Listener) error {
	gen := workload.NewTPCC(8)
	plan := grouping.Build(htap.TPCCRates(1000), workload.TableIDs(gen.Tables()),
		grouping.Options{Eps: 0.05, MinPts: 2})
	node, err := htap.NewNode(htap.KindAETS, plan, htap.Options{Workers: 4})
	if err != nil {
		return err
	}
	defer node.Close()

	rcv, err := node.ShipReceiver(ship.ReceiverConfig{
		Schema: schema(),
		Drain:  func() error { node.Drain(); return node.Err() },
	})
	if err != nil {
		return err
	}

	// The same endpoint set replayd serves behind -http.
	srv, err := obsrv.Serve("127.0.0.1:0", obsrv.Options{
		Health: node.HealthSource(metrics.Default, func() bool {
			return metrics.Default.Gauge("ship_connected").Load() != 0
		}),
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("backup observability on http://%s\n", srv.Addr())

	start := time.Now()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		done, err := rcv.Serve(conn)
		if err != nil {
			fmt.Printf("backup: stream interrupted (%v), waiting for reconnect at cursor %d\n",
				err, rcv.Cursor())
		}
		if done {
			break
		}
	}
	node.Drain()
	if err := node.Err(); err != nil {
		return err
	}
	st := rcv.Stats()
	elapsed := time.Since(start)
	fmt.Printf("backup: replayed %d txns in %v (%.0f txns/s), %d duplicate epoch(s) dropped, visible ts %d, order_line rows %d\n",
		st.Txns, elapsed.Round(time.Millisecond), float64(st.Txns)/elapsed.Seconds(),
		st.Duplicates, node.VisibleTS(), node.Memtable().Table(workload.TPCCOrderLine).Len())

	resp, err := http.Get("http://" + srv.Addr() + "/healthz")
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Printf("backup: /healthz %d %s", resp.StatusCode, body)
	return nil
}
