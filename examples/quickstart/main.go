// Quickstart: the minimal end-to-end AETS flow.
//
//  1. A simulated primary executes TPC-C transactions and batches their
//     value logs into 2048-transaction epochs.
//  2. An AETS backup engine replays the epochs in two stages: the hot
//     tables the analytical queries read go first.
//  3. An analytical query arrives, waits per Algorithm 3 until its snapshot
//     is visible, and reads a row version from the MVCC Memtable.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"aets/internal/grouping"
	"aets/internal/htap"
	"aets/internal/memtable"
	"aets/internal/primary"
	"aets/internal/wal"
	"aets/internal/workload"
)

func main() {
	// --- Primary side -----------------------------------------------------
	gen := workload.NewTPCC(4)
	p := primary.New(gen, 42)
	epochs := p.GenerateEncoded(10000, 2048)
	fmt.Printf("primary: %d epochs, last commit ts %d\n", len(epochs), p.LastCommitTS())

	// --- Backup side: group plan ------------------------------------------
	// The paper's TPC-C grouping: {district, stock, customer, order} at
	// rate r and {order_line} at 2r are hot; everything else is cold.
	plan := grouping.Build(htap.TPCCRates(1000),
		workload.TableIDs(gen.Tables()),
		grouping.Options{Eps: 0.05, MinPts: 2})
	for _, g := range plan.Groups {
		kind := "cold"
		if g.Hot {
			kind = "hot "
		}
		fmt.Printf("  group %d (%s, rate %5.0f): tables %v\n", g.ID, kind, g.Rate, g.Tables)
	}

	// --- Replay -----------------------------------------------------------
	mt := memtable.New()
	engine := htap.NewAETS(mt, plan, htap.Options{Workers: 8})
	engine.Start()
	defer engine.Stop()

	start := time.Now()
	for i := range epochs {
		if err := engine.Feed(&epochs[i]); err != nil {
			log.Fatal(err)
		}
	}

	// --- A real-time analytical query -------------------------------------
	// OrderStatus reads customer, orders and order_line. Its snapshot is
	// the freshest primary timestamp; Algorithm 3 blocks until every
	// version committed at or before it is visible in those tables.
	qts := p.LastCommitTS()
	queryTables := []wal.TableID{workload.TPCCCustomer, workload.TPCCOrder, workload.TPCCOrderLine}
	t0 := time.Now()
	engine.WaitVisible(qts, queryTables)
	fmt.Printf("query visible after %v (hot tables only — cold may still be replaying)\n",
		time.Since(t0).Round(time.Microsecond))

	// Read the latest version of a customer row at the query snapshot.
	rec := mt.Table(workload.TPCCCustomer).Get(1)
	if rec != nil {
		if v := rec.Visible(qts); v != nil {
			fmt.Printf("customer row 1: version from txn %d, commit ts %d, %d columns\n",
				v.TxnID, v.CommitTS, len(v.Columns))
		}
	}

	engine.Drain()
	if err := engine.Err(); err != nil {
		log.Fatal(err)
	}
	txns, entries := engine.Stats()
	elapsed := time.Since(start)
	fmt.Printf("replayed %d txns (%d entries) in %v — %.0f txns/s\n",
		txns, entries, elapsed.Round(time.Millisecond), float64(txns)/elapsed.Seconds())
}
