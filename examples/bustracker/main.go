// BusTracker: the paper's motivating real-time application. Analytical
// queries predict bus waiting times from fresh position data, but the
// write volume is dominated by logging tables nobody queries. This example
// runs the workload minute by minute with time-varying access rates and
// shows the adaptive machinery end to end:
//
//   - the DTGM predictor forecasts each table's access rate for the next
//     minute;
//   - DBSCAN regroups tables with similar predicted rates;
//   - the λ=log(r) allocator shifts replay workers toward hot groups;
//   - queries on heavily accessed tables see low visibility delays even
//     though 63% of the log volume belongs to cold tables.
//
// Run with: go run ./examples/bustracker
package main

import (
	"fmt"
	"log"

	"aets/internal/htap"
	"aets/internal/workload"
)

func main() {
	bt := workload.NewBusTracker()
	fmt.Printf("BusTracker: %d tables, %d hot, %.1f%% hot log entries\n",
		len(bt.Tables()), len(workload.HotTables(bt.Tables())),
		workload.HotEntryRatio(bt, 5000, 1)*100)

	fmt.Println("\ncurrent access rates of three typical tables:")
	series, ids := bt.RateSeries(4)
	names := map[int]string{}
	for _, t := range bt.Tables() {
		for j, id := range ids {
			if id == t.ID {
				names[j] = t.Name
			}
		}
	}
	for _, j := range []int{0, 4, 9} {
		fmt.Printf("  %-14s %8.0f queries/min\n", names[j], series[0][j])
	}

	cfg := htap.AdaptiveConfig{
		Slots: 6, WarmupSlots: 2, TxnsPerSlot: 2048, EpochSize: 1024,
		Workers: 8, QueriesPerSlot: 48, TrainSlots: 150,
		DTGMHidden: 8, DTGMEpochs: 3, Seed: 7,
	}

	fmt.Println("\nrunning 6 simulated minutes per policy (2 warm-up)...")
	for _, s := range []htap.Strategy{htap.StrategyDTGM, htap.StrategyHA, htap.StrategyNOAC} {
		res, err := htap.RunAdaptive(s, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s mean visibility delay %8.1f us  (per minute:", s, res.Mean())
		for _, v := range res.PerSlotMeanUS {
			fmt.Printf(" %.0f", v)
		}
		fmt.Println(")")
	}
	fmt.Println("\nAETS (DTGM-predicted rates) should sit at or below the")
	fmt.Println("history-only and allocation-blind variants, mirroring Fig 13.")
}
