// CH-benCHmark: per-query visibility delays across the 22 analytical
// queries (the Fig 10 experiment, at example scale). Each written table
// gets its own group, so groups commit in parallel and a query's delay
// depends on which groups it touches: single-table queries (Q1, Q6) see
// the freshest data, while wide joins (Q5, Q8) wait for the slowest of
// their groups per Algorithm 3.
//
// Run with: go run ./examples/chbenchmark
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"aets/internal/htap"
	"aets/internal/workload"
)

func main() {
	exp := htap.Experiment{
		NewGen:     func() workload.Generator { return workload.NewCHBench(8) },
		Rates:      htap.CHRates(workload.NewCHBench(8)),
		PerTable:   true,
		Txns:       8000,
		EpochSize:  1024,
		Workers:    8,
		Queries:    600,
		QueryEvery: 150 * time.Microsecond,
		Seed:       3,
	}

	fmt.Println("replaying CH-benCHmark on AETS and ATR with a live query load...")
	results, err := htap.RunAll([]htap.Kind{htap.KindAETS, htap.KindATR}, exp)
	if err != nil {
		log.Fatal(err)
	}

	aets, atr := results[0], results[1]
	fmt.Printf("\n%-6s %6s %14s %14s\n", "query", "tables", "AETS delay(us)", "ATR delay(us)")
	queries := workload.NewCHBench(8).Queries()
	sort.Slice(queries, func(i, j int) bool { return queries[i].Name < queries[j].Name })
	for _, q := range queries {
		a, b := aets.PerQuery[q.Name], atr.PerQuery[q.Name]
		if a.Count() == 0 && b.Count() == 0 {
			continue
		}
		fmt.Printf("%-6s %6d %14.1f %14.1f\n", q.Name, len(q.Tables), a.Mean(), b.Mean())
	}
	fmt.Printf("\noverall mean: AETS %.1f us vs ATR %.1f us (%d / %d samples)\n",
		aets.Visibility.Mean(), atr.Visibility.Mean(),
		aets.Visibility.Count(), atr.Visibility.Count())
	fmt.Printf("replay throughput: AETS %.0f txns/s vs ATR %.0f txns/s\n",
		aets.Throughput.TxnsPerSec(), atr.Throughput.TxnsPerSec())
}
