package predictor

import (
	"math"
	"testing"

	"aets/internal/workload"
)

func TestHoltWintersBeatsHAOnBusTracker(t *testing.T) {
	bt := workload.NewBusTracker()
	series, _ := bt.RateSeries(700)
	hw := NewHoltWinters(workload.BusDayPeriod)
	m, err := Evaluate(hw, series, 500, 60, 15)
	if err != nil {
		t.Fatal(err)
	}
	haM, _ := Evaluate(NewHA(), series, 500, 60, 15)
	if m >= haM {
		t.Fatalf("Holt-Winters (%.2f%%) should beat HA (%.2f%%) on a seasonal series", m*100, haM*100)
	}
	if math.IsNaN(m) || m > 1 {
		t.Fatalf("MAPE unreasonable: %v", m)
	}
}

func TestHoltWintersPureSeasonal(t *testing.T) {
	// Noise-free seasonal series: forecasts should be near exact.
	const p = 24
	series := make([][]float64, 10*p)
	for s := range series {
		series[s] = []float64{100 + 50*math.Sin(2*math.Pi*float64(s)/p)}
	}
	hw := NewHoltWinters(p)
	m, err := Evaluate(hw, series, 8*p, p, p)
	if err != nil {
		t.Fatal(err)
	}
	if m > 0.05 {
		t.Fatalf("MAPE %.3f on a noise-free seasonal series", m)
	}
}

func TestHoltWintersShortHistoryFallsBack(t *testing.T) {
	hw := NewHoltWinters(48)
	series := synthSeries(30, 2, 3) // far less than 2 periods
	if err := hw.Fit(series); err != nil {
		t.Fatal(err)
	}
	pred := hw.Predict(series, 5)
	if len(pred) != 5 || len(pred[0]) != 2 {
		t.Fatalf("prediction shape %dx%d", len(pred), len(pred[0]))
	}
	for s := range pred {
		for j := range pred[s] {
			if math.IsNaN(pred[s][j]) || pred[s][j] < 0 {
				t.Fatalf("bad value %v", pred[s][j])
			}
		}
	}
}
