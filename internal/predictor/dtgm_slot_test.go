package predictor

import (
	"math"
	"testing"

	"aets/internal/workload"
)

// TestDTGMSlotAnchoring verifies the time-of-cycle feature plumbing: after
// Fit, the model's forecast slot continues from the end of the history and
// advances with each Predict; SetSlot rewinds it for re-evaluation.
func TestDTGMSlotAnchoring(t *testing.T) {
	bt := workload.NewBusTracker()
	series, _ := bt.RateSeries(320)

	cfg := DefaultDTGMConfig(10)
	cfg.Hidden, cfg.Epochs = 8, 3
	d := NewDTGM(bt.AccessGraph(), cfg)
	if err := d.Fit(series[:300]); err != nil {
		t.Fatal(err)
	}

	recent := series[240:300]
	p1 := d.Predict(recent, 10)
	d.SetSlot(300)
	p2 := d.Predict(recent, 10)
	for s := range p1 {
		for j := range p1[s] {
			if math.Abs(p1[s][j]-p2[s][j]) > 1e-9 {
				t.Fatalf("SetSlot did not restore determinism at [%d][%d]: %v vs %v",
					s, j, p1[s][j], p2[s][j])
			}
		}
	}

	// A different anchor slot must change the time features and thus the
	// forecast (at least somewhere).
	d.SetSlot(300 + 36) // half a cycle later (BusDayPeriod=72)
	p3 := d.Predict(recent, 10)
	moved := false
	for s := range p1 {
		for j := range p1[s] {
			if math.Abs(p1[s][j]-p3[s][j]) > 1e-9 {
				moved = true
			}
		}
	}
	if !moved {
		t.Fatal("time-of-cycle features have no effect on the forecast")
	}
}

// TestDTGMWithoutPeriodIgnoresSlot checks the single-channel configuration
// is insensitive to the slot anchor.
func TestDTGMWithoutPeriodIgnoresSlot(t *testing.T) {
	bt := workload.NewBusTracker()
	series, _ := bt.RateSeries(220)
	cfg := DefaultDTGMConfig(5)
	cfg.Hidden, cfg.Epochs, cfg.SlotPeriod = 8, 2, 0
	d := NewDTGM(bt.AccessGraph(), cfg)
	if err := d.Fit(series[:200]); err != nil {
		t.Fatal(err)
	}
	recent := series[140:200]
	p1 := d.Predict(recent, 5)
	d.SetSlot(12345)
	p2 := d.Predict(recent, 5)
	for s := range p1 {
		for j := range p1[s] {
			if p1[s][j] != p2[s][j] {
				t.Fatal("slot anchor leaked into the period-free model")
			}
		}
	}
}
