// Package predictor implements the table access rate predictors of paper
// §IV-A and §VI-G: the proposed DTGM (gated TCN + GCN temporal graph
// model) and the baselines HA (historical average), ARIMA and QB5000
// (equal-weight ensemble of linear regression, LSTM and kernel
// regression). All predictors share one interface: fit on a history matrix
// of per-slot, per-table access rates, then forecast the next horizon
// slots from a recent window.
package predictor

import (
	"fmt"
	"math"
)

// Predictor forecasts per-table access rates.
type Predictor interface {
	// Name returns the model name as used in Table III.
	Name() string
	// Fit trains on history[slot][table]. Implementations must tolerate
	// repeated calls (refitting).
	Fit(history [][]float64) error
	// Predict forecasts the next horizon slots given the most recent
	// observations recent[slot][table] (at least Window slots). The result
	// is indexed [slot][table].
	Predict(recent [][]float64, horizon int) [][]float64
}

// MAPE computes the mean absolute percentage error between actual and
// predicted rate matrices, skipping near-zero actuals (the standard
// convention; a zero actual makes the ratio meaningless).
func MAPE(actual, pred [][]float64) float64 {
	var sum float64
	var n int
	for s := range actual {
		for j := range actual[s] {
			a := actual[s][j]
			if math.Abs(a) < 1e-9 {
				continue
			}
			sum += math.Abs(a-pred[s][j]) / math.Abs(a)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Evaluate fits p on the first trainSlots of series, then walks the rest
// producing horizon-step forecasts every horizon slots, and returns the
// MAPE over all forecast windows — the Table III protocol.
func Evaluate(p Predictor, series [][]float64, trainSlots, window, horizon int) (float64, error) {
	if trainSlots+window+horizon > len(series) {
		return 0, fmt.Errorf("predictor: series too short: %d slots, need %d", len(series), trainSlots+window+horizon)
	}
	if err := p.Fit(series[:trainSlots]); err != nil {
		return 0, err
	}
	var allActual, allPred [][]float64
	for at := trainSlots; at+horizon <= len(series); at += horizon {
		recent := series[maxInt(0, at-window):at]
		pred := p.Predict(recent, horizon)
		actual := series[at : at+horizon]
		allActual = append(allActual, actual...)
		allPred = append(allPred, pred...)
	}
	return MAPE(allActual, allPred), nil
}

// transpose flips [slot][table] to [table][slot].
func transpose(m [][]float64) [][]float64 {
	if len(m) == 0 {
		return nil
	}
	out := make([][]float64, len(m[0]))
	for j := range out {
		out[j] = make([]float64, len(m))
		for s := range m {
			out[j][s] = m[s][j]
		}
	}
	return out
}

// column extracts one table's series from [slot][table].
func column(m [][]float64, j int) []float64 {
	out := make([]float64, len(m))
	for s := range m {
		out[s] = m[s][j]
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// meanStd returns the mean and standard deviation of xs (std floored to a
// small epsilon so normalisation never divides by zero).
func meanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 1
	}
	for _, v := range xs {
		mean += v
	}
	mean /= float64(len(xs))
	for _, v := range xs {
		std += (v - mean) * (v - mean)
	}
	std = math.Sqrt(std / float64(len(xs)))
	if std < 1e-9 {
		std = 1e-9
	}
	return mean, std
}
