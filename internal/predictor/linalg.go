package predictor

import "math"

// solveRidge solves (XᵀX + λI)β = Xᵀy for β: ridge-regularised least
// squares via Gaussian elimination with partial pivoting. X is [n][d],
// y is [n]. Used by the ARIMA and LR fitters.
func solveRidge(x [][]float64, y []float64, lambda float64) []float64 {
	if len(x) == 0 {
		return nil
	}
	d := len(x[0])
	// Normal equations.
	a := make([][]float64, d)
	b := make([]float64, d)
	for i := range a {
		a[i] = make([]float64, d)
		a[i][i] = lambda
	}
	for r := range x {
		for i := 0; i < d; i++ {
			xi := x[r][i]
			if xi == 0 {
				continue
			}
			b[i] += xi * y[r]
			for j := i; j < d; j++ {
				a[i][j] += xi * x[r][j]
			}
		}
	}
	for i := 0; i < d; i++ {
		for j := 0; j < i; j++ {
			a[i][j] = a[j][i]
		}
	}
	return solveLinear(a, b)
}

// solveLinear solves a·β = b in place with partial pivoting; returns nil
// when the system is singular beyond repair.
func solveLinear(a [][]float64, b []float64) []float64 {
	d := len(b)
	for col := 0; col < d; col++ {
		// Pivot.
		best := col
		for r := col + 1; r < d; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[best][col]) {
				best = r
			}
		}
		if math.Abs(a[best][col]) < 1e-12 {
			return nil
		}
		a[col], a[best] = a[best], a[col]
		b[col], b[best] = b[best], b[col]
		// Eliminate.
		inv := 1 / a[col][col]
		for r := col + 1; r < d; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < d; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	beta := make([]float64, d)
	for r := d - 1; r >= 0; r-- {
		s := b[r]
		for c := r + 1; c < d; c++ {
			s -= a[r][c] * beta[c]
		}
		beta[r] = s / a[r][r]
	}
	return beta
}
