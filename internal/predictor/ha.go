package predictor

// HA is the historical-average baseline (paper §VI-G): it predicts every
// future slot as the mean of the last AverageWindow observed slots. It has
// no trainable state, which is why its MAPE in Table III is constant across
// horizons.
type HA struct {
	// AverageWindow is the number of trailing slots averaged; the paper
	// uses the last 60 minutes.
	AverageWindow int
}

// NewHA returns an HA predictor with the paper's 60-slot window.
func NewHA() *HA { return &HA{AverageWindow: 60} }

// Name implements Predictor.
func (h *HA) Name() string { return "HA" }

// Fit implements Predictor; HA learns nothing.
func (h *HA) Fit([][]float64) error { return nil }

// Predict implements Predictor.
func (h *HA) Predict(recent [][]float64, horizon int) [][]float64 {
	w := h.AverageWindow
	if w <= 0 {
		w = 60
	}
	if w > len(recent) {
		w = len(recent)
	}
	var tables int
	if len(recent) > 0 {
		tables = len(recent[0])
	}
	avg := make([]float64, tables)
	for s := len(recent) - w; s < len(recent); s++ {
		for j := 0; j < tables; j++ {
			avg[j] += recent[s][j]
		}
	}
	for j := range avg {
		avg[j] /= float64(w)
	}
	out := make([][]float64, horizon)
	for s := range out {
		out[s] = append([]float64(nil), avg...)
	}
	return out
}
