package predictor

import (
	"math"
	"math/rand"

	"aets/internal/nn"
)

// QB5000 is the forecasting baseline of Ma et al. (SIGMOD'18), as used in
// paper §VI-G: it "generates forecasts by equally averaging the results of
// LR, LSTM and KR". Each component is fitted per the original design —
// linear autoregression, a shared single-layer LSTM, and Nadaraya–Watson
// kernel regression over historical windows — and forecasts are produced
// recursively one step at a time.
type QB5000 struct {
	Window int // input lag window
	Hidden int // LSTM hidden size
	Epochs int // LSTM training epochs

	lr   *lrModel
	krm  *krModel
	lstm *lstmModel
}

// NewQB5000 returns the ensemble with the defaults used in the evaluation.
func NewQB5000() *QB5000 {
	return &QB5000{Window: 12, Hidden: 32, Epochs: 6}
}

// Name implements Predictor.
func (q *QB5000) Name() string { return "QB5000" }

// Fit implements Predictor.
func (q *QB5000) Fit(history [][]float64) error {
	q.lr = fitLR(history, q.Window)
	q.krm = fitKR(history, q.Window, 400)
	q.lstm = fitLSTM(history, q.Window, q.Hidden, q.Epochs)
	return nil
}

// Predict implements Predictor.
func (q *QB5000) Predict(recent [][]float64, horizon int) [][]float64 {
	a := q.lr.predict(recent, horizon)
	b := q.krm.predict(recent, horizon)
	c := q.lstm.predict(recent, horizon)
	out := make([][]float64, horizon)
	for s := range out {
		out[s] = make([]float64, len(a[s]))
		for j := range out[s] {
			v := (a[s][j] + b[s][j] + c[s][j]) / 3
			if v < 0 {
				v = 0
			}
			out[s][j] = v
		}
	}
	return out
}

// --- LR component ---

// lrModel is one shared linear autoregression: next = β·window. Fitting
// pools windows from all tables on z-scored series, so a single model
// serves every table (QB5000 clusters templates similarly).
type lrModel struct {
	window int
	beta   []float64
	mean   []float64
	std    []float64
}

func fitLR(history [][]float64, window int) *lrModel {
	m := &lrModel{window: window}
	m.mean, m.std = columnStats(history)
	var rows [][]float64
	var ys []float64
	cols := transpose(history)
	for j, series := range cols {
		for t := window; t < len(series); t++ {
			row := make([]float64, window+1)
			for i := 0; i < window; i++ {
				row[i] = (series[t-window+i] - m.mean[j]) / m.std[j]
			}
			row[window] = 1 // intercept
			rows = append(rows, row)
			ys = append(ys, (series[t]-m.mean[j])/m.std[j])
		}
	}
	m.beta = solveRidge(rows, ys, 1e-4)
	if m.beta == nil {
		m.beta = make([]float64, window+1)
	}
	return m
}

func (m *lrModel) predict(recent [][]float64, horizon int) [][]float64 {
	return rollForecast(recent, horizon, m.window, func(j int, win []float64) float64 {
		s := m.beta[m.window] // intercept
		for i := 0; i < m.window; i++ {
			s += m.beta[i] * (win[i] - m.mean[j]) / m.std[j]
		}
		return s*m.std[j] + m.mean[j]
	})
}

// --- KR component ---

// krModel is Nadaraya–Watson kernel regression over stored z-scored
// training windows with a Gaussian kernel.
type krModel struct {
	window    int
	samples   [][]float64 // z-scored windows
	targets   []float64   // z-scored next values
	bandwidth float64
	mean, std []float64
}

func fitKR(history [][]float64, window, maxSamples int) *krModel {
	m := &krModel{window: window}
	m.mean, m.std = columnStats(history)
	cols := transpose(history)
	rng := rand.New(rand.NewSource(17))
	var all [][]float64
	var ys []float64
	for j, series := range cols {
		for t := window; t < len(series); t++ {
			w := make([]float64, window)
			for i := 0; i < window; i++ {
				w[i] = (series[t-window+i] - m.mean[j]) / m.std[j]
			}
			all = append(all, w)
			ys = append(ys, (series[t]-m.mean[j])/m.std[j])
		}
	}
	// Reservoir-subsample to keep prediction cost bounded.
	for len(all) > maxSamples {
		i := rng.Intn(len(all))
		all[i], all[len(all)-1] = all[len(all)-1], all[i]
		ys[i], ys[len(ys)-1] = ys[len(ys)-1], ys[i]
		all, ys = all[:len(all)-1], ys[:len(ys)-1]
	}
	m.samples, m.targets = all, ys
	m.bandwidth = medianPairDistance(all, rng)
	if m.bandwidth < 1e-6 {
		m.bandwidth = 1
	}
	return m
}

func (m *krModel) predict(recent [][]float64, horizon int) [][]float64 {
	inv := 1 / (2 * m.bandwidth * m.bandwidth)
	return rollForecast(recent, horizon, m.window, func(j int, win []float64) float64 {
		q := make([]float64, m.window)
		for i := range q {
			q[i] = (win[i] - m.mean[j]) / m.std[j]
		}
		var num, den float64
		for s, samp := range m.samples {
			d := 0.0
			for i := range q {
				diff := q[i] - samp[i]
				d += diff * diff
			}
			k := math.Exp(-d * inv)
			num += k * m.targets[s]
			den += k
		}
		z := 0.0
		if den > 1e-12 {
			z = num / den
		}
		return z*m.std[j] + m.mean[j]
	})
}

// --- LSTM component ---

// lstmModel is a single-layer LSTM shared across tables, trained on
// z-scored windows to predict the next value, applied recursively.
type lstmModel struct {
	window    int
	cell      *nn.LSTMCell
	head      *nn.Linear
	mean, std []float64
}

func fitLSTM(history [][]float64, window, hidden, epochs int) *lstmModel {
	rng := rand.New(rand.NewSource(23))
	m := &lstmModel{
		window: window,
		cell:   nn.NewLSTMCell(rng, 1, hidden),
		head:   nn.NewLinear(rng, hidden, 1),
	}
	m.mean, m.std = columnStats(history)

	type sample struct {
		win    []float64
		target float64
	}
	var samples []sample
	cols := transpose(history)
	for j, series := range cols {
		for t := window; t < len(series); t++ {
			w := make([]float64, window)
			for i := 0; i < window; i++ {
				w[i] = (series[t-window+i] - m.mean[j]) / m.std[j]
			}
			samples = append(samples, sample{w, (series[t] - m.mean[j]) / m.std[j]})
		}
	}
	if len(samples) == 0 {
		return m
	}

	params := append(m.cell.Params(), m.head.Params()...)
	opt := nn.NewAdam(params, 1e-2)
	const batch = 64
	for ep := 0; ep < epochs; ep++ {
		rng.Shuffle(len(samples), func(i, j int) { samples[i], samples[j] = samples[j], samples[i] })
		for off := 0; off+batch <= len(samples); off += batch {
			b := samples[off : off+batch]
			// Pack the batch: inputs per timestep [batch, 1].
			h := nn.Zeros(len(b), hidden)
			c := nn.Zeros(len(b), hidden)
			for t := 0; t < window; t++ {
				xs := make([]float64, len(b))
				for r := range b {
					xs[r] = b[r].win[t]
				}
				h, c = m.cell.Step(nn.NewTensor(xs, len(b), 1), h, c)
			}
			pred := m.head.Apply(h)
			ys := make([]float64, len(b))
			for r := range b {
				ys[r] = b[r].target
			}
			loss := nn.MSE(pred, nn.NewTensor(ys, len(b), 1))
			loss.Backward()
			opt.Step()
		}
	}
	return m
}

func (m *lstmModel) predict(recent [][]float64, horizon int) [][]float64 {
	return rollForecast(recent, horizon, m.window, func(j int, win []float64) float64 {
		h := nn.Zeros(1, m.cell.H)
		c := nn.Zeros(1, m.cell.H)
		for t := 0; t < m.window; t++ {
			x := nn.NewTensor([]float64{(win[t] - m.mean[j]) / m.std[j]}, 1, 1)
			h, c = m.cell.Step(x, h, c)
		}
		z := m.head.Apply(h).Data[0]
		return z*m.std[j] + m.mean[j]
	})
}

// --- shared helpers ---

// rollForecast applies a one-step forecaster recursively for horizon
// steps per table.
func rollForecast(recent [][]float64, horizon, window int, step func(j int, win []float64) float64) [][]float64 {
	tables := 0
	if len(recent) > 0 {
		tables = len(recent[0])
	}
	out := make([][]float64, horizon)
	for s := range out {
		out[s] = make([]float64, tables)
	}
	for j := 0; j < tables; j++ {
		series := column(recent, j)
		win := make([]float64, window)
		if len(series) >= window {
			copy(win, series[len(series)-window:])
		} else {
			copy(win[window-len(series):], series)
		}
		for s := 0; s < horizon; s++ {
			v := step(j, win)
			if v < 0 {
				v = 0
			}
			out[s][j] = v
			copy(win, win[1:])
			win[window-1] = v
		}
	}
	return out
}

// columnStats returns per-table means and standard deviations.
func columnStats(history [][]float64) (means, stds []float64) {
	cols := transpose(history)
	means = make([]float64, len(cols))
	stds = make([]float64, len(cols))
	for j, series := range cols {
		means[j], stds[j] = meanStd(series)
	}
	return means, stds
}

// medianPairDistance estimates the median Euclidean distance between
// random sample pairs (the KR bandwidth heuristic).
func medianPairDistance(samples [][]float64, rng *rand.Rand) float64 {
	if len(samples) < 2 {
		return 1
	}
	const probes = 200
	ds := make([]float64, 0, probes)
	for i := 0; i < probes; i++ {
		a := samples[rng.Intn(len(samples))]
		b := samples[rng.Intn(len(samples))]
		d := 0.0
		for k := range a {
			diff := a[k] - b[k]
			d += diff * diff
		}
		ds = append(ds, math.Sqrt(d))
	}
	// Median by partial selection.
	for i := 0; i <= len(ds)/2; i++ {
		min := i
		for j := i + 1; j < len(ds); j++ {
			if ds[j] < ds[min] {
				min = j
			}
		}
		ds[i], ds[min] = ds[min], ds[i]
	}
	return ds[len(ds)/2]
}
