package predictor

import "math"

// HoltWinters is a triple-exponential-smoothing forecaster (additive
// seasonality) — the classical operational baseline for periodic rate
// series, included beyond the paper's baselines as a stronger non-neural
// reference point. One model per table; smoothing coefficients are chosen
// per table by a coarse grid search on one-step training error.
type HoltWinters struct {
	// Period is the seasonal cycle length in slots (0 picks the BusTracker
	// default of 72).
	Period int

	models   []hwState
	nextSlot int // absolute slot of the next forecast (phase anchor)
}

type hwState struct {
	alpha, beta, gamma float64
	level, trend       float64
	season             []float64
}

// NewHoltWinters returns the forecaster with the default period.
func NewHoltWinters(period int) *HoltWinters {
	if period <= 0 {
		period = 72
	}
	return &HoltWinters{Period: period}
}

// Name implements Predictor.
func (h *HoltWinters) Name() string { return "Holt-Winters" }

// Fit implements Predictor: grid-search the smoothing coefficients per
// table and keep the fitted end state.
func (h *HoltWinters) Fit(history [][]float64) error {
	cols := transpose(history)
	h.models = make([]hwState, len(cols))
	grid := []float64{0.05, 0.15, 0.3, 0.6}
	for j, series := range cols {
		best := math.Inf(1)
		var bestState hwState
		for _, a := range grid {
			for _, b := range grid[:3] { // trend smoothing rarely wants to be large
				for _, g := range grid {
					st, sse := h.run(series, a, b, g)
					if sse < best {
						best = sse
						bestState = st
					}
				}
			}
		}
		h.models[j] = bestState
	}
	h.nextSlot = len(history)
	return nil
}

// SetSlot re-anchors the seasonal phase to an absolute slot index, for
// rolling evaluation that rewinds.
func (h *HoltWinters) SetSlot(slot int) { h.nextSlot = slot }

// run fits one coefficient triple over series and returns the end state
// and the one-step sum of squared errors.
func (h *HoltWinters) run(series []float64, alpha, beta, gamma float64) (hwState, float64) {
	p := h.Period
	st := hwState{alpha: alpha, beta: beta, gamma: gamma, season: make([]float64, p)}
	if len(series) < 2*p {
		// Too short for seasonal initialisation: flat fallback.
		if len(series) > 0 {
			st.level, _ = meanStd(series)
		}
		return st, math.Inf(1)
	}
	// Initialise level/trend from the first two cycles, season from the
	// first cycle's deviations.
	var m1, m2 float64
	for i := 0; i < p; i++ {
		m1 += series[i]
		m2 += series[p+i]
	}
	m1 /= float64(p)
	m2 /= float64(p)
	st.level = m1
	st.trend = (m2 - m1) / float64(p)
	for i := 0; i < p; i++ {
		st.season[i] = series[i] - m1
	}

	sse := 0.0
	for t := p; t < len(series); t++ {
		fore := st.level + st.trend + st.season[t%p]
		err := series[t] - fore
		sse += err * err
		prevLevel := st.level
		st.level = alpha*(series[t]-st.season[t%p]) + (1-alpha)*(st.level+st.trend)
		st.trend = beta*(st.level-prevLevel) + (1-beta)*st.trend
		st.season[t%p] = gamma*(series[t]-st.level) + (1-gamma)*st.season[t%p]
	}
	return st, sse
}

// Predict implements Predictor. Seasonal components stay frozen from Fit
// (they are slow-moving); the level and trend are re-estimated from the
// seasonally adjusted recent window, anchored in absolute slot phase so
// the frozen seasonals line up.
func (h *HoltWinters) Predict(recent [][]float64, horizon int) [][]float64 {
	tables := 0
	if len(recent) > 0 {
		tables = len(recent[0])
	}
	out := make([][]float64, horizon)
	for s := range out {
		out[s] = make([]float64, tables)
	}
	p := h.Period
	for j := 0; j < tables; j++ {
		series := column(recent, j)
		if j >= len(h.models) || len(h.models[j].season) != p || len(series) == 0 {
			mean, _ := meanStd(series)
			for s := 0; s < horizon; s++ {
				out[s][j] = mean
			}
			continue
		}
		st := h.models[j]
		// Deseasonalise the recent window using its absolute phases, then
		// fit level+trend by least squares over it.
		n := len(series)
		var sumX, sumY, sumXY, sumXX float64
		for t := 0; t < n; t++ {
			phase := ((h.nextSlot-n+t)%p + p) % p
			y := series[t] - st.season[phase]
			x := float64(t)
			sumX += x
			sumY += y
			sumXY += x * y
			sumXX += x * x
		}
		den := float64(n)*sumXX - sumX*sumX
		trend := 0.0
		if den != 0 {
			trend = (float64(n)*sumXY - sumX*sumY) / den
		}
		level := (sumY - trend*sumX) / float64(n) // intercept at t=0
		for s := 0; s < horizon; s++ {
			phase := ((h.nextSlot+s)%p + p) % p
			v := level + trend*float64(n+s) + st.season[phase]
			if v < 0 {
				v = 0
			}
			out[s][j] = v
		}
	}
	h.nextSlot += horizon
	return out
}
