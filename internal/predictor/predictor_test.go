package predictor

import (
	"math"
	"math/rand"
	"testing"

	"aets/internal/workload"
)

// synthSeries builds a small multi-table sinusoid series with noise.
func synthSeries(slots, tables int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	phase := make([]float64, tables)
	base := make([]float64, tables)
	for j := range phase {
		phase[j] = rng.Float64() * 2 * math.Pi
		base[j] = 100 + rng.Float64()*400
	}
	out := make([][]float64, slots)
	for s := range out {
		out[s] = make([]float64, tables)
		for j := range out[s] {
			v := base[j] * (1 + 0.5*math.Sin(2*math.Pi*float64(s)/48+phase[j]))
			out[s][j] = v + rng.NormFloat64()*base[j]*0.02
		}
	}
	return out
}

func TestMAPEBasics(t *testing.T) {
	actual := [][]float64{{100, 200}, {100, 0}}
	pred := [][]float64{{110, 180}, {90, 50}}
	// Errors: 0.1, 0.1, 0.1; the zero actual is skipped.
	got := MAPE(actual, pred)
	if math.Abs(got-0.1) > 1e-9 {
		t.Fatalf("MAPE = %v, want 0.1", got)
	}
	if MAPE(nil, nil) != 0 {
		t.Fatal("empty MAPE must be 0")
	}
}

func TestHAPredictsTrailingAverage(t *testing.T) {
	h := &HA{AverageWindow: 3}
	recent := [][]float64{{1}, {2}, {3}, {4}, {5}}
	pred := h.Predict(recent, 2)
	if len(pred) != 2 || math.Abs(pred[0][0]-4) > 1e-9 || math.Abs(pred[1][0]-4) > 1e-9 {
		t.Fatalf("HA pred = %v, want flat 4", pred)
	}
}

func TestHAIsHorizonInvariant(t *testing.T) {
	series := synthSeries(400, 3, 1)
	h := NewHA()
	m15, err := Evaluate(h, series, 260, 60, 15)
	if err != nil {
		t.Fatal(err)
	}
	m60, err := Evaluate(h, series, 260, 60, 60)
	if err != nil {
		t.Fatal(err)
	}
	// Table III shows HA constant across horizons; allow small sampling
	// differences from different window alignments.
	if math.Abs(m15-m60) > 0.15 {
		t.Fatalf("HA MAPE varies too much across horizons: %v vs %v", m15, m60)
	}
}

func TestARIMARecoversARProcess(t *testing.T) {
	// x_t = 0.7·x_{t-1} + ε on a differenced random walk with drift.
	rng := rand.New(rand.NewSource(4))
	n := 600
	series := make([][]float64, n)
	level := 500.0
	inc := 0.0
	for s := 0; s < n; s++ {
		inc = 0.7*inc + rng.NormFloat64()*2
		level += inc + 1 // drift
		series[s] = []float64{level}
	}
	a := NewARIMA()
	mape, err := Evaluate(a, series, 400, 60, 15)
	if err != nil {
		t.Fatal(err)
	}
	ha := NewHA()
	haMape, _ := Evaluate(ha, series, 400, 60, 15)
	if mape >= haMape {
		t.Fatalf("ARIMA (%v) should beat HA (%v) on an integrated AR process", mape, haMape)
	}
}

func TestARIMAFinitePredictions(t *testing.T) {
	series := synthSeries(400, 4, 5)
	a := NewARIMA()
	if err := a.Fit(series[:300]); err != nil {
		t.Fatal(err)
	}
	pred := a.Predict(series[240:300], 60)
	if len(pred) != 60 {
		t.Fatalf("horizon %d", len(pred))
	}
	for s := range pred {
		for j := range pred[s] {
			if math.IsNaN(pred[s][j]) || math.IsInf(pred[s][j], 0) || pred[s][j] < 0 {
				t.Fatalf("pred[%d][%d] = %v", s, j, pred[s][j])
			}
		}
	}
}

func TestQB5000BeatsHAOnSinusoid(t *testing.T) {
	series := synthSeries(500, 3, 6)
	q := NewQB5000()
	q.Epochs = 3 // keep the test fast
	mape, err := Evaluate(q, series, 350, 60, 15)
	if err != nil {
		t.Fatal(err)
	}
	haMape, _ := Evaluate(NewHA(), series, 350, 60, 15)
	if mape >= haMape {
		t.Fatalf("QB5000 (%v) should beat HA (%v) on a periodic series", mape, haMape)
	}
}

func testDTGMConfig(horizon int) DTGMConfig {
	return DTGMConfig{
		Window: 12, Horizon: horizon, Hidden: 8, Layers: 2, Hops: 2,
		Epochs: 6, Batch: 16, LR: 5e-3, Dropout: 0.1, UseGCN: true, Seed: 7,
	}
}

func fullAdj(n int) [][]float64 {
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
		for j := range a[i] {
			a[i][j] = 1
		}
	}
	return a
}

func TestDTGMLearnsSinusoid(t *testing.T) {
	series := synthSeries(400, 3, 8)
	cfg := testDTGMConfig(15)
	d := NewDTGM(fullAdj(3), cfg)
	mape, err := Evaluate(d, series, 300, 60, 15)
	if err != nil {
		t.Fatal(err)
	}
	haMape, _ := Evaluate(NewHA(), series, 300, 60, 15)
	if mape >= haMape {
		t.Fatalf("DTGM (%v) should beat HA (%v)", mape, haMape)
	}
}

func TestDTGMWithoutGCNStillWorks(t *testing.T) {
	series := synthSeries(400, 3, 9)
	cfg := testDTGMConfig(15)
	cfg.UseGCN = false
	d := NewDTGM(fullAdj(3), cfg)
	if d.Name() != "DTGM w/o gcn" {
		t.Fatalf("name: %s", d.Name())
	}
	mape, err := Evaluate(d, series, 300, 60, 15)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(mape) || mape > 3 {
		t.Fatalf("w/o gcn MAPE unreasonable: %v", mape)
	}
}

func TestDTGMRejectsWrongTableCount(t *testing.T) {
	d := NewDTGM(fullAdj(3), testDTGMConfig(5))
	if err := d.Fit(synthSeries(100, 5, 10)); err == nil {
		t.Fatal("mismatched table count accepted")
	}
}

func TestDTGMPredictClampsHorizon(t *testing.T) {
	series := synthSeries(120, 2, 11)
	d := NewDTGM(fullAdj(2), testDTGMConfig(10))
	if err := d.Fit(series[:100]); err != nil {
		t.Fatal(err)
	}
	pred := d.Predict(series[40:100], 50)
	if len(pred) != 10 {
		t.Fatalf("clamped horizon = %d, want 10", len(pred))
	}
}

func TestBusTrackerSeriesFeedsPredictors(t *testing.T) {
	bt := workload.NewBusTracker()
	series, ids := bt.RateSeries(200)
	if len(ids) != 14 {
		t.Fatalf("hot tables: %d, want 14", len(ids))
	}
	if len(series) != 200 || len(series[0]) != 14 {
		t.Fatalf("series shape %dx%d", len(series), len(series[0]))
	}
	h := NewHA()
	if _, err := Evaluate(h, series, 120, 60, 15); err != nil {
		t.Fatal(err)
	}
}

func TestSolveRidgeExact(t *testing.T) {
	// y = 3a - 2b fitted exactly.
	x := [][]float64{{1, 0}, {0, 1}, {1, 1}, {2, 1}}
	y := []float64{3, -2, 1, 4}
	beta := solveRidge(x, y, 0)
	if beta == nil || math.Abs(beta[0]-3) > 1e-6 || math.Abs(beta[1]+2) > 1e-6 {
		t.Fatalf("beta = %v", beta)
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := [][]float64{{1, 1}, {1, 1}}
	if solveLinear(a, []float64{1, 2}) != nil {
		t.Fatal("singular system must return nil")
	}
}

func TestEvaluateTooShort(t *testing.T) {
	if _, err := Evaluate(NewHA(), synthSeries(50, 2, 12), 40, 60, 30); err == nil {
		t.Fatal("short series accepted")
	}
}
