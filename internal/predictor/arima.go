package predictor

// ARIMA is the classical autoregressive integrated moving-average baseline
// (paper §VI-G, [34]). One model is fitted per table. Estimation follows
// the Hannan–Rissanen two-stage procedure: a long autoregression first
// yields innovation estimates, then the ARMA(p,q) coefficients are fitted
// by least squares on lagged values and lagged innovations. Forecasts are
// produced iteratively on the d-times differenced series and integrated
// back.
type ARIMA struct {
	P, D, Q int

	// per-table fitted state
	ar  [][]float64 // AR coefficients φ_1..φ_p (per table)
	ma  [][]float64 // MA coefficients θ_1..θ_q (per table)
	mu  []float64   // mean of the differenced series (per table)
	fit bool
}

// NewARIMA returns an ARIMA(3,1,1) predictor, a common default for
// short-range rate series.
func NewARIMA() *ARIMA { return &ARIMA{P: 3, D: 1, Q: 1} }

// Name implements Predictor.
func (a *ARIMA) Name() string { return "ARIMA" }

// Fit implements Predictor.
func (a *ARIMA) Fit(history [][]float64) error {
	cols := transpose(history)
	a.ar = make([][]float64, len(cols))
	a.ma = make([][]float64, len(cols))
	a.mu = make([]float64, len(cols))
	for j, series := range cols {
		d := difference(series, a.D)
		mu, _ := meanStd(d)
		a.mu[j] = mu
		centered := make([]float64, len(d))
		for i := range d {
			centered[i] = d[i] - mu
		}
		ar, ma := hannanRissanen(centered, a.P, a.Q)
		a.ar[j], a.ma[j] = ar, ma
	}
	a.fit = true
	return nil
}

// Predict implements Predictor.
func (a *ARIMA) Predict(recent [][]float64, horizon int) [][]float64 {
	tables := 0
	if len(recent) > 0 {
		tables = len(recent[0])
	}
	out := make([][]float64, horizon)
	for s := range out {
		out[s] = make([]float64, tables)
	}
	for j := 0; j < tables; j++ {
		series := column(recent, j)
		var ar, ma []float64
		var mu float64
		if a.fit && j < len(a.ar) {
			ar, ma, mu = a.ar[j], a.ma[j], a.mu[j]
		}
		fc := a.forecastOne(series, ar, ma, mu, horizon)
		for s := 0; s < horizon; s++ {
			out[s][j] = fc[s]
		}
	}
	return out
}

func (a *ARIMA) forecastOne(series, ar, ma []float64, mu float64, horizon int) []float64 {
	d := difference(series, a.D)
	centered := make([]float64, len(d))
	for i := range d {
		centered[i] = d[i] - mu
	}
	// Reconstruct trailing innovations with the fitted model.
	resid := residuals(centered, ar, ma)

	fc := make([]float64, horizon)
	hist := append([]float64(nil), centered...)
	for s := 0; s < horizon; s++ {
		pred := 0.0
		for i, phi := range ar {
			if k := len(hist) - 1 - i; k >= 0 {
				pred += phi * hist[k]
			}
		}
		for i, theta := range ma {
			if k := len(resid) - 1 - i; k >= 0 {
				pred += theta * resid[k]
			}
		}
		hist = append(hist, pred)
		resid = append(resid, 0) // expected future innovation is zero
		fc[s] = pred + mu
	}
	// Integrate d times back to the level domain.
	return integrate(series, fc, a.D)
}

// difference applies d-th order differencing.
func difference(series []float64, d int) []float64 {
	out := append([]float64(nil), series...)
	for k := 0; k < d; k++ {
		if len(out) <= 1 {
			return []float64{0}
		}
		next := make([]float64, len(out)-1)
		for i := 1; i < len(out); i++ {
			next[i-1] = out[i] - out[i-1]
		}
		out = next
	}
	return out
}

// integrate undoes d-th order differencing of the forecast fc, anchored at
// the tail of the original level series.
func integrate(series, fc []float64, d int) []float64 {
	if d == 0 {
		return fc
	}
	// Build the ladder of last values of each differencing level.
	lasts := make([]float64, d+1)
	cur := append([]float64(nil), series...)
	for k := 0; k <= d; k++ {
		if len(cur) == 0 {
			lasts[k] = 0
		} else {
			lasts[k] = cur[len(cur)-1]
		}
		if k < d {
			next := make([]float64, maxInt(len(cur)-1, 0))
			for i := 1; i < len(cur); i++ {
				next[i-1] = cur[i] - cur[i-1]
			}
			cur = next
		}
	}
	out := make([]float64, len(fc))
	for s := range fc {
		v := fc[s]
		// Cascade the cumulative sums from the most-differenced level up.
		for k := d - 1; k >= 0; k-- {
			v = lasts[k] + v
			lasts[k] = v
		}
		out[s] = v
		if v < 0 {
			out[s] = 0 // access rates cannot be negative
		}
	}
	return out
}

// hannanRissanen estimates ARMA(p,q) coefficients on a centred series.
// The stage-2 regression of x_t on its own lags and lagged innovations is
// near-collinear (the innovations are linear in the lags), so the result
// can be an explosive model; when the fitted AR part is non-stationary the
// estimator falls back to a pure AR(p) fit, which is always well-behaved
// under ridge regularisation.
func hannanRissanen(x []float64, p, q int) (ar, ma []float64) {
	if len(x) < p+q+10 {
		return make([]float64, p), make([]float64, q)
	}
	lambda := ridgeFor(x)
	// Stage 1: long AR to estimate innovations.
	long := p + q + 3
	phi := fitAR(x, long, lambda)
	eps := make([]float64, len(x))
	for t := long; t < len(x); t++ {
		pred := 0.0
		for i, c := range phi {
			pred += c * x[t-1-i]
		}
		eps[t] = x[t] - pred
	}
	// Stage 2: regress x_t on p lags of x and q lags of eps.
	start := long + q
	var rows [][]float64
	var ys []float64
	for t := start; t < len(x); t++ {
		row := make([]float64, p+q)
		for i := 0; i < p; i++ {
			row[i] = x[t-1-i]
		}
		for i := 0; i < q; i++ {
			row[p+i] = eps[t-1-i]
		}
		rows = append(rows, row)
		ys = append(ys, x[t])
	}
	beta := solveRidge(rows, ys, lambda)
	if beta != nil && stationaryAR(beta[:p]) {
		return beta[:p], beta[p:]
	}
	return fitAR(x, p, lambda), make([]float64, q)
}

// fitAR fits an AR(p) by ridge OLS.
func fitAR(x []float64, p int, lambda float64) []float64 {
	var rows [][]float64
	var ys []float64
	for t := p; t < len(x); t++ {
		row := make([]float64, p)
		for i := 0; i < p; i++ {
			row[i] = x[t-1-i]
		}
		rows = append(rows, row)
		ys = append(ys, x[t])
	}
	beta := solveRidge(rows, ys, lambda)
	if beta == nil {
		return make([]float64, p)
	}
	if !stationaryAR(beta) {
		// Shrink towards zero until stable; an over-damped forecast is
		// strictly better than a divergent one.
		for f := 0.9; f > 0.05; f *= 0.8 {
			for i := range beta {
				beta[i] *= f
			}
			if stationaryAR(beta) {
				break
			}
		}
	}
	return beta
}

// ridgeFor scales the ridge penalty to the series variance so the solver
// behaves identically at any rate magnitude.
func ridgeFor(x []float64) float64 {
	_, std := meanStd(x)
	return 1e-3 * std * std * float64(len(x))
}

// stationaryAR reports whether the AR recursion with the given
// coefficients is stable, by driving the homogeneous recursion from a unit
// impulse and watching for growth.
func stationaryAR(phi []float64) bool {
	state := make([]float64, len(phi))
	if len(state) == 0 {
		return true
	}
	state[0] = 1
	mag := 1.0
	for step := 0; step < 200; step++ {
		next := 0.0
		for i, c := range phi {
			next += c * state[i]
		}
		copy(state[1:], state[:len(state)-1])
		state[0] = next
		if next > mag {
			mag = next
		}
		if mag > 100 {
			return false
		}
	}
	return true
}

// residuals reconstructs the one-step innovations of a fitted ARMA model
// over x.
func residuals(x, ar, ma []float64) []float64 {
	eps := make([]float64, len(x))
	for t := range x {
		pred := 0.0
		for i, phi := range ar {
			if t-1-i >= 0 {
				pred += phi * x[t-1-i]
			}
		}
		for i, theta := range ma {
			if t-1-i >= 0 {
				pred += theta * eps[t-1-i]
			}
		}
		eps[t] = x[t] - pred
	}
	return eps
}

// DebugAR exposes the fitted AR coefficients of one table (test helper).
func (a *ARIMA) DebugAR(j int) []float64 { return a.ar[j] }

// DebugMA exposes the fitted MA coefficients of one table (test helper).
func (a *ARIMA) DebugMA(j int) []float64 { return a.ma[j] }
