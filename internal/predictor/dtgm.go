package predictor

import (
	"fmt"
	"math"
	"math/rand"

	"aets/internal/nn"
)

// DTGMConfig parameterises the Deep Temporal Graph Model. The defaults
// match the paper's experimental setting (§VI-G1): hidden dimension 48,
// Adam at 1e-3 decayed ×0.1 every 20 epochs, L2 1e-5, dropout 0.3.
type DTGMConfig struct {
	Window  int // input history length T_in
	Horizon int // forecast length T_f the head is trained for
	Hidden  int // hidden channel dimension (Fig 14 sweeps this; optimum 48)
	Layers  int // stacked gated-TCN + GCN layers
	Hops    int // K: highest adjacency power in the GCN sum
	Epochs  int
	Batch   int
	LR      float64
	Dropout float64
	// UseGCN toggles the graph component; false gives the "w/o gcn"
	// ablation of Table IV.
	UseGCN bool
	// SlotPeriod, when non-zero, adds sin/cos time-of-cycle input channels
	// with the given period in slots (the daily rhythm the rates follow).
	// Access-rate forecasters conventionally condition on time of day;
	// QB5000's features do the same.
	SlotPeriod int
	Seed       int64
}

// DefaultDTGMConfig returns the paper's configuration, scaled to a horizon.
func DefaultDTGMConfig(horizon int) DTGMConfig {
	return DTGMConfig{
		Window: 24, Horizon: horizon, Hidden: 48, Layers: 2, Hops: 2,
		Epochs: 24, Batch: 16, LR: 1e-3, Dropout: 0.3, UseGCN: true,
		SlotPeriod: 144, Seed: 71,
	}
}

// dtgmLayer is one block of Fig 5: gated TCN followed by a GCN "pooling"
// layer, with a residual connection and a skip tap.
type dtgmLayer struct {
	filter *nn.CausalConv1D
	gate   *nn.CausalConv1D
	gcn    []*nn.ChannelLinear // one 1×1 map per adjacency power, W_k
	skip   *nn.ChannelLinear
}

// DTGM is the Deep Temporal Graph Model (paper §IV-A2): stacked layers of
// gated temporal convolutions (TCN) encoding the rate history, interleaved
// with graph convolutions (GCN) encoding table-access relationships, with
// residual and skip connections and an MAE training objective.
type DTGM struct {
	cfg DTGMConfig
	adj [][]float64 // row-normalised Â = D⁻¹(A+I) over the hot tables

	input  *nn.ChannelLinear
	layers []*dtgmLayer
	head1  *nn.Linear
	head2  *nn.Linear

	mean, std []float64
	rng       *rand.Rand
	nextSlot  int
}

// NewDTGM builds the model over the given table-access adjacency matrix
// (co-occurrence of tables in analytical queries, as produced by
// workload.AccessGraph).
func NewDTGM(adjacency [][]float64, cfg DTGMConfig) *DTGM {
	if cfg.Window <= 0 {
		cfg = DefaultDTGMConfig(cfg.Horizon)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := &DTGM{cfg: cfg, adj: rowNormalize(adjacency), rng: rng}
	d.input = nn.NewChannelLinear(rng, d.inChannels(), cfg.Hidden)
	dilation := 1
	for l := 0; l < cfg.Layers; l++ {
		layer := &dtgmLayer{
			filter: nn.NewCausalConv1D(rng, cfg.Hidden, cfg.Hidden, 2, dilation),
			gate:   nn.NewCausalConv1D(rng, cfg.Hidden, cfg.Hidden, 2, dilation),
			skip:   nn.NewChannelLinear(rng, cfg.Hidden, cfg.Hidden),
		}
		if cfg.UseGCN {
			for k := 0; k <= cfg.Hops; k++ {
				layer.gcn = append(layer.gcn, nn.NewChannelLinear(rng, cfg.Hidden, cfg.Hidden))
			}
		}
		d.layers = append(d.layers, layer)
		dilation *= 2
	}
	d.head1 = nn.NewLinear(rng, cfg.Hidden, cfg.Hidden)
	d.head2 = nn.NewLinear(rng, cfg.Hidden, cfg.Horizon)
	return d
}

// inChannels returns the input channel count: the rate plus, when a slot
// period is configured, sin/cos time-of-cycle features.
func (d *DTGM) inChannels() int {
	if d.cfg.SlotPeriod > 0 {
		return 3
	}
	return 1
}

// Name implements Predictor.
func (d *DTGM) Name() string {
	if !d.cfg.UseGCN {
		return "DTGM w/o gcn"
	}
	return "DTGM"
}

// Params returns every trainable parameter.
func (d *DTGM) Params() []*nn.Tensor {
	params := d.input.Params()
	for _, l := range d.layers {
		params = append(params, l.filter.Params()...)
		params = append(params, l.gate.Params()...)
		params = append(params, l.skip.Params()...)
		for _, g := range l.gcn {
			params = append(params, g.Params()...)
		}
	}
	params = append(params, d.head1.Params()...)
	params = append(params, d.head2.Params()...)
	return params
}

// forward maps a z-scored input [B·N, 1, W] to forecasts [B·N, Horizon].
// train enables dropout.
func (d *DTGM) forward(x *nn.Tensor, train bool) *nn.Tensor {
	var drop interface{ Float64() float64 }
	if train {
		drop = d.rng
	}
	h := d.input.Apply(x)
	var skip *nn.Tensor
	for _, l := range d.layers {
		residual := h
		// Gated TCN: tanh(Θ₁*h) ⊙ σ(Θ₂*h).
		z := nn.Mul(nn.Tanh(l.filter.Apply(h)), nn.Sigmoid(l.gate.Apply(h)))
		z = nn.Dropout(z, d.cfg.Dropout, drop)
		// GCN pooling: Σ_k Âᵏ z W_k (K=Hops), applied when enabled.
		if len(l.gcn) > 0 {
			sum := l.gcn[0].Apply(z) // k=0 term: identity propagation
			prop := z
			for k := 1; k < len(l.gcn); k++ {
				prop = nn.GraphProp(prop, d.adj)
				sum = nn.Add(sum, l.gcn[k].Apply(prop))
			}
			z = sum
		}
		// Skip tap and residual connection.
		s := l.skip.Apply(z)
		if skip == nil {
			skip = s
		} else {
			skip = nn.Add(skip, s)
		}
		h = nn.Add(z, residual)
	}
	// Head: ReLU MLP over the final timestep's skip features.
	feat := nn.ReLU(nn.SliceLast(skip, -1)) // [B·N, Hidden]
	return d.head2.Apply(nn.ReLU(d.head1.Apply(feat)))
}

// Fit implements Predictor: windows of length Window predict the next
// Horizon slots, trained with MAE and the paper's LR schedule.
func (d *DTGM) Fit(history [][]float64) error {
	n := 0
	if len(history) > 0 {
		n = len(history[0])
	}
	if n != len(d.adj) {
		// The adjacency must cover exactly the hot tables in the series.
		return fmt.Errorf("predictor: series has %d tables, adjacency covers %d", n, len(d.adj))
	}
	d.mean, d.std = columnStats(history)

	w, hz := d.cfg.Window, d.cfg.Horizon
	var starts []int
	for t := w; t+hz <= len(history); t++ {
		starts = append(starts, t)
	}
	if len(starts) == 0 {
		return nil
	}

	d.nextSlot = len(history)
	opt := nn.NewAdam(d.Params(), d.cfg.LR)
	for ep := 0; ep < d.cfg.Epochs; ep++ {
		if ep > 0 && ep%20 == 0 {
			opt.DecayLR(0.1)
		}
		d.rng.Shuffle(len(starts), func(i, j int) { starts[i], starts[j] = starts[j], starts[i] })
		for off := 0; off < len(starts); off += d.cfg.Batch {
			end := off + d.cfg.Batch
			if end > len(starts) {
				end = len(starts)
			}
			batch := starts[off:end]
			x, y := d.pack(history, batch, 0)
			loss := nn.MAE(d.forward(x, true), y)
			loss.Backward()
			opt.Step()
		}
	}
	return nil
}

// pack assembles a batch of windows into [B·N, C, W] inputs and
// [B·N, Horizon] targets, z-scored per table. `at` indexes the first
// forecast slot of each window; atBase is added to convert it into the
// absolute slot used by the time-of-cycle features.
func (d *DTGM) pack(history [][]float64, starts []int, atBase int) (x, y *nn.Tensor) {
	n := len(d.adj)
	w, hz, ch := d.cfg.Window, d.cfg.Horizon, d.inChannels()
	xd := make([]float64, len(starts)*n*ch*w)
	yd := make([]float64, len(starts)*n*hz)
	for b, at := range starts {
		for j := 0; j < n; j++ {
			row := b*n + j
			for t := 0; t < w; t++ {
				xd[(row*ch)*w+t] = (history[at-w+t][j] - d.mean[j]) / d.std[j]
				if ch == 3 {
					tod := 2 * math.Pi * float64(atBase+at-w+t) / float64(d.cfg.SlotPeriod)
					xd[(row*ch+1)*w+t] = math.Sin(tod)
					xd[(row*ch+2)*w+t] = math.Cos(tod)
				}
			}
			for t := 0; t < hz; t++ {
				yd[row*hz+t] = (history[at+t][j] - d.mean[j]) / d.std[j]
			}
		}
	}
	return nn.NewTensor(xd, len(starts)*n, ch, w), nn.NewTensor(yd, len(starts)*n, hz)
}

// SetSlot tells the model the absolute slot index of the *next* value to
// forecast, anchoring the time-of-cycle features. Evaluate-style rolling
// prediction should call it before each Predict; when unset, the model
// assumes prediction continues right after the fitted history.
func (d *DTGM) SetSlot(slot int) { d.nextSlot = slot }

// Predict implements Predictor.
func (d *DTGM) Predict(recent [][]float64, horizon int) [][]float64 {
	n := len(d.adj)
	w, ch := d.cfg.Window, d.inChannels()
	if d.mean == nil {
		d.mean = make([]float64, n)
		d.std = make([]float64, n)
		for j := range d.std {
			d.std[j] = 1
		}
	}
	xd := make([]float64, n*ch*w)
	for j := 0; j < n; j++ {
		for t := 0; t < w; t++ {
			at := len(recent) - w + t
			v := 0.0
			if at >= 0 && j < len(recent[at]) {
				v = recent[at][j]
			}
			xd[(j*ch)*w+t] = (v - d.mean[j]) / d.std[j]
			if ch == 3 {
				tod := 2 * math.Pi * float64(d.nextSlot-w+t) / float64(d.cfg.SlotPeriod)
				xd[(j*ch+1)*w+t] = math.Sin(tod)
				xd[(j*ch+2)*w+t] = math.Cos(tod)
			}
		}
	}
	pred := d.forward(nn.NewTensor(xd, n, ch, w), false)
	d.nextSlot += horizon

	if horizon > d.cfg.Horizon {
		horizon = d.cfg.Horizon
	}
	out := make([][]float64, horizon)
	for s := range out {
		out[s] = make([]float64, n)
		for j := 0; j < n; j++ {
			v := pred.Data[j*d.cfg.Horizon+s]*d.std[j] + d.mean[j]
			if v < 0 {
				v = 0
			}
			out[s][j] = v
		}
	}
	return out
}

// rowNormalize returns D⁻¹(A+I) with self-loops added.
func rowNormalize(a [][]float64) [][]float64 {
	n := len(a)
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
		copy(out[i], a[i])
		if out[i][i] == 0 {
			out[i][i] = 1
		}
		sum := 0.0
		for _, v := range out[i] {
			sum += v
		}
		if sum > 0 {
			for j := range out[i] {
				out[i][j] /= sum
			}
		}
	}
	return out
}
