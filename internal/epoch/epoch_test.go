package epoch

import (
	"math/rand"
	"testing"
	"testing/quick"

	"aets/internal/wal"
)

func makeTxns(n int, entriesPer int) []wal.Txn {
	txns := make([]wal.Txn, n)
	for i := range txns {
		txns[i] = wal.Txn{ID: uint64(i + 1), CommitTS: int64((i + 1) * 10)}
		for j := 0; j < entriesPer; j++ {
			txns[i].Entries = append(txns[i].Entries, wal.Entry{
				Type: wal.TypeUpdate, TxnID: uint64(i + 1), Table: 1, RowKey: uint64(j + 1),
				Columns: []wal.Column{{ID: 1, Value: []byte{byte(j)}}},
			})
		}
	}
	return txns
}

func TestBatcherCutsOnSize(t *testing.T) {
	b := NewBatcher(4)
	var epochs []*Epoch
	for _, txn := range makeTxns(10, 1) {
		e, err := b.Add(txn)
		if err != nil {
			t.Fatal(err)
		}
		if e != nil {
			epochs = append(epochs, e)
		}
	}
	if e := b.Flush(); e != nil {
		epochs = append(epochs, e)
	}
	if len(epochs) != 3 {
		t.Fatalf("got %d epochs, want 3", len(epochs))
	}
	if len(epochs[0].Txns) != 4 || len(epochs[1].Txns) != 4 || len(epochs[2].Txns) != 2 {
		t.Fatalf("epoch sizes: %d %d %d", len(epochs[0].Txns), len(epochs[1].Txns), len(epochs[2].Txns))
	}
	if epochs[0].Seq != 0 || epochs[1].Seq != 1 || epochs[2].Seq != 2 {
		t.Fatal("epoch sequence numbers not dense")
	}
}

func TestBatcherRejectsOutOfOrder(t *testing.T) {
	b := NewBatcher(10)
	if _, err := b.Add(wal.Txn{ID: 5}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Add(wal.Txn{ID: 5}); err == nil {
		t.Fatal("duplicate txn ID accepted")
	}
	if _, err := b.Add(wal.Txn{ID: 3}); err == nil {
		t.Fatal("decreasing txn ID accepted")
	}
}

func TestSplitBoundariesQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(100)
		size := 1 + r.Intn(20)
		txns := makeTxns(n, 1)
		eps := MustSplit(txns, size)

		total := 0
		lastID := uint64(0)
		for i, e := range eps {
			if e.Validate() != nil {
				return false
			}
			if i < len(eps)-1 && len(e.Txns) != size {
				return false // only the last epoch may be short
			}
			for _, txn := range e.Txns {
				if txn.ID <= lastID {
					return false // IDs must increase across epochs too
				}
				lastID = txn.ID
				total++
			}
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEpochAccessors(t *testing.T) {
	e := &Epoch{Seq: 7, Txns: makeTxns(5, 3)}
	if e.FirstTxnID() != 1 || e.LastTxnID() != 5 {
		t.Fatalf("ID range [%d,%d], want [1,5]", e.FirstTxnID(), e.LastTxnID())
	}
	if e.Entries() != 15 {
		t.Fatalf("Entries = %d, want 15", e.Entries())
	}
	if e.Size() <= 0 {
		t.Fatal("Size must be positive")
	}
	var empty Epoch
	if empty.FirstTxnID() != 0 || empty.LastTxnID() != 0 {
		t.Fatal("empty epoch accessors must return 0")
	}
}

func TestValidateCatchesDisorder(t *testing.T) {
	e := &Epoch{Txns: []wal.Txn{{ID: 2, CommitTS: 20}, {ID: 1, CommitTS: 30}}}
	if e.Validate() == nil {
		t.Fatal("unordered txn IDs accepted")
	}
	e = &Epoch{Txns: []wal.Txn{{ID: 1, CommitTS: 30}, {ID: 2, CommitTS: 20}}}
	if e.Validate() == nil {
		t.Fatal("decreasing commit timestamps accepted")
	}
}

func TestEncodeDecodeEpoch(t *testing.T) {
	e := &Epoch{Seq: 3, Txns: makeTxns(20, 4)}
	enc, next := Encode(e, 1)
	if enc.TxnCount != 20 || enc.EntryCount != 80 {
		t.Fatalf("summary: %d txns %d entries", enc.TxnCount, enc.EntryCount)
	}
	// 20 txns × (BEGIN + 4 DML + COMMIT) = 120 frames.
	if next != 121 {
		t.Fatalf("next LSN = %d, want 121", next)
	}
	if enc.FirstTxnID != 1 || enc.LastTxnID != 20 || enc.LastCommitTS != 200 {
		t.Fatalf("summary fields: %+v", enc)
	}
	back, err := enc.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 20 {
		t.Fatalf("decoded %d txns", len(back))
	}
	for i := range back {
		if back[i].ID != e.Txns[i].ID || back[i].CommitTS != e.Txns[i].CommitTS ||
			len(back[i].Entries) != len(e.Txns[i].Entries) {
			t.Fatalf("txn %d mismatch", i)
		}
	}
}

func TestEncodeAllSharesLSNSpace(t *testing.T) {
	eps := MustSplit(makeTxns(10, 2), 4)
	encs := EncodeAll(eps)
	if len(encs) != 3 {
		t.Fatalf("got %d encoded epochs", len(encs))
	}
	var lastLSN uint64
	for _, enc := range encs {
		entries, err := wal.DecodeStream(enc.Buf)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if e.LSN != lastLSN+1 {
				t.Fatalf("LSN gap: %d after %d", e.LSN, lastLSN)
			}
			lastLSN = e.LSN
		}
	}
}
