package epoch

import (
	"math/rand"
	"testing"
	"testing/quick"

	"aets/internal/wal"
)

// TestEncodedRoundTripQuick: encode→decode of random epochs preserves the
// transactions exactly and the summary fields agree with the content.
func TestEncodedRoundTripQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(60)
		txns := make([]wal.Txn, n)
		ts := int64(0)
		for i := range txns {
			ts += 1 + r.Int63n(20)
			txns[i] = wal.Txn{ID: uint64(i + 1), CommitTS: ts}
			for j := 0; j < r.Intn(5); j++ {
				e := wal.Entry{
					Type: wal.TypeUpdate, TxnID: uint64(i + 1), Timestamp: ts,
					Table: wal.TableID(1 + r.Intn(5)), RowKey: r.Uint64() % 1000,
					WriteSeq: r.Uint64() % 100,
					Columns:  []wal.Column{{ID: 1, Value: []byte{byte(j)}}},
				}
				txns[i].Entries = append(txns[i].Entries, e)
			}
		}
		ep := &Epoch{Seq: uint64(r.Intn(100)), Txns: txns}
		enc, _ := Encode(ep, 1)
		if enc.TxnCount != n || enc.FirstTxnID != 1 || enc.LastTxnID != uint64(n) ||
			enc.LastCommitTS != ts || enc.EntryCount != ep.Entries() {
			return false
		}
		back, err := enc.Decode()
		if err != nil || len(back) != n {
			return false
		}
		for i := range back {
			if back[i].ID != txns[i].ID || back[i].CommitTS != txns[i].CommitTS ||
				len(back[i].Entries) != len(txns[i].Entries) {
				return false
			}
			for j := range back[i].Entries {
				a, b := back[i].Entries[j], txns[i].Entries[j]
				if a.Table != b.Table || a.RowKey != b.RowKey || a.WriteSeq != b.WriteSeq {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeEmptyEpoch(t *testing.T) {
	enc, next := Encode(&Epoch{Seq: 3}, 7)
	if next != 7 || len(enc.Buf) != 0 || enc.TxnCount != 0 {
		t.Fatalf("empty epoch: %+v next=%d", enc, next)
	}
	txns, err := enc.Decode()
	if err != nil || len(txns) != 0 {
		t.Fatalf("decode empty: %v %v", txns, err)
	}
}
