// Package epoch batches committed transactions into fixed-size,
// non-overlapping epochs (paper §III-B). Epochs are segmented on transaction
// boundaries — a transaction's entries never straddle two epochs — and are
// replicated and replayed strictly in order.
package epoch

import (
	"fmt"

	"aets/internal/wal"
)

// DefaultSize is the paper's empirically chosen epoch size (§VI-E): the
// number of committed transactions batched into one epoch.
const DefaultSize = 2048

// Epoch is one replication unit: a consecutive run of committed
// transactions in primary commit order.
type Epoch struct {
	Seq  uint64
	Txns []wal.Txn
}

// FirstTxnID returns the smallest transaction ID in the epoch.
func (e *Epoch) FirstTxnID() uint64 {
	if len(e.Txns) == 0 {
		return 0
	}
	return e.Txns[0].ID
}

// LastTxnID returns the largest transaction ID in the epoch.
func (e *Epoch) LastTxnID() uint64 {
	if len(e.Txns) == 0 {
		return 0
	}
	return e.Txns[len(e.Txns)-1].ID
}

// Entries returns the total number of DML entries in the epoch.
func (e *Epoch) Entries() int {
	n := 0
	for i := range e.Txns {
		n += len(e.Txns[i].Entries)
	}
	return n
}

// Size returns the total byte size of the epoch's DML entries.
func (e *Epoch) Size() int {
	n := 0
	for i := range e.Txns {
		n += e.Txns[i].Size()
	}
	return n
}

// Validate checks the epoch-level ordering invariants: transaction IDs are
// strictly increasing and commit timestamps are non-decreasing.
func (e *Epoch) Validate() error {
	for i := 1; i < len(e.Txns); i++ {
		if e.Txns[i].ID <= e.Txns[i-1].ID {
			return fmt.Errorf("epoch %d: txn IDs not strictly increasing at index %d (%d after %d)",
				e.Seq, i, e.Txns[i].ID, e.Txns[i-1].ID)
		}
		if e.Txns[i].CommitTS < e.Txns[i-1].CommitTS {
			return fmt.Errorf("epoch %d: commit timestamps decrease at index %d", e.Seq, i)
		}
	}
	return nil
}

// Batcher accumulates committed transactions and cuts an epoch every `size`
// transactions. The zero value is not usable; use NewBatcher.
type Batcher struct {
	size    int
	nextSeq uint64
	pending []wal.Txn
	lastID  uint64
}

// NewBatcher returns a Batcher cutting epochs of the given transaction
// count. size must be ≥ 1.
func NewBatcher(size int) *Batcher {
	if size < 1 {
		panic("epoch: batcher size must be >= 1")
	}
	return &Batcher{size: size}
}

// Add appends one committed transaction. If the pending batch reaches the
// epoch size, the completed epoch is returned; otherwise Add returns nil.
// Transactions must arrive in strictly increasing ID order.
func (b *Batcher) Add(t wal.Txn) (*Epoch, error) {
	if t.ID <= b.lastID {
		return nil, fmt.Errorf("epoch: txn %d arrives after txn %d", t.ID, b.lastID)
	}
	b.lastID = t.ID
	b.pending = append(b.pending, t)
	if len(b.pending) < b.size {
		return nil, nil
	}
	return b.cut(), nil
}

// Flush returns the partially filled pending epoch, or nil if none. The
// primary calls it when a load phase ends or on shutdown.
func (b *Batcher) Flush() *Epoch {
	if len(b.pending) == 0 {
		return nil
	}
	return b.cut()
}

func (b *Batcher) cut() *Epoch {
	e := &Epoch{Seq: b.nextSeq, Txns: b.pending}
	b.nextSeq++
	b.pending = nil
	return e
}

// Split cuts an already-assembled transaction list into epochs of the given
// size. It is the batch analogue of feeding every txn through a Batcher and
// flushing, and is used by benchmark drivers that pre-generate workloads.
// The input must be in strictly increasing ID order; a violation is
// reported as an error.
func Split(txns []wal.Txn, size int) ([]*Epoch, error) {
	b := NewBatcher(size)
	var out []*Epoch
	for _, t := range txns {
		e, err := b.Add(t)
		if err != nil {
			return nil, err
		}
		if e != nil {
			out = append(out, e)
		}
	}
	if e := b.Flush(); e != nil {
		out = append(out, e)
	}
	return out, nil
}

// MustSplit is Split for inputs that are ID-ordered by construction
// (generated workloads, test fixtures); it panics on a misordered
// input, mirroring regexp.MustCompile's contract.
func MustSplit(txns []wal.Txn, size int) []*Epoch {
	out, err := Split(txns, size)
	if err != nil {
		panic(err)
	}
	return out
}
