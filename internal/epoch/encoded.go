package epoch

import "aets/internal/wal"

// Encoded is the wire form of an epoch: the transactions' entries with
// BEGIN/COMMIT framing, flattened and encoded into one buffer. This is what
// the primary replicates and what every replayer consumes — forcing each
// replayer to pay its own, algorithm-specific parsing cost, as in the
// paper's experimental setup.
type Encoded struct {
	Seq uint64
	Buf []byte

	// Summary fields, available without parsing.
	TxnCount     int
	EntryCount   int // DML entries only
	FirstTxnID   uint64
	LastTxnID    uint64
	LastCommitTS int64
}

// Encode serialises an epoch into its wire form. firstLSN seeds the LSN
// sequence; the next unused LSN is returned so consecutive epochs share one
// LSN space.
func Encode(e *Epoch, firstLSN uint64) (Encoded, uint64) {
	entries, next := wal.FlattenTxns(e.Txns, firstLSN)
	enc := Encoded{
		Seq:        e.Seq,
		Buf:        wal.EncodeStream(entries),
		TxnCount:   len(e.Txns),
		EntryCount: e.Entries(),
		FirstTxnID: e.FirstTxnID(),
		LastTxnID:  e.LastTxnID(),
	}
	if n := len(e.Txns); n > 0 {
		enc.LastCommitTS = e.Txns[n-1].CommitTS
	}
	return enc, next
}

// EncodeAll encodes a sequence of epochs with a shared LSN space.
func EncodeAll(eps []*Epoch) []Encoded {
	out := make([]Encoded, len(eps))
	lsn := uint64(1)
	for i, e := range eps {
		out[i], lsn = Encode(e, lsn)
	}
	return out
}

// Decode parses the wire form back into transactions. Used by tests and by
// replayers that need the full image up front.
func (enc *Encoded) Decode() ([]wal.Txn, error) {
	entries, err := wal.DecodeStream(enc.Buf)
	if err != nil {
		return nil, err
	}
	return wal.AssembleTxns(entries)
}
