package replay

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"aets/internal/dispatch"
	"aets/internal/memtable"
	"aets/internal/wal"
)

// tplr.go implements TPLR, the two-phase parallel log replay algorithm
// (paper §V-A, Algorithms 1 and 2), for a single group batch.
//
// Phase 1 (translate): n workers pull transaction pieces off the batch,
// fully decode their frames, resolve the Memtable record each entry targets
// and build *uncommitted cells* — no locks, no dependency tracking, no
// installation into version chains. Completed pieces are handed to the
// waiting_commit_list.
//
// Phase 2 (commit): a single commit goroutine per group walks the group's
// commit_order_queue; for each slot it waits until that transaction's cells
// are in the waiting list, appends them to their records' version chains
// (the only locked step, and the lock hold time is one pointer swap), and
// advances the group's tg_cmt_ts.
//
// The waiting_commit_list is a slot-indexed ring rather than a keyed map:
// dispatch stores pieces in primary commit order, so piece i IS the i-th
// transaction the committer needs, and phase-1 workers deliver into a
// preallocated slot array while the committer waits on exactly the next
// slot. There is no broadcast storm — a worker takes the wake-up lock only
// when the committer has actually parked. All hand-off scaffolding (slots,
// deliveries, cells, offsets) is recycled through a sync.Pool, so the
// steady-state hand-off allocates nothing. The Versions and their decoded
// columns — which live on in the Memtable's version chains after the
// epoch is gone — are carved from a memtable.VersionArena per batch; the
// arena's memory comes back through the Memtable's pool once Vacuum has
// unlinked every version it issued, so under a running GC loop even the
// long-lived side of the hand-off stops allocating.

// cell is one uncommitted modification produced by phase 1: a pointer to
// the Memtable record plus the fully built version to link at commit. The
// version is carved from the batch's version slab in the embarrassingly
// parallel phase, so the single-threaded commit phase does nothing but set
// the commit timestamp and swing two pointers under the record lock.
type cell struct {
	rec *memtable.Record
	ver *memtable.Version
}

// delivery is a replayed transaction piece parked in the waiting list.
type delivery struct {
	cells    []cell
	commitTS int64
}

// errBox wraps an error for atomic publication from phase-1 workers.
type errBox struct{ err error }

// batchState is the recycled per-batch hand-off state: the slot ring, the
// delivery and cell slabs, and the per-piece cell offsets. Acquired from
// the engine's pool at the start of replayGroup and returned when the
// batch is fully committed.
type batchState struct {
	slots      []atomic.Pointer[delivery]
	deliveries []delivery
	cells      []cell
	offsets    []int

	errv   atomic.Pointer[errBox]
	mu     sync.Mutex
	cond   *sync.Cond
	parked atomic.Bool
}

// reset sizes the state for a batch of npieces pieces totalling nentries
// entries and clears any residue from the previous batch. Called before
// any worker goroutine exists, so plain writes are safe.
func (bs *batchState) reset(npieces, nentries int) {
	if bs.cond == nil {
		bs.cond = sync.NewCond(&bs.mu)
	}
	if cap(bs.slots) < npieces {
		bs.slots = make([]atomic.Pointer[delivery], npieces)
		bs.deliveries = make([]delivery, npieces)
		bs.offsets = make([]int, npieces)
	} else {
		bs.slots = bs.slots[:npieces]
		for i := range bs.slots {
			bs.slots[i].Store(nil)
		}
		bs.deliveries = bs.deliveries[:npieces]
		bs.offsets = bs.offsets[:npieces]
	}
	if cap(bs.cells) < nentries {
		bs.cells = make([]cell, nentries)
	} else {
		bs.cells = bs.cells[:nentries]
	}
	bs.errv.Store(nil)
	bs.parked.Store(false)
}

// deliver publishes slot i and wakes the committer only if it is parked.
func (bs *batchState) deliver(i int, d *delivery) {
	bs.slots[i].Store(d)
	if bs.parked.Load() {
		bs.mu.Lock()
		bs.cond.Broadcast()
		bs.mu.Unlock()
	}
}

// fail publishes the first worker error and wakes the committer.
func (bs *batchState) fail(err error) {
	bs.errv.CompareAndSwap(nil, &errBox{err})
	bs.mu.Lock()
	bs.cond.Broadcast()
	bs.mu.Unlock()
}

func (bs *batchState) errOrNil() error {
	if b := bs.errv.Load(); b != nil {
		return b.err
	}
	return nil
}

// take blocks until slot i's delivery is available (Algorithm 1's min-ID
// wait: slots are consumed in commit order, so waiting on slot i is
// waiting for its transaction to become the minimum). A short cooperative
// spin covers the common case where the pipeline is ahead of the
// committer; only then does the committer park on the condition variable.
func (bs *batchState) take(i int) (*delivery, error) {
	for spin := 0; spin < 128; spin++ {
		if d := bs.slots[i].Load(); d != nil {
			return d, nil
		}
		if err := bs.errOrNil(); err != nil {
			return nil, err
		}
		runtime.Gosched()
	}
	bs.mu.Lock()
	defer bs.mu.Unlock()
	bs.parked.Store(true)
	defer bs.parked.Store(false)
	for {
		if d := bs.slots[i].Load(); d != nil {
			return d, nil
		}
		if err := bs.errOrNil(); err != nil {
			return nil, err
		}
		bs.cond.Wait()
	}
}

// acquireBatch takes hand-off state from the engine pool, sized for the
// given batch shape.
func (e *Engine) acquireBatch(npieces, nentries int) *batchState {
	var bs *batchState
	if v := e.batchPool.Get(); v != nil {
		bs = v.(*batchState)
		e.cHandoffReuse.Inc()
	} else {
		bs = new(batchState)
		e.cHandoffAlloc.Inc()
	}
	bs.reset(npieces, nentries)
	return bs
}

func (e *Engine) releaseBatch(bs *batchState) {
	// Deliveries keep cell-slab sub-slices; drop them so the pool does not
	// pin record pointers beyond the batch's lifetime.
	for i := range bs.deliveries {
		bs.deliveries[i].cells = nil
	}
	for i := range bs.cells {
		bs.cells[i] = cell{}
	}
	e.batchPool.Put(bs)
}

// replayGroup runs TPLR over one group batch with n phase-1 workers. The
// calling goroutine acts as the group's single commit thread.
//
// When the group received a single worker, both phases collapse onto the
// committer goroutine: pieces arrive from dispatch already in commit order,
// so translating and committing them in sequence preserves exactly the
// two-phase semantics with none of the hand-off machinery. Workloads with
// many small groups (BusTracker's 65 singleton tables) spend most of their
// time on this path.
func (e *Engine) replayGroup(vs *visState, gb *dispatch.GroupBatch, n int) error {
	if n <= 1 {
		return e.replayGroupSerial(vs, gb)
	}
	bs := e.acquireBatch(len(gb.Pieces), gb.Entries)
	off := 0
	for i := range gb.Pieces {
		bs.offsets[i] = off
		off += len(gb.Pieces[i].Frames)
	}
	// Versions are installed into the Memtable's chains and outlive the
	// epoch, so they cannot ride the hand-off pool; they come from an
	// epoch arena instead, whose memory Vacuum eventually recycles.
	ar := e.mt.Arenas().Get()
	vers := ar.Versions(gb.Entries)
	decs := ar.Decoders(n)

	var next atomic.Int64
	var workers sync.WaitGroup
	for k := 0; k < n; k++ {
		workers.Add(1)
		go func(arena *wal.DecodeArena) {
			defer workers.Done()
			var tc tableCache
			t0 := time.Now()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(gb.Pieces) {
					break
				}
				p := &gb.Pieces[i]
				o := bs.offsets[i]
				cells := bs.cells[o : o+len(p.Frames) : o+len(p.Frames)]
				if err := e.translate(p, cells, vers[o:o+len(p.Frames)], arena, &tc); err != nil {
					bs.fail(fmt.Errorf("group %d txn %d: %w", gb.Group, p.TxnID, err))
					return
				}
				d := &bs.deliveries[i]
				d.cells = cells
				d.commitTS = p.CommitTS
				bs.deliver(i, d)
			}
			if e.cfg.Breakdown != nil {
				e.cfg.Breakdown.AddReplay(time.Since(t0))
			}
		}(decs[k])
	}

	var commitErr error
	for i := range gb.Pieces {
		d, err := bs.take(i)
		if err != nil {
			commitErr = err
			break
		}
		t0 := time.Now()
		for j := range d.cells {
			c := &d.cells[j]
			c.ver.CommitTS = d.commitTS
			c.rec.Append(c.ver)
		}
		e.publishGroup(vs, gb.Group, d.commitTS)
		cd := time.Since(t0)
		e.hCommit.Observe(cd)
		if e.cfg.Breakdown != nil {
			e.cfg.Breakdown.AddCommit(cd)
		}
	}

	workers.Wait()
	e.releaseBatch(bs)
	ar.Unpin()
	return commitErr
}

// replayGroupSerial is the single-worker fast path: translate and commit
// piece by piece in commit order on one goroutine, straight from the
// version slab with no hand-off at all.
func (e *Engine) replayGroupSerial(vs *visState, gb *dispatch.GroupBatch) error {
	ar := e.mt.Arenas().Get()
	defer ar.Unpin()
	vers := ar.Versions(gb.Entries)
	arena := ar.Decoders(1)[0]
	var tc tableCache
	vi := 0
	t0 := time.Now()
	for i := range gb.Pieces {
		p := &gb.Pieces[i]
		for _, frame := range p.Frames {
			entry, _, err := wal.DecodeTo(frame, arena)
			if err != nil {
				return fmt.Errorf("group %d txn %d: %w", gb.Group, p.TxnID, err)
			}
			rec := e.tableFor(&tc, entry.Table).GetOrCreate(entry.RowKey)
			v := &vers[vi]
			vi++
			v.TxnID = entry.TxnID
			v.Deleted = entry.Type == wal.TypeDelete
			v.Columns = entry.Columns
			tc := time.Now()
			v.CommitTS = p.CommitTS
			rec.Append(v)
			cd := time.Since(tc)
			e.hCommit.Observe(cd)
			if e.cfg.Breakdown != nil {
				e.cfg.Breakdown.AddCommit(cd)
				t0 = t0.Add(cd) // keep commit time out of the replay share
			}
		}
		e.publishGroup(vs, gb.Group, p.CommitTS)
	}
	if e.cfg.Breakdown != nil {
		e.cfg.Breakdown.AddReplay(time.Since(t0))
	}
	return nil
}

// tableCache is a per-worker one-entry table-handle cache: group batches
// are table-clustered, so consecutive entries overwhelmingly hit the same
// table and the Memtable map lookup happens once per table run instead of
// once per entry.
type tableCache struct {
	id  wal.TableID
	tab *memtable.Table
}

// tableFor resolves a table handle through the worker's cache.
func (e *Engine) tableFor(c *tableCache, id wal.TableID) *memtable.Table {
	if c.tab == nil || c.id != id {
		c.tab = e.mt.Table(id)
		c.id = id
	}
	return c.tab
}

// translate is TPLR phase 1 for one transaction piece: decode each frame
// and turn it into an uncommitted cell pointing at its Memtable record.
// Records are created on first reference (inserts), but no version is
// installed and no table-wide lock is taken — GetOrCreate synchronises
// only on the key's shard. Versions come from the batch's epoch arena;
// columns and value bytes from the worker's decode arena.
func (e *Engine) translate(p *dispatch.Piece, cells []cell, vers []memtable.Version, arena *wal.DecodeArena, tc *tableCache) error {
	for j, frame := range p.Frames {
		entry, _, err := wal.DecodeTo(frame, arena)
		if err != nil {
			return err
		}
		rec := e.tableFor(tc, entry.Table).GetOrCreate(entry.RowKey)
		v := &vers[j]
		v.TxnID = entry.TxnID
		v.Deleted = entry.Type == wal.TypeDelete
		v.Columns = entry.Columns
		cells[j] = cell{rec: rec, ver: v}
	}
	return nil
}
