package replay

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"aets/internal/dispatch"
	"aets/internal/memtable"
	"aets/internal/wal"
)

// tplr.go implements TPLR, the two-phase parallel log replay algorithm
// (paper §V-A, Algorithms 1 and 2), for a single group batch.
//
// Phase 1 (translate): n workers pull transaction pieces off the batch,
// fully decode their frames, resolve the Memtable record each entry targets
// and build *uncommitted cells* — no locks, no dependency tracking, no
// installation into version chains. Completed pieces are handed to the
// waiting_commit_list.
//
// Phase 2 (commit): a single commit goroutine per group walks the group's
// commit_order_queue; for each transaction ID it waits until that
// transaction's cells are in the waiting list, appends them to their
// records' version chains (the only locked step, and the lock hold time is
// one pointer swap), and advances the group's tg_cmt_ts.

// cell is one uncommitted modification produced by phase 1: a pointer to
// the Memtable record plus the fully built version to link at commit. The
// version object is allocated here, in the embarrassingly parallel phase,
// so the single-threaded commit phase does nothing but set the commit
// timestamp and swing two pointers under the record lock.
type cell struct {
	rec *memtable.Record
	ver *memtable.Version
}

// delivery is a replayed transaction piece parked in the waiting list.
type delivery struct {
	cells    []cell
	commitTS int64
}

// waitingList is the waiting_commit_list of one group batch.
type waitingList struct {
	mu    sync.Mutex
	cond  *sync.Cond
	ready map[uint64]*delivery
	err   error
}

func newWaitingList() *waitingList {
	w := &waitingList{ready: make(map[uint64]*delivery)}
	w.cond = sync.NewCond(&w.mu)
	return w
}

func (w *waitingList) deliver(txnID uint64, d *delivery) {
	w.mu.Lock()
	w.ready[txnID] = d
	w.mu.Unlock()
	w.cond.Broadcast()
}

func (w *waitingList) fail(err error) {
	w.mu.Lock()
	if w.err == nil {
		w.err = err
	}
	w.mu.Unlock()
	w.cond.Broadcast()
}

// take blocks until txnID's delivery is available (Algorithm 1's min-ID
// wait: the committer consumes the commit_order_queue in order, so waiting
// for a specific ID is equivalent to waiting for it to become the minimum).
func (w *waitingList) take(txnID uint64) (*delivery, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for w.ready[txnID] == nil && w.err == nil {
		w.cond.Wait()
	}
	if w.err != nil {
		return nil, w.err
	}
	d := w.ready[txnID]
	delete(w.ready, txnID)
	return d, nil
}

// replayGroup runs TPLR over one group batch with n phase-1 workers. The
// calling goroutine acts as the group's single commit thread.
//
// When the group received a single worker, both phases collapse onto the
// committer goroutine: pieces arrive from dispatch already in commit order,
// so translating and committing them in sequence preserves exactly the
// two-phase semantics with none of the hand-off machinery. Workloads with
// many small groups (BusTracker's 65 singleton tables) spend most of their
// time on this path.
func (e *Engine) replayGroup(vs *visState, gb *dispatch.GroupBatch, n int) error {
	if n <= 1 {
		return e.replayGroupSerial(vs, gb)
	}
	wl := newWaitingList()
	var next atomic.Int64

	var workers sync.WaitGroup
	for k := 0; k < n; k++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			t0 := time.Now()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(gb.Pieces) {
					break
				}
				p := &gb.Pieces[i]
				cells, err := e.translate(p)
				if err != nil {
					wl.fail(fmt.Errorf("group %d txn %d: %w", gb.Group, p.TxnID, err))
					return
				}
				wl.deliver(p.TxnID, &delivery{cells: cells, commitTS: p.CommitTS})
			}
			if e.cfg.Breakdown != nil {
				e.cfg.Breakdown.AddReplay(time.Since(t0))
			}
		}()
	}

	var commitErr error
	for _, txnID := range gb.CommitOrder {
		d, err := wl.take(txnID)
		if err != nil {
			commitErr = err
			break
		}
		t0 := time.Now()
		for i := range d.cells {
			c := &d.cells[i]
			c.ver.CommitTS = d.commitTS
			c.rec.Append(c.ver)
		}
		e.publishGroup(vs, gb.Group, d.commitTS)
		if e.cfg.Breakdown != nil {
			e.cfg.Breakdown.AddCommit(time.Since(t0))
		}
	}

	workers.Wait()
	return commitErr
}

// replayGroupSerial is the single-worker fast path: translate and commit
// piece by piece in commit order on one goroutine.
func (e *Engine) replayGroupSerial(vs *visState, gb *dispatch.GroupBatch) error {
	t0 := time.Now()
	for i := range gb.Pieces {
		p := &gb.Pieces[i]
		cells, err := e.translate(p)
		if err != nil {
			return fmt.Errorf("group %d txn %d: %w", gb.Group, p.TxnID, err)
		}
		tc := time.Now()
		for j := range cells {
			c := &cells[j]
			c.ver.CommitTS = p.CommitTS
			c.rec.Append(c.ver)
		}
		e.publishGroup(vs, gb.Group, p.CommitTS)
		if e.cfg.Breakdown != nil {
			e.cfg.Breakdown.AddCommit(time.Since(tc))
			t0 = t0.Add(time.Since(tc)) // keep commit time out of the replay share
		}
	}
	if e.cfg.Breakdown != nil {
		e.cfg.Breakdown.AddReplay(time.Since(t0))
	}
	return nil
}

// translate is TPLR phase 1 for one transaction piece: decode each frame
// and turn it into an uncommitted cell pointing at its Memtable record.
// Records are created on first reference (inserts), but no version is
// installed and no record lock is taken.
func (e *Engine) translate(p *dispatch.Piece) ([]cell, error) {
	cells := make([]cell, 0, len(p.Frames))
	for _, frame := range p.Frames {
		entry, _, err := wal.Decode(frame)
		if err != nil {
			return nil, err
		}
		rec := e.mt.Table(entry.Table).GetOrCreate(entry.RowKey)
		cells = append(cells, cell{
			rec: rec,
			ver: &memtable.Version{
				TxnID:   entry.TxnID,
				Deleted: entry.Type == wal.TypeDelete,
				Columns: entry.Columns,
			},
		})
	}
	return cells, nil
}
