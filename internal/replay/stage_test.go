package replay

import (
	"testing"

	"aets/internal/epoch"
	"aets/internal/grouping"
	"aets/internal/memtable"
	"aets/internal/wal"
)

// buildSkewedTxns creates transactions where the hot table receives
// hotShare of the entries and the cold table the rest.
func buildSkewedTxns(n int, hotPerTxn, coldPerTxn int) []wal.Txn {
	hot, cold := wal.TableID(1), wal.TableID(2)
	txns := make([]wal.Txn, n)
	for i := range txns {
		id := uint64(i + 1)
		t := wal.Txn{ID: id, CommitTS: int64(id) * 10}
		for k := 0; k < hotPerTxn; k++ {
			t.Entries = append(t.Entries, wal.Entry{
				Type: wal.TypeUpdate, TxnID: id, Table: hot, RowKey: uint64(i*hotPerTxn + k + 1),
				Columns: []wal.Column{{ID: 1, Value: make([]byte, 32)}},
			})
		}
		for k := 0; k < coldPerTxn; k++ {
			t.Entries = append(t.Entries, wal.Entry{
				Type: wal.TypeUpdate, TxnID: id, Table: cold, RowKey: uint64(i*coldPerTxn + k + 1),
				Columns: []wal.Column{{ID: 1, Value: make([]byte, 32)}},
			})
		}
		txns[i] = t
	}
	return txns
}

// TestStageTimesTrackEntryShares pins the Fig 8(b)/9(b) metric: with a
// 30%-hot workload, the hot stage's share of total replay time must be far
// below one; with a 90%-hot workload it must dominate.
func TestStageTimesTrackEntryShares(t *testing.T) {
	plan := grouping.Build(map[wal.TableID]float64{1: 1000},
		[]wal.TableID{1, 2}, grouping.Options{PerTable: true})

	// Serial scheduler: the Fig 8(b)/9(b) shares are defined over exclusive
	// stage wall time. Pipelined mode overlaps stages of adjacent epochs, so
	// a group's wall time also contains contention with the other epoch's
	// groups and the shares blur.
	run := func(hotPerTxn, coldPerTxn int) float64 {
		mt := memtable.New()
		e := New("AETS", mt, plan, Config{Workers: 2, TwoStage: true})
		e.Start()
		defer e.Stop()
		for _, enc := range epoch.EncodeAll(epoch.MustSplit(buildSkewedTxns(2000, hotPerTxn, coldPerTxn), 256)) {
			enc := enc
			feed(t, e, &enc)
		}
		e.Drain()
		if err := e.Err(); err != nil {
			t.Fatal(err)
		}
		hot, cold := e.StageTimes()
		if hot <= 0 || cold <= 0 {
			t.Fatalf("stage times %v %v", hot, cold)
		}
		return float64(hot) / float64(hot+cold)
	}

	lowShare := run(3, 7)  // 30% hot entries
	highShare := run(9, 1) // 90% hot entries
	if lowShare >= highShare {
		t.Fatalf("hot-stage share not tracking entry share: 30%%-hot=%.2f 90%%-hot=%.2f",
			lowShare, highShare)
	}
	if lowShare > 0.65 {
		t.Fatalf("30%%-hot workload spends %.2f of replay in the hot stage", lowShare)
	}
	if highShare < 0.6 {
		t.Fatalf("90%%-hot workload spends only %.2f of replay in the hot stage", highShare)
	}
}

// TestSingleStageCollapsesToHotBucket verifies TPLR mode accounts all
// replay time to the first bucket.
func TestSingleStageCollapsesToHotBucket(t *testing.T) {
	plan := grouping.SingleGroup([]wal.TableID{1, 2})
	mt := memtable.New()
	e := New("TPLR", mt, plan, Config{Workers: 2, TwoStage: false, Pipeline: 2})
	e.Start()
	defer e.Stop()
	for _, enc := range epoch.EncodeAll(epoch.MustSplit(buildSkewedTxns(500, 2, 2), 128)) {
		enc := enc
		feed(t, e, &enc)
	}
	e.Drain()
	hot, cold := e.StageTimes()
	if hot <= 0 || cold != 0 {
		t.Fatalf("single-stage times: hot=%v cold=%v", hot, cold)
	}
}

// TestSerialFastPathEquivalence forces the single-worker serial path and
// checks it produces the same memtable as the multi-worker path.
func TestSerialFastPathEquivalence(t *testing.T) {
	plan := grouping.SingleGroup([]wal.TableID{1, 2})
	txns := buildSkewedTxns(800, 2, 3)

	run := func(workers int) *memtable.Memtable {
		mt := memtable.New()
		e := New("AETS", mt, plan, Config{Workers: workers, TwoStage: true, Pipeline: 2})
		e.Start()
		defer e.Stop()
		for _, enc := range epoch.EncodeAll(epoch.MustSplit(txns, 200)) {
			enc := enc
			feed(t, e, &enc)
		}
		e.Drain()
		if err := e.Err(); err != nil {
			t.Fatal(err)
		}
		return mt
	}

	serial := run(1)
	parallel := run(6)
	for _, tid := range []wal.TableID{1, 2} {
		if serial.Table(tid).Len() != parallel.Table(tid).Len() {
			t.Fatalf("table %d: %d vs %d records", tid,
				serial.Table(tid).Len(), parallel.Table(tid).Len())
		}
	}
}
