package replay

import (
	"sync"
	"testing"
	"time"

	"aets/internal/alloc"
	"aets/internal/epoch"
	"aets/internal/grouping"
	"aets/internal/memtable"
	"aets/internal/metrics"
	"aets/internal/primary"
	"aets/internal/reference"
	"aets/internal/wal"
	"aets/internal/workload"
)

// buildTPCCPlan reproduces the paper's TPC-C grouping (§VI-A3): one hot
// group {district, stock, customer, order} at rate r, one hot group
// {order_line} at rate 2r, and singleton cold groups.
func buildTPCCPlan(gen workload.Generator, r float64) *grouping.Plan {
	rates := map[wal.TableID]float64{
		workload.TPCCDistrict: r, workload.TPCCStock: r,
		workload.TPCCCustomer: r, workload.TPCCOrder: r,
		workload.TPCCOrderLine: 2 * r,
	}
	return grouping.Build(rates, workload.TableIDs(gen.Tables()),
		grouping.Options{Eps: 0.05, MinPts: 2})
}

func runEngine(t *testing.T, cfg Config, plan *grouping.Plan, txns []wal.Txn, epochSize int) *memtable.Memtable {
	t.Helper()
	// The pipelined scheduler is the default under test; serial-path
	// coverage opts out with Pipeline < 0 (normalised to 0 below).
	if cfg.Pipeline == 0 {
		cfg.Pipeline = 2
	} else if cfg.Pipeline < 0 {
		cfg.Pipeline = 0
	}
	mt := memtable.New()
	e := New("AETS", mt, plan, cfg)
	e.Start()
	defer e.Stop()
	for _, enc := range epoch.EncodeAll(epoch.MustSplit(txns, epochSize)) {
		enc := enc
		feed(t, e, &enc)
	}
	e.Drain()
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
	return mt
}

func feed(t *testing.T, e *Engine, enc *epoch.Encoded) {
	t.Helper()
	if err := e.Feed(enc); err != nil {
		t.Fatal(err)
	}
}

func TestEngineMatchesSerialReference(t *testing.T) {
	gen := workload.NewTPCC(4)
	p := primary.New(gen, 1)
	txns := p.GenerateTxns(3000)

	ref := memtable.New()
	reference.Apply(ref, txns)

	plan := buildTPCCPlan(gen, 1000)
	mt := runEngine(t, Config{Workers: 8, TwoStage: true}, plan, txns, 256)

	tables := workload.TableIDs(gen.Tables())
	if err := reference.Equal(ref, mt, tables); err != nil {
		t.Fatal(err)
	}
	if err := reference.CheckChains(mt, tables); err != nil {
		t.Fatal(err)
	}
}

func TestEngineSingleGroupTPLR(t *testing.T) {
	gen := workload.NewTPCC(2)
	p := primary.New(gen, 2)
	txns := p.GenerateTxns(1500)

	ref := memtable.New()
	reference.Apply(ref, txns)

	plan := grouping.SingleGroup(workload.TableIDs(gen.Tables()))
	mt := runEngine(t, Config{Workers: 8, TwoStage: false}, plan, txns, 128)
	if err := reference.Equal(ref, mt, workload.TableIDs(gen.Tables())); err != nil {
		t.Fatal(err)
	}
}

func TestEngineVariousWorkerCounts(t *testing.T) {
	gen := workload.NewTPCC(1)
	p := primary.New(gen, 3)
	txns := p.GenerateTxns(600)
	ref := memtable.New()
	reference.Apply(ref, txns)
	for _, workers := range []int{1, 2, 3, 16} {
		plan := buildTPCCPlan(gen, 100)
		mt := runEngine(t, Config{Workers: workers, TwoStage: true}, plan, txns, 100)
		if err := reference.Equal(ref, mt, workload.TableIDs(gen.Tables())); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
	}
}

func TestVisibilityAfterDrain(t *testing.T) {
	gen := workload.NewTPCC(2)
	p := primary.New(gen, 4)
	txns := p.GenerateTxns(500)
	lastTS := txns[len(txns)-1].CommitTS

	plan := buildTPCCPlan(gen, 1000)
	mt := memtable.New()
	e := New("AETS", mt, plan, Config{Workers: 4, TwoStage: true, Pipeline: 2})
	e.Start()
	defer e.Stop()
	for _, enc := range epoch.EncodeAll(epoch.MustSplit(txns, 128)) {
		enc := enc
		feed(t, e, &enc)
	}
	e.Drain()

	done := make(chan struct{})
	go func() {
		e.WaitVisible(lastTS, []wal.TableID{workload.TPCCOrderLine, workload.TPCCHistory})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("WaitVisible did not return after Drain")
	}
	if e.GlobalTS() < lastTS {
		t.Fatalf("global ts %d < last commit %d", e.GlobalTS(), lastTS)
	}
}

func TestHotVisibleBeforeColdWithinEpoch(t *testing.T) {
	// Construct an epoch where a huge cold-table transaction precedes a
	// small hot-table transaction; the hot data must become visible without
	// waiting for the cold replay (the Fig 1 motivating example).
	hot, cold := wal.TableID(1), wal.TableID(2)
	plan := grouping.Build(map[wal.TableID]float64{hot: 1000},
		[]wal.TableID{hot, cold}, grouping.Options{PerTable: true})

	var txns []wal.Txn
	// One fat cold transaction (many entries), then a tiny hot one.
	fat := wal.Txn{ID: 1, CommitTS: 10}
	for k := uint64(1); k <= 20000; k++ {
		fat.Entries = append(fat.Entries, wal.Entry{
			Type: wal.TypeUpdate, TxnID: 1, Table: cold, RowKey: k,
			Columns: []wal.Column{{ID: 1, Value: make([]byte, 64)}},
		})
	}
	txns = append(txns, fat)
	txns = append(txns, wal.Txn{ID: 2, CommitTS: 20, Entries: []wal.Entry{{
		Type: wal.TypeUpdate, TxnID: 2, Table: hot, RowKey: 1,
		Columns: []wal.Column{{ID: 1, Value: []byte("fresh")}},
	}}})

	mt := memtable.New()
	e := New("AETS", mt, plan, Config{Workers: 2, TwoStage: true, Pipeline: 2})
	e.Start()
	defer e.Stop()

	start := time.Now()
	for _, enc := range epoch.EncodeAll(epoch.MustSplit(txns, 2)) {
		enc := enc
		feed(t, e, &enc)
	}
	e.WaitVisible(20, []wal.TableID{hot})
	hotDelay := time.Since(start)
	e.WaitVisible(20, []wal.TableID{cold})
	coldDelay := time.Since(start)
	e.Drain()

	if e.Err() != nil {
		t.Fatal(e.Err())
	}
	if hotDelay >= coldDelay {
		t.Fatalf("hot table not visible before cold: hot=%v cold=%v", hotDelay, coldDelay)
	}
	v := mt.Table(hot).Get(1).Visible(20)
	if v == nil || string(v.Columns[0].Value) != "fresh" {
		t.Fatalf("hot row wrong after visibility: %+v", v)
	}
}

func TestHeartbeatUnblocksIdleGroups(t *testing.T) {
	hot, cold := wal.TableID(1), wal.TableID(2)
	plan := grouping.Build(map[wal.TableID]float64{hot: 10},
		[]wal.TableID{hot, cold}, grouping.Options{PerTable: true})
	mt := memtable.New()
	e := New("AETS", mt, plan, Config{Workers: 2, TwoStage: true, Pipeline: 2})
	e.Start()
	defer e.Stop()

	// Heartbeat with no transactions must advance visibility everywhere.
	feed(t, e, &epoch.Encoded{Seq: 0, LastCommitTS: 500})
	done := make(chan struct{})
	go func() {
		e.WaitVisible(500, []wal.TableID{hot, cold})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("heartbeat did not unblock waiters")
	}
}

func TestPlanSwapAtEpochBoundary(t *testing.T) {
	gen := workload.NewTPCC(1)
	p := primary.New(gen, 6)
	txns := p.GenerateTxns(1000)
	ref := memtable.New()
	reference.Apply(ref, txns)

	mt := memtable.New()
	plan1 := buildTPCCPlan(gen, 100)
	e := New("AETS", mt, plan1, Config{Workers: 4, TwoStage: true, Pipeline: 2})
	e.Start()
	defer e.Stop()

	encs := epoch.EncodeAll(epoch.MustSplit(txns, 100))
	for i := range encs {
		if i == len(encs)/2 {
			// Swap to per-table singleton groups mid-stream.
			e.SetPlan(grouping.Build(map[wal.TableID]float64{
				workload.TPCCOrderLine: 500, workload.TPCCStock: 400,
			}, workload.TableIDs(gen.Tables()), grouping.Options{PerTable: true}))
		}
		feed(t, e, &encs[i])
	}
	e.Drain()
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
	if err := reference.Equal(ref, mt, workload.TableIDs(gen.Tables())); err != nil {
		t.Fatal(err)
	}
	if len(e.Plan().Groups) != len(gen.Tables()) {
		t.Fatalf("plan swap not applied: %d groups", len(e.Plan().Groups))
	}
}

func TestBreakdownAccumulates(t *testing.T) {
	gen := workload.NewTPCC(1)
	p := primary.New(gen, 7)
	txns := p.GenerateTxns(400)
	var bd metrics.Breakdown
	plan := buildTPCCPlan(gen, 100)
	runEngine(t, Config{Workers: 2, TwoStage: true, Breakdown: &bd}, plan, txns, 100)
	d, r, c := bd.Shares()
	if d <= 0 || r <= 0 || c <= 0 {
		t.Fatalf("breakdown shares: %v %v %v", d, r, c)
	}
	if diff := d + r + c; diff < 0.999 || diff > 1.001 {
		t.Fatalf("shares sum to %v", diff)
	}
	// Replay dominates (Table II shows >98%).
	if r < 0.5 {
		t.Fatalf("replay share suspiciously low: %v", r)
	}
}

func TestUrgencyConfigRespected(t *testing.T) {
	gen := workload.NewTPCC(1)
	p := primary.New(gen, 8)
	txns := p.GenerateTxns(300)
	ref := memtable.New()
	reference.Apply(ref, txns)
	for _, u := range []alloc.UrgencyFunc{alloc.LogUrgency, alloc.LinearUrgency, alloc.NoURgency} {
		plan := buildTPCCPlan(gen, 5000)
		mt := runEngine(t, Config{Workers: 4, TwoStage: true, Urgency: u}, plan, txns, 100)
		if err := reference.Equal(ref, mt, workload.TableIDs(gen.Tables())); err != nil {
			t.Fatal(err)
		}
	}
}

func TestGroupTSAdvancesMonotonically(t *testing.T) {
	gen := workload.NewTPCC(1)
	p := primary.New(gen, 9)
	txns := p.GenerateTxns(800)
	plan := buildTPCCPlan(gen, 100)
	mt := memtable.New()
	e := New("AETS", mt, plan, Config{Workers: 4, TwoStage: true, Pipeline: 2})
	e.Start()
	defer e.Stop()

	stop := make(chan struct{})
	violation := make(chan int64, 1)
	go func() {
		var last int64
		for {
			select {
			case <-stop:
				return
			default:
				cur := e.GroupTS(workload.TPCCOrderLine)
				if cur < last {
					select {
					case violation <- cur:
					default:
					}
					return
				}
				last = cur
			}
		}
	}()
	for _, enc := range epoch.EncodeAll(epoch.MustSplit(txns, 64)) {
		enc := enc
		feed(t, e, &enc)
	}
	e.Drain()
	close(stop)
	select {
	case ts := <-violation:
		t.Fatalf("tg_cmt_ts moved backwards to %d", ts)
	default:
	}
}

func TestEngineLifecycleErrors(t *testing.T) {
	plan := grouping.SingleGroup([]wal.TableID{1})
	enc := &epoch.Encoded{Seq: 0, LastCommitTS: 1}

	// Feed before Start must fail fast, not block on the scheduler-less
	// feed queue forever.
	e := New("AETS", memtable.New(), plan, Config{Workers: 1, Pipeline: 2})
	if err := e.Feed(enc); err != ErrNotStarted {
		t.Fatalf("Feed before Start: got %v, want ErrNotStarted", err)
	}

	e.Start()
	e.Start() // idempotent
	if err := e.Feed(enc); err != nil {
		t.Fatalf("Feed on started engine: %v", err)
	}
	e.Stop()
	e.Stop() // idempotent
	if err := e.Feed(enc); err != ErrStopped {
		t.Fatalf("Feed after Stop: got %v, want ErrStopped", err)
	}

	// Stop on a never-started engine must not hang, and must leave Feed
	// failing with ErrStopped.
	e2 := New("AETS", memtable.New(), plan, Config{Workers: 1})
	e2.Stop()
	if err := e2.Feed(enc); err != ErrStopped {
		t.Fatalf("Feed after Stop-without-Start: got %v, want ErrStopped", err)
	}
}

func TestEngineConcurrentFeedStop(t *testing.T) {
	// Feeders racing Stop must each either enqueue successfully or get
	// ErrStopped — never panic on a closed channel or deadlock.
	plan := grouping.SingleGroup([]wal.TableID{1})
	for round := 0; round < 20; round++ {
		e := New("AETS", memtable.New(), plan, Config{Workers: 1, Pipeline: 2})
		e.Start()
		var wg sync.WaitGroup
		for f := 0; f < 4; f++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					if err := e.Feed(&epoch.Encoded{Seq: uint64(i), LastCommitTS: int64(i + 1)}); err != nil {
						if err != ErrStopped {
							t.Errorf("Feed: %v", err)
						}
						return
					}
				}
			}()
		}
		e.Stop()
		wg.Wait()
		if err := e.Err(); err != nil {
			t.Fatal(err)
		}
	}
}
