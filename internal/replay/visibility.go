package replay

import (
	"sync/atomic"
	"time"

	"aets/internal/wal"
)

// visibility.go implements Algorithm 3 (paper §V-B): a query arriving with
// snapshot timestamp qts over a set of tables blocks until either the
// minimum tg_cmt_ts of the groups it touches, or the global commit
// timestamp, reaches qts. Writers publish progress through atomic
// timestamps and wake waiters via a condition variable; the broadcast is
// skipped entirely when no query is waiting.

// publishGroup advances a group's tg_cmt_ts to at least ts and wakes
// waiters. Concurrent publishers (the group committer and heartbeats) are
// reconciled with a CAS max-loop so the timestamp is monotone.
func (e *Engine) publishGroup(vs *visState, gi int, ts int64) {
	advanceMax(&vs.tg[gi], ts)
	e.wake()
}

// publishAll advances every group and the global commit timestamp to ts.
// Called at epoch completion and on heartbeat epochs.
func (e *Engine) publishAll(vs *visState, ts int64) {
	for i := range vs.tg {
		advanceMax(&vs.tg[i], ts)
	}
	advanceMax(&e.global, ts)
	e.wake()
}

func (e *Engine) wake() {
	if e.waiters.Load() == 0 {
		return
	}
	// Lock/broadcast pairing guarantees a waiter that failed its check is
	// either already parked in Wait (and gets this broadcast) or will
	// re-check after acquiring the lock and observe the new timestamps.
	e.visMu.Lock()
	e.visCond.Broadcast()
	e.visMu.Unlock()
}

// GlobalTS returns the global commit timestamp: the maximum commit
// timestamp of fully replayed epochs (and heartbeats).
func (e *Engine) GlobalTS() int64 { return e.global.Load() }

// GroupTS returns the tg_cmt_ts of the group currently holding table t, or
// the global timestamp if the table is unknown to the plan.
func (e *Engine) GroupTS(t wal.TableID) int64 {
	vs := e.vis.Load()
	if gi, ok := vs.plan.GroupOf(t); ok {
		return vs.tg[gi].Load()
	}
	return e.global.Load()
}

// visibleAt reports whether a query at qts over tables can proceed.
func (e *Engine) visibleAt(qts int64, tables []wal.TableID) bool {
	if e.global.Load() >= qts {
		return true
	}
	vs := e.vis.Load()
	for _, t := range tables {
		gi, ok := vs.plan.GroupOf(t)
		if !ok {
			return false // unknown table: only the global timestamp admits it
		}
		if vs.tg[gi].Load() < qts {
			return false
		}
	}
	return true
}

// WaitVisible blocks until every record version with commit timestamp ≤ qts
// in the given tables is visible (Algorithm 3, lines 4-10). After it
// returns, reads at qts on those tables satisfy the primary's commit order.
// Blocked waits are recorded in the replay_wait_visible_seconds histogram;
// the already-visible fast path records nothing and stays free.
func (e *Engine) WaitVisible(qts int64, tables []wal.TableID) {
	if e.visibleAt(qts, tables) {
		return
	}
	t0 := time.Now()
	e.waiters.Add(1)
	defer e.waiters.Add(-1)
	e.visMu.Lock()
	for !e.visibleAt(qts, tables) {
		e.visCond.Wait()
	}
	e.visMu.Unlock()
	e.hWait.Observe(time.Since(t0))
}

// advanceMax atomically raises a to at least v.
func advanceMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if cur >= v || a.CompareAndSwap(cur, v) {
			return
		}
	}
}
