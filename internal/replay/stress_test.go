package replay

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"aets/internal/epoch"
	"aets/internal/grouping"
	"aets/internal/memtable"
	"aets/internal/wal"
)

// TestVisibilityInvariantStress hammers the pipelined scheduler with
// concurrent snapshot readers while the feeder interleaves plan swaps and
// heartbeat epochs, and checks the two visibility invariants the paper's
// Algorithm 3 promises:
//
//  1. After WaitVisible(qts) returns for a set of tables, every version
//     with CommitTS ≤ qts in those tables is installed — verified exactly,
//     because the workload is deterministic: transaction j writes row
//     ((j-1) mod K)+1 of both tables with commit timestamp j*10, so the
//     version a reader must see at qts is computable in closed form.
//  2. Within the active plan, a hot group's tg_cmt_ts never trails a cold
//     group's: hot data publishes no later than cold in every epoch.
//
// Run under -race this also serves as the scheduler's concurrency smoke
// test: per-group chaining, the completion chain, plan-swap barriers and
// heartbeat publication all race against readers here.
func TestVisibilityInvariantStress(t *testing.T) {
	const (
		hotT  = wal.TableID(1)
		coldT = wal.TableID(2)
		nTxns = 2400
		nRows = 16
		eSize = 32
	)
	mkPlan := func(rate float64) *grouping.Plan {
		return grouping.Build(map[wal.TableID]float64{hotT: rate},
			[]wal.TableID{hotT, coldT}, grouping.Options{PerTable: true})
	}

	// Every transaction touches BOTH tables: that is what makes invariant 2
	// observable (a group untouched by an epoch legitimately publishes the
	// epoch end early, which would let a cold singleton race ahead of hot).
	txns := make([]wal.Txn, nTxns)
	for i := range txns {
		j := uint64(i + 1)
		row := uint64(i%nRows) + 1
		val := make([]byte, 8)
		binary.BigEndian.PutUint64(val, j)
		txns[i] = wal.Txn{ID: j, CommitTS: int64(j) * 10, Entries: []wal.Entry{
			{Type: wal.TypeUpdate, TxnID: j, Table: hotT, RowKey: row,
				Columns: []wal.Column{{ID: 1, Value: val}}},
			{Type: wal.TypeUpdate, TxnID: j, Table: coldT, RowKey: row,
				Columns: []wal.Column{{ID: 1, Value: val}}},
		}}
	}

	mt := memtable.New()
	e := New("AETS", mt, mkPlan(1000), Config{Workers: 4, TwoStage: true, Pipeline: 3})
	e.Start()
	defer e.Stop()

	var (
		shippedMu sync.Mutex
		shippedTS int64
	)
	shipped := func() int64 {
		shippedMu.Lock()
		defer shippedMu.Unlock()
		return shippedTS
	}

	stop := make(chan struct{})
	violations := make(chan string, 4)

	// Invariant 2 sampler: cold first, then hot. Both timestamps are
	// monotone, so hot read after cold must be >= the cold sample unless
	// hot actually published later than cold at some instant.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			c := e.GroupTS(coldT)
			h := e.GroupTS(hotT)
			if h < c {
				select {
				case violations <- fmt.Sprintf("hot tg_cmt_ts %d < cold %d", h, c):
				default:
				}
				return
			}
			runtime.Gosched()
		}
	}()

	// Invariant 1 checkers: WaitVisible at a random already-shipped qts,
	// then verify the exact newest-visible version of a few rows in both
	// tables against the closed-form expectation.
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := shipped()
				if s < 10 {
					runtime.Gosched()
					continue
				}
				committed := s / 10 // transactions with CommitTS <= s
				qts := (rng.Int63n(committed) + 1) * 10
				e.WaitVisible(qts, []wal.TableID{hotT, coldT})
				n := qts / 10 // txns that must be fully visible
				for probe := 0; probe < 3; probe++ {
					idx := rng.Int63n(nRows) // 0-based row index
					if n < idx+1 {
						continue // row not written yet at qts
					}
					// Latest txn j <= n writing this row: j ≡ idx+1 (mod K).
					j := idx + 1 + nRows*((n-1-idx)/nRows)
					for _, tbl := range []wal.TableID{hotT, coldT} {
						rec := mt.Table(tbl).Get(uint64(idx) + 1)
						if rec == nil {
							select {
							case violations <- fmt.Sprintf("table %d row %d missing at qts %d", tbl, idx+1, qts):
							default:
							}
							return
						}
						v := rec.Visible(qts)
						if v == nil || v.CommitTS != j*10 ||
							binary.BigEndian.Uint64(v.Columns[0].Value) != uint64(j) {
							got := "nil"
							if v != nil {
								got = fmt.Sprintf("ts=%d val=%d", v.CommitTS, binary.BigEndian.Uint64(v.Columns[0].Value))
							}
							select {
							case violations <- fmt.Sprintf("table %d row %d at qts %d: got %s, want txn %d", tbl, idx+1, qts, got, j):
							default:
							}
							return
						}
					}
				}
			}
		}(int64(c) + 7)
	}

	// Feeder: epochs in order, a heartbeat every 7th epoch, a plan swap
	// (alternating rate, same hot table) every 11th.
	encs := epoch.EncodeAll(epoch.MustSplit(txns, eSize))
	rate := 1000.0
	for i := range encs {
		if err := e.Feed(&encs[i]); err != nil {
			t.Fatal(err)
		}
		shippedMu.Lock()
		shippedTS = encs[i].LastCommitTS
		hb := shippedTS
		shippedMu.Unlock()
		if i%7 == 6 {
			if err := e.Feed(&epoch.Encoded{Seq: encs[i].Seq, LastCommitTS: hb}); err != nil {
				t.Fatal(err)
			}
		}
		if i%11 == 10 {
			rate = 3000 - rate // alternate 1000 <-> 2000
			e.SetPlan(mkPlan(rate))
		}
	}
	e.Drain()
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	select {
	case msg := <-violations:
		t.Fatal(msg)
	default:
	}
}
