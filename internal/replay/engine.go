// Package replay implements the AETS framework: epoch-ordered, two-stage
// (hot then cold), table-group parallel log replay with the TPLR two-phase
// algorithm, adaptive per-group worker allocation, and Algorithm 3
// visibility for readers.
package replay

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"aets/internal/alloc"
	"aets/internal/dispatch"
	"aets/internal/epoch"
	"aets/internal/grouping"
	"aets/internal/memtable"
	"aets/internal/metrics"
)

// Lifecycle errors returned by Feed.
var (
	// ErrNotStarted is returned by Feed before Start.
	ErrNotStarted = errors.New("replay: engine not started")
	// ErrStopped is returned by Feed after Stop.
	ErrStopped = errors.New("replay: engine stopped")
)

// Config parameterises an Engine.
type Config struct {
	// Workers is the total replay worker budget T shared by all groups of a
	// stage. Defaults to GOMAXPROCS.
	Workers int
	// Urgency maps a group's access rate to its thread-allocation weight.
	// Defaults to alloc.LogUrgency (the paper's λ = log r).
	Urgency alloc.UrgencyFunc
	// TwoStage enables the hot-groups-first staging. Disabling it yields
	// plain grouped TPLR: all groups replay in a single stage.
	TwoStage bool
	// Breakdown, when non-nil, accumulates the Table II phase timing.
	Breakdown *metrics.Breakdown
	// FeedDepth is the epoch queue depth between Feed and the scheduler.
	FeedDepth int
	// Pipeline is the epoch pipeline depth: the maximum number of epochs
	// concurrently in flight (dispatched or replaying), with per-group
	// epoch sequencing preserving commit order. 0 keeps the serial
	// scheduler: epoch N+1 is not dispatched until N is fully committed.
	Pipeline int
	// Registry receives the engine's operational metrics (pipeline depth,
	// epochs in flight, buffer-recycling counters). Defaults to
	// metrics.Default.
	Registry *metrics.Registry
}

func (c *Config) fill() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Urgency == nil {
		c.Urgency = alloc.LogUrgency
	}
	if c.FeedDepth <= 0 {
		c.FeedDepth = 8
	}
	if c.Pipeline < 0 {
		c.Pipeline = 0
	}
	if c.Registry == nil {
		c.Registry = metrics.Default
	}
}

// Engine lifecycle states.
const (
	stateNew int32 = iota
	stateStarted
	stateStopped
)

// visState snapshots the group plan together with its per-group commit
// timestamps; it is swapped atomically when the plan changes at an epoch
// boundary.
type visState struct {
	plan *grouping.Plan
	tg   []atomic.Int64 // tg_cmt_ts per group
}

// Engine is the AETS backup-side replay engine. Create with New, then
// Start; Feed epochs in order; readers call WaitVisible. The zero value is
// not usable.
type Engine struct {
	name string
	cfg  Config
	mt   *memtable.Memtable

	planMu   sync.Mutex
	nextPlan *grouping.Plan

	vis    atomic.Pointer[visState]
	global atomic.Int64

	visMu   sync.Mutex
	visCond *sync.Cond
	waiters atomic.Int64

	feed     chan *epoch.Encoded
	inflight sync.WaitGroup
	loopDone chan struct{}

	// lifecycle serialises Feed against Stop's close of the feed channel;
	// state gates both without requiring the lock for reads.
	lifecycle sync.RWMutex
	state     atomic.Int32

	errMu sync.Mutex
	err   error

	txns    atomic.Int64
	entries atomic.Int64

	hotStageNS  atomic.Int64
	coldStageNS atomic.Int64

	bufPool   sync.Pool // *dispatch.Buffers
	batchPool sync.Pool // *batchState

	epochsInflight atomic.Int64
	gDepth         *metrics.Gauge
	gInflight      *metrics.Gauge
	cEpochs        *metrics.Counter
	cHandoffReuse  *metrics.Counter
	cHandoffAlloc  *metrics.Counter
	cDispatchReuse *metrics.Counter
	cDispatchAlloc *metrics.Counter

	// Stage latency histograms (paper Table II's dispatch/replay/commit
	// breakdown, as live distributions): per-epoch dispatch time, per-piece
	// TPLR commit time, and per-query WaitVisible block time. Observe is
	// allocation-free, so these sit on the pinned hot paths.
	hDispatch *metrics.Histogram
	hCommit   *metrics.Histogram
	hWait     *metrics.Histogram
}

// New returns an engine named name over mt with the initial group plan.
func New(name string, mt *memtable.Memtable, plan *grouping.Plan, cfg Config) *Engine {
	cfg.fill()
	e := &Engine{name: name, cfg: cfg, mt: mt}
	e.visCond = sync.NewCond(&e.visMu)
	e.feed = make(chan *epoch.Encoded, cfg.FeedDepth)
	e.loopDone = make(chan struct{})
	reg := cfg.Registry
	e.gDepth = reg.Gauge("replay_pipeline_depth")
	e.gInflight = reg.Gauge("replay_epochs_inflight")
	e.cEpochs = reg.Counter("replay_epochs_total")
	e.cHandoffReuse = reg.Counter("replay_handoff_reuse_total")
	e.cHandoffAlloc = reg.Counter("replay_handoff_alloc_total")
	e.cDispatchReuse = reg.Counter("replay_dispatch_reuse_total")
	e.cDispatchAlloc = reg.Counter("replay_dispatch_alloc_total")
	e.hDispatch = reg.Histogram("replay_dispatch_seconds")
	e.hCommit = reg.Histogram("replay_commit_seconds")
	e.hWait = reg.Histogram("replay_wait_visible_seconds")
	// Shard-lock wait time: how long translate workers (and scans) block
	// on memtable shard mutexes. Near-zero when the sharded index is doing
	// its job; a hot histogram here means keys are hashing onto too few
	// shards for the worker count.
	mt.SetWaitObserver(reg.Histogram("memtable_shard_wait_ns"))
	e.installPlan(plan, 0)
	return e
}

// Name returns the engine's display name.
func (e *Engine) Name() string { return e.name }

// Start launches the scheduler. Idempotent; a stopped engine cannot be
// restarted.
func (e *Engine) Start() {
	if !e.state.CompareAndSwap(stateNew, stateStarted) {
		return
	}
	e.gDepth.Set(float64(e.cfg.Pipeline))
	if e.cfg.Pipeline > 0 {
		go e.runPipelined()
	} else {
		go e.runSerial()
	}
}

// Feed enqueues one encoded epoch for replay. Epochs must be fed in
// sequence order. Blocks when the feed queue is full (replication
// back-pressure). Returns ErrNotStarted before Start and ErrStopped after
// Stop instead of blocking forever.
func (e *Engine) Feed(enc *epoch.Encoded) error {
	e.lifecycle.RLock()
	defer e.lifecycle.RUnlock()
	switch e.state.Load() {
	case stateNew:
		return ErrNotStarted
	case stateStopped:
		return ErrStopped
	}
	e.inflight.Add(1)
	e.feed <- enc
	return nil
}

// Drain blocks until every epoch fed so far has been fully replayed and
// committed.
func (e *Engine) Drain() { e.inflight.Wait() }

// Stop drains and terminates the scheduler. The engine cannot be
// restarted; Feed after Stop returns ErrStopped.
func (e *Engine) Stop() {
	e.lifecycle.Lock()
	if !e.state.CompareAndSwap(stateStarted, stateStopped) {
		// Never started (or already stopped): mark stopped so Feed fails
		// cleanly, and don't wait on a scheduler that never ran.
		e.state.CompareAndSwap(stateNew, stateStopped)
		e.lifecycle.Unlock()
		return
	}
	close(e.feed)
	e.lifecycle.Unlock()
	<-e.loopDone
}

// Err returns the first fatal replay error, if any.
func (e *Engine) Err() error {
	e.errMu.Lock()
	defer e.errMu.Unlock()
	return e.err
}

// Stats returns totals replayed since Start.
func (e *Engine) Stats() (txns, entries int64) {
	return e.txns.Load(), e.entries.Load()
}

// StageTimes returns the cumulative replay time of the hot (first) and
// cold (second) stages across all epochs — the per-class replay times of
// the paper's Fig 8(b)/9(b). Without two-stage mode everything lands in
// the first bucket. In pipelined mode stages of different epochs overlap,
// so the buckets accumulate per-group replay time rather than scheduler
// wall time; ratios between the buckets are preserved.
func (e *Engine) StageTimes() (hot, cold time.Duration) {
	return time.Duration(e.hotStageNS.Load()), time.Duration(e.coldStageNS.Load())
}

// SetPlan schedules a new group plan; it takes effect at the next epoch
// boundary, when all previously fed epochs' groups are fully committed.
func (e *Engine) SetPlan(p *grouping.Plan) {
	e.planMu.Lock()
	e.nextPlan = p
	e.planMu.Unlock()
}

// Plan returns the currently active plan.
func (e *Engine) Plan() *grouping.Plan { return e.vis.Load().plan }

func (e *Engine) installPlan(p *grouping.Plan, ts int64) {
	vs := &visState{plan: p, tg: make([]atomic.Int64, len(p.Groups))}
	for i := range vs.tg {
		vs.tg[i].Store(ts)
	}
	e.vis.Store(vs)
}

// takePlanSwap pops the pending plan, if any.
func (e *Engine) takePlanSwap() *grouping.Plan {
	e.planMu.Lock()
	next := e.nextPlan
	e.nextPlan = nil
	e.planMu.Unlock()
	return next
}

func (e *Engine) acquireDispatch() *dispatch.Buffers {
	if v := e.bufPool.Get(); v != nil {
		e.cDispatchReuse.Inc()
		return v.(*dispatch.Buffers)
	}
	e.cDispatchAlloc.Inc()
	return dispatch.NewBuffers()
}

// ---------------------------------------------------------------------------
// Serial scheduler (Pipeline == 0): one epoch at a time, hot stage then
// cold stage, publish, next epoch.

func (e *Engine) runSerial() {
	defer close(e.loopDone)
	bufs := e.acquireDispatch()
	for enc := range e.feed {
		e.processEpoch(enc, bufs)
		e.inflight.Done()
	}
	e.bufPool.Put(bufs)
}

func (e *Engine) processEpoch(enc *epoch.Encoded, bufs *dispatch.Buffers) {
	// Plan swaps happen only here: all prior epochs are fully committed, so
	// every table is replayed up to the current global commit timestamp and
	// the fresh groups inherit it.
	if next := e.takePlanSwap(); next != nil {
		e.installPlan(next, e.global.Load())
	}
	vs := e.vis.Load()
	e.cEpochs.Inc()

	if enc.TxnCount == 0 {
		// Heartbeat epoch: a dummy log that bumps every group's publish
		// time so idle groups cannot stall readers (paper §V-B).
		e.publishAll(vs, enc.LastCommitTS)
		return
	}

	t0 := time.Now()
	res, err := bufs.Dispatch(enc, vs.plan)
	dd := time.Since(t0)
	e.hDispatch.Observe(dd)
	if e.cfg.Breakdown != nil {
		e.cfg.Breakdown.AddDispatch(dd)
	}
	if err != nil {
		e.fail(fmt.Errorf("epoch %d: %w", enc.Seq, err))
		return
	}

	// Groups untouched by this epoch contain all their data up to the
	// epoch's last commit: publish them immediately.
	for gi, gb := range res.PerGroup {
		if gb == nil {
			e.publishGroup(vs, gi, res.LastCommitTS)
		}
	}

	hot, cold := splitStages(vs, res)

	if e.cfg.TwoStage {
		t1 := time.Now()
		e.runStage(vs, hot, res.LastCommitTS)
		e.hotStageNS.Add(int64(time.Since(t1)))
		t2 := time.Now()
		e.runStage(vs, cold, res.LastCommitTS)
		e.coldStageNS.Add(int64(time.Since(t2)))
	} else {
		t1 := time.Now()
		e.runStage(vs, append(hot, cold...), res.LastCommitTS)
		e.hotStageNS.Add(int64(time.Since(t1)))
	}

	e.publishAll(vs, res.LastCommitTS)
	e.txns.Add(int64(res.Txns))
	e.entries.Add(int64(res.Entries))
}

// splitStages partitions an epoch's touched batches into the hot (first)
// and cold (second) replay stages.
func splitStages(vs *visState, res *dispatch.Result) (hot, cold []*dispatch.GroupBatch) {
	for _, gb := range res.PerGroup {
		if gb == nil {
			continue
		}
		if vs.plan.Groups[gb.Group].Hot {
			hot = append(hot, gb)
		} else {
			cold = append(cold, gb)
		}
	}
	return hot, cold
}

// stageThreads splits the worker budget across a stage's groups by λ·n
// weight.
func (e *Engine) stageThreads(vs *visState, batches []*dispatch.GroupBatch) []int {
	loads := make([]alloc.GroupLoad, len(batches))
	for i, gb := range batches {
		loads[i] = alloc.GroupLoad{Unreplayed: gb.Bytes, Rate: vs.plan.Groups[gb.Group].Rate}
	}
	threads := alloc.Allocate(e.cfg.Workers, loads, e.cfg.Urgency)
	for i := range threads {
		if threads[i] < 1 {
			threads[i] = 1
		}
	}
	return threads
}

// runStage replays a set of group batches concurrently. When a group's
// batch completes it is published up to the epoch's last commit timestamp:
// the epoch contains every transaction in its ID range, so a fully
// replayed group is current up to the epoch end even if its own last write
// is older.
func (e *Engine) runStage(vs *visState, batches []*dispatch.GroupBatch, epochEndTS int64) {
	if len(batches) == 0 {
		return
	}
	threads := e.stageThreads(vs, batches)
	var wg sync.WaitGroup
	for i, gb := range batches {
		wg.Add(1)
		go func(gb *dispatch.GroupBatch, n int) {
			defer wg.Done()
			if err := e.replayGroup(vs, gb, n); err != nil {
				e.fail(err)
			}
			e.publishGroup(vs, gb.Group, epochEndTS)
		}(gb, threads[i])
	}
	wg.Wait()
}

// ---------------------------------------------------------------------------
// Pipelined scheduler (Pipeline >= 1): the dispatch loop decodes and
// dispatches epoch N+1 while epoch N replays, with up to Pipeline epochs
// in flight. Ordering is enforced per group, not with a global barrier:
// each group's replay of epoch N+1 starts only after its own epoch-N
// batch has committed, so per-group commit order (and therefore each
// group's tg_cmt_ts prefix invariant) is exactly the serial engine's. An
// epoch's cold batches additionally wait for that epoch's hot stage, so
// within every epoch hot groups still publish first. The global commit
// timestamp advances through a completion chain — epoch N's publishAll
// runs only after epoch N-1's — so global_cmt_ts only ever covers a fully
// committed prefix and WaitVisible semantics are unchanged.

// epochGroupRun carries one group's slice of an epoch through the
// pipeline.
type epochGroupRun struct {
	gb      *dispatch.GroupBatch
	threads int
	hot     bool
}

func (e *Engine) runPipelined() {
	defer close(e.loopDone)
	// slots caps the number of epochs in flight: acquire (send) before
	// dispatching an epoch, release (receive) when it fully commits.
	slots := make(chan struct{}, e.cfg.Pipeline)
	vs := e.vis.Load()
	prevGroup := make([]chan struct{}, len(vs.plan.Groups))
	var prevComplete chan struct{}

	for enc := range e.feed {
		if next := e.takePlanSwap(); next != nil {
			// Plan swap barrier: wait until every in-flight epoch is fully
			// committed so the fresh groups inherit a settled global
			// timestamp, then drop the old per-group chains.
			if prevComplete != nil {
				<-prevComplete
				prevComplete = nil
			}
			e.installPlan(next, e.global.Load())
			vs = e.vis.Load()
			prevGroup = make([]chan struct{}, len(vs.plan.Groups))
		}

		slots <- struct{}{}
		e.gInflight.Set(float64(e.epochsInflight.Add(1)))
		e.cEpochs.Inc()
		complete := make(chan struct{})
		prev := prevComplete
		prevComplete = complete

		if enc.TxnCount == 0 {
			// Heartbeat: publish once every earlier epoch has committed.
			ts := enc.LastCommitTS
			state := vs
			go func() {
				if prev != nil {
					<-prev
				}
				e.publishAll(state, ts)
				e.finishEpoch(complete, slots)
			}()
			continue
		}

		bufs := e.acquireDispatch()
		t0 := time.Now()
		res, err := bufs.Dispatch(enc, vs.plan)
		dd := time.Since(t0)
		e.hDispatch.Observe(dd)
		if e.cfg.Breakdown != nil {
			e.cfg.Breakdown.AddDispatch(dd)
		}
		if err != nil {
			e.fail(fmt.Errorf("epoch %d: %w", enc.Seq, err))
			e.bufPool.Put(bufs)
			go func() {
				if prev != nil {
					<-prev
				}
				e.finishEpoch(complete, slots)
			}()
			continue
		}

		// Per-stage worker allocation, as in the serial scheduler. With
		// epochs overlapping, consecutive epochs' stages can briefly
		// oversubscribe the budget; GOMAXPROCS bounds real parallelism.
		hot, cold := splitStages(vs, res)
		if !e.cfg.TwoStage {
			hot, cold = append(hot, cold...), nil
		}
		runs := make([]*epochGroupRun, len(vs.plan.Groups))
		for i, threads := 0, e.stageThreads(vs, hot); i < len(hot); i++ {
			runs[hot[i].Group] = &epochGroupRun{gb: hot[i], threads: threads[i], hot: true}
		}
		for i, threads := 0, e.stageThreads(vs, cold); i < len(cold); i++ {
			runs[cold[i].Group] = &epochGroupRun{gb: cold[i], threads: threads[i]}
		}

		// hotWG is fully counted before any goroutine spawns, so a cold
		// group can never Wait concurrently with a late Add.
		var hotWG sync.WaitGroup
		hotWG.Add(len(hot))

		gdone := make([]chan struct{}, len(vs.plan.Groups))
		epochEnd := res.LastCommitTS
		state := vs
		for gi := range gdone {
			done := make(chan struct{})
			gdone[gi] = done
			prevG := prevGroup[gi]
			prevGroup[gi] = done
			run := runs[gi]
			switch {
			case run == nil:
				// Untouched group: all its data through the epoch end is
				// present once its own chain reaches this epoch.
				go func(gi int) {
					defer close(done)
					if prevG != nil {
						<-prevG
					}
					e.publishGroup(state, gi, epochEnd)
				}(gi)
			case run.hot:
				go func(r *epochGroupRun) {
					defer close(done)
					defer hotWG.Done()
					if prevG != nil {
						<-prevG
					}
					t := time.Now()
					if err := e.replayGroup(state, r.gb, r.threads); err != nil {
						e.fail(err)
					}
					e.hotStageNS.Add(int64(time.Since(t)))
					e.publishGroup(state, r.gb.Group, epochEnd)
				}(run)
			default:
				go func(r *epochGroupRun) {
					defer close(done)
					if prevG != nil {
						<-prevG
					}
					hotWG.Wait()
					t := time.Now()
					if err := e.replayGroup(state, r.gb, r.threads); err != nil {
						e.fail(err)
					}
					e.coldStageNS.Add(int64(time.Since(t)))
					e.publishGroup(state, r.gb.Group, epochEnd)
				}(run)
			}
		}

		txns, entries := res.Txns, res.Entries
		go func() {
			for _, d := range gdone {
				<-d
			}
			if prev != nil {
				<-prev
			}
			e.publishAll(state, epochEnd)
			e.txns.Add(int64(txns))
			e.entries.Add(int64(entries))
			e.bufPool.Put(bufs)
			e.finishEpoch(complete, slots)
		}()
	}
	if prevComplete != nil {
		<-prevComplete
	}
}

// finishEpoch closes the epoch's completion chain link, releases its
// pipeline slot and marks it drained.
func (e *Engine) finishEpoch(complete chan struct{}, slots chan struct{}) {
	close(complete)
	<-slots
	e.gInflight.Set(float64(e.epochsInflight.Add(-1)))
	e.inflight.Done()
}

func (e *Engine) fail(err error) {
	e.errMu.Lock()
	if e.err == nil {
		e.err = err
	}
	e.errMu.Unlock()
}
