// Package replay implements the AETS framework: epoch-ordered, two-stage
// (hot then cold), table-group parallel log replay with the TPLR two-phase
// algorithm, adaptive per-group worker allocation, and Algorithm 3
// visibility for readers.
package replay

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"aets/internal/alloc"
	"aets/internal/dispatch"
	"aets/internal/epoch"
	"aets/internal/grouping"
	"aets/internal/memtable"
	"aets/internal/metrics"
)

// Config parameterises an Engine.
type Config struct {
	// Workers is the total replay worker budget T shared by all groups of a
	// stage. Defaults to GOMAXPROCS.
	Workers int
	// Urgency maps a group's access rate to its thread-allocation weight.
	// Defaults to alloc.LogUrgency (the paper's λ = log r).
	Urgency alloc.UrgencyFunc
	// TwoStage enables the hot-groups-first staging. Disabling it yields
	// plain grouped TPLR: all groups replay in a single stage.
	TwoStage bool
	// Breakdown, when non-nil, accumulates the Table II phase timing.
	Breakdown *metrics.Breakdown
	// FeedDepth is the epoch queue depth between Feed and the scheduler.
	FeedDepth int
}

func (c *Config) fill() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Urgency == nil {
		c.Urgency = alloc.LogUrgency
	}
	if c.FeedDepth <= 0 {
		c.FeedDepth = 8
	}
}

// visState snapshots the group plan together with its per-group commit
// timestamps; it is swapped atomically when the plan changes at an epoch
// boundary.
type visState struct {
	plan *grouping.Plan
	tg   []atomic.Int64 // tg_cmt_ts per group
}

// Engine is the AETS backup-side replay engine. Create with New, then
// Start; Feed epochs in order; readers call WaitVisible. The zero value is
// not usable.
type Engine struct {
	name string
	cfg  Config
	mt   *memtable.Memtable

	planMu   sync.Mutex
	nextPlan *grouping.Plan

	vis    atomic.Pointer[visState]
	global atomic.Int64

	visMu   sync.Mutex
	visCond *sync.Cond
	waiters atomic.Int64

	feed     chan *epoch.Encoded
	inflight sync.WaitGroup
	loopDone chan struct{}
	started  bool

	errMu sync.Mutex
	err   error

	txns    atomic.Int64
	entries atomic.Int64

	hotStageNS  atomic.Int64
	coldStageNS atomic.Int64
}

// New returns an engine named name over mt with the initial group plan.
func New(name string, mt *memtable.Memtable, plan *grouping.Plan, cfg Config) *Engine {
	cfg.fill()
	e := &Engine{name: name, cfg: cfg, mt: mt}
	e.visCond = sync.NewCond(&e.visMu)
	e.installPlan(plan, 0)
	return e
}

// Name returns the engine's display name.
func (e *Engine) Name() string { return e.name }

// Start launches the scheduler goroutine.
func (e *Engine) Start() {
	if e.started {
		return
	}
	e.started = true
	e.feed = make(chan *epoch.Encoded, e.cfg.FeedDepth)
	e.loopDone = make(chan struct{})
	go e.run()
}

// Feed enqueues one encoded epoch for replay. Epochs must be fed in
// sequence order. Blocks when the feed queue is full (replication
// back-pressure).
func (e *Engine) Feed(enc *epoch.Encoded) {
	e.inflight.Add(1)
	e.feed <- enc
}

// Drain blocks until every epoch fed so far has been fully replayed and
// committed.
func (e *Engine) Drain() { e.inflight.Wait() }

// Stop drains and terminates the scheduler. The engine cannot be restarted.
func (e *Engine) Stop() {
	if !e.started {
		return
	}
	close(e.feed)
	<-e.loopDone
	e.started = false
}

// Err returns the first fatal replay error, if any.
func (e *Engine) Err() error {
	e.errMu.Lock()
	defer e.errMu.Unlock()
	return e.err
}

// Stats returns totals replayed since Start.
func (e *Engine) Stats() (txns, entries int64) {
	return e.txns.Load(), e.entries.Load()
}

// StageTimes returns the cumulative wall time of the hot (first) and cold
// (second) replay stages across all epochs — the per-class replay times of
// the paper's Fig 8(b)/9(b). Without two-stage mode everything lands in
// the first bucket.
func (e *Engine) StageTimes() (hot, cold time.Duration) {
	return time.Duration(e.hotStageNS.Load()), time.Duration(e.coldStageNS.Load())
}

// SetPlan schedules a new group plan; it takes effect at the next epoch
// boundary, when all previously fed epochs' groups are fully committed.
func (e *Engine) SetPlan(p *grouping.Plan) {
	e.planMu.Lock()
	e.nextPlan = p
	e.planMu.Unlock()
}

// Plan returns the currently active plan.
func (e *Engine) Plan() *grouping.Plan { return e.vis.Load().plan }

func (e *Engine) installPlan(p *grouping.Plan, ts int64) {
	vs := &visState{plan: p, tg: make([]atomic.Int64, len(p.Groups))}
	for i := range vs.tg {
		vs.tg[i].Store(ts)
	}
	e.vis.Store(vs)
}

func (e *Engine) run() {
	defer close(e.loopDone)
	for enc := range e.feed {
		e.processEpoch(enc)
		e.inflight.Done()
	}
}

func (e *Engine) processEpoch(enc *epoch.Encoded) {
	// Plan swaps happen only here: all prior epochs are fully committed, so
	// every table is replayed up to the current global commit timestamp and
	// the fresh groups inherit it.
	e.planMu.Lock()
	next := e.nextPlan
	e.nextPlan = nil
	e.planMu.Unlock()
	if next != nil {
		e.installPlan(next, e.global.Load())
	}
	vs := e.vis.Load()

	if enc.TxnCount == 0 {
		// Heartbeat epoch: a dummy log that bumps every group's publish
		// time so idle groups cannot stall readers (paper §V-B).
		e.publishAll(vs, enc.LastCommitTS)
		return
	}

	t0 := time.Now()
	res, err := dispatch.Dispatch(enc, vs.plan)
	if e.cfg.Breakdown != nil {
		e.cfg.Breakdown.AddDispatch(time.Since(t0))
	}
	if err != nil {
		e.fail(fmt.Errorf("epoch %d: %w", enc.Seq, err))
		return
	}

	// Groups untouched by this epoch contain all their data up to the
	// epoch's last commit: publish them immediately.
	for gi, gb := range res.PerGroup {
		if gb == nil {
			e.publishGroup(vs, gi, res.LastCommitTS)
		}
	}

	var hot, cold []*dispatch.GroupBatch
	for _, gb := range res.PerGroup {
		if gb == nil {
			continue
		}
		if vs.plan.Groups[gb.Group].Hot {
			hot = append(hot, gb)
		} else {
			cold = append(cold, gb)
		}
	}

	if e.cfg.TwoStage {
		t1 := time.Now()
		e.runStage(vs, hot, res.LastCommitTS)
		e.hotStageNS.Add(int64(time.Since(t1)))
		t2 := time.Now()
		e.runStage(vs, cold, res.LastCommitTS)
		e.coldStageNS.Add(int64(time.Since(t2)))
	} else {
		t1 := time.Now()
		e.runStage(vs, append(hot, cold...), res.LastCommitTS)
		e.hotStageNS.Add(int64(time.Since(t1)))
	}

	e.publishAll(vs, res.LastCommitTS)
	e.txns.Add(int64(res.Txns))
	e.entries.Add(int64(res.Entries))
}

// runStage replays a set of group batches concurrently, splitting the
// worker budget across groups by λ·n weight. When a group's batch completes
// it is published up to the epoch's last commit timestamp: the epoch
// contains every transaction in its ID range, so a fully replayed group is
// current up to the epoch end even if its own last write is older.
func (e *Engine) runStage(vs *visState, batches []*dispatch.GroupBatch, epochEndTS int64) {
	if len(batches) == 0 {
		return
	}
	loads := make([]alloc.GroupLoad, len(batches))
	for i, gb := range batches {
		loads[i] = alloc.GroupLoad{Unreplayed: gb.Bytes, Rate: vs.plan.Groups[gb.Group].Rate}
	}
	threads := alloc.Allocate(e.cfg.Workers, loads, e.cfg.Urgency)

	var wg sync.WaitGroup
	for i, gb := range batches {
		n := threads[i]
		if n < 1 {
			n = 1
		}
		wg.Add(1)
		go func(gb *dispatch.GroupBatch, n int) {
			defer wg.Done()
			if err := e.replayGroup(vs, gb, n); err != nil {
				e.fail(err)
			}
			e.publishGroup(vs, gb.Group, epochEndTS)
		}(gb, n)
	}
	wg.Wait()
}

func (e *Engine) fail(err error) {
	e.errMu.Lock()
	if e.err == nil {
		e.err = err
	}
	e.errMu.Unlock()
}
