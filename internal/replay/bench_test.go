package replay

import (
	"fmt"
	"testing"
	"time"

	"aets/internal/epoch"
	"aets/internal/grouping"
	"aets/internal/memtable"
	"aets/internal/primary"
	"aets/internal/wal"
	"aets/internal/workload"
)

// BenchmarkReplayPipeline compares the serial scheduler (depth=0) against
// pipelined depths on the two shapes that bracket the design space: the
// paper's grouped TPC-C plan (many groups, two stages) and a single-group
// plan (ungrouped TPLR, where epoch pipelining is the only available
// overlap). Each op replays the full pre-encoded stream into a fresh
// memtable; txns/s is the end-to-end replay throughput. allocs/op includes
// the unavoidable version-slab and memtable allocations — the recycled
// hand-off itself is pinned to zero by TestHandoffSteadyStateAllocs and
// TestBuffersSteadyStateAllocs.
func BenchmarkReplayPipeline(b *testing.B) {
	gen := workload.NewTPCC(4)
	p := primary.New(gen, 1)
	txns := p.GenerateTxns(4000)
	encs := epoch.EncodeAll(epoch.MustSplit(txns, 256))

	shapes := []struct {
		name     string
		plan     *grouping.Plan
		twoStage bool
	}{
		{"tpcc", buildTPCCPlan(gen, 1000), true},
		{"single-group", grouping.SingleGroup(workload.TableIDs(gen.Tables())), false},
	}
	for _, sh := range shapes {
		for _, depth := range []int{0, 2, 4} {
			b.Run(fmt.Sprintf("%s/depth=%d", sh.name, depth), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					mt := memtable.New()
					e := New("AETS", mt, sh.plan, Config{
						Workers: 4, TwoStage: sh.twoStage, Pipeline: depth,
					})
					e.Start()
					for j := range encs {
						if err := e.Feed(&encs[j]); err != nil {
							b.Fatal(err)
						}
					}
					e.Drain()
					e.Stop()
					if err := e.Err(); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(len(txns))*float64(b.N)/b.Elapsed().Seconds(), "txns/s")
			})
		}
	}
}

// TestHandoffSteadyStateAllocs pins the zero-allocation claim for the TPLR
// phase-1→phase-2 hand-off: once the engine's pool is warm, a full
// acquire → deliver → take → release cycle of the slot ring allocates
// nothing — including the per-piece commit-latency histogram recording
// that now rides on the same path.
func TestHandoffSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector randomises sync.Pool caching; alloc counts are meaningless")
	}
	e := New("AETS", memtable.New(), grouping.SingleGroup([]wal.TableID{1}),
		Config{Workers: 2})
	const npieces, nentries = 64, 256
	e.releaseBatch(e.acquireBatch(npieces, nentries)) // warm the pool

	n := testing.AllocsPerRun(100, func() {
		bs := e.acquireBatch(npieces, nentries)
		for i := 0; i < npieces; i++ {
			d := &bs.deliveries[i]
			d.commitTS = int64(i + 1)
			d.cells = bs.cells[i*4 : i*4+4]
			bs.deliver(i, d)
		}
		for i := 0; i < npieces; i++ {
			if _, err := bs.take(i); err != nil {
				t.Fatal(err)
			}
			e.hCommit.Observe(time.Microsecond) // as the commit loop does per piece
		}
		e.releaseBatch(bs)
	})
	if n != 0 {
		t.Fatalf("hand-off cycle allocates %.1f objects/op, want 0", n)
	}
}
