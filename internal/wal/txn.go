package wal

import "fmt"

// Txn is the decoded view of one committed transaction: the entries between
// its BEGIN and COMMIT frames, in LSN order. CommitTS is the timestamp of
// the COMMIT entry, which on the primary is assigned in TxnID order, so
// sorting by TxnID and by CommitTS is equivalent.
type Txn struct {
	ID       uint64
	CommitTS int64
	Entries  []Entry // DML entries only; framing entries are stripped
}

// Size returns the total encoded-ish size of the transaction's DML entries.
func (t *Txn) Size() int {
	n := 0
	for i := range t.Entries {
		n += t.Entries[i].Size()
	}
	return n
}

// Tables returns the distinct set of tables the transaction modifies.
func (t *Txn) Tables() []TableID {
	seen := make(map[TableID]struct{}, 4)
	var out []TableID
	for i := range t.Entries {
		id := t.Entries[i].Table
		if _, ok := seen[id]; !ok {
			seen[id] = struct{}{}
			out = append(out, id)
		}
	}
	return out
}

// AssembleTxns groups a flat, LSN-ordered entry stream into transactions.
// It enforces the framing protocol: every transaction must open with BEGIN,
// carry zero or more DML entries, and close with COMMIT; transactions may
// not interleave in the replicated stream (the primary serialises them in
// commit order before shipping).
func AssembleTxns(entries []Entry) ([]Txn, error) {
	var txns []Txn
	var cur *Txn
	for i := range entries {
		e := &entries[i]
		switch e.Type {
		case TypeBegin:
			if cur != nil {
				return nil, fmt.Errorf("wal: BEGIN of txn %d inside open txn %d", e.TxnID, cur.ID)
			}
			txns = append(txns, Txn{ID: e.TxnID})
			cur = &txns[len(txns)-1]
		case TypeCommit:
			if cur == nil || cur.ID != e.TxnID {
				return nil, fmt.Errorf("wal: COMMIT of txn %d without matching BEGIN", e.TxnID)
			}
			cur.CommitTS = e.Timestamp
			cur = nil
		case TypeInsert, TypeUpdate, TypeDelete:
			if cur == nil || cur.ID != e.TxnID {
				return nil, fmt.Errorf("wal: DML of txn %d outside its BEGIN/COMMIT frame", e.TxnID)
			}
			cur.Entries = append(cur.Entries, *e)
		default:
			return nil, fmt.Errorf("wal: invalid entry type %d at index %d", e.Type, i)
		}
	}
	if cur != nil {
		return nil, fmt.Errorf("wal: stream ends inside open txn %d", cur.ID)
	}
	return txns, nil
}

// FlattenTxns is the inverse of AssembleTxns: it re-frames transactions into
// a flat entry stream with BEGIN/COMMIT markers and fresh sequential LSNs
// starting at firstLSN. It returns the stream and the next unused LSN.
func FlattenTxns(txns []Txn, firstLSN uint64) ([]Entry, uint64) {
	var out []Entry
	lsn := firstLSN
	for i := range txns {
		t := &txns[i]
		out = append(out, Entry{Type: TypeBegin, LSN: lsn, TxnID: t.ID, Timestamp: t.CommitTS})
		lsn++
		for j := range t.Entries {
			e := t.Entries[j]
			e.LSN = lsn
			e.TxnID = t.ID
			lsn++
			out = append(out, e)
		}
		out = append(out, Entry{Type: TypeCommit, LSN: lsn, TxnID: t.ID, Timestamp: t.CommitTS})
		lsn++
	}
	return out, lsn
}
