package wal

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genEntry builds a random valid entry.
func genEntry(r *rand.Rand) Entry {
	types := []LogType{TypeBegin, TypeCommit, TypeInsert, TypeUpdate, TypeDelete}
	e := Entry{
		Type:      types[r.Intn(len(types))],
		LSN:       r.Uint64(),
		TxnID:     r.Uint64(),
		Timestamp: r.Int63(),
	}
	if e.Type.IsDML() {
		e.Table = TableID(r.Uint32())
		e.RowKey = r.Uint64()
		e.PrevTxn = r.Uint64()
		e.WriteSeq = r.Uint64()
		if e.Type != TypeDelete {
			n := 1 + r.Intn(6)
			e.Columns = make([]Column, n)
			for i := range e.Columns {
				v := make([]byte, r.Intn(64))
				r.Read(v)
				e.Columns[i] = Column{ID: r.Uint32(), Value: v}
			}
		}
	}
	return e
}

func entriesEqual(a, b Entry) bool {
	if a.Type != b.Type || a.LSN != b.LSN || a.TxnID != b.TxnID ||
		a.Timestamp != b.Timestamp || a.Table != b.Table ||
		a.RowKey != b.RowKey || a.PrevTxn != b.PrevTxn ||
		a.WriteSeq != b.WriteSeq || len(a.Columns) != len(b.Columns) {
		return false
	}
	for i := range a.Columns {
		if a.Columns[i].ID != b.Columns[i].ID || !bytes.Equal(a.Columns[i].Value, b.Columns[i].Value) {
			return false
		}
	}
	return true
}

func TestCodecRoundTripQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := genEntry(r)
		buf := Encode(&e)
		got, n, err := Decode(buf)
		if err != nil || n != len(buf) {
			return false
		}
		return entriesEqual(e, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeHeaderMatchesFullDecode(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		e := genEntry(r)
		buf := Encode(&e)
		h, n, err := DecodeHeader(buf)
		if err != nil {
			t.Fatalf("header decode: %v", err)
		}
		if n != len(buf) {
			t.Fatalf("header reports frame %d, encoded %d", n, len(buf))
		}
		if h.Type != e.Type || h.LSN != e.LSN || h.TxnID != e.TxnID ||
			h.Timestamp != e.Timestamp || (e.Type.IsDML() && h.Table != e.Table) {
			t.Fatalf("header mismatch: %+v vs %+v", h, e)
		}
	}
}

func TestDecodeRejectsCorruptCRC(t *testing.T) {
	e := Entry{Type: TypeUpdate, LSN: 1, TxnID: 2, Timestamp: 3, Table: 4, RowKey: 5,
		Columns: []Column{{ID: 1, Value: []byte("hello")}}}
	buf := Encode(&e)
	buf[len(buf)-1] ^= 0xff
	if _, _, err := Decode(buf); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	e := Entry{Type: TypeInsert, LSN: 9, TxnID: 9, Timestamp: 9, Table: 1, RowKey: 2,
		Columns: []Column{{ID: 1, Value: []byte("abcdef")}}}
	buf := Encode(&e)
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := Decode(buf[:cut]); err == nil {
			t.Fatalf("decode succeeded on %d-byte truncation of %d-byte frame", cut, len(buf))
		}
	}
}

func TestDecodeRejectsInvalidType(t *testing.T) {
	e := Entry{Type: TypeBegin, LSN: 1, TxnID: 1, Timestamp: 1}
	buf := Encode(&e)
	// Corrupting the type also breaks the CRC; both paths must reject.
	buf[8] = 0xee
	if _, _, err := Decode(buf); err == nil {
		t.Fatal("decode accepted invalid type byte")
	}
}

func TestWriterReaderStream(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	var entries []Entry
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < 1000; i++ {
		e := genEntry(r)
		entries = append(entries, e)
		w.Append(&e)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	rd := NewReader(bytes.NewReader(buf.Bytes()))
	for i := range entries {
		got, err := rd.Next()
		if err != nil {
			t.Fatalf("entry %d: %v", i, err)
		}
		if !entriesEqual(entries[i], got) {
			t.Fatalf("entry %d mismatch", i)
		}
	}
	if _, err := rd.Next(); err != io.EOF {
		t.Fatalf("want EOF at stream end, got %v", err)
	}
}

func TestReaderRejectsTrailingGarbage(t *testing.T) {
	e := Entry{Type: TypeBegin, LSN: 1, TxnID: 1, Timestamp: 1}
	data := append(Encode(&e), 0x01, 0x02, 0x03)
	rd := NewReader(bytes.NewReader(data))
	if _, err := rd.Next(); err != nil {
		t.Fatalf("first entry: %v", err)
	}
	if _, err := rd.Next(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt on trailing bytes, got %v", err)
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		e    Entry
		ok   bool
	}{
		{"begin ok", Entry{Type: TypeBegin, TxnID: 1}, true},
		{"begin with columns", Entry{Type: TypeBegin, Columns: []Column{{}}}, false},
		{"insert no columns", Entry{Type: TypeInsert}, false},
		{"insert ok", Entry{Type: TypeInsert, Columns: []Column{{ID: 1}}}, true},
		{"delete no columns ok", Entry{Type: TypeDelete}, true},
		{"invalid type", Entry{Type: LogType(42)}, false},
	}
	for _, c := range cases {
		if err := c.e.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	e := Entry{Type: TypeUpdate, Table: 1, RowKey: 2,
		Columns: []Column{{ID: 1, Value: []byte{1, 2, 3}}}}
	c := e.Clone()
	c.Columns[0].Value[0] = 99
	if e.Columns[0].Value[0] == 99 {
		t.Fatal("Clone shares column memory")
	}
}

func TestEntrySizeCountsColumns(t *testing.T) {
	e := Entry{Type: TypeUpdate, Columns: []Column{{ID: 1, Value: make([]byte, 100)}}}
	small := Entry{Type: TypeUpdate, Columns: []Column{{ID: 1, Value: make([]byte, 1)}}}
	if e.Size() <= small.Size() {
		t.Fatal("Size must grow with column payload")
	}
}

func TestAppendEncodeExtends(t *testing.T) {
	a := Entry{Type: TypeBegin, LSN: 1, TxnID: 1}
	b := Entry{Type: TypeCommit, LSN: 2, TxnID: 1}
	buf := AppendEncode(AppendEncode(nil, &a), &b)
	e1, n1, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	e2, n2, err := Decode(buf[n1:])
	if err != nil {
		t.Fatal(err)
	}
	if n1+n2 != len(buf) || e1.Type != TypeBegin || e2.Type != TypeCommit {
		t.Fatal("concatenated frames did not decode back")
	}
}

func TestReflectRoundTripColumns(t *testing.T) {
	// Ensures Decode produces structurally identical column slices
	// (guards against aliasing the input buffer).
	e := Entry{Type: TypeUpdate, Table: 1, RowKey: 1,
		Columns: []Column{{ID: 7, Value: []byte("value")}}}
	buf := Encode(&e)
	got, _, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)-2] ^= 0xff // scribble on the buffer after decode
	if !reflect.DeepEqual(e.Columns, got.Columns) {
		t.Fatal("decoded columns alias the input buffer")
	}
}

// TestDecodeToArenaMatchesDecode checks the arena decode path yields
// byte-identical entries to the allocating path, that values survive the
// source buffer being clobbered (the arena must copy), and that many
// entries share few chunk allocations.
func TestDecodeToArenaMatchesDecode(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	var entries []Entry
	var buf []byte
	for i := 0; i < 500; i++ {
		e := genEntry(r)
		entries = append(entries, e)
		buf = AppendEncode(buf, &e)
	}

	var arena DecodeArena
	rest := append([]byte(nil), buf...)
	var got []Entry
	for len(rest) > 0 {
		e, n, err := DecodeTo(rest, &arena)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, e)
		rest = rest[n:]
	}
	// Clobber the wire buffer: arena-decoded values must be copies.
	for i := range buf {
		buf[i] = 0xff
	}
	if len(got) != len(entries) {
		t.Fatalf("decoded %d entries, want %d", len(got), len(entries))
	}
	for i := range got {
		if !entriesEqual(got[i], entries[i]) {
			t.Fatalf("entry %d mismatch:\n got %+v\nwant %+v", i, got[i], entries[i])
		}
	}
}

// TestDecodeToNilArena pins Decode == DecodeTo(nil).
func TestDecodeToNilArena(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	e := genEntry(r)
	buf := AppendEncode(nil, &e)
	d1, n1, err1 := Decode(buf)
	d2, n2, err2 := DecodeTo(buf, nil)
	if err1 != nil || err2 != nil || n1 != n2 || !entriesEqual(d1, d2) {
		t.Fatalf("Decode/DecodeTo diverge: %v %v %d %d", err1, err2, n1, n2)
	}
}
