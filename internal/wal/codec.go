package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Binary layout of one encoded entry:
//
//	frameLen  uint32   length of everything after this field
//	crc32     uint32   IEEE CRC of the payload (all following bytes)
//	type      uint8
//	lsn       uvarint
//	txnID     uvarint
//	timestamp varint
//	tableID   uvarint   (DML only)
//	rowKey    uvarint   (DML only)
//	ncols     uvarint   (DML only)
//	cols      ncols × (uvarint id, uvarint len, bytes value)
//
// The frame length allows a reader to skip entries without decoding them;
// the CRC guards against torn or corrupted replication frames.

// ErrCorrupt is returned when a frame fails its CRC or structural checks.
var ErrCorrupt = errors.New("wal: corrupt log frame")

// AppendEncode appends the binary encoding of e to buf and returns the
// extended slice. It never fails for entries that pass Validate.
func AppendEncode(buf []byte, e *Entry) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0) // frameLen placeholder
	buf = append(buf, 0, 0, 0, 0) // crc placeholder
	payloadStart := len(buf)

	buf = append(buf, byte(e.Type))
	buf = binary.AppendUvarint(buf, e.LSN)
	buf = binary.AppendUvarint(buf, e.TxnID)
	buf = binary.AppendVarint(buf, e.Timestamp)
	if e.Type.IsDML() {
		buf = binary.AppendUvarint(buf, uint64(e.Table))
		buf = binary.AppendUvarint(buf, e.RowKey)
		buf = binary.AppendUvarint(buf, e.PrevTxn)
		buf = binary.AppendUvarint(buf, e.WriteSeq)
		buf = binary.AppendUvarint(buf, uint64(len(e.Columns)))
		for _, c := range e.Columns {
			buf = binary.AppendUvarint(buf, uint64(c.ID))
			buf = binary.AppendUvarint(buf, uint64(len(c.Value)))
			buf = append(buf, c.Value...)
		}
	}

	payload := buf[payloadStart:]
	binary.LittleEndian.PutUint32(buf[start:], uint32(len(payload)+4))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.ChecksumIEEE(payload))
	return buf
}

// Encode returns the binary encoding of e.
func Encode(e *Entry) []byte {
	return AppendEncode(nil, e)
}

// DecodeArena amortises Decode's per-entry allocations (the Columns slice
// and each column's value copy) across many entries: chunks are carved off
// in order and a fresh chunk is allocated only when the current one is
// exhausted. Chunk capacities double on exhaustion, so an arena that is
// Reset and reused converges on one chunk sized for its steady-state
// batch and stops allocating altogether. Decoded entries keep sub-slices
// of the chunks, so an arena must never be Reset or reused while any
// entry decoded through it is still referenced — replay draws its arenas
// from the Memtable's epoch-arena pool, which defers the Reset until the
// version chains holding the chunks have been vacuumed.
type DecodeArena struct {
	cols []Column
	vals []byte
}

// Reset rewinds the arena so its current chunks are carved again. Earlier,
// smaller chunks from the growth phase are already unreferenced by the
// arena and fall to the collector with the entries that used them.
func (a *DecodeArena) Reset() {
	a.cols = a.cols[:0]
	a.vals = a.vals[:0]
}

// arenaCols returns a length-n slice carved from the column chunk.
func (a *DecodeArena) arenaCols(n int) []Column {
	if cap(a.cols)-len(a.cols) < n {
		c := 2 * cap(a.cols)
		if c < 1024 {
			c = 1024
		}
		if n > c {
			c = n
		}
		a.cols = make([]Column, 0, c)
	}
	s := a.cols[len(a.cols) : len(a.cols)+n : len(a.cols)+n]
	a.cols = a.cols[:len(a.cols)+n]
	return s
}

// arenaBytes copies b into the value chunk and returns the stable copy.
func (a *DecodeArena) arenaBytes(b []byte) []byte {
	if cap(a.vals)-len(a.vals) < len(b) {
		c := 2 * cap(a.vals)
		if c < 64<<10 {
			c = 64 << 10
		}
		if len(b) > c {
			c = len(b)
		}
		a.vals = make([]byte, 0, c)
	}
	start := len(a.vals)
	a.vals = append(a.vals, b...)
	return a.vals[start:len(a.vals):len(a.vals)]
}

// Decode decodes one entry from the front of buf, returning the entry and
// the number of bytes consumed.
func Decode(buf []byte) (Entry, int, error) {
	return DecodeTo(buf, nil)
}

// DecodeTo is Decode with the entry's Columns and value copies drawn from
// arena. A nil arena falls back to exact per-entry allocations.
func DecodeTo(buf []byte, arena *DecodeArena) (Entry, int, error) {
	var e Entry
	if len(buf) < 8 {
		return e, 0, fmt.Errorf("%w: short frame header (%d bytes)", ErrCorrupt, len(buf))
	}
	frameLen := binary.LittleEndian.Uint32(buf)
	if int(frameLen) < 4 || len(buf) < 4+int(frameLen) {
		return e, 0, fmt.Errorf("%w: frame length %d exceeds buffer %d", ErrCorrupt, frameLen, len(buf))
	}
	want := binary.LittleEndian.Uint32(buf[4:])
	payload := buf[8 : 4+frameLen]
	if crc32.ChecksumIEEE(payload) != want {
		return e, 0, fmt.Errorf("%w: crc mismatch", ErrCorrupt)
	}

	r := reader{buf: payload}
	e.Type = LogType(r.byte())
	e.LSN = r.uvarint()
	e.TxnID = r.uvarint()
	e.Timestamp = r.varint()
	if e.Type.IsDML() {
		e.Table = TableID(r.uvarint())
		e.RowKey = r.uvarint()
		e.PrevTxn = r.uvarint()
		e.WriteSeq = r.uvarint()
		ncols := r.uvarint()
		if ncols > uint64(len(payload)) { // cheap sanity bound: ≥1 byte per column
			return e, 0, fmt.Errorf("%w: implausible column count %d", ErrCorrupt, ncols)
		}
		if ncols > 0 {
			if arena != nil {
				e.Columns = arena.arenaCols(int(ncols))
			} else {
				e.Columns = make([]Column, ncols)
			}
			for i := range e.Columns {
				e.Columns[i].ID = uint32(r.uvarint())
				n := r.uvarint()
				if arena != nil {
					if v := r.view(int(n)); v != nil {
						e.Columns[i].Value = arena.arenaBytes(v)
					}
				} else {
					e.Columns[i].Value = r.bytes(int(n))
				}
			}
		}
	}
	if r.err != nil {
		return Entry{}, 0, fmt.Errorf("%w: %v", ErrCorrupt, r.err)
	}
	if err := e.Validate(); err != nil {
		return Entry{}, 0, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return e, 4 + int(frameLen), nil
}

// Writer streams encoded entries to an io.Writer, buffering internally.
type Writer struct {
	w   io.Writer
	buf []byte
}

// NewWriter returns a Writer emitting frames to w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w, buf: make([]byte, 0, 64<<10)}
}

// Append encodes e into the internal buffer. Call Flush to push buffered
// frames to the underlying writer.
func (w *Writer) Append(e *Entry) {
	w.buf = AppendEncode(w.buf, e)
	// Opportunistic flush keeps the buffer bounded without forcing a
	// syscall-per-entry pattern on file-backed writers.
	if len(w.buf) >= 60<<10 {
		_ = w.Flush()
	}
}

// Flush writes all buffered frames to the underlying writer.
func (w *Writer) Flush() error {
	if len(w.buf) == 0 {
		return nil
	}
	_, err := w.w.Write(w.buf)
	w.buf = w.buf[:0]
	return err
}

// Reader decodes a stream of frames produced by Writer.
type Reader struct {
	r   io.Reader
	buf []byte
	off int
}

// NewReader returns a Reader over r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: r}
}

// Next returns the next entry in the stream, or io.EOF when the stream is
// exhausted on a clean frame boundary.
func (r *Reader) Next() (Entry, error) {
	for {
		if e, n, err := Decode(r.buf[r.off:]); err == nil {
			r.off += n
			return e, nil
		}
		// Need more bytes: compact and refill.
		if r.off > 0 {
			r.buf = append(r.buf[:0], r.buf[r.off:]...)
			r.off = 0
		}
		chunk := make([]byte, 32<<10)
		n, err := r.r.Read(chunk)
		r.buf = append(r.buf, chunk[:n]...)
		if n == 0 && err != nil {
			if err == io.EOF && len(r.buf) == 0 {
				return Entry{}, io.EOF
			}
			if err == io.EOF {
				return Entry{}, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(r.buf))
			}
			return Entry{}, err
		}
	}
}

// reader is a bounds-checked little decoder over one payload.
type reader struct {
	buf []byte
	pos int
	err error
}

func (r *reader) byte() byte {
	if r.err != nil || r.pos >= len(r.buf) {
		r.fail("truncated byte")
		return 0
	}
	b := r.buf[r.pos]
	r.pos++
	return b
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		r.fail("truncated uvarint")
		return 0
	}
	r.pos += n
	return v
}

func (r *reader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.pos:])
	if n <= 0 {
		r.fail("truncated varint")
		return 0
	}
	r.pos += n
	return v
}

func (r *reader) bytes(n int) []byte {
	v := r.view(n)
	if v == nil {
		return nil
	}
	b := make([]byte, n)
	copy(b, v)
	return b
}

// view returns n bytes as a sub-slice of the frame, without copying. The
// caller must copy before the frame buffer is recycled.
func (r *reader) view(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.pos+n > len(r.buf) {
		r.fail("truncated bytes")
		return nil
	}
	v := r.buf[r.pos : r.pos+n : r.pos+n]
	r.pos += n
	return v
}

func (r *reader) fail(msg string) {
	if r.err == nil {
		r.err = errors.New(msg)
	}
}
