package wal

import (
	"encoding/binary"
	"fmt"
)

// Header is the metadata prefix of an entry: everything the AETS and ATR
// dispatchers need for routing (type, txn framing, table). Decoding only the
// header skips the CRC pass and the column-value copies, which is exactly
// the cost asymmetry the paper describes between metadata-only dispatch
// (AETS, ATR) and C5's full data-image parse (§VI-A5).
type Header struct {
	Type      LogType
	LSN       uint64
	TxnID     uint64
	Timestamp int64
	Table     TableID
}

// DecodeHeader decodes the header of the frame at the front of buf and
// returns it together with the total frame length, so callers can either
// skip the frame or hand the slice to Decode for the full entry.
func DecodeHeader(buf []byte) (Header, int, error) {
	var h Header
	if len(buf) < 8 {
		return h, 0, fmt.Errorf("%w: short frame header (%d bytes)", ErrCorrupt, len(buf))
	}
	frameLen := binary.LittleEndian.Uint32(buf)
	if int(frameLen) < 4 || len(buf) < 4+int(frameLen) {
		return h, 0, fmt.Errorf("%w: frame length %d exceeds buffer %d", ErrCorrupt, frameLen, len(buf))
	}
	r := reader{buf: buf[8 : 4+frameLen]}
	h.Type = LogType(r.byte())
	h.LSN = r.uvarint()
	h.TxnID = r.uvarint()
	h.Timestamp = r.varint()
	if h.Type.IsDML() {
		h.Table = TableID(r.uvarint())
	}
	if r.err != nil {
		return Header{}, 0, fmt.Errorf("%w: %v", ErrCorrupt, r.err)
	}
	return h, 4 + int(frameLen), nil
}

// EncodeStream encodes a flat entry stream into one contiguous buffer, the
// replication wire format of an epoch payload.
func EncodeStream(entries []Entry) []byte {
	var buf []byte
	for i := range entries {
		buf = AppendEncode(buf, &entries[i])
	}
	return buf
}

// DecodeStream decodes a full buffer of frames back into entries.
func DecodeStream(buf []byte) ([]Entry, error) {
	var out []Entry
	for len(buf) > 0 {
		e, n, err := Decode(buf)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
		buf = buf[n:]
	}
	return out, nil
}

// CountFrames returns the number of frames in buf using header-only scans.
func CountFrames(buf []byte) (int, error) {
	n := 0
	for len(buf) > 0 {
		_, sz, err := DecodeHeader(buf)
		if err != nil {
			return n, err
		}
		buf = buf[sz:]
		n++
	}
	return n, nil
}
