package wal

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// SegmentStore is an append-only, file-backed archive of the replication
// log: fixed-size-capped segment files named aets-<firstLSN>.wal in one
// directory. The primary (or a relay) appends entries in LSN order; a
// recovering backup opens a reader positioned at the LSN after its last
// checkpoint and re-replays the suffix.
type SegmentStore struct {
	dir      string
	maxBytes int

	cur     *os.File
	curW    *Writer
	curSize int
	nextLSN uint64
}

const segPrefix = "aets-"
const segSuffix = ".wal"

// DefaultSegmentBytes caps a segment file at 16 MiB unless overridden.
const DefaultSegmentBytes = 16 << 20

// OpenStore opens (or creates) a segment store in dir. maxBytes ≤ 0 uses
// DefaultSegmentBytes.
func OpenStore(dir string, maxBytes int) (*SegmentStore, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &SegmentStore{dir: dir, maxBytes: maxBytes, nextLSN: 1}
	segs, err := s.segments()
	if err != nil {
		return nil, err
	}
	if len(segs) > 0 {
		// Scan the last segment to find the next LSN.
		last := segs[len(segs)-1]
		f, err := os.Open(s.path(last))
		if err != nil {
			return nil, err
		}
		r := NewReader(f)
		s.nextLSN = last
		for {
			e, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				f.Close()
				return nil, fmt.Errorf("wal: recovering segment %d: %w", last, err)
			}
			s.nextLSN = e.LSN + 1
		}
		f.Close()
	}
	return s, nil
}

// NextLSN returns the LSN the next appended entry must carry.
func (s *SegmentStore) NextLSN() uint64 { return s.nextLSN }

// Append writes entries to the store. Entries must carry consecutive LSNs
// starting at NextLSN (FlattenTxns produces exactly this).
func (s *SegmentStore) Append(entries []Entry) error {
	for i := range entries {
		e := &entries[i]
		if e.LSN != s.nextLSN {
			return fmt.Errorf("wal: entry LSN %d, store expects %d", e.LSN, s.nextLSN)
		}
		if s.cur == nil || s.curSize >= s.maxBytes {
			if err := s.rotate(); err != nil {
				return err
			}
		}
		before := len(s.curW.buf)
		s.curW.Append(e)
		// Approximate size accounting: Append may flush internally.
		if grown := len(s.curW.buf) - before; grown > 0 {
			s.curSize += grown
		} else {
			s.curSize += e.Size() + 16
		}
		s.nextLSN++
	}
	return s.curW.Flush()
}

// Sync flushes buffers and fsyncs the current segment.
func (s *SegmentStore) Sync() error {
	if s.cur == nil {
		return nil
	}
	if err := s.curW.Flush(); err != nil {
		return err
	}
	return s.cur.Sync()
}

// Close flushes and closes the store.
func (s *SegmentStore) Close() error {
	if s.cur == nil {
		return nil
	}
	if err := s.Sync(); err != nil {
		return err
	}
	err := s.cur.Close()
	s.cur, s.curW = nil, nil
	return err
}

func (s *SegmentStore) rotate() error {
	if s.cur != nil {
		if err := s.Close(); err != nil {
			return err
		}
	}
	f, err := os.OpenFile(s.path(s.nextLSN), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	s.cur = f
	s.curW = NewWriter(f)
	s.curSize = 0
	return nil
}

func (s *SegmentStore) path(firstLSN uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s%020d%s", segPrefix, firstLSN, segSuffix))
}

// segments returns the first LSNs of all segments, ascending.
func (s *SegmentStore) segments() ([]uint64, error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var out []uint64
	for _, de := range ents {
		name := de.Name()
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix), 10, 64)
		if err != nil {
			continue
		}
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// ErrLSNTruncated is returned when a requested LSN predates the store's
// oldest retained segment.
var ErrLSNTruncated = errors.New("wal: requested LSN no longer retained")

// ReaderFrom returns an iterator over all stored entries with LSN ≥ from.
func (s *SegmentStore) ReaderFrom(from uint64) (*StoreReader, error) {
	if err := s.Sync(); err != nil {
		return nil, err
	}
	segs, err := s.segments()
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		return &StoreReader{}, nil
	}
	if from > 0 && from < segs[0] {
		return nil, fmt.Errorf("%w: want %d, oldest segment starts at %d", ErrLSNTruncated, from, segs[0])
	}
	// Start at the last segment whose first LSN ≤ from.
	start := 0
	for i, first := range segs {
		if first <= from {
			start = i
		}
	}
	paths := make([]string, 0, len(segs)-start)
	for _, first := range segs[start:] {
		paths = append(paths, s.path(first))
	}
	return &StoreReader{paths: paths, from: from}, nil
}

// TruncateBefore removes whole segments that contain only entries with
// LSN < keep (segment granularity: a segment is removed only when the NEXT
// segment starts at or below keep). Returns the number of files removed.
func (s *SegmentStore) TruncateBefore(keep uint64) (int, error) {
	segs, err := s.segments()
	if err != nil {
		return 0, err
	}
	removed := 0
	for i := 0; i+1 < len(segs); i++ {
		if segs[i+1] <= keep {
			if err := os.Remove(s.path(segs[i])); err != nil {
				return removed, err
			}
			removed++
		}
	}
	return removed, nil
}

// StoreReader iterates entries across segment files.
type StoreReader struct {
	paths []string
	from  uint64
	f     *os.File
	r     *Reader
}

// Next returns the next entry with LSN ≥ from, or io.EOF at the end.
func (sr *StoreReader) Next() (Entry, error) {
	for {
		if sr.r == nil {
			if len(sr.paths) == 0 {
				return Entry{}, io.EOF
			}
			f, err := os.Open(sr.paths[0])
			if err != nil {
				return Entry{}, err
			}
			sr.paths = sr.paths[1:]
			sr.f, sr.r = f, NewReader(f)
		}
		e, err := sr.r.Next()
		if err == io.EOF {
			sr.f.Close()
			sr.f, sr.r = nil, nil
			continue
		}
		if err != nil {
			return Entry{}, err
		}
		if e.LSN >= sr.from {
			return e, nil
		}
	}
}

// Close releases the open segment file, if any.
func (sr *StoreReader) Close() error {
	if sr.f != nil {
		err := sr.f.Close()
		sr.f, sr.r = nil, nil
		return err
	}
	return nil
}
