package wal

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// genTxns builds a random valid transaction list with increasing IDs.
func genTxns(r *rand.Rand, n int) []Txn {
	txns := make([]Txn, n)
	id := uint64(0)
	ts := int64(0)
	for i := range txns {
		id += 1 + uint64(r.Intn(3))
		ts += 1 + r.Int63n(100)
		t := Txn{ID: id, CommitTS: ts}
		for j := 0; j < r.Intn(5); j++ {
			t.Entries = append(t.Entries, Entry{
				Type:   TypeUpdate,
				TxnID:  id,
				Table:  TableID(r.Intn(8) + 1),
				RowKey: r.Uint64(),
				Columns: []Column{
					{ID: uint32(j), Value: []byte{byte(j)}},
				},
			})
		}
		txns[i] = t
	}
	return txns
}

func TestFlattenAssembleRoundTripQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		txns := genTxns(r, 1+r.Intn(20))
		flat, next := FlattenTxns(txns, 1)
		if int(next) != len(flat)+1 {
			return false
		}
		// LSNs must be dense and sequential.
		for i, e := range flat {
			if e.LSN != uint64(i+1) {
				return false
			}
		}
		back, err := AssembleTxns(flat)
		if err != nil || len(back) != len(txns) {
			return false
		}
		for i := range txns {
			if back[i].ID != txns[i].ID || back[i].CommitTS != txns[i].CommitTS ||
				len(back[i].Entries) != len(txns[i].Entries) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAssembleRejectsNestedBegin(t *testing.T) {
	entries := []Entry{
		{Type: TypeBegin, TxnID: 1},
		{Type: TypeBegin, TxnID: 2},
	}
	if _, err := AssembleTxns(entries); err == nil {
		t.Fatal("nested BEGIN accepted")
	}
}

func TestAssembleRejectsUnmatchedCommit(t *testing.T) {
	if _, err := AssembleTxns([]Entry{{Type: TypeCommit, TxnID: 1}}); err == nil {
		t.Fatal("COMMIT without BEGIN accepted")
	}
}

func TestAssembleRejectsDanglingTxn(t *testing.T) {
	if _, err := AssembleTxns([]Entry{{Type: TypeBegin, TxnID: 1}}); err == nil {
		t.Fatal("stream ending inside a txn accepted")
	}
}

func TestAssembleRejectsForeignDML(t *testing.T) {
	entries := []Entry{
		{Type: TypeBegin, TxnID: 1},
		{Type: TypeUpdate, TxnID: 2, Columns: []Column{{ID: 1}}},
		{Type: TypeCommit, TxnID: 1},
	}
	if _, err := AssembleTxns(entries); err == nil {
		t.Fatal("DML from a different txn accepted inside frame")
	}
}

func TestTxnTablesDeduplicates(t *testing.T) {
	txn := Txn{ID: 1, Entries: []Entry{
		{Type: TypeUpdate, Table: 3, Columns: []Column{{}}},
		{Type: TypeUpdate, Table: 3, Columns: []Column{{}}},
		{Type: TypeUpdate, Table: 5, Columns: []Column{{}}},
	}}
	tables := txn.Tables()
	if len(tables) != 2 || tables[0] != 3 || tables[1] != 5 {
		t.Fatalf("Tables() = %v, want [3 5]", tables)
	}
}

func TestTxnSizeSumsEntries(t *testing.T) {
	txn := Txn{Entries: []Entry{
		{Type: TypeUpdate, Columns: []Column{{ID: 1, Value: make([]byte, 10)}}},
		{Type: TypeUpdate, Columns: []Column{{ID: 1, Value: make([]byte, 20)}}},
	}}
	want := txn.Entries[0].Size() + txn.Entries[1].Size()
	if txn.Size() != want {
		t.Fatalf("Size() = %d, want %d", txn.Size(), want)
	}
}

func TestStreamEncodeDecode(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	txns := genTxns(r, 50)
	flat, _ := FlattenTxns(txns, 1)
	buf := EncodeStream(flat)

	n, err := CountFrames(buf)
	if err != nil || n != len(flat) {
		t.Fatalf("CountFrames = %d, %v; want %d", n, err, len(flat))
	}
	back, err := DecodeStream(buf)
	if err != nil || len(back) != len(flat) {
		t.Fatalf("DecodeStream: %v, %d entries, want %d", err, len(back), len(flat))
	}
	for i := range flat {
		if !entriesEqual(flat[i], back[i]) {
			t.Fatalf("entry %d mismatch", i)
		}
	}
}
