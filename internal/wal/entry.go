// Package wal defines the replication value-log format used by AETS.
//
// The format follows Figure 2 of the paper: every entry carries a log type,
// a log sequence number (LSN), the ID of the transaction that produced it,
// the creation timestamp, and — for DML entries — the table it modifies, the
// row key, and the list of (column ID, new value) pairs. The log is a value
// log in the style of SiloR: it records physical after-images, never
// commands, so replaying it requires no re-execution and no rollback.
package wal

import "fmt"

// LogType discriminates transaction-framing entries from row operations.
type LogType uint8

// Log entry types. Begin and Commit bound the entries of one transaction;
// Insert, Update and Delete are the three row operations (paper §III-A).
const (
	TypeInvalid LogType = iota
	TypeBegin
	TypeCommit
	TypeInsert
	TypeUpdate
	TypeDelete
)

// String returns the mnemonic used in log dumps.
func (t LogType) String() string {
	switch t {
	case TypeBegin:
		return "BEGIN"
	case TypeCommit:
		return "COMMIT"
	case TypeInsert:
		return "INSERT"
	case TypeUpdate:
		return "UPDATE"
	case TypeDelete:
		return "DELETE"
	default:
		return fmt.Sprintf("INVALID(%d)", uint8(t))
	}
}

// IsDML reports whether the entry type is a row operation (as opposed to
// transaction framing).
func (t LogType) IsDML() bool {
	return t == TypeInsert || t == TypeUpdate || t == TypeDelete
}

// TableID identifies a database table on both primary and backup.
type TableID uint32

// Column is one (column ID, new value) pair of an entry's log data.
type Column struct {
	ID    uint32
	Value []byte
}

// Entry is a single replication log entry.
//
// TxnID is monotonically increasing on the primary and represents the commit
// order of transactions; Timestamp is the primary's creation time of the
// entry in nanoseconds. For framing entries (Begin/Commit) the Table, RowKey
// and Columns fields are zero.
type Entry struct {
	Type      LogType
	LSN       uint64
	TxnID     uint64
	Timestamp int64
	Table     TableID
	RowKey    uint64
	Columns   []Column

	// PrevTxn is the ID of the previous transaction that modified this row
	// on the primary, or 0 for the first write.
	PrevTxn uint64

	// WriteSeq is the number of committed writes this row had received on
	// the primary before this entry. Together with PrevTxn it is the
	// compressed equivalent of the before-image that value logs such as
	// ATR's carry: comparing the record's current state against the
	// before-image answers exactly "have all my predecessors been
	// applied?", which the pair answers directly. (TxnID alone is not
	// enough: a transaction may write the same row twice, and a successor
	// must not be admitted between those two writes.) AETS and C5 ignore
	// both; the ATR baseline's operation sequence check depends on them.
	WriteSeq uint64
}

// Clone returns a deep copy of the entry; the returned entry shares no
// memory with the receiver.
func (e *Entry) Clone() Entry {
	c := *e
	if e.Columns != nil {
		c.Columns = make([]Column, len(e.Columns))
		for i, col := range e.Columns {
			c.Columns[i] = Column{ID: col.ID, Value: append([]byte(nil), col.Value...)}
		}
	}
	return c
}

// Size returns the approximate in-memory size of the entry in bytes. The
// adaptive thread allocator uses it as the per-group un-replayed log size
// n_gi (paper §IV-B).
func (e *Entry) Size() int {
	n := 1 + 8 + 8 + 8 + 4 + 8 // fixed header fields
	for _, c := range e.Columns {
		n += 4 + len(c.Value)
	}
	return n
}

// Validate checks structural well-formedness of a single entry.
func (e *Entry) Validate() error {
	switch e.Type {
	case TypeBegin, TypeCommit:
		if len(e.Columns) != 0 {
			return fmt.Errorf("wal: %s entry of txn %d carries %d columns", e.Type, e.TxnID, len(e.Columns))
		}
	case TypeInsert, TypeUpdate:
		if len(e.Columns) == 0 {
			return fmt.Errorf("wal: %s entry of txn %d has no columns", e.Type, e.TxnID)
		}
	case TypeDelete:
		// A delete carries only the row key.
	default:
		return fmt.Errorf("wal: invalid log type %d", e.Type)
	}
	return nil
}
