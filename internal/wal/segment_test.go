package wal

import (
	"errors"
	"io"
	"math/rand"
	"testing"
)

func storeEntries(n int, firstLSN uint64) []Entry {
	rng := rand.New(rand.NewSource(int64(firstLSN)))
	out := make([]Entry, n)
	lsn := firstLSN
	for i := range out {
		out[i] = Entry{
			Type: TypeUpdate, LSN: lsn, TxnID: lsn/3 + 1, Timestamp: int64(lsn) * 10,
			Table: TableID(rng.Intn(4) + 1), RowKey: rng.Uint64() % 500,
			Columns: []Column{{ID: 1, Value: make([]byte, 32)}},
		}
		lsn++
	}
	return out
}

func TestSegmentStoreAppendRead(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, 4<<10) // tiny segments to force rotation
	if err != nil {
		t.Fatal(err)
	}
	entries := storeEntries(500, 1)
	if err := s.Append(entries); err != nil {
		t.Fatal(err)
	}
	if s.NextLSN() != 501 {
		t.Fatalf("next LSN %d, want 501", s.NextLSN())
	}
	segs, _ := s.segments()
	if len(segs) < 2 {
		t.Fatalf("expected rotation, got %d segments", len(segs))
	}

	r, err := s.ReaderFrom(0)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i := range entries {
		e, err := r.Next()
		if err != nil {
			t.Fatalf("entry %d: %v", i, err)
		}
		if e.LSN != entries[i].LSN || e.RowKey != entries[i].RowKey {
			t.Fatalf("entry %d mismatch: %+v", i, e)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentStoreReaderFromMidStream(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, 2<<10)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(storeEntries(300, 1)); err != nil {
		t.Fatal(err)
	}
	r, err := s.ReaderFrom(178)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	e, err := r.Next()
	if err != nil || e.LSN != 178 {
		t.Fatalf("first entry LSN %d err %v, want 178", e.LSN, err)
	}
	count := 1
	for {
		if _, err := r.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		count++
	}
	if count != 300-178+1 {
		t.Fatalf("read %d entries from 178, want %d", count, 300-178+1)
	}
	s.Close()
}

func TestSegmentStoreReopenResumes(t *testing.T) {
	dir := t.TempDir()
	s, _ := OpenStore(dir, 2<<10)
	if err := s.Append(storeEntries(100, 1)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := OpenStore(dir, 2<<10)
	if err != nil {
		t.Fatal(err)
	}
	if s2.NextLSN() != 101 {
		t.Fatalf("reopened next LSN %d, want 101", s2.NextLSN())
	}
	if err := s2.Append(storeEntries(50, 101)); err != nil {
		t.Fatal(err)
	}
	r, _ := s2.ReaderFrom(0)
	defer r.Close()
	n := 0
	for {
		if _, err := r.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 150 {
		t.Fatalf("total entries %d, want 150", n)
	}
	s2.Close()
}

func TestSegmentStoreRejectsLSNGap(t *testing.T) {
	s, _ := OpenStore(t.TempDir(), 0)
	bad := storeEntries(1, 5) // store expects LSN 1
	if err := s.Append(bad); err == nil {
		t.Fatal("LSN gap accepted")
	}
	s.Close()
}

func TestSegmentStoreTruncate(t *testing.T) {
	dir := t.TempDir()
	s, _ := OpenStore(dir, 2<<10)
	if err := s.Append(storeEntries(400, 1)); err != nil {
		t.Fatal(err)
	}
	segs, _ := s.segments()
	if len(segs) < 3 {
		t.Skipf("need ≥3 segments, got %d", len(segs))
	}
	keep := segs[len(segs)-1] // keep everything from the last segment on
	removed, err := s.TruncateBefore(keep)
	if err != nil {
		t.Fatal(err)
	}
	if removed != len(segs)-1 {
		t.Fatalf("removed %d segments, want %d", removed, len(segs)-1)
	}
	// Reads below the retained range must fail explicitly.
	if _, err := s.ReaderFrom(1); !errors.Is(err, ErrLSNTruncated) {
		t.Fatalf("want ErrLSNTruncated, got %v", err)
	}
	// Reads within the retained range still work.
	r, err := s.ReaderFrom(keep)
	if err != nil {
		t.Fatal(err)
	}
	if e, err := r.Next(); err != nil || e.LSN < keep {
		t.Fatalf("retained read: %+v %v", e, err)
	}
	r.Close()
	s.Close()
}

func TestSegmentStoreEmptyReader(t *testing.T) {
	s, _ := OpenStore(t.TempDir(), 0)
	r, err := s.ReaderFrom(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("want EOF on empty store, got %v", err)
	}
	s.Close()
}
