package wal

import (
	"math/rand"
	"testing"
)

func benchEntries(n int) ([]Entry, [][]byte) {
	rng := rand.New(rand.NewSource(1))
	entries := make([]Entry, n)
	frames := make([][]byte, n)
	for i := range entries {
		entries[i] = Entry{
			Type: TypeUpdate, LSN: uint64(i + 1), TxnID: uint64(i/10 + 1),
			Timestamp: int64(i) * 1000, Table: TableID(rng.Intn(8) + 1),
			RowKey: rng.Uint64() % 100000, WriteSeq: uint64(i),
			Columns: []Column{
				{ID: 1, Value: make([]byte, 8)},
				{ID: 2, Value: make([]byte, 16)},
			},
		}
		frames[i] = Encode(&entries[i])
	}
	return entries, frames
}

func BenchmarkEncode(b *testing.B) {
	entries, _ := benchEntries(1024)
	buf := make([]byte, 0, 1<<16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendEncode(buf[:0], &entries[i%len(entries)])
	}
}

func BenchmarkDecode(b *testing.B) {
	_, frames := benchEntries(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Decode(frames[i%len(frames)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeHeader(b *testing.B) {
	_, frames := benchEntries(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecodeHeader(frames[i%len(frames)]); err != nil {
			b.Fatal(err)
		}
	}
}
