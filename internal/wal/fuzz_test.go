package wal

import (
	"math/rand"
	"testing"
)

// TestDecodeNeverPanicsOnMutation flips random bytes in valid frames and
// requires Decode/DecodeHeader to either reject or return a structurally
// valid entry — never panic, never read out of bounds.
func TestDecodeNeverPanicsOnMutation(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 3000; trial++ {
		e := genEntry(rng)
		buf := Encode(&e)
		// Mutate 1–4 random bytes.
		for m := 0; m < 1+rng.Intn(4); m++ {
			buf[rng.Intn(len(buf))] ^= byte(1 + rng.Intn(255))
		}
		got, _, err := Decode(buf)
		if err == nil {
			if vErr := got.Validate(); vErr != nil {
				t.Fatalf("mutated frame decoded into invalid entry: %v", vErr)
			}
		}
		// Header decode skips the CRC, so it must stay in bounds even on
		// accepted garbage.
		_, _, _ = DecodeHeader(buf)
	}
}

// TestDecodeNeverPanicsOnRandomBytes throws raw noise at the decoders.
func TestDecodeNeverPanicsOnRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 3000; trial++ {
		buf := make([]byte, rng.Intn(200))
		rng.Read(buf)
		_, _, _ = Decode(buf)
		_, _, _ = DecodeHeader(buf)
	}
}

// TestDecodeStreamStopsAtCorruption checks that a corrupted tail does not
// leak previously decoded entries' validity.
func TestDecodeStreamStopsAtCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var buf []byte
	for i := 0; i < 10; i++ {
		e := genEntry(rng)
		buf = AppendEncode(buf, &e)
	}
	buf = append(buf, 0xde, 0xad, 0xbe)
	if _, err := DecodeStream(buf); err == nil {
		t.Fatal("corrupted tail accepted")
	}
}
