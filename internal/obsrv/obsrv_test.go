package obsrv

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"aets/internal/metrics"
)

func testOptions(h Health) (Options, *metrics.Registry) {
	reg := metrics.NewRegistry()
	reg.Counter("replay_epochs_total").Add(7)
	reg.Gauge("replay_lag_ts").Set(42)
	hist := reg.Histogram("replay_commit_seconds")
	hist.Observe(3 * time.Microsecond)
	hist.Observe(80 * time.Millisecond)
	return Options{Registry: reg, Health: func() Health { return h }}, reg
}

func get(t *testing.T, srv *httptest.Server, path string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
}

func TestMetricsEndpoint(t *testing.T) {
	opts, _ := testOptions(Health{Healthy: true, Status: "ok"})
	srv := httptest.NewServer(NewHandler(opts))
	defer srv.Close()

	code, body, ctype := get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if !strings.HasPrefix(ctype, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ctype)
	}
	for _, want := range []string{
		"# TYPE replay_epochs_total counter",
		"replay_epochs_total 7",
		"# TYPE replay_lag_ts gauge",
		"replay_lag_ts 42",
		"# TYPE replay_commit_seconds histogram",
		`replay_commit_seconds_bucket{le="+Inf"} 2`,
		"replay_commit_seconds_count 2",
		"replay_commit_seconds_sum",
		"# TYPE up gauge",
		"up 1",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q:\n%s", want, body)
		}
	}
	// Histogram buckets must be cumulative: the last finite bucket holds
	// everything at or below its bound.
	if !strings.Contains(body, "_bucket{le=") {
		t.Fatalf("no le-labelled buckets:\n%s", body)
	}
}

func TestMetricsLabelledSeriesShareOneTypeLine(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter(metrics.WithLabel("ship_epochs_sent", "peer", "r1")).Add(3)
	reg.Counter(metrics.WithLabel("ship_epochs_sent", "peer", "r2")).Add(5)
	reg.Gauge(metrics.WithLabel("ship_connected", "peer", "r1")).Set(1)
	reg.Gauge("ship_connected").Set(1) // unlabelled sibling in the same family
	srv := httptest.NewServer(NewHandler(Options{Registry: reg}))
	defer srv.Close()

	_, body, _ := get(t, srv, "/metrics")
	for _, want := range []string{
		`ship_epochs_sent{peer="r1"} 3`,
		`ship_epochs_sent{peer="r2"} 5`,
		`ship_connected{peer="r1"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q:\n%s", want, body)
		}
	}
	// One TYPE declaration per family, no matter how many peers.
	if n := strings.Count(body, "# TYPE ship_epochs_sent counter"); n != 1 {
		t.Fatalf("ship_epochs_sent TYPE lines = %d, want 1:\n%s", n, body)
	}
	if n := strings.Count(body, "# TYPE ship_connected gauge"); n != 1 {
		t.Fatalf("ship_connected TYPE lines = %d, want 1:\n%s", n, body)
	}
	if strings.Contains(body, "# TYPE ship_epochs_sent{") {
		t.Fatalf("TYPE line leaked a label block:\n%s", body)
	}
}

func TestHealthzStatusCodes(t *testing.T) {
	for _, tc := range []struct {
		h    Health
		code int
	}{
		{Health{Healthy: true, Status: "ok", VisibleTS: 10, PrimaryTS: 12, ReplayLagTS: 2}, http.StatusOK},
		{Health{Healthy: false, Status: "replay failed", Err: "boom"}, http.StatusServiceUnavailable},
	} {
		opts, _ := testOptions(tc.h)
		srv := httptest.NewServer(NewHandler(opts))
		code, body, ctype := get(t, srv, "/healthz")
		srv.Close()
		if code != tc.code {
			t.Fatalf("healthy=%v: status %d, want %d", tc.h.Healthy, code, tc.code)
		}
		if ctype != "application/json" {
			t.Fatalf("content type %q", ctype)
		}
		var got Health
		if err := json.Unmarshal([]byte(body), &got); err != nil {
			t.Fatalf("healthz not JSON: %v\n%s", err, body)
		}
		if got != tc.h {
			t.Fatalf("healthz %+v, want %+v", got, tc.h)
		}
	}
}

func TestVarzSnapshot(t *testing.T) {
	opts, _ := testOptions(Health{Healthy: true, Status: "ok"})
	srv := httptest.NewServer(NewHandler(opts))
	defer srv.Close()

	code, body, _ := get(t, srv, "/varz")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	var doc struct {
		Health  Health           `json:"health"`
		Metrics metrics.Snapshot `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("varz not JSON: %v\n%s", err, body)
	}
	if !doc.Health.Healthy {
		t.Fatalf("varz health %+v", doc.Health)
	}
	if doc.Metrics.Counters["replay_epochs_total"] != 7 {
		t.Fatalf("varz counters %v", doc.Metrics.Counters)
	}
	if hs := doc.Metrics.Histograms["replay_commit_seconds"]; hs.Count != 2 {
		t.Fatalf("varz histogram %+v", hs)
	}
}

func TestPprofServed(t *testing.T) {
	opts, _ := testOptions(Health{Healthy: true, Status: "ok"})
	srv := httptest.NewServer(NewHandler(opts))
	defer srv.Close()
	code, body, _ := get(t, srv, "/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index status %d", code)
	}
}

// TestCollectHooksRunPerScrape pins the contract health callbacks rely
// on: every endpoint refreshes derived gauges before snapshotting.
func TestCollectHooksRunPerScrape(t *testing.T) {
	reg := metrics.NewRegistry()
	calls := 0
	opts := Options{
		Registry: reg,
		Collect:  []func(){func() { calls++; reg.Gauge("derived").Set(float64(calls)) }},
	}
	srv := httptest.NewServer(NewHandler(opts))
	defer srv.Close()
	for i, path := range []string{"/metrics", "/healthz", "/varz"} {
		get(t, srv, path)
		if calls != i+1 {
			t.Fatalf("%s did not run collect hooks (%d calls)", path, calls)
		}
	}
	if _, body, _ := get(t, srv, "/metrics"); !strings.Contains(body, "derived 4") {
		t.Fatalf("derived gauge stale:\n%s", body)
	}
}

func TestServeAndClose(t *testing.T) {
	opts, _ := testOptions(Health{Healthy: true, Status: "ok"})
	srv, err := Serve("127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + srv.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + srv.Addr() + "/healthz"); err == nil {
		t.Fatal("server still reachable after Close")
	}
}
