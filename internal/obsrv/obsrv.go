// Package obsrv is the operational observability layer: an HTTP endpoint
// set exposing the process's metrics.Registry as Prometheus text
// (/metrics), a liveness/health signal tied to replay progress
// (/healthz), a JSON state snapshot for humans and scripts (/varz), and
// the standard net/http/pprof profiling handlers (/debug/pprof/).
//
// The package knows nothing about replay or shipping: callers hand it a
// registry plus an optional health callback, and subsystems keep their
// metrics in the registry as before. cmd/replayd serves it behind the
// -http flag on both the primary and the backup.
package obsrv

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"time"

	"aets/internal/metrics"
)

// Health is the point-in-time health report served at /healthz and
// embedded in /varz. Timestamps are in the log's commit-timestamp domain
// (the same domain as Engine.GlobalTS).
type Health struct {
	// Healthy selects the HTTP status: 200 when true, 503 when false.
	Healthy bool `json:"healthy"`
	// Status is a short state word: "ok", "failed", ...
	Status string `json:"status"`
	// Err is the first fatal replay error, when one has occurred.
	Err string `json:"err,omitempty"`
	// VisibleTS is the backup's global visible timestamp.
	VisibleTS int64 `json:"visible_ts"`
	// PrimaryTS is the newest primary commit watermark the node has seen
	// (shipped epochs and heartbeats).
	PrimaryTS int64 `json:"primary_ts"`
	// ReplayLagTS is PrimaryTS - VisibleTS clamped at 0: how far replay
	// trails the primary's heartbeat clock.
	ReplayLagTS int64 `json:"replay_lag_ts"`
	// ShipConnected reports whether a replication link is currently up.
	ShipConnected bool `json:"ship_connected"`
	// Supervisor is the recovery supervisor's state word
	// ("running"/"degraded"/"fatal"); empty when no supervisor runs.
	Supervisor string `json:"supervisor,omitempty"`
	// Degraded reports a serving-but-impaired replica: replay is live
	// but at least one poison epoch was quarantined. Degraded nodes
	// still answer /healthz with 200 — they are ready, not broken.
	Degraded bool `json:"degraded,omitempty"`
	// Restarts counts successful supervisor rebuilds of the replay node.
	Restarts int64 `json:"supervisor_restarts,omitempty"`
	// Quarantined counts poison epochs quarantined by the supervisor.
	Quarantined int64 `json:"quarantined_epochs,omitempty"`
	// DigestMismatches counts anti-entropy digest comparisons that
	// caught this replica's committed state diverging from the
	// sender's; each one flags the replica for snapshot repair.
	DigestMismatches int64 `json:"digest_mismatches,omitempty"`
	// SnapshotRestores counts wire-level catch-up snapshots this
	// replica validated and installed (fresh join, outlived history,
	// or anti-entropy repair).
	SnapshotRestores int64 `json:"snapshot_restores,omitempty"`
	// Columnar reports that the node plans reads over a columnar store
	// (epoch-aligned frozen segments + hot delta). The colstore_* fields
	// below are meaningful only when it is set.
	Columnar bool `json:"columnar,omitempty"`
	// ColstoreSegments counts tables with a live base segment.
	ColstoreSegments int64 `json:"colstore_segments,omitempty"`
	// ColstoreFrozenRows counts rows frozen into segments, cumulative.
	ColstoreFrozenRows int64 `json:"colstore_frozen_rows,omitempty"`
	// ColstoreCompactions counts compaction passes, cumulative.
	ColstoreCompactions int64 `json:"colstore_compactions,omitempty"`
}

// Options configures the endpoint set.
type Options struct {
	// Registry is the metrics source; nil means metrics.Default.
	Registry *metrics.Registry
	// Health supplies the health report; nil reports always-healthy. It is
	// called on every request to /healthz, /varz AND /metrics — health
	// callbacks conventionally refresh derived gauges (replay_lag_ts), so
	// scrapes must observe fresh values too.
	Health func() Health
	// Collect hooks run before every snapshot, for gauges that are
	// computed rather than maintained (queue depths, pool sizes).
	Collect []func()
}

func (o *Options) fill() {
	if o.Registry == nil {
		o.Registry = metrics.Default
	}
}

// NewHandler returns the endpoint mux. Use Serve for the common
// listen-and-serve-in-background case.
func NewHandler(opts Options) http.Handler {
	opts.fill()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		h := refresh(opts)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		writePrometheus(w, opts.Registry.SnapshotAll(), h)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		h := refresh(opts)
		w.Header().Set("Content-Type", "application/json")
		code := http.StatusOK
		if h != nil && !h.Healthy {
			code = http.StatusServiceUnavailable
		}
		w.WriteHeader(code)
		writeJSON(w, healthOrDefault(h))
	})
	mux.HandleFunc("/varz", func(w http.ResponseWriter, r *http.Request) {
		h := refresh(opts)
		w.Header().Set("Content-Type", "application/json")
		writeJSON(w, varz{
			Health:  healthOrDefault(h),
			Metrics: opts.Registry.SnapshotAll(),
		})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// refresh runs the collect hooks and health callback that keep derived
// gauges current, returning the health report (nil when unconfigured).
func refresh(opts Options) *Health {
	for _, fn := range opts.Collect {
		fn()
	}
	if opts.Health == nil {
		return nil
	}
	h := opts.Health()
	return &h
}

func healthOrDefault(h *Health) Health {
	if h != nil {
		return *h
	}
	return Health{Healthy: true, Status: "ok"}
}

// varz is the /varz document.
type varz struct {
	Health  Health           `json:"health"`
	Metrics metrics.Snapshot `json:"metrics"`
}

func writeJSON(w io.Writer, v any) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writePrometheus renders a registry snapshot in the Prometheus text
// exposition format (version 0.0.4): one TYPE line per family, histograms
// as cumulative le-labelled buckets with _sum and _count. Health is
// rendered too (healthz over scrape, the Kubernetes idiom) so alerting
// needs only this endpoint.
func writePrometheus(w io.Writer, snap metrics.Snapshot, h *Health) {
	// Labelled series (ship_connected{peer="r1"}) share one family with
	// their unlabelled siblings; TYPE is declared once per family. Sorted
	// names keep a family's series adjacent, so tracking the last emitted
	// base name suffices.
	lastType := ""
	typeLine := func(name, kind string) {
		if base := metrics.BaseName(name); base != lastType {
			fmt.Fprintf(w, "# TYPE %s %s\n", base, kind)
			lastType = base
		}
	}
	for _, name := range sortedKeys(snap.Counters) {
		typeLine(name, "counter")
		fmt.Fprintf(w, "%s %d\n", name, snap.Counters[name])
	}
	lastType = ""
	for _, name := range sortedKeys(snap.Gauges) {
		typeLine(name, "gauge")
		fmt.Fprintf(w, "%s %g\n", name, snap.Gauges[name])
	}
	for _, name := range sortedKeys(snap.Histograms) {
		hs := snap.Histograms[name]
		fmt.Fprintf(w, "# TYPE %s histogram\n", name)
		for _, b := range hs.Buckets {
			fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatBound(b.UpperSeconds), b.Count)
		}
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, hs.Count)
		fmt.Fprintf(w, "%s_sum %g\n", name, hs.SumSeconds)
		fmt.Fprintf(w, "%s_count %d\n", name, hs.Count)
	}
	if h != nil {
		up := 0
		if h.Healthy {
			up = 1
		}
		fmt.Fprintf(w, "# TYPE up gauge\nup %d\n", up)
	}
}

func formatBound(v float64) string {
	return fmt.Sprintf("%g", v)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Server is a live endpoint listener, created by Serve.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve listens on addr (":9090", "127.0.0.1:0", ...) and serves the
// endpoint set in a background goroutine until Close.
func Serve(addr string, opts Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obsrv: listen %s: %w", addr, err)
	}
	srv := &http.Server{
		Handler:           NewHandler(opts),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() { _ = srv.Serve(ln) }()
	return &Server{ln: ln, srv: srv}, nil
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and any in-flight handlers.
func (s *Server) Close() error { return s.srv.Close() }
