// End-to-end crash/restart test with live observability: a primary ships
// TPC-C epochs over the real transport, the backup checkpoints
// mid-stream and "crashes"; a restarted backup restores the checkpoint,
// resumes the stream at its cursor, ends state-identical to a serial
// reference application — and its /metrics and /healthz endpoints are
// scraped while it happens.
package obsrv_test

import (
	"bytes"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"aets/internal/epoch"
	"aets/internal/grouping"
	"aets/internal/htap"
	"aets/internal/memtable"
	"aets/internal/metrics"
	"aets/internal/obsrv"
	"aets/internal/primary"
	"aets/internal/reference"
	"aets/internal/ship"
	"aets/internal/workload"
)

const e2eWarehouses = 2

func e2ePlan() *grouping.Plan {
	gen := workload.NewTPCC(e2eWarehouses)
	return grouping.Build(htap.TPCCRates(1000), workload.TableIDs(gen.Tables()),
		grouping.Options{Eps: 0.05, MinPts: 2})
}

func e2eSchema() uint64 {
	return ship.SchemaHash("tpcc", workload.TableIDs(workload.NewTPCC(e2eWarehouses).Tables()))
}

func mustSender(t *testing.T, cfg ship.SenderConfig) *ship.Sender {
	t.Helper()
	s, err := ship.NewSender(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustShipReceiver(t *testing.T, node *htap.Node, cfg ship.ReceiverConfig) *ship.Receiver {
	t.Helper()
	r, err := node.ShipReceiver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// shipAll streams encs into rcv over a real TCP connection and waits for
// the clean end of stream.
func shipAll(t *testing.T, rcv *ship.Receiver, reg *metrics.Registry, encs []epoch.Encoded) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan error, 1)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				done <- nil
				return
			}
			eos, err := rcv.Serve(conn)
			if err != nil {
				done <- err
				return
			}
			if eos {
				done <- nil
				return
			}
		}
	}()
	s := mustSender(t, ship.SenderConfig{
		Dial:    func() (net.Conn, error) { return net.Dial("tcp", ln.Addr().String()) },
		Schema:  e2eSchema(),
		Metrics: ship.NewMetrics(reg),
	})
	for i := range encs {
		if err := s.Send(&encs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("serve loop timeout")
	}
}

func scrape(t *testing.T, addr, path string) (int, string) {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestCrashRestartResumeWithObservability(t *testing.T) {
	p := primary.New(workload.NewTPCC(e2eWarehouses), 9)
	txns := p.GenerateTxns(4096)
	encs := epoch.EncodeAll(epoch.MustSplit(txns, 256)) // 16 epochs
	half := len(encs) / 2

	// Ground truth: the whole stream applied serially.
	full := memtable.New()
	reference.Apply(full, txns)

	// Life 1: ship the first half, checkpoint, crash.
	var ckpt bytes.Buffer
	{
		reg := metrics.NewRegistry()
		node, err := htap.NewNode(htap.KindAETS, e2ePlan(), htap.Options{Workers: 2, Metrics: reg})
		if err != nil {
			t.Fatal(err)
		}
		rcv := mustShipReceiver(t, node, ship.ReceiverConfig{
			Schema:  e2eSchema(),
			Metrics: ship.NewMetrics(reg),
			Drain:   func() error { node.Drain(); return node.Err() },
		})
		shipAll(t, rcv, reg, encs[:half])
		if _, err := node.Checkpoint(&ckpt); err != nil {
			t.Fatal(err)
		}
		node.Close() // the "crash"
	}

	// Life 2: restore, serve observability, resume. The sender replays
	// the entire stream; the WELCOME cursor retires the first half
	// without re-transmission.
	reg := metrics.NewRegistry()
	node, meta, err := htap.RestoreNode(bytes.NewReader(ckpt.Bytes()), htap.KindAETS, e2ePlan(),
		htap.Options{Workers: 2, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	if !meta.Fed || meta.NextEpochSeq() != uint64(half) {
		t.Fatalf("restored meta %+v, want fed with resume %d", meta, half)
	}
	if meta.LastTxnID != txns[half*256-1].ID {
		t.Fatalf("restored LastTxnID %d, want %d", meta.LastTxnID, txns[half*256-1].ID)
	}

	srv, err := obsrv.Serve("127.0.0.1:0", obsrv.Options{
		Registry: reg,
		Health: node.HealthSource(reg, func() bool {
			return reg.Gauge("ship_connected").Load() != 0
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	rcv := mustShipReceiver(t, node, ship.ReceiverConfig{
		Schema:  e2eSchema(),
		Metrics: ship.NewMetrics(reg),
		Drain:   func() error { node.Drain(); return node.Err() },
	})
	shipAll(t, rcv, reg, encs)
	node.Drain()

	// State must match the serial reference exactly.
	tables := workload.TableIDs(workload.NewTPCC(e2eWarehouses).Tables())
	if err := reference.Equal(full, node.Memtable(), tables); err != nil {
		t.Fatal(err)
	}
	if got := rcv.Stats(); got.Cursor != uint64(len(encs)) {
		t.Fatalf("receiver cursor %d, want %d", got.Cursor, len(encs))
	}

	// The endpoints reflect the node that just replayed the stream.
	code, health := scrape(t, srv.Addr(), "/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz %d: %s", code, health)
	}
	for _, want := range []string{`"healthy": true`, `"replay_lag_ts": 0`} {
		if !strings.Contains(health, want) {
			t.Fatalf("/healthz missing %q:\n%s", want, health)
		}
	}

	code, metricsBody := scrape(t, srv.Addr(), "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics %d", code)
	}
	for _, want := range []string{
		"# TYPE replay_commit_seconds histogram",
		"replay_commit_seconds_count",
		"# TYPE replay_dispatch_seconds histogram",
		"# TYPE replay_lag_ts gauge",
		"replay_lag_ts 0",
		"ship_epochs_sent",
		"up 1",
	} {
		if !strings.Contains(metricsBody, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, metricsBody)
		}
	}
	// Replay really went through the instrumented commit path.
	snap := reg.SnapshotAll()
	if hs := snap.Histograms["replay_commit_seconds"]; hs.Count == 0 {
		t.Fatal("commit histogram never observed")
	}
}
