// End-to-end test of supervisor state through the observability
// endpoints: a supervised backup serves /varz and /healthz while
// running, and after a poison epoch is quarantined the endpoints must
// show a degraded-but-healthy replica.
package obsrv_test

import (
	"net/http"
	"strings"
	"testing"
	"time"

	"aets/internal/epoch"
	"aets/internal/htap"
	"aets/internal/metrics"
	"aets/internal/obsrv"
	"aets/internal/primary"
	"aets/internal/recovery"
	"aets/internal/workload"
)

func TestSupervisorStateThroughVarz(t *testing.T) {
	reg := metrics.NewRegistry()
	spool, err := recovery.OpenSpool(recovery.SpoolConfig{Dir: t.TempDir(), Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer spool.Close()
	mgr, err := recovery.OpenManager(t.TempDir(), 0, reg)
	if err != nil {
		t.Fatal(err)
	}
	sup, err := recovery.NewSupervisor(recovery.Config{
		Kind:          htap.KindAETS,
		Plan:          e2ePlan(),
		Node:          htap.Options{Workers: 2, Metrics: reg},
		Spool:         spool,
		Checkpoints:   mgr,
		RetryBase:     time.Millisecond,
		RetryMax:      5 * time.Millisecond,
		ProbeInterval: -1,
		Metrics:       reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sup.Start(); err != nil {
		t.Fatal(err)
	}
	defer sup.Close()

	srv, err := obsrv.Serve("127.0.0.1:0", obsrv.Options{Registry: reg, Health: sup.Health})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	p := primary.New(workload.NewTPCC(e2eWarehouses), 3)
	encs := p.GenerateEncoded(512, 64)
	for i := range encs {
		if err := sup.Feed(&encs[i]); err != nil {
			t.Fatal(err)
		}
	}

	code, varz := scrape(t, srv.Addr(), "/varz")
	if code != http.StatusOK {
		t.Fatalf("/varz %d: %s", code, varz)
	}
	for _, want := range []string{
		`"supervisor": "running"`,
		`"healthy": true`,
		`"recovery_spool_epochs_total": 8`,
	} {
		if !strings.Contains(varz, want) {
			t.Fatalf("/varz missing %q:\n%s", want, varz)
		}
	}
	if strings.Contains(varz, `"degraded"`) {
		t.Fatalf("/varz reports degraded on a healthy run:\n%s", varz)
	}

	// Poison the stream: /varz must flip to degraded with a restart and
	// quarantine count, while /healthz stays 200 (degraded ≠ down).
	poison := &epoch.Encoded{
		Seq:          uint64(len(encs)),
		TxnCount:     1,
		EntryCount:   1,
		Buf:          []byte{0xba, 0xad, 0xf0, 0x0d},
		LastCommitTS: encs[len(encs)-1].LastCommitTS,
	}
	if err := sup.Feed(poison); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for sup.State() != recovery.StateDegraded {
		if time.Now().After(deadline) {
			t.Fatalf("poison epoch never quarantined (stats %+v)", sup.Stats())
		}
		_ = sup.Probe()
		time.Sleep(time.Millisecond)
	}

	code, varz = scrape(t, srv.Addr(), "/varz")
	if code != http.StatusOK {
		t.Fatalf("/varz %d after quarantine", code)
	}
	for _, want := range []string{
		`"supervisor": "degraded"`,
		`"degraded": true`,
		`"quarantined_epochs": 1`,
		`"healthy": true`,
		`"recovery_quarantined_total": 1`,
	} {
		if !strings.Contains(varz, want) {
			t.Fatalf("/varz after quarantine missing %q:\n%s", want, varz)
		}
	}
	code, health := scrape(t, srv.Addr(), "/healthz")
	if code != http.StatusOK {
		t.Fatalf("degraded replica answered /healthz with %d (must stay 200): %s", code, health)
	}
}
