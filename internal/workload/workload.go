// Package workload implements the benchmark workload generators of the
// paper's evaluation: TPC-C, CH-benCHmark, SEATS (Table I only) and the
// synthetic BusTracker workload. Each generator produces the *write sets*
// of OLTP transactions — the primary simulator turns them into value-log
// transactions — plus the OLAP side: query table-footprints and per-table
// access-rate curves over time.
package workload

import (
	"math/rand"

	"aets/internal/wal"
)

// TableMeta describes one table of a benchmark.
type TableMeta struct {
	ID   wal.TableID
	Name string
	// Rows is the size of the table's initial keyspace; generated row keys
	// are drawn from [1, Rows] (inserts extend it).
	Rows uint64
	// Hot marks tables accessed by the benchmark's analytical queries —
	// the A∩T membership of Table I.
	Hot bool
}

// Write is one row modification of an OLTP transaction.
type Write struct {
	Table wal.TableID
	Key   uint64
	Op    wal.LogType // TypeInsert, TypeUpdate or TypeDelete
	Cols  []wal.Column
}

// Query is the table footprint of one analytical query.
type Query struct {
	Name   string
	Tables []wal.TableID
}

// Generator produces the OLTP write stream and describes the OLAP side of
// one benchmark.
type Generator interface {
	// Name returns the benchmark name.
	Name() string
	// Tables returns the benchmark's table catalogue.
	Tables() []TableMeta
	// NextTxn appends the write set of one transaction to dst and returns
	// the extended slice. Generators are not safe for concurrent use; use
	// one per goroutine with separate rngs.
	NextTxn(rng *rand.Rand, dst []Write) []Write
	// Queries returns the analytical query mix (footprints).
	Queries() []Query
}

// RatedGenerator is implemented by workloads whose OLAP access rates vary
// over time (BusTracker): Rates returns the per-table access rate during
// time slot `slot`.
type RatedGenerator interface {
	Generator
	Rates(slot int) map[wal.TableID]float64
}

// TableIDs returns the IDs of all tables in the catalogue.
func TableIDs(tables []TableMeta) []wal.TableID {
	out := make([]wal.TableID, len(tables))
	for i, t := range tables {
		out[i] = t.ID
	}
	return out
}

// HotTables returns the IDs of tables marked Hot.
func HotTables(tables []TableMeta) []wal.TableID {
	var out []wal.TableID
	for _, t := range tables {
		if t.Hot {
			out = append(out, t.ID)
		}
	}
	return out
}

// HotEntryRatio generates n transactions and returns the fraction of log
// entries that modify hot tables — the "ratio" column of Table I.
func HotEntryRatio(g Generator, n int, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	hot := make(map[wal.TableID]bool)
	for _, t := range g.Tables() {
		hot[t.ID] = t.Hot
	}
	var total, hotN int
	var ws []Write
	for i := 0; i < n; i++ {
		ws = g.NextTxn(rng, ws[:0])
		for _, w := range ws {
			total++
			if hot[w.Table] {
				hotN++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(hotN) / float64(total)
}

// valueCol builds a column payload of the given size with a deterministic
// fill derived from the key, so tests can verify replayed contents.
func valueCol(id uint32, key uint64, size int) wal.Column {
	v := make([]byte, size)
	for i := range v {
		v[i] = byte(key>>(uint(i%8)*8) ^ uint64(id) ^ uint64(i))
	}
	return wal.Column{ID: id, Value: v}
}

// uniform returns a key in [1, n].
func uniform(rng *rand.Rand, n uint64) uint64 {
	if n == 0 {
		return 1
	}
	return 1 + uint64(rng.Int63n(int64(n)))
}
