package workload

import (
	"fmt"
	"math"
	"math/rand"

	"aets/internal/wal"
)

// BusTracker table IDs start here; the workload has 65 written tables
// (Table I: num(T)=65), of which 14 are hot (num(A)=num(A∩T)=14).
const busTrackerBase wal.TableID = 300

// NumBusTrackerTables is the table count of the BusTracker schema.
const NumBusTrackerTables = 65

// BusTracker is the synthetic reconstruction of the BusTracker workload
// published with QB5000 (paper §VI-A3): a real bus-tracking application
// whose analytical queries predict bus waiting times from fresh position
// data. High-churn logging tables (m.app_state_log, m.screen_log, ...)
// dominate the write volume but are rarely queried; the 14 hot tables
// receive 37.12% of log entries. Per-table access rates follow
// "comprehensible trends" over time — here daily-style sinusoids with
// phase offsets plus regime shifts — which Fig 7 plots and the DTGM
// predictor learns.
type BusTracker struct {
	tables  []TableMeta
	weights []float64 // per-table write weight, cumulative
	cum     []float64
	curves  []rateCurve // indexed like tables; zero curve for cold tables
	nextKey []uint64
}

// BusDayPeriod is the length of BusTracker's shared service cycle in
// slots: all table access rates follow the same rhythm with different
// phases and shapes, as a transit workload does. Deep modulation (quiet
// troughs, busy peaks) makes the rate landscape move fast enough that a
// trailing average visibly lags it.
const BusDayPeriod = 72

// rateNoise is the relative standard deviation of the per-slot stochastic
// fluctuation around each table's trend.
const rateNoise = 0.18

// rateCurve parameterises one hot table's access-rate trend.
type rateCurve struct {
	id      int // stable index for deterministic per-slot noise
	cluster int // query cluster sharing a demand factor
	base    float64
	amp     float64
	amp2    float64 // second harmonic: morning/evening double peak
	phase   float64
	// shiftAt/shiftTo model a workload regime change: from slot shiftAt the
	// base level moves to shiftTo (what defeats pure historical averaging).
	shiftAt int
	shiftTo float64
}

// rate evaluates the curve at a time slot: the deterministic daily trend,
// a persistent *shared* demand factor for the table's query cluster
// (queries touch several tables at once, so their rates co-move — the
// relationship DTGM's GCN exploits, paper §IV-A1), and a per-table
// fluctuation. All randomness is hashed from (table, slot) so repeated
// evaluations agree.
func (c rateCurve) rate(slot int) float64 {
	base := c.base
	if c.shiftAt > 0 && slot >= c.shiftAt {
		base = c.shiftTo
	}
	tod := 2 * math.Pi * float64(slot) / BusDayPeriod
	trend := base * (1 + c.amp*math.Sin(tod+c.phase) + c.amp2*math.Sin(2*tod+2.3*c.phase))
	v := trend * (1 + clusterFactor(c.cluster, slot) + rateNoise*noiseAt(c.id, slot))
	if v < 0 {
		return 0
	}
	return v
}

// clusterFactor is the shared, slowly varying demand deviation of a query
// cluster: a low-passed noise series, so a neighbour's current deviation
// carries information about a table's next slots.
func clusterFactor(cluster, slot int) float64 {
	const window = 8
	var s float64
	for k := 0; k < window; k++ {
		s += noiseAt(1000+cluster, slot-k)
	}
	return 0.20 * s / window
}

// noiseAt returns an approximately standard-normal deterministic value for
// (table, slot) via an Irwin–Hall sum of hashed uniforms.
func noiseAt(id, slot int) float64 {
	var sum float64
	for k := 0; k < 4; k++ {
		h := uint64(id)*0x9E3779B97F4A7C15 ^ uint64(slot)*0xBF58476D1CE4E5B9 ^ uint64(k)*0x94D049BB133111EB
		h ^= h >> 33
		h *= 0xFF51AFD7ED558CCD
		h ^= h >> 33
		sum += float64(h%1000000) / 1000000.0
	}
	return (sum - 2) / 0.5774
}

// busHotNames are the hot tables the paper lists (plus enough companions
// to reach the published count of 14).
var busHotNames = []string{
	"m.trip", "m.calendar", "m.estimate", "m.agency", "m.stop_time",
	"m.route", "m.stop", "m.messages", "m.region_agency", "m.vehicle",
	"m.position", "m.arrival", "m.prediction", "m.alert",
}

// busQueryCluster maps each hot table (by index in busHotNames) to the
// analytical query whose demand drives it — the first footprint in
// Queries() containing the table. Tables sharing a cluster share a demand
// factor, which is exactly the access relationship the GCN encodes.
var busQueryCluster = [...]int{
	0, // m.trip          — WaitTimePrediction
	1, // m.calendar      — TripEstimate
	1, // m.estimate      — TripEstimate
	3, // m.agency        — AgencyStatus
	0, // m.stop_time     — WaitTimePrediction
	0, // m.route         — WaitTimePrediction
	2, // m.stop          — StopBoard
	3, // m.messages      — AgencyStatus
	3, // m.region_agency — AgencyStatus
	4, // m.vehicle       — FleetPosition
	0, // m.position      — WaitTimePrediction
	2, // m.arrival       — StopBoard
	0, // m.prediction    — WaitTimePrediction
	3, // m.alert         — AgencyStatus
}

// busColdLogNames are the high-churn, rarely-read tables that dominate the
// write volume.
var busColdLogNames = []string{
	"m.app_state_log", "m.screen_log", "m.location_log", "m.request_log",
	"m.session_log", "m.event_log", "m.error_log", "m.heartbeat_log",
}

// NewBusTracker builds the workload with deterministic curve parameters.
func NewBusTracker() *BusTracker {
	b := &BusTracker{}
	rng := rand.New(rand.NewSource(42))

	addTable := func(name string, hot bool, rows uint64, weight float64) {
		id := busTrackerBase + wal.TableID(len(b.tables))
		b.tables = append(b.tables, TableMeta{ID: id, Name: name, Rows: rows, Hot: hot})
		b.weights = append(b.weights, weight)
		var c rateCurve
		if hot {
			c = rateCurve{
				id:      len(b.tables),
				cluster: busQueryCluster[len(b.tables)-1],
				base:    200 + rng.Float64()*1800,
				amp:     0.3 + rng.Float64()*0.4,
				amp2:    rng.Float64() * 0.25,
				phase:   rng.Float64() * 2 * math.Pi,
			}
			// A third of the hot tables undergo a regime shift mid-trace.
			if len(b.tables)%3 == 0 {
				c.shiftAt = 600 + rng.Intn(400)
				c.shiftTo = c.base * (0.3 + rng.Float64()*2.2)
			}
		}
		b.curves = append(b.curves, c)
	}

	// 14 hot tables: together they receive ~37.12% of log entries.
	hotWeight := 0.3712 / float64(len(busHotNames))
	for _, n := range busHotNames {
		addTable(n, true, 50000, hotWeight)
	}
	// 8 heavy logging tables take the bulk of the remaining volume.
	coldHeavy := 0.52 / float64(len(busColdLogNames))
	for _, n := range busColdLogNames {
		addTable(n, false, 500000, coldHeavy)
	}
	// The remaining 43 tables are low-volume cold reference tables.
	rest := NumBusTrackerTables - len(b.tables)
	coldLight := (1 - 0.3712 - 0.52) / float64(rest)
	for i := 0; i < rest; i++ {
		addTable(fmt.Sprintf("m.ref_%02d", i), false, 20000, coldLight)
	}

	b.cum = make([]float64, len(b.weights))
	sum := 0.0
	for i, w := range b.weights {
		sum += w
		b.cum[i] = sum
	}
	b.nextKey = make([]uint64, len(b.tables))
	for i := range b.nextKey {
		b.nextKey[i] = b.tables[i].Rows
	}
	return b
}

// Name implements Generator.
func (b *BusTracker) Name() string { return "BusTracker" }

// Tables implements Generator.
func (b *BusTracker) Tables() []TableMeta { return b.tables }

// Queries implements Generator: analytical queries read small clusters of
// related hot tables (the footprint clusters also define the access graph
// the GCN component of DTGM exploits).
func (b *BusTracker) Queries() []Query {
	id := func(i int) wal.TableID { return busTrackerBase + wal.TableID(i) }
	return []Query{
		{Name: "WaitTimePrediction", Tables: []wal.TableID{id(0), id(4), id(5), id(10), id(12)}},
		{Name: "TripEstimate", Tables: []wal.TableID{id(0), id(1), id(2)}},
		{Name: "StopBoard", Tables: []wal.TableID{id(5), id(6), id(11)}},
		{Name: "AgencyStatus", Tables: []wal.TableID{id(3), id(7), id(8), id(13)}},
		{Name: "FleetPosition", Tables: []wal.TableID{id(9), id(10)}},
	}
}

// Rates implements RatedGenerator: the per-table access rate in time slot
// `slot` (one slot = one minute in the Fig 13 experiment).
func (b *BusTracker) Rates(slot int) map[wal.TableID]float64 {
	out := make(map[wal.TableID]float64, len(busHotNames))
	for i, t := range b.tables {
		if t.Hot {
			out[t.ID] = b.curves[i].rate(slot)
		}
	}
	return out
}

// RateSeries returns the dense [slots][tables] hot-rate matrix used to
// train and evaluate the predictors, together with the hot table IDs in
// column order.
func (b *BusTracker) RateSeries(slots int) ([][]float64, []wal.TableID) {
	var ids []wal.TableID
	var idx []int
	for i, t := range b.tables {
		if t.Hot {
			ids = append(ids, t.ID)
			idx = append(idx, i)
		}
	}
	m := make([][]float64, slots)
	for s := 0; s < slots; s++ {
		row := make([]float64, len(idx))
		for j, i := range idx {
			row[j] = b.curves[i].rate(s)
		}
		m[s] = row
	}
	return m, ids
}

// NextTxn implements Generator: 1–5 writes, each to a weight-sampled table.
func (b *BusTracker) NextTxn(rng *rand.Rand, dst []Write) []Write {
	n := 1 + rng.Intn(5)
	for k := 0; k < n; k++ {
		i := b.sampleTable(rng)
		t := &b.tables[i]
		op := wal.TypeUpdate
		key := uniform(rng, t.Rows)
		if rng.Intn(100) < 30 { // logging tables are append-heavy
			op = wal.TypeInsert
			b.nextKey[i]++
			key = b.nextKey[i]
		}
		w := Write{Table: t.ID, Key: key, Op: op,
			Cols: []wal.Column{valueCol(1, key, 16), valueCol(2, key, 8)}}
		if op == wal.TypeDelete {
			w.Cols = nil
		}
		dst = append(dst, w)
	}
	return dst
}

func (b *BusTracker) sampleTable(rng *rand.Rand) int {
	x := rng.Float64() * b.cum[len(b.cum)-1]
	lo, hi := 0, len(b.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if b.cum[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// AccessGraph returns the table-access adjacency matrix over the hot
// tables (column order of RateSeries): A[i][j] = 1 when tables i and j
// co-occur in a query footprint. DTGM's GCN consumes it.
func (b *BusTracker) AccessGraph() [][]float64 {
	var ids []wal.TableID
	pos := make(map[wal.TableID]int)
	for _, t := range b.tables {
		if t.Hot {
			pos[t.ID] = len(ids)
			ids = append(ids, t.ID)
		}
	}
	adj := make([][]float64, len(ids))
	for i := range adj {
		adj[i] = make([]float64, len(ids))
		adj[i][i] = 1
	}
	for _, q := range b.Queries() {
		for _, a := range q.Tables {
			for _, c := range q.Tables {
				if ia, ok := pos[a]; ok {
					if ic, ok2 := pos[c]; ok2 {
						adj[ia][ic] = 1
					}
				}
			}
		}
	}
	return adj
}
