package workload

import "aets/internal/wal"

// Read-only CH-benCHmark reference tables (never written, so they never
// appear in the replication log; they matter only for query footprints).
const (
	CHSupplier wal.TableID = iota + 100
	CHNation
	CHRegion
)

// CHBench is the CH-benCHmark workload: TPC-C's OLTP write mix combined
// with the 22 TPC-H-derived analytical queries over the merged schema
// (paper §VI-A3). Written tables accessed by any of the 22 queries are hot
// (the TPC-C five plus new_order via Q3); warehouse and history stay cold.
type CHBench struct {
	TPCC
}

// NewCHBench returns a CH-benCHmark generator at the given scale factor.
func NewCHBench(sf int) *CHBench {
	g := &CHBench{TPCC: *NewTPCC(sf)}
	g.chHot = true
	return g
}

// Name implements Generator.
func (c *CHBench) Name() string { return "CH-benCHmark" }

// Queries implements Generator: the table footprints of the 22 CH queries.
// Footprints follow the CH-benCHmark SQL (TPC-H queries rewritten over the
// TPC-C schema plus supplier/nation/region).
func (c *CHBench) Queries() []Query {
	q := func(name string, ts ...wal.TableID) Query { return Query{Name: name, Tables: ts} }
	return []Query{
		q("Q1", TPCCOrderLine),
		q("Q2", TPCCItem, CHSupplier, TPCCStock, CHNation, CHRegion),
		q("Q3", TPCCCustomer, TPCCNewOrder, TPCCOrder, TPCCOrderLine),
		q("Q4", TPCCOrder, TPCCOrderLine),
		q("Q5", TPCCCustomer, TPCCOrder, TPCCOrderLine, TPCCStock, CHSupplier, CHNation, CHRegion),
		q("Q6", TPCCOrderLine),
		q("Q7", CHSupplier, TPCCStock, TPCCOrderLine, TPCCOrder, TPCCCustomer, CHNation),
		q("Q8", TPCCItem, CHSupplier, TPCCStock, TPCCOrderLine, TPCCOrder, TPCCCustomer, CHNation, CHRegion),
		q("Q9", TPCCItem, CHSupplier, TPCCStock, TPCCOrderLine, TPCCOrder, CHNation),
		q("Q10", TPCCCustomer, TPCCOrder, TPCCOrderLine, CHNation),
		q("Q11", CHSupplier, TPCCStock, CHNation),
		q("Q12", TPCCOrder, TPCCOrderLine),
		q("Q13", TPCCCustomer, TPCCOrder),
		q("Q14", TPCCItem, TPCCOrderLine),
		q("Q15", CHSupplier, TPCCOrderLine),
		q("Q16", TPCCItem, CHSupplier, TPCCStock),
		q("Q17", TPCCItem, TPCCOrderLine),
		q("Q18", TPCCCustomer, TPCCOrder, TPCCOrderLine),
		q("Q19", TPCCItem, TPCCOrderLine),
		q("Q20", CHSupplier, CHNation, TPCCStock, TPCCItem, TPCCOrderLine),
		q("Q21", CHSupplier, TPCCOrderLine, TPCCOrder, CHNation),
		q("Q22", TPCCCustomer, TPCCOrder),
	}
}
