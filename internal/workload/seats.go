package workload

import (
	"math/rand"

	"aets/internal/wal"
)

// SEATS table IDs (written tables only, plus the read-only reference
// tables the analytical queries touch).
const (
	SeatsReservation wal.TableID = iota + 200
	SeatsFlight
	SeatsCustomer
	SeatsFrequentFlyer
	SeatsAirport // read-only
	SeatsAirline // read-only
	SeatsCountry // read-only
	SeatsConfig  // read-only
)

// SEATS is a reduced model of the SEATS airline benchmark, used only for
// the Table I workload characterisation: four written tables, analytical
// queries over eight tables of which two (flight, customer) are written,
// with roughly 38% of log entries landing in hot tables.
type SEATS struct {
	nextRes uint64
}

// NewSEATS returns a SEATS generator.
func NewSEATS() *SEATS { return &SEATS{} }

// Name implements Generator.
func (s *SEATS) Name() string { return "SEATS" }

// Tables implements Generator.
func (s *SEATS) Tables() []TableMeta {
	return []TableMeta{
		{ID: SeatsReservation, Name: "reservation", Rows: 200000},
		{ID: SeatsFlight, Name: "flight", Rows: 15000, Hot: true},
		{ID: SeatsCustomer, Name: "customer", Rows: 100000, Hot: true},
		{ID: SeatsFrequentFlyer, Name: "frequent_flyer", Rows: 100000},
	}
}

// Queries implements Generator: the analytical footprint spans eight
// tables, two of them written (flight, customer).
func (s *SEATS) Queries() []Query {
	return []Query{
		{Name: "FlightLoadFactor", Tables: []wal.TableID{
			SeatsFlight, SeatsAirport, SeatsAirline, SeatsConfig,
		}},
		{Name: "CustomerActivity", Tables: []wal.TableID{
			SeatsCustomer, SeatsFlight, SeatsAirport, SeatsCountry,
		}},
	}
}

// NextTxn implements Generator. The mix models NewReservation (60%),
// UpdateReservation/Customer (25%) and DeleteReservation (15%).
func (s *SEATS) NextTxn(rng *rand.Rand, dst []Write) []Write {
	switch x := rng.Intn(100); {
	case x < 60: // NewReservation
		s.nextRes++
		dst = append(dst,
			Write{Table: SeatsReservation, Key: s.nextRes, Op: wal.TypeInsert,
				Cols: []wal.Column{valueCol(1, s.nextRes, 16), valueCol(2, s.nextRes, 8)}},
			Write{Table: SeatsReservation, Key: s.nextRes, Op: wal.TypeUpdate,
				Cols: []wal.Column{valueCol(3, s.nextRes, 8)}},
			Write{Table: SeatsReservation, Key: s.nextRes, Op: wal.TypeUpdate,
				Cols: []wal.Column{valueCol(6, s.nextRes, 8)}},
			Write{Table: SeatsFlight, Key: uniform(rng, 15000), Op: wal.TypeUpdate,
				Cols: []wal.Column{valueCol(4, s.nextRes, 8)}},
			Write{Table: SeatsCustomer, Key: uniform(rng, 100000), Op: wal.TypeUpdate,
				Cols: []wal.Column{valueCol(5, s.nextRes, 8)}},
		)
	case x < 85: // UpdateCustomer
		dst = append(dst,
			Write{Table: SeatsCustomer, Key: uniform(rng, 100000), Op: wal.TypeUpdate,
				Cols: []wal.Column{valueCol(5, rng.Uint64(), 8)}},
			Write{Table: SeatsFrequentFlyer, Key: uniform(rng, 100000), Op: wal.TypeUpdate,
				Cols: []wal.Column{valueCol(2, rng.Uint64(), 8)}},
			Write{Table: SeatsFrequentFlyer, Key: uniform(rng, 100000), Op: wal.TypeUpdate,
				Cols: []wal.Column{valueCol(3, rng.Uint64(), 8)}},
			Write{Table: SeatsFrequentFlyer, Key: uniform(rng, 100000), Op: wal.TypeUpdate,
				Cols: []wal.Column{valueCol(4, rng.Uint64(), 8)}},
		)
	default: // DeleteReservation
		dst = append(dst,
			Write{Table: SeatsReservation, Key: uniform(rng, max64(s.nextRes, 1)), Op: wal.TypeDelete},
			Write{Table: SeatsFlight, Key: uniform(rng, 15000), Op: wal.TypeUpdate,
				Cols: []wal.Column{valueCol(4, rng.Uint64(), 8)}},
			Write{Table: SeatsCustomer, Key: uniform(rng, 100000), Op: wal.TypeUpdate,
				Cols: []wal.Column{valueCol(5, rng.Uint64(), 8)}},
		)
	}
	return dst
}
