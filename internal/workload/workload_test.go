package workload

import (
	"math"
	"math/rand"
	"testing"

	"aets/internal/wal"
)

func TestTPCCHotRatioMatchesPaper(t *testing.T) {
	// Table I: TPC-C hot entries are 90.98% of the log.
	ratio := HotEntryRatio(NewTPCC(20), 20000, 1)
	if ratio < 0.86 || ratio > 0.95 {
		t.Fatalf("TPC-C hot ratio %.4f, paper reports 0.9098", ratio)
	}
}

func TestCHBenchHotRatioMatchesPaper(t *testing.T) {
	// §VI-A3: 93.72% of CH-benCHmark entries are hot.
	ratio := HotEntryRatio(NewCHBench(20), 20000, 2)
	if ratio < 0.90 || ratio > 0.99 {
		t.Fatalf("CH hot ratio %.4f, paper reports 0.9372", ratio)
	}
}

func TestSEATSHotRatioMatchesPaper(t *testing.T) {
	// Table I: SEATS hot entries are 38.08%.
	ratio := HotEntryRatio(NewSEATS(), 20000, 3)
	if ratio < 0.30 || ratio > 0.48 {
		t.Fatalf("SEATS hot ratio %.4f, paper reports 0.3808", ratio)
	}
}

func TestBusTrackerHotRatioMatchesPaper(t *testing.T) {
	// Table I: BusTracker hot entries are 37.12%.
	ratio := HotEntryRatio(NewBusTracker(), 20000, 4)
	if ratio < 0.32 || ratio > 0.43 {
		t.Fatalf("BusTracker hot ratio %.4f, paper reports 0.3712", ratio)
	}
}

func TestTableCountsMatchTableI(t *testing.T) {
	cases := []struct {
		gen    Generator
		tables int
		hot    int
	}{
		{NewTPCC(1), 8, 5},
		{NewSEATS(), 4, 2},
		{NewCHBench(1), 8, 6},
		{NewBusTracker(), 65, 14},
	}
	for _, c := range cases {
		if got := len(c.gen.Tables()); got != c.tables {
			t.Errorf("%s: %d tables, want %d", c.gen.Name(), got, c.tables)
		}
		if got := len(HotTables(c.gen.Tables())); got != c.hot {
			t.Errorf("%s: %d hot tables, want %d", c.gen.Name(), got, c.hot)
		}
	}
}

func TestCHBenchHas22Queries(t *testing.T) {
	qs := NewCHBench(1).Queries()
	if len(qs) != 22 {
		t.Fatalf("CH queries: %d, want 22", len(qs))
	}
	// Table I footprint sizes for Q1–Q6.
	wantSizes := []int{1, 5, 4, 2, 7, 1}
	for i, w := range wantSizes {
		if len(qs[i].Tables) != w {
			t.Errorf("%s touches %d tables, want %d", qs[i].Name, len(qs[i].Tables), w)
		}
	}
	// Written-table intersections for Q1–Q6 (Table I: 1,1,4,2,4,1).
	written := make(map[wal.TableID]bool)
	for _, tb := range NewCHBench(1).Tables() {
		written[tb.ID] = true
	}
	wantHits := []int{1, 1, 4, 2, 4, 1}
	for i, w := range wantHits {
		hits := 0
		for _, tb := range qs[i].Tables {
			if written[tb] {
				hits++
			}
		}
		if hits != w {
			t.Errorf("%s: %d written tables, want %d", qs[i].Name, hits, w)
		}
	}
}

func TestGeneratorsProduceValidWrites(t *testing.T) {
	for _, gen := range []Generator{NewTPCC(2), NewCHBench(2), NewSEATS(), NewBusTracker()} {
		rng := rand.New(rand.NewSource(9))
		known := make(map[wal.TableID]bool)
		for _, tb := range gen.Tables() {
			known[tb.ID] = true
		}
		var ws []Write
		for i := 0; i < 500; i++ {
			ws = gen.NextTxn(rng, ws[:0])
			if len(ws) == 0 {
				t.Fatalf("%s: empty transaction", gen.Name())
			}
			for _, w := range ws {
				if !known[w.Table] {
					t.Fatalf("%s: write to unknown table %d", gen.Name(), w.Table)
				}
				if !w.Op.IsDML() {
					t.Fatalf("%s: non-DML op %v", gen.Name(), w.Op)
				}
				if w.Op != wal.TypeDelete && len(w.Cols) == 0 {
					t.Fatalf("%s: %v without columns", gen.Name(), w.Op)
				}
				if w.Key == 0 {
					t.Fatalf("%s: zero row key", gen.Name())
				}
			}
		}
	}
}

func TestBusTrackerRatesVaryOverTime(t *testing.T) {
	bt := NewBusTracker()
	r0 := bt.Rates(0)
	r100 := bt.Rates(100)
	if len(r0) != 14 {
		t.Fatalf("rates cover %d tables, want 14", len(r0))
	}
	changed := 0
	for id, v := range r0 {
		if math.Abs(v-r100[id]) > 1e-6 {
			changed++
		}
	}
	if changed < 10 {
		t.Fatalf("only %d/14 table rates changed between slots", changed)
	}
}

func TestBusTrackerRegimeShifts(t *testing.T) {
	bt := NewBusTracker()
	series, _ := bt.RateSeries(1200)
	// At least one table's mean level changes substantially between the
	// first and last 200 slots (the shift that defeats HA).
	shifted := false
	for j := 0; j < len(series[0]); j++ {
		var early, late float64
		for s := 0; s < 200; s++ {
			early += series[s][j]
			late += series[len(series)-200+s][j]
		}
		if early > 0 && (late/early > 1.5 || late/early < 0.67) {
			shifted = true
			break
		}
	}
	if !shifted {
		t.Fatal("no regime shift found in any hot table")
	}
}

func TestBusTrackerAccessGraph(t *testing.T) {
	bt := NewBusTracker()
	adj := bt.AccessGraph()
	if len(adj) != 14 {
		t.Fatalf("graph over %d nodes, want 14", len(adj))
	}
	for i := range adj {
		if adj[i][i] != 1 {
			t.Fatalf("missing self loop at %d", i)
		}
		for j := range adj[i] {
			if adj[i][j] != adj[j][i] {
				t.Fatalf("graph not symmetric at (%d,%d)", i, j)
			}
		}
	}
	// Tables co-occurring in a query must be connected: m.trip (0) and
	// m.calendar (1) share TripEstimate.
	if adj[0][1] != 1 {
		t.Fatal("co-accessed tables not connected")
	}
}

func TestHotEntryRatioEmptyGenerator(t *testing.T) {
	if HotEntryRatio(NewTPCC(1), 0, 1) != 0 {
		t.Fatal("zero transactions must give ratio 0")
	}
}

func TestValueColDeterministic(t *testing.T) {
	a := valueCol(3, 42, 16)
	b := valueCol(3, 42, 16)
	if string(a.Value) != string(b.Value) {
		t.Fatal("valueCol not deterministic")
	}
	c := valueCol(3, 43, 16)
	if string(a.Value) == string(c.Value) {
		t.Fatal("valueCol ignores key")
	}
}
