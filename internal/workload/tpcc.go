package workload

import (
	"math/rand"

	"aets/internal/wal"
)

// TPC-C table IDs. Item is read-only under the standard mix and therefore
// never appears in the log; the eight written tables match num(T)=8 of
// Table I.
const (
	TPCCWarehouse wal.TableID = iota + 1
	TPCCDistrict
	TPCCCustomer
	TPCCHistory
	TPCCNewOrder
	TPCCOrder
	TPCCOrderLine
	TPCCStock
	TPCCItem
)

// TPCC generates the TPC-C read-write mix (Payment, NewOrder, Delivery in
// the default proportions) as the OLTP side, with the read-only
// OrderStatus and StockLevel transactions as the analytical side
// (paper §VI-A3). Hot tables are the five read by the analytical side:
// district, stock, customer, order and order_line.
type TPCC struct {
	// SF is the scale factor (number of warehouses); the paper uses 20.
	SF int
	// chHot switches the hot-table marking to the CH-benCHmark variant,
	// where the 22 analytical queries also read new_order (Q3).
	chHot bool

	nextOrderID uint64
	nextHistID  uint64
}

// NewTPCC returns a TPC-C generator at the given scale factor.
func NewTPCC(sf int) *TPCC {
	if sf <= 0 {
		sf = 20
	}
	return &TPCC{SF: sf}
}

// Name implements Generator.
func (t *TPCC) Name() string { return "TPC-C" }

// Tables implements Generator. Cardinalities follow the TPC-C population
// rules per warehouse (scaled down 10× on customer/stock keyspaces to keep
// in-memory footprints laptop-sized without changing access skew).
func (t *TPCC) Tables() []TableMeta {
	w := uint64(t.SF)
	hot := map[wal.TableID]bool{
		TPCCDistrict: true, TPCCStock: true, TPCCCustomer: true,
		TPCCOrder: true, TPCCOrderLine: true,
	}
	if t.chHot {
		// CH-benCHmark: Q3 also reads new_order, so it joins the hot set;
		// warehouse and history stay cold (no CH query needs their
		// freshness), giving the ~94% hot-entry ratio of §VI-A3.
		hot[TPCCNewOrder] = true
	}
	metas := []TableMeta{
		{ID: TPCCWarehouse, Name: "warehouse", Rows: w},
		{ID: TPCCDistrict, Name: "district", Rows: w * 10},
		{ID: TPCCCustomer, Name: "customer", Rows: w * 3000},
		{ID: TPCCHistory, Name: "history", Rows: w * 3000},
		{ID: TPCCNewOrder, Name: "new_order", Rows: w * 900},
		{ID: TPCCOrder, Name: "orders", Rows: w * 3000},
		{ID: TPCCOrderLine, Name: "order_line", Rows: w * 30000},
		{ID: TPCCStock, Name: "stock", Rows: w * 10000},
	}
	for i := range metas {
		metas[i].Hot = hot[metas[i].ID]
	}
	return metas
}

// Queries implements Generator: the two read-only TPC-C transactions used
// as logical analytical queries.
func (t *TPCC) Queries() []Query {
	return []Query{
		{Name: "OrderStatus", Tables: []wal.TableID{TPCCCustomer, TPCCOrder, TPCCOrderLine}},
		{Name: "StockLevel", Tables: []wal.TableID{TPCCDistrict, TPCCOrderLine, TPCCStock}},
	}
}

// NextTxn implements Generator with the default read-write mix normalised
// over the write transactions: NewOrder 45/92, Payment 43/92, Delivery 4/92.
func (t *TPCC) NextTxn(rng *rand.Rand, dst []Write) []Write {
	switch x := rng.Intn(92); {
	case x < 45:
		return t.newOrder(rng, dst)
	case x < 88:
		return t.payment(rng, dst)
	default:
		return t.delivery(rng, dst)
	}
}

func (t *TPCC) newOrder(rng *rand.Rand, dst []Write) []Write {
	w := uint64(t.SF)
	dst = append(dst, Write{
		Table: TPCCDistrict, Key: uniform(rng, w*10), Op: wal.TypeUpdate,
		Cols: []wal.Column{valueCol(3, rng.Uint64(), 8)}, // d_next_o_id
	})
	t.nextOrderID++
	oid := t.nextOrderID
	dst = append(dst, Write{
		Table: TPCCOrder, Key: oid, Op: wal.TypeInsert,
		Cols: []wal.Column{valueCol(1, oid, 8), valueCol(2, oid, 8), valueCol(3, oid, 8)},
	})
	dst = append(dst, Write{
		Table: TPCCNewOrder, Key: oid, Op: wal.TypeInsert,
		Cols: []wal.Column{valueCol(1, oid, 8)},
	})
	lines := 5 + rng.Intn(11) // 5..15 order lines
	for l := 0; l < lines; l++ {
		item := uniform(rng, w*10000)
		dst = append(dst, Write{
			Table: TPCCStock, Key: item, Op: wal.TypeUpdate,
			Cols: []wal.Column{valueCol(2, item, 8), valueCol(4, item, 8)}, // s_quantity, s_ytd
		})
		dst = append(dst, Write{
			Table: TPCCOrderLine, Key: oid*16 + uint64(l), Op: wal.TypeInsert,
			Cols: []wal.Column{valueCol(1, oid, 8), valueCol(2, item, 8), valueCol(3, oid, 16)},
		})
	}
	return dst
}

func (t *TPCC) payment(rng *rand.Rand, dst []Write) []Write {
	w := uint64(t.SF)
	dst = append(dst, Write{
		Table: TPCCWarehouse, Key: uniform(rng, w), Op: wal.TypeUpdate,
		Cols: []wal.Column{valueCol(8, rng.Uint64(), 8)}, // w_ytd
	})
	dst = append(dst, Write{
		Table: TPCCDistrict, Key: uniform(rng, w*10), Op: wal.TypeUpdate,
		Cols: []wal.Column{valueCol(9, rng.Uint64(), 8)}, // d_ytd
	})
	dst = append(dst, Write{
		Table: TPCCCustomer, Key: uniform(rng, w*3000), Op: wal.TypeUpdate,
		Cols: []wal.Column{valueCol(16, rng.Uint64(), 8), valueCol(17, rng.Uint64(), 8)},
	})
	t.nextHistID++
	dst = append(dst, Write{
		Table: TPCCHistory, Key: t.nextHistID, Op: wal.TypeInsert,
		Cols: []wal.Column{valueCol(1, t.nextHistID, 24)},
	})
	return dst
}

func (t *TPCC) delivery(rng *rand.Rand, dst []Write) []Write {
	w := uint64(t.SF)
	for d := 0; d < 10; d++ {
		oid := uniform(rng, max64(t.nextOrderID, 1))
		dst = append(dst, Write{Table: TPCCNewOrder, Key: oid, Op: wal.TypeDelete})
		dst = append(dst, Write{
			Table: TPCCOrder, Key: oid, Op: wal.TypeUpdate,
			Cols: []wal.Column{valueCol(6, oid, 8)}, // o_carrier_id
		})
		lines := 5 + rng.Intn(11)
		for l := 0; l < lines; l++ {
			dst = append(dst, Write{
				Table: TPCCOrderLine, Key: oid*16 + uint64(l), Op: wal.TypeUpdate,
				Cols: []wal.Column{valueCol(7, oid, 8)}, // ol_delivery_d
			})
		}
		dst = append(dst, Write{
			Table: TPCCCustomer, Key: uniform(rng, w*3000), Op: wal.TypeUpdate,
			Cols: []wal.Column{valueCol(16, oid, 8)}, // c_balance
		})
	}
	return dst
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
