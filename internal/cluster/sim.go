package cluster

import (
	"fmt"
	"math/rand"
	"sync"

	"aets/internal/wal"
)

// SimReplica is a scripted replica for the deterministic cluster
// simulator: watermarks advance only when told to, WaitVisible blocks on
// a condition variable, and health is a switch. It satisfies Replica but
// not Snapshotter — the simulator tests routing decisions, not reads.
type SimReplica struct {
	id string

	mu      sync.Mutex
	cond    *sync.Cond
	visible int64
	primary int64
	healthy bool
}

// NewSimReplica returns a healthy replica at watermark 0.
func NewSimReplica(id string) *SimReplica {
	r := &SimReplica{id: id, healthy: true}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// ID implements Replica.
func (r *SimReplica) ID() string { return r.id }

// VisibleTS implements Replica.
func (r *SimReplica) VisibleTS() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.visible
}

// PrimaryTS implements Replica.
func (r *SimReplica) PrimaryTS() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.primary
}

// Healthy implements Replica.
func (r *SimReplica) Healthy() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.healthy
}

// WaitVisible implements Replica: block until the watermark covers qts
// (true) or the replica is killed (false). No polling — the simulator's
// advances broadcast.
func (r *SimReplica) WaitVisible(qts int64, tables []wal.TableID) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for r.visible < qts && r.healthy {
		r.cond.Wait()
	}
	return r.visible >= qts
}

// AdvanceTo raises the visible watermark (monotone; lower values are
// ignored) and wakes waiters.
func (r *SimReplica) AdvanceTo(ts int64) {
	r.mu.Lock()
	if ts > r.visible {
		r.visible = ts
		r.cond.Broadcast()
	}
	r.mu.Unlock()
}

// SetPrimaryTS raises the primary watermark (monotone).
func (r *SimReplica) SetPrimaryTS(ts int64) {
	r.mu.Lock()
	if ts > r.primary {
		r.primary = ts
	}
	r.mu.Unlock()
}

// SetHealthy flips liveness; killing a replica releases its waiters with
// ok=false so the router fails over.
func (r *SimReplica) SetHealthy(ok bool) {
	r.mu.Lock()
	r.healthy = ok
	r.cond.Broadcast()
	r.mu.Unlock()
}

// SimConfig configures a Simulator.
type SimConfig struct {
	// Replicas is the topology size. Required (≥ 1).
	Replicas int
	// Seed drives the per-tick lag jitter; a given seed replays the
	// exact same lag trajectory. Default 1.
	Seed int64
	// MaxLag is the slowest replica's mean replay lag in commit-ts
	// units. Replica lag is skewed linearly across the topology:
	// replica 0 tracks the primary exactly, replica N-1 trails by
	// ~MaxLag — the "one fresh replica, many stale ones" shape a real
	// read fleet settles into. Default 1000.
	MaxLag int64
	// Metrics receives the membership gauge; nil registers defaults.
	Metrics *Metrics
}

// Simulator drives a deterministic multi-replica topology: a virtual
// primary commit clock and N SimReplicas whose watermarks trail it by
// seeded, skewed lags. It owns a Membership ready to hand to a Router,
// so routing behaviour at 8–64 replicas is testable in microseconds on
// CI hardware. All mutation happens on the caller's goroutine (Tick,
// Kill, Revive); queries race against it from any number of goroutines —
// exactly the contention the router must survive.
type Simulator struct {
	cfg      SimConfig
	rng      *rand.Rand
	replicas []*SimReplica
	members  *Membership

	mu  sync.Mutex
	now int64
}

// NewSimulator builds the topology and registers every replica in a
// fresh Membership.
func NewSimulator(cfg SimConfig) (*Simulator, error) {
	if cfg.Replicas < 1 {
		return nil, fmt.Errorf("cluster: SimConfig.Replicas must be ≥ 1")
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.MaxLag <= 0 {
		cfg.MaxLag = 1000
	}
	s := &Simulator{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		members: NewMembership(cfg.Metrics),
	}
	for i := 0; i < cfg.Replicas; i++ {
		r := NewSimReplica(fmt.Sprintf("sim-%03d", i))
		s.replicas = append(s.replicas, r)
		if err := s.members.Add(r); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Members returns the simulator's membership, ready for a Router.
func (s *Simulator) Members() *Membership { return s.members }

// Replicas returns the topology in index order (index 0 is the
// freshest).
func (s *Simulator) Replicas() []*SimReplica { return s.replicas }

// Now returns the virtual primary commit clock.
func (s *Simulator) Now() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// Tick advances the primary clock by dt and replays every live replica
// toward it under its skewed lag: replica i trails the clock by a value
// drawn (deterministically from the seed) around MaxLag·i/(N-1).
// Watermarks stay monotone — a draw that would move a replica backwards
// leaves it where it is.
func (s *Simulator) Tick(dt int64) {
	s.mu.Lock()
	s.now += dt
	now := s.now
	n := len(s.replicas)
	for i, r := range s.replicas {
		if !r.Healthy() {
			continue // dead replicas do not replay
		}
		var mean int64
		if n > 1 {
			mean = s.cfg.MaxLag * int64(i) / int64(n-1)
		}
		// Jitter: lag ∈ [mean/2, 3·mean/2]; replica 0 has none.
		lag := mean
		if mean > 0 {
			lag = mean/2 + s.rng.Int63n(mean+1)
		}
		r.SetPrimaryTS(now)
		if vis := now - lag; vis > 0 {
			r.AdvanceTo(vis)
		}
	}
	s.mu.Unlock()
}

// Kill marks replica i dead: it stops advancing, reports unhealthy, and
// releases any admission waiting on it.
func (s *Simulator) Kill(i int) { s.replicas[i].SetHealthy(false) }

// Revive brings replica i back; its watermark resumes from where it
// stopped on the next Tick.
func (s *Simulator) Revive(i int) { s.replicas[i].SetHealthy(true) }
