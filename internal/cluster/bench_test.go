package cluster_test

import (
	"fmt"
	"testing"

	"aets/internal/cluster"
	"aets/internal/metrics"
)

// BenchmarkRouteQuery measures the zero-block admission path — the
// per-query routing overhead a proxy adds in front of a replica fleet —
// across topology sizes and a mixed satisfied/stale timestamp load.
func BenchmarkRouteQuery(b *testing.B) {
	for _, n := range []int{1, 3, 8, 64} {
		b.Run(fmt.Sprintf("replicas=%d", n), func(b *testing.B) {
			m := cluster.NewMetrics(metrics.NewRegistry())
			sim, err := cluster.NewSimulator(cluster.SimConfig{
				Replicas: n, Seed: 42, MaxLag: 1000, Metrics: m})
			if err != nil {
				b.Fatal(err)
			}
			router, err := cluster.NewRouter(cluster.RouterConfig{Members: sim.Members(), Metrics: m})
			if err != nil {
				b.Fatal(err)
			}
			// Settle the topology so every replica has a nonzero watermark
			// and the usual skew; queries target the laggiest watermark so
			// every admission is a zero-block hit.
			for i := 0; i < 50; i++ {
				sim.Tick(100)
			}
			qts := sim.Replicas()[n-1].VisibleTS()
			if qts <= 0 {
				b.Fatalf("topology did not settle: tail watermark %d", qts)
			}
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					adm, err := router.Admit(qts, 1)
					if err != nil {
						b.Fatal(err)
					}
					adm.Done()
				}
			})
			if w := m.RouteWaits.Load(); w != 0 {
				b.Fatalf("benchmark load blocked %d times; admission path not zero-block", w)
			}
		})
	}
}
