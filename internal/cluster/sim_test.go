// Deterministic cluster-simulator tests: routing invariants at
// topologies (8–64 replicas, skewed lag) that CI hardware could never
// run as real processes. Run under -race via `make race`.
package cluster

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"aets/internal/metrics"
)

// TestSimRouterInvariantUnderConcurrency is the core acceptance
// invariant: with replicas advancing concurrently under skewed lag and
// random kills, the router NEVER returns an admission whose replica's
// visible watermark is below the pinned snapshot timestamp.
func TestSimRouterInvariantUnderConcurrency(t *testing.T) {
	for _, n := range []int{8, 16, 64} {
		n := n
		t.Run(string(rune('0'+n/10))+string(rune('0'+n%10))+"replicas", func(t *testing.T) {
			t.Parallel()
			m := NewMetrics(metrics.NewRegistry())
			sim, err := NewSimulator(SimConfig{Replicas: n, Seed: int64(n), MaxLag: 2000, Metrics: m})
			if err != nil {
				t.Fatal(err)
			}
			router, err := NewRouter(RouterConfig{Members: sim.Members(), Metrics: m, MaxFailovers: n})
			if err != nil {
				t.Fatal(err)
			}

			const ticks = 400
			var stop atomic.Bool
			var wg sync.WaitGroup

			// Driver: advance the cluster; kill and revive a mid-pack
			// replica periodically (never replica 0, so the wait path
			// always has a live freshest target).
			wg.Add(1)
			go func() {
				defer wg.Done()
				victim := 1 + n/2
				for i := 0; i < ticks; i++ {
					sim.Tick(50)
					switch i % 100 {
					case 40:
						sim.Kill(victim)
					case 80:
						sim.Revive(victim)
					}
				}
				// Drain stragglers: run the clock far enough ahead that
				// every parked wait admits, then stop the queriers.
				sim.Revive(victim)
				sim.Tick(10 * 2000)
				stop.Store(true)
				// Keep ticking so replicas still behind the final qts
				// catch up and release their waiters.
				for i := 0; i < 50; i++ {
					sim.Tick(2000)
				}
			}()

			// Queriers: random timestamps up to slightly ahead of the
			// primary clock, checking the invariant on every admission.
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					for !stop.Load() {
						now := sim.Now()
						qts := rng.Int63n(now + 100)
						adm, err := router.Admit(qts, 1)
						if err != nil {
							continue // all targets dead at that instant: legal
						}
						if got := adm.Replica.VisibleTS(); got < adm.TS {
							t.Errorf("INVARIANT: replica %s watermark %d < admitted ts %d",
								adm.Replica.ID(), got, adm.TS)
						}
						if qts > 0 && adm.TS != qts {
							t.Errorf("pinned ts %d, want query ts %d", adm.TS, qts)
						}
						adm.Done()
					}
				}(int64(g + 1))
			}
			wg.Wait()

			snap := sim.Members().Snapshot()
			if len(snap) != n {
				t.Fatalf("membership %d, want %d", len(snap), n)
			}
			for _, st := range snap {
				if st.Load != 0 {
					t.Fatalf("leaked load slot on %s: %+v", st.ID, st)
				}
			}
			// Deterministic zero-block check (the racing queriers above may
			// finish before any admission lands): a qts every replica has
			// passed must hit without waiting.
			hits := m.RouteHits.Load()
			adm, err := router.Admit(1, 1)
			if err != nil {
				t.Fatal(err)
			}
			if adm.Waited || m.RouteHits.Load() != hits+1 {
				t.Fatalf("satisfied admission waited=%v hits %d→%d", adm.Waited, hits, m.RouteHits.Load())
			}
			adm.Done()
		})
	}
}

// TestSimSatisfiedQueryNeverBlocks is the acceptance bar's second half:
// a query whose snapshot ts is already satisfied by ANY live replica is
// admitted without blocking — observed through the hit/wait counters.
func TestSimSatisfiedQueryNeverBlocks(t *testing.T) {
	m := NewMetrics(metrics.NewRegistry())
	sim, err := NewSimulator(SimConfig{Replicas: 8, Seed: 7, MaxLag: 5000, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	router, err := NewRouter(RouterConfig{Members: sim.Members(), Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		sim.Tick(100)
		// The laggiest live replica's watermark: satisfied by every live
		// replica, so admission must be a hit even if routed anywhere.
		minVis := int64(-1)
		for _, st := range sim.Members().Snapshot() {
			if st.Healthy && !st.Down && (minVis < 0 || st.VisibleTS < minVis) {
				minVis = st.VisibleTS
			}
		}
		if minVis <= 0 {
			continue
		}
		hits, waits := m.RouteHits.Load(), m.RouteWaits.Load()
		adm, err := router.Admit(minVis, 1)
		if err != nil {
			t.Fatal(err)
		}
		if adm.Waited {
			t.Fatalf("tick %d: satisfied qts %d blocked on %s", i, minVis, adm.Replica.ID())
		}
		adm.Done()
		if m.RouteHits.Load() != hits+1 || m.RouteWaits.Load() != waits {
			t.Fatalf("tick %d: counters hits %d→%d waits %d→%d, want one hit, no wait",
				i, hits, m.RouteHits.Load(), waits, m.RouteWaits.Load())
		}
	}
}

// TestSimDeterminism: the same seed must replay the same lag trajectory.
func TestSimDeterminism(t *testing.T) {
	run := func() []int64 {
		sim, err := NewSimulator(SimConfig{Replicas: 16, Seed: 99, MaxLag: 3000,
			Metrics: NewMetrics(metrics.NewRegistry())})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 100; i++ {
			sim.Tick(77)
		}
		out := make([]int64, 0, 16)
		for _, r := range sim.Replicas() {
			out = append(out, r.VisibleTS())
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replica %d diverged across identical runs: %d vs %d", i, a[i], b[i])
		}
	}
	// The skew is real: replica 0 tracks the clock, the tail trails.
	if a[0] <= a[15] {
		t.Fatalf("no lag skew: head %d, tail %d", a[0], a[15])
	}
}
