package cluster

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"aets/internal/epoch"
	"aets/internal/metrics"
	"aets/internal/ship"
)

// ErrPeerOverflow is the terminal error of a peer whose divergence
// buffer exceeded FanoutConfig.MaxQueue: the peer fell too far behind
// its siblings and was dropped from the fan-out. With a snapshot
// source configured the overflow is not terminal — the backlog is shed
// and the peer re-based over the wire instead (see FanoutConfig.Snapshot).
var ErrPeerOverflow = errors.New("cluster: peer queue overflow")

// ErrAllPeersDown is returned by Send once every peer has failed.
var ErrAllPeersDown = errors.New("cluster: all fan-out peers down")

// Peer configures one downstream replication link of a Fanout.
type Peer struct {
	// ID names the replica this link feeds; it labels the link's ship_*
	// metrics (peer="<ID>") and joins fan-out state to membership.
	ID string
	// Sender is the link configuration (Dial, Schema, Window, retry
	// policy...). Sender.Metrics defaults to per-peer labelled metrics
	// in the fan-out's registry; Sender.HeartbeatTS defaults to the
	// peer's handed-off watermark so relayed heartbeats never advertise
	// timestamps ahead of what this link has shipped.
	Sender ship.SenderConfig
}

// FanoutConfig configures a Fanout.
type FanoutConfig struct {
	// Peers are the downstream links. At least one is required.
	Peers []Peer
	// Registry receives the per-peer ship metrics; nil uses
	// metrics.Default.
	Registry *metrics.Registry
	// MaxQueue bounds each peer's divergence buffer: epochs enqueued but
	// not yet handed to that peer's sender (which applies its own
	// windowed backpressure per link). When a peer exceeds it — it is
	// down for longer than its siblings' progress allows — the peer is
	// dropped with ErrPeerOverflow instead of stalling the fan-out.
	// 0 means unbounded (the default): a dead replica's epochs
	// accumulate until it returns, and its sender resumes from the
	// replica's cursor on reconnect.
	//
	// When Snapshot is set, overflow is recoverable instead of terminal:
	// the backlog is shed, cluster_peer_overflow_total{peer} counts the
	// shed, and the peer's sender re-bases the replica with a wire-level
	// snapshot when it reconnects.
	MaxQueue int
	// Snapshot, when set, is the default ship.SenderConfig.Snapshot for
	// every peer whose own config leaves it nil: the state source a
	// sender streams when a replica's cursor predates retained history —
	// after a MaxQueue overflow shed, a primary-side spool compaction,
	// or a digest-mismatch repair request. On a fan-out primary this is
	// an htap.NodeSnapshotSource over the mirror node that applies each
	// epoch before it ships.
	Snapshot ship.SnapshotSource
	// DigestEvery enqueues an anti-entropy digest to every peer after
	// each DigestEvery-th epoch: the sender ships a state digest that
	// the replica compares against its own committed state at the same
	// cursor, catching silent divergence that per-frame CRCs cannot.
	// 0 disables anti-entropy. Requires Digest.
	DigestEvery int
	// Digest supplies the digest triple (cursor, visible timestamp,
	// state digest) covering every epoch passed to Send so far. It is
	// called from Send's goroutine, so computing it may quiesce the
	// mirror node safely (htap.Node.AntiEntropyDigest).
	Digest func() (seq uint64, ts int64, digest uint64)
}

// Fanout feeds N downstream replicas from one epoch stream. Each peer
// owns an independent ship.Sender — its own cursor, in-flight window and
// reconnect state — fed from a per-peer queue by a per-peer goroutine,
// so a slow or dead peer never blocks Send for its siblings. A peer
// whose sender gives up (dial budget exhausted, schema mismatch) is
// marked failed and skipped; the rest of the fan-out continues.
//
// Send may be called from one producer goroutine (the same contract as
// ship.Sender.Send); Stats, Heartbeat and Close are safe from any.
type Fanout struct {
	peers []*fanPeer

	// Digest cadence; sent is touched only from Send's goroutine.
	digestEvery int
	digestFn    func() (uint64, int64, uint64)
	sent        int
}

// fanItem is one queue entry: an epoch to ship, or (enc == nil) an
// anti-entropy digest marker the worker forwards best-effort.
type fanItem struct {
	enc    *epoch.Encoded
	seq    uint64
	ts     int64
	digest uint64
}

// fanPeer is one downstream link: sender, divergence queue, worker.
type fanPeer struct {
	id        string
	s         *ship.Sender
	max       int
	shed      bool // overflow sheds the backlog instead of failing the peer
	overflows *metrics.Counter

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []fanItem
	busy   bool // worker is inside s.Send for a dequeued epoch
	closed bool
	err    error

	// hbTS is the commit watermark through which this link's stream is
	// complete: everything at or below it was handed to s.Send. The
	// sender's heartbeat loop advertises it (only while its window is
	// empty), so relayed heartbeats stay behind shipped data.
	hbTS atomic.Int64

	done chan struct{}
}

// NewFanout builds the fan-out and starts its per-peer workers. No
// connections are made until the first Send (or each sender's own
// Connect); peer IDs must be unique and non-empty.
func NewFanout(cfg FanoutConfig) (*Fanout, error) {
	if len(cfg.Peers) == 0 {
		return nil, fmt.Errorf("cluster: FanoutConfig.Peers is empty")
	}
	reg := cfg.Registry
	if reg == nil {
		reg = metrics.Default
	}
	if cfg.DigestEvery > 0 && cfg.Digest == nil {
		return nil, fmt.Errorf("cluster: FanoutConfig.DigestEvery set without Digest")
	}
	seen := make(map[string]bool, len(cfg.Peers))
	f := &Fanout{digestEvery: cfg.DigestEvery, digestFn: cfg.Digest}
	for _, pc := range cfg.Peers {
		if pc.ID == "" {
			return nil, fmt.Errorf("cluster: fan-out peer with empty ID")
		}
		if seen[pc.ID] {
			return nil, fmt.Errorf("cluster: duplicate fan-out peer %q", pc.ID)
		}
		seen[pc.ID] = true
		p := &fanPeer{id: pc.ID, max: cfg.MaxQueue, done: make(chan struct{})}
		p.cond = sync.NewCond(&p.mu)
		p.overflows = reg.Counter(metrics.WithLabel("cluster_peer_overflow_total", "peer", pc.ID))
		sc := pc.Sender
		if sc.Metrics == nil {
			sc.Metrics = ship.NewPeerMetrics(reg, pc.ID)
		}
		if sc.HeartbeatTS == nil {
			sc.HeartbeatTS = p.hbTS.Load
		}
		if sc.Snapshot == nil {
			sc.Snapshot = cfg.Snapshot
		}
		p.shed = sc.Snapshot != nil
		s, err := ship.NewSender(sc)
		if err != nil {
			// Tear down the workers already started.
			for _, started := range f.peers {
				started.fail(fmt.Errorf("cluster: fan-out aborted"))
				<-started.done
			}
			return nil, fmt.Errorf("cluster: peer %q: %w", pc.ID, err)
		}
		p.s = s
		f.peers = append(f.peers, p)
		go p.run()
		go p.nurse()
	}
	return f, nil
}

// Send enqueues one epoch to every live peer and returns immediately;
// each peer's worker drains its queue through its sender (which blocks
// on that link's window — per-link backpressure, invisible to siblings).
// It fails only when every peer is already down.
func (f *Fanout) Send(enc *epoch.Encoded) error {
	live := 0
	for _, p := range f.peers {
		if p.enqueue(fanItem{enc: enc}) {
			live++
		}
	}
	if live == 0 {
		return fmt.Errorf("%w: %s", ErrAllPeersDown, f.errSummary())
	}
	f.sent++
	if f.digestEvery > 0 && f.sent%f.digestEvery == 0 {
		// The digest covers everything sent so far; each worker forwards
		// it once its link has handed off the epochs it guards.
		seq, ts, dg := f.digestFn()
		for _, p := range f.peers {
			p.enqueue(fanItem{seq: seq, ts: ts, digest: dg})
		}
	}
	return nil
}

// Heartbeat advances the fan-out's idle-stream watermark: each peer
// whose queue is fully handed off advertises ts through its sender's
// heartbeat loop. Peers still draining keep their own handed-off
// watermark — a heartbeat must never run ahead of unshipped epochs.
// Upstream guarantees the stream is complete through ts (the
// ship.SenderConfig.HeartbeatTS contract), which makes this safe to
// forward at relays.
func (f *Fanout) Heartbeat(ts int64) {
	for _, p := range f.peers {
		p.mu.Lock()
		if !p.closed && p.err == nil && len(p.queue) == 0 && !p.busy {
			if ts > p.hbTS.Load() {
				p.hbTS.Store(ts)
			}
		}
		p.mu.Unlock()
	}
}

// PeerStats is one link's progress snapshot.
type PeerStats struct {
	ID string
	ship.SenderStats
	// Queued is the divergence buffer depth: epochs accepted by Send but
	// not yet handed to this peer's sender.
	Queued int
	// Err is the peer's terminal error, nil while live.
	Err error
}

// Stats snapshots every peer in configuration order.
func (f *Fanout) Stats() []PeerStats {
	out := make([]PeerStats, 0, len(f.peers))
	for _, p := range f.peers {
		p.mu.Lock()
		st := PeerStats{ID: p.id, Queued: len(p.queue), Err: p.err}
		p.mu.Unlock()
		st.SenderStats = p.s.Stats()
		out = append(out, st)
	}
	return out
}

// Live returns the number of peers still accepting epochs.
func (f *Fanout) Live() int {
	n := 0
	for _, p := range f.peers {
		p.mu.Lock()
		if p.err == nil && !p.closed {
			n++
		}
		p.mu.Unlock()
	}
	return n
}

// Close drains every live peer's queue and window (reconnecting if
// needed), sends each link's clean end-of-stream and tears it down. It
// returns the errors of peers that failed, joined; a fan-out that
// delivered everywhere returns nil.
func (f *Fanout) Close() error {
	var errs []error
	for _, p := range f.peers {
		p.mu.Lock()
		p.closed = true
		p.cond.Broadcast()
		p.mu.Unlock()
	}
	for _, p := range f.peers {
		<-p.done
		p.mu.Lock()
		err := p.err
		p.mu.Unlock()
		if err != nil {
			errs = append(errs, fmt.Errorf("peer %q: %w", p.id, err))
		}
	}
	return errors.Join(errs...)
}

// SyncLinkErrs publishes every peer's terminal link error — or its
// absence — into the membership under the matching replica ID. Routing
// keeps serving a replica whose feed died (its state is still valid,
// just frozen), but operators see "replica up, feed dead" in Status
// and /varz instead of silent staleness. Peers without a membership
// entry are skipped.
func (f *Fanout) SyncLinkErrs(m *Membership) {
	for _, p := range f.peers {
		p.mu.Lock()
		err := p.err
		p.mu.Unlock()
		m.SetLinkErr(p.id, err)
	}
}

// errSummary renders the terminal errors for ErrAllPeersDown.
func (f *Fanout) errSummary() string {
	s := ""
	for _, p := range f.peers {
		p.mu.Lock()
		if p.err != nil {
			if s != "" {
				s += "; "
			}
			s += fmt.Sprintf("%s: %v", p.id, p.err)
		}
		p.mu.Unlock()
	}
	return s
}

// enqueue appends one item to the peer's queue; false means the peer is
// no longer accepting (failed or closed).
func (p *fanPeer) enqueue(it fanItem) bool {
	p.mu.Lock()
	if p.err != nil || p.closed {
		p.mu.Unlock()
		return false
	}
	if p.max > 0 && len(p.queue) >= p.max {
		if !p.shed {
			p.err = fmt.Errorf("%w: %d epochs behind", ErrPeerOverflow, len(p.queue))
			p.queue = nil
			p.cond.Broadcast()
			p.mu.Unlock()
			// Abort the sender so a worker parked in a reconnect backoff
			// returns now instead of burning the whole dial budget (the
			// window is empty — nothing shippable is lost).
			_ = p.s.Close()
			return false
		}
		// Snapshot-recoverable overflow: shed the backlog and keep the
		// peer. The sender sees the resulting sequence gap — at the next
		// hand-off, or against the replica's cursor on reconnect — and
		// re-bases the replica with a full snapshot instead of the
		// dropped epochs. No operator action; the peer never leaves the
		// fan-out.
		p.queue = p.queue[:0]
		p.overflows.Inc()
	}
	p.queue = append(p.queue, it)
	p.cond.Broadcast()
	p.mu.Unlock()
	return true
}

// fail marks the peer terminally failed, wakes its worker and aborts
// its sender (releasing a worker stuck mid-reconnect).
func (p *fanPeer) fail(err error) {
	p.mu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.queue = nil
	p.cond.Broadcast()
	p.mu.Unlock()
	if p.s != nil {
		_ = p.s.Close()
	}
}

// nurse re-drives a link whose connection died with epochs still in
// flight. ship.Sender only reconnects from inside Send and Close, so a
// worker that has handed its whole queue to the sender parks on the
// queue condvar — if the replica crashes at that moment, the unacked
// tail would sit in the sender's window until the next Send arrives
// (possibly never, on an idle stream). The nurse probes for exactly
// that state and redials, so the tail retransmits as soon as the
// replica returns and catch-up does not have to wait for new traffic.
func (p *fanPeer) nurse() {
	t := time.NewTicker(10 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-p.done:
			return
		case <-t.C:
		}
		p.mu.Lock()
		idle := !p.busy && !p.closed && p.err == nil
		p.mu.Unlock()
		if !idle {
			continue // Send or Close is driving reconnection already
		}
		if st := p.s.Stats(); st.Connected || (st.Inflight == 0 && !st.SnapWait) {
			continue
		}
		if err := p.s.Connect(); err != nil && !errors.Is(err, ship.ErrClosed) {
			// Same terminal semantics as a failed Send: the dial budget
			// (or a permanent handshake error) drops the peer.
			p.fail(err)
			return
		}
	}
}

// run is the peer worker: hand queued epochs to the sender one at a
// time, then close the sender cleanly when the fan-out closes.
func (p *fanPeer) run() {
	defer close(p.done)
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.closed && p.err == nil {
			p.cond.Wait()
		}
		if p.err != nil {
			p.mu.Unlock()
			_ = p.s.Close()
			return
		}
		if len(p.queue) == 0 && p.closed {
			p.mu.Unlock()
			// Clean shutdown: drain the window, send EOS.
			if err := p.s.Close(); err != nil {
				p.fail(err)
			}
			return
		}
		it := p.queue[0]
		p.queue = p.queue[1:]
		p.busy = true
		p.mu.Unlock()

		if it.enc == nil {
			// Anti-entropy marker: forward best-effort. SendDigest only
			// writes when the link is caught up and aligned at it.seq;
			// a skipped digest is not an error — the next one guards.
			_ = p.s.SendDigest(it.seq, it.ts, it.digest)
			p.mu.Lock()
			p.busy = false
			p.mu.Unlock()
			continue
		}
		err := p.s.Send(it.enc)

		p.mu.Lock()
		p.busy = false
		if err != nil {
			if p.err == nil {
				p.err = err
			}
			p.queue = nil
			p.mu.Unlock()
			_ = p.s.Close()
			return
		}
		// The epoch is handed off: the link's stream is complete through
		// its commit timestamp, so heartbeats may advertise it.
		if it.enc.LastCommitTS > p.hbTS.Load() {
			p.hbTS.Store(it.enc.LastCommitTS)
		}
		p.mu.Unlock()
	}
}
