package cluster

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"aets/internal/query"
	"aets/internal/wal"
)

// ErrNoReplicas is returned by Admit when no live replica exists.
var ErrNoReplicas = errors.New("cluster: no live replicas")

// RouterConfig configures a Router.
type RouterConfig struct {
	// Members is the replica roster. Required.
	Members *Membership
	// Metrics receives the routing counters; nil registers the default
	// names in metrics.Default.
	Metrics *Metrics
	// MaxFailovers bounds mid-admission re-picks after the chosen
	// replica dies; the admission fails once exceeded. Default 8.
	MaxFailovers int
}

// Router implements freshness-aware query admission over a Membership.
//
// The decision rule (per query, given snapshot timestamp qts and table
// set):
//
//  1. qts ≤ 0 ("freshest currently visible") never blocks anywhere:
//     route to the least-loaded live replica and pin the snapshot to its
//     current visible watermark.
//  2. Otherwise prefer a zero-block read: among live replicas whose
//     visible watermark already covers qts, pick the least loaded
//     (cluster_route_hits).
//  3. Only when no live replica satisfies qts, wait on the freshest live
//     replica — the one that will satisfy it soonest
//     (cluster_route_waits). A replica dying mid-wait fails over to a
//     re-pick (cluster_route_failovers) under the MaxFailovers budget.
//
// Load ties rotate round-robin across the tied replicas, so an idle or
// lightly loaded fleet still spreads reads instead of herding every
// query onto one replica; watermark ties (the wait path) break toward
// the smallest replica ID.
//
// Router also satisfies query.Visibility, so code written against a
// single node's Algorithm 3 admission can run unchanged against a
// cluster; prefer Admit/Query, which name the replica and account load.
type Router struct {
	cfg RouterConfig
	m   *Metrics
	rr  atomic.Uint64
}

var _ query.Visibility = (*Router)(nil)

// NewRouter returns a Router over the given roster.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if cfg.Members == nil {
		return nil, fmt.Errorf("cluster: RouterConfig.Members is required")
	}
	if cfg.Metrics == nil {
		cfg.Metrics = NewMetrics(nil)
	}
	if cfg.MaxFailovers <= 0 {
		cfg.MaxFailovers = 8
	}
	return &Router{cfg: cfg, m: cfg.Metrics}, nil
}

// Admission is one granted routing decision: the chosen replica, the
// pinned snapshot timestamp, and how the decision was reached. The
// caller owns it until Done, which releases the replica's load slot.
type Admission struct {
	// Replica is the chosen target; its visible watermark covered TS at
	// admission time (and watermarks are monotone, so it still does).
	Replica Replica
	// TS is the pinned snapshot timestamp: the query's qts, or the
	// chosen replica's visible watermark when the query asked for
	// "freshest" (qts ≤ 0).
	TS int64
	// Waited reports a blocked admission (the RouteWaits path).
	Waited bool
	// Failovers counts replicas abandoned mid-admission before this one.
	Failovers int

	mem  *member
	done atomic.Bool
}

// Done releases the admission's load slot. Idempotent.
func (a *Admission) Done() {
	if a.mem != nil && a.done.CompareAndSwap(false, true) {
		a.mem.load.Add(-1)
	}
}

// Admit routes one query: it picks a replica per the routing rule,
// blocks only when no live replica already satisfies qts, and returns an
// Admission whose replica's visible watermark is at least the pinned TS
// — never a replica below the query's snapshot. The caller must call
// Done when the query finishes so load balancing sees true in-flight
// counts.
func (r *Router) Admit(qts int64, tables ...wal.TableID) (*Admission, error) {
	failovers := 0
	for {
		cands := r.cfg.Members.alive()
		if len(cands) == 0 {
			r.m.RouteErrors.Inc()
			return nil, ErrNoReplicas
		}

		if qts <= 0 {
			// Freshest-visible read: any live replica serves it without
			// blocking at whatever watermark it has; spread by load.
			m := r.leastLoaded(cands)
			m.load.Add(1)
			r.m.RouteHits.Inc()
			return &Admission{Replica: m.r, TS: m.r.VisibleTS(), Failovers: failovers, mem: m}, nil
		}

		// Zero-block path: a replica already covering qts.
		var satisfied []*member
		for _, m := range cands {
			if m.r.VisibleTS() >= qts {
				satisfied = append(satisfied, m)
			}
		}
		if len(satisfied) > 0 {
			m := r.leastLoaded(satisfied)
			m.load.Add(1)
			r.m.RouteHits.Inc()
			return &Admission{Replica: m.r, TS: qts, Failovers: failovers, mem: m}, nil
		}

		// Wait path: the freshest live replica reaches qts soonest.
		m := freshest(cands)
		m.load.Add(1)
		r.m.RouteWaits.Inc()
		t0 := time.Now()
		ok := m.r.WaitVisible(qts, tables)
		r.m.AdmitWait.Observe(time.Since(t0))
		if ok && m.alive() {
			return &Admission{Replica: m.r, TS: qts, Waited: true, Failovers: failovers, mem: m}, nil
		}
		// The replica died (or was marked down) mid-wait: fail over.
		m.load.Add(-1)
		r.m.RouteFailovers.Inc()
		failovers++
		if failovers > r.cfg.MaxFailovers {
			r.m.RouteErrors.Inc()
			return nil, fmt.Errorf("cluster: admission failed after %d failovers (qts %d)", failovers, qts)
		}
	}
}

// Query admits and begins a snapshot read in one step. The chosen
// replica must implement Snapshotter (real nodes do; simulator replicas
// do not). The returned Admission is already load-accounted; call Done
// when the snapshot is no longer in use.
func (r *Router) Query(qts int64, tables ...wal.TableID) (*query.Snapshot, *Admission, error) {
	adm, err := r.Admit(qts, tables...)
	if err != nil {
		return nil, nil, err
	}
	sn, ok := adm.Replica.(Snapshotter)
	if !ok {
		adm.Done()
		return nil, nil, fmt.Errorf("cluster: replica %q cannot serve snapshots", adm.Replica.ID())
	}
	// The watermark already covers adm.TS, so Begin's own Algorithm 3
	// wait is a no-op: this is the zero-block read the routing promised.
	return sn.Query(adm.TS, tables...), adm, nil
}

// GlobalTS implements query.Visibility: the cluster-wide freshest
// visible watermark (the maximum over live replicas; 0 when none).
func (r *Router) GlobalTS() int64 {
	var max int64
	for _, m := range r.cfg.Members.alive() {
		if ts := m.r.VisibleTS(); ts > max {
			max = ts
		}
	}
	return max
}

// WaitVisible implements query.Visibility: block until some live replica
// makes qts visible for the tables. It admits and immediately releases;
// callers that need the replica (to actually read) should use Admit.
func (r *Router) WaitVisible(qts int64, tables []wal.TableID) {
	for {
		adm, err := r.Admit(qts, tables...)
		if err == nil {
			adm.Done()
			return
		}
		// No live replicas right now: a Visibility wait has no error
		// channel, so hold on until membership recovers.
		time.Sleep(time.Millisecond)
	}
}

// leastLoaded picks the member with the smallest in-flight load. Ties
// rotate round-robin (r.rr) so equal-load replicas — the common case on
// an idle fleet, where every load is zero — share the traffic instead
// of the smallest ID absorbing all of it.
func (r *Router) leastLoaded(cands []*member) *member {
	ties := make([]*member, 0, len(cands))
	var bestLoad int64
	for i, m := range cands {
		l := m.load.Load()
		switch {
		case i == 0 || l < bestLoad:
			bestLoad = l
			ties = append(ties[:0], m)
		case l == bestLoad:
			ties = append(ties, m)
		}
	}
	if len(ties) == 1 {
		return ties[0]
	}
	return ties[int(r.rr.Add(1)%uint64(len(ties)))]
}

// freshest picks the member with the highest visible watermark; ties go
// to the smallest ID.
func freshest(cands []*member) *member {
	best := cands[0]
	bestTS := best.r.VisibleTS()
	for _, m := range cands[1:] {
		if ts := m.r.VisibleTS(); ts > bestTS {
			best, bestTS = m, ts
		}
	}
	return best
}
