// Fan-out snapshot catch-up tests: a bounded divergence buffer with a
// snapshot source sheds instead of dropping the peer, the shed replica
// rejoins via a wire snapshot with zero operator action, and link
// errors surface through membership.
package cluster_test

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"aets/internal/cluster"
	"aets/internal/htap"
	"aets/internal/metrics"
	"aets/internal/ship"
)

// hostReceiver is a fanReceiver over a htap.NodeHost: the host is a
// ship.SnapshotApplier and DigestApplier, so its receiver negotiates
// CapSnapshot — the shape a rejoin-capable replica runs in production.
type hostReceiver struct {
	host *htap.NodeHost
	addr string
	done chan struct{}
	errs []error
	mu   sync.Mutex
}

func startHostReceiver(t *testing.T, reg *metrics.Registry, peer string) *hostReceiver {
	t.Helper()
	host, err := htap.NewNodeHost(htap.KindAETS, fanPlan(), htap.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { host.Close() })
	rcv, err := host.ShipReceiver(ship.ReceiverConfig{
		Schema:  fanSchema(),
		Drain:   func() error { n := host.Node(); n.Drain(); return n.Err() },
		Metrics: ship.NewPeerMetrics(reg, peer),
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hr := &hostReceiver{host: host, addr: ln.Addr().String(), done: make(chan struct{})}
	go func() {
		defer close(hr.done)
		defer ln.Close()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			finished, err := rcv.Serve(conn)
			if err != nil {
				hr.mu.Lock()
				hr.errs = append(hr.errs, err)
				hr.mu.Unlock()
			}
			if finished {
				return
			}
		}
	}()
	return hr
}

func (hr *hostReceiver) wait(t *testing.T) {
	t.Helper()
	select {
	case <-hr.done:
	case <-time.After(60 * time.Second):
		hr.mu.Lock()
		errs := hr.errs
		hr.mu.Unlock()
		t.Fatalf("receiver did not finish (serve errors: %v)", errs)
	}
}

// TestFanoutShedOverflowRejoinsViaSnapshot: one peer is unreachable
// while the stream ships, its bounded queue sheds (counted, not
// terminal), and once it returns the sender re-bases it with a snapshot
// cut from the mirror — both replicas end reference-equal and no peer
// ever reports a terminal error.
func TestFanoutShedOverflowRejoinsViaSnapshot(t *testing.T) {
	encs := fanEncoded(2048, 64)
	want := fanDirect(t, encs)
	reg := metrics.NewRegistry()

	mirror := fanNode(t)
	defer mirror.Close()

	healthy := startHostReceiver(t, reg, "healthy")
	held := startHostReceiver(t, reg, "held")
	var up atomic.Bool
	heldDial := func() (net.Conn, error) {
		if !up.Load() {
			return nil, errors.New("held replica unreachable")
		}
		return net.Dial("tcp", held.addr)
	}

	f, err := cluster.NewFanout(cluster.FanoutConfig{
		Registry:    reg,
		MaxQueue:    8,
		Snapshot:    &htap.NodeSnapshotSource{N: mirror},
		DigestEvery: 64,
		Digest:      mirror.AntiEntropyDigest,
		Peers: []cluster.Peer{
			{ID: "healthy", Sender: ship.SenderConfig{
				Dial: fanDialer(healthy.addr), Schema: fanSchema(), Window: 8}},
			{ID: "held", Sender: ship.SenderConfig{
				Dial: heldDial, Schema: fanSchema(), Window: 8,
				MaxAttempts: 1 << 30, RetryBase: time.Millisecond, RetryMax: 5 * time.Millisecond}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range encs {
		// The mirror applies before the fan-out ships, upholding the
		// snapshot source contract.
		if err := mirror.Feed(&encs[i]); err != nil {
			t.Fatal(err)
		}
		if err := f.Send(&encs[i]); err != nil {
			t.Fatalf("send epoch %d: %v", i, err)
		}
	}

	ovf := reg.Counter(metrics.WithLabel("cluster_peer_overflow_total", "peer", "held"))
	if ovf.Load() < 1 {
		t.Fatalf("cluster_peer_overflow_total{held} = %d, want >= 1", ovf.Load())
	}
	if got := f.Live(); got != 2 {
		t.Fatalf("live peers = %d, want 2 (shed overflow must not drop the peer)", got)
	}

	// The replica returns; Close drains the tail, and the sender bridges
	// the shed gap with a snapshot.
	up.Store(true)
	if err := f.Close(); err != nil {
		t.Fatalf("fan-out close: %v", err)
	}
	healthy.wait(t)
	held.wait(t)

	restored := reg.Counter(metrics.WithLabel("cluster_snapshot_restored_total", "peer", "held"))
	if restored.Load() < 1 {
		t.Fatalf("cluster_snapshot_restored_total{held} = %d, want >= 1", restored.Load())
	}
	for _, st := range f.Stats() {
		if st.Err != nil {
			t.Fatalf("peer %s terminal error: %v", st.ID, st.Err)
		}
	}
	fanAssertSame(t, healthy.host.Node(), want, "healthy peer")
	fanAssertSame(t, held.host.Node(), want, "held peer")

	// Anti-entropy ran over healthy replicas: none of the digests that
	// did land positionally may have mismatched.
	for _, peer := range []string{"healthy", "held"} {
		mm := reg.Counter(metrics.WithLabel("cluster_digest_mismatch_total", "peer", peer))
		if mm.Load() != 0 {
			t.Fatalf("cluster_digest_mismatch_total{%s} = %d on an uncorrupted replica", peer, mm.Load())
		}
	}
}

// TestFanoutAntiEntropyDigests: on a keeping-up link (unbounded queue),
// the digest cadence actually ships and verifies — the positional
// preconditions hold every DigestEvery epochs, and an uncorrupted
// replica never mismatches.
func TestFanoutAntiEntropyDigests(t *testing.T) {
	encs := fanEncoded(512, 64)
	want := fanDirect(t, encs)
	reg := metrics.NewRegistry()

	mirror := fanNode(t)
	defer mirror.Close()
	peer := startHostReceiver(t, reg, "r0")

	f, err := cluster.NewFanout(cluster.FanoutConfig{
		Registry:    reg,
		Snapshot:    &htap.NodeSnapshotSource{N: mirror},
		DigestEvery: 4,
		Digest:      mirror.AntiEntropyDigest,
		Peers: []cluster.Peer{{ID: "r0", Sender: ship.SenderConfig{
			Dial: fanDialer(peer.addr), Schema: fanSchema(), Window: 8}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range encs {
		if err := mirror.Feed(&encs[i]); err != nil {
			t.Fatal(err)
		}
		if err := f.Send(&encs[i]); err != nil {
			t.Fatalf("send epoch %d: %v", i, err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	peer.wait(t)

	sent := reg.Counter(metrics.WithLabel("ship_digests_sent_total", "peer", "r0"))
	if sent.Load() < 1 {
		t.Fatalf("ship_digests_sent_total = %d, want >= 1", sent.Load())
	}
	verified := reg.Counter(metrics.WithLabel("ship_digests_verified_total", "peer", "r0"))
	if verified.Load() < 1 {
		t.Fatalf("ship_digests_verified_total = %d, want >= 1", verified.Load())
	}
	if mm := reg.Counter(metrics.WithLabel("cluster_digest_mismatch_total", "peer", "r0")); mm.Load() != 0 {
		t.Fatalf("cluster_digest_mismatch_total = %d on an uncorrupted replica", mm.Load())
	}
	fanAssertSame(t, peer.host.Node(), want, "replica")
}

// TestMembershipLinkErr: SetLinkErr surfaces in Status and clears with
// nil; unknown IDs are rejected.
func TestMembershipLinkErr(t *testing.T) {
	members := cluster.NewMembership(cluster.NewMetrics(metrics.NewRegistry()))
	n := fanNode(t)
	defer n.Close()
	if err := members.Add(cluster.NewNodeReplica("r0", n)); err != nil {
		t.Fatal(err)
	}

	if !members.SetLinkErr("r0", errors.New("dial budget exhausted")) {
		t.Fatal("SetLinkErr rejected a known replica")
	}
	if members.SetLinkErr("ghost", errors.New("x")) {
		t.Fatal("SetLinkErr accepted an unknown replica")
	}
	st := members.Snapshot()
	if len(st) != 1 || st[0].LinkErr != "dial budget exhausted" {
		t.Fatalf("status %+v, want LinkErr surfaced", st)
	}
	if !members.SetLinkErr("r0", nil) {
		t.Fatal("clearing SetLinkErr rejected")
	}
	if st := members.Snapshot(); st[0].LinkErr != "" {
		t.Fatalf("LinkErr %q after clear, want empty", st[0].LinkErr)
	}
}

// TestFanoutSyncLinkErrs: a peer that dies terminally (bounded queue,
// no snapshot source) is published into membership by SyncLinkErrs.
func TestFanoutSyncLinkErrs(t *testing.T) {
	members := cluster.NewMembership(cluster.NewMetrics(metrics.NewRegistry()))
	n := fanNode(t)
	defer n.Close()
	if err := members.Add(cluster.NewNodeReplica("stuck", n)); err != nil {
		t.Fatal(err)
	}

	encs := fanEncoded(512, 64)
	stuck := func() (net.Conn, error) { return nil, errors.New("no route") }
	f, err := cluster.NewFanout(cluster.FanoutConfig{
		Registry: metrics.NewRegistry(),
		MaxQueue: 2,
		Peers: []cluster.Peer{{ID: "stuck", Sender: ship.SenderConfig{
			Dial: stuck, Schema: fanSchema(),
			MaxAttempts: 1000, RetryBase: 50 * time.Millisecond, RetryMax: 50 * time.Millisecond}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range encs {
		if err := f.Send(&encs[i]); err != nil {
			break
		}
	}
	f.SyncLinkErrs(members)
	st := members.Snapshot()
	if len(st) != 1 || st[0].LinkErr == "" {
		t.Fatalf("status %+v, want the overflow surfaced as LinkErr", st)
	}
	_ = f.Close()

	// A recovered link clears the surfaced error on the next sync.
	// (Simulate by syncing a fresh fan-out whose peer is live-less but
	// unfailed: err == nil publishes the clear.)
	f2, err := cluster.NewFanout(cluster.FanoutConfig{
		Registry: metrics.NewRegistry(),
		Peers: []cluster.Peer{{ID: "stuck", Sender: ship.SenderConfig{
			Dial: stuck, Schema: fanSchema(), MaxAttempts: 1}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	f2.SyncLinkErrs(members)
	if st := members.Snapshot(); st[0].LinkErr != "" {
		t.Fatalf("LinkErr %q after clean sync, want empty", st[0].LinkErr)
	}
	_ = f2.Close()
}
