package cluster

import (
	"errors"
	"sync"
	"testing"
	"time"

	"aets/internal/epoch"
	"aets/internal/grouping"
	"aets/internal/htap"
	"aets/internal/metrics"
	"aets/internal/wal"
)

// testRouter builds a router over n sim replicas with fresh metrics.
func testRouter(t *testing.T, n int) (*Router, []*SimReplica, *Metrics) {
	t.Helper()
	m := NewMetrics(metrics.NewRegistry())
	members := NewMembership(m)
	reps := make([]*SimReplica, n)
	for i := range reps {
		reps[i] = NewSimReplica(string(rune('a' + i)))
		if err := members.Add(reps[i]); err != nil {
			t.Fatal(err)
		}
	}
	r, err := NewRouter(RouterConfig{Members: members, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	return r, reps, m
}

func TestAdmitZeroBlockPicksSatisfiedLeastLoaded(t *testing.T) {
	r, reps, m := testRouter(t, 3)
	reps[0].AdvanceTo(100)
	reps[1].AdvanceTo(200)
	reps[2].AdvanceTo(50)

	// Only a and b satisfy qts=80; c (watermark 50) must never serve it.
	adm, err := r.Admit(80, 1)
	if err != nil {
		t.Fatal(err)
	}
	if id := adm.Replica.ID(); id == "c" || adm.Waited || adm.TS != 80 {
		t.Fatalf("admission %+v on %s, want zero-block hit on a or b at ts 80", adm, id)
	}
	// The first pick now carries load 1: the next query must spread to
	// the other satisfied replica.
	adm2, err := r.Admit(80, 1)
	if err != nil {
		t.Fatal(err)
	}
	if id := adm2.Replica.ID(); id == "c" || id == adm.Replica.ID() {
		t.Fatalf("second admission went to %s (first took %s), want the other satisfied replica", id, adm.Replica.ID())
	}
	adm.Done()
	adm2.Done()
	if got := m.RouteHits.Load(); got != 2 {
		t.Fatalf("hits %d, want 2", got)
	}
	if got := m.RouteWaits.Load(); got != 0 {
		t.Fatalf("waits %d, want 0", got)
	}
	// Done released the load slots: both satisfied replicas are candidates
	// again, and c is still excluded.
	adm3, _ := r.Admit(80, 1)
	if adm3.Replica.ID() == "c" {
		t.Fatal("post-release admission went to c, whose watermark is below qts")
	}
	adm3.Done()
}

func TestAdmitFreshestRead(t *testing.T) {
	r, reps, m := testRouter(t, 2)
	reps[0].AdvanceTo(10)
	reps[1].AdvanceTo(500)

	// qts ≤ 0 never blocks: least-loaded live replica, snapshot pinned to
	// its current watermark.
	adm, err := r.Admit(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer adm.Done()
	if adm.Waited {
		t.Fatal("freshest read must not wait")
	}
	if adm.TS != adm.Replica.VisibleTS() && adm.TS > adm.Replica.VisibleTS() {
		t.Fatalf("pinned ts %d ahead of replica watermark %d", adm.TS, adm.Replica.VisibleTS())
	}
	if m.RouteHits.Load() != 1 {
		t.Fatalf("hits %d, want 1", m.RouteHits.Load())
	}
}

func TestAdmitWaitsOnFreshestWhenNoneSatisfies(t *testing.T) {
	r, reps, m := testRouter(t, 3)
	reps[0].AdvanceTo(10)
	reps[1].AdvanceTo(40) // freshest: the wait lands here
	reps[2].AdvanceTo(20)

	done := make(chan *Admission, 1)
	go func() {
		adm, err := r.Admit(100, 1)
		if err != nil {
			t.Error(err)
			close(done)
			return
		}
		done <- adm
	}()
	// The admission must be parked, not failed.
	select {
	case <-done:
		t.Fatal("admission returned before the watermark covered qts")
	case <-time.After(20 * time.Millisecond):
	}
	reps[1].AdvanceTo(100)
	select {
	case adm := <-done:
		if adm == nil {
			t.Fatal("admission failed")
		}
		if adm.Replica.ID() != "b" || !adm.Waited {
			t.Fatalf("admission %+v, want wait on b", adm)
		}
		if adm.Replica.VisibleTS() < adm.TS {
			t.Fatalf("invariant broken: watermark %d < ts %d", adm.Replica.VisibleTS(), adm.TS)
		}
		adm.Done()
	case <-time.After(5 * time.Second):
		t.Fatal("admission never woke after the advance")
	}
	if m.RouteWaits.Load() != 1 || m.RouteHits.Load() != 0 {
		t.Fatalf("waits=%d hits=%d, want 1/0", m.RouteWaits.Load(), m.RouteHits.Load())
	}
}

func TestAdmitFailsOverWhenWaitTargetDies(t *testing.T) {
	r, reps, m := testRouter(t, 2)
	reps[0].AdvanceTo(50) // freshest: first wait target
	reps[1].AdvanceTo(10)

	done := make(chan *Admission, 1)
	go func() {
		adm, err := r.Admit(100, 1)
		if err != nil {
			t.Error(err)
			close(done)
			return
		}
		done <- adm
	}()
	time.Sleep(10 * time.Millisecond)
	// Kill the wait target: the admission must fail over to b and park
	// there, then admit when b advances.
	reps[0].SetHealthy(false)
	time.Sleep(10 * time.Millisecond)
	reps[1].AdvanceTo(100)
	select {
	case adm := <-done:
		if adm == nil {
			t.Fatal("admission failed")
		}
		if adm.Replica.ID() != "b" || adm.Failovers == 0 {
			t.Fatalf("admission %+v, want failover to b", adm)
		}
		adm.Done()
	case <-time.After(5 * time.Second):
		t.Fatal("admission hung on a dead replica")
	}
	if m.RouteFailovers.Load() == 0 {
		t.Fatal("failover not counted")
	}
}

func TestAdmitNoReplicas(t *testing.T) {
	r, reps, m := testRouter(t, 1)
	reps[0].SetHealthy(false)
	if _, err := r.Admit(10, 1); !errors.Is(err, ErrNoReplicas) {
		t.Fatalf("err %v, want ErrNoReplicas", err)
	}
	if m.RouteErrors.Load() != 1 {
		t.Fatalf("errors %d, want 1", m.RouteErrors.Load())
	}
}

func TestMembershipSetDownSkipsRouting(t *testing.T) {
	r, reps, _ := testRouter(t, 2)
	reps[0].AdvanceTo(100)
	reps[1].AdvanceTo(100)
	if !r.cfg.Members.SetDown("a", true) {
		t.Fatal("SetDown(a) did not find the member")
	}
	for i := 0; i < 4; i++ {
		adm, err := r.Admit(50, 1)
		if err != nil {
			t.Fatal(err)
		}
		if adm.Replica.ID() == "a" {
			t.Fatal("routed to a down replica")
		}
		adm.Done()
	}
	r.cfg.Members.SetDown("a", false)
	snap := r.cfg.Members.Snapshot()
	if len(snap) != 2 || snap[0].ID != "a" || snap[0].Down {
		t.Fatalf("snapshot %+v, want a back up", snap)
	}
}

func TestMembershipSnapshotLag(t *testing.T) {
	m := NewMetrics(metrics.NewRegistry())
	members := NewMembership(m)
	rep := NewSimReplica("r")
	if err := members.Add(rep); err != nil {
		t.Fatal(err)
	}
	if err := members.Add(rep); err == nil {
		t.Fatal("duplicate Add must fail")
	}
	rep.SetPrimaryTS(100)
	rep.AdvanceTo(60)
	snap := members.Snapshot()
	if len(snap) != 1 || snap[0].ReplayLag != 40 {
		t.Fatalf("snapshot %+v, want lag 40", snap)
	}
	if m.ReplicasLive.Load() != 1 {
		t.Fatalf("live gauge %v, want 1", m.ReplicasLive.Load())
	}
	if !members.Remove("r") || members.Size() != 0 {
		t.Fatal("Remove failed")
	}
}

// TestRouterQueryEndToEnd routes real snapshot reads over two live
// htap.Nodes at different replay points and checks the rows come from a
// replica that satisfies the snapshot.
func TestRouterQueryEndToEnd(t *testing.T) {
	mk := func(id uint64, ts int64, key uint64, val byte) wal.Txn {
		return wal.Txn{ID: id, CommitTS: ts, Entries: []wal.Entry{{
			Type: wal.TypeUpdate, TxnID: id, Timestamp: ts, Table: 1, RowKey: key,
			Columns: []wal.Column{{ID: 1, Value: []byte{val}}},
		}}}
	}
	txns := []wal.Txn{mk(1, 10, 1, 'x'), mk(2, 20, 2, 'y'), mk(3, 30, 1, 'z')}
	encs := epoch.EncodeAll(epoch.MustSplit(txns, 1))

	newNode := func(upTo int) *htap.Node {
		n, err := htap.NewNode(htap.KindAETS, grouping.SingleGroup([]wal.TableID{1}),
			htap.Options{Workers: 2, Metrics: metrics.NewRegistry()})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { n.Close() })
		for i := 0; i < upTo; i++ {
			enc := encs[i]
			if err := n.Feed(&enc); err != nil {
				t.Fatal(err)
			}
		}
		n.Drain()
		return n
	}
	// fresh has the whole history, stale only the first epoch.
	fresh := newNode(len(encs))
	stale := newNode(1)

	m := NewMetrics(metrics.NewRegistry())
	members := NewMembership(m)
	if err := members.Add(NewNodeReplica("fresh", fresh)); err != nil {
		t.Fatal(err)
	}
	if err := members.Add(NewNodeReplica("stale", stale)); err != nil {
		t.Fatal(err)
	}
	r, err := NewRouter(RouterConfig{Members: members, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}

	// qts=30 is only visible on fresh: the router must not pick stale.
	s, adm, err := r.Query(30, 1)
	if err != nil {
		t.Fatal(err)
	}
	if adm.Replica.ID() != "fresh" {
		t.Fatalf("routed to %s, want fresh", adm.Replica.ID())
	}
	row, ok, err := s.Get(1, 1)
	if err != nil || !ok || row.Columns[1][0] != 'z' {
		t.Fatalf("row %+v ok=%v err=%v, want z", row, ok, err)
	}
	adm.Done()

	// qts=10 is visible on both: load spreading may pick either, but the
	// snapshot must read the ts-10 version wherever it lands.
	s2, adm2, err := r.Query(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	row, ok, err = s2.Get(1, 1)
	if err != nil || !ok || row.Columns[1][0] != 'x' {
		t.Fatalf("row %+v ok=%v err=%v, want x at ts 10", row, ok, err)
	}
	adm2.Done()
	if m.RouteHits.Load() != 2 || m.RouteWaits.Load() != 0 {
		t.Fatalf("hits=%d waits=%d, want 2/0", m.RouteHits.Load(), m.RouteWaits.Load())
	}
	// SimReplicas cannot serve snapshots: Query must reject, not panic.
	// The sim is advanced past both real nodes, so a qts only it
	// satisfies routes there regardless of the load-tie rotation.
	if err := members.Add(NewSimReplica("0sim")); err != nil {
		t.Fatal(err)
	}
	sim, _ := members.Get("0sim")
	sim.(*SimReplica).AdvanceTo(1000)
	if _, _, err := r.Query(500, 1); err == nil {
		t.Fatal("Query on a non-Snapshotter replica must fail")
	}
}

// TestRouterVisibilityInterface drives the Router through the
// query.Visibility surface it promises to be compatible with.
func TestRouterVisibilityInterface(t *testing.T) {
	r, reps, _ := testRouter(t, 2)
	reps[0].AdvanceTo(70)
	reps[1].AdvanceTo(30)
	if got := r.GlobalTS(); got != 70 {
		t.Fatalf("GlobalTS %d, want 70 (max over live replicas)", got)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		r.WaitVisible(90, []wal.TableID{1})
	}()
	reps[1].AdvanceTo(95)
	wg.Wait()
	if got := r.GlobalTS(); got < 90 {
		t.Fatalf("GlobalTS %d after WaitVisible(90)", got)
	}
}
