package cluster

import "aets/internal/metrics"

// Metrics holds the cluster's routing and membership series.
type Metrics struct {
	// RouteHits counts zero-block admissions: a live replica's visible
	// watermark already satisfied the query timestamp.
	RouteHits *metrics.Counter
	// RouteWaits counts admissions that had to block on the freshest
	// replica because no live replica satisfied the timestamp.
	RouteWaits *metrics.Counter
	// RouteFailovers counts mid-admission re-picks: the chosen replica
	// died (or went unhealthy) before visibility was reached.
	RouteFailovers *metrics.Counter
	// RouteErrors counts admissions that failed outright (no live
	// replicas, or the failover budget was exhausted).
	RouteErrors *metrics.Counter
	// ReplicasLive is the number of healthy, not-down members at the
	// last membership snapshot.
	ReplicasLive *metrics.Gauge
	// AdmitWait is the distribution of blocked admission waits (the
	// RouteWaits path only; hits never enter it).
	AdmitWait *metrics.Histogram
}

// NewMetrics registers the cluster metrics in r (metrics.Default when
// nil) under their canonical names and returns the handle.
func NewMetrics(r *metrics.Registry) *Metrics {
	if r == nil {
		r = metrics.Default
	}
	return &Metrics{
		RouteHits:      r.Counter("cluster_route_hits"),
		RouteWaits:     r.Counter("cluster_route_waits"),
		RouteFailovers: r.Counter("cluster_route_failovers"),
		RouteErrors:    r.Counter("cluster_route_errors"),
		ReplicasLive:   r.Gauge("cluster_replicas_live"),
		AdmitWait:      r.Histogram("cluster_admit_wait_seconds"),
	}
}
