package cluster

import (
	"io"
	"sync"

	"aets/internal/epoch"
	"aets/internal/ship"
)

// Relay makes a replica an interior node of a replication tree: it
// applies the incoming stream locally (to its node or recovery
// supervisor) and re-ships every epoch downstream through a Fanout.
// Wire it as the ship.Receiver's Applier in place of the node itself.
//
// An epoch is forwarded only after the local apply accepted it, so a
// relay's ack upstream means "durable here", and its downstream cursor
// can never run ahead of its own state. Downstream failures do not
// poison the relay's own replication: they are recorded (Err, Fanout
// stats) while the local apply keeps going — a leaf outage should not
// sever the whole subtree's feed.
type Relay struct {
	inner ship.Applier
	out   *Fanout

	mu      sync.Mutex
	downErr error
}

var (
	_ ship.Applier      = (*Relay)(nil)
	_ ship.FrameApplier = (*Relay)(nil)
)

// NewRelay wraps the local applier with downstream re-shipping.
func NewRelay(inner ship.Applier, out *Fanout) *Relay {
	return &Relay{inner: inner, out: out}
}

// Feed implements ship.Applier: apply locally, then forward.
func (r *Relay) Feed(enc *epoch.Encoded) error {
	if err := r.inner.Feed(enc); err != nil {
		return err
	}
	r.forward(enc)
	return nil
}

// FeedFrame implements ship.FrameApplier: a frame-aware inner applier
// (a recovery supervisor spooling wire frames) gets the frame as
// received; downstream forwarding always uses the decoded epoch, since
// each peer's sender negotiates its own capabilities and re-frames —
// one stale downstream peer must not force the whole subtree raw.
// Retaining enc is safe: the receiver allocates the frame payload (and
// thus enc.Buf) fresh per frame.
func (r *Relay) FeedFrame(flags byte, payload []byte, enc *epoch.Encoded) error {
	var err error
	if fa, ok := r.inner.(ship.FrameApplier); ok {
		err = fa.FeedFrame(flags, payload, enc)
	} else {
		err = r.inner.Feed(enc)
	}
	if err != nil {
		return err
	}
	r.forward(enc)
	return nil
}

// forward re-ships one locally-applied epoch downstream, recording (not
// propagating) a subtree-wide delivery failure.
func (r *Relay) forward(enc *epoch.Encoded) {
	if err := r.out.Send(enc); err != nil {
		r.mu.Lock()
		if r.downErr == nil {
			r.downErr = err
		}
		r.mu.Unlock()
	}
}

// Heartbeat implements ship.Applier: advance local visibility, then let
// downstream heartbeats advertise the watermark. The upstream heartbeat
// contract (stream complete through ts) carries through Fanout.Heartbeat
// unchanged.
func (r *Relay) Heartbeat(ts int64) error {
	if err := r.inner.Heartbeat(ts); err != nil {
		return err
	}
	r.out.Heartbeat(ts)
	return nil
}

// Err returns the first downstream delivery failure (all peers down),
// nil while the subtree is reachable.
func (r *Relay) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.downErr
}

// Fanout returns the downstream fan-out (stats, Close).
func (r *Relay) Fanout() *Fanout { return r.out }

// RestoreSnapshot implements ship.SnapshotApplier by delegating to the
// inner applier. Forwarding is untouched: the relay's cursor jumps to
// the snapshot's, downstream senders discover the sequence gap on the
// next forwarded epoch, and — when the relay's fan-out has a snapshot
// source — re-base their own replicas in turn.
func (r *Relay) RestoreSnapshot(cursor uint64, size int64, rd io.Reader) error {
	sa, ok := r.inner.(ship.SnapshotApplier)
	if !ok {
		return ship.ErrSnapshotUnsupported
	}
	return sa.RestoreSnapshot(cursor, size, rd)
}

// VerifyDigest implements ship.DigestApplier by delegating to the inner
// applier; a relay without a digest-aware inner accepts every digest.
func (r *Relay) VerifyDigest(seq uint64, ts int64, digest uint64) error {
	if da, ok := r.inner.(ship.DigestApplier); ok {
		return da.VerifyDigest(seq, ts, digest)
	}
	return nil
}

// SnapshotCapable reports whether the inner applier can actually
// restore a wire snapshot, so the receiver advertises CapSnapshot only
// when true (ship.SnapshotCapable).
func (r *Relay) SnapshotCapable() bool {
	_, ok := r.inner.(ship.SnapshotApplier)
	return ok
}
