// End-to-end fan-out tests: one TPC-C epoch stream shipped over real
// TCP to several htap.Nodes at once, compared record-for-record against
// a directly fed reference node.
package cluster_test

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"aets/internal/cluster"
	"aets/internal/epoch"
	"aets/internal/grouping"
	"aets/internal/htap"
	"aets/internal/metrics"
	"aets/internal/primary"
	"aets/internal/reference"
	"aets/internal/ship"
	"aets/internal/workload"
)

const fanWarehouses = 2

func fanEncoded(txns, epochSize int) []epoch.Encoded {
	p := primary.New(workload.NewTPCC(fanWarehouses), 1)
	return p.GenerateEncoded(txns, epochSize)
}

func fanPlan() *grouping.Plan {
	gen := workload.NewTPCC(fanWarehouses)
	return grouping.Build(htap.TPCCRates(1000), workload.TableIDs(gen.Tables()),
		grouping.Options{Eps: 0.05, MinPts: 2})
}

func fanSchema() uint64 {
	return ship.SchemaHash("tpcc", workload.TableIDs(workload.NewTPCC(fanWarehouses).Tables()))
}

func fanNode(t *testing.T) *htap.Node {
	t.Helper()
	n, err := htap.NewNode(htap.KindAETS, fanPlan(), htap.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func fanDirect(t *testing.T, encs []epoch.Encoded) *htap.Node {
	t.Helper()
	n := fanNode(t)
	for i := range encs {
		if err := n.Feed(&encs[i]); err != nil {
			t.Fatal(err)
		}
	}
	n.Drain()
	return n
}

func fanAssertSame(t *testing.T, got, want *htap.Node, who string) {
	t.Helper()
	got.Drain()
	want.Drain()
	tables := workload.TableIDs(workload.NewTPCC(fanWarehouses).Tables())
	if err := reference.Equal(want.Memtable(), got.Memtable(), tables); err != nil {
		t.Fatalf("%s diverged from reference: %v", who, err)
	}
}

// fanReceiver stands up one backup node behind a real TCP listener,
// serving connections until a clean end-of-stream.
type fanReceiver struct {
	node *htap.Node
	addr string
	done chan struct{}
	errs []error
	mu   sync.Mutex
}

func startFanReceiver(t *testing.T, node *htap.Node, reg *metrics.Registry, peer string) *fanReceiver {
	t.Helper()
	rcv, err := node.ShipReceiver(ship.ReceiverConfig{
		Schema:  fanSchema(),
		Drain:   func() error { node.Drain(); return node.Err() },
		Metrics: ship.NewPeerMetrics(reg, peer),
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fr := &fanReceiver{node: node, addr: ln.Addr().String(), done: make(chan struct{})}
	go func() {
		defer close(fr.done)
		defer ln.Close()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			finished, err := rcv.Serve(conn)
			if err != nil {
				fr.mu.Lock()
				fr.errs = append(fr.errs, err)
				fr.mu.Unlock()
			}
			if finished {
				return
			}
		}
	}()
	return fr
}

func (fr *fanReceiver) wait(t *testing.T) {
	t.Helper()
	select {
	case <-fr.done:
	case <-time.After(60 * time.Second):
		t.Fatal("receiver did not finish")
	}
}

func fanDialer(addr string) func() (net.Conn, error) {
	return func() (net.Conn, error) { return net.Dial("tcp", addr) }
}

// TestFanoutThreeReceivers: one stream, three replicas, all byte-equal
// to the reference, with per-peer labelled ship metrics kept apart in
// one registry.
func TestFanoutThreeReceivers(t *testing.T) {
	encs := fanEncoded(2048, 128)
	want := fanDirect(t, encs)
	reg := metrics.NewRegistry()

	var peers []cluster.Peer
	var rcvs []*fanReceiver
	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("replica-%d", i)
		node := fanNode(t)
		fr := startFanReceiver(t, node, reg, id)
		rcvs = append(rcvs, fr)
		peers = append(peers, cluster.Peer{ID: id, Sender: ship.SenderConfig{
			Dial:   fanDialer(fr.addr),
			Schema: fanSchema(),
			Window: 8,
		}})
	}

	f, err := cluster.NewFanout(cluster.FanoutConfig{Peers: peers, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	for i := range encs {
		if err := f.Send(&encs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if got := f.Live(); got != 3 {
		t.Fatalf("live peers = %d, want 3", got)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("fan-out close: %v", err)
	}
	for i, fr := range rcvs {
		fr.wait(t)
		fanAssertSame(t, fr.node, want, fmt.Sprintf("replica-%d", i))
	}

	// Per-peer series are distinct and each counted the full stream.
	for i := 0; i < 3; i++ {
		name := metrics.WithLabel("ship_epochs_sent", "peer", fmt.Sprintf("replica-%d", i))
		if got := reg.Counter(name).Load(); got != int64(len(encs)) {
			t.Fatalf("%s = %d, want %d", name, got, len(encs))
		}
	}
}

// TestFanoutDeadPeerIsolation: one peer's dial always fails; its
// siblings must finish the stream untouched while the dead peer reports
// a terminal error through Stats and Close.
func TestFanoutDeadPeerIsolation(t *testing.T) {
	encs := fanEncoded(1024, 128)
	want := fanDirect(t, encs)
	reg := metrics.NewRegistry()

	liveA := startFanReceiver(t, fanNode(t), reg, "a")
	liveB := startFanReceiver(t, fanNode(t), reg, "b")
	deadDial := func() (net.Conn, error) { return nil, errors.New("link severed") }

	f, err := cluster.NewFanout(cluster.FanoutConfig{
		Registry: reg,
		Peers: []cluster.Peer{
			{ID: "a", Sender: ship.SenderConfig{Dial: fanDialer(liveA.addr), Schema: fanSchema()}},
			{ID: "dead", Sender: ship.SenderConfig{Dial: deadDial, Schema: fanSchema(),
				MaxAttempts: 2, RetryBase: time.Millisecond, RetryMax: 2 * time.Millisecond}},
			{ID: "b", Sender: ship.SenderConfig{Dial: fanDialer(liveB.addr), Schema: fanSchema()}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range encs {
		if err := f.Send(&encs[i]); err != nil {
			t.Fatalf("send with live siblings failed: %v", err)
		}
	}
	err = f.Close()
	if err == nil {
		t.Fatal("close must surface the dead peer's error")
	}
	liveA.wait(t)
	liveB.wait(t)
	fanAssertSame(t, liveA.node, want, "peer a")
	fanAssertSame(t, liveB.node, want, "peer b")

	var deadErr error
	for _, st := range f.Stats() {
		switch st.ID {
		case "dead":
			deadErr = st.Err
		case "a", "b":
			if st.Err != nil {
				t.Fatalf("live peer %s has error: %v", st.ID, st.Err)
			}
			if st.Acked != int64(len(encs)) {
				t.Fatalf("peer %s acked %d, want %d", st.ID, st.Acked, len(encs))
			}
		}
	}
	if deadErr == nil {
		t.Fatal("dead peer has no terminal error in Stats")
	}
}

// TestFanoutQueueOverflow: a bounded divergence buffer drops a stuck
// peer with ErrPeerOverflow instead of buffering without limit, and the
// fan-out reports ErrAllPeersDown once its only peer is gone.
func TestFanoutQueueOverflow(t *testing.T) {
	encs := fanEncoded(1024, 64)
	stuck := func() (net.Conn, error) { return nil, errors.New("no route") }
	f, err := cluster.NewFanout(cluster.FanoutConfig{
		Registry: metrics.NewRegistry(),
		MaxQueue: 2,
		Peers: []cluster.Peer{{ID: "stuck", Sender: ship.SenderConfig{
			Dial: stuck, Schema: fanSchema(),
			MaxAttempts: 1000, RetryBase: 50 * time.Millisecond, RetryMax: 50 * time.Millisecond}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var sendErr error
	for i := range encs {
		if sendErr = f.Send(&encs[i]); sendErr != nil {
			break
		}
	}
	if !errors.Is(sendErr, cluster.ErrAllPeersDown) {
		t.Fatalf("send error = %v, want ErrAllPeersDown", sendErr)
	}
	overflowed := false
	for _, st := range f.Stats() {
		if errors.Is(st.Err, cluster.ErrPeerOverflow) {
			overflowed = true
		}
	}
	if !overflowed {
		t.Fatalf("no peer reports ErrPeerOverflow: %+v", f.Stats())
	}
	_ = f.Close()
}

// TestFanoutRelayTree: primary → relay → leaf. The relay applies the
// stream to its own node and re-ships it downstream; both tiers end
// reference-equal, and upstream heartbeats propagate through the relay
// to advance the leaf's visible watermark past the last commit.
func TestFanoutRelayTree(t *testing.T) {
	encs := fanEncoded(2048, 128)
	want := fanDirect(t, encs)
	reg := metrics.NewRegistry()

	// Leaf tier: an ordinary receiver node.
	leaf := startFanReceiver(t, fanNode(t), reg, "leaf")

	// Relay tier: applies locally, fans out to the leaf.
	relayNode := fanNode(t)
	downstream, err := cluster.NewFanout(cluster.FanoutConfig{
		Registry: reg,
		Peers: []cluster.Peer{{ID: "leaf", Sender: ship.SenderConfig{
			Dial:           fanDialer(leaf.addr),
			Schema:         fanSchema(),
			HeartbeatEvery: 5 * time.Millisecond,
		}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	relay := cluster.NewRelay(relayNode, downstream)
	relayRcv, err := ship.NewReceiver(ship.ReceiverConfig{
		Schema:  fanSchema(),
		Applier: relay,
		Drain:   func() error { relayNode.Drain(); return relayNode.Err() },
		Metrics: ship.NewPeerMetrics(reg, "relay"),
	})
	if err != nil {
		t.Fatal(err)
	}
	relayLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	relayDone := make(chan struct{})
	go func() {
		defer close(relayDone)
		defer relayLn.Close()
		for {
			conn, err := relayLn.Accept()
			if err != nil {
				return
			}
			finished, _ := relayRcv.Serve(conn)
			if finished {
				return
			}
		}
	}()

	// Primary tier: one sender into the relay, heartbeating beyond the
	// stream's last commit once everything has been handed off.
	lastTS := encs[len(encs)-1].LastCommitTS
	hbTarget := lastTS + 1000
	var handedOff atomic.Bool
	up, err := ship.NewSender(ship.SenderConfig{
		Dial:           fanDialer(relayLn.Addr().String()),
		Schema:         fanSchema(),
		HeartbeatEvery: 5 * time.Millisecond,
		HeartbeatTS: func() int64 {
			// The stream is complete through hbTarget only after the last
			// Send returned; before that, advertise nothing extra.
			if handedOff.Load() {
				return hbTarget
			}
			return 0
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range encs {
		if err := up.Send(&encs[i]); err != nil {
			t.Fatal(err)
		}
	}
	handedOff.Store(true)

	// The heartbeat must ripple primary → relay → leaf.
	deadline := time.Now().Add(30 * time.Second)
	for leaf.node.VisibleTS() < hbTarget || relayNode.VisibleTS() < hbTarget {
		if time.Now().After(deadline) {
			t.Fatalf("heartbeat did not propagate: relay=%d leaf=%d want ≥%d",
				relayNode.VisibleTS(), leaf.node.VisibleTS(), hbTarget)
		}
		time.Sleep(2 * time.Millisecond)
	}

	if err := up.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-relayDone:
	case <-time.After(60 * time.Second):
		t.Fatal("relay receiver did not finish")
	}
	if err := relay.Err(); err != nil {
		t.Fatalf("relay downstream error: %v", err)
	}
	if err := downstream.Close(); err != nil {
		t.Fatal(err)
	}
	leaf.wait(t)

	fanAssertSame(t, relayNode, want, "relay tier")
	fanAssertSame(t, leaf.node, want, "leaf tier")
}
