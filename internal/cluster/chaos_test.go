// Cluster chaos end-to-end: a primary fans one TPC-C stream out to
// three crash-recovering replicas over real TCP, replicas are
// hard-killed at randomized points and come back through
// internal/recovery (spool + checkpoint restore), and the whole time a
// freshness-aware router serves queries that must stay reference-equal
// to a serially applied ground truth.
package cluster_test

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"aets/internal/cluster"
	"aets/internal/epoch"
	"aets/internal/htap"
	"aets/internal/memtable"
	"aets/internal/metrics"
	"aets/internal/primary"
	"aets/internal/query"
	"aets/internal/recovery"
	"aets/internal/reference"
	"aets/internal/ship"
	"aets/internal/wal"
	"aets/internal/workload"
)

func fanTables() []wal.TableID {
	return workload.TableIDs(workload.NewTPCC(fanWarehouses).Tables())
}

// chaosListener remembers accepted connections so a crash severs them
// all at once, mid-frame.
type chaosListener struct {
	net.Listener
	mu    sync.Mutex
	conns []net.Conn
}

func (l *chaosListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err == nil {
		l.mu.Lock()
		l.conns = append(l.conns, c)
		l.mu.Unlock()
	}
	return c, err
}

func (l *chaosListener) kill() {
	l.Listener.Close()
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, c := range l.conns {
		c.Close()
	}
	l.conns = nil
}

// chaosReplica is one replica process stand-in: a recovery supervisor
// over its own durable spool/checkpoint dirs, fed by a ship.Receiver
// behind a killable listener. Restarting builds a brand-new supervisor
// from the same dirs and swaps it into the long-lived membership entry.
type chaosReplica struct {
	id       string
	spoolDir string
	ckptDir  string
	reg      *metrics.Registry
	rep      *cluster.SupervisorReplica

	// Receiver capability knobs, fixed for all of the replica's lives:
	// compress advertises CapFlate; maxVersion 1 emulates a legacy v1
	// peer that rejects v2 HELLOs outright.
	compress   bool
	maxVersion byte

	addr atomic.Value // string: current listener address ("" while down)

	ln      *chaosListener
	spool   *recovery.Spool
	sup     *recovery.Supervisor
	serveWG sync.WaitGroup
}

func newChaosReplica(t *testing.T, id string, compress bool, maxVersion byte) *chaosReplica {
	t.Helper()
	cr := &chaosReplica{
		id:         id,
		spoolDir:   filepath.Join(t.TempDir(), "spool"),
		ckptDir:    filepath.Join(t.TempDir(), "ckpt"),
		reg:        metrics.NewRegistry(),
		compress:   compress,
		maxVersion: maxVersion,
	}
	if err := os.MkdirAll(cr.spoolDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(cr.ckptDir, 0o755); err != nil {
		t.Fatal(err)
	}
	cr.start(t)
	cr.rep = cluster.NewSupervisorReplica(id, cr.sup)
	return cr
}

// start opens (or reopens) the replica: supervisor restored from
// spool + checkpoints, fresh receiver resuming at its cursor, fresh
// listener.
func (cr *chaosReplica) start(t *testing.T) {
	t.Helper()
	spool, err := recovery.OpenSpool(recovery.SpoolConfig{Dir: cr.spoolDir, Metrics: cr.reg})
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := recovery.OpenManager(cr.ckptDir, 0, cr.reg)
	if err != nil {
		t.Fatal(err)
	}
	sup, err := recovery.NewSupervisor(recovery.Config{
		Kind:                  htap.KindAETS,
		Plan:                  fanPlan(),
		Node:                  htap.Options{Workers: 2},
		Spool:                 spool,
		Checkpoints:           mgr,
		CheckpointEveryEpochs: 8,
		RetryBase:             time.Millisecond,
		RetryMax:              5 * time.Millisecond,
		Metrics:               cr.reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sup.Start(); err != nil {
		t.Fatal(err)
	}
	rcv, err := ship.NewReceiver(ship.ReceiverConfig{
		Schema:  fanSchema(),
		Resume:  sup.NextSeq(),
		Applier: sup,
		// The repair latch must survive receiver (and process) lifetimes:
		// a digest mismatch detected in one life still requests its
		// snapshot in the next.
		NeedSnapshot: sup.NeedSnapshot,
		Metrics:      ship.NewPeerMetrics(cr.reg, cr.id),
		Compress:     cr.compress,
		MaxVersion:   cr.maxVersion,
	})
	if err != nil {
		t.Fatal(err)
	}
	base, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := &chaosListener{Listener: base}
	cr.spool, cr.sup, cr.ln = spool, sup, ln
	cr.addr.Store(ln.Addr().String())
	cr.serveWG.Add(1)
	go func() {
		defer cr.serveWG.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			// Severed connections error mid-frame by design.
			finished, _ := rcv.Serve(conn)
			if finished {
				return
			}
		}
	}()
}

// kill hard-crashes the replica: mark it down for routing, sever every
// connection, abandon the supervisor with no drain and no parting
// checkpoint. Durability is whatever spool + checkpoints already hold.
func (cr *chaosReplica) kill(t *testing.T, members *cluster.Membership) {
	t.Helper()
	members.SetDown(cr.id, true)
	cr.addr.Store("")
	cr.ln.kill()
	cr.serveWG.Wait()
	if err := cr.sup.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cr.spool.Close(); err != nil {
		t.Fatal(err)
	}
}

// restart recovers the replica from its durable state and rejoins it to
// the cluster; the fan-out's sender for this peer reconnects on its own
// and resumes from the receiver's restored cursor.
func (cr *chaosReplica) restart(t *testing.T, members *cluster.Membership) {
	t.Helper()
	cr.start(t)
	cr.rep.Swap(cr.sup)
	members.SetDown(cr.id, false)
}

// dial targets the replica's current listener; while down it fails fast
// and the sender's backoff keeps probing until restart publishes a new
// address.
func (cr *chaosReplica) dial() (net.Conn, error) {
	a, _ := cr.addr.Load().(string)
	if a == "" {
		return nil, fmt.Errorf("replica %s down", cr.id)
	}
	return net.Dial("tcp", a)
}

// snapDigest fingerprints every visible row of every table at the
// snapshot: key, commit timestamp and sorted columns.
func snapDigest(t *testing.T, sn *query.Snapshot, tables []wal.TableID) string {
	t.Helper()
	h := fnv.New64a()
	for _, tb := range tables {
		fmt.Fprintf(h, "T%d:", tb)
		err := sn.Scan(tb, 0, ^uint64(0), func(r query.Row) bool {
			fmt.Fprintf(h, "%d@%d[", r.Key, r.CommitTS)
			cols := make([]uint32, 0, len(r.Columns))
			for c := range r.Columns {
				cols = append(cols, c)
			}
			sort.Slice(cols, func(i, j int) bool { return cols[i] < cols[j] })
			for _, c := range cols {
				fmt.Fprintf(h, "%d=%x;", c, r.Columns[c])
			}
			fmt.Fprint(h, "]")
			return true
		})
		if err != nil {
			t.Fatalf("scan table %d: %v", tb, err)
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// waitCaughtUp blocks until every live replica's visible watermark
// reaches ts (the fan-out senders' heartbeats push idle links forward).
func waitCaughtUp(t *testing.T, members *cluster.Membership, ts int64) {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		behind := ""
		for _, st := range members.Snapshot() {
			if !st.Down && st.Healthy && st.VisibleTS < ts {
				behind = fmt.Sprintf("%s at %d/%d", st.ID, st.VisibleTS, ts)
				break
			}
		}
		if behind == "" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster never caught up: %s (members %+v)", behind, members.Snapshot())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestClusterChaosRoutedQueriesStayCorrect(t *testing.T) {
	txnCount, epochSize := 6000, 64
	if testing.Short() {
		txnCount, epochSize = 2000, 64
	}
	p := primary.New(workload.NewTPCC(fanWarehouses), 11)
	txns := p.GenerateTxns(txnCount)
	encs := epoch.EncodeAll(epoch.MustSplit(txns, epochSize))
	tables := fanTables()

	// Ground truth: the serial reference memtable, plus a fully fed node
	// whose MVCC snapshots answer "what should a query at ts see".
	want := memtable.New()
	reference.Apply(want, txns)
	refNode := fanDirect(t, encs)
	refDigests := map[int64]string{} // qts → digest, lazily filled

	refAt := func(qts int64) string {
		if d, ok := refDigests[qts]; ok {
			return d
		}
		d := snapDigest(t, refNode.Query(qts, tables...), tables)
		refDigests[qts] = d
		return d
	}

	// The cluster: three crash-recovering replicas, one router. With
	// AETS_CHAOS_COMPRESS set the fleet is capability-mixed: every sender
	// offers flate, r0 is pinned to legacy v1 (it must keep receiving raw
	// frames through the v1 fallback), r1/r2 negotiate compression —
	// proving one stale peer cannot disable compression for its siblings.
	mixed := os.Getenv("AETS_CHAOS_COMPRESS") != ""
	if mixed {
		t.Log("chaos leg: mixed-capability fleet (r0 legacy v1, r1/r2 flate)")
	}
	m := cluster.NewMetrics(metrics.NewRegistry())
	members := cluster.NewMembership(m)
	reps := make([]*chaosReplica, 3)
	peers := make([]cluster.Peer, 3)
	for i := range reps {
		var maxVer byte
		if mixed && i == 0 {
			maxVer = 1
		}
		cr := newChaosReplica(t, fmt.Sprintf("r%d", i), mixed && i > 0, maxVer)
		reps[i] = cr
		if err := members.Add(cr.rep); err != nil {
			t.Fatal(err)
		}
		peers[i] = cluster.Peer{ID: cr.id, Sender: ship.SenderConfig{
			Dial:           cr.dial,
			Schema:         fanSchema(),
			Window:         8,
			HeartbeatEvery: 2 * time.Millisecond,
			RetryBase:      time.Millisecond,
			RetryMax:       10 * time.Millisecond,
			MaxAttempts:    1 << 30, // a dead replica is retried until it returns
			Compress:       mixed,
		}}
	}
	router, err := cluster.NewRouter(cluster.RouterConfig{Members: members, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	fan, err := cluster.NewFanout(cluster.FanoutConfig{Peers: peers, Registry: metrics.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))

	// verify routes k historical queries and one freshest-read, checking
	// the admission invariant and reference-equality of every snapshot.
	verify := func(upToTS int64, k int) {
		t.Helper()
		for q := 0; q < k; q++ {
			qts := 1 + rng.Int63n(upToTS)
			adm, err := router.Admit(qts, tables...)
			if err != nil {
				t.Fatalf("admit qts=%d: %v", qts, err)
			}
			if got := adm.Replica.VisibleTS(); got < adm.TS {
				t.Fatalf("INVARIANT: replica %s watermark %d < admitted ts %d",
					adm.Replica.ID(), got, adm.TS)
			}
			sn := adm.Replica.(cluster.Snapshotter).Query(adm.TS, tables...)
			if got, wantD := snapDigest(t, sn, tables), refAt(adm.TS); got != wantD {
				t.Fatalf("qts=%d on %s: snapshot digest %s, reference %s",
					adm.TS, adm.Replica.ID(), got, wantD)
			}
			adm.Done()
		}
		// Freshest read (qts ≤ 0): pinned to the chosen replica's own
		// watermark, still reference-equal there.
		adm, err := router.Admit(0, tables...)
		if err != nil {
			t.Fatal(err)
		}
		sn := adm.Replica.(cluster.Snapshotter).Query(adm.TS, tables...)
		if got, wantD := snapDigest(t, sn, tables), refAt(adm.TS); got != wantD {
			t.Fatalf("freshest read at %d on %s: digest %s, reference %s",
				adm.TS, adm.Replica.ID(), got, wantD)
		}
		adm.Done()
	}

	// assertZeroBlock admits a query every live replica already
	// satisfies and proves it neither waited nor bumped the wait counter.
	assertZeroBlock := func() {
		t.Helper()
		minVis := int64(-1)
		for _, st := range members.Snapshot() {
			if !st.Down && st.Healthy && (minVis < 0 || st.VisibleTS < minVis) {
				minVis = st.VisibleTS
			}
		}
		if minVis <= 0 {
			t.Fatalf("no live replica with data (members %+v)", members.Snapshot())
		}
		hits, waits := m.RouteHits.Load(), m.RouteWaits.Load()
		adm, err := router.Admit(minVis, tables...)
		if err != nil {
			t.Fatal(err)
		}
		if adm.Waited || m.RouteHits.Load() != hits+1 || m.RouteWaits.Load() != waits {
			t.Fatalf("satisfied query blocked: waited=%v hits %d→%d waits %d→%d",
				adm.Waited, hits, m.RouteHits.Load(), waits, m.RouteWaits.Load())
		}
		adm.Done()
	}

	// Ship in batches; every third round hard-kills a replica. Short mode
	// ships a smaller stream, so batches shrink to keep enough rounds for
	// the kills≥3 floor below.
	batch := 8
	if testing.Short() {
		batch = 4
	}
	kills := 0
	for i := 0; i < len(encs); i += batch {
		end := i + batch
		if end > len(encs) {
			end = len(encs)
		}
		for j := i; j < end; j++ {
			if err := fan.Send(&encs[j]); err != nil {
				t.Fatalf("fan-out send epoch %d: %v", j, err)
			}
		}
		sentTS := encs[end-1].LastCommitTS
		round := i / batch

		if round%3 == 1 {
			// Hard-kill a random replica mid-stream, route around it,
			// then bring it back through recovery.
			victim := rng.Intn(len(reps))
			reps[victim].kill(t, members)
			kills++
			// Query immediately, before the survivors have caught up: a
			// qts ahead of their watermarks parks on the freshest replica
			// (the wait path) and must still come back reference-equal.
			verify(sentTS, 2)
			waitCaughtUp(t, members, sentTS)
			verify(sentTS, 4)
			assertZeroBlock()
			reps[victim].restart(t, members)
		} else {
			waitCaughtUp(t, members, sentTS)
			verify(sentTS, 4)
			assertZeroBlock()
		}
	}
	if kills < 3 {
		t.Fatalf("only %d kills; the chaos schedule is broken", kills)
	}

	// Full-stream convergence: every replica (including the survivors of
	// every kill) must reach the final watermark and match the serial
	// reference record-for-record.
	lastTS := encs[len(encs)-1].LastCommitTS
	waitCaughtUp(t, members, lastTS)
	verify(lastTS, 8)
	assertZeroBlock()

	// Per-peer byte accounting before Close tears the links down: the v1
	// peer must have shipped raw, the flate peers measurably less.
	if mixed {
		for _, st := range fan.Stats() {
			switch st.ID {
			case "r0":
				if st.BytesWire != st.BytesRaw {
					t.Fatalf("v1 peer r0 wire %d ≠ raw %d", st.BytesWire, st.BytesRaw)
				}
			default:
				if st.BytesWire >= st.BytesRaw {
					t.Fatalf("flate peer %s did not compress: wire %d ≥ raw %d", st.ID, st.BytesWire, st.BytesRaw)
				}
				t.Logf("%s wire/raw: %.3f (%d/%d)", st.ID,
					float64(st.BytesWire)/float64(st.BytesRaw), st.BytesWire, st.BytesRaw)
			}
		}
	}

	if err := fan.Close(); err != nil {
		t.Fatalf("fan-out close: %v", err)
	}
	for _, cr := range reps {
		cr.serveWG.Wait()
		node := cr.sup.Node()
		if node == nil {
			t.Fatalf("%s: no live node at the end", cr.id)
		}
		node.Drain()
		if err := node.Err(); err != nil {
			t.Fatalf("%s: %v", cr.id, err)
		}
		if err := reference.Equal(want, node.Memtable(), tables); err != nil {
			t.Fatalf("%s diverged from reference: %v", cr.id, err)
		}
		if err := cr.sup.Close(); err != nil {
			t.Fatal(err)
		}
		if err := cr.spool.Close(); err != nil {
			t.Fatal(err)
		}
	}
	t.Logf("chaos done: %d kills, hits=%d waits=%d failovers=%d",
		kills, m.RouteHits.Load(), m.RouteWaits.Load(), m.RouteFailovers.Load())
}

// flipAtRest corrupts one column byte in every committed record head of
// the node's memtable — at-rest corruption that no wire CRC ever sees.
// The blast radius is deliberate: the digest hashes version-chain heads
// only, and the stream keeps appending fresh heads, so a single flipped
// record could be silently papered over by its next update. Flipping
// every head guarantees some corrupted record survives to the next
// digest comparison. Callers must have drained replay and must publish
// the writes (any supervisor mutex round-trip) before traffic resumes.
func flipAtRest(t *testing.T, node *htap.Node, tables []wal.TableID) {
	t.Helper()
	flipped := 0
	for _, tb := range tables {
		node.Memtable().Table(tb).ScanAny(0, ^uint64(0), func(_ uint64, rec *memtable.Record) bool {
			v := rec.Latest()
			if v == nil || len(v.Columns) == 0 || len(v.Columns[0].Value) == 0 {
				return true
			}
			v.Columns[0].Value[0] ^= 0x01
			flipped++
			return true
		})
	}
	if flipped == 0 {
		t.Fatal("no committed record to corrupt")
	}
}

// TestClusterChaosSnapshotCatchup is the snapshot catch-up + anti-entropy
// chaos leg (AETS_CHAOS_SNAPSHOT=1, wired as a CI matrix leg):
//
//  1. a replica is held down while the stream runs past its bounded
//     divergence queue — the fan-out sheds instead of dropping it;
//  2. the replica rejoins with zero operator action: the sender bridges
//     the shed gap with a wire snapshot cut from the mirror, restored
//     durably through the recovery supervisor;
//  3. an at-rest bit flip on a healthy replica — invisible to every
//     frame CRC — is caught by the epoch-boundary state digests and
//     repaired through the same snapshot path.
//
// Throughout, no peer may fail terminally and every replica must end
// record-for-record equal to the serial reference.
func TestClusterChaosSnapshotCatchup(t *testing.T) {
	if os.Getenv("AETS_CHAOS_SNAPSHOT") == "" {
		t.Skip("set AETS_CHAOS_SNAPSHOT=1 to run the snapshot catch-up chaos leg")
	}
	txnCount, epochSize := 12000, 64
	if testing.Short() {
		txnCount = 4000
	}
	p := primary.New(workload.NewTPCC(fanWarehouses), 23)
	txns := p.GenerateTxns(txnCount)
	encs := epoch.EncodeAll(epoch.MustSplit(txns, epochSize))
	tables := fanTables()
	want := memtable.New()
	reference.Apply(want, txns)

	// The mirror applies every epoch before it ships — the freshness
	// contract behind both the snapshot source and the digest stream.
	mirror := fanNode(t)
	defer mirror.Close()

	m := cluster.NewMetrics(metrics.NewRegistry())
	members := cluster.NewMembership(m)
	reps := make([]*chaosReplica, 3)
	peers := make([]cluster.Peer, 3)
	for i := range reps {
		cr := newChaosReplica(t, fmt.Sprintf("r%d", i), false, 0)
		reps[i] = cr
		if err := members.Add(cr.rep); err != nil {
			t.Fatal(err)
		}
		peers[i] = cluster.Peer{ID: cr.id, Sender: ship.SenderConfig{
			Dial:           cr.dial,
			Schema:         fanSchema(),
			Window:         8,
			HeartbeatEvery: 2 * time.Millisecond,
			RetryBase:      time.Millisecond,
			RetryMax:       10 * time.Millisecond,
			MaxAttempts:    1 << 30, // a dead replica is retried until it returns
		}}
	}
	freg := metrics.NewRegistry()
	fan, err := cluster.NewFanout(cluster.FanoutConfig{
		Peers:       peers,
		Registry:    freg,
		MaxQueue:    8, // tiny on purpose: any held-down replica overflows fast
		Snapshot:    &htap.NodeSnapshotSource{N: mirror},
		DigestEvery: 4,
		Digest:      mirror.AntiEntropyDigest,
	})
	if err != nil {
		t.Fatal(err)
	}

	send := func(from, to int) int64 {
		t.Helper()
		for i := from; i < to; i++ {
			if err := mirror.Feed(&encs[i]); err != nil {
				t.Fatal(err)
			}
			if err := fan.Send(&encs[i]); err != nil {
				t.Fatalf("fan-out send epoch %d: %v", i, err)
			}
		}
		return encs[to-1].LastCommitTS
	}
	q := len(encs) / 4

	// Phase 1 — warm-up, everyone keeps up.
	waitCaughtUp(t, members, send(0, q))

	// Phase 2 — r2 is held down while the stream runs a quarter past its
	// divergence budget: the queue must shed (counted), not drop the peer.
	reps[2].kill(t, members)
	ts := send(q, 2*q)
	ovf := freg.Counter(metrics.WithLabel("cluster_peer_overflow_total", "peer", "r2"))
	if ovf.Load() < 1 {
		t.Fatalf("cluster_peer_overflow_total{r2} = %d after %d epochs against MaxQueue 8", ovf.Load(), q)
	}
	if fan.Live() != 3 {
		t.Fatalf("live peers = %d after shed, want 3", fan.Live())
	}
	waitCaughtUp(t, members, ts) // survivors unaffected

	// Phase 3 — r2 returns and must rejoin via wire snapshot with zero
	// operator action: no cursor munging, no manual reseed.
	reps[2].restart(t, members)
	waitCaughtUp(t, members, send(2*q, 3*q))
	restored2 := reps[2].reg.Counter(metrics.WithLabel("cluster_snapshot_restored_total", "peer", "r2"))
	if restored2.Load() < 1 {
		t.Fatalf("cluster_snapshot_restored_total{r2} = %d, want >= 1", restored2.Load())
	}
	if st := reps[2].sup.Stats(); st.SnapshotRestores < 1 {
		t.Fatalf("supervisor SnapshotRestores = %d, want >= 1", st.SnapshotRestores)
	}
	for _, st := range fan.Stats() {
		if st.Err != nil {
			t.Fatalf("peer %s terminal error: %v", st.ID, st.Err)
		}
	}
	fan.SyncLinkErrs(members)
	for _, st := range members.Snapshot() {
		if st.LinkErr != "" {
			t.Fatalf("replica %s link error %q, want none", st.ID, st.LinkErr)
		}
	}

	// Phase 4 — at-rest corruption on r1: flip one committed byte that no
	// wire CRC ever covered, then keep streaming. The epoch-boundary
	// digests must catch the divergence and the snapshot path must repair
	// it before the stream ends.
	mm := reps[1].reg.Counter(metrics.WithLabel("cluster_digest_mismatch_total", "peer", "r1"))
	restored1 := reps[1].reg.Counter(metrics.WithLabel("cluster_snapshot_restored_total", "peer", "r1"))
	// drained waits for every link to hand off and ack its whole queue —
	// phase 4 is paced so r1 never overflows and every digest arrives
	// positionally aligned.
	drained := func() {
		dl := time.Now().Add(30 * time.Second)
		for time.Now().Before(dl) {
			idle := true
			for _, st := range fan.Stats() {
				if st.Queued > 0 || st.Inflight > 0 || st.SnapWait {
					idle = false
					break
				}
			}
			if idle {
				return
			}
			time.Sleep(time.Millisecond)
		}
	}
	drained()
	time.Sleep(50 * time.Millisecond) // let trailing digest frames land first
	flip := func() {
		reps[1].sup.Node().Drain()
		flipAtRest(t, reps[1].sup.Node(), tables)
		// Publish the flip to the receiver goroutine: VerifyDigest takes
		// the supervisor mutex before scanning, so one round-trip through
		// it orders the corrupting write before any later digest scan.
		_ = reps[1].sup.NeedSnapshot()
	}
	flip()
	// Hold a reserve back: repair rides reconnection, and reconnection
	// rides traffic — the reserve guarantees Sends after the mismatch
	// drops the link.
	reserve := 8
	mmBase, resBase := mm.Load(), restored1.Load()
	i := 3 * q
	for mm.Load() == mmBase {
		if i >= len(encs)-reserve {
			sent := freg.Counter(metrics.WithLabel("ship_digests_sent_total", "peer", "r1"))
			verified := reps[1].reg.Counter(metrics.WithLabel("ship_digests_verified_total", "peer", "r1"))
			t.Fatalf("digests never caught the bit flip: sent=%d verified=%d mismatches=%d restores=%d node seq=%d (sup %+v)",
				sent.Load(), verified.Load(), mm.Load()-mmBase, restored1.Load()-resBase,
				reps[1].sup.Node().NextSeq(), reps[1].sup.Stats())
		}
		end := i + 4
		if end > len(encs)-reserve {
			end = len(encs) - reserve
		}
		send(i, end)
		i = end
		drained()
		if restored1.Load() > resBase && mm.Load() == mmBase {
			// An overflow-shed snapshot re-based r1 and silently wiped the
			// corruption before any digest compared it: flip again so the
			// anti-entropy path (not luck) does the healing.
			resBase = restored1.Load()
			flip()
		}
	}
	// The mismatch dropped the link; the remaining traffic (at least the
	// reserve) reconnects it, the WELCOME requests repair, and the
	// snapshot restores. Resume from i — every epoch ships exactly once.
	waitCaughtUp(t, members, send(i, len(encs)))
	deadline := time.Now().Add(60 * time.Second)
	for restored1.Load() <= resBase {
		if time.Now().After(deadline) {
			t.Fatalf("bit flip detected but never repaired: mismatches=%d restores=%d (sup %+v)",
				mm.Load()-mmBase, restored1.Load()-resBase, reps[1].sup.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	if st := reps[1].sup.Stats(); st.DigestMismatches < 1 {
		t.Fatalf("supervisor DigestMismatches = %d, want >= 1", st.DigestMismatches)
	}

	// Full-stream convergence: every replica — shed, repaired, untouched —
	// matches the serial reference record-for-record.
	if err := fan.Close(); err != nil {
		t.Fatalf("fan-out close: %v", err)
	}
	for _, cr := range reps {
		cr.serveWG.Wait()
		node := cr.sup.Node()
		if node == nil {
			t.Fatalf("%s: no live node at the end", cr.id)
		}
		node.Drain()
		if err := node.Err(); err != nil {
			t.Fatalf("%s: %v", cr.id, err)
		}
		if err := reference.Equal(want, node.Memtable(), tables); err != nil {
			t.Fatalf("%s diverged from reference: %v", cr.id, err)
		}
		if err := cr.sup.Close(); err != nil {
			t.Fatal(err)
		}
		if err := cr.spool.Close(); err != nil {
			t.Fatal(err)
		}
	}
	t.Logf("snapshot chaos done: overflows{r2}=%d restores{r2}=%d mismatches{r1}=%d restores{r1}=%d",
		ovf.Load(), restored2.Load(), mm.Load(), restored1.Load())
}
