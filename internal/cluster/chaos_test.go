// Cluster chaos end-to-end: a primary fans one TPC-C stream out to
// three crash-recovering replicas over real TCP, replicas are
// hard-killed at randomized points and come back through
// internal/recovery (spool + checkpoint restore), and the whole time a
// freshness-aware router serves queries that must stay reference-equal
// to a serially applied ground truth.
package cluster_test

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"aets/internal/cluster"
	"aets/internal/epoch"
	"aets/internal/htap"
	"aets/internal/memtable"
	"aets/internal/metrics"
	"aets/internal/primary"
	"aets/internal/query"
	"aets/internal/recovery"
	"aets/internal/reference"
	"aets/internal/ship"
	"aets/internal/wal"
	"aets/internal/workload"
)

func fanTables() []wal.TableID {
	return workload.TableIDs(workload.NewTPCC(fanWarehouses).Tables())
}

// chaosListener remembers accepted connections so a crash severs them
// all at once, mid-frame.
type chaosListener struct {
	net.Listener
	mu    sync.Mutex
	conns []net.Conn
}

func (l *chaosListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err == nil {
		l.mu.Lock()
		l.conns = append(l.conns, c)
		l.mu.Unlock()
	}
	return c, err
}

func (l *chaosListener) kill() {
	l.Listener.Close()
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, c := range l.conns {
		c.Close()
	}
	l.conns = nil
}

// chaosReplica is one replica process stand-in: a recovery supervisor
// over its own durable spool/checkpoint dirs, fed by a ship.Receiver
// behind a killable listener. Restarting builds a brand-new supervisor
// from the same dirs and swaps it into the long-lived membership entry.
type chaosReplica struct {
	id       string
	spoolDir string
	ckptDir  string
	reg      *metrics.Registry
	rep      *cluster.SupervisorReplica

	// Receiver capability knobs, fixed for all of the replica's lives:
	// compress advertises CapFlate; maxVersion 1 emulates a legacy v1
	// peer that rejects v2 HELLOs outright.
	compress   bool
	maxVersion byte

	addr atomic.Value // string: current listener address ("" while down)

	ln      *chaosListener
	spool   *recovery.Spool
	sup     *recovery.Supervisor
	serveWG sync.WaitGroup
}

func newChaosReplica(t *testing.T, id string, compress bool, maxVersion byte) *chaosReplica {
	t.Helper()
	cr := &chaosReplica{
		id:         id,
		spoolDir:   filepath.Join(t.TempDir(), "spool"),
		ckptDir:    filepath.Join(t.TempDir(), "ckpt"),
		reg:        metrics.NewRegistry(),
		compress:   compress,
		maxVersion: maxVersion,
	}
	if err := os.MkdirAll(cr.spoolDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(cr.ckptDir, 0o755); err != nil {
		t.Fatal(err)
	}
	cr.start(t)
	cr.rep = cluster.NewSupervisorReplica(id, cr.sup)
	return cr
}

// start opens (or reopens) the replica: supervisor restored from
// spool + checkpoints, fresh receiver resuming at its cursor, fresh
// listener.
func (cr *chaosReplica) start(t *testing.T) {
	t.Helper()
	spool, err := recovery.OpenSpool(recovery.SpoolConfig{Dir: cr.spoolDir, Metrics: cr.reg})
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := recovery.OpenManager(cr.ckptDir, 0, cr.reg)
	if err != nil {
		t.Fatal(err)
	}
	sup, err := recovery.NewSupervisor(recovery.Config{
		Kind:                  htap.KindAETS,
		Plan:                  fanPlan(),
		Node:                  htap.Options{Workers: 2},
		Spool:                 spool,
		Checkpoints:           mgr,
		CheckpointEveryEpochs: 8,
		RetryBase:             time.Millisecond,
		RetryMax:              5 * time.Millisecond,
		Metrics:               cr.reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sup.Start(); err != nil {
		t.Fatal(err)
	}
	rcv, err := ship.NewReceiver(ship.ReceiverConfig{
		Schema:     fanSchema(),
		Resume:     sup.NextSeq(),
		Applier:    sup,
		Metrics:    ship.NewPeerMetrics(cr.reg, cr.id),
		Compress:   cr.compress,
		MaxVersion: cr.maxVersion,
	})
	if err != nil {
		t.Fatal(err)
	}
	base, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := &chaosListener{Listener: base}
	cr.spool, cr.sup, cr.ln = spool, sup, ln
	cr.addr.Store(ln.Addr().String())
	cr.serveWG.Add(1)
	go func() {
		defer cr.serveWG.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			// Severed connections error mid-frame by design.
			finished, _ := rcv.Serve(conn)
			if finished {
				return
			}
		}
	}()
}

// kill hard-crashes the replica: mark it down for routing, sever every
// connection, abandon the supervisor with no drain and no parting
// checkpoint. Durability is whatever spool + checkpoints already hold.
func (cr *chaosReplica) kill(t *testing.T, members *cluster.Membership) {
	t.Helper()
	members.SetDown(cr.id, true)
	cr.addr.Store("")
	cr.ln.kill()
	cr.serveWG.Wait()
	if err := cr.sup.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cr.spool.Close(); err != nil {
		t.Fatal(err)
	}
}

// restart recovers the replica from its durable state and rejoins it to
// the cluster; the fan-out's sender for this peer reconnects on its own
// and resumes from the receiver's restored cursor.
func (cr *chaosReplica) restart(t *testing.T, members *cluster.Membership) {
	t.Helper()
	cr.start(t)
	cr.rep.Swap(cr.sup)
	members.SetDown(cr.id, false)
}

// dial targets the replica's current listener; while down it fails fast
// and the sender's backoff keeps probing until restart publishes a new
// address.
func (cr *chaosReplica) dial() (net.Conn, error) {
	a, _ := cr.addr.Load().(string)
	if a == "" {
		return nil, fmt.Errorf("replica %s down", cr.id)
	}
	return net.Dial("tcp", a)
}

// snapDigest fingerprints every visible row of every table at the
// snapshot: key, commit timestamp and sorted columns.
func snapDigest(t *testing.T, sn *query.Snapshot, tables []wal.TableID) string {
	t.Helper()
	h := fnv.New64a()
	for _, tb := range tables {
		fmt.Fprintf(h, "T%d:", tb)
		err := sn.Scan(tb, 0, ^uint64(0), func(r query.Row) bool {
			fmt.Fprintf(h, "%d@%d[", r.Key, r.CommitTS)
			cols := make([]uint32, 0, len(r.Columns))
			for c := range r.Columns {
				cols = append(cols, c)
			}
			sort.Slice(cols, func(i, j int) bool { return cols[i] < cols[j] })
			for _, c := range cols {
				fmt.Fprintf(h, "%d=%x;", c, r.Columns[c])
			}
			fmt.Fprint(h, "]")
			return true
		})
		if err != nil {
			t.Fatalf("scan table %d: %v", tb, err)
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// waitCaughtUp blocks until every live replica's visible watermark
// reaches ts (the fan-out senders' heartbeats push idle links forward).
func waitCaughtUp(t *testing.T, members *cluster.Membership, ts int64) {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		behind := ""
		for _, st := range members.Snapshot() {
			if !st.Down && st.Healthy && st.VisibleTS < ts {
				behind = fmt.Sprintf("%s at %d/%d", st.ID, st.VisibleTS, ts)
				break
			}
		}
		if behind == "" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster never caught up: %s (members %+v)", behind, members.Snapshot())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestClusterChaosRoutedQueriesStayCorrect(t *testing.T) {
	txnCount, epochSize := 6000, 64
	if testing.Short() {
		txnCount, epochSize = 2000, 64
	}
	p := primary.New(workload.NewTPCC(fanWarehouses), 11)
	txns := p.GenerateTxns(txnCount)
	encs := epoch.EncodeAll(epoch.MustSplit(txns, epochSize))
	tables := fanTables()

	// Ground truth: the serial reference memtable, plus a fully fed node
	// whose MVCC snapshots answer "what should a query at ts see".
	want := memtable.New()
	reference.Apply(want, txns)
	refNode := fanDirect(t, encs)
	refDigests := map[int64]string{} // qts → digest, lazily filled

	refAt := func(qts int64) string {
		if d, ok := refDigests[qts]; ok {
			return d
		}
		d := snapDigest(t, refNode.Query(qts, tables...), tables)
		refDigests[qts] = d
		return d
	}

	// The cluster: three crash-recovering replicas, one router. With
	// AETS_CHAOS_COMPRESS set the fleet is capability-mixed: every sender
	// offers flate, r0 is pinned to legacy v1 (it must keep receiving raw
	// frames through the v1 fallback), r1/r2 negotiate compression —
	// proving one stale peer cannot disable compression for its siblings.
	mixed := os.Getenv("AETS_CHAOS_COMPRESS") != ""
	if mixed {
		t.Log("chaos leg: mixed-capability fleet (r0 legacy v1, r1/r2 flate)")
	}
	m := cluster.NewMetrics(metrics.NewRegistry())
	members := cluster.NewMembership(m)
	reps := make([]*chaosReplica, 3)
	peers := make([]cluster.Peer, 3)
	for i := range reps {
		var maxVer byte
		if mixed && i == 0 {
			maxVer = 1
		}
		cr := newChaosReplica(t, fmt.Sprintf("r%d", i), mixed && i > 0, maxVer)
		reps[i] = cr
		if err := members.Add(cr.rep); err != nil {
			t.Fatal(err)
		}
		peers[i] = cluster.Peer{ID: cr.id, Sender: ship.SenderConfig{
			Dial:           cr.dial,
			Schema:         fanSchema(),
			Window:         8,
			HeartbeatEvery: 2 * time.Millisecond,
			RetryBase:      time.Millisecond,
			RetryMax:       10 * time.Millisecond,
			MaxAttempts:    1 << 30, // a dead replica is retried until it returns
			Compress:       mixed,
		}}
	}
	router, err := cluster.NewRouter(cluster.RouterConfig{Members: members, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	fan, err := cluster.NewFanout(cluster.FanoutConfig{Peers: peers, Registry: metrics.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))

	// verify routes k historical queries and one freshest-read, checking
	// the admission invariant and reference-equality of every snapshot.
	verify := func(upToTS int64, k int) {
		t.Helper()
		for q := 0; q < k; q++ {
			qts := 1 + rng.Int63n(upToTS)
			adm, err := router.Admit(qts, tables...)
			if err != nil {
				t.Fatalf("admit qts=%d: %v", qts, err)
			}
			if got := adm.Replica.VisibleTS(); got < adm.TS {
				t.Fatalf("INVARIANT: replica %s watermark %d < admitted ts %d",
					adm.Replica.ID(), got, adm.TS)
			}
			sn := adm.Replica.(cluster.Snapshotter).Query(adm.TS, tables...)
			if got, wantD := snapDigest(t, sn, tables), refAt(adm.TS); got != wantD {
				t.Fatalf("qts=%d on %s: snapshot digest %s, reference %s",
					adm.TS, adm.Replica.ID(), got, wantD)
			}
			adm.Done()
		}
		// Freshest read (qts ≤ 0): pinned to the chosen replica's own
		// watermark, still reference-equal there.
		adm, err := router.Admit(0, tables...)
		if err != nil {
			t.Fatal(err)
		}
		sn := adm.Replica.(cluster.Snapshotter).Query(adm.TS, tables...)
		if got, wantD := snapDigest(t, sn, tables), refAt(adm.TS); got != wantD {
			t.Fatalf("freshest read at %d on %s: digest %s, reference %s",
				adm.TS, adm.Replica.ID(), got, wantD)
		}
		adm.Done()
	}

	// assertZeroBlock admits a query every live replica already
	// satisfies and proves it neither waited nor bumped the wait counter.
	assertZeroBlock := func() {
		t.Helper()
		minVis := int64(-1)
		for _, st := range members.Snapshot() {
			if !st.Down && st.Healthy && (minVis < 0 || st.VisibleTS < minVis) {
				minVis = st.VisibleTS
			}
		}
		if minVis <= 0 {
			t.Fatalf("no live replica with data (members %+v)", members.Snapshot())
		}
		hits, waits := m.RouteHits.Load(), m.RouteWaits.Load()
		adm, err := router.Admit(minVis, tables...)
		if err != nil {
			t.Fatal(err)
		}
		if adm.Waited || m.RouteHits.Load() != hits+1 || m.RouteWaits.Load() != waits {
			t.Fatalf("satisfied query blocked: waited=%v hits %d→%d waits %d→%d",
				adm.Waited, hits, m.RouteHits.Load(), waits, m.RouteWaits.Load())
		}
		adm.Done()
	}

	// Ship in batches; every third round hard-kills a replica. Short mode
	// ships a smaller stream, so batches shrink to keep enough rounds for
	// the kills≥3 floor below.
	batch := 8
	if testing.Short() {
		batch = 4
	}
	kills := 0
	for i := 0; i < len(encs); i += batch {
		end := i + batch
		if end > len(encs) {
			end = len(encs)
		}
		for j := i; j < end; j++ {
			if err := fan.Send(&encs[j]); err != nil {
				t.Fatalf("fan-out send epoch %d: %v", j, err)
			}
		}
		sentTS := encs[end-1].LastCommitTS
		round := i / batch

		if round%3 == 1 {
			// Hard-kill a random replica mid-stream, route around it,
			// then bring it back through recovery.
			victim := rng.Intn(len(reps))
			reps[victim].kill(t, members)
			kills++
			// Query immediately, before the survivors have caught up: a
			// qts ahead of their watermarks parks on the freshest replica
			// (the wait path) and must still come back reference-equal.
			verify(sentTS, 2)
			waitCaughtUp(t, members, sentTS)
			verify(sentTS, 4)
			assertZeroBlock()
			reps[victim].restart(t, members)
		} else {
			waitCaughtUp(t, members, sentTS)
			verify(sentTS, 4)
			assertZeroBlock()
		}
	}
	if kills < 3 {
		t.Fatalf("only %d kills; the chaos schedule is broken", kills)
	}

	// Full-stream convergence: every replica (including the survivors of
	// every kill) must reach the final watermark and match the serial
	// reference record-for-record.
	lastTS := encs[len(encs)-1].LastCommitTS
	waitCaughtUp(t, members, lastTS)
	verify(lastTS, 8)
	assertZeroBlock()

	// Per-peer byte accounting before Close tears the links down: the v1
	// peer must have shipped raw, the flate peers measurably less.
	if mixed {
		for _, st := range fan.Stats() {
			switch st.ID {
			case "r0":
				if st.BytesWire != st.BytesRaw {
					t.Fatalf("v1 peer r0 wire %d ≠ raw %d", st.BytesWire, st.BytesRaw)
				}
			default:
				if st.BytesWire >= st.BytesRaw {
					t.Fatalf("flate peer %s did not compress: wire %d ≥ raw %d", st.ID, st.BytesWire, st.BytesRaw)
				}
				t.Logf("%s wire/raw: %.3f (%d/%d)", st.ID,
					float64(st.BytesWire)/float64(st.BytesRaw), st.BytesWire, st.BytesRaw)
			}
		}
	}

	if err := fan.Close(); err != nil {
		t.Fatalf("fan-out close: %v", err)
	}
	for _, cr := range reps {
		cr.serveWG.Wait()
		node := cr.sup.Node()
		if node == nil {
			t.Fatalf("%s: no live node at the end", cr.id)
		}
		node.Drain()
		if err := node.Err(); err != nil {
			t.Fatalf("%s: %v", cr.id, err)
		}
		if err := reference.Equal(want, node.Memtable(), tables); err != nil {
			t.Fatalf("%s diverged from reference: %v", cr.id, err)
		}
		if err := cr.sup.Close(); err != nil {
			t.Fatal(err)
		}
		if err := cr.spool.Close(); err != nil {
			t.Fatal(err)
		}
	}
	t.Logf("chaos done: %d kills, hits=%d waits=%d failovers=%d",
		kills, m.RouteHits.Load(), m.RouteWaits.Load(), m.RouteFailovers.Load())
}
