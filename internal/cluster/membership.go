package cluster

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Membership is the roster of cluster replicas: who exists, whether the
// operator (or a failure detector) has marked them down, how fresh each
// one is, and how many routed queries each is currently serving. It is
// the router's candidate source and the observability surface for
// per-replica health.
type Membership struct {
	m *Metrics

	mu      sync.RWMutex
	members map[string]*member
	order   []*member // sorted by ID: deterministic candidate iteration
}

// member pairs a replica with its membership-scoped state. Load is
// tracked here, not on the replica, because it is a property of routing
// (queries this cluster sent there), not of the replica itself.
type member struct {
	r    Replica
	load atomic.Int64
	down atomic.Bool
	// linkErr holds the replication link's terminal error text ("" while
	// healthy), reported by whoever drives the fan-out. It rides in
	// Status so /varz shows not just that a replica is stale but why its
	// feed stopped.
	linkErr atomic.Value // string
}

func (m *member) alive() bool { return !m.down.Load() && m.r.Healthy() }

// Status is one replica's row in a membership snapshot.
type Status struct {
	ID        string
	VisibleTS int64
	PrimaryTS int64
	ReplayLag int64 // PrimaryTS - VisibleTS, clamped at 0
	Healthy   bool  // the replica's own report
	Down      bool  // the membership-level override
	Load      int64 // routed queries currently admitted and not yet done
	// LinkErr is the replica's replication-link terminal error, empty
	// while the link is live (or when nothing reports link state).
	LinkErr string
}

// NewMembership returns an empty roster reporting into m (cluster
// metrics registered in metrics.Default when nil).
func NewMembership(m *Metrics) *Membership {
	if m == nil {
		m = NewMetrics(nil)
	}
	return &Membership{m: m, members: make(map[string]*member)}
}

// Add registers a replica. Duplicate IDs are an error: identity is the
// join key between routing decisions, per-peer metrics and fan-out links.
func (ms *Membership) Add(r Replica) error {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	id := r.ID()
	if _, ok := ms.members[id]; ok {
		return fmt.Errorf("cluster: duplicate replica %q", id)
	}
	m := &member{r: r}
	ms.members[id] = m
	ms.order = append(ms.order, m)
	sort.Slice(ms.order, func(i, j int) bool { return ms.order[i].r.ID() < ms.order[j].r.ID() })
	return nil
}

// Remove drops a replica from the roster. In-flight admissions against
// it are unaffected (snapshots stay valid); it just stops receiving new
// queries.
func (ms *Membership) Remove(id string) bool {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	if _, ok := ms.members[id]; !ok {
		return false
	}
	delete(ms.members, id)
	for i, m := range ms.order {
		if m.r.ID() == id {
			ms.order = append(ms.order[:i], ms.order[i+1:]...)
			break
		}
	}
	return true
}

// SetDown marks a replica administratively down (true) or back up
// (false) without removing it: the failure-detector hook. A down replica
// is skipped by routing even if it still reports healthy.
func (ms *Membership) SetDown(id string, down bool) bool {
	ms.mu.RLock()
	m, ok := ms.members[id]
	ms.mu.RUnlock()
	if ok {
		m.down.Store(down)
	}
	return ok
}

// SetLinkErr records a replica's replication-link terminal error (nil
// clears it). Fan-out drivers call it when a peer's sender gives up, so
// membership snapshots can say why a replica stopped receiving epochs.
func (ms *Membership) SetLinkErr(id string, err error) bool {
	ms.mu.RLock()
	m, ok := ms.members[id]
	ms.mu.RUnlock()
	if ok {
		s := ""
		if err != nil {
			s = err.Error()
		}
		m.linkErr.Store(s)
	}
	return ok
}

// Get returns the replica registered under id.
func (ms *Membership) Get(id string) (Replica, bool) {
	ms.mu.RLock()
	defer ms.mu.RUnlock()
	m, ok := ms.members[id]
	if !ok {
		return nil, false
	}
	return m.r, true
}

// Size returns the roster size (live or not).
func (ms *Membership) Size() int {
	ms.mu.RLock()
	defer ms.mu.RUnlock()
	return len(ms.members)
}

// Load returns the current routed-query load of one replica.
func (ms *Membership) Load(id string) int64 {
	ms.mu.RLock()
	defer ms.mu.RUnlock()
	if m, ok := ms.members[id]; ok {
		return m.load.Load()
	}
	return 0
}

// alive returns the routable members in ID order. The slice is freshly
// allocated; callers may not mutate members through it beyond load
// accounting.
func (ms *Membership) alive() []*member {
	ms.mu.RLock()
	defer ms.mu.RUnlock()
	out := make([]*member, 0, len(ms.order))
	for _, m := range ms.order {
		if m.alive() {
			out = append(out, m)
		}
	}
	return out
}

// Snapshot reports every member's freshness, health and load, sorted by
// ID, and refreshes the cluster_replicas_live gauge.
func (ms *Membership) Snapshot() []Status {
	ms.mu.RLock()
	order := append([]*member(nil), ms.order...)
	ms.mu.RUnlock()
	out := make([]Status, 0, len(order))
	live := 0
	for _, m := range order {
		st := Status{
			ID:        m.r.ID(),
			VisibleTS: m.r.VisibleTS(),
			PrimaryTS: m.r.PrimaryTS(),
			Healthy:   m.r.Healthy(),
			Down:      m.down.Load(),
			Load:      m.load.Load(),
		}
		if le, _ := m.linkErr.Load().(string); le != "" {
			st.LinkErr = le
		}
		if lag := st.PrimaryTS - st.VisibleTS; lag > 0 {
			st.ReplayLag = lag
		}
		if st.Healthy && !st.Down {
			live++
		}
		out = append(out, st)
	}
	ms.m.ReplicasLive.Set(float64(live))
	return out
}
