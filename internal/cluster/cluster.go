// Package cluster generalizes the one-primary/one-backup replication
// pair into a multi-replica topology. It has three parts:
//
//   - Fan-out shipping (Fanout): one epoch stream feeding N downstream
//     replicas through independent ship.Senders — per-peer cursors,
//     windows and reconnect state, so a slow or dead replica never
//     stalls its siblings. A Relay lets a replica re-ship the stream it
//     applies, turning the star into a tree.
//
//   - Membership: the roster of replicas with per-replica health
//     (visible watermark, primary watermark, replay lag — the node's
//     PrimaryTS/ReplayLag signals) and in-flight query load.
//
//   - Freshness-aware routing (Router): given a query's snapshot
//     timestamp and table set, pick the least-loaded live replica whose
//     visible watermark already satisfies the timestamp (a zero-block
//     read), and only when none qualifies wait on the freshest replica —
//     the paper's Algorithm 3 admission, lifted from a per-node block to
//     a cluster routing input.
//
// The deterministic simulator (Simulator, SimReplica) scripts topologies
// of tens of replicas with skewed lag distributions so routing invariants
// are testable at scales CI hardware cannot run for real.
package cluster

import (
	"sync/atomic"
	"time"

	"aets/internal/htap"
	"aets/internal/query"
	"aets/internal/recovery"
	"aets/internal/wal"
)

// Replica is the routing view of one cluster member: identity, freshness
// watermarks, liveness, and bounded visibility waiting. *NodeReplica,
// *SupervisorReplica and *SimReplica satisfy it.
type Replica interface {
	// ID names the replica; unique within a Membership.
	ID() string
	// VisibleTS is the replica's global visible watermark: every commit
	// at or below it is readable (Algorithm 3's global timestamp).
	VisibleTS() int64
	// PrimaryTS is the newest primary commit watermark the replica has
	// seen; PrimaryTS-VisibleTS is its replay lag.
	PrimaryTS() int64
	// Healthy reports whether the replica can serve queries. Routing
	// skips unhealthy replicas.
	Healthy() bool
	// WaitVisible blocks until the replica's visible watermark reaches
	// qts for the given tables, returning true, or until the replica
	// stops being a viable target (unhealthy), returning false so the
	// router can fail over. Unlike the node-level Algorithm 3 wait it
	// must not block forever on a dead replica.
	WaitVisible(qts int64, tables []wal.TableID) bool
}

// Snapshotter is the query surface of a replica that can actually serve
// reads (real nodes; the simulator's replicas cannot). The router's
// Query path requires it.
type Snapshotter interface {
	Query(qts int64, tables ...wal.TableID) *query.Snapshot
}

// pollWait is the shared bounded-visibility wait: spin briefly, then back
// off exponentially to a 500µs cadence, rechecking liveness each round so
// a replica that dies mid-wait releases the waiter instead of hanging it.
// Conservative by design: it admits on the global watermark; the node's
// own per-group admission still applies inside the snapshot it serves.
func pollWait(qts int64, visible func() int64, healthy func() bool) bool {
	delay := time.Duration(0)
	for {
		if visible() >= qts {
			return true
		}
		if !healthy() {
			return false
		}
		if delay < 500*time.Microsecond {
			delay = delay*2 + time.Microsecond
		}
		time.Sleep(delay)
	}
}

// NodeReplica adapts an htap.Node to the Replica interface.
type NodeReplica struct {
	id string
	n  *htap.Node
}

// NewNodeReplica wraps a node under the given replica ID.
func NewNodeReplica(id string, n *htap.Node) *NodeReplica {
	return &NodeReplica{id: id, n: n}
}

// ID implements Replica.
func (r *NodeReplica) ID() string { return r.id }

// Node returns the wrapped node.
func (r *NodeReplica) Node() *htap.Node { return r.n }

// VisibleTS implements Replica.
func (r *NodeReplica) VisibleTS() int64 { return r.n.VisibleTS() }

// PrimaryTS implements Replica.
func (r *NodeReplica) PrimaryTS() int64 { return r.n.PrimaryTS() }

// Healthy implements Replica: a node is routable until replay fails
// fatally.
func (r *NodeReplica) Healthy() bool { return r.n.Err() == nil }

// WaitVisible implements Replica with a bounded poll over the node's
// global watermark.
func (r *NodeReplica) WaitVisible(qts int64, tables []wal.TableID) bool {
	return pollWait(qts, r.n.VisibleTS, r.Healthy)
}

// Query implements Snapshotter.
func (r *NodeReplica) Query(qts int64, tables ...wal.TableID) *query.Snapshot {
	return r.n.Query(qts, tables...)
}

// SupervisorReplica adapts a recovery.Supervisor — a crash-recovering
// replica whose inner node is rebuilt across failures — to the Replica
// interface. Swap supports processes that replace the supervisor
// wholesale (a hard restart restoring from spool + checkpoint): the
// membership entry survives, only the backing supervisor changes.
type SupervisorReplica struct {
	id  string
	sup atomic.Pointer[recovery.Supervisor]
}

// NewSupervisorReplica wraps a supervisor under the given replica ID.
func NewSupervisorReplica(id string, sup *recovery.Supervisor) *SupervisorReplica {
	r := &SupervisorReplica{id: id}
	r.sup.Store(sup)
	return r
}

// Swap replaces the backing supervisor after a restart.
func (r *SupervisorReplica) Swap(sup *recovery.Supervisor) { r.sup.Store(sup) }

// Supervisor returns the current backing supervisor.
func (r *SupervisorReplica) Supervisor() *recovery.Supervisor { return r.sup.Load() }

// ID implements Replica.
func (r *SupervisorReplica) ID() string { return r.id }

// VisibleTS implements Replica (0 while the supervisor has no live node,
// e.g. mid-rebuild).
func (r *SupervisorReplica) VisibleTS() int64 {
	if n := r.sup.Load().Node(); n != nil {
		return n.VisibleTS()
	}
	return 0
}

// PrimaryTS implements Replica.
func (r *SupervisorReplica) PrimaryTS() int64 {
	if n := r.sup.Load().Node(); n != nil {
		return n.PrimaryTS()
	}
	return 0
}

// Healthy implements Replica: routable while the supervisor has a live
// node and has not exhausted its retry budget. Degraded (quarantined
// epochs) still serves — same policy as /healthz.
func (r *SupervisorReplica) Healthy() bool {
	sup := r.sup.Load()
	return sup.State() != recovery.StateFatal && sup.Node() != nil
}

// WaitVisible implements Replica with a bounded poll.
func (r *SupervisorReplica) WaitVisible(qts int64, tables []wal.TableID) bool {
	return pollWait(qts, r.VisibleTS, r.Healthy)
}

// Query implements Snapshotter. It must only be called after a
// successful admission (the router guarantees the node exists and the
// watermark covers qts).
func (r *SupervisorReplica) Query(qts int64, tables ...wal.TableID) *query.Snapshot {
	return r.sup.Load().Node().Query(qts, tables...)
}
