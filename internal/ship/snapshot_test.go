// End-to-end tests of wire-level snapshot catch-up and anti-entropy:
// a sender with a snapshot source re-basing receivers whose cursors it
// cannot serve, digest mismatches triggering repair, and torn transfers
// never leaving partial state behind.
package ship_test

import (
	"testing"
	"time"

	"aets/internal/htap"
	"aets/internal/memtable"
	"aets/internal/metrics"
	"aets/internal/ship"
)

// waitCounter polls a registry counter until it reaches want.
func waitCounter(t *testing.T, reg *metrics.Registry, name string, want int64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if reg.Counter(name).Load() >= want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("counter %s never reached %d (at %d)", name, want, reg.Counter(name).Load())
}

// TestSnapshotCatchupColdGap: the mirror node applied every epoch but
// the sender is only handed the tail of the stream (a shed backlog).
// The receiver's cursor (0) is unservable, so the link must re-base it
// with a snapshot and then stream the tail — converging to the full
// state with zero operator action.
func TestSnapshotCatchupColdGap(t *testing.T) {
	encs := tpccEncoded(4000, 128)
	mirror := directNode(t, encs)
	defer mirror.Close()

	reg := metrics.NewRegistry()
	host, err := htap.NewNodeHost(htap.KindAETS, tpccPlan(), htap.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer host.Close()
	rm := ship.NewMetrics(reg)
	rcv, err := host.ShipReceiver(ship.ReceiverConfig{Schema: tpccSchema(), Metrics: rm})
	if err != nil {
		t.Fatal(err)
	}
	ln := listen(t)
	done, _ := serveLoop(ln, rcv)

	s := mustSender(t, ship.SenderConfig{
		Dial:        dialer(ln.Addr().String()),
		Schema:      tpccSchema(),
		Window:      8,
		MaxAttempts: 5,
		Metrics:     ship.NewMetrics(metrics.NewRegistry()),
		Snapshot:    &htap.NodeSnapshotSource{N: mirror},
	})
	// Only the tail ships as epochs; everything before it must arrive
	// via the snapshot.
	tail := encs[len(encs)/2:]
	for i := range tail {
		if err := s.Send(&tail[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	waitDone(t, done, "receiver")

	if st := s.Stats(); st.Snapshots < 1 {
		t.Fatalf("sender streamed %d snapshots, want >= 1", st.Snapshots)
	}
	if st := rcv.Stats(); st.SnapshotsRestored < 1 {
		t.Fatalf("receiver restored %d snapshots, want >= 1", st.SnapshotsRestored)
	}
	if got := reg.Counter("cluster_snapshot_restored_total").Load(); got < 1 {
		t.Fatalf("cluster_snapshot_restored_total = %d, want >= 1", got)
	}
	assertSameState(t, host.Node(), mirror)
}

// TestSnapshotRequiresNegotiation: the same cold gap against a
// receiver that cannot restore snapshots (plain node applier) keeps
// the classic terminal behavior — the sender gives up rather than
// silently skipping epochs.
func TestSnapshotRequiresNegotiation(t *testing.T) {
	encs := tpccEncoded(1500, 128)
	mirror := directNode(t, encs)
	defer mirror.Close()

	backup := newNode(t)
	defer backup.Close()
	rcv := mustShipReceiver(t, backup, ship.ReceiverConfig{
		Schema: tpccSchema(), Metrics: ship.NewMetrics(metrics.NewRegistry())})
	ln := listen(t)
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			_, _ = rcv.Serve(conn)
		}
	}()

	s := mustSender(t, ship.SenderConfig{
		Dial:        dialer(ln.Addr().String()),
		Schema:      tpccSchema(),
		Window:      4,
		MaxAttempts: 2,
		Metrics:     ship.NewMetrics(metrics.NewRegistry()),
		Snapshot:    &htap.NodeSnapshotSource{N: mirror},
	})
	defer s.Close()
	tail := encs[len(encs)/2:]
	var sendErr error
	for i := range tail {
		if sendErr = s.Send(&tail[i]); sendErr != nil {
			break
		}
	}
	if sendErr == nil {
		sendErr = s.Close()
	}
	if sendErr == nil {
		t.Fatal("gap against a snapshot-incapable receiver must stay terminal")
	}
	if st := s.Stats(); st.Snapshots != 0 {
		t.Fatalf("sender streamed %d snapshots without negotiation", st.Snapshots)
	}
}

// TestDigestMismatchTriggersSnapshotRepair: after a clean stream, an
// injected at-rest bit flip on the receiver makes the next DIGEST
// frame mismatch; the receiver requests repair on its next handshake
// and the sender re-bases it with a snapshot. The flip is healed.
func TestDigestMismatchTriggersSnapshotRepair(t *testing.T) {
	encs := tpccEncoded(3000, 128)
	mirror := newNode(t)
	defer mirror.Close()

	reg := metrics.NewRegistry()
	host, err := htap.NewNodeHost(htap.KindAETS, tpccPlan(), htap.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer host.Close()
	rcv, err := host.ShipReceiver(ship.ReceiverConfig{Schema: tpccSchema(), Metrics: ship.NewMetrics(reg)})
	if err != nil {
		t.Fatal(err)
	}
	ln := listen(t)
	done, _ := serveLoop(ln, rcv)

	sreg := metrics.NewRegistry()
	s := mustSender(t, ship.SenderConfig{
		Dial:        dialer(ln.Addr().String()),
		Schema:      tpccSchema(),
		Window:      8,
		MaxAttempts: 8,
		Metrics:     ship.NewMetrics(sreg),
		Snapshot:    &htap.NodeSnapshotSource{N: mirror},
	})
	for i := range encs {
		if err := mirror.Feed(&encs[i]); err != nil {
			t.Fatal(err)
		}
		if err := s.Send(&encs[i]); err != nil {
			t.Fatal(err)
		}
	}

	// A matching digest verifies cleanly once both ends align.
	seq, ts, dg := mirror.AntiEntropyDigest()
	verified := false
	for i := 0; i < 2000 && !verified; i++ {
		verified = s.SendDigest(seq, ts, dg)
		time.Sleep(2 * time.Millisecond)
	}
	if !verified {
		t.Fatal("digest never became sendable (window not draining?)")
	}
	waitCounter(t, reg, "ship_digests_verified_total", 1)

	// Inject an at-rest bit flip into the replica's committed state.
	host.Node().Drain()
	flipRandomColumnByte(t, host.Node())

	// The next digest catches it: the verify kills the connection and
	// the receiver flags itself for repair.
	if !s.SendDigest(seq, ts, dg) {
		t.Fatal("mismatching digest was not sent")
	}
	waitCounter(t, reg, "cluster_digest_mismatch_total", 1)

	// Reconnect: the handshake carries the repair request, the sender
	// streams a snapshot, the flip is healed.
	deadline := time.Now().Add(30 * time.Second)
	for reg.Counter("cluster_snapshot_restored_total").Load() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("snapshot repair never landed")
		}
		_ = s.Connect()
		time.Sleep(10 * time.Millisecond)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	waitDone(t, done, "receiver")
	assertSameState(t, host.Node(), mirror)
	if got := sreg.Counter("ship_digests_sent_total").Load(); got < 2 {
		t.Fatalf("ship_digests_sent_total = %d, want >= 2", got)
	}
}

// flipRandomColumnByte mutates one committed column value in place — a
// simulated at-rest corruption invisible to every wire CRC. The caller
// must have drained replay first.
func flipRandomColumnByte(t *testing.T, n *htap.Node) {
	t.Helper()
	mt := n.Memtable()
	for _, id := range mt.Tables() {
		flipped := false
		mt.Table(id).ScanAny(0, ^uint64(0), func(_ uint64, rec *memtable.Record) bool {
			v := rec.Latest()
			if v == nil || v.Deleted || len(v.Columns) == 0 || len(v.Columns[0].Value) == 0 {
				return true
			}
			v.Columns[0].Value[0] ^= 0x01
			flipped = true
			return false
		})
		if flipped {
			return
		}
	}
	t.Fatal("no committed column value to corrupt")
}
