package ship

import (
	"compress/flate"
	"math/bits"
	"time"

	"aets/internal/epoch"
)

// DefaultCompressThreshold is the smallest epoch buf, in bytes, a
// sender compresses by default. Below it the flate stream overhead and
// CPU outweigh the savings.
const DefaultCompressThreshold = 512

// epochCompressor builds compressed EPOCH payloads, reusing one flate
// writer and one output buffer across frames. Not safe for concurrent
// use; the Sender guards it with its mutex.
type epochCompressor struct {
	fw *flate.Writer
	sw sliceWriter
}

type sliceWriter struct{ b []byte }

func (s *sliceWriter) Write(p []byte) (int, error) {
	s.b = append(s.b, p...)
	return len(p), nil
}

// payload returns the compressed EPOCH payload for enc — the clear
// 36-byte epoch header followed by flate(enc.Buf) — or nil when
// compression fails to shrink the payload (incompressible buf), in
// which case the caller ships the raw encoding. The returned slice is
// reused by the next call: frame-encode it before calling again.
//
// flate.BestSpeed is deliberate: WAL entry streams are highly
// repetitive (shared key prefixes, monotone LSNs), so the fast level
// already captures most of the win at a fraction of the CPU.
func (c *epochCompressor) payload(enc *epoch.Encoded) []byte {
	c.sw.b = appendEpochHdr(c.sw.b[:0], enc)
	if c.fw == nil {
		c.fw, _ = flate.NewWriter(&c.sw, flate.BestSpeed)
	} else {
		c.fw.Reset(&c.sw)
	}
	if _, err := c.fw.Write(enc.Buf); err != nil {
		return nil
	}
	if err := c.fw.Close(); err != nil {
		return nil
	}
	if len(c.sw.b) >= epochHdrSize+len(enc.Buf) {
		return nil
	}
	return c.sw.b
}

// Backoff returns the exponential reconnect delay base<<retry clamped
// to max, saturating instead of overflowing: at high retry counts the
// naive shift wraps through int64 and can land on a small positive
// value that slips past a "d > max" clamp, turning backoff into a hot
// reconnect loop. Callers add their own jitter.
func Backoff(base, max time.Duration, retry int) time.Duration {
	if max <= 0 {
		max = base
	}
	if base <= 0 || base >= max {
		return max
	}
	if retry < 0 {
		retry = 0
	}
	// bits.Len64(max/base) is the number of doublings that stays ≤ max:
	// for retry below it, base<<retry ≤ base·(max/base) ≤ max, so the
	// shift cannot overflow; at or above it the result saturates.
	if uint(retry) >= uint(bits.Len64(uint64(max/base))) {
		return max
	}
	if d := base << uint(retry); d <= max {
		return d
	}
	return max
}
