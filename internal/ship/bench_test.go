package ship

import (
	"testing"

	"aets/internal/primary"
	"aets/internal/workload"
)

// BenchmarkShipCompress measures the sender-side compression path on
// real workload epoch streams: per-epoch cost of building a compressed
// EPOCH payload (clear 36-byte header + flate(buf)) plus framing it,
// exactly as the hot loop in Sender.Send does once CapFlate is
// negotiated. The wire/raw ratio is reported as ratio_wire/raw so
// bench-json archives the compression win next to the throughput — the
// numbers behind the EXPERIMENTS.md bytes-on-wire table.
func BenchmarkShipCompress(b *testing.B) {
	workloads := []struct {
		name string
		gen  workload.Generator
	}{
		{"tpcc", workload.NewTPCC(2)},
		{"bustracker", workload.NewBusTracker()},
	}
	for _, w := range workloads {
		b.Run(w.name, func(b *testing.B) {
			encs := primary.New(w.gen, 42).GenerateEncoded(4000, 128)
			var rawBytes, wireBytes int64
			for i := range encs {
				rawBytes += int64(frameHdrSize + epochHdrSize + len(encs[i].Buf) + 4)
			}
			var comp epochCompressor
			frame := make([]byte, 0, 64<<10)
			b.SetBytes(rawBytes)
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				wireBytes = 0
				for i := range encs {
					enc := &encs[i]
					if payload := comp.payload(enc); payload != nil && len(enc.Buf) >= DefaultCompressThreshold {
						frame = AppendFrameFlags(frame[:0], KindEpoch, FlagCompressed, payload)
					} else {
						frame = AppendFrame(frame[:0], KindEpoch, EncodeEpoch(enc))
					}
					wireBytes += int64(len(frame))
				}
			}
			b.ReportMetric(float64(wireBytes)/float64(rawBytes), "ratio_wire/raw")
			if wireBytes >= rawBytes {
				b.Fatalf("%s stream did not compress: wire %d >= raw %d", w.name, wireBytes, rawBytes)
			}
		})
	}
}

// BenchmarkShipEncodeRaw is the uncompressed baseline over the same
// TPC-C stream: header append + frame + CRC with no flate, i.e. what a
// v1 peer costs per epoch. Diffing against BenchmarkShipCompress/tpcc
// shows the CPU price paid for the wire-byte win.
func BenchmarkShipEncodeRaw(b *testing.B) {
	encs := primary.New(workload.NewTPCC(2), 42).GenerateEncoded(4000, 128)
	var rawBytes int64
	for i := range encs {
		rawBytes += int64(frameHdrSize + epochHdrSize + len(encs[i].Buf) + 4)
	}
	frame := make([]byte, 0, 64<<10)
	b.SetBytes(rawBytes)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		for i := range encs {
			frame = AppendFrame(frame[:0], KindEpoch, EncodeEpoch(&encs[i]))
		}
	}
	_ = frame
}
