package ship

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"aets/internal/epoch"
)

// Applier consumes the replicated stream on the backup. *htap.Node
// satisfies it.
type Applier interface {
	// Feed applies one epoch; the receiver guarantees strictly
	// sequential, gap-free, duplicate-free delivery. An error (the
	// applier was stopped) terminates the connection.
	Feed(*epoch.Encoded) error
	// Heartbeat advances visibility on an idle stream (the paper's
	// dummy-log epoch) without consuming an epoch sequence number.
	Heartbeat(ts int64) error
}

// FrameApplier is an optional Applier extension for consumers that
// persist the stream (the recovery supervisor's spool, relay hops):
// the receiver hands over the wire frame alongside the decoded epoch,
// so a compressed frame can be stored as received instead of being
// inflated and re-deflated.
type FrameApplier interface {
	Applier
	// FeedFrame applies one epoch, also supplying the raw EPOCH frame
	// payload and its header flags. payload is freshly allocated per
	// frame and owned by the callee after the call; for uncompressed
	// frames enc.Buf aliases payload.
	FeedFrame(flags byte, payload []byte, enc *epoch.Encoded) error
}

// ReceiverConfig configures the backup side of a replication link.
type ReceiverConfig struct {
	// Schema is the workload schema hash the sender must present.
	Schema uint64
	// Resume is the initial cursor: the next epoch sequence expected.
	// A backup restored from a checkpoint passes meta.LastEpochSeq+1
	// (htap.Node.NextSeq does this); a fresh backup passes 0.
	Resume uint64
	// Applier receives the ordered epochs. Required.
	Applier Applier
	// AckEvery batches cumulative acks: one every N applied epochs. The
	// receiver additionally acks whenever its input buffer drains, so a
	// blocked sender is never starved of the ack it waits for.
	// Default 1.
	AckEvery int
	// Drain, when set, is called before the final ack of a clean
	// end-of-stream — the hook where the backup quiesces replay and cuts
	// its checkpoint, making the resume cursor durable.
	Drain func() error
	// Metrics receives the duplicate counter; nil registers the default
	// names in metrics.Default.
	Metrics *Metrics
	// Compress advertises CapFlate in v2 WELCOMEs, permitting senders
	// that also advertise it to ship compressed EPOCH frames.
	Compress bool
	// MaxVersion caps the protocol version accepted from senders;
	// 0 means the highest this build speaks. Set 1 to emulate a legacy
	// v1 receiver (mixed-version tests): v2 HELLOs are rejected with
	// ErrVersion and the sender falls back to v1.
	MaxVersion byte
	// NeedSnapshot, when set, is consulted at every handshake alongside
	// the receiver's own repair flag: returning true makes the WELCOME
	// request an immediate snapshot. It lets a durable component (the
	// recovery supervisor) carry a detected-divergence flag across
	// receiver lifetimes, so a repair request survives process
	// restarts between detection and the next handshake.
	NeedSnapshot func() bool
}

// ReceiverStats is a point-in-time view of a receiver's progress.
type ReceiverStats struct {
	Cursor            uint64 // next epoch sequence expected
	Txns              int64  // transactions applied
	Entries           int64  // DML entries applied
	Duplicates        int64  // epochs dropped as already applied
	SnapshotsRestored int64  // catch-up snapshots validated and installed
}

// Receiver is the backup side of a replication link: it answers the
// resume handshake with its cursor, validates and orders incoming
// epochs (dropping redelivered ones, rejecting gaps), feeds them to the
// Applier and returns cumulative acknowledgements. One Receiver serves
// any number of consecutive sender connections; the cursor carries
// across them.
type Receiver struct {
	cfg ReceiverConfig
	m   *Metrics

	serveMu sync.Mutex // one active connection at a time

	mu       sync.Mutex
	cursor   uint64
	txns     int64
	entries  int64
	dups     int64
	restored int64
	// needSnap records a digest mismatch awaiting repair: the next
	// WELCOME to a snapshot-capable sender carries ReqSnapshot, and a
	// successful restore clears it.
	needSnap bool
}

// NewReceiver returns a Receiver starting at cfg.Resume. A nil Applier
// is an error, not a panic, so embedding programs surface wiring
// mistakes through their normal error paths.
func NewReceiver(cfg ReceiverConfig) (*Receiver, error) {
	if cfg.Applier == nil {
		return nil, fmt.Errorf("ship: ReceiverConfig.Applier is required")
	}
	if cfg.AckEvery <= 0 {
		cfg.AckEvery = 1
	}
	if cfg.Metrics == nil {
		cfg.Metrics = NewMetrics(nil)
	}
	if cfg.MaxVersion == 0 {
		cfg.MaxVersion = maxKnownVersion
	}
	return &Receiver{cfg: cfg, m: cfg.Metrics, cursor: cfg.Resume}, nil
}

// capsOffered is the capability bitset this receiver advertises in v2
// WELCOMEs.
func (r *Receiver) capsOffered() uint64 {
	var caps uint64
	if r.cfg.Compress && r.cfg.MaxVersion >= Version2 {
		caps |= CapFlate
	}
	// Snapshot catch-up is offered exactly when the applier can restore
	// one; advertising it without the ability would strand the link
	// mid-stream. Wrapping appliers refine the static check at runtime
	// via SnapshotCapable.
	if _, ok := r.cfg.Applier.(SnapshotApplier); ok && r.cfg.MaxVersion >= Version2 {
		if c, ok := r.cfg.Applier.(SnapshotCapable); !ok || c.SnapshotCapable() {
			caps |= CapSnapshot
		}
	}
	return caps
}

// Cursor returns the next epoch sequence the receiver expects.
func (r *Receiver) Cursor() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cursor
}

// Stats returns a snapshot of the receiver's progress.
func (r *Receiver) Stats() ReceiverStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return ReceiverStats{Cursor: r.cursor, Txns: r.txns, Entries: r.entries,
		Duplicates: r.dups, SnapshotsRestored: r.restored}
}

// Serve handles one sender connection until it ends. done is true on a
// clean end-of-stream (EOS); false with a nil error means the
// connection dropped at a frame boundary and the sender may reconnect.
// Overlapping connections serialize: a second Serve blocks until the
// first returns.
func (r *Receiver) Serve(conn net.Conn) (done bool, err error) {
	r.serveMu.Lock()
	defer r.serveMu.Unlock()
	defer conn.Close()
	r.m.Connected.Set(1)
	defer r.m.Connected.Set(0)

	br := bufio.NewReaderSize(conn, 1<<20)
	bw := bufio.NewWriterSize(conn, 1<<12)

	ver, kind, _, payload, err := ReadFrameFlags(br)
	if err != nil {
		return false, fmt.Errorf("ship: handshake: %w", err)
	}
	if ver > r.cfg.MaxVersion {
		// A v1-pinned receiver drops the link here; the sender's v1
		// fallback redial carries the stream.
		return false, fmt.Errorf("ship: handshake: %w: %d", ErrVersion, ver)
	}
	if kind != KindHello {
		return false, fmt.Errorf("%w: expected HELLO, got kind %d", ErrCorrupt, kind)
	}
	var schema uint64
	var senderCaps uint64
	if ver >= Version2 {
		schema, senderCaps, err = parseHello2(payload)
	} else {
		schema, err = parseHello(payload)
	}
	if err != nil {
		return false, err
	}
	// Capabilities are the per-connection intersection of what both
	// ends advertise; a v1 sender negotiates none.
	negotiated := senderCaps & r.capsOffered()
	// Always answer with our schema and cursor; on a mismatch the sender
	// reads the WELCOME, sees the foreign schema, and aborts permanently
	// instead of retrying a doomed link. The reply speaks the HELLO's
	// version, so a v1 sender sees the 16-byte WELCOME it expects and a
	// v2 sender without CapSnapshot the 24-byte one.
	if err := r.welcome(bw, ver, senderCaps); err != nil {
		return false, err
	}
	if schema != r.cfg.Schema {
		return false, fmt.Errorf("%w: sender %016x, receiver %016x", ErrSchemaMismatch, schema, r.cfg.Schema)
	}

	// A failed ack write means the sender is gone or going — but frames
	// already received (possibly including EOS) are still worth applying:
	// they are durable here, and anything the sender never saw acked is
	// redelivered after reconnect and deduped. Park the first ack error
	// and keep draining the read side.
	var ackErr error
	ack := func() {
		if ackErr == nil {
			ackErr = r.sendAck(bw)
		}
	}

	sinceAck := 0
	for {
		ver, kind, flags, payload, err := ReadFrameFlags(br)
		if err == io.EOF {
			// Dropped between frames; the sender may resume. Surface a
			// parked ack failure so the caller logs why the link died.
			return false, ackErr
		}
		if err != nil {
			return false, err
		}
		if ver > r.cfg.MaxVersion {
			return false, fmt.Errorf("%w: %d", ErrVersion, ver)
		}
		switch kind {
		case KindEpoch:
			if flags&FlagCompressed != 0 && negotiated&CapFlate == 0 {
				return false, fmt.Errorf("%w: compressed epoch without negotiated capability", ErrCorrupt)
			}
			enc, err := DecodeEpochFrame(flags, payload)
			if err != nil {
				return false, err
			}
			r.mu.Lock()
			switch {
			case enc.Seq < r.cursor:
				// Redelivered after a mid-window reconnect: drop, but ack so
				// the sender retires it.
				r.dups++
				r.m.Duplicates.Inc()
				r.mu.Unlock()
				ack()
				continue
			case enc.Seq > r.cursor:
				want := r.cursor
				r.mu.Unlock()
				return false, fmt.Errorf("%w: got epoch %d, want %d", ErrGap, enc.Seq, want)
			}
			r.mu.Unlock()
			// Apply before advancing: a failed Feed must leave the cursor
			// pointing at this epoch, so the next handshake redelivers it
			// instead of telling the sender to skip an epoch that was never
			// applied. Serve connections serialize on serveMu, so nothing
			// else can race the cursor between the check and the advance.
			// A FrameApplier additionally gets the wire frame, so a spool
			// can persist a compressed epoch as received.
			var ferr error
			if fa, ok := r.cfg.Applier.(FrameApplier); ok {
				ferr = fa.FeedFrame(flags, payload, enc)
			} else {
				ferr = r.cfg.Applier.Feed(enc)
			}
			if ferr != nil {
				return false, fmt.Errorf("ship: applier: %w", ferr)
			}
			r.mu.Lock()
			r.cursor = enc.Seq + 1
			r.txns += int64(enc.TxnCount)
			r.entries += int64(enc.EntryCount)
			r.mu.Unlock()
			sinceAck++
			if sinceAck >= r.cfg.AckEvery || br.Buffered() == 0 {
				ack()
				sinceAck = 0
			}
		case KindHeartbeat:
			ts, err := parseHeartbeat(payload)
			if err != nil {
				return false, err
			}
			if err := r.cfg.Applier.Heartbeat(ts); err != nil {
				return false, fmt.Errorf("ship: applier: %w", err)
			}
			// Keep the sender's ack cursor and lag gauge fresh while idle.
			ack()
			sinceAck = 0
		case KindSnapBegin:
			if negotiated&CapSnapshot == 0 {
				return false, fmt.Errorf("%w: snapshot frame without negotiated capability", ErrCorrupt)
			}
			snapCursor, claim, err := parseSnapBegin(payload)
			if err != nil {
				return false, err
			}
			if err := r.restoreSnapshot(br, snapCursor, claim); err != nil {
				return false, err
			}
			ack()
			sinceAck = 0
		case KindSnapChunk, KindSnapEnd:
			// Chunks and trailers are consumed by the SNAPBEGIN handler's
			// stream reader; loose ones mean the sender lost its place.
			return false, fmt.Errorf("%w: snapshot frame kind %d outside a snapshot stream", ErrCorrupt, kind)
		case KindDigest:
			if negotiated&CapSnapshot == 0 {
				return false, fmt.Errorf("%w: digest frame without negotiated capability", ErrCorrupt)
			}
			seq, ts, digest, err := parseDigest(payload)
			if err != nil {
				return false, err
			}
			if err := r.verifyDigest(seq, ts, digest); err != nil {
				return false, err
			}
		case KindEOS:
			if r.cfg.Drain != nil {
				if err := r.cfg.Drain(); err != nil {
					return false, err
				}
			}
			// Best-effort final ack: the stream is complete and durable
			// locally whether or not the sender is still there to read it.
			_ = r.sendAck(bw)
			return true, nil
		default:
			return false, fmt.Errorf("%w: unexpected frame kind %d", ErrCorrupt, kind)
		}
	}
}

// restoreSnapshot consumes one SNAPBEGIN..SNAPEND sequence from br and
// installs it through the SnapshotApplier. The applier must read the
// stream through EOF — the stream reader returns EOF only after the
// SNAPEND byte count and CRC validate, so nothing installs from a torn
// or corrupt transfer. Any failure leaves the cursor (and, per the
// applier contract, the applier's prior state) unchanged: the link
// drops and the sender's next handshake restarts the transfer from
// scratch.
func (r *Receiver) restoreSnapshot(br *bufio.Reader, snapCursor, claim uint64) error {
	sr := newSnapReader(br, r.cfg.MaxVersion, claim)
	r.mu.Lock()
	cur, needSnap := r.cursor, r.needSnap
	r.mu.Unlock()
	if snapCursor < cur || (snapCursor == cur && !needSnap) {
		// Local state already covers the snapshot (the sender raced a
		// reconnect): discard the stream, keep what we have. An
		// equal-cursor snapshot installs only when this receiver flagged
		// itself for repair — that is exactly the anti-entropy case,
		// where the cursors agree but the state does not.
		return sr.drain()
	}
	sa, ok := r.cfg.Applier.(SnapshotApplier)
	if !ok {
		// Unreachable when capability negotiation is honest; a sender
		// that streams anyway loses the link.
		return ErrSnapshotUnsupported
	}
	size := int64(-1)
	if claim != 0 {
		size = int64(claim)
	}
	if err := sa.RestoreSnapshot(snapCursor, size, sr); err != nil {
		return fmt.Errorf("ship: snapshot restore: %w", err)
	}
	// Belt and suspenders for appliers that stopped reading early: the
	// stream only counts once the trailer validates.
	if err := sr.drain(); err != nil {
		return err
	}
	r.mu.Lock()
	r.cursor = snapCursor
	r.needSnap = false
	r.restored++
	r.mu.Unlock()
	r.m.SnapshotsRestored.Inc()
	return nil
}

// verifyDigest runs one anti-entropy comparison. Digests are only
// comparable when this receiver has applied exactly the epochs the
// digest covers; anything else (no verifier, digest raced a reconnect)
// is skipped, not failed — the next aligned digest still guards the
// stream. A mismatch marks the receiver for repair and drops the link;
// the next handshake's WELCOME requests the snapshot.
func (r *Receiver) verifyDigest(seq uint64, ts int64, digest uint64) error {
	da, ok := r.cfg.Applier.(DigestApplier)
	if !ok {
		return nil
	}
	r.mu.Lock()
	cur := r.cursor
	r.mu.Unlock()
	if cur != seq {
		return nil
	}
	if err := da.VerifyDigest(seq, ts, digest); err != nil {
		if errors.Is(err, ErrDigestMismatch) {
			r.m.DigestMismatches.Inc()
			r.mu.Lock()
			r.needSnap = true
			r.mu.Unlock()
		}
		return fmt.Errorf("ship: digest %d: %w", seq, err)
	}
	r.m.DigestsVerified.Inc()
	return nil
}

func (r *Receiver) sendAck(bw *bufio.Writer) error {
	r.mu.Lock()
	cur := r.cursor
	r.mu.Unlock()
	if err := WriteFrame(bw, KindAck, appendCursor(nil, cur)); err != nil {
		return err
	}
	return bw.Flush()
}

// welcome writes the WELCOME frame carrying schema and cursor, in the
// protocol version of the sender's HELLO (a v2 WELCOME additionally
// carries this receiver's capability bitset). A snapshot-capable
// sender paired with a snapshot-capable applier gets the 32-byte form
// whose request bits can ask for immediate repair; older senders never
// see it.
func (r *Receiver) welcome(bw *bufio.Writer, ver byte, senderCaps uint64) error {
	r.mu.Lock()
	cur := r.cursor
	need := r.needSnap
	r.mu.Unlock()
	if !need && r.cfg.NeedSnapshot != nil {
		need = r.cfg.NeedSnapshot()
	}
	caps := r.capsOffered()
	var err error
	switch {
	case ver >= Version2 && senderCaps&CapSnapshot != 0 && caps&CapSnapshot != 0:
		var req uint64
		if need {
			req |= ReqSnapshot
		}
		err = writeFrameV(bw, Version2, KindWelcome, 0, appendWelcome3(nil, r.cfg.Schema, cur, caps, req))
	case ver >= Version2:
		err = writeFrameV(bw, Version2, KindWelcome, 0, appendWelcome2(nil, r.cfg.Schema, cur, caps))
	default:
		err = WriteFrame(bw, KindWelcome, appendWelcome(nil, r.cfg.Schema, cur))
	}
	if err != nil {
		return err
	}
	return bw.Flush()
}
