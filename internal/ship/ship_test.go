// End-to-end tests of the replication transport: a real TCP listener, a
// Sender shipping TPC-C epochs and an htap.Node applying them, compared
// record-for-record against a directly fed node.
package ship_test

import (
	"bytes"
	"errors"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"aets/internal/epoch"
	"aets/internal/grouping"
	"aets/internal/htap"
	"aets/internal/metrics"
	"aets/internal/primary"
	"aets/internal/reference"
	"aets/internal/ship"
	"aets/internal/workload"
)

const testWarehouses = 4

func tpccEncoded(txns, epochSize int) []epoch.Encoded {
	p := primary.New(workload.NewTPCC(testWarehouses), 1)
	return p.GenerateEncoded(txns, epochSize)
}

func tpccPlan() *grouping.Plan {
	gen := workload.NewTPCC(testWarehouses)
	return grouping.Build(htap.TPCCRates(1000), workload.TableIDs(gen.Tables()),
		grouping.Options{Eps: 0.05, MinPts: 2})
}

func tpccSchema() uint64 {
	return ship.SchemaHash("tpcc", workload.TableIDs(workload.NewTPCC(testWarehouses).Tables()))
}

func newNode(t *testing.T) *htap.Node {
	t.Helper()
	n, err := htap.NewNode(htap.KindAETS, tpccPlan(), htap.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func mustSender(t *testing.T, cfg ship.SenderConfig) *ship.Sender {
	t.Helper()
	s, err := ship.NewSender(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustReceiver(t *testing.T, cfg ship.ReceiverConfig) *ship.Receiver {
	t.Helper()
	r, err := ship.NewReceiver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func mustShipReceiver(t *testing.T, node *htap.Node, cfg ship.ReceiverConfig) *ship.Receiver {
	t.Helper()
	r, err := node.ShipReceiver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// directNode replays the stream without any transport: the ground truth.
func directNode(t *testing.T, encs []epoch.Encoded) *htap.Node {
	t.Helper()
	n := newNode(t)
	for i := range encs {
		if err := n.Feed(&encs[i]); err != nil {
			t.Fatal(err)
		}
	}
	n.Drain()
	if err := n.Err(); err != nil {
		t.Fatal(err)
	}
	return n
}

func assertSameState(t *testing.T, got, want *htap.Node) {
	t.Helper()
	got.Drain()
	want.Drain()
	tables := workload.TableIDs(workload.NewTPCC(testWarehouses).Tables())
	if err := reference.Equal(want.Memtable(), got.Memtable(), tables); err != nil {
		t.Fatalf("backup state diverged: %v", err)
	}
}

// serveLoop accepts and serves connections until a clean end-of-stream,
// collecting per-connection errors (expected when faults cut the wire).
func serveLoop(ln net.Listener, rcv *ship.Receiver) (<-chan struct{}, *connErrs) {
	done := make(chan struct{})
	errs := &connErrs{}
	go func() {
		defer close(done)
		for {
			conn, err := ln.Accept()
			if err != nil {
				errs.add(err)
				return
			}
			finished, err := rcv.Serve(conn)
			if err != nil {
				errs.add(err)
			}
			if finished {
				return
			}
		}
	}()
	return done, errs
}

type connErrs struct {
	mu   sync.Mutex
	list []error
}

func (c *connErrs) add(err error) {
	c.mu.Lock()
	c.list = append(c.list, err)
	c.mu.Unlock()
}

func (c *connErrs) all() []error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]error(nil), c.list...)
}

func waitDone(t *testing.T, done <-chan struct{}, what string) {
	t.Helper()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatalf("%s: timeout", what)
	}
}

func listen(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return ln
}

func dialer(addr string) func() (net.Conn, error) {
	return func() (net.Conn, error) { return net.Dial("tcp", addr) }
}

func TestShipEndToEnd(t *testing.T) {
	encs := tpccEncoded(4096, 256)
	want := directNode(t, encs)
	defer want.Close()

	ln := listen(t)
	defer ln.Close()
	node := newNode(t)
	defer node.Close()
	reg := metrics.NewRegistry()
	rcv := mustShipReceiver(t, node, ship.ReceiverConfig{
		Schema:  tpccSchema(),
		Metrics: ship.NewMetrics(reg),
		Drain:   func() error { node.Drain(); return node.Err() },
	})
	done, errs := serveLoop(ln, rcv)

	s := mustSender(t, ship.SenderConfig{
		Dial:    dialer(ln.Addr().String()),
		Schema:  tpccSchema(),
		Window:  4,
		Metrics: ship.NewMetrics(reg),
	})
	for i := range encs {
		if err := s.Send(&encs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	waitDone(t, done, "serve loop")
	for _, err := range errs.all() {
		t.Fatalf("unexpected connection error: %v", err)
	}

	assertSameState(t, node, want)

	st := s.Stats()
	if st.Sent != int64(len(encs)) || st.Acked != int64(len(encs)) {
		t.Fatalf("sent %d acked %d, want %d each", st.Sent, st.Acked, len(encs))
	}
	if st.Inflight != 0 || st.AckCursor != uint64(len(encs)) {
		t.Fatalf("inflight %d cursor %d after close", st.Inflight, st.AckCursor)
	}
	if got := rcv.Stats(); got.Txns != 4096 || got.Duplicates != 0 {
		t.Fatalf("receiver stats %+v", got)
	}
	if snap := reg.Snapshot(); snap["ship_epochs_sent"] != float64(len(encs)) ||
		snap["ship_epochs_acked"] != float64(len(encs)) {
		t.Fatalf("registry snapshot %v", snap)
	}
}

func TestBackpressureBoundsInflightWindow(t *testing.T) {
	encs := tpccEncoded(2048, 128) // 16 epochs
	release := make(chan struct{})
	app := &blockingApplier{release: release}
	rcv := mustReceiver(t, ship.ReceiverConfig{
		Applier: app,
		Metrics: ship.NewMetrics(metrics.NewRegistry()),
	})
	ln := listen(t)
	defer ln.Close()
	done, errs := serveLoop(ln, rcv)

	const window = 2
	s := mustSender(t, ship.SenderConfig{
		Dial:    dialer(ln.Addr().String()),
		Schema:  0,
		Window:  window,
		Metrics: ship.NewMetrics(metrics.NewRegistry()),
	})
	var completed atomic.Int64
	sendDone := make(chan error, 1)
	go func() {
		for i := range encs {
			if err := s.Send(&encs[i]); err != nil {
				sendDone <- err
				return
			}
			completed.Add(1)
		}
		sendDone <- s.Close()
	}()

	// The applier blocks on the first epoch, so no acks flow: the sender
	// must stall with exactly `window` epochs outstanding rather than
	// buffering the whole stream.
	deadline := time.Now().Add(5 * time.Second)
	for completed.Load() < window && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(100 * time.Millisecond) // give a runaway sender time to overshoot
	if got := completed.Load(); got != window {
		t.Fatalf("sender completed %d sends while acks were blocked, want %d", got, window)
	}
	if st := s.Stats(); st.Inflight != window {
		t.Fatalf("inflight %d while blocked, want %d", st.Inflight, window)
	}

	close(release)
	if err := <-sendDone; err != nil {
		t.Fatal(err)
	}
	waitDone(t, done, "serve loop")
	for _, err := range errs.all() {
		t.Fatalf("unexpected connection error: %v", err)
	}
	if st := s.Stats(); st.Acked != int64(len(encs)) {
		t.Fatalf("acked %d, want %d", st.Acked, len(encs))
	}
	if got := app.fed.Load(); got != int64(len(encs)) {
		t.Fatalf("applier saw %d epochs, want %d", got, len(encs))
	}
}

type blockingApplier struct {
	release chan struct{}
	fed     atomic.Int64
}

func (a *blockingApplier) Feed(*epoch.Encoded) error {
	a.fed.Add(1)
	<-a.release
	return nil
}

func (a *blockingApplier) Heartbeat(int64) error { return nil }

func TestHeartbeatAdvancesIdleVisibility(t *testing.T) {
	ln := listen(t)
	defer ln.Close()
	node := newNode(t)
	defer node.Close()
	rcv := mustShipReceiver(t, node, ship.ReceiverConfig{
		Schema:  tpccSchema(),
		Metrics: ship.NewMetrics(metrics.NewRegistry()),
	})
	done, errs := serveLoop(ln, rcv)

	var ts atomic.Int64
	s := mustSender(t, ship.SenderConfig{
		Dial:           dialer(ln.Addr().String()),
		Schema:         tpccSchema(),
		HeartbeatEvery: 5 * time.Millisecond,
		HeartbeatTS:    func() int64 { return ts.Add(1000) },
		Metrics:        ship.NewMetrics(metrics.NewRegistry()),
	})
	if err := s.Connect(); err != nil {
		t.Fatal(err)
	}
	// No epochs at all: heartbeats alone must advance global_cmt_ts (the
	// paper's dummy-log mechanism for idle streams).
	deadline := time.Now().Add(10 * time.Second)
	for node.VisibleTS() < 3000 {
		if time.Now().After(deadline) {
			t.Fatalf("visible ts stuck at %d without epochs", node.VisibleTS())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	waitDone(t, done, "serve loop")
	for _, err := range errs.all() {
		t.Fatalf("unexpected connection error: %v", err)
	}
	if node.NextSeq() != 0 {
		t.Fatalf("heartbeats must not advance the resume cursor, got %d", node.NextSeq())
	}
}

func TestResumeFromCheckpointDedupes(t *testing.T) {
	encs := tpccEncoded(4096, 256) // 16 epochs
	want := directNode(t, encs)
	defer want.Close()

	// Phase 1: ship the first 9 epochs, checkpoint, discard the node.
	var ckpt bytes.Buffer
	{
		ln := listen(t)
		node := newNode(t)
		rcv := mustShipReceiver(t, node, ship.ReceiverConfig{
			Schema:  tpccSchema(),
			Metrics: ship.NewMetrics(metrics.NewRegistry()),
			Drain:   func() error { node.Drain(); return node.Err() },
		})
		done, errs := serveLoop(ln, rcv)
		s := mustSender(t, ship.SenderConfig{
			Dial:    dialer(ln.Addr().String()),
			Schema:  tpccSchema(),
			Metrics: ship.NewMetrics(metrics.NewRegistry()),
		})
		for i := 0; i < 9; i++ {
			if err := s.Send(&encs[i]); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		waitDone(t, done, "phase-1 serve loop")
		for _, err := range errs.all() {
			t.Fatalf("phase 1: %v", err)
		}
		if _, err := node.Checkpoint(&ckpt); err != nil {
			t.Fatal(err)
		}
		node.Close()
		ln.Close()
	}

	// Phase 2: restore, and let a sender that knows nothing about the
	// checkpoint replay the whole stream. The WELCOME cursor tells the
	// sender epochs 0–8 are already durable, so they are retired at Send
	// without touching the wire; only 9–15 are transmitted and applied.
	node, meta, err := htap.RestoreNode(&ckpt, htap.KindAETS, tpccPlan(), htap.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	if meta.LastEpochSeq != 8 || node.NextSeq() != 9 {
		t.Fatalf("restored cursor: meta %d, next %d", meta.LastEpochSeq, node.NextSeq())
	}
	ln := listen(t)
	defer ln.Close()
	reg := metrics.NewRegistry()
	rcv := mustShipReceiver(t, node, ship.ReceiverConfig{
		Schema:  tpccSchema(),
		Metrics: ship.NewMetrics(reg),
		Drain:   func() error { node.Drain(); return node.Err() },
	})
	done, errs := serveLoop(ln, rcv)
	s := mustSender(t, ship.SenderConfig{
		Dial:    dialer(ln.Addr().String()),
		Schema:  tpccSchema(),
		Window:  4,
		Metrics: ship.NewMetrics(reg),
	})
	for i := range encs {
		if err := s.Send(&encs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	waitDone(t, done, "phase-2 serve loop")
	for _, err := range errs.all() {
		t.Fatalf("phase 2: %v", err)
	}

	assertSameState(t, node, want)
	if st := rcv.Stats(); st.Duplicates != 0 || st.Cursor != uint64(len(encs)) {
		t.Fatalf("receiver stats %+v, want 0 duplicates, cursor %d", st, len(encs))
	}
	if st := s.Stats(); st.AckCursor != uint64(len(encs)) || st.Acked != int64(len(encs)) {
		t.Fatalf("sender stats %+v, want everything acked at cursor %d", st, len(encs))
	}
	if st := s.Stats(); st.Sent != int64(len(encs)-9) {
		t.Fatalf("sent %d epochs, want %d (0–8 trimmed by the resume handshake)", st.Sent, len(encs)-9)
	}
}

func TestSchemaMismatchIsPermanent(t *testing.T) {
	ln := listen(t)
	defer ln.Close()
	node := newNode(t)
	defer node.Close()
	rcv := mustShipReceiver(t, node, ship.ReceiverConfig{
		Schema:  tpccSchema(),
		Metrics: ship.NewMetrics(metrics.NewRegistry()),
	})
	errCh := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			errCh <- err
			return
		}
		_, err = rcv.Serve(conn)
		errCh <- err
	}()

	s := mustSender(t, ship.SenderConfig{
		Dial:        dialer(ln.Addr().String()),
		Schema:      tpccSchema() + 1,
		RetryBase:   time.Millisecond,
		MaxAttempts: 5,
		Metrics:     ship.NewMetrics(metrics.NewRegistry()),
	})
	if err := s.Connect(); !errors.Is(err, ship.ErrSchemaMismatch) {
		t.Fatalf("sender: got %v, want ErrSchemaMismatch", err)
	}
	select {
	case err := <-errCh:
		if !errors.Is(err, ship.ErrSchemaMismatch) {
			t.Fatalf("receiver: got %v, want ErrSchemaMismatch", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("receiver never finished")
	}
	s.Close()
}

func TestSenderGivesUpAfterMaxAttempts(t *testing.T) {
	ln := listen(t)
	addr := ln.Addr().String()
	ln.Close() // nothing listens here any more

	s := mustSender(t, ship.SenderConfig{
		Dial:        dialer(addr),
		RetryBase:   time.Millisecond,
		RetryMax:    2 * time.Millisecond,
		MaxAttempts: 3,
		Metrics:     ship.NewMetrics(metrics.NewRegistry()),
	})
	err := s.Connect()
	if err == nil || !strings.Contains(err.Error(), "after 3 attempts") {
		t.Fatalf("got %v, want failure after 3 attempts", err)
	}
	s.Close()
	encs := tpccEncoded(16, 16)
	if err := s.Send(&encs[0]); !errors.Is(err, ship.ErrClosed) {
		t.Fatalf("send after close: %v", err)
	}
}

// failOnceApplier injects a single Feed failure, then behaves like the
// real node.
type failOnceApplier struct {
	node   *htap.Node
	failed atomic.Bool
	feeds  atomic.Int64
}

func (a *failOnceApplier) Feed(enc *epoch.Encoded) error {
	a.feeds.Add(1)
	if a.failed.CompareAndSwap(false, true) {
		return errors.New("injected applier failure")
	}
	return a.node.Feed(enc)
}

func (a *failOnceApplier) Heartbeat(ts int64) error { return a.node.Heartbeat(ts) }

// TestFailedFeedDoesNotAdvanceCursor is the regression test for the
// cursor-before-Feed bug: when Feed fails, the cursor must still point at
// the failed epoch so the reconnect handshake redelivers it. Before the
// fix the cursor had already advanced, the WELCOME told the sender to
// skip the epoch, and it was silently lost.
func TestFailedFeedDoesNotAdvanceCursor(t *testing.T) {
	encs := tpccEncoded(1024, 128) // 8 epochs
	want := directNode(t, encs)
	defer want.Close()

	node := newNode(t)
	defer node.Close()
	app := &failOnceApplier{node: node}
	rcv := mustReceiver(t, ship.ReceiverConfig{
		Schema:  tpccSchema(),
		Applier: app,
		Metrics: ship.NewMetrics(metrics.NewRegistry()),
	})
	ln := listen(t)
	defer ln.Close()
	done, errs := serveLoop(ln, rcv)

	s := mustSender(t, ship.SenderConfig{
		Dial:      dialer(ln.Addr().String()),
		Schema:    tpccSchema(),
		Window:    4,
		RetryBase: time.Millisecond,
		Metrics:   ship.NewMetrics(metrics.NewRegistry()),
	})
	for i := range encs {
		if err := s.Send(&encs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	waitDone(t, done, "serve loop")

	// Exactly the injected failure, surfaced as a connection error.
	es := errs.all()
	if len(es) != 1 || !strings.Contains(es[0].Error(), "injected applier failure") {
		t.Fatalf("connection errors %v, want only the injected failure", es)
	}
	// The failed epoch must have been redelivered: every epoch applied
	// once, plus the one failed attempt.
	if got := app.feeds.Load(); got != int64(len(encs))+1 {
		t.Fatalf("applier saw %d feeds, want %d (all epochs + 1 failed attempt)", got, len(encs)+1)
	}
	if rcv.Cursor() != uint64(len(encs)) {
		t.Fatalf("cursor %d, want %d", rcv.Cursor(), len(encs))
	}
	// Stats count applied work only — the failed attempt must not inflate
	// the transaction total.
	if st := rcv.Stats(); st.Txns != 1024 {
		t.Fatalf("receiver counted %d txns, want 1024", st.Txns)
	}
	assertSameState(t, node, want)
}

func TestGapIsRejected(t *testing.T) {
	encs := tpccEncoded(1024, 128)
	ln := listen(t)
	defer ln.Close()
	node := newNode(t)
	defer node.Close()
	rcv := mustShipReceiver(t, node, ship.ReceiverConfig{
		Schema:  tpccSchema(),
		Metrics: ship.NewMetrics(metrics.NewRegistry()),
	})
	errCh := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			errCh <- err
			return
		}
		_, err = rcv.Serve(conn)
		errCh <- err
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	client := newRawClient(t, conn, tpccSchema())
	// Epoch 5 while the receiver expects 0: the stream has a hole and
	// must be refused, not silently applied.
	client.writeEpoch(&encs[5])
	select {
	case err := <-errCh:
		if !errors.Is(err, ship.ErrGap) {
			t.Fatalf("got %v, want ErrGap", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("receiver never rejected the gap")
	}
}

// TestFreshCheckpointRestoreResumesFromEpochZero covers the fed-ness
// round trip: checkpoint a node that was never fed, restore it, and ship
// the full stream. Before Meta.Fed, the restored node reported NextSeq 1
// (fed=true, lastSeq=0), the WELCOME cursor told the sender epoch 0 was
// already durable, and the stream permanently skipped it.
func TestFreshCheckpointRestoreResumesFromEpochZero(t *testing.T) {
	encs := tpccEncoded(1024, 128)
	want := directNode(t, encs)
	defer want.Close()

	var ckpt bytes.Buffer
	fresh := newNode(t)
	meta, err := fresh.Checkpoint(&ckpt)
	if err != nil {
		t.Fatal(err)
	}
	fresh.Close()
	if meta.Fed || meta.NextEpochSeq() != 0 {
		t.Fatalf("fresh checkpoint meta %+v, want Fed=false resume 0", meta)
	}

	node, gotMeta, err := htap.RestoreNode(&ckpt, htap.KindAETS, tpccPlan(), htap.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	if gotMeta.Fed {
		t.Fatalf("restored meta claims fed: %+v", gotMeta)
	}
	if got := node.NextSeq(); got != 0 {
		t.Fatalf("restored fresh node resume cursor %d, want 0 (epoch 0 would be skipped)", got)
	}

	ln := listen(t)
	defer ln.Close()
	rcv := mustShipReceiver(t, node, ship.ReceiverConfig{
		Schema:  tpccSchema(),
		Metrics: ship.NewMetrics(metrics.NewRegistry()),
		Drain:   func() error { node.Drain(); return node.Err() },
	})
	done, errs := serveLoop(ln, rcv)
	s := mustSender(t, ship.SenderConfig{
		Dial:    dialer(ln.Addr().String()),
		Schema:  tpccSchema(),
		Metrics: ship.NewMetrics(metrics.NewRegistry()),
	})
	for i := range encs {
		if err := s.Send(&encs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	waitDone(t, done, "serve loop")
	for _, err := range errs.all() {
		t.Fatalf("unexpected connection error: %v", err)
	}
	if got := rcv.Stats(); got.Cursor != uint64(len(encs)) || got.Duplicates != 0 {
		t.Fatalf("receiver stats %+v, want cursor %d and no duplicates", got, len(encs))
	}
	assertSameState(t, node, want)
}

// Per-peer metrics: two senders sharing one registry but labelled with
// distinct peers must not collide — a fan-out primary's links are
// distinguishable series, not one aggregate.
func TestPeerMetricsDistinctSeries(t *testing.T) {
	reg := metrics.NewRegistry()
	a := ship.NewPeerMetrics(reg, "r1")
	b := ship.NewPeerMetrics(reg, "r2")
	a.EpochsSent.Add(3)
	b.EpochsSent.Add(5)
	a.Connected.Set(1)
	snap := reg.Snapshot()
	if snap[`ship_epochs_sent{peer="r1"}`] != 3 || snap[`ship_epochs_sent{peer="r2"}`] != 5 {
		t.Fatalf("per-peer counters collided: %v", snap)
	}
	if snap[`ship_connected{peer="r1"}`] != 1 || snap[`ship_connected{peer="r2"}`] != 0 {
		t.Fatalf("per-peer gauges collided: %v", snap)
	}
	// The unlabelled canonical names stay available for single-link use.
	if ship.NewPeerMetrics(reg, "").EpochsSent != reg.Counter("ship_epochs_sent") {
		t.Fatal("empty peer must register the canonical unlabelled series")
	}
}
