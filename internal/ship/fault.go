package ship

import (
	"errors"
	"net"
	"sync"
	"time"
)

// ErrInjected is the error surfaced by a FaultConn when it cuts the
// connection. Tests match on it to distinguish injected faults from
// real ones.
var ErrInjected = errors.New("ship: injected fault")

// FaultOpts scripts the faults a FaultConn injects. The zero value is a
// transparent wrapper. All faults are deterministic (byte and call
// counts, no randomness), so tests replay identically.
type FaultOpts struct {
	// Latency is added before every Read and Write.
	Latency time.Duration
	// CutWriteAfter cuts the wire after this many bytes have been
	// written — typically mid-frame, so the peer sees a truncated epoch.
	// Subsequent writes fail with ErrInjected. 0 disables.
	CutWriteAfter int64
	// Chunk caps the bytes per underlying Write, splitting frames across
	// many small writes (partial-write delivery). 0 disables.
	Chunk int
	// DuplicateEvery transmits every Nth Write call's bytes twice. When
	// the writer emits one frame per call (WriteFrame does), this is
	// frame-aligned duplicate delivery. 0 disables.
	DuplicateEvery int
}

// FaultConn wraps a net.Conn with deterministic fault injection:
// latency, partial writes, a mid-stream cut, and duplicate delivery.
type FaultConn struct {
	net.Conn
	opts FaultOpts

	mu      sync.Mutex
	written int64
	calls   int
	cut     bool
}

// NewFaultConn wraps c with the scripted faults.
func NewFaultConn(c net.Conn, opts FaultOpts) *FaultConn {
	return &FaultConn{Conn: c, opts: opts}
}

// FaultDialer wraps dial so the i-th connection (0-based) is faulted
// with opts(i). Use it to cut a sender's first connection and let its
// reconnect proceed cleanly.
func FaultDialer(dial func() (net.Conn, error), opts func(i int) FaultOpts) func() (net.Conn, error) {
	var mu sync.Mutex
	i := 0
	return func() (net.Conn, error) {
		mu.Lock()
		n := i
		i++
		mu.Unlock()
		c, err := dial()
		if err != nil {
			return nil, err
		}
		return NewFaultConn(c, opts(n)), nil
	}
}

// Read applies latency and reads from the wrapped conn.
func (f *FaultConn) Read(p []byte) (int, error) {
	if f.opts.Latency > 0 {
		time.Sleep(f.opts.Latency)
	}
	return f.Conn.Read(p)
}

// Write applies the scripted faults and writes to the wrapped conn.
func (f *FaultConn) Write(p []byte) (int, error) {
	if f.opts.Latency > 0 {
		time.Sleep(f.opts.Latency)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.cut {
		return 0, ErrInjected
	}
	f.calls++
	n, err := f.writeLocked(p)
	if err == nil && f.opts.DuplicateEvery > 0 && f.calls%f.opts.DuplicateEvery == 0 {
		// Duplicate delivery: the peer sees the same bytes again. The
		// caller's contract is satisfied by the first copy, so a cut during
		// the duplicate still reports success for the original.
		if _, derr := f.writeLocked(p); derr != nil {
			return n, nil
		}
	}
	return n, err
}

func (f *FaultConn) writeLocked(p []byte) (int, error) {
	var n int
	for len(p) > 0 {
		c := len(p)
		if f.opts.Chunk > 0 && c > f.opts.Chunk {
			c = f.opts.Chunk
		}
		if f.opts.CutWriteAfter > 0 {
			remain := f.opts.CutWriteAfter - f.written
			if remain <= 0 {
				f.cutLocked()
				return n, ErrInjected
			}
			if int64(c) > remain {
				c = int(remain)
			}
		}
		m, err := f.Conn.Write(p[:c])
		n += m
		f.written += int64(m)
		if err != nil {
			return n, err
		}
		p = p[c:]
		if f.opts.CutWriteAfter > 0 && f.written >= f.opts.CutWriteAfter {
			f.cutLocked()
			if len(p) > 0 {
				return n, ErrInjected
			}
		}
	}
	return n, nil
}

func (f *FaultConn) cutLocked() {
	if !f.cut {
		f.cut = true
		f.Conn.Close()
	}
}
