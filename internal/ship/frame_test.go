package ship

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"testing"
	"time"

	"aets/internal/epoch"
	"aets/internal/wal"
)

func testEpoch(rng *rand.Rand, seq uint64) *epoch.Encoded {
	buf := make([]byte, 10+rng.Intn(200))
	rng.Read(buf)
	// Counts stay ≤ len(buf): DecodeEpoch rejects epochs claiming more
	// transactions or entries than the buf could possibly hold.
	return &epoch.Encoded{
		Seq:          seq,
		Buf:          buf,
		TxnCount:     1 + rng.Intn(len(buf)),
		EntryCount:   1 + rng.Intn(len(buf)),
		FirstTxnID:   uint64(rng.Int63()),
		LastTxnID:    uint64(rng.Int63()),
		LastCommitTS: rng.Int63(),
	}
}

func TestFrameRoundtrip(t *testing.T) {
	var b bytes.Buffer
	payloads := map[byte][]byte{
		KindHello:     appendHello(nil, 0xfeed),
		KindWelcome:   appendWelcome(nil, 0xfeed, 42),
		KindAck:       appendCursor(nil, 7),
		KindHeartbeat: appendHeartbeat(nil, -1),
		KindEOS:       appendCursor(nil, 99),
	}
	for kind, p := range payloads {
		if err := WriteFrame(&b, kind, p); err != nil {
			t.Fatal(err)
		}
	}
	seen := map[byte]bool{}
	for i := 0; i < len(payloads); i++ {
		kind, p, err := ReadFrame(&b)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(p, payloads[kind]) {
			t.Fatalf("kind %d payload mismatch", kind)
		}
		seen[kind] = true
	}
	if len(seen) != len(payloads) {
		t.Fatalf("saw %d kinds, want %d", len(seen), len(payloads))
	}
	if _, _, err := ReadFrame(&b); err != io.EOF {
		t.Fatalf("want io.EOF at end, got %v", err)
	}
}

func TestHandshakePayloadParsers(t *testing.T) {
	schema, err := parseHello(appendHello(nil, 123))
	if err != nil || schema != 123 {
		t.Fatalf("hello: %d, %v", schema, err)
	}
	s2, cur, err := parseWelcome(appendWelcome(nil, 5, 6))
	if err != nil || s2 != 5 || cur != 6 {
		t.Fatalf("welcome: %d %d %v", s2, cur, err)
	}
	ts, err := parseHeartbeat(appendHeartbeat(nil, -77))
	if err != nil || ts != -77 {
		t.Fatalf("heartbeat: %d %v", ts, err)
	}
	for _, bad := range [][]byte{nil, {1}, make([]byte, 7), make([]byte, 9), make([]byte, 17)} {
		if _, err := parseHello(bad); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("hello accepted %d bytes", len(bad))
		}
		if _, _, err := parseWelcome(bad); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("welcome accepted %d bytes", len(bad))
		}
	}
}

func TestEpochPayloadRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		want := testEpoch(rng, uint64(i))
		got, err := DecodeEpoch(EncodeEpoch(want))
		if err != nil {
			t.Fatal(err)
		}
		if got.Seq != want.Seq || got.TxnCount != want.TxnCount ||
			got.EntryCount != want.EntryCount || got.LastTxnID != want.LastTxnID ||
			got.LastCommitTS != want.LastCommitTS || !bytes.Equal(got.Buf, want.Buf) {
			t.Fatalf("roundtrip mismatch:\n got %+v\nwant %+v", got, want)
		}
	}
}

func TestReadFrameRejectsDamage(t *testing.T) {
	valid := AppendFrame(nil, KindEpoch, EncodeEpoch(testEpoch(rand.New(rand.NewSource(2)), 3)))

	for cut := 1; cut < len(valid); cut++ {
		_, _, err := ReadFrame(bytes.NewReader(valid[:cut]))
		if !errors.Is(err, ErrShortFrame) {
			t.Fatalf("truncation at %d: got %v, want ErrShortFrame", cut, err)
		}
	}

	bad := append([]byte(nil), valid...)
	bad[0] = 0x00 // magic
	if _, _, err := ReadFrame(bytes.NewReader(bad)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic: %v", err)
	}

	// Version2 with zero flags is a valid header but a foreign CRC (the
	// version byte is covered), so damage there still surfaces.
	bad = append([]byte(nil), valid...)
	bad[1] = maxKnownVersion + 1
	if _, _, err := ReadFrame(bytes.NewReader(bad)); !errors.Is(err, ErrVersion) {
		t.Fatalf("bad version: %v", err)
	}
	bad = append([]byte(nil), valid...)
	bad[1] = Version2
	if _, _, err := ReadFrame(bytes.NewReader(bad)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("version flip without CRC: %v", err)
	}

	bad = append([]byte(nil), valid...)
	bad[len(bad)/2] ^= 0x40 // flip a payload bit: CRC must catch it
	if _, _, err := ReadFrame(bytes.NewReader(bad)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("payload corruption: %v", err)
	}

	// An absurd length must be rejected before allocation.
	huge := AppendFrame(nil, KindAck, appendCursor(nil, 1))
	huge[4], huge[5], huge[6], huge[7] = 0xff, 0xff, 0xff, 0xff
	if _, _, err := ReadFrame(bytes.NewReader(huge)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("huge length: %v", err)
	}
}

func TestDecodeEpochRejectsDamage(t *testing.T) {
	if _, err := DecodeEpoch(nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("nil payload: %v", err)
	}
	p := EncodeEpoch(testEpoch(rand.New(rand.NewSource(3)), 0))
	if _, err := DecodeEpoch(p[:20]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("short payload: %v", err)
	}
	// Declared buf length disagreeing with the payload size.
	p[32] ^= 0xff
	if _, err := DecodeEpoch(p); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bufLen mismatch: %v", err)
	}
}

func TestSchemaHashSensitivity(t *testing.T) {
	a := SchemaHash("tpcc", []wal.TableID{1, 2, 3})
	if a != SchemaHash("tpcc", []wal.TableID{1, 2, 3}) {
		t.Fatal("hash not deterministic")
	}
	if a == SchemaHash("tpcc", []wal.TableID{1, 2}) {
		t.Fatal("hash ignores tables")
	}
	if a == SchemaHash("chbench", []wal.TableID{1, 2, 3}) {
		t.Fatal("hash ignores name")
	}
}

// Regression: without a length prefix on the name, distinct (name,
// tables) pairs whose concatenated byte streams coincide hashed
// identically and passed the handshake. ("a", [0x62]) fed the hasher
// 'a' 'b' 0 0 0 — exactly what ("ab\x00\x00\x00", []) fed it.
func TestSchemaHashNameTableBoundary(t *testing.T) {
	a := SchemaHash("a", []wal.TableID{0x62})
	b := SchemaHash("ab\x00\x00\x00", nil)
	if a == b {
		t.Fatalf("schema hash collides across the name/table boundary: %016x", a)
	}
	// The shifted-boundary family more generally.
	c := SchemaHash("ab", []wal.TableID{0x63, 0x64})
	d := SchemaHash("abc", []wal.TableID{0x64000000, 0})
	if c == d {
		t.Fatalf("schema hash collides when ID bytes slide into the name: %016x", c)
	}
}

// Regression: the old `TxnCount < 0 || EntryCount < 0` check was dead
// code (uint32→int is never negative on 64-bit), so a hostile frame
// could claim ~4 billion entries over an empty buf and poison
// consumers that trust EntryCount. Counts must be sane relative to the
// buf they describe.
func TestDecodeEpochRejectsAbsurdCounts(t *testing.T) {
	base := testEpoch(rand.New(rand.NewSource(9)), 5)
	for _, tc := range []struct {
		name       string
		txns, ents uint32
		ok         bool
	}{
		{"max-entries-empty-ish-buf", 1, 0xffffffff, false},
		{"max-txns", 0xffffffff, 1, false},
		{"counts-at-buf-len", uint32(len(base.Buf)), uint32(len(base.Buf)), true},
		{"counts-past-buf-len", uint32(len(base.Buf)) + 1, 1, false},
	} {
		p := EncodeEpoch(base)
		binary.LittleEndian.PutUint32(p[8:], tc.txns)
		binary.LittleEndian.PutUint32(p[28:], tc.ents)
		_, err := DecodeEpoch(p)
		if tc.ok && err != nil {
			t.Fatalf("%s: unexpected reject: %v", tc.name, err)
		}
		if !tc.ok && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("%s: got %v, want ErrCorrupt", tc.name, err)
		}
	}
	// A zero-buf epoch claiming entries must die too.
	empty := &epoch.Encoded{Seq: 1, LastCommitTS: 1}
	p := EncodeEpoch(empty)
	binary.LittleEndian.PutUint32(p[28:], 4_000_000_000)
	if _, err := DecodeEpoch(p); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("entries over empty buf: %v", err)
	}
}

// DecodeEpoch's documented sharp edge: the decoded Buf aliases the
// frame payload (no copy on the hot path). Retention sites rely on
// ReadFrameFlags allocating a fresh payload per frame; both contracts
// are pinned here so a "harmless" buffer-reuse optimization cannot
// silently corrupt a queued epoch.
func TestDecodeEpochAliasingContract(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	enc := testEpoch(rng, 0)
	p := EncodeEpoch(enc)
	got, err := DecodeEpoch(p)
	if err != nil {
		t.Fatal(err)
	}
	p[epochHdrSize] ^= 0xff
	if got.Buf[0] != p[epochHdrSize] {
		t.Fatal("DecodeEpoch no longer aliases the payload; update the ownership docs and retention-site audit")
	}

	// Two frames read from one stream must not share backing memory.
	var stream bytes.Buffer
	e0, e1 := testEpoch(rng, 0), testEpoch(rng, 1)
	stream.Write(AppendFrame(nil, KindEpoch, EncodeEpoch(e0)))
	stream.Write(AppendFrame(nil, KindEpoch, EncodeEpoch(e1)))
	_, _, _, p0, err := ReadFrameFlags(&stream)
	if err != nil {
		t.Fatal(err)
	}
	d0, err := DecodeEpoch(p0)
	if err != nil {
		t.Fatal(err)
	}
	keep := append([]byte(nil), d0.Buf...)
	if _, _, _, _, err := ReadFrameFlags(&stream); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(keep, d0.Buf) {
		t.Fatal("reading the next frame mutated a retained epoch's Buf")
	}

	// The compressed path inflates into fresh memory: never aliases.
	big := testEpoch(rng, 2)
	big.Buf = bytes.Repeat([]byte("aliascheck"), 200)
	var comp epochCompressor
	cp := append([]byte(nil), comp.payload(big)...)
	dc, err := DecodeEpochFrame(FlagCompressed, cp)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cp {
		cp[i] = 0
	}
	if !bytes.Equal(dc.Buf, big.Buf) {
		t.Fatal("compressed decode aliases the wire payload")
	}
}

func TestCompressedEpochRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	var comp epochCompressor
	for i := 0; i < 20; i++ {
		want := testEpoch(rng, uint64(i))
		// Make it compressible: repeat a motif (and rebound the counts to
		// the new buf).
		motif := append([]byte(nil), want.Buf[:10]...)
		want.Buf = bytes.Repeat(motif, 8+rng.Intn(64))
		want.TxnCount, want.EntryCount = 1+rng.Intn(8), 1+rng.Intn(64)
		p := comp.payload(want)
		if p == nil {
			t.Fatalf("epoch %d: repetitive buf did not compress", i)
		}
		if len(p) >= epochHdrSize+len(want.Buf) {
			t.Fatalf("epoch %d: compressed payload not smaller (%d vs %d)", i, len(p), epochHdrSize+len(want.Buf))
		}
		got, err := DecodeEpochFrame(FlagCompressed, p)
		if err != nil {
			t.Fatal(err)
		}
		if got.Seq != want.Seq || got.TxnCount != want.TxnCount ||
			got.EntryCount != want.EntryCount || got.LastTxnID != want.LastTxnID ||
			got.LastCommitTS != want.LastCommitTS || !bytes.Equal(got.Buf, want.Buf) {
			t.Fatalf("roundtrip mismatch:\n got %+v\nwant %+v", got, want)
		}
	}
	// Incompressible input (random bytes): payload reports nil and the
	// caller ships raw.
	inc := testEpoch(rng, 100)
	inc.Buf = make([]byte, 4096)
	rng.Read(inc.Buf)
	if p := comp.payload(inc); p != nil {
		t.Fatalf("random buf claimed compressible: %d vs %d", len(p), epochHdrSize+len(inc.Buf))
	}
}

func TestCorruptCompressedEpochIsErrCorruptNotPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	enc := testEpoch(rng, 7)
	enc.Buf = bytes.Repeat([]byte("payload"), 300)
	var comp epochCompressor
	good := append([]byte(nil), comp.payload(enc)...)

	// Every single-byte corruption of the flate stream must surface as
	// ErrCorrupt (or, rarely, decode to different bytes of the correct
	// length — flate has no integrity check of its own; the frame CRC
	// covers that on the wire).
	for off := epochHdrSize; off < len(good); off++ {
		bad := append([]byte(nil), good...)
		bad[off] ^= 0xff
		if _, err := DecodeEpochFrame(FlagCompressed, bad); err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("offset %d: got %v, want ErrCorrupt", off, err)
		}
	}
	// Truncations.
	for _, cut := range []int{epochHdrSize, epochHdrSize + 1, len(good) - 1} {
		if _, err := DecodeEpochFrame(FlagCompressed, good[:cut]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncated at %d: got %v, want ErrCorrupt", cut, err)
		}
	}
	// Declared raw length shorter than the stream inflates to.
	bad := append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(bad[32:], uint32(len(enc.Buf)-1))
	if _, err := DecodeEpochFrame(FlagCompressed, bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("short declared length: %v", err)
	}
	// And longer.
	bad = append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(bad[32:], uint32(len(enc.Buf)+1))
	if _, err := DecodeEpochFrame(FlagCompressed, bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("long declared length: %v", err)
	}
	// Unknown flag bits are rejected outright.
	if _, err := DecodeEpochFrame(0x02, good); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("unknown flags: %v", err)
	}
}

func TestBackoffSaturatesAtHighRetryCounts(t *testing.T) {
	base, max := 25*time.Millisecond, time.Second
	prev := time.Duration(0)
	for retry := 0; retry <= 200; retry++ {
		d := Backoff(base, max, retry)
		if d <= 0 {
			t.Fatalf("retry %d: non-positive delay %v (hot reconnect loop)", retry, d)
		}
		if d > max {
			t.Fatalf("retry %d: delay %v exceeds max %v", retry, d, max)
		}
		if d < prev {
			t.Fatalf("retry %d: delay %v below previous %v (overflow wrap)", retry, d, prev)
		}
		prev = d
	}
	for _, tc := range []struct {
		base, max time.Duration
		retry     int
		want      time.Duration
	}{
		{25 * time.Millisecond, time.Second, 0, 25 * time.Millisecond},
		{25 * time.Millisecond, time.Second, 3, 200 * time.Millisecond},
		{25 * time.Millisecond, time.Second, 5, 800 * time.Millisecond},
		{25 * time.Millisecond, time.Second, 6, time.Second},
		// The exact shifts that used to wrap: 25ms<<40 wrapped to a
		// positive value above max (caught), 25ms<<45 to garbage, and
		// retry ≥ 64 shifted to zero — all must saturate.
		{25 * time.Millisecond, time.Second, 40, time.Second},
		{25 * time.Millisecond, time.Second, 45, time.Second},
		{25 * time.Millisecond, time.Second, 64, time.Second},
		{25 * time.Millisecond, time.Second, 1 << 20, time.Second},
		// Huge max: wrapped-positive-below-max was the nastiest case.
		{time.Millisecond, 1 << 62, 62, 1 << 62},
		{time.Millisecond, 1 << 62, 100, 1 << 62},
		{time.Second, time.Second, 10, time.Second},
		{0, time.Second, 10, time.Second},
	} {
		if got := Backoff(tc.base, tc.max, tc.retry); got != tc.want {
			t.Fatalf("Backoff(%v, %v, %d) = %v, want %v", tc.base, tc.max, tc.retry, got, tc.want)
		}
	}
}
