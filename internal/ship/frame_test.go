package ship

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"

	"aets/internal/epoch"
	"aets/internal/wal"
)

func testEpoch(rng *rand.Rand, seq uint64) *epoch.Encoded {
	buf := make([]byte, 10+rng.Intn(200))
	rng.Read(buf)
	return &epoch.Encoded{
		Seq:          seq,
		Buf:          buf,
		TxnCount:     1 + rng.Intn(100),
		EntryCount:   1 + rng.Intn(1000),
		FirstTxnID:   uint64(rng.Int63()),
		LastTxnID:    uint64(rng.Int63()),
		LastCommitTS: rng.Int63(),
	}
}

func TestFrameRoundtrip(t *testing.T) {
	var b bytes.Buffer
	payloads := map[byte][]byte{
		KindHello:     appendHello(nil, 0xfeed),
		KindWelcome:   appendWelcome(nil, 0xfeed, 42),
		KindAck:       appendCursor(nil, 7),
		KindHeartbeat: appendHeartbeat(nil, -1),
		KindEOS:       appendCursor(nil, 99),
	}
	for kind, p := range payloads {
		if err := WriteFrame(&b, kind, p); err != nil {
			t.Fatal(err)
		}
	}
	seen := map[byte]bool{}
	for i := 0; i < len(payloads); i++ {
		kind, p, err := ReadFrame(&b)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(p, payloads[kind]) {
			t.Fatalf("kind %d payload mismatch", kind)
		}
		seen[kind] = true
	}
	if len(seen) != len(payloads) {
		t.Fatalf("saw %d kinds, want %d", len(seen), len(payloads))
	}
	if _, _, err := ReadFrame(&b); err != io.EOF {
		t.Fatalf("want io.EOF at end, got %v", err)
	}
}

func TestHandshakePayloadParsers(t *testing.T) {
	schema, err := parseHello(appendHello(nil, 123))
	if err != nil || schema != 123 {
		t.Fatalf("hello: %d, %v", schema, err)
	}
	s2, cur, err := parseWelcome(appendWelcome(nil, 5, 6))
	if err != nil || s2 != 5 || cur != 6 {
		t.Fatalf("welcome: %d %d %v", s2, cur, err)
	}
	ts, err := parseHeartbeat(appendHeartbeat(nil, -77))
	if err != nil || ts != -77 {
		t.Fatalf("heartbeat: %d %v", ts, err)
	}
	for _, bad := range [][]byte{nil, {1}, make([]byte, 7), make([]byte, 9), make([]byte, 17)} {
		if _, err := parseHello(bad); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("hello accepted %d bytes", len(bad))
		}
		if _, _, err := parseWelcome(bad); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("welcome accepted %d bytes", len(bad))
		}
	}
}

func TestEpochPayloadRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		want := testEpoch(rng, uint64(i))
		got, err := DecodeEpoch(EncodeEpoch(want))
		if err != nil {
			t.Fatal(err)
		}
		if got.Seq != want.Seq || got.TxnCount != want.TxnCount ||
			got.EntryCount != want.EntryCount || got.LastTxnID != want.LastTxnID ||
			got.LastCommitTS != want.LastCommitTS || !bytes.Equal(got.Buf, want.Buf) {
			t.Fatalf("roundtrip mismatch:\n got %+v\nwant %+v", got, want)
		}
	}
}

func TestReadFrameRejectsDamage(t *testing.T) {
	valid := AppendFrame(nil, KindEpoch, EncodeEpoch(testEpoch(rand.New(rand.NewSource(2)), 3)))

	for cut := 1; cut < len(valid); cut++ {
		_, _, err := ReadFrame(bytes.NewReader(valid[:cut]))
		if !errors.Is(err, ErrShortFrame) {
			t.Fatalf("truncation at %d: got %v, want ErrShortFrame", cut, err)
		}
	}

	bad := append([]byte(nil), valid...)
	bad[0] = 0x00 // magic
	if _, _, err := ReadFrame(bytes.NewReader(bad)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic: %v", err)
	}

	bad = append([]byte(nil), valid...)
	bad[1] = Version + 1
	if _, _, err := ReadFrame(bytes.NewReader(bad)); !errors.Is(err, ErrVersion) {
		t.Fatalf("bad version: %v", err)
	}

	bad = append([]byte(nil), valid...)
	bad[len(bad)/2] ^= 0x40 // flip a payload bit: CRC must catch it
	if _, _, err := ReadFrame(bytes.NewReader(bad)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("payload corruption: %v", err)
	}

	// An absurd length must be rejected before allocation.
	huge := AppendFrame(nil, KindAck, appendCursor(nil, 1))
	huge[4], huge[5], huge[6], huge[7] = 0xff, 0xff, 0xff, 0xff
	if _, _, err := ReadFrame(bytes.NewReader(huge)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("huge length: %v", err)
	}
}

func TestDecodeEpochRejectsDamage(t *testing.T) {
	if _, err := DecodeEpoch(nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("nil payload: %v", err)
	}
	p := EncodeEpoch(testEpoch(rand.New(rand.NewSource(3)), 0))
	if _, err := DecodeEpoch(p[:20]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("short payload: %v", err)
	}
	// Declared buf length disagreeing with the payload size.
	p[32] ^= 0xff
	if _, err := DecodeEpoch(p); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bufLen mismatch: %v", err)
	}
}

func TestSchemaHashSensitivity(t *testing.T) {
	a := SchemaHash("tpcc", []wal.TableID{1, 2, 3})
	if a != SchemaHash("tpcc", []wal.TableID{1, 2, 3}) {
		t.Fatal("hash not deterministic")
	}
	if a == SchemaHash("tpcc", []wal.TableID{1, 2}) {
		t.Fatal("hash ignores tables")
	}
	if a == SchemaHash("chbench", []wal.TableID{1, 2, 3}) {
		t.Fatal("hash ignores name")
	}
}
