// Fault-injection tests: the wire is cut mid-epoch, frames are
// duplicated and writes fragmented, and the resumed stream must
// converge to exactly the state of an unbroken run — no gaps, no
// double-apply.
package ship_test

import (
	"errors"
	"net"
	"testing"
	"time"

	"aets/internal/epoch"
	"aets/internal/metrics"
	"aets/internal/ship"
)

// TestReconnectResumeAfterMidEpochCut severs the first connection after
// a fixed byte budget — inside an epoch frame — and lets the sender's
// backoff reconnect resume from the backup's cursor. Early and late
// cuts cover "nothing acked yet" and "window partially acked".
func TestReconnectResumeAfterMidEpochCut(t *testing.T) {
	encs := tpccEncoded(4096, 512) // 8 large epochs, several hundred KB each
	want := directNode(t, encs)
	defer want.Close()

	for _, tc := range []struct {
		name string
		cut  int64
	}{
		{"early-cut", 100_000},
		{"late-cut", 900_000},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ln := listen(t)
			defer ln.Close()
			node := newNode(t)
			defer node.Close()
			reg := metrics.NewRegistry()
			rcv := mustShipReceiver(t, node, ship.ReceiverConfig{
				Schema:  tpccSchema(),
				Metrics: ship.NewMetrics(reg),
				Drain:   func() error { node.Drain(); return node.Err() },
			})
			done, errs := serveLoop(ln, rcv)

			dial := ship.FaultDialer(dialer(ln.Addr().String()), func(i int) ship.FaultOpts {
				if i == 0 {
					return ship.FaultOpts{CutWriteAfter: tc.cut}
				}
				return ship.FaultOpts{} // reconnects are clean
			})
			s := mustSender(t, ship.SenderConfig{
				Dial:      dial,
				Schema:    tpccSchema(),
				Window:    4,
				RetryBase: time.Millisecond,
				RetryMax:  10 * time.Millisecond,
				Metrics:   ship.NewMetrics(reg),
			})
			for i := range encs {
				if err := s.Send(&encs[i]); err != nil {
					t.Fatal(err)
				}
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			waitDone(t, done, "serve loop")

			// The cut connection legitimately ends in a truncated frame or a
			// failed ack write; a sequence gap or corruption slipping
			// through the protocol checks would not be legitimate.
			for _, err := range errs.all() {
				if errors.Is(err, ship.ErrGap) || errors.Is(err, ship.ErrCorrupt) ||
					errors.Is(err, ship.ErrVersion) || errors.Is(err, ship.ErrSchemaMismatch) {
					t.Fatalf("protocol violation on resume: %v", err)
				}
			}

			// Byte-identical convergence with the unbroken run: every
			// version chain in every table matches, so nothing was lost to
			// the cut and nothing was applied twice on resume.
			assertSameState(t, node, want)

			st := s.Stats()
			if st.Reconnects != 1 {
				t.Fatalf("reconnects %d, want 1", st.Reconnects)
			}
			if st.Acked != int64(len(encs)) || st.AckCursor != uint64(len(encs)) {
				t.Fatalf("acked %d cursor %d, want %d", st.Acked, st.AckCursor, len(encs))
			}
			if snap := reg.Snapshot(); snap["ship_reconnects_total"] != 1 {
				t.Fatalf("ship_reconnects_total = %v, want 1", snap["ship_reconnects_total"])
			}
		})
	}
}

// TestDuplicateFramesDeduped delivers every frame twice (and fragments
// writes) through a FaultConn; the receiver must apply each epoch once.
func TestDuplicateFramesDeduped(t *testing.T) {
	encs := tpccEncoded(2048, 256) // 8 epochs
	want := directNode(t, encs)
	defer want.Close()

	ln := listen(t)
	defer ln.Close()
	node := newNode(t)
	defer node.Close()
	rcv := mustShipReceiver(t, node, ship.ReceiverConfig{
		Schema:  tpccSchema(),
		Metrics: ship.NewMetrics(metrics.NewRegistry()),
		Drain:   func() error { node.Drain(); return node.Err() },
	})
	doneCh := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			doneCh <- err
			return
		}
		finished, err := rcv.Serve(conn)
		if err == nil && !finished {
			err = errors.New("stream ended without EOS")
		}
		doneCh <- err
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	newRawClient(t, conn, tpccSchema())
	// After the handshake, every WriteFrame call (one frame per call) is
	// transmitted twice and fragmented into 100-byte chunks.
	faulty := ship.NewFaultConn(conn, ship.FaultOpts{DuplicateEvery: 1, Chunk: 100})
	for i := range encs {
		if err := ship.WriteFrame(faulty, ship.KindEpoch, ship.EncodeEpoch(&encs[i])); err != nil {
			t.Fatal(err)
		}
	}
	if err := ship.WriteFrame(faulty, ship.KindEOS, shipAppendCursor(uint64(len(encs)))); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-doneCh:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("receiver timeout")
	}

	assertSameState(t, node, want)
	if st := rcv.Stats(); st.Duplicates != int64(len(encs)) || st.Cursor != uint64(len(encs)) {
		t.Fatalf("receiver stats %+v, want %d duplicates", st, len(encs))
	}
}

// rawClient drives the protocol by hand for adversarial cases the real
// Sender never produces.
type rawClient struct {
	t    *testing.T
	conn net.Conn
}

func newRawClient(t *testing.T, conn net.Conn, schema uint64) *rawClient {
	t.Helper()
	c := &rawClient{t: t, conn: conn}
	c.write(ship.KindHello, shipAppendHello(schema))
	kind, _, err := ship.ReadFrame(conn)
	if err != nil || kind != ship.KindWelcome {
		t.Fatalf("handshake: kind %d, err %v", kind, err)
	}
	// Drain acks in the background so the receiver's ack writes never
	// block the test.
	go func() {
		for {
			if _, _, err := ship.ReadFrame(conn); err != nil {
				return
			}
		}
	}()
	return c
}

func (c *rawClient) write(kind byte, payload []byte) {
	c.t.Helper()
	if err := ship.WriteFrame(c.conn, kind, payload); err != nil {
		c.t.Fatal(err)
	}
}

func (c *rawClient) writeEpoch(enc *epoch.Encoded) {
	c.write(ship.KindEpoch, ship.EncodeEpoch(enc))
}

func shipAppendHello(schema uint64) []byte { return shipAppendCursor(schema) }

func shipAppendCursor(v uint64) []byte {
	b := make([]byte, 8)
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	return b
}
