package ship

import (
	"bufio"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// ErrDigestMismatch marks anti-entropy divergence: the receiver's
// committed-state digest differs from the sender's at the same cursor.
// The receiver answers it by requesting a repair snapshot on its next
// handshake.
var ErrDigestMismatch = errors.New("ship: state digest mismatch")

// ErrSnapshotUnsupported is returned when a link needs a snapshot the
// peer cannot serve or apply (no source configured, or the capability
// was not negotiated). It is permanent for the connection but not for
// the sender: an operator can re-seed the receiver out of band.
var ErrSnapshotUnsupported = errors.New("ship: snapshot catch-up unsupported on this link")

// SnapshotSource serves full-state snapshots for catch-up. The primary
// uses the live node's checkpoint cut; a supervised relay serves the
// recovery manager's newest valid checkpoint.
type SnapshotSource interface {
	// Snapshot returns a consistent full-state snapshot stream and the
	// cursor it covers (the next epoch sequence after the snapshot).
	// Contract: the snapshot must cover every epoch already offered to
	// the sender's Send, so retiring pending epochs below the returned
	// cursor loses nothing. The caller closes rc.
	Snapshot() (cursor uint64, size int64, rc io.ReadCloser, err error)
}

// SnapshotApplier is an optional Applier extension for receivers that
// can restore a full-state snapshot. A receiver whose Applier
// implements it advertises CapSnapshot in its WELCOME.
type SnapshotApplier interface {
	Applier
	// RestoreSnapshot replaces the applier's state with the snapshot
	// read from r (size is a hint, -1 when unknown). Implementations
	// must validate the stream fully before installing anything: on any
	// error the prior state must remain intact and queryable. After a
	// nil return the receiver's cursor becomes cursor.
	RestoreSnapshot(cursor uint64, size int64, r io.Reader) error
}

// SnapshotCapable is an optional refinement for wrapping appliers (a
// cluster relay): a type that statically implements SnapshotApplier
// but merely delegates to an inner applier reports here whether the
// inner one can actually restore. The receiver advertises CapSnapshot
// only when it reports true; appliers without the method advertise by
// implementing SnapshotApplier alone.
type SnapshotCapable interface {
	SnapshotCapable() bool
}

// DigestApplier is an optional Applier extension for receivers that
// can verify anti-entropy digests. VerifyDigest is called only when
// the receiver's cursor equals seq, i.e. both ends have applied
// exactly the epochs [0, seq).
type DigestApplier interface {
	// VerifyDigest compares the local committed-state digest against
	// the sender's. A mismatch returns ErrDigestMismatch (possibly
	// wrapped); any error terminates the connection.
	VerifyDigest(seq uint64, ts int64, digest uint64) error
}

// snapChunkSize is the sender's chunk granularity; well under
// MaxSnapChunk so the receiver's per-chunk bound never trips on our
// own streams.
const snapChunkSize = 256 << 10

// snapReader adapts the SNAPCHUNK frame sequence following a SNAPBEGIN
// into an io.Reader for SnapshotApplier.RestoreSnapshot. It validates
// per-chunk bounds as frames arrive and the whole-stream byte count
// and CRC against the SNAPEND trailer; the trailer must be consumed
// (Read through io.EOF, or drain) for the stream to count as complete.
type snapReader struct {
	br       *bufio.Reader
	maxVer   byte
	expected uint64 // SNAPBEGIN's total claim; 0 = unknown
	buf      []byte
	crc      uint32
	total    uint64
	done     bool
	err      error
}

func newSnapReader(br *bufio.Reader, maxVer byte, expected uint64) *snapReader {
	return &snapReader{br: br, maxVer: maxVer, expected: expected}
}

func (sr *snapReader) Read(p []byte) (int, error) {
	for len(sr.buf) == 0 {
		if sr.err != nil {
			return 0, sr.err
		}
		if sr.done {
			return 0, io.EOF
		}
		if err := sr.next(); err != nil {
			sr.err = err
			return 0, err
		}
	}
	n := copy(p, sr.buf)
	sr.buf = sr.buf[n:]
	return n, nil
}

// next consumes one frame of the snapshot stream.
func (sr *snapReader) next() error {
	ver, kind, flags, payload, err := ReadFrameFlags(sr.br)
	if err != nil {
		if err == io.EOF {
			return fmt.Errorf("%w: connection dropped mid-snapshot", ErrShortFrame)
		}
		return err
	}
	if ver > sr.maxVer {
		return fmt.Errorf("%w: %d", ErrVersion, ver)
	}
	if flags != 0 {
		return fmt.Errorf("%w: flags 0x%02x on snapshot frame", ErrCorrupt, flags)
	}
	switch kind {
	case KindSnapChunk:
		if len(payload) == 0 || len(payload) > MaxSnapChunk {
			return fmt.Errorf("%w: snapshot chunk %d bytes", ErrCorrupt, len(payload))
		}
		sr.crc = crc32.Update(sr.crc, castagnoli, payload)
		sr.total += uint64(len(payload))
		if sr.expected != 0 && sr.total > sr.expected {
			return fmt.Errorf("%w: snapshot overran claimed %d bytes", ErrCorrupt, sr.expected)
		}
		sr.buf = payload
	case KindSnapEnd:
		total, crc, err := parseSnapEnd(payload)
		if err != nil {
			return err
		}
		if total != sr.total || crc != sr.crc {
			return fmt.Errorf("%w: snapshot trailer total/crc mismatch", ErrCorrupt)
		}
		if sr.expected != 0 && sr.total != sr.expected {
			return fmt.Errorf("%w: snapshot %d bytes, SNAPBEGIN claimed %d", ErrCorrupt, sr.total, sr.expected)
		}
		sr.done = true
	default:
		return fmt.Errorf("%w: frame kind %d inside snapshot stream", ErrCorrupt, kind)
	}
	return nil
}

// drain consumes the rest of the stream through the SNAPEND trailer so
// the trailer's integrity check runs even when the applier stopped
// reading early, and returns nil only for a complete, valid stream.
func (sr *snapReader) drain() error {
	if _, err := io.Copy(io.Discard, sr); err != nil {
		return err
	}
	if !sr.done {
		return fmt.Errorf("%w: snapshot stream incomplete", ErrCorrupt)
	}
	return nil
}
