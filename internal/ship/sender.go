package ship

import (
	"bufio"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"aets/internal/epoch"
)

// SenderConfig configures the primary side of a replication link.
type SenderConfig struct {
	// Dial opens a connection to the backup. Required. Called again on
	// every reconnect, so wrappers (FaultDialer) can script per-attempt
	// behaviour.
	Dial func() (net.Conn, error)
	// Schema is the workload schema hash exchanged in the handshake (see
	// SchemaHash). Both ends must match.
	Schema uint64
	// Window bounds the sent-but-unacknowledged epochs. Send blocks when
	// the window is full: the primary applies backpressure instead of
	// buffering without bound when the backup's replay stalls.
	// Default 32.
	Window int
	// HeartbeatEvery emits HEARTBEAT frames at this interval so an idle
	// stream still advances the backup's global commit timestamp (the
	// paper's dummy-log mechanism). 0 disables.
	HeartbeatEvery time.Duration
	// HeartbeatTS supplies the commit timestamp through which the
	// replication stream is complete: every transaction committed at or
	// below it has already been handed to Send. Heartbeats advertise
	// this timestamp to the backup's visibility machinery, so a value
	// ahead of the shipped stream would make unreplayed data appear
	// visible. Heartbeats are only emitted while the in-flight window is
	// empty (everything enqueued is acked), and carry the larger of this
	// and the last enqueued epoch's commit timestamp. Nil sends the last
	// enqueued epoch's timestamp alone (0 before the first Send, which
	// the backup's monotone publish ignores).
	HeartbeatTS func() int64
	// RetryBase and RetryMax bound the exponential reconnect backoff
	// (jittered). Defaults 25ms and 1s.
	RetryBase, RetryMax time.Duration
	// MaxAttempts is the consecutive dial/handshake failures tolerated
	// before giving up. Default 8.
	MaxAttempts int
	// Seed makes the backoff jitter deterministic. Default 1.
	Seed int64
	// Metrics receives the shipping counters; nil registers the default
	// names in metrics.Default.
	Metrics *Metrics
	// Compress advertises CapFlate in the v2 handshake and compresses
	// EPOCH bufs of at least CompressThreshold bytes when the receiver
	// advertises it back. A peer that speaks only v1, or one that does
	// not advertise the capability, gets the uncompressed stream —
	// negotiation is per connection, so a mixed fleet compresses on the
	// links that can.
	Compress bool
	// CompressThreshold is the smallest epoch buf compressed, in bytes.
	// Default DefaultCompressThreshold.
	CompressThreshold int
	// MaxVersion caps the protocol version offered in the handshake;
	// 0 means the highest this build speaks. Set 1 to emulate a legacy
	// v1 sender (mixed-version tests).
	MaxVersion byte
	// Snapshot, when set, advertises CapSnapshot and enables wire-level
	// catch-up: a receiver whose cursor this sender cannot serve (below
	// the oldest retained epoch, regressed past the ack cursor, or
	// explicitly requesting repair) is streamed a full-state snapshot
	// and resumes the epoch stream at the snapshot's cursor. Nil keeps
	// the classic behaviour: an unservable cursor gaps the link.
	Snapshot SnapshotSource
}

// SenderStats is a point-in-time view of a sender's progress.
type SenderStats struct {
	Sent        int64 // epoch frames written (incl. retransmissions)
	Acked       int64 // epochs retired by acks or resume trims
	Reconnects  int64
	Inflight    int           // sent-but-unacked epochs
	AckCursor   uint64        // backup's cumulative cursor
	Lag         time.Duration // age of the oldest unacked epoch
	Connected   bool          // a connection is currently established
	BytesRaw    int64         // epoch bytes before compression (incl. framing)
	BytesWire   int64         // epoch bytes actually written
	Compressing bool          // current connection negotiated CapFlate
	Snapshots   int64         // catch-up snapshots streamed to this peer
	SnapWait    bool          // a streamed snapshot awaits the receiver's restore ack
}

// Sender ships encoded epochs to one backup. Connections are opened
// lazily on the first Send (or explicitly via Connect); a broken
// connection is re-dialed with jittered exponential backoff and the
// stream resumes from the cursor the backup reports in its WELCOME, so
// unacked epochs are retransmitted and nothing gaps.
//
// Send may be called from one producer goroutine; Stats and Close are
// safe from any goroutine.
type Sender struct {
	cfg SenderConfig
	m   *Metrics
	rng *rand.Rand

	mu   sync.Mutex
	cond *sync.Cond

	conn    net.Conn
	bw      *bufio.Writer
	gen     int // connection generation, invalidates stale ack readers
	connErr error
	dialing bool
	everUp  bool

	pending   []*epoch.Encoded // sent or to-send, not yet acked
	pendingAt []time.Time
	sentIdx   int // pending[:sentIdx] written on the current conn
	ackCursor uint64
	lastSeq   uint64
	haveSeq   bool
	lastTS    int64 // commit ts of the last enqueued epoch

	// negotiated is the capability intersection of the current
	// connection's handshake (0 on a v1 link); peerV1 sticks once a
	// peer has demonstrably rejected a v2 HELLO, so later reconnects
	// skip the doomed attempt.
	negotiated uint64
	peerV1     bool
	comp       epochCompressor
	frameBuf   []byte
	bytesRaw   int64
	bytesWire  int64

	// snapNeeded records that the receiver's state must be replaced
	// before the epoch stream can continue: a hole was enqueued (an
	// epoch skipped ahead of lastSeq+1), the handshake cursor regressed
	// below the retire point, or the receiver's WELCOME requested
	// repair. Acted on in flushLocked when a snapshot source is
	// configured and the link negotiated CapSnapshot.
	snapNeeded bool
	snapsSent  int64
	// snapWait is the cursor of a streamed snapshot the receiver has not
	// acknowledged yet (0 when none). Streaming retires the pending
	// epochs the snapshot covers, so without this the link would look
	// drained the moment the bytes left the buffer — and Close could
	// tear the connection down while the receiver is still reading the
	// transfer out of its socket buffer, losing the whole catch-up.
	// Cleared by the restore ack, or by a handshake whose cursor proves
	// the restore landed; a reconnect below it re-detects the gap and
	// restarts the transfer.
	snapWait uint64
	// permErr marks the stream unrecoverable on this link (a hole only a
	// snapshot can bridge, against a peer that cannot apply one):
	// reconnecting cannot help, so Send/Close fail fast instead of
	// redialing forever.
	permErr error

	sent, acked, reconnects int64

	closed bool
	stop   chan struct{}
}

// NewSender returns a Sender; no connection is made until the first
// Send or Connect. The configuration is validated here — a nil Dial is
// an error, not a panic, so embedding programs surface wiring mistakes
// through their normal error paths.
func NewSender(cfg SenderConfig) (*Sender, error) {
	if cfg.Dial == nil {
		return nil, fmt.Errorf("ship: SenderConfig.Dial is required")
	}
	if cfg.Window <= 0 {
		cfg.Window = 32
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 25 * time.Millisecond
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = time.Second
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 8
	}
	if cfg.CompressThreshold <= 0 {
		cfg.CompressThreshold = DefaultCompressThreshold
	}
	if cfg.MaxVersion == 0 {
		cfg.MaxVersion = maxKnownVersion
	}
	if cfg.Metrics == nil {
		cfg.Metrics = NewMetrics(nil)
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	s := &Sender{
		cfg:  cfg,
		m:    cfg.Metrics,
		rng:  rand.New(rand.NewSource(seed)),
		stop: make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	if cfg.HeartbeatEvery > 0 {
		go s.heartbeatLoop()
	}
	return s, nil
}

// Connect dials and handshakes eagerly so misconfiguration (bad
// address, schema mismatch) fails before any epoch is generated.
func (s *Sender) Connect() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.connectLocked()
}

// Send enqueues one epoch and writes it out. It blocks while the
// in-flight window is full (backpressure) or while a broken connection
// is being re-established. A nil return means the epoch is queued and
// will be retransmitted across reconnects until the backup acknowledges
// it; durability is confirmed by acks, observable via Stats.
func (s *Sender) Send(enc *epoch.Encoded) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.closed {
			return ErrClosed
		}
		if s.conn == nil || s.connErr != nil {
			if err := s.connectLocked(); err != nil {
				return err
			}
			continue
		}
		if len(s.pending) < s.cfg.Window {
			break
		}
		s.cond.Wait()
	}
	if enc.Seq < s.ackCursor {
		// Already covered by the backup's cumulative cursor (a resume
		// handshake ran ahead of the replay): durable remotely, nothing
		// to transmit.
		s.acked++
		s.m.EpochsAcked.Inc()
		return nil
	}
	if s.haveSeq && enc.Seq > s.lastSeq+1 {
		// The producer skipped epochs (a fan-out queue shed its backlog
		// on overflow): the stream now has a hole only a snapshot can
		// bridge.
		s.snapNeeded = true
	}
	s.pending = append(s.pending, enc)
	s.pendingAt = append(s.pendingAt, time.Now())
	s.lastSeq, s.haveSeq = enc.Seq, true
	if enc.LastCommitTS > s.lastTS {
		s.lastTS = enc.LastCommitTS
	}
	s.flushLocked()
	s.gaugesLocked()
	return nil
}

// Close drains the window — reconnecting if needed until every pending
// epoch is acknowledged — then sends a clean end-of-stream marker and
// tears the link down. It returns the first unrecoverable error.
func (s *Sender) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var err error
	for !s.closed && (len(s.pending) > 0 || s.snapWait != 0) {
		if s.conn == nil || s.connErr != nil {
			if err = s.connectLocked(); err != nil {
				break
			}
			continue
		}
		s.cond.Wait()
	}
	if s.closed {
		return ErrClosed
	}
	if err == nil && s.conn != nil && s.connErr == nil {
		if werr := WriteFrame(s.bw, KindEOS, appendCursor(nil, s.ackCursor)); werr == nil {
			_ = s.bw.Flush()
		}
	}
	s.closed = true
	close(s.stop)
	if s.conn != nil {
		s.conn.Close()
		s.conn = nil
	}
	s.m.Connected.Set(0)
	s.cond.Broadcast()
	return err
}

// Stats returns a snapshot of the sender's progress and refreshes the
// lag/in-flight gauges.
func (s *Sender) Stats() SenderStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gaugesLocked()
	st := SenderStats{
		Sent:        s.sent,
		Acked:       s.acked,
		Reconnects:  s.reconnects,
		Inflight:    len(s.pending),
		AckCursor:   s.ackCursor,
		Connected:   s.conn != nil && s.connErr == nil && !s.closed,
		BytesRaw:    s.bytesRaw,
		BytesWire:   s.bytesWire,
		Compressing: s.conn != nil && s.connErr == nil && s.negotiated&CapFlate != 0,
		Snapshots:   s.snapsSent,
		SnapWait:    s.snapWait != 0,
	}
	if len(s.pendingAt) > 0 {
		st.Lag = time.Since(s.pendingAt[0])
	}
	return st
}

// connectLocked (re-)establishes the connection, resuming from the
// backup's cursor. It temporarily releases the lock around dialing and
// backoff sleeps; the dialing flag keeps concurrent callers out.
func (s *Sender) connectLocked() error {
	for s.dialing {
		s.cond.Wait()
		if s.closed {
			return ErrClosed
		}
	}
	if s.permErr != nil {
		return s.permErr
	}
	if s.conn != nil && s.connErr == nil {
		return nil // someone else reconnected while we waited
	}
	s.dialing = true
	defer func() {
		s.dialing = false
		s.cond.Broadcast()
	}()

	var lastErr error
	for attempt := 0; attempt < s.cfg.MaxAttempts; attempt++ {
		s.teardownLocked()
		if attempt > 0 {
			delay := s.backoffLocked(attempt - 1)
			s.mu.Unlock()
			select {
			case <-time.After(delay):
			case <-s.stop:
				s.mu.Lock()
				return ErrClosed
			}
			s.mu.Lock()
			if s.closed {
				return ErrClosed
			}
		}
		s.mu.Unlock()
		conn, cursor, caps, req, err := s.dialAndShake()
		s.mu.Lock()
		if s.closed {
			if err == nil {
				conn.Close()
			}
			return ErrClosed
		}
		if err != nil {
			if errors.Is(err, ErrSchemaMismatch) || errors.Is(err, ErrVersion) {
				return err // permanent: retrying cannot help
			}
			lastErr = err
			continue
		}
		if s.everUp {
			s.reconnects++
			s.m.Reconnects.Inc()
		}
		s.everUp = true
		s.conn = conn
		s.bw = bufio.NewWriterSize(conn, 1<<20)
		s.connErr = nil
		s.negotiated = caps
		s.m.Connected.Set(1)
		s.gen++
		if req&ReqSnapshot != 0 {
			// The receiver detected divergence and wants its state
			// replaced regardless of cursor position.
			s.snapNeeded = true
		}
		if cursor < s.ackCursor {
			// The receiver lost state it had acknowledged (crash, restore
			// from an older checkpoint): epochs below the old ack cursor
			// are no longer pending here, so only a snapshot closes the
			// gap. retireLocked below never lowers ackCursor.
			s.snapNeeded = true
		}
		if s.snapWait != 0 && cursor >= s.snapWait {
			// The restore landed; only its ack was lost to the reconnect.
			s.snapWait = 0
		}
		s.retireLocked(cursor)
		s.sentIdx = 0
		go s.readAcks(conn, s.gen)
		s.flushLocked()
		if s.permErr != nil {
			return s.permErr
		}
		if s.connErr != nil {
			lastErr = s.connErr
			continue
		}
		return nil
	}
	return fmt.Errorf("ship: connect failed after %d attempts: %w", s.cfg.MaxAttempts, lastErr)
}

// capsOffered is the capability bitset this sender advertises.
func (s *Sender) capsOffered() uint64 {
	var caps uint64
	if s.cfg.Compress {
		caps |= CapFlate
	}
	if s.cfg.Snapshot != nil {
		caps |= CapSnapshot
	}
	return caps
}

// dialAndShake runs without the lock: dial, HELLO, expect WELCOME.
// It offers a v2 handshake first (unless configured or known to be
// v1-only) and falls back to v1 on a peer that tears the link down at
// the version byte — the downgrade sticks for later reconnects only
// when the v1 retry actually succeeds, so a transient network failure
// during the v2 attempt does not silently disable compression forever.
func (s *Sender) dialAndShake() (net.Conn, uint64, uint64, uint64, error) {
	tryV2 := s.cfg.MaxVersion >= Version2 && !s.peerV1
	conn, cursor, caps, req, err := s.shake(tryV2)
	if err == nil || !tryV2 || errors.Is(err, ErrSchemaMismatch) {
		return conn, cursor, caps, req, err
	}
	conn, cursor, caps, req, err = s.shake(false)
	if err == nil {
		s.peerV1 = true
	}
	return conn, cursor, caps, req, err
}

// shake dials and runs one handshake at the chosen version. The
// returned req word carries the receiver's WELCOME request bits (only
// a snapshot-capable receiver answering a snapshot-capable HELLO sends
// the 32-byte WELCOME; otherwise req is 0).
func (s *Sender) shake(v2 bool) (net.Conn, uint64, uint64, uint64, error) {
	conn, err := s.cfg.Dial()
	if err != nil {
		return nil, 0, 0, 0, err
	}
	var hello []byte
	if v2 {
		hello = appendFrameV(nil, Version2, KindHello, 0, appendHello2(nil, s.cfg.Schema, s.capsOffered()))
	} else {
		hello = AppendFrame(nil, KindHello, appendHello(nil, s.cfg.Schema))
	}
	if _, err := conn.Write(hello); err != nil {
		conn.Close()
		return nil, 0, 0, 0, err
	}
	// ReadFrame consumes exactly one frame, so handing the conn to the
	// buffered ack reader afterwards loses no bytes.
	kind, payload, err := ReadFrame(conn)
	if err != nil {
		conn.Close()
		return nil, 0, 0, 0, err
	}
	if kind != KindWelcome {
		conn.Close()
		return nil, 0, 0, 0, fmt.Errorf("%w: expected WELCOME, got kind %d", ErrCorrupt, kind)
	}
	var schema, cursor, caps, req uint64
	switch len(payload) {
	case 32:
		schema, cursor, caps, req, err = parseWelcome3(payload)
	case 24:
		schema, cursor, caps, err = parseWelcome2(payload)
	default:
		schema, cursor, err = parseWelcome(payload)
	}
	if err != nil {
		conn.Close()
		return nil, 0, 0, 0, err
	}
	if schema != s.cfg.Schema {
		conn.Close()
		return nil, 0, 0, 0, fmt.Errorf("%w: sender %016x, receiver %016x", ErrSchemaMismatch, s.cfg.Schema, schema)
	}
	return conn, cursor, caps & s.capsOffered(), req, nil
}

// flushLocked writes every not-yet-sent pending epoch to the current
// connection. Failures park the error in connErr for the next
// reconnect; the epochs stay pending and are retransmitted.
func (s *Sender) flushLocked() {
	if s.conn == nil || s.connErr != nil {
		return
	}
	// Catch-up precedes the epoch stream: if the receiver's cursor is
	// unservable (below pending, regressed, holed, or repair-requested)
	// and this link can snapshot, replace its state first — the retire
	// at the snapshot cursor then drops every pending epoch the
	// snapshot already covers.
	if s.snapNeeded || (len(s.pending) > 0 && s.pending[0].Seq > s.ackCursor) {
		if s.cfg.Snapshot != nil && s.negotiated&CapSnapshot != 0 {
			s.streamSnapshotLocked()
			if s.connErr != nil {
				return
			}
		} else {
			// Only a snapshot can bridge this, and the link has none to
			// offer (no source, or the peer cannot apply one). Permanent:
			// shipping the gapped epoch would be rejected, and redialing
			// cannot change either end's capabilities.
			s.permErr = fmt.Errorf("%w: stream gap at epoch %d, receiver cursor %d",
				ErrSnapshotUnsupported, s.pendingFirstSeqLocked(), s.ackCursor)
			s.failLocked(s.permErr)
			return
		}
	}
	for s.sentIdx < len(s.pending) {
		enc := s.pending[s.sentIdx]
		var payload []byte
		var flags byte
		if s.negotiated&CapFlate != 0 && len(enc.Buf) >= s.cfg.CompressThreshold {
			if p := s.comp.payload(enc); p != nil {
				payload, flags = p, FlagCompressed
			}
		}
		if payload == nil {
			payload = EncodeEpoch(enc)
		}
		s.frameBuf = AppendFrameFlags(s.frameBuf[:0], KindEpoch, flags, payload)
		if _, err := s.bw.Write(s.frameBuf); err != nil {
			s.failLocked(err)
			return
		}
		// raw = the frame as it would ship uncompressed; wire = as sent.
		raw := int64(frameHdrSize + epochHdrSize + len(enc.Buf) + 4)
		s.bytesRaw += raw
		s.bytesWire += int64(len(s.frameBuf))
		s.m.BytesRaw.Add(raw)
		s.m.BytesWire.Add(int64(len(s.frameBuf)))
		s.sentIdx++
		s.sent++
		s.m.EpochsSent.Inc()
	}
	if s.bytesRaw > 0 {
		s.m.CompressionRatio.Set(float64(s.bytesWire) / float64(s.bytesRaw))
	}
	if err := s.bw.Flush(); err != nil {
		s.failLocked(err)
	}
}

// streamSnapshotLocked cuts a snapshot from the configured source and
// streams it as SNAPBEGIN | SNAPCHUNK... | SNAPEND, then retires every
// pending epoch below the snapshot's cursor (the source contract says
// the snapshot covers them). Write failures park in connErr like any
// other flush failure: the receiver's cursor is unchanged, so the next
// reconnect detects the same gap and restarts the transfer from
// scratch — a torn transfer is never resumed mid-stream.
func (s *Sender) streamSnapshotLocked() {
	cursor, size, rc, err := s.cfg.Snapshot.Snapshot()
	if err != nil {
		s.failLocked(fmt.Errorf("ship: snapshot source: %w", err))
		return
	}
	defer rc.Close()
	var claim uint64
	if size > 0 {
		claim = uint64(size)
	}
	if err := writeFrameV(s.bw, Version2, KindSnapBegin, 0, appendSnapBegin(nil, cursor, claim)); err != nil {
		s.failLocked(err)
		return
	}
	var total uint64
	var crc uint32
	chunk := make([]byte, snapChunkSize)
	for {
		n, rerr := rc.Read(chunk)
		if n > 0 {
			crc = crc32.Update(crc, castagnoli, chunk[:n])
			total += uint64(n)
			if werr := writeFrameV(s.bw, Version2, KindSnapChunk, 0, chunk[:n]); werr != nil {
				s.failLocked(werr)
				return
			}
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			s.failLocked(fmt.Errorf("ship: snapshot read: %w", rerr))
			return
		}
	}
	if err := writeFrameV(s.bw, Version2, KindSnapEnd, 0, appendSnapEnd(nil, total, crc)); err != nil {
		s.failLocked(err)
		return
	}
	if err := s.bw.Flush(); err != nil {
		s.failLocked(err)
		return
	}
	s.snapNeeded = false
	s.snapsSent++
	s.m.SnapshotsSent.Inc()
	s.snapWait = cursor
	s.retireLocked(cursor)
}

// SendDigest writes one anti-entropy DIGEST frame carrying the
// committed-state digest as of cursor seq (epochs [0, seq) applied).
// Positional and best-effort: it is written only when the link is up,
// negotiated CapSnapshot, has flushed everything enqueued, and the
// stream position matches seq — otherwise it reports false and the
// digest is simply skipped (the receiver ignores mispositioned digests
// anyway, and a skipped round costs nothing but detection latency).
func (s *Sender) SendDigest(seq uint64, ts int64, digest uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.conn == nil || s.connErr != nil || s.negotiated&CapSnapshot == 0 {
		return false
	}
	if s.snapNeeded || s.sentIdx != len(s.pending) || !s.haveSeq || s.lastSeq+1 != seq {
		return false
	}
	if err := writeFrameV(s.bw, Version2, KindDigest, 0, appendDigest(nil, seq, ts, digest)); err != nil {
		s.failLocked(err)
		return false
	}
	if err := s.bw.Flush(); err != nil {
		s.failLocked(err)
		return false
	}
	s.m.DigestsSent.Inc()
	return true
}

// pendingFirstSeqLocked is the first unretired sequence (error text).
func (s *Sender) pendingFirstSeqLocked() uint64 {
	if len(s.pending) > 0 {
		return s.pending[0].Seq
	}
	return s.ackCursor
}

// retireLocked drops pending epochs below the cumulative cursor
// (acknowledged, or already applied per a resume handshake).
func (s *Sender) retireLocked(cursor uint64) {
	n := 0
	for n < len(s.pending) && s.pending[n].Seq < cursor {
		n++
	}
	if n > 0 {
		copy(s.pending, s.pending[n:])
		for i := len(s.pending) - n; i < len(s.pending); i++ {
			s.pending[i] = nil
		}
		s.pending = s.pending[:len(s.pending)-n]
		copy(s.pendingAt, s.pendingAt[n:])
		s.pendingAt = s.pendingAt[:len(s.pendingAt)-n]
		if s.sentIdx -= n; s.sentIdx < 0 {
			s.sentIdx = 0
		}
		s.acked += int64(n)
		s.m.EpochsAcked.Add(int64(n))
	}
	if cursor > s.ackCursor {
		s.ackCursor = cursor
	}
	s.gaugesLocked()
	s.cond.Broadcast()
}

func (s *Sender) failLocked(err error) {
	if s.connErr == nil {
		s.connErr = err
	}
	if s.conn != nil {
		s.conn.Close()
	}
	s.m.Connected.Set(0)
	s.cond.Broadcast()
}

func (s *Sender) teardownLocked() {
	if s.conn != nil {
		s.conn.Close()
		s.conn = nil
	}
	s.m.Connected.Set(0)
	s.gen++
	s.sentIdx = 0
	s.negotiated = 0
}

func (s *Sender) gaugesLocked() {
	s.m.Inflight.Set(float64(len(s.pending)))
	lag := 0.0
	if len(s.pendingAt) > 0 {
		lag = time.Since(s.pendingAt[0]).Seconds()
	}
	s.m.LagSeconds.Set(lag)
}

// backoffLocked returns the jittered exponential delay for the given
// zero-based retry. Backoff saturates at RetryMax instead of letting
// the shift overflow into a zero/negative delay (a hot reconnect loop)
// at high retry counts.
func (s *Sender) backoffLocked(retry int) time.Duration {
	d := Backoff(s.cfg.RetryBase, s.cfg.RetryMax, retry)
	half := int64(d / 2)
	return time.Duration(half + s.rng.Int63n(half+1))
}

// readAcks consumes ACK frames from one connection until it dies. A
// stale generation (the sender already reconnected) exits silently.
func (s *Sender) readAcks(conn net.Conn, gen int) {
	br := bufio.NewReaderSize(conn, 1<<12)
	for {
		kind, payload, err := ReadFrame(br)
		s.mu.Lock()
		if gen != s.gen || s.closed {
			s.mu.Unlock()
			return
		}
		if err != nil {
			s.failLocked(err)
			s.mu.Unlock()
			return
		}
		if kind == KindAck {
			cursor, perr := parseCursor(payload, "ACK")
			if perr != nil {
				s.failLocked(perr)
				s.mu.Unlock()
				return
			}
			if s.snapWait != 0 && cursor >= s.snapWait {
				s.snapWait = 0
			}
			s.retireLocked(cursor)
		}
		s.mu.Unlock()
	}
}

// heartbeatLoop emits HEARTBEAT frames on a live connection. It never
// dials: reconnection stays driven by Send/Close so an abandoned sender
// does not keep redialing forever.
func (s *Sender) heartbeatLoop() {
	t := time.NewTicker(s.cfg.HeartbeatEvery)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
		}
		s.mu.Lock()
		// Only heartbeat while the window is empty: with epochs in
		// flight, a heartbeat could advertise a timestamp whose data the
		// backup has not applied yet. In-flight epochs advance visibility
		// themselves as they land.
		if !s.closed && s.conn != nil && s.connErr == nil && len(s.pending) == 0 {
			ts := s.lastTS
			if s.cfg.HeartbeatTS != nil {
				if t := s.cfg.HeartbeatTS(); t > ts {
					ts = t
				}
			}
			if err := WriteFrame(s.bw, KindHeartbeat, appendHeartbeat(nil, ts)); err != nil {
				s.failLocked(err)
			} else if err := s.bw.Flush(); err != nil {
				s.failLocked(err)
			}
		}
		s.mu.Unlock()
	}
}
