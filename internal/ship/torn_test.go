// Torn snapshot transfers: the wire is cut at every chunk boundary and
// mid-chunk, and the receiver must never install partial state — the
// retry restarts the transfer from scratch and converges exactly once.
package ship_test

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"testing"

	"aets/internal/epoch"
	"aets/internal/htap"
	"aets/internal/metrics"
	"aets/internal/ship"
)

// blobSource serves a fixed byte blob as the snapshot for cursor.
type blobSource struct {
	cursor uint64
	blob   []byte
}

func (s *blobSource) Snapshot() (uint64, int64, io.ReadCloser, error) {
	return s.cursor, int64(len(s.blob)), io.NopCloser(bytes.NewReader(s.blob)), nil
}

// tornApplier implements validate-before-install: state is recorded
// only when the stream reads through to a valid EOF. Torn attempts are
// counted and must leave state untouched.
type tornApplier struct {
	mu       sync.Mutex
	installs int
	torn     int
	state    []byte
}

func (a *tornApplier) Feed(*epoch.Encoded) error { return nil }
func (a *tornApplier) Heartbeat(int64) error     { return nil }

func (a *tornApplier) RestoreSnapshot(cursor uint64, size int64, r io.Reader) error {
	data, err := io.ReadAll(r)
	a.mu.Lock()
	defer a.mu.Unlock()
	if err != nil {
		// The stream reader refused to produce EOF for an incomplete
		// transfer; nothing installs.
		a.torn++
		return err
	}
	a.installs++
	a.state = data
	return nil
}

func (a *tornApplier) installed() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.installs > 0
}

// TestTornSnapshotTransferNeverInstallsPartial cuts the wire at every
// chunk frame boundary, mid-chunk, mid-SNAPBEGIN and mid-trailer. Each
// cut must leave the applier empty (no partial install), and the clean
// retry must install the full blob exactly once.
func TestTornSnapshotTransferNeverInstallsPartial(t *testing.T) {
	const schema = uint64(0xfeedf00d)
	blob := bytes.Repeat([]byte("snapshot-catchup-bytes!\n"), 25000) // 600000 bytes, 3 chunks
	for i := range blob {
		blob[i] ^= byte(i) // no long runs, defeats any accidental dedup
	}

	// Wire byte offsets of interest. v2 HELLO is a 28-byte frame and is
	// counted too — the fault conn cuts at absolute stream offsets.
	const helloLen, beginLen, frameOverhead, trailerLen = 28, 28, 12, 24
	off := int64(helloLen + beginLen)
	cuts := []int64{off - 5, off} // mid-SNAPBEGIN, at SNAPBEGIN boundary
	for rem := len(blob); rem > 0; {
		c := rem
		if c > 256<<10 {
			c = 256 << 10
		}
		off += int64(c + frameOverhead)
		cuts = append(cuts, off-7, off) // mid-chunk, at chunk boundary
		rem -= c
	}
	cuts = append(cuts, off+trailerLen/2, off+trailerLen) // mid-trailer, after full stream

	for _, cut := range cuts {
		cut := cut
		t.Run(fmt.Sprintf("cut@%d", cut), func(t *testing.T) {
			t.Parallel()
			applier := &tornApplier{}
			rcv := mustReceiver(t, ship.ReceiverConfig{
				Schema:       schema,
				Applier:      applier,
				NeedSnapshot: func() bool { return !applier.installed() },
				Metrics:      ship.NewMetrics(metrics.NewRegistry()),
			})
			ln := listen(t)
			done, _ := serveLoop(ln, rcv)

			s := mustSender(t, ship.SenderConfig{
				Dial: ship.FaultDialer(dialer(ln.Addr().String()), func(i int) ship.FaultOpts {
					if i == 0 {
						return ship.FaultOpts{CutWriteAfter: cut}
					}
					return ship.FaultOpts{}
				}),
				Schema:      schema,
				Window:      4,
				MaxAttempts: 6,
				Metrics:     ship.NewMetrics(metrics.NewRegistry()),
				Snapshot:    &blobSource{cursor: 42, blob: blob},
			})
			if err := s.Connect(); err != nil {
				t.Fatal(err)
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			// EOS is best-effort: a cut landing after the complete stream
			// loses it, and the receiver (correctly) keeps serving. End
			// the loop through the listener instead.
			ln.Close()
			waitDone(t, done, "receiver")

			applier.mu.Lock()
			installs, torn, state := applier.installs, applier.torn, applier.state
			applier.mu.Unlock()
			if installs != 1 {
				t.Fatalf("snapshot installed %d times, want exactly 1 (torn attempts: %d)", installs, torn)
			}
			if !bytes.Equal(state, blob) {
				t.Fatalf("installed state diverged: %d bytes, want %d", len(state), len(blob))
			}
			if st := rcv.Stats(); st.SnapshotsRestored != 1 {
				t.Fatalf("receiver counted %d restores, want 1", st.SnapshotsRestored)
			}
			if got := rcv.Cursor(); got != 42 {
				t.Fatalf("cursor = %d after restore, want 42", got)
			}
		})
	}
}

// TestTornSnapshotRestoreKeepsOldStateQueryable runs the same fault at
// the htap layer: a replica holding committed state is offered an
// unservable tail, the first snapshot transfer is torn mid-stream, and
// the replica's prior state must remain fully queryable until a
// complete transfer installs — then the retry converges to the
// mirror's full state.
func TestTornSnapshotRestoreKeepsOldStateQueryable(t *testing.T) {
	encs := tpccEncoded(2000, 128)
	half := len(encs) / 2
	mirror := directNode(t, encs)
	defer mirror.Close()
	oldRef := directNode(t, encs[:half])
	defer oldRef.Close()

	reg := metrics.NewRegistry()
	host, err := htap.NewNodeHost(htap.KindAETS, tpccPlan(), htap.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer host.Close()
	// The replica already holds the first half of the stream.
	for i := range encs[:half] {
		if err := host.Feed(&encs[i]); err != nil {
			t.Fatal(err)
		}
	}
	host.Node().Drain()
	rcv, err := host.ShipReceiver(ship.ReceiverConfig{Schema: tpccSchema(), Metrics: ship.NewMetrics(reg)})
	if err != nil {
		t.Fatal(err)
	}
	ln := listen(t)
	done, _ := serveLoop(ln, rcv)

	// Measure the snapshot so the cut lands mid-stream no matter how
	// large the checkpoint is.
	src := &htap.NodeSnapshotSource{N: mirror}
	_, size, rc, err := src.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	rc.Close()
	cut := int64(28+28) + size/2

	s := mustSender(t, ship.SenderConfig{
		Dial: ship.FaultDialer(dialer(ln.Addr().String()), func(i int) ship.FaultOpts {
			if i == 0 {
				return ship.FaultOpts{CutWriteAfter: cut}
			}
			return ship.FaultOpts{}
		}),
		Schema:      tpccSchema(),
		Window:      8,
		MaxAttempts: 1,
		Metrics:     ship.NewMetrics(metrics.NewRegistry()),
		Snapshot:    src,
	})
	// Offering an epoch past the replica's cursor forces the snapshot;
	// the first transfer tears mid-stream.
	tail := encs[half+len(encs)/4:]
	if err := s.Send(&tail[0]); err == nil {
		if st := s.Stats(); st.Snapshots != 0 {
			t.Fatalf("torn attempt completed a snapshot (%d)", st.Snapshots)
		}
	}

	// The torn transfer must leave the replica's prior state intact and
	// queryable — same cursor, same contents.
	if got := host.Node().NextSeq(); got != uint64(half) {
		t.Fatalf("replica cursor moved to %d after torn transfer, want %d", got, half)
	}
	if st := rcv.Stats(); st.SnapshotsRestored != 0 {
		t.Fatalf("receiver counted %d restores after torn transfer", st.SnapshotsRestored)
	}
	assertSameState(t, host.Node(), oldRef)

	// The clean retry re-bases the replica and the remaining tail rides
	// the normal stream (or is retired under the snapshot's cursor).
	if err := s.Connect(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(tail); i++ {
		if err := s.Send(&tail[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	waitDone(t, done, "receiver")
	if st := rcv.Stats(); st.SnapshotsRestored != 1 {
		t.Fatalf("receiver counted %d restores, want 1", st.SnapshotsRestored)
	}
	assertSameState(t, host.Node(), mirror)
}
