package ship

import "aets/internal/metrics"

// Metrics holds the shipping gauges and counters. Both ends of a link
// can share one instance (single-process demos) or keep their own.
type Metrics struct {
	// EpochsSent counts epoch frames written by the sender, including
	// retransmissions after a reconnect.
	EpochsSent *metrics.Counter
	// EpochsAcked counts epochs the sender has retired: cumulatively
	// acknowledged by the backup, or trimmed by a resume handshake.
	EpochsAcked *metrics.Counter
	// Inflight is the sender's current sent-but-unacked window occupancy.
	Inflight *metrics.Gauge
	// Reconnects counts re-established connections (the first connect is
	// not a reconnect).
	Reconnects *metrics.Counter
	// LagSeconds is the age of the oldest unacknowledged epoch (0 when
	// the window is empty): how far the backup's replay trails the
	// primary's send point.
	LagSeconds *metrics.Gauge
	// Duplicates counts epochs the receiver dropped as already applied
	// (redelivered after a mid-window reconnect).
	Duplicates *metrics.Counter
	// Connected is the link state: 1 while a connection is established
	// (sender side) or a stream is being served (receiver side), else 0.
	Connected *metrics.Gauge
}

// NewMetrics registers the shipping metrics in r (metrics.Default when
// nil) under their canonical names and returns the handle.
func NewMetrics(r *metrics.Registry) *Metrics {
	if r == nil {
		r = metrics.Default
	}
	return &Metrics{
		EpochsSent:  r.Counter("ship_epochs_sent"),
		EpochsAcked: r.Counter("ship_epochs_acked"),
		Inflight:    r.Gauge("ship_inflight"),
		Reconnects:  r.Counter("ship_reconnects_total"),
		LagSeconds:  r.Gauge("ship_lag_seconds"),
		Duplicates:  r.Counter("ship_duplicates_total"),
		Connected:   r.Gauge("ship_connected"),
	}
}
