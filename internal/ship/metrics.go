package ship

import "aets/internal/metrics"

// Metrics holds the shipping gauges and counters. Both ends of a link
// can share one instance (single-process demos) or keep their own.
type Metrics struct {
	// EpochsSent counts epoch frames written by the sender, including
	// retransmissions after a reconnect.
	EpochsSent *metrics.Counter
	// EpochsAcked counts epochs the sender has retired: cumulatively
	// acknowledged by the backup, or trimmed by a resume handshake.
	EpochsAcked *metrics.Counter
	// Inflight is the sender's current sent-but-unacked window occupancy.
	Inflight *metrics.Gauge
	// Reconnects counts re-established connections (the first connect is
	// not a reconnect).
	Reconnects *metrics.Counter
	// LagSeconds is the age of the oldest unacknowledged epoch (0 when
	// the window is empty): how far the backup's replay trails the
	// primary's send point.
	LagSeconds *metrics.Gauge
	// Duplicates counts epochs the receiver dropped as already applied
	// (redelivered after a mid-window reconnect).
	Duplicates *metrics.Counter
	// Connected is the link state: 1 while a connection is established
	// (sender side) or a stream is being served (receiver side), else 0.
	Connected *metrics.Gauge
	// BytesRaw counts the bytes epoch frames would have occupied
	// uncompressed (header + payload + CRC), and BytesWire the bytes
	// actually written; their quotient is the link's achieved
	// compression ratio. Equal when compression is off or unnegotiated.
	BytesRaw  *metrics.Counter
	BytesWire *metrics.Counter
	// CompressionRatio is the cumulative wire/raw byte ratio for epoch
	// frames (1.0 = uncompressed, lower is better).
	CompressionRatio *metrics.Gauge
	// SnapshotsSent counts catch-up snapshots the sender streamed to a
	// receiver whose cursor it could not serve; SnapshotsRestored counts
	// snapshots the receiver validated and installed. Named cluster_*
	// for the fleet dashboards that consume them — a snapshot is always
	// a cluster-level catch-up event even on a single link.
	SnapshotsSent     *metrics.Counter
	SnapshotsRestored *metrics.Counter
	// DigestsSent and DigestsVerified count anti-entropy digest frames
	// shipped and compared; DigestMismatches counts comparisons where
	// the receiver's committed state diverged from the sender's —
	// silent corruption the snapshot path then repairs.
	DigestsSent      *metrics.Counter
	DigestsVerified  *metrics.Counter
	DigestMismatches *metrics.Counter
}

// NewMetrics registers the shipping metrics in r (metrics.Default when
// nil) under their canonical names and returns the handle.
func NewMetrics(r *metrics.Registry) *Metrics {
	return NewPeerMetrics(r, "")
}

// NewPeerMetrics registers the shipping metrics with a `peer` label, so a
// process driving several replication links (cluster fan-out: one sender
// per replica) exposes each link's connection state, acks and resumes as
// its own series instead of one aggregate. An empty peer keeps the
// unlabelled canonical names — single-link deployments are unchanged.
func NewPeerMetrics(r *metrics.Registry, peer string) *Metrics {
	if r == nil {
		r = metrics.Default
	}
	name := func(base string) string { return metrics.WithLabel(base, "peer", peer) }
	return &Metrics{
		EpochsSent:  r.Counter(name("ship_epochs_sent")),
		EpochsAcked: r.Counter(name("ship_epochs_acked")),
		Inflight:    r.Gauge(name("ship_inflight")),
		Reconnects:  r.Counter(name("ship_reconnects_total")),
		LagSeconds:  r.Gauge(name("ship_lag_seconds")),
		Duplicates:  r.Counter(name("ship_duplicates_total")),
		Connected:   r.Gauge(name("ship_connected")),

		BytesRaw:         r.Counter(name("ship_bytes_raw_total")),
		BytesWire:        r.Counter(name("ship_bytes_wire_total")),
		CompressionRatio: r.Gauge(name("ship_compression_ratio")),

		SnapshotsSent:     r.Counter(name("cluster_snapshot_sent_total")),
		SnapshotsRestored: r.Counter(name("cluster_snapshot_restored_total")),
		DigestsSent:       r.Counter(name("ship_digests_sent_total")),
		DigestsVerified:   r.Counter(name("ship_digests_verified_total")),
		DigestMismatches:  r.Counter(name("cluster_digest_mismatch_total")),
	}
}
