// Package ship is the replication transport between a primary and a
// backup: a versioned, CRC-framed epoch-shipping protocol with a
// resume handshake, cumulative acknowledgements, a bounded in-flight
// window (backpressure), idle-stream heartbeats and reconnect with
// exponential backoff. It replaces the hand-rolled socket framing the
// demos used to carry and makes the stream survive faults: a dropped
// connection resumes from the backup's cursor instead of gapping or
// restarting.
//
// Wire format, all little endian. Every message is one frame:
//
//	magic 0xA7 | version u8 | kind u8 | flags u8 (0) | payloadLen u32 |
//	payload | crc32c(header‖payload) u32
//
// Frame kinds and payloads (version 1):
//
//	HELLO     sender→receiver  schemaHash u64
//	WELCOME   receiver→sender  schemaHash u64 | cursor u64
//	EPOCH     sender→receiver  seq u64 | txnCount u32 | lastTxnID u64 |
//	                           lastCommitTS i64 | entryCount u32 |
//	                           bufLen u32 | buf
//	ACK       receiver→sender  cursor u64 (cumulative)
//	HEARTBEAT sender→receiver  ts i64
//	EOS       sender→receiver  cursor u64 (clean end of stream)
//
// A cursor is always "the next epoch sequence number expected": epoch
// seqs start at 0, so a cursor of n means epochs [0, n) are applied.
package ship

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"

	"aets/internal/epoch"
	"aets/internal/wal"
)

// Version is the protocol version carried in every frame header.
const Version = 1

const (
	frameMagic   = 0xA7
	frameHdrSize = 8
	// MaxPayload bounds a frame payload; larger lengths are rejected as
	// corruption before any allocation.
	MaxPayload = 1 << 28
)

// Frame kinds.
const (
	KindHello     byte = 1
	KindWelcome   byte = 2
	KindEpoch     byte = 3
	KindAck       byte = 4
	KindHeartbeat byte = 5
	KindEOS       byte = 6
)

var (
	// ErrCorrupt marks a structurally invalid frame: bad magic, flags,
	// oversized length, CRC mismatch, or a malformed payload.
	ErrCorrupt = errors.New("ship: corrupt frame")
	// ErrShortFrame marks a frame truncated mid-read (the connection was
	// cut inside a frame).
	ErrShortFrame = errors.New("ship: short frame")
	// ErrVersion marks a frame with an unsupported protocol version.
	ErrVersion = errors.New("ship: unsupported protocol version")
	// ErrSchemaMismatch is returned when the two ends of a handshake
	// disagree on the workload schema hash. It is permanent: the sender
	// does not retry it.
	ErrSchemaMismatch = errors.New("ship: workload schema mismatch")
	// ErrGap is returned by the receiver when an epoch arrives beyond the
	// next expected sequence — the stream lost data.
	ErrGap = errors.New("ship: epoch sequence gap")
	// ErrClosed is returned by operations on a closed Sender.
	ErrClosed = errors.New("ship: sender closed")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// AppendFrame appends one encoded frame to dst and returns the result.
func AppendFrame(dst []byte, kind byte, payload []byte) []byte {
	off := len(dst)
	dst = append(dst, frameMagic, Version, kind, 0)
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(payload)))
	dst = append(dst, n[:]...)
	dst = append(dst, payload...)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(dst[off:], castagnoli))
	return append(dst, crc[:]...)
}

// WriteFrame writes one frame to w as a single Write call, so
// conn-level fault injection (and packet captures) see whole frames.
func WriteFrame(w io.Writer, kind byte, payload []byte) error {
	_, err := w.Write(AppendFrame(nil, kind, payload))
	return err
}

// ReadFrame reads one frame from r and verifies its CRC. A clean EOF at
// a frame boundary is io.EOF; truncation inside a frame is
// ErrShortFrame; structural damage is ErrCorrupt; a foreign version is
// ErrVersion. It never panics on malformed input.
func ReadFrame(r io.Reader) (kind byte, payload []byte, err error) {
	var hdr [frameHdrSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("%w: header: %v", ErrShortFrame, err)
	}
	if hdr[0] != frameMagic {
		return 0, nil, fmt.Errorf("%w: bad magic 0x%02x", ErrCorrupt, hdr[0])
	}
	if hdr[1] != Version {
		return 0, nil, fmt.Errorf("%w: %d", ErrVersion, hdr[1])
	}
	if hdr[3] != 0 {
		return 0, nil, fmt.Errorf("%w: nonzero flags", ErrCorrupt)
	}
	n := binary.LittleEndian.Uint32(hdr[4:])
	if n > MaxPayload {
		return 0, nil, fmt.Errorf("%w: payload length %d", ErrCorrupt, n)
	}
	body := make([]byte, int(n)+4)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, fmt.Errorf("%w: body: %v", ErrShortFrame, err)
	}
	payload = body[:n]
	sum := crc32.Update(crc32.Checksum(hdr[:], castagnoli), castagnoli, payload)
	if sum != binary.LittleEndian.Uint32(body[n:]) {
		return 0, nil, fmt.Errorf("%w: crc mismatch", ErrCorrupt)
	}
	return hdr[2], payload, nil
}

// epochHdrSize is the fixed prefix of an EPOCH payload (the summary
// fields available without parsing the log buffer).
const epochHdrSize = 36

// EncodeEpoch returns the EPOCH frame payload for enc.
func EncodeEpoch(enc *epoch.Encoded) []byte {
	p := make([]byte, epochHdrSize, epochHdrSize+len(enc.Buf))
	binary.LittleEndian.PutUint64(p[0:], enc.Seq)
	binary.LittleEndian.PutUint32(p[8:], uint32(enc.TxnCount))
	binary.LittleEndian.PutUint64(p[12:], enc.LastTxnID)
	binary.LittleEndian.PutUint64(p[20:], uint64(enc.LastCommitTS))
	binary.LittleEndian.PutUint32(p[28:], uint32(enc.EntryCount))
	binary.LittleEndian.PutUint32(p[32:], uint32(len(enc.Buf)))
	return append(p, enc.Buf...)
}

// DecodeEpoch parses an EPOCH frame payload. Malformed payloads return
// ErrCorrupt, never panic.
func DecodeEpoch(p []byte) (*epoch.Encoded, error) {
	if len(p) < epochHdrSize {
		return nil, fmt.Errorf("%w: epoch payload %d bytes", ErrCorrupt, len(p))
	}
	n := binary.LittleEndian.Uint32(p[32:])
	if int(n) != len(p)-epochHdrSize {
		return nil, fmt.Errorf("%w: epoch buf length %d, have %d", ErrCorrupt, n, len(p)-epochHdrSize)
	}
	enc := &epoch.Encoded{
		Seq:          binary.LittleEndian.Uint64(p[0:]),
		TxnCount:     int(binary.LittleEndian.Uint32(p[8:])),
		LastTxnID:    binary.LittleEndian.Uint64(p[12:]),
		LastCommitTS: int64(binary.LittleEndian.Uint64(p[20:])),
		EntryCount:   int(binary.LittleEndian.Uint32(p[28:])),
	}
	if enc.TxnCount < 0 || enc.EntryCount < 0 {
		return nil, fmt.Errorf("%w: epoch counts", ErrCorrupt)
	}
	if n > 0 {
		enc.Buf = p[epochHdrSize:]
	}
	return enc, nil
}

func appendU64(dst []byte, vs ...uint64) []byte {
	for _, v := range vs {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		dst = append(dst, b[:]...)
	}
	return dst
}

func parseU64(p []byte, what string, n int) ([]uint64, error) {
	if len(p) != 8*n {
		return nil, fmt.Errorf("%w: %s payload %d bytes", ErrCorrupt, what, len(p))
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(p[8*i:])
	}
	return out, nil
}

func appendHello(dst []byte, schema uint64) []byte { return appendU64(dst, schema) }

func parseHello(p []byte) (schema uint64, err error) {
	v, err := parseU64(p, "HELLO", 1)
	if err != nil {
		return 0, err
	}
	return v[0], nil
}

func appendWelcome(dst []byte, schema, cursor uint64) []byte {
	return appendU64(dst, schema, cursor)
}

func parseWelcome(p []byte) (schema, cursor uint64, err error) {
	v, err := parseU64(p, "WELCOME", 2)
	if err != nil {
		return 0, 0, err
	}
	return v[0], v[1], nil
}

func appendCursor(dst []byte, cursor uint64) []byte { return appendU64(dst, cursor) }

func parseCursor(p []byte, what string) (uint64, error) {
	v, err := parseU64(p, what, 1)
	if err != nil {
		return 0, err
	}
	return v[0], nil
}

func appendHeartbeat(dst []byte, ts int64) []byte { return appendU64(dst, uint64(ts)) }

func parseHeartbeat(p []byte) (int64, error) {
	v, err := parseU64(p, "HEARTBEAT", 1)
	if err != nil {
		return 0, err
	}
	return int64(v[0]), nil
}

// SchemaHash fingerprints a workload schema (name plus table IDs) for
// the handshake: both ends must replay the same schema or grouping
// plans and table IDs would silently disagree.
func SchemaHash(name string, tables []wal.TableID) uint64 {
	h := fnv.New64a()
	_, _ = io.WriteString(h, name)
	var b [4]byte
	for _, t := range tables {
		binary.LittleEndian.PutUint32(b[:], uint32(t))
		_, _ = h.Write(b[:])
	}
	return h.Sum64()
}
