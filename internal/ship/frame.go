// Package ship is the replication transport between a primary and a
// backup: a versioned, CRC-framed epoch-shipping protocol with a
// resume handshake, cumulative acknowledgements, a bounded in-flight
// window (backpressure), idle-stream heartbeats and reconnect with
// exponential backoff. It replaces the hand-rolled socket framing the
// demos used to carry and makes the stream survive faults: a dropped
// connection resumes from the backup's cursor instead of gapping or
// restarting.
//
// Wire format, all little endian. Every message is one frame:
//
//	magic 0xA7 | version u8 | kind u8 | flags u8 | payloadLen u32 |
//	payload | crc32c(header‖payload) u32
//
// Frame kinds and payloads (version 1; flags must be 0):
//
//	HELLO     sender→receiver  schemaHash u64
//	WELCOME   receiver→sender  schemaHash u64 | cursor u64
//	EPOCH     sender→receiver  seq u64 | txnCount u32 | lastTxnID u64 |
//	                           lastCommitTS i64 | entryCount u32 |
//	                           bufLen u32 | buf
//	ACK       receiver→sender  cursor u64 (cumulative)
//	HEARTBEAT sender→receiver  ts i64
//	EOS       sender→receiver  cursor u64 (clean end of stream)
//
// Version 2 adds capability negotiation and per-frame compression.
// A v2 HELLO/WELCOME carries a trailing caps u64 bitset:
//
//	HELLO     sender→receiver  schemaHash u64 | caps u64
//	WELCOME   receiver→sender  schemaHash u64 | cursor u64 | caps u64
//
// When both ends advertise CapFlate, the sender may set FlagCompressed
// (header flags bit 0) on EPOCH frames: the 36-byte epoch header stays
// in the clear (bufLen holds the RAW buf length, so seq and the counts
// are readable without inflating) and the buf bytes that follow are a
// flate stream. All other frame kinds, and EPOCH frames below the
// sender's size threshold or that flate fails to shrink, keep version
// byte 1 with zero flags — so a v1 peer that never sees a v2 frame
// interoperates untouched, and a v1 receiver that is offered a v2
// HELLO rejects it with ErrVersion, which the sender answers by
// redialing at version 1.
//
// When both ends advertise CapSnapshot, the receiver answers a
// snapshot-capable HELLO with an extended 32-byte WELCOME carrying a
// trailing req u64 (request bits: bit 0 asks for an immediate
// snapshot), and the sender may interpose a snapshot catch-up sequence
// or anti-entropy digests into the epoch stream:
//
//	SNAPBEGIN sender→receiver  cursor u64 | totalBytes u64 (0 unknown)
//	SNAPCHUNK sender→receiver  raw checkpoint bytes (≤ MaxSnapChunk)
//	SNAPEND   sender→receiver  totalBytes u64 | crc32c(chunks) u32
//	DIGEST    sender→receiver  seq u64 | ts i64 | digest u64
//
// A snapshot replaces the receiver's state wholesale: after a valid
// SNAPBEGIN..SNAPEND sequence restores, the receiver's cursor jumps to
// the snapshot cursor and the epoch stream resumes there. A DIGEST
// carries the sender's committed-state digest as of cursor seq; a
// receiver at the same cursor compares and, on mismatch, requests a
// repair snapshot via the WELCOME req bit on its next handshake.
//
// A cursor is always "the next epoch sequence number expected": epoch
// seqs start at 0, so a cursor of n means epochs [0, n) are applied.
package ship

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"sync"

	"aets/internal/epoch"
	"aets/internal/wal"
)

// Version is the baseline protocol version; every frame that carries no
// v2-only feature (nonzero flags, caps handshake) still uses it on the
// wire so v1 peers can read it.
const Version = 1

// Version2 marks frames that use v2 features: the caps handshake and
// compressed EPOCH payloads.
const Version2 = 2

// maxKnownVersion is the highest version this build speaks.
const maxKnownVersion = Version2

// Frame header flag bits (version 2; must be zero in version 1).
const (
	// FlagCompressed marks an EPOCH frame whose buf bytes (after the
	// clear 36-byte epoch header) are a flate stream.
	FlagCompressed byte = 1 << 0
)

// Capability bits exchanged in the v2 handshake.
const (
	// CapFlate advertises per-frame flate compression of EPOCH bufs.
	CapFlate uint64 = 1 << 0
	// CapSnapshot advertises snapshot catch-up and digest anti-entropy:
	// a sender that cannot serve the receiver's cursor may stream a
	// chunked checkpoint snapshot, and may interleave periodic state
	// digests with the epoch stream.
	CapSnapshot uint64 = 1 << 1
)

// WELCOME request bits (the trailing req u64 of a 32-byte WELCOME,
// sent only to snapshot-capable senders).
const (
	// ReqSnapshot asks the sender for an immediate snapshot regardless
	// of cursor position — the receiver detected divergence (digest
	// mismatch) and wants its state replaced.
	ReqSnapshot uint64 = 1 << 0
)

const (
	frameMagic   = 0xA7
	frameHdrSize = 8
	// MaxPayload bounds a frame payload; larger lengths are rejected as
	// corruption before any allocation.
	MaxPayload = 1 << 28
	// MaxSnapChunk bounds one SNAPCHUNK payload. Snapshots of any size
	// ship as a sequence of bounded chunks, so no single frame — and no
	// single receiver-side allocation — scales with snapshot size.
	MaxSnapChunk = 1 << 20
	// maxPrealloc bounds the buffer allocated up front for a claimed
	// length. Payloads may legitimately reach MaxPayload, but a hostile
	// header can claim 256MB over a 10-byte stream; reading incrementally
	// from this floor means allocation tracks the bytes that actually
	// arrive instead of the attacker's claim.
	maxPrealloc = 1 << 20
)

// Frame kinds.
const (
	KindHello     byte = 1
	KindWelcome   byte = 2
	KindEpoch     byte = 3
	KindAck       byte = 4
	KindHeartbeat byte = 5
	KindEOS       byte = 6
	// Snapshot catch-up and anti-entropy frames (version 2, sent only
	// on links that negotiated CapSnapshot).
	KindSnapBegin byte = 7
	KindSnapChunk byte = 8
	KindSnapEnd   byte = 9
	KindDigest    byte = 10
)

var (
	// ErrCorrupt marks a structurally invalid frame: bad magic, flags,
	// oversized length, CRC mismatch, or a malformed payload.
	ErrCorrupt = errors.New("ship: corrupt frame")
	// ErrShortFrame marks a frame truncated mid-read (the connection was
	// cut inside a frame).
	ErrShortFrame = errors.New("ship: short frame")
	// ErrVersion marks a frame with an unsupported protocol version.
	ErrVersion = errors.New("ship: unsupported protocol version")
	// ErrSchemaMismatch is returned when the two ends of a handshake
	// disagree on the workload schema hash. It is permanent: the sender
	// does not retry it.
	ErrSchemaMismatch = errors.New("ship: workload schema mismatch")
	// ErrGap is returned by the receiver when an epoch arrives beyond the
	// next expected sequence — the stream lost data.
	ErrGap = errors.New("ship: epoch sequence gap")
	// ErrClosed is returned by operations on a closed Sender.
	ErrClosed = errors.New("ship: sender closed")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendFrameV appends one frame with an explicit version byte and
// header flags.
func appendFrameV(dst []byte, ver, kind, flags byte, payload []byte) []byte {
	off := len(dst)
	dst = append(dst, frameMagic, ver, kind, flags)
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(payload)))
	dst = append(dst, n[:]...)
	dst = append(dst, payload...)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(dst[off:], castagnoli))
	return append(dst, crc[:]...)
}

// AppendFrame appends one encoded v1 frame to dst and returns the
// result.
func AppendFrame(dst []byte, kind byte, payload []byte) []byte {
	return appendFrameV(dst, Version, kind, 0, payload)
}

// AppendFrameFlags appends one encoded frame carrying the given header
// flags. Zero flags produce a v1 frame (readable by any peer); nonzero
// flags force the version byte to Version2.
func AppendFrameFlags(dst []byte, kind, flags byte, payload []byte) []byte {
	ver := byte(Version)
	if flags != 0 {
		ver = Version2
	}
	return appendFrameV(dst, ver, kind, flags, payload)
}

// WriteFrame writes one v1 frame to w as a single Write call, so
// conn-level fault injection (and packet captures) see whole frames.
func WriteFrame(w io.Writer, kind byte, payload []byte) error {
	_, err := w.Write(AppendFrame(nil, kind, payload))
	return err
}

// writeFrameV writes one frame with an explicit version and flags as a
// single Write call.
func writeFrameV(w io.Writer, ver, kind, flags byte, payload []byte) error {
	_, err := w.Write(appendFrameV(nil, ver, kind, flags, payload))
	return err
}

// ReadFrameFlags reads one frame from r and verifies its CRC,
// returning the header's version and flags alongside kind and payload.
// A clean EOF at a frame boundary is io.EOF; truncation inside a frame
// is ErrShortFrame; structural damage is ErrCorrupt; an unknown version
// is ErrVersion. It never panics on malformed input. The payload slice
// is freshly allocated per call and never shares memory with a
// previously returned one.
func ReadFrameFlags(r io.Reader) (ver, kind, flags byte, payload []byte, err error) {
	var hdr [frameHdrSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, 0, 0, nil, io.EOF
		}
		return 0, 0, 0, nil, fmt.Errorf("%w: header: %v", ErrShortFrame, err)
	}
	if hdr[0] != frameMagic {
		return 0, 0, 0, nil, fmt.Errorf("%w: bad magic 0x%02x", ErrCorrupt, hdr[0])
	}
	ver, flags = hdr[1], hdr[3]
	if ver < Version || ver > maxKnownVersion {
		return 0, 0, 0, nil, fmt.Errorf("%w: %d", ErrVersion, ver)
	}
	if ver == Version && flags != 0 {
		return 0, 0, 0, nil, fmt.Errorf("%w: nonzero flags on v1 frame", ErrCorrupt)
	}
	if flags&^FlagCompressed != 0 {
		return 0, 0, 0, nil, fmt.Errorf("%w: unknown frame flags 0x%02x", ErrCorrupt, flags)
	}
	n := binary.LittleEndian.Uint32(hdr[4:])
	if n > MaxPayload {
		return 0, 0, 0, nil, fmt.Errorf("%w: payload length %d", ErrCorrupt, n)
	}
	body, rerr := readFullCapped(r, int(n)+4)
	if rerr != nil {
		return 0, 0, 0, nil, fmt.Errorf("%w: body: %v", ErrShortFrame, rerr)
	}
	payload = body[:n]
	sum := crc32.Update(crc32.Checksum(hdr[:], castagnoli), castagnoli, payload)
	if sum != binary.LittleEndian.Uint32(body[n:]) {
		return 0, 0, 0, nil, fmt.Errorf("%w: crc mismatch", ErrCorrupt)
	}
	return ver, hdr[2], flags, payload, nil
}

// readFullCapped reads exactly n bytes from r without trusting n for
// the initial allocation: the buffer starts at maxPrealloc and doubles
// only as bytes actually arrive, so a hostile length prefix over a
// short stream costs one bounded allocation before ErrShortFrame
// surfaces, not the 256MB the header claims.
func readFullCapped(r io.Reader, n int) ([]byte, error) {
	step := n
	if step > maxPrealloc {
		step = maxPrealloc
	}
	buf := make([]byte, step)
	for {
		if _, err := io.ReadFull(r, buf[len(buf)-step:]); err != nil {
			return nil, err
		}
		if len(buf) == n {
			return buf, nil
		}
		step = len(buf)
		if step > n-len(buf) {
			step = n - len(buf)
		}
		nb := make([]byte, len(buf)+step)
		copy(nb, buf)
		buf = nb
	}
}

// ReadFrame reads one frame from r and verifies its CRC. It accepts
// both protocol versions but rejects frames with nonzero flags — use
// ReadFrameFlags on paths (the receiver's epoch loop, the spool scan)
// where compressed frames may appear.
func ReadFrame(r io.Reader) (kind byte, payload []byte, err error) {
	_, kind, flags, payload, err := ReadFrameFlags(r)
	if err != nil {
		return 0, nil, err
	}
	if flags != 0 {
		return 0, nil, fmt.Errorf("%w: unexpected compressed frame", ErrCorrupt)
	}
	return kind, payload, nil
}

// epochHdrSize is the fixed prefix of an EPOCH payload (the summary
// fields available without parsing — or inflating — the log buffer).
const epochHdrSize = 36

// appendEpochHdr appends the 36-byte EPOCH payload header for enc.
// The bufLen field always holds the raw (uncompressed) buf length.
func appendEpochHdr(dst []byte, enc *epoch.Encoded) []byte {
	var p [epochHdrSize]byte
	binary.LittleEndian.PutUint64(p[0:], enc.Seq)
	binary.LittleEndian.PutUint32(p[8:], uint32(enc.TxnCount))
	binary.LittleEndian.PutUint64(p[12:], enc.LastTxnID)
	binary.LittleEndian.PutUint64(p[20:], uint64(enc.LastCommitTS))
	binary.LittleEndian.PutUint32(p[28:], uint32(enc.EntryCount))
	binary.LittleEndian.PutUint32(p[32:], uint32(len(enc.Buf)))
	return append(dst, p[:]...)
}

// EncodeEpoch returns the uncompressed EPOCH frame payload for enc.
func EncodeEpoch(enc *epoch.Encoded) []byte {
	p := appendEpochHdr(make([]byte, 0, epochHdrSize+len(enc.Buf)), enc)
	return append(p, enc.Buf...)
}

// DecodeEpoch parses an uncompressed EPOCH frame payload. Malformed
// payloads return ErrCorrupt, never panic.
//
// Ownership: the returned enc.Buf ALIASES p — no copy is made on this
// hot path. The caller must not reuse or mutate p while the epoch is
// retained. Both wire paths uphold this: ReadFrameFlags allocates a
// fresh payload per frame, and spool replay allocates per epoch.
func DecodeEpoch(p []byte) (*epoch.Encoded, error) {
	return DecodeEpochFrame(0, p)
}

// flateReaders pools flate decompressors across frames; inflating
// allocates ~45KB of window state otherwise.
var flateReaders sync.Pool

// DecodeEpochFrame parses an EPOCH frame payload under the frame's
// header flags. With FlagCompressed set, the buf bytes after the clear
// epoch header are inflated into a freshly allocated buffer (which
// therefore never aliases p); the bufLen header field must match the
// inflated size exactly. Malformed or truncated compressed payloads
// return ErrCorrupt, never panic.
func DecodeEpochFrame(flags byte, p []byte) (*epoch.Encoded, error) {
	if flags&^FlagCompressed != 0 {
		return nil, fmt.Errorf("%w: unknown frame flags 0x%02x", ErrCorrupt, flags)
	}
	if len(p) < epochHdrSize {
		return nil, fmt.Errorf("%w: epoch payload %d bytes", ErrCorrupt, len(p))
	}
	n := binary.LittleEndian.Uint32(p[32:])
	if n > MaxPayload {
		return nil, fmt.Errorf("%w: epoch buf length %d", ErrCorrupt, n)
	}
	enc := &epoch.Encoded{
		Seq:          binary.LittleEndian.Uint64(p[0:]),
		TxnCount:     int(binary.LittleEndian.Uint32(p[8:])),
		LastTxnID:    binary.LittleEndian.Uint64(p[12:]),
		LastCommitTS: int64(binary.LittleEndian.Uint64(p[20:])),
		EntryCount:   int(binary.LittleEndian.Uint32(p[28:])),
	}
	// Counts must be sane relative to the buf: every transaction and
	// every entry occupies at least one buf byte (a wal entry frame is
	// ≥12 bytes), so a hostile header claiming ~4B entries over a tiny
	// buf is rejected here instead of poisoning consumers that trust
	// EntryCount for preallocation or accounting.
	if uint64(enc.TxnCount) > uint64(n) || uint64(enc.EntryCount) > uint64(n) {
		return nil, fmt.Errorf("%w: epoch counts %d/%d exceed buf length %d",
			ErrCorrupt, enc.TxnCount, enc.EntryCount, n)
	}
	if flags&FlagCompressed == 0 {
		if int(n) != len(p)-epochHdrSize {
			return nil, fmt.Errorf("%w: epoch buf length %d, have %d", ErrCorrupt, n, len(p)-epochHdrSize)
		}
		if n > 0 {
			enc.Buf = p[epochHdrSize:]
		}
		return enc, nil
	}
	// Compressed: bufLen is the raw length, the rest of the payload is a
	// flate stream that must inflate to exactly that many bytes.
	if n == 0 || len(p) == epochHdrSize {
		return nil, fmt.Errorf("%w: empty compressed epoch buf", ErrCorrupt)
	}
	fr, _ := flateReaders.Get().(io.ReadCloser)
	src := bytes.NewReader(p[epochHdrSize:])
	if fr == nil {
		fr = flate.NewReader(src)
	} else if err := fr.(flate.Resetter).Reset(src, nil); err != nil {
		return nil, fmt.Errorf("%w: flate reset: %v", ErrCorrupt, err)
	}
	// The claimed raw length drives allocation only as far as the flate
	// stream actually delivers: a hostile bufLen over a tiny compressed
	// body fails after one bounded buffer.
	buf, err := readFullCapped(fr, int(n))
	if err != nil {
		return nil, fmt.Errorf("%w: inflate: %v", ErrCorrupt, err)
	}
	var extra [1]byte
	if m, err := fr.Read(extra[:]); m != 0 || (err != nil && err != io.EOF) {
		return nil, fmt.Errorf("%w: compressed epoch buf longer than header claims", ErrCorrupt)
	}
	flateReaders.Put(fr)
	enc.Buf = buf
	return enc, nil
}

func appendU64(dst []byte, vs ...uint64) []byte {
	for _, v := range vs {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		dst = append(dst, b[:]...)
	}
	return dst
}

func parseU64(p []byte, what string, n int) ([]uint64, error) {
	if len(p) != 8*n {
		return nil, fmt.Errorf("%w: %s payload %d bytes", ErrCorrupt, what, len(p))
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(p[8*i:])
	}
	return out, nil
}

func appendHello(dst []byte, schema uint64) []byte { return appendU64(dst, schema) }

func parseHello(p []byte) (schema uint64, err error) {
	v, err := parseU64(p, "HELLO", 1)
	if err != nil {
		return 0, err
	}
	return v[0], nil
}

func appendHello2(dst []byte, schema, caps uint64) []byte {
	return appendU64(dst, schema, caps)
}

func parseHello2(p []byte) (schema, caps uint64, err error) {
	v, err := parseU64(p, "HELLO", 2)
	if err != nil {
		return 0, 0, err
	}
	return v[0], v[1], nil
}

func appendWelcome(dst []byte, schema, cursor uint64) []byte {
	return appendU64(dst, schema, cursor)
}

func parseWelcome(p []byte) (schema, cursor uint64, err error) {
	v, err := parseU64(p, "WELCOME", 2)
	if err != nil {
		return 0, 0, err
	}
	return v[0], v[1], nil
}

func appendWelcome2(dst []byte, schema, cursor, caps uint64) []byte {
	return appendU64(dst, schema, cursor, caps)
}

func parseWelcome2(p []byte) (schema, cursor, caps uint64, err error) {
	v, err := parseU64(p, "WELCOME", 3)
	if err != nil {
		return 0, 0, 0, err
	}
	return v[0], v[1], v[2], nil
}

// appendWelcome3 is the 32-byte WELCOME sent to snapshot-capable
// senders only: the v2 WELCOME plus a trailing request bitset.
func appendWelcome3(dst []byte, schema, cursor, caps, req uint64) []byte {
	return appendU64(dst, schema, cursor, caps, req)
}

func parseWelcome3(p []byte) (schema, cursor, caps, req uint64, err error) {
	v, err := parseU64(p, "WELCOME", 4)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	return v[0], v[1], v[2], v[3], nil
}

func appendSnapBegin(dst []byte, cursor, total uint64) []byte {
	return appendU64(dst, cursor, total)
}

func parseSnapBegin(p []byte) (cursor, total uint64, err error) {
	v, err := parseU64(p, "SNAPBEGIN", 2)
	if err != nil {
		return 0, 0, err
	}
	return v[0], v[1], nil
}

func appendSnapEnd(dst []byte, total uint64, crc uint32) []byte {
	dst = appendU64(dst, total)
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], crc)
	return append(dst, b[:]...)
}

func parseSnapEnd(p []byte) (total uint64, crc uint32, err error) {
	if len(p) != 12 {
		return 0, 0, fmt.Errorf("%w: SNAPEND payload %d bytes", ErrCorrupt, len(p))
	}
	return binary.LittleEndian.Uint64(p), binary.LittleEndian.Uint32(p[8:]), nil
}

func appendDigest(dst []byte, seq uint64, ts int64, digest uint64) []byte {
	return appendU64(dst, seq, uint64(ts), digest)
}

func parseDigest(p []byte) (seq uint64, ts int64, digest uint64, err error) {
	v, err := parseU64(p, "DIGEST", 3)
	if err != nil {
		return 0, 0, 0, err
	}
	return v[0], int64(v[1]), v[2], nil
}

func appendCursor(dst []byte, cursor uint64) []byte { return appendU64(dst, cursor) }

func parseCursor(p []byte, what string) (uint64, error) {
	v, err := parseU64(p, what, 1)
	if err != nil {
		return 0, err
	}
	return v[0], nil
}

func appendHeartbeat(dst []byte, ts int64) []byte { return appendU64(dst, uint64(ts)) }

func parseHeartbeat(p []byte) (int64, error) {
	v, err := parseU64(p, "HEARTBEAT", 1)
	if err != nil {
		return 0, err
	}
	return int64(v[0]), nil
}

// SchemaHash fingerprints a workload schema (name plus table IDs) for
// the handshake: both ends must replay the same schema or grouping
// plans and table IDs would silently disagree. The name is
// length-prefixed before hashing so the (name, tables) encoding is
// injective — without it, a name whose UTF-8 tail equals another
// schema's first ID bytes would collide and pass the handshake.
func SchemaHash(name string, tables []wal.TableID) uint64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(len(name)))
	_, _ = h.Write(b[:])
	_, _ = io.WriteString(h, name)
	for _, t := range tables {
		binary.LittleEndian.PutUint32(b[:4], uint32(t))
		_, _ = h.Write(b[:4])
	}
	return h.Sum64()
}
