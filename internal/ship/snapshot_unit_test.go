package ship

// Unit tests for the snapshot/anti-entropy wire additions: the new
// payload codecs, the snapReader's validation, and the hardened length
// handling (a hostile header claiming a huge payload over a short body
// must fail fast without preallocating the claim).

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"math/rand"
	"runtime"
	"testing"
)

func TestSnapshotPayloadCodecs(t *testing.T) {
	schema, cursor, caps, req := uint64(0xabc), uint64(17), CapFlate|CapSnapshot, uint64(ReqSnapshot)
	s2, c2, p2, r2, err := parseWelcome3(appendWelcome3(nil, schema, cursor, caps, req))
	if err != nil || s2 != schema || c2 != cursor || p2 != caps || r2 != req {
		t.Fatalf("welcome3 roundtrip: %x %d %x %x, %v", s2, c2, p2, r2, err)
	}
	if _, _, _, _, err := parseWelcome3(make([]byte, 31)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("short welcome3: %v", err)
	}

	sc, claim, err := parseSnapBegin(appendSnapBegin(nil, 99, 1<<30))
	if err != nil || sc != 99 || claim != 1<<30 {
		t.Fatalf("snapbegin roundtrip: %d %d, %v", sc, claim, err)
	}
	if _, _, err := parseSnapBegin(make([]byte, 15)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("short snapbegin: %v", err)
	}

	total, crc, err := parseSnapEnd(appendSnapEnd(nil, 12345, 0xfeedbeef))
	if err != nil || total != 12345 || crc != 0xfeedbeef {
		t.Fatalf("snapend roundtrip: %d %x, %v", total, crc, err)
	}
	if _, _, err := parseSnapEnd(make([]byte, 13)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("long snapend: %v", err)
	}

	seq, ts, dg, err := parseDigest(appendDigest(nil, 7, -42, 0xdead))
	if err != nil || seq != 7 || ts != -42 || dg != 0xdead {
		t.Fatalf("digest roundtrip: %d %d %x, %v", seq, ts, dg, err)
	}
	if _, _, _, err := parseDigest(nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("empty digest: %v", err)
	}
}

// TestHostileLengthPrefixFailsWithoutPrealloc feeds a frame header
// claiming a payload just under MaxPayload followed by a 16-byte body:
// the reader must report a short frame quickly and must not allocate
// anywhere near the claimed quarter-gigabyte up front.
func TestHostileLengthPrefixFailsWithoutPrealloc(t *testing.T) {
	frame := appendFrameV(nil, Version2, KindSnapChunk, 0, bytes.Repeat([]byte{1}, 16))
	binary.LittleEndian.PutUint32(frame[4:8], MaxPayload-1)

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	_, _, _, _, err := ReadFrameFlags(bytes.NewReader(frame))
	runtime.ReadMemStats(&after)
	if !errors.Is(err, ErrShortFrame) {
		t.Fatalf("want ErrShortFrame, got %v", err)
	}
	// One capped step (1 MiB) plus slack — nowhere near the 256 MiB claim.
	if grew := after.TotalAlloc - before.TotalAlloc; grew > 8<<20 {
		t.Fatalf("hostile length prefix allocated %d bytes", grew)
	}
}

// TestHostileEpochRawLengthCapped: a compressed epoch frame whose
// declared raw size is huge must not preallocate it either — flate
// inflation is read in capped steps and dies when the stream ends.
func TestHostileEpochRawLengthCapped(t *testing.T) {
	comp := &epochCompressor{}
	enc := testEpoch(rand.New(rand.NewSource(3)), 3)
	enc.Buf = bytes.Repeat(enc.Buf[:8], 64)
	p := comp.payload(enc)
	if p == nil {
		t.Skip("payload incompressible")
	}
	lied := append([]byte(nil), p...)
	// rawLen lives at the tail of the epoch header.
	binary.LittleEndian.PutUint32(lied[epochHdrSize-4:epochHdrSize], uint32(MaxPayload-1))

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	_, err := DecodeEpochFrame(FlagCompressed, lied)
	runtime.ReadMemStats(&after)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
	if grew := after.TotalAlloc - before.TotalAlloc; grew > 8<<20 {
		t.Fatalf("hostile raw length allocated %d bytes", grew)
	}
}

// snapStream frames a byte blob as SNAPCHUNK... SNAPEND (the body that
// follows a SNAPBEGIN on the wire).
func snapStream(data []byte, chunk int) []byte {
	var out []byte
	crc := uint32(0)
	for off := 0; off < len(data); off += chunk {
		end := off + chunk
		if end > len(data) {
			end = len(data)
		}
		crc = crc32.Update(crc, castagnoli, data[off:end])
		out = appendFrameV(out, Version2, KindSnapChunk, 0, data[off:end])
	}
	return appendFrameV(out, Version2, KindSnapEnd, 0, appendSnapEnd(nil, uint64(len(data)), crc))
}

func TestSnapReaderValidStream(t *testing.T) {
	data := bytes.Repeat([]byte("snapshot-bytes-"), 1000)
	for _, claim := range []uint64{0, uint64(len(data))} {
		sr := newSnapReader(bufio.NewReader(bytes.NewReader(snapStream(data, 700))), Version2, claim)
		got, err := io.ReadAll(sr)
		if err != nil {
			t.Fatalf("claim %d: %v", claim, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("claim %d: stream bytes diverged", claim)
		}
		if err := sr.drain(); err != nil {
			t.Fatalf("claim %d: drain after EOF: %v", claim, err)
		}
	}
}

func TestSnapReaderRejectsTornAndCorrupt(t *testing.T) {
	data := bytes.Repeat([]byte{0xA5}, 5000)
	good := snapStream(data, 1024)

	cases := []struct {
		name   string
		stream []byte
		want   error
	}{
		{"torn mid-chunk", good[:len(good)/2], ErrShortFrame},
		{"missing trailer", good[:len(good)-36], ErrShortFrame},
		{"claim mismatch", good, ErrCorrupt}, // claim below actual, set below
	}
	for _, tc := range cases {
		claim := uint64(0)
		if tc.name == "claim mismatch" {
			claim = uint64(len(data)) - 1
		}
		sr := newSnapReader(bufio.NewReader(bytes.NewReader(tc.stream)), Version2, claim)
		if _, err := io.ReadAll(sr); !errors.Is(err, tc.want) {
			t.Fatalf("%s: want %v, got %v", tc.name, tc.want, err)
		}
		if err := sr.drain(); err == nil {
			t.Fatalf("%s: drain accepted a bad stream", tc.name)
		}
	}

	// Trailer CRC flip.
	flipped := append([]byte(nil), good...)
	// SNAPEND payload CRC is the last 4 bytes before the frame CRC;
	// rebuild the trailer frame with a wrong stream CRC instead of
	// corrupting frame bytes (that would fail the frame CRC first).
	trailerStart := len(flipped) - (frameHdrSize + 12 + 4)
	bad := append(flipped[:trailerStart:trailerStart],
		appendFrameV(nil, Version2, KindSnapEnd, 0, appendSnapEnd(nil, uint64(len(data)), 0x1234))...)
	sr := newSnapReader(bufio.NewReader(bytes.NewReader(bad)), Version2, 0)
	if _, err := io.ReadAll(sr); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailer crc mismatch: want ErrCorrupt, got %v", err)
	}

	// A non-snapshot frame kind inside the stream.
	mixed := appendFrameV(nil, Version2, KindSnapChunk, 0, data[:100])
	mixed = appendFrameV(mixed, Version2, KindHeartbeat, 0, appendHeartbeat(nil, 5))
	sr = newSnapReader(bufio.NewReader(bytes.NewReader(mixed)), Version2, 0)
	if _, err := io.ReadAll(sr); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("foreign frame kind: want ErrCorrupt, got %v", err)
	}

	// An empty chunk is hostile (it can spin the stream forever).
	empty := appendFrameV(nil, Version2, KindSnapChunk, 0, nil)
	sr = newSnapReader(bufio.NewReader(bytes.NewReader(empty)), Version2, 0)
	if _, err := io.ReadAll(sr); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("empty chunk: want ErrCorrupt, got %v", err)
	}

	// A chunk overrunning the SNAPBEGIN claim dies at the overrun, not
	// at the trailer.
	sr = newSnapReader(bufio.NewReader(bytes.NewReader(good)), Version2, 100)
	if _, err := io.ReadAll(sr); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("claim overrun: want ErrCorrupt, got %v", err)
	}
}

// TestReadFullCappedSteps exercises the incremental reader directly
// across the prealloc boundary.
func TestReadFullCappedSteps(t *testing.T) {
	for _, n := range []int{0, 1, maxPrealloc - 1, maxPrealloc, maxPrealloc + 1, 3*maxPrealloc + 7} {
		src := bytes.Repeat([]byte{byte(n)}, n)
		got, err := readFullCapped(bytes.NewReader(src), n)
		if err != nil || !bytes.Equal(got, src) {
			t.Fatalf("n=%d: %v (len %d)", n, err, len(got))
		}
	}
	// Short source under a big claim: error, not a hang or huge alloc.
	if _, err := readFullCapped(bytes.NewReader(make([]byte, 100)), 1<<27); err == nil {
		t.Fatal("short source accepted")
	}
}
