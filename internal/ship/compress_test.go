// Mixed-version interop and compression end-to-end tests: every
// pairing of v1/v2 peers must converge to reference-equal state, with
// compression engaged exactly when both ends negotiated it.
package ship_test

import (
	"errors"
	"testing"

	"aets/internal/metrics"
	"aets/internal/ship"
)

// interopResult captures one matrix cell's outcome.
type interopResult struct {
	sender   ship.SenderStats
	receiver ship.ReceiverStats
	// handshake errors the serve loop saw before the stream settled
	// (a v1 receiver rejecting a v2 HELLO, answered by the sender's
	// fallback redial).
	connErrs []error
}

// runShipInterop ships a TPC-C stream through one sender/receiver
// pairing over real TCP, asserts the backup converges to the directly
// fed reference, and returns the link's stats.
func runShipInterop(t *testing.T, mutSender func(*ship.SenderConfig), mutReceiver func(*ship.ReceiverConfig)) interopResult {
	t.Helper()
	encs := tpccEncoded(2048, 128) // 16 epochs, bufs well above any threshold
	want := directNode(t, encs)
	defer want.Close()

	ln := listen(t)
	defer ln.Close()
	node := newNode(t)
	defer node.Close()
	reg := metrics.NewRegistry()
	rcfg := ship.ReceiverConfig{
		Schema:  tpccSchema(),
		Metrics: ship.NewMetrics(reg),
		Drain:   func() error { node.Drain(); return node.Err() },
	}
	if mutReceiver != nil {
		mutReceiver(&rcfg)
	}
	rcv := mustShipReceiver(t, node, rcfg)
	done, errs := serveLoop(ln, rcv)

	scfg := ship.SenderConfig{
		Dial:    dialer(ln.Addr().String()),
		Schema:  tpccSchema(),
		Window:  4,
		Metrics: ship.NewMetrics(reg),
	}
	if mutSender != nil {
		mutSender(&scfg)
	}
	s := mustSender(t, scfg)
	for i := range encs {
		if err := s.Send(&encs[i]); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats() // before Close tears the link down
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	waitDone(t, done, "serve loop")
	assertSameState(t, node, want)
	return interopResult{sender: st, receiver: rcv.Stats(), connErrs: errs.all()}
}

func assertNoConnErrs(t *testing.T, res interopResult) {
	t.Helper()
	for _, err := range res.connErrs {
		t.Fatalf("unexpected connection error: %v", err)
	}
}

func TestInteropBothV2Compressed(t *testing.T) {
	res := runShipInterop(t,
		func(c *ship.SenderConfig) { c.Compress = true },
		func(c *ship.ReceiverConfig) { c.Compress = true })
	assertNoConnErrs(t, res)
	if !res.sender.Compressing {
		t.Fatal("both ends v2+compress but the link did not negotiate CapFlate")
	}
	if res.sender.BytesWire >= res.sender.BytesRaw {
		t.Fatalf("compressed link did not shrink the stream: wire %d ≥ raw %d",
			res.sender.BytesWire, res.sender.BytesRaw)
	}
	ratio := float64(res.sender.BytesWire) / float64(res.sender.BytesRaw)
	t.Logf("tpcc wire/raw ratio: %.3f (%d / %d bytes)", ratio, res.sender.BytesWire, res.sender.BytesRaw)
}

func TestInteropV2SenderV1Receiver(t *testing.T) {
	res := runShipInterop(t,
		func(c *ship.SenderConfig) { c.Compress = true },
		func(c *ship.ReceiverConfig) { c.MaxVersion = 1 })
	// The v1 receiver rejects the v2 HELLO once; the sender's fallback
	// redial carries the stream uncompressed. Any other error is real.
	sawVersionReject := false
	for _, err := range res.connErrs {
		if errors.Is(err, ship.ErrVersion) {
			sawVersionReject = true
			continue
		}
		t.Fatalf("unexpected connection error: %v", err)
	}
	if !sawVersionReject {
		t.Fatal("v1 receiver never rejected the v2 HELLO — was the downgrade even exercised?")
	}
	if res.sender.Compressing {
		t.Fatal("sender claims compression against a v1 receiver")
	}
	if res.sender.BytesWire != res.sender.BytesRaw {
		t.Fatalf("v1 link must ship raw bytes: wire %d, raw %d", res.sender.BytesWire, res.sender.BytesRaw)
	}
}

func TestInteropV1SenderV2Receiver(t *testing.T) {
	res := runShipInterop(t,
		func(c *ship.SenderConfig) { c.MaxVersion = 1; c.Compress = true },
		func(c *ship.ReceiverConfig) { c.Compress = true })
	assertNoConnErrs(t, res)
	if res.sender.Compressing {
		t.Fatal("v1-pinned sender claims compression")
	}
	if res.sender.BytesWire != res.sender.BytesRaw {
		t.Fatalf("v1 link must ship raw bytes: wire %d, raw %d", res.sender.BytesWire, res.sender.BytesRaw)
	}
}

func TestInteropCompressionRequiresBothEnds(t *testing.T) {
	// Receiver is v2 but does not advertise CapFlate: a v2 handshake
	// succeeds, yet the stream must stay uncompressed.
	res := runShipInterop(t,
		func(c *ship.SenderConfig) { c.Compress = true },
		nil)
	assertNoConnErrs(t, res)
	if res.sender.Compressing {
		t.Fatal("sender compressing without the receiver advertising CapFlate")
	}
	if res.sender.BytesWire != res.sender.BytesRaw {
		t.Fatalf("unnegotiated link must ship raw bytes: wire %d, raw %d", res.sender.BytesWire, res.sender.BytesRaw)
	}
}

func TestCompressThresholdBoundary(t *testing.T) {
	// A threshold above every epoch buf keeps the negotiated link
	// shipping raw frames.
	res := runShipInterop(t,
		func(c *ship.SenderConfig) { c.Compress = true; c.CompressThreshold = 1 << 30 },
		func(c *ship.ReceiverConfig) { c.Compress = true })
	assertNoConnErrs(t, res)
	if !res.sender.Compressing {
		t.Fatal("capability should negotiate regardless of threshold")
	}
	if res.sender.BytesWire != res.sender.BytesRaw {
		t.Fatalf("every buf below threshold must ship raw: wire %d, raw %d",
			res.sender.BytesWire, res.sender.BytesRaw)
	}

	// Threshold 1 compresses everything compressible.
	res = runShipInterop(t,
		func(c *ship.SenderConfig) { c.Compress = true; c.CompressThreshold = 1 },
		func(c *ship.ReceiverConfig) { c.Compress = true })
	assertNoConnErrs(t, res)
	if res.sender.BytesWire >= res.sender.BytesRaw {
		t.Fatalf("threshold 1 did not compress: wire %d ≥ raw %d", res.sender.BytesWire, res.sender.BytesRaw)
	}
}
