package ship

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
)

// fuzzSeeds are valid frames of every kind plus pathological inputs.
func fuzzSeeds() [][]byte {
	rng := rand.New(rand.NewSource(11))
	enc := testEpoch(rng, 5)
	seeds := [][]byte{
		nil,
		{frameMagic},
		AppendFrame(nil, KindHello, appendHello(nil, 0xabc)),
		AppendFrame(nil, KindWelcome, appendWelcome(nil, 0xabc, 17)),
		AppendFrame(nil, KindEpoch, EncodeEpoch(enc)),
		AppendFrame(nil, KindAck, appendCursor(nil, 9)),
		AppendFrame(nil, KindHeartbeat, appendHeartbeat(nil, 123)),
		AppendFrame(nil, KindEOS, appendCursor(nil, 8)),
	}
	// A truncated and a bit-flipped epoch frame.
	full := AppendFrame(nil, KindEpoch, EncodeEpoch(enc))
	seeds = append(seeds, full[:len(full)/2])
	flipped := append([]byte(nil), full...)
	flipped[len(flipped)/3] ^= 0x10
	return append(seeds, flipped)
}

// checkReadFrame asserts the decoder's closed error contract: every
// input either yields a frame or one of the typed errors — no panics,
// no foreign errors.
func checkReadFrame(t *testing.T, data []byte) {
	t.Helper()
	kind, payload, err := ReadFrame(bytes.NewReader(data))
	switch {
	case err == nil:
		if kind == KindEpoch {
			if enc, derr := DecodeEpoch(payload); derr == nil && enc == nil {
				t.Fatal("DecodeEpoch returned nil, nil")
			}
		}
	case errors.Is(err, io.EOF), errors.Is(err, ErrShortFrame),
		errors.Is(err, ErrCorrupt), errors.Is(err, ErrVersion):
	default:
		t.Fatalf("ReadFrame returned untyped error %v for %d bytes", err, len(data))
	}
}

// FuzzReadFrame throws arbitrary bytes at the frame decoder: a
// malformed or truncated frame must never panic the receiver — it
// returns a typed ErrCorrupt/ErrShortFrame/ErrVersion (mirrors
// internal/wal's codec fuzz).
func FuzzReadFrame(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		checkReadFrame(t, data)
	})
}

// TestReadFrameNeverPanicsOnMutation runs the same property over
// deterministic mutations in a plain `go test` run (no fuzz engine).
func TestReadFrameNeverPanicsOnMutation(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 3000; trial++ {
		buf := AppendFrame(nil, KindEpoch, EncodeEpoch(testEpoch(rng, uint64(trial))))
		for m := 0; m < 1+rng.Intn(4); m++ {
			buf[rng.Intn(len(buf))] ^= byte(1 + rng.Intn(255))
		}
		if rng.Intn(3) == 0 {
			buf = buf[:rng.Intn(len(buf))]
		}
		checkReadFrame(t, buf)
	}
}

// TestReadFrameNeverPanicsOnRandomBytes throws raw noise at the
// decoders.
func TestReadFrameNeverPanicsOnRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 3000; trial++ {
		buf := make([]byte, rng.Intn(300))
		rng.Read(buf)
		checkReadFrame(t, buf)
		_, _ = DecodeEpoch(buf)
	}
}
