package ship

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"testing"
)

// fuzzSeeds are valid frames of every kind plus pathological inputs.
func fuzzSeeds() [][]byte {
	rng := rand.New(rand.NewSource(11))
	enc := testEpoch(rng, 5)
	seeds := [][]byte{
		nil,
		{frameMagic},
		AppendFrame(nil, KindHello, appendHello(nil, 0xabc)),
		AppendFrame(nil, KindWelcome, appendWelcome(nil, 0xabc, 17)),
		AppendFrame(nil, KindEpoch, EncodeEpoch(enc)),
		AppendFrame(nil, KindAck, appendCursor(nil, 9)),
		AppendFrame(nil, KindHeartbeat, appendHeartbeat(nil, 123)),
		AppendFrame(nil, KindEOS, appendCursor(nil, 8)),
	}
	// A truncated and a bit-flipped epoch frame.
	full := AppendFrame(nil, KindEpoch, EncodeEpoch(enc))
	seeds = append(seeds, full[:len(full)/2])
	flipped := append([]byte(nil), full...)
	flipped[len(flipped)/3] ^= 0x10
	seeds = append(seeds, flipped)

	// v2 frames: caps handshake, a compressed epoch, a compressed epoch
	// with a mangled flate stream, and hostile count/length headers.
	seeds = append(seeds,
		appendFrameV(nil, Version2, KindHello, 0, appendHello2(nil, 0xabc, CapFlate)),
		appendFrameV(nil, Version2, KindWelcome, 0, appendWelcome2(nil, 0xabc, 17, CapFlate)),
	)
	comp := &epochCompressor{}
	cenc := testEpoch(rng, 6)
	cenc.Buf = bytes.Repeat(cenc.Buf[:8], 64)
	cenc.TxnCount, cenc.EntryCount = 3, 17
	if cp := comp.payload(cenc); cp != nil {
		seeds = append(seeds, AppendFrameFlags(nil, KindEpoch, FlagCompressed, cp))
		mangled := AppendFrameFlags(nil, KindEpoch, FlagCompressed, cp)
		mangled[frameHdrSize+epochHdrSize+2] ^= 0xff
		seeds = append(seeds, mangled)
	}
	// Counts claiming ~4B entries over a tiny buf (the dead-check bug).
	hostile := EncodeEpoch(enc)
	hostile[8], hostile[9], hostile[10], hostile[11] = 0xff, 0xff, 0xff, 0xff
	hostile[28], hostile[29], hostile[30], hostile[31] = 0xff, 0xff, 0xff, 0xff
	seeds = append(seeds, AppendFrame(nil, KindEpoch, hostile))
	// Compressed frame whose declared raw length is absurd.
	if cp := comp.payload(cenc); cp != nil {
		lied := append([]byte(nil), cp...)
		lied[32], lied[33], lied[34], lied[35] = 0xff, 0xff, 0xff, 0x0f
		seeds = append(seeds, AppendFrameFlags(nil, KindEpoch, FlagCompressed, lied))
	}
	// Snapshot catch-up and anti-entropy frames (v2).
	seeds = append(seeds,
		appendFrameV(nil, Version2, KindWelcome, 0, appendWelcome3(nil, 0xabc, 17, CapSnapshot, ReqSnapshot)),
		appendFrameV(nil, Version2, KindSnapBegin, 0, appendSnapBegin(nil, 42, 1<<20)),
		appendFrameV(nil, Version2, KindSnapChunk, 0, bytes.Repeat([]byte{0xee}, 512)),
		appendFrameV(nil, Version2, KindSnapEnd, 0, appendSnapEnd(nil, 512, 0xdeadbeef)),
		appendFrameV(nil, Version2, KindDigest, 0, appendDigest(nil, 42, 123, 0xfeed)),
	)
	// Hostile length prefixes: a header claiming a payload near
	// MaxPayload over a tiny body (must die as a short frame without
	// preallocating the claim), and a SNAPBEGIN claiming 2^64-1 bytes.
	over := appendFrameV(nil, Version2, KindSnapChunk, 0, bytes.Repeat([]byte{1}, 64))
	binary.LittleEndian.PutUint32(over[4:8], MaxPayload-1)
	seeds = append(seeds, over)
	seeds = append(seeds,
		appendFrameV(nil, Version2, KindSnapBegin, 0, appendSnapBegin(nil, 1, ^uint64(0))))
	return seeds
}

// checkReadFrame asserts the decoder's closed error contract: every
// input either yields a frame or one of the typed errors — no panics,
// no foreign errors.
func checkReadFrame(t *testing.T, data []byte) {
	t.Helper()
	_, kind, flags, payload, err := ReadFrameFlags(bytes.NewReader(data))
	switch {
	case err == nil:
		if kind == KindEpoch {
			enc, derr := DecodeEpochFrame(flags, payload)
			switch {
			case derr == nil:
				if enc == nil {
					t.Fatal("DecodeEpochFrame returned nil, nil")
				}
				// The bounds invariant downstream consumers rely on.
				if enc.TxnCount > len(enc.Buf) || enc.EntryCount > len(enc.Buf) {
					t.Fatalf("decoded counts %d/%d exceed buf %d", enc.TxnCount, enc.EntryCount, len(enc.Buf))
				}
			case errors.Is(derr, ErrCorrupt):
			default:
				t.Fatalf("DecodeEpochFrame returned untyped error %v", derr)
			}
		}
	case errors.Is(err, io.EOF), errors.Is(err, ErrShortFrame),
		errors.Is(err, ErrCorrupt), errors.Is(err, ErrVersion):
	default:
		t.Fatalf("ReadFrame returned untyped error %v for %d bytes", err, len(data))
	}

	// The flag-blind wrapper upholds the same contract.
	if _, _, rerr := ReadFrame(bytes.NewReader(data)); rerr != nil &&
		!errors.Is(rerr, io.EOF) && !errors.Is(rerr, ErrShortFrame) &&
		!errors.Is(rerr, ErrCorrupt) && !errors.Is(rerr, ErrVersion) {
		t.Fatalf("ReadFrame returned untyped error %v for %d bytes", rerr, len(data))
	}
}

// FuzzReadFrame throws arbitrary bytes at the frame decoder: a
// malformed or truncated frame must never panic the receiver — it
// returns a typed ErrCorrupt/ErrShortFrame/ErrVersion (mirrors
// internal/wal's codec fuzz).
func FuzzReadFrame(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		checkReadFrame(t, data)
	})
}

// TestReadFrameNeverPanicsOnMutation runs the same property over
// deterministic mutations in a plain `go test` run (no fuzz engine).
func TestReadFrameNeverPanicsOnMutation(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 3000; trial++ {
		buf := AppendFrame(nil, KindEpoch, EncodeEpoch(testEpoch(rng, uint64(trial))))
		for m := 0; m < 1+rng.Intn(4); m++ {
			buf[rng.Intn(len(buf))] ^= byte(1 + rng.Intn(255))
		}
		if rng.Intn(3) == 0 {
			buf = buf[:rng.Intn(len(buf))]
		}
		checkReadFrame(t, buf)
	}
}

// TestReadFrameNeverPanicsOnRandomBytes throws raw noise at the
// decoders.
func TestReadFrameNeverPanicsOnRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 3000; trial++ {
		buf := make([]byte, rng.Intn(300))
		rng.Read(buf)
		checkReadFrame(t, buf)
		_, _ = DecodeEpoch(buf)
	}
}
