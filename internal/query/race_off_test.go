//go:build !race

package query

// raceEnabled reports whether the race detector is active; alloc-count
// tests skip under it (the detector instruments sync.Pool with random
// cache drops, so steady-state reuse cannot be asserted).
const raceEnabled = false
