package query

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"aets/internal/epoch"
	"aets/internal/grouping"
	"aets/internal/memtable"
	"aets/internal/replay"
	"aets/internal/wal"
)

// testBackup replays a small hand-built history and returns the engine and
// memtable: table 1 rows 1..3 with two versions each, a delete on row 2.
func testBackup(t *testing.T) (*replay.Engine, *memtable.Memtable, int64) {
	t.Helper()
	mk := func(id uint64, ts int64, key uint64, val string, del bool) wal.Txn {
		e := wal.Entry{Type: wal.TypeUpdate, TxnID: id, Timestamp: ts, Table: 1, RowKey: key}
		if del {
			e.Type = wal.TypeDelete
		} else {
			e.Columns = []wal.Column{{ID: 1, Value: []byte(val)}}
		}
		return wal.Txn{ID: id, CommitTS: ts, Entries: []wal.Entry{e}}
	}
	txns := []wal.Txn{
		mk(1, 10, 1, "a1", false),
		mk(2, 20, 2, "b1", false),
		mk(3, 30, 3, "c1", false),
		mk(4, 40, 1, "a2", false),
		mk(5, 50, 2, "", true), // delete row 2
	}
	mt := memtable.New()
	eng := replay.New("AETS", mt, grouping.SingleGroup([]wal.TableID{1}), replay.Config{Workers: 2})
	eng.Start()
	t.Cleanup(eng.Stop)
	for _, enc := range epoch.EncodeAll(epoch.MustSplit(txns, 2)) {
		enc := enc
		eng.Feed(&enc)
	}
	eng.Drain()
	if err := eng.Err(); err != nil {
		t.Fatal(err)
	}
	return eng, mt, 50
}

func TestSnapshotGet(t *testing.T) {
	eng, mt, last := testBackup(t)
	ex := NewExecutor(mt, eng)

	s := ex.Begin(last, 1)
	row, ok, err := s.Get(1, 1)
	if err != nil || !ok || string(row.Columns[1]) != "a2" || row.CommitTS != 40 {
		t.Fatalf("row 1 at %d: %+v ok=%v err=%v", last, row, ok, err)
	}
	if _, ok, _ := s.Get(1, 2); ok {
		t.Fatal("deleted row visible at snapshot past its delete")
	}
	if _, ok, _ := s.Get(1, 99); ok {
		t.Fatal("phantom row")
	}

	// Time travel: a snapshot before the delete and the second version.
	old := ex.Begin(35, 1)
	row, ok, _ = old.Get(1, 1)
	if !ok || string(row.Columns[1]) != "a1" {
		t.Fatalf("row 1 at 35: %+v", row)
	}
	if row, ok, _ = old.Get(1, 2); !ok || string(row.Columns[1]) != "b1" {
		t.Fatalf("row 2 at 35: %+v ok=%v", row, ok)
	}
}

func TestSnapshotScanAndCount(t *testing.T) {
	eng, mt, last := testBackup(t)
	ex := NewExecutor(mt, eng)
	s := ex.Begin(last, 1)

	var keys []uint64
	if err := s.Scan(1, 0, ^uint64(0), func(r Row) bool {
		keys = append(keys, r.Key)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 || keys[0] != 1 || keys[1] != 3 {
		t.Fatalf("scan keys %v, want [1 3] (row 2 deleted)", keys)
	}
	n, err := s.Count(1)
	if err != nil || n != 2 {
		t.Fatalf("count %d err %v", n, err)
	}
	max, err := s.MaxCommitTS(1)
	if err != nil || max != 40 {
		t.Fatalf("max commit ts %d err %v", max, err)
	}
}

func TestUndeclaredTableRejected(t *testing.T) {
	eng, mt, last := testBackup(t)
	ex := NewExecutor(mt, eng)
	s := ex.Begin(last, 1)
	if _, _, err := s.Get(2, 1); err == nil {
		t.Fatal("read from undeclared table accepted")
	}
	if err := s.Scan(2, 0, 10, func(Row) bool { return true }); err == nil {
		t.Fatal("scan of undeclared table accepted")
	}
}

func TestBeginFreshest(t *testing.T) {
	eng, mt, last := testBackup(t)
	ex := NewExecutor(mt, eng)
	s := ex.Begin(0, 1) // freshest visible, never blocks
	if s.TS < last {
		t.Fatalf("freshest snapshot at %d, want ≥ %d", s.TS, last)
	}
}

// TestBeginFreshestRacesFeeds pins the qts ≤ 0 contract while the
// replayer is actively advancing: Begin(0) must return without blocking
// and its snapshot timestamp must never run ahead of the visible
// watermark — neither at admission (TS ≤ GlobalTS read afterwards, by
// monotonicity) nor in the data (no readable version newer than TS).
// Run under -race this also shakes out unsynchronised state between
// Begin and the replay workers.
func TestBeginFreshestRacesFeeds(t *testing.T) {
	const (
		txnCount  = 4096
		epochSize = 64
		readers   = 4
	)
	txns := make([]wal.Txn, txnCount)
	for i := range txns {
		ts := int64(i+1) * 10
		txns[i] = wal.Txn{ID: uint64(i + 1), CommitTS: ts, Entries: []wal.Entry{{
			Type: wal.TypeUpdate, TxnID: uint64(i + 1), Timestamp: ts,
			Table: 1, RowKey: uint64(i%64) + 1,
			Columns: []wal.Column{{ID: 1, Value: []byte(fmt.Sprintf("v%d", i))}},
		}}}
	}
	encs := epoch.EncodeAll(epoch.MustSplit(txns, epochSize))

	mt := memtable.New()
	eng := replay.New("AETS", mt, grouping.SingleGroup([]wal.TableID{1}), replay.Config{Workers: 4})
	eng.Start()
	t.Cleanup(eng.Stop)
	ex := NewExecutor(mt, eng)

	var fed atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := range encs {
			eng.Feed(&encs[i])
		}
		eng.Drain()
		fed.Store(true)
	}()

	errs := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastTS int64
			for !fed.Load() {
				s := ex.Begin(0, 1)
				// The watermark is monotone, so a GlobalTS read after
				// Begin is ≥ the one Begin pinned; TS exceeding it means
				// Begin admitted a snapshot ahead of visibility.
				if wm := eng.GlobalTS(); s.TS > wm {
					errs <- fmt.Errorf("Begin(0) pinned ts %d ahead of visible watermark %d", s.TS, wm)
					return
				}
				if s.TS < lastTS {
					errs <- fmt.Errorf("freshest snapshot ts went backwards: %d after %d", s.TS, lastTS)
					return
				}
				lastTS = s.TS
				max, err := s.MaxCommitTS(1)
				if err != nil {
					errs <- err
					return
				}
				if max > s.TS {
					errs <- fmt.Errorf("snapshot at %d read a version committed at %d", s.TS, max)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if err := eng.Err(); err != nil {
		t.Fatal(err)
	}

	// After the drain the freshest snapshot sits exactly at the last
	// commit and sees the final version of every key.
	s := ex.Begin(0, 1)
	if want := txns[txnCount-1].CommitTS; s.TS < want {
		t.Fatalf("post-drain freshest snapshot at %d, want ≥ %d", s.TS, want)
	}
	n, err := s.Count(1)
	if err != nil || n != 64 {
		t.Fatalf("post-drain count %d err %v, want 64", n, err)
	}
}

func TestSnapshotScanEarlyStop(t *testing.T) {
	eng, mt, last := testBackup(t)
	ex := NewExecutor(mt, eng)
	s := ex.Begin(last, 1)
	visits := 0
	_ = s.Scan(1, 0, ^uint64(0), func(Row) bool {
		visits++
		return false
	})
	if visits != 1 {
		t.Fatalf("early stop visited %d rows", visits)
	}
}
