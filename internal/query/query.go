// Package query provides snapshot-consistent read operations over the
// backup Memtable: the OLAP side of the system. A query fixes its snapshot
// timestamp (the freshest primary commit it wants to observe), blocks per
// Algorithm 3 until the replayer has made that snapshot visible for the
// tables it touches, and then reads record versions with commit timestamps
// at or below the snapshot — the visibility rule of paper §V-B.
package query

import (
	"encoding/binary"
	"fmt"

	"aets/internal/memtable"
	"aets/internal/wal"
)

// Visibility is the part of a replayer a query needs: Algorithm 3.
type Visibility interface {
	WaitVisible(qts int64, tables []wal.TableID)
	GlobalTS() int64
}

// Executor runs snapshot reads against a backup.
type Executor struct {
	mt  *memtable.Memtable
	vis Visibility
}

// NewExecutor returns an Executor over the given Memtable and replayer.
func NewExecutor(mt *memtable.Memtable, vis Visibility) *Executor {
	return &Executor{mt: mt, vis: vis}
}

// Row is one materialised row of a snapshot scan.
type Row struct {
	Key      uint64
	CommitTS int64 // commit timestamp of the newest visible version
	Columns  map[uint32][]byte
}

// Snapshot is a read view at a fixed timestamp, already admitted by
// Algorithm 3 for its table set.
type Snapshot struct {
	ex     *Executor
	TS     int64
	tables map[wal.TableID]bool
}

// Begin blocks until the snapshot at qts is visible for the given tables
// (Algorithm 3) and returns the read view. qts ≤ 0 means "freshest
// currently visible" (the replayer's global timestamp), which never
// blocks.
func (e *Executor) Begin(qts int64, tables ...wal.TableID) *Snapshot {
	if qts <= 0 {
		qts = e.vis.GlobalTS()
	} else {
		e.vis.WaitVisible(qts, tables)
	}
	s := &Snapshot{ex: e, TS: qts, tables: make(map[wal.TableID]bool, len(tables))}
	for _, t := range tables {
		s.tables[t] = true
	}
	return s
}

func (s *Snapshot) check(table wal.TableID) error {
	if !s.tables[table] {
		return fmt.Errorf("query: table %d not declared when the snapshot began (visibility was not established for it)", table)
	}
	return nil
}

// Get returns the row with the given key as of the snapshot, or ok=false
// if it does not exist or is deleted at the snapshot.
func (s *Snapshot) Get(table wal.TableID, key uint64) (Row, bool, error) {
	if err := s.check(table); err != nil {
		return Row{}, false, err
	}
	rec := s.ex.mt.Table(table).Get(key)
	if rec == nil {
		return Row{}, false, nil
	}
	v := rec.Visible(s.TS)
	if v == nil || v.Deleted {
		return Row{}, false, nil
	}
	return Row{Key: key, CommitTS: v.CommitTS, Columns: rec.ReadRow(s.TS)}, true, nil
}

// Scan visits all visible rows with from ≤ key ≤ to in key order. fn
// returning false stops the scan early.
func (s *Snapshot) Scan(table wal.TableID, from, to uint64, fn func(Row) bool) error {
	if err := s.check(table); err != nil {
		return err
	}
	s.ex.mt.Table(table).Scan(from, to, func(key uint64, rec *memtable.Record) bool {
		v := rec.Visible(s.TS)
		if v == nil || v.Deleted {
			return true
		}
		return fn(Row{Key: key, CommitTS: v.CommitTS, Columns: rec.ReadRow(s.TS)})
	})
	return nil
}

// ScanAny visits all visible rows with from ≤ key ≤ to in NO particular
// key order — shards of the underlying table are walked one after another,
// each in its own ascending order, with zero merge cost. fn returning
// false stops the scan early. Aggregations that do not care about key
// order (counts, sums, freshness probes) should prefer this over Scan;
// queries whose consumer needs globally sorted keys (merge joins, ordered
// pagination) must use Scan.
func (s *Snapshot) ScanAny(table wal.TableID, from, to uint64, fn func(Row) bool) error {
	if err := s.check(table); err != nil {
		return err
	}
	s.ex.mt.Table(table).ScanAny(from, to, func(key uint64, rec *memtable.Record) bool {
		v := rec.Visible(s.TS)
		if v == nil || v.Deleted {
			return true
		}
		return fn(Row{Key: key, CommitTS: v.CommitTS, Columns: rec.ReadRow(s.TS)})
	})
	return nil
}

// Count returns the number of rows visible in the table at the snapshot.
// Order-insensitive, so it rides the unordered shard walk and skips Row
// materialization entirely — no per-row map allocation, no merge.
func (s *Snapshot) Count(table wal.TableID) (int, error) {
	if err := s.check(table); err != nil {
		return 0, err
	}
	n := 0
	s.ex.mt.Table(table).ScanAny(0, ^uint64(0), func(_ uint64, rec *memtable.Record) bool {
		if v := rec.Visible(s.TS); v != nil && !v.Deleted {
			n++
		}
		return true
	})
	return n, nil
}

// MaxCommitTS returns the newest commit timestamp visible in the table at
// the snapshot — a freshness probe: how recent is the data this query can
// actually see. Order-insensitive and allocation-free like Count.
func (s *Snapshot) MaxCommitTS(table wal.TableID) (int64, error) {
	if err := s.check(table); err != nil {
		return 0, err
	}
	var max int64
	s.ex.mt.Table(table).ScanAny(0, ^uint64(0), func(_ uint64, rec *memtable.Record) bool {
		if v := rec.Visible(s.TS); v != nil && !v.Deleted && v.CommitTS > max {
			max = v.CommitTS
		}
		return true
	})
	return max, nil
}

// SumInt64 sums column col over all rows visible at the snapshot,
// interpreting each value as a little-endian 64-bit integer (the WAL's
// integer convention). A row contributes its newest visible value of col
// under ReadRow semantics — the first version at or below the snapshot
// that carries the column, never reaching past a delete. Rows without the
// column, or whose value is not exactly 8 bytes, contribute nothing.
// Order-insensitive: rides the unordered shard walk with no per-row
// allocation.
func (s *Snapshot) SumInt64(table wal.TableID, col uint32) (int64, error) {
	if err := s.check(table); err != nil {
		return 0, err
	}
	var sum int64
	s.ex.mt.Table(table).ScanAny(0, ^uint64(0), func(_ uint64, rec *memtable.Record) bool {
		for v := rec.Visible(s.TS); v != nil; v = v.Next() {
			if v.Deleted {
				return true // older versions belong to a prior row
			}
			for _, c := range v.Columns {
				if c.ID == col {
					if len(c.Value) == 8 {
						sum += int64(binary.LittleEndian.Uint64(c.Value))
					}
					return true
				}
			}
		}
		return true
	})
	return sum, nil
}
