// Package query provides snapshot-consistent read operations over the
// backup Memtable: the OLAP side of the system. A query fixes its snapshot
// timestamp (the freshest primary commit it wants to observe), blocks per
// Algorithm 3 until the replayer has made that snapshot visible for the
// tables it touches, and then reads record versions with commit timestamps
// at or below the snapshot — the visibility rule of paper §V-B.
//
// When the executor carries a columnar store (query.NewExecutorWith), every
// read is planned as columnar-segments + memtable-delta merge: the frozen
// base segment supplies the cold rows through vectorized column arrays,
// the hot delta is stitched over it with newest-wins semantics, and the
// two views are reference-equal to the row-wise path by construction (the
// freeze rule stores exactly the version a Vacuum at the watermark keeps;
// see DESIGN.md §17 and the FuzzColumnarScan differential test).
package query

import (
	"encoding/binary"
	"fmt"
	"sync"

	"aets/internal/colstore"
	"aets/internal/memtable"
	"aets/internal/wal"
)

// Visibility is the part of a replayer a query needs: Algorithm 3.
type Visibility interface {
	WaitVisible(qts int64, tables []wal.TableID)
	GlobalTS() int64
}

// Executor runs snapshot reads against a backup.
type Executor struct {
	mt  *memtable.Memtable
	vis Visibility
	cs  *colstore.Store // nil = row-wise only

	// scratch pools the planner's per-operation state (delta gather,
	// value buffers, exclusion lists) so steady-state columnar scans and
	// aggregates run allocation-free.
	scratch sync.Pool // *planScratch
}

// NewExecutor returns an Executor over the given Memtable and replayer.
func NewExecutor(mt *memtable.Memtable, vis Visibility) *Executor {
	return &Executor{mt: mt, vis: vis}
}

// NewExecutorWith returns an Executor that plans reads over cs's columnar
// segments stitched with mt's hot delta. A nil cs degrades to NewExecutor.
func NewExecutorWith(mt *memtable.Memtable, vis Visibility, cs *colstore.Store) *Executor {
	return &Executor{mt: mt, vis: vis, cs: cs}
}

// Row is one materialised row of a snapshot scan.
type Row struct {
	Key      uint64
	CommitTS int64 // commit timestamp of the newest visible version
	Columns  map[uint32][]byte
}

// Snapshot is a read view at a fixed timestamp, already admitted by
// Algorithm 3 for its table set.
//
// On a columnar executor, snapshot timestamps below the freeze watermark
// are outside the read contract, exactly as they are below the Vacuum
// watermark on a row-wise node: the versions are gone either way.
type Snapshot struct {
	ex     *Executor
	TS     int64
	tables map[wal.TableID]bool
}

// Begin blocks until the snapshot at qts is visible for the given tables
// (Algorithm 3) and returns the read view. qts ≤ 0 means "freshest
// currently visible" (the replayer's global timestamp), which never
// blocks.
func (e *Executor) Begin(qts int64, tables ...wal.TableID) *Snapshot {
	if qts <= 0 {
		qts = e.vis.GlobalTS()
	} else {
		e.vis.WaitVisible(qts, tables)
	}
	s := &Snapshot{ex: e, TS: qts, tables: make(map[wal.TableID]bool, len(tables))}
	for _, t := range tables {
		s.tables[t] = true
	}
	return s
}

func (s *Snapshot) check(table wal.TableID) error {
	if !s.tables[table] {
		return fmt.Errorf("query: table %d not declared when the snapshot began (visibility was not established for it)", table)
	}
	return nil
}

// Get returns the row with the given key as of the snapshot, or ok=false
// if it does not exist or is deleted at the snapshot.
func (s *Snapshot) Get(table wal.TableID, key uint64) (Row, bool, error) {
	if err := s.check(table); err != nil {
		return Row{}, false, err
	}
	if s.ex.cs != nil {
		return s.colGet(table, key)
	}
	return s.rowGet(table, key)
}

func (s *Snapshot) rowGet(table wal.TableID, key uint64) (Row, bool, error) {
	rec := s.ex.mt.Table(table).Get(key)
	if rec == nil {
		return Row{}, false, nil
	}
	v := rec.Visible(s.TS)
	if v == nil || v.Deleted {
		return Row{}, false, nil
	}
	return Row{Key: key, CommitTS: v.CommitTS, Columns: rec.ReadRow(s.TS)}, true, nil
}

// Scan visits all visible rows with from ≤ key ≤ to in key order. fn
// returning false stops the scan early.
func (s *Snapshot) Scan(table wal.TableID, from, to uint64, fn func(Row) bool) error {
	if err := s.check(table); err != nil {
		return err
	}
	if s.ex.cs != nil {
		return s.colScan(table, from, to, fn)
	}
	s.rowScan(table, from, to, fn)
	return nil
}

func (s *Snapshot) rowScan(table wal.TableID, from, to uint64, fn func(Row) bool) {
	s.ex.mt.Table(table).Scan(from, to, func(key uint64, rec *memtable.Record) bool {
		v := rec.Visible(s.TS)
		if v == nil || v.Deleted {
			return true
		}
		return fn(Row{Key: key, CommitTS: v.CommitTS, Columns: rec.ReadRow(s.TS)})
	})
}

// ScanAny visits all visible rows with from ≤ key ≤ to in NO particular
// key order. On a row-wise executor the shards of the underlying table are
// walked one after another with zero merge cost; on a columnar executor
// the planner's ordered merge is already the cheapest enumeration, so
// ScanAny shares it. fn returning false stops the scan early.
func (s *Snapshot) ScanAny(table wal.TableID, from, to uint64, fn func(Row) bool) error {
	if err := s.check(table); err != nil {
		return err
	}
	if s.ex.cs != nil {
		return s.colScan(table, from, to, fn)
	}
	s.ex.mt.Table(table).ScanAny(from, to, func(key uint64, rec *memtable.Record) bool {
		v := rec.Visible(s.TS)
		if v == nil || v.Deleted {
			return true
		}
		return fn(Row{Key: key, CommitTS: v.CommitTS, Columns: rec.ReadRow(s.TS)})
	})
	return nil
}

// ScanCols visits rows with from ≤ key ≤ to in key order without
// materialising per-row column maps: vals[i] is the value of cols[i] for
// the visited row (nil when the row does not carry it), resolved with the
// same newest-wins semantics as Get. The vals slice and its backing
// buffers are reused across calls — callers must copy anything they keep.
// On a columnar executor the segment rows are served straight from the
// column arrays (0 allocs/op steady state); without one, the row store is
// walked with per-column chain resolution, which is the honest baseline
// the columnar benchmarks compare against.
func (s *Snapshot) ScanCols(table wal.TableID, from, to uint64, cols []uint32, fn func(key uint64, ts int64, vals [][]byte) bool) error {
	if err := s.check(table); err != nil {
		return err
	}
	if s.ex.cs != nil {
		return s.colScanCols(table, from, to, cols, fn)
	}
	sc := s.ex.getScratch()
	defer s.ex.putScratch(sc)
	vals := sc.valBuf(len(cols))
	s.ex.mt.Table(table).Scan(from, to, func(key uint64, rec *memtable.Record) bool {
		v := rec.Visible(s.TS)
		if v == nil || v.Deleted {
			return true
		}
		for i, col := range cols {
			vals[i], _ = chainColValue(v, col)
		}
		return fn(key, v.CommitTS, vals)
	})
	return nil
}

// ScanKeys streams the visible keys and their commit timestamps of
// [from, to] in ascending key order as column vectors. This is the
// vectorized scan: on a columnar executor, frozen runs arrive as
// zero-copy windows directly over the segment's key/timestamp vectors
// with no per-row version resolution, and hot-delta rows arrive in
// buffered batches. Batch sizes vary; the slices may be reused between
// callbacks — copy out anything kept past the return.
func (s *Snapshot) ScanKeys(table wal.TableID, from, to uint64, fn func(keys []uint64, ts []int64) bool) error {
	if err := s.check(table); err != nil {
		return err
	}
	if s.ex.cs != nil {
		s.colScanKeys(table, from, to, fn)
	} else {
		s.rowScanKeys(table, from, to, fn)
	}
	return nil
}

// Count returns the number of rows visible in the table at the snapshot.
// Columnar plans answer from the segment's live-row stat plus an O(delta)
// adjustment; row-wise plans ride the unordered shard walk with no per-row
// allocation.
func (s *Snapshot) Count(table wal.TableID) (int, error) {
	if err := s.check(table); err != nil {
		return 0, err
	}
	if s.ex.cs != nil {
		return s.colCount(table)
	}
	n := 0
	s.ex.mt.Table(table).ScanAny(0, ^uint64(0), func(_ uint64, rec *memtable.Record) bool {
		if v := rec.Visible(s.TS); v != nil && !v.Deleted {
			n++
		}
		return true
	})
	return n, nil
}

// MaxCommitTS returns the newest commit timestamp visible in the table at
// the snapshot — a freshness probe: how recent is the data this query can
// actually see. Columnar plans run a vectorized max over the segment's
// commit-ts vector (skipping delta-shadowed rows); row-wise plans ride the
// unordered shard walk.
func (s *Snapshot) MaxCommitTS(table wal.TableID) (int64, error) {
	if err := s.check(table); err != nil {
		return 0, err
	}
	if s.ex.cs != nil {
		return s.colMaxCommitTS(table)
	}
	var max int64
	s.ex.mt.Table(table).ScanAny(0, ^uint64(0), func(_ uint64, rec *memtable.Record) bool {
		if v := rec.Visible(s.TS); v != nil && !v.Deleted && v.CommitTS > max {
			max = v.CommitTS
		}
		return true
	})
	return max, nil
}

// SumInt64 sums column col over all rows visible at the snapshot,
// interpreting each value as a little-endian 64-bit integer (the WAL's
// integer convention). A row contributes its newest visible value of col
// under ReadRow semantics — the first version at or below the snapshot
// that carries the column, never reaching past a delete. Rows without the
// column, or whose value is not exactly 8 bytes, contribute nothing.
// Columnar plans answer from the segment's precomputed column sum plus an
// O(delta) adjustment; row-wise plans ride the unordered shard walk.
func (s *Snapshot) SumInt64(table wal.TableID, col uint32) (int64, error) {
	if err := s.check(table); err != nil {
		return 0, err
	}
	if s.ex.cs != nil {
		return s.colSumInt64(table, col)
	}
	var sum int64
	s.ex.mt.Table(table).ScanAny(0, ^uint64(0), func(_ uint64, rec *memtable.Record) bool {
		for v := rec.Visible(s.TS); v != nil; v = v.Next() {
			if v.Deleted {
				return true // older versions belong to a prior row
			}
			for _, c := range v.Columns {
				if c.ID == col {
					if len(c.Value) == 8 {
						sum += int64(binary.LittleEndian.Uint64(c.Value))
					}
					return true
				}
			}
		}
		return true
	})
	return sum, nil
}
