//go:build race

package query

const raceEnabled = true
