package query

import (
	"math/rand"
	"testing"

	"aets/internal/colstore"
	"aets/internal/memtable"
	"aets/internal/wal"
)

// benchState is the shared majority-frozen fixture: 1<<16 random keys
// below 1<<20 through 8 shards (the same population as the memtable scan
// benchmarks), every one frozen into the columnar base, then a ~1k-row
// hot delta re-dirtied on top. The row-wise twin holds the identical
// visible state in vacuumed chains, so Columnar-vs-Row sub-benchmarks
// price the two read paths over the same data.
type benchState struct {
	vis  *fakeVis
	exC  *Executor // columnar: base segment + hot delta
	exR  *Executor // row-wise twin
	rows  int   // live rows at the snapshot
	ts    int64 // snapshot timestamp
	maxTS int64 // expected MaxCommitTS (newest live version)
}

func newBenchState(tb testing.TB) *benchState {
	tb.Helper()
	st := &benchState{vis: &fakeVis{}}
	mtC := memtable.NewWithShards(8)
	mtR := memtable.NewWithShards(8)
	cs := colstore.NewStore()
	comp := colstore.NewCompactor(mtC, cs)
	st.exC = NewExecutorWith(mtC, st.vis, cs)
	st.exR = NewExecutor(mtR, st.vis)

	put := func(key uint64, del bool) {
		st.ts++
		var cols []wal.Column
		if !del {
			cols = []wal.Column{colI64(int64(key % 1000)), {ID: 2, Value: []byte("payload")}}
		}
		for _, mt := range []*memtable.Memtable{mtC, mtR} {
			mt.Table(1).GetOrCreate(key).Append(&memtable.Version{
				TxnID: uint64(st.ts), CommitTS: st.ts, Deleted: del, Columns: cols,
			})
		}
	}

	rng := rand.New(rand.NewSource(3))
	keys := make([]uint64, 0, 1<<16)
	seen := make(map[uint64]bool, 1<<16)
	for len(keys) < 1<<16 {
		k := rng.Uint64() % (1 << 20)
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	for i, k := range keys {
		put(k, i%64 == 63)
	}
	// Freeze everything: the row twin vacuums at the same watermark.
	w := st.ts
	mtR.Vacuum(w)
	mtC.Vacuum(w)
	if comp.RunOnce(w) == 0 {
		tb.Fatal("bench fixture: nothing froze")
	}
	// Hot delta over the frozen base: ~1k updates, a few deletes.
	for i := 0; i < 1024; i++ {
		put(keys[i*37%len(keys)], i%64 == 63)
	}
	st.vis.ts.Store(st.ts)

	// Sanity: both paths agree before we price them.
	cC, err1 := st.exC.Begin(st.ts, 1).Count(1)
	cR, err2 := st.exR.Begin(st.ts, 1).Count(1)
	if err1 != nil || err2 != nil || cC != cR || cC == 0 {
		tb.Fatalf("bench fixture diverged: col=%d row=%d (%v/%v)", cC, cR, err1, err2)
	}
	st.rows = cC
	mC, _ := st.exC.Begin(st.ts, 1).MaxCommitTS(1)
	mR, _ := st.exR.Begin(st.ts, 1).MaxCommitTS(1)
	if mC != mR || mC == 0 {
		tb.Fatalf("bench fixture MaxCommitTS diverged: col=%d row=%d", mC, mR)
	}
	st.maxTS = mC
	return st
}

var benchCols = []uint32{1, 2}

// BenchmarkColumnarScan prices full-range scans over the majority-frozen
// table, archived in BENCH_query.json. keys is the vectorized batch scan
// (bulk copies over the segment vectors — the direct counterpart of the
// memtable's merged-view ride in BENCH_memtable.json); cols extracts two
// column values per row on top. Both run at 0 allocs/op; compare against
// BenchmarkRowScan for the chain-walking price of the same reads.
func BenchmarkColumnarScan(b *testing.B) {
	st := newBenchState(b)
	s := st.exC.Begin(st.ts, 1)
	b.Run("keys", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			seen := 0
			_ = s.ScanKeys(1, 0, ^uint64(0), func(keys []uint64, _ []int64) bool {
				seen += len(keys)
				return true
			})
			if seen != st.rows {
				b.Fatalf("scan saw %d of %d rows", seen, st.rows)
			}
		}
	})
	b.Run("cols", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			seen := 0
			_ = s.ScanCols(1, 0, ^uint64(0), benchCols, func(uint64, int64, [][]byte) bool {
				seen++
				return true
			})
			if seen != st.rows {
				b.Fatalf("scan saw %d of %d rows", seen, st.rows)
			}
		}
	})
}

// BenchmarkRowScan is the row-wise twin of BenchmarkColumnarScan: the
// same calls planned over vacuumed version chains.
func BenchmarkRowScan(b *testing.B) {
	st := newBenchState(b)
	s := st.exR.Begin(st.ts, 1)
	b.Run("keys", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			seen := 0
			_ = s.ScanKeys(1, 0, ^uint64(0), func(keys []uint64, _ []int64) bool {
				seen += len(keys)
				return true
			})
			if seen != st.rows {
				b.Fatalf("scan saw %d of %d rows", seen, st.rows)
			}
		}
	})
	b.Run("cols", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			seen := 0
			_ = s.ScanCols(1, 0, ^uint64(0), benchCols, func(uint64, int64, [][]byte) bool {
				seen++
				return true
			})
			if seen != st.rows {
				b.Fatalf("scan saw %d of %d rows", seen, st.rows)
			}
		}
	})
}

// BenchmarkColumnarAggregate prices the aggregate shortcuts over the
// frozen base: precomputed segment stats plus an O(hot-delta) adjustment,
// instead of touching every row.
func BenchmarkColumnarAggregate(b *testing.B) {
	st := newBenchState(b)
	s := st.exC.Begin(st.ts, 1)
	b.Run("SumInt64", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if v, err := s.SumInt64(1, 1); err != nil || v == 0 {
				b.Fatalf("SumInt64 = %d, %v", v, err)
			}
		}
	})
	b.Run("Count", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if n, err := s.Count(1); err != nil || n != st.rows {
				b.Fatalf("Count = %d, %v", n, err)
			}
		}
	})
	b.Run("MaxCommitTS", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if ts, err := s.MaxCommitTS(1); err != nil || ts != st.maxTS {
				b.Fatalf("MaxCommitTS = %d, %v", ts, err)
			}
		}
	})
}

// BenchmarkRowAggregate is the row-wise twin of
// BenchmarkColumnarAggregate: every aggregate walks all chains.
func BenchmarkRowAggregate(b *testing.B) {
	st := newBenchState(b)
	s := st.exR.Begin(st.ts, 1)
	b.Run("SumInt64", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if v, err := s.SumInt64(1, 1); err != nil || v == 0 {
				b.Fatalf("SumInt64 = %d, %v", v, err)
			}
		}
	})
	b.Run("Count", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if n, err := s.Count(1); err != nil || n != st.rows {
				b.Fatalf("Count = %d, %v", n, err)
			}
		}
	})
	b.Run("MaxCommitTS", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if ts, err := s.MaxCommitTS(1); err != nil || ts != st.maxTS {
				b.Fatalf("MaxCommitTS = %d, %v", ts, err)
			}
		}
	})
}
