package query

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"aets/internal/colstore"
	"aets/internal/memtable"
	"aets/internal/wal"
)

// fakeVis is a Visibility stub: everything at or below its clock is
// visible immediately.
type fakeVis struct{ ts atomic.Int64 }

func (f *fakeVis) WaitVisible(int64, []wal.TableID) {}
func (f *fakeVis) GlobalTS() int64                  { return f.ts.Load() }

// fuzzKeys is the key pool the differential fuzz draws from: clustered
// runs, gaps, and both domain sentinels.
var fuzzKeys = []uint64{0, 1, 2, 3, 10, 11, 12, 100, 101, 5000, 5001,
	1 << 40, ^uint64(0) - 1, ^uint64(0)}

func colI64(v int64) wal.Column {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, uint64(v))
	return wal.Column{ID: 1, Value: b}
}

// twinPair is the differential harness: a columnar node and a row-wise
// twin fed identical writes, with the twin vacuuming at every freeze
// watermark (the freeze rule stores exactly the image such a vacuum
// keeps, so the two must answer every legal query identically).
type twinPair struct {
	vis  *fakeVis
	mtC  *memtable.Memtable
	mtR  *memtable.Memtable
	cs   *colstore.Store
	comp *colstore.Compactor
	exC  *Executor
	exR  *Executor
}

func newTwinPair() *twinPair {
	p := &twinPair{vis: &fakeVis{}, mtC: memtable.New(), mtR: memtable.New()}
	p.cs = colstore.NewStore()
	p.comp = colstore.NewCompactor(p.mtC, p.cs)
	p.exC = NewExecutorWith(p.mtC, p.vis, p.cs)
	p.exR = NewExecutor(p.mtR, p.vis)
	return p
}

func (p *twinPair) apply(key uint64, ts int64, txn uint64, del bool, cols []wal.Column) {
	for _, mt := range []*memtable.Memtable{p.mtC, p.mtR} {
		mt.Table(1).GetOrCreate(key).Append(&memtable.Version{
			TxnID: txn, CommitTS: ts, Deleted: del, Columns: cols,
		})
	}
	p.vis.ts.Store(ts)
}

// freeze runs one compaction epoch at w on the columnar side and the
// equivalent vacuum on both sides (the production wiring drives Vacuum
// and Compact off the same watermark clock).
func (p *twinPair) freeze(w int64) {
	p.mtR.Vacuum(w)
	p.mtC.Vacuum(w)
	p.comp.RunOnce(w)
}

type gotRow struct {
	key  uint64
	ts   int64
	cols map[uint32]string
}

func collectScan(t *testing.T, s *Snapshot, from, to uint64, any bool) []gotRow {
	t.Helper()
	var out []gotRow
	scan := s.Scan
	if any {
		scan = s.ScanAny
	}
	if err := scan(1, from, to, func(r Row) bool {
		g := gotRow{key: r.Key, ts: r.CommitTS, cols: map[uint32]string{}}
		for id, v := range r.Columns {
			g.cols[id] = string(v)
		}
		out = append(out, g)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if any {
		// Order-insensitive: canonicalise.
		for i := 1; i < len(out); i++ {
			for j := i; j > 0 && out[j-1].key > out[j].key; j-- {
				out[j-1], out[j] = out[j], out[j-1]
			}
		}
	}
	return out
}

func rowsEqual(a, b []gotRow) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].key != b[i].key || a[i].ts != b[i].ts || len(a[i].cols) != len(b[i].cols) {
			return false
		}
		for id, v := range a[i].cols {
			if b[i].cols[id] != v {
				return false
			}
		}
	}
	return true
}

// compare checks every public read operation agrees between the columnar
// node and the row twin at snapshot qts.
func (p *twinPair) compare(t *testing.T, qts int64) {
	t.Helper()
	sc, sr := p.exC.Begin(qts, 1), p.exR.Begin(qts, 1)

	cc, errC := sc.Count(1)
	cr, errR := sr.Count(1)
	if errC != nil || errR != nil || cc != cr {
		t.Fatalf("qts %d: Count col=%d row=%d (err %v/%v)", qts, cc, cr, errC, errR)
	}
	for _, col := range []uint32{1, 2, 9} {
		vc, _ := sc.SumInt64(1, col)
		vr, _ := sr.SumInt64(1, col)
		if vc != vr {
			t.Fatalf("qts %d: SumInt64(%d) col=%d row=%d", qts, col, vc, vr)
		}
	}
	mc, _ := sc.MaxCommitTS(1)
	mr, _ := sr.MaxCommitTS(1)
	if mc != mr {
		t.Fatalf("qts %d: MaxCommitTS col=%d row=%d", qts, mc, mr)
	}

	full := collectScan(t, sc, 0, ^uint64(0), false)
	if ref := collectScan(t, sr, 0, ^uint64(0), false); !rowsEqual(full, ref) {
		t.Fatalf("qts %d: Scan mismatch\ncol: %+v\nrow: %+v", qts, full, ref)
	}
	if any := collectScan(t, sc, 0, ^uint64(0), true); !rowsEqual(any, full) {
		t.Fatalf("qts %d: ScanAny disagrees with Scan", qts)
	}
	// Sub-ranges, including single-key and sentinel-bounded windows.
	ranges := [][2]uint64{{1, 100}, {11, 11}, {5001, ^uint64(0)}, {0, 0}, {^uint64(0), ^uint64(0)}, {200, 4000}}
	for _, r := range ranges {
		a := collectScan(t, sc, r[0], r[1], false)
		b := collectScan(t, sr, r[0], r[1], false)
		if !rowsEqual(a, b) {
			t.Fatalf("qts %d: Scan[%d,%d] mismatch\ncol: %+v\nrow: %+v", qts, r[0], r[1], a, b)
		}
	}

	for _, k := range fuzzKeys {
		rc, okC, _ := sc.Get(1, k)
		rr, okR, _ := sr.Get(1, k)
		if okC != okR {
			t.Fatalf("qts %d: Get(%d) ok col=%v row=%v", qts, k, okC, okR)
		}
		if okC {
			if rc.CommitTS != rr.CommitTS || len(rc.Columns) != len(rr.Columns) {
				t.Fatalf("qts %d: Get(%d) col=%+v row=%+v", qts, k, rc, rr)
			}
			for id, v := range rc.Columns {
				if !bytes.Equal(v, rr.Columns[id]) {
					t.Fatalf("qts %d: Get(%d) col %d mismatch", qts, k, id)
				}
			}
		}
	}

	// ScanCols against both the row twin's ScanCols and the Scan-derived
	// reference.
	cols := []uint32{1, 2, 9}
	type colsRow struct {
		key  uint64
		ts   int64
		vals []string
	}
	gather := func(s *Snapshot) []colsRow {
		var out []colsRow
		if err := s.ScanCols(1, 0, ^uint64(0), cols, func(key uint64, ts int64, vals [][]byte) bool {
			r := colsRow{key: key, ts: ts}
			for _, v := range vals {
				r.vals = append(r.vals, string(v))
			}
			out = append(out, r)
			return true
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	gc, gr := gather(sc), gather(sr)
	if len(gc) != len(gr) {
		t.Fatalf("qts %d: ScanCols row count col=%d row=%d", qts, len(gc), len(gr))
	}
	for i := range gc {
		if gc[i].key != gr[i].key || gc[i].ts != gr[i].ts {
			t.Fatalf("qts %d: ScanCols row %d header mismatch", qts, i)
		}
		for j := range cols {
			if gc[i].vals[j] != gr[i].vals[j] {
				t.Fatalf("qts %d: ScanCols key %d col %d: %q vs %q",
					qts, gc[i].key, cols[j], gc[i].vals[j], gr[i].vals[j])
			}
		}
	}

	// ScanKeys (the vectorized batch scan, including sub-ranges so the
	// bulk-copy runs hit partial windows) against the Scan reference.
	for _, r := range [][2]uint64{{0, ^uint64(0)}, {1, 100}, {200, 4000}, {11, 11}} {
		var ks []uint64
		var ts []int64
		if err := sc.ScanKeys(1, r[0], r[1], func(keys []uint64, tss []int64) bool {
			ks = append(ks, keys...)
			ts = append(ts, tss...)
			return true
		}); err != nil {
			t.Fatal(err)
		}
		ref := collectScan(t, sr, r[0], r[1], false)
		if len(ks) != len(ref) {
			t.Fatalf("qts %d: ScanKeys[%d,%d] %d rows, want %d", qts, r[0], r[1], len(ks), len(ref))
		}
		for i := range ref {
			if ks[i] != ref[i].key || ts[i] != ref[i].ts {
				t.Fatalf("qts %d: ScanKeys[%d,%d] row %d = (%d,%d), want (%d,%d)",
					qts, r[0], r[1], i, ks[i], ts[i], ref[i].key, ref[i].ts)
			}
		}
	}
}

// FuzzColumnarScan is the reference-equality proof: a fuzz-driven write/
// freeze/query schedule runs against a columnar node and a row-wise twin
// vacuumed at every freeze watermark, and every read operation must agree
// at every legal snapshot (qts at or above the newest freeze watermark).
func FuzzColumnarScan(f *testing.F) {
	f.Add([]byte{0x01, 0x42, 0x17, 0xf0, 0x33, 0x08, 0xff, 0x2a, 0x90, 0x11})
	f.Add([]byte{0xf0, 0xf0, 0xf0, 0x00, 0x0d, 0x0d, 0x80, 0x81, 0x82, 0x83, 0xf1, 0x01})
	f.Add(bytes.Repeat([]byte{0x07, 0xe0, 0x55}, 20))
	f.Add([]byte{})

	strVals := []string{"x", "yy", "zzz", ""}
	f.Fuzz(func(t *testing.T, data []byte) {
		p := newTwinPair()
		ts := int64(0)
		txn := uint64(0)
		var wLast int64
		for i := 0; i+1 < len(data) && i < 240; i += 2 {
			op, arg := data[i], data[i+1]
			switch op % 8 {
			case 0, 1, 2, 3: // update
				ts += 10
				txn++
				key := fuzzKeys[int(arg)%len(fuzzKeys)]
				cols := []wal.Column{colI64(int64(arg) * 7)}
				if op%3 != 0 {
					cols = append(cols, wal.Column{ID: 2, Value: []byte(strVals[int(op)%len(strVals)])})
				}
				if arg%5 == 0 {
					cols = cols[1:] // partial update without the int column
				}
				p.apply(key, ts, txn, false, cols)
			case 4: // delete
				ts += 10
				txn++
				p.apply(fuzzKeys[int(arg)%len(fuzzKeys)], ts, txn, true, nil)
			case 5, 6: // freeze epoch at the current clock
				if ts > wLast {
					wLast = ts
					p.freeze(wLast)
					p.compare(t, wLast)
				}
			case 7: // compare at a legal snapshot at or above the watermark
				qts := wLast + int64(arg)
				if qts > ts {
					qts = ts
				}
				if qts >= wLast && qts > 0 {
					p.compare(t, qts)
				}
			}
		}
		if ts == 0 {
			return
		}
		p.freeze(ts)
		p.compare(t, ts)
	})
}

// TestColumnarConcurrent drives feed, vacuum, compaction and queries
// concurrently (meant for -race): writers own disjoint key ranges, the
// compactor trails the visible clock by a large retention, and after
// quiescing the columnar state must equal the final write of every key.
func TestColumnarConcurrent(t *testing.T) {
	vis := &fakeVis{}
	mt := memtable.New()
	cs := colstore.NewStore()
	comp := colstore.NewCompactor(mt, cs)
	ex := NewExecutorWith(mt, vis, cs)

	const writers = 4
	const keysPer = 200
	const rounds = 30
	var clock atomic.Int64
	clock.Store(1)

	done := make(chan struct{})
	var writerWG, churnWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for r := 0; r < rounds; r++ {
				for k := 0; k < keysPer; k++ {
					key := uint64(w*keysPer + k)
					ts := clock.Add(1)
					del := r%7 == 3 && k%5 == 0
					var cols []wal.Column
					if !del {
						cols = []wal.Column{colI64(int64(w*rounds + r))}
					}
					mt.Table(1).GetOrCreate(key).Append(&memtable.Version{
						TxnID: uint64(ts), CommitTS: ts, Deleted: del, Columns: cols,
					})
					vis.ts.Store(ts)
				}
			}
		}(w)
	}
	churnWG.Add(2)
	go func() { // compactor + vacuum trailing far behind the clock
		defer churnWG.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if w := vis.ts.Load() - int64(writers*keysPer*rounds/2); w > 0 {
				mt.Vacuum(w)
				comp.RunOnce(w)
			}
		}
	}()
	go func() { // fresh-snapshot readers: ordering invariant under churn
		defer churnWG.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			s := ex.Begin(0, 1)
			last := int64(-1)
			_ = s.Scan(1, 0, ^uint64(0), func(r Row) bool {
				if int64(r.Key) <= last {
					t.Errorf("scan keys out of order: %d after %d", r.Key, last)
					return false
				}
				last = int64(r.Key)
				return true
			})
			if n, err := s.Count(1); err != nil || n < 0 {
				t.Errorf("Count = %d, %v", n, err)
			}
			_, _ = s.SumInt64(1, 1)
			_, _ = s.MaxCommitTS(1)
		}
	}()

	// Wait for the writers, then stop the background churn.
	writerWG.Wait()
	close(done)
	churnWG.Wait()

	// Quiesce: final freeze at the head, then verify every key's last
	// write is what the planner serves.
	final := vis.ts.Load()
	mt.Vacuum(final)
	comp.RunOnce(final)
	s := ex.Begin(final, 1)
	for w := 0; w < writers; w++ {
		for k := 0; k < keysPer; k++ {
			key := uint64(w*keysPer + k)
			lastRound := rounds - 1
			wantDel := lastRound%7 == 3 && k%5 == 0
			row, ok, err := s.Get(1, key)
			if err != nil {
				t.Fatal(err)
			}
			if ok == wantDel {
				t.Fatalf("key %d: ok=%v, want deleted=%v", key, ok, wantDel)
			}
			if ok {
				want := int64(w*rounds + lastRound)
				if got := int64(binary.LittleEndian.Uint64(row.Columns[1])); got != want {
					t.Fatalf("key %d: col1 = %d, want %d", key, got, want)
				}
			}
		}
	}
}

// TestColumnarZeroAllocOps pins the planner's steady-state operations at
// zero allocations over a majority-frozen table with a small hot delta.
func TestColumnarZeroAllocOps(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector randomises sync.Pool caching; alloc counts are meaningless")
	}
	vis := &fakeVis{}
	mt := memtable.New()
	cs := colstore.NewStore()
	comp := colstore.NewCompactor(mt, cs)
	ex := NewExecutorWith(mt, vis, cs)

	ts := int64(0)
	put := func(key uint64, del bool) {
		ts++
		var cols []wal.Column
		if !del {
			cols = []wal.Column{colI64(int64(key)), {ID: 2, Value: []byte("v")}}
		}
		mt.Table(1).GetOrCreate(key).Append(&memtable.Version{
			TxnID: uint64(ts), CommitTS: ts, Deleted: del, Columns: cols,
		})
		vis.ts.Store(ts)
	}
	for k := uint64(0); k < 4096; k++ {
		put(k, k%64 == 63)
	}
	frozenAt := ts
	mt.Vacuum(frozenAt)
	if comp.RunOnce(frozenAt) == 0 {
		t.Fatal("nothing froze")
	}
	for k := uint64(0); k < 64; k++ { // hot delta over the frozen base
		put(k*61, k%9 == 0)
	}

	s := ex.Begin(ts, 1)
	cols := []uint32{1, 2}
	ops := map[string]func(){
		"Count":       func() { _, _ = s.Count(1) },
		"SumInt64":    func() { _, _ = s.SumInt64(1, 1) },
		"MaxCommitTS": func() { _, _ = s.MaxCommitTS(1) },
		"ScanCols": func() {
			_ = s.ScanCols(1, 0, ^uint64(0), cols, func(uint64, int64, [][]byte) bool { return true })
		},
		"ScanKeys": func() {
			_ = s.ScanKeys(1, 0, ^uint64(0), func([]uint64, []int64) bool { return true })
		},
	}
	for name, op := range ops {
		op() // warm scratch buffers
		if allocs := testing.AllocsPerRun(50, op); allocs != 0 {
			t.Errorf("%s allocates %.1f/op, want 0", name, allocs)
		}
	}
}

// TestColumnarFirstCompactionUnderScan pins the torn-publish guard: a
// query planned while the table has never been compacted must run its row
// fallback under the table read lock, so a racing first compaction cannot
// empty chains mid-scan. (Deterministic shape; the race variant is
// TestColumnarConcurrent.)
func TestColumnarRowFallbackBeforeFirstCompaction(t *testing.T) {
	vis := &fakeVis{}
	mt := memtable.New()
	cs := colstore.NewStore()
	ex := NewExecutorWith(mt, vis, cs)
	ts := int64(0)
	for k := uint64(0); k < 10; k++ {
		ts++
		mt.Table(1).GetOrCreate(k).Append(&memtable.Version{
			TxnID: uint64(ts), CommitTS: ts, Columns: []wal.Column{colI64(int64(k))},
		})
	}
	vis.ts.Store(ts)
	s := ex.Begin(ts, 1)
	n := 0
	if err := s.Scan(1, 0, ^uint64(0), func(Row) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("pre-compaction scan = %d rows, want 10", n)
	}
	if got, _ := s.Count(1); got != 10 {
		t.Fatalf("pre-compaction Count = %d, want 10", got)
	}
	if fmt.Sprint(cs.Segments.Load()) != "0" {
		t.Fatal("no segment should exist yet")
	}
}
