package query

// columnar.go is the columnar read planner: every snapshot operation on a
// columnar executor resolves as base segment + hot delta, stitched with
// newest-wins semantics.
//
// Consistency model. The freeze rule (colstore) guarantees a base row is
// exactly the version a Vacuum at the freeze watermark would have kept,
// and legal snapshots sit at or above that watermark, so every base row is
// visible (CommitTS ≤ watermark ≤ qts) unless a hot chain shadows it. Per
// record, the stitch is:
//
//   - hot chain visible at qts → the chain wins: its columns merge
//     newest-first, and if the walk reaches the chain end without hitting
//     a tombstone, the base row's columns fill in underneath (the base row
//     is the chain's vacuumed predecessor);
//   - hot chain invisible at qts (all post-freeze versions are newer) →
//     the base row alone, exactly what the vacuumed twin would show;
//   - tombstones shadow: a deleted visible version hides the row, a
//     deleted base row contributes nothing and blocks fill-down.
//
// The planner holds the table's colstore read lock for the span of one
// operation, so a concurrent compaction pass (publish new base + empty the
// frozen chains) is observed atomically — "chain empty" always implies
// "the base I loaded has the row".

import (
	"encoding/binary"
	"math/bits"

	"aets/internal/colstore"
	"aets/internal/memtable"
	"aets/internal/wal"
)

// scanKeysBatch is the ScanKeys output vector length: large enough that
// the per-batch callback amortises to nothing, small enough to stay
// cache-resident (4096 rows = 64 KiB of keys + timestamps).
const scanKeysBatch = 4096

// planScratch is the pooled per-operation state.
type planScratch struct {
	hot     []*memtable.Record
	hotKeys []uint64 // parallel to hot after gatherHot
	tmpR    []*memtable.Record
	tmpK    []uint64 // radix-sort temporaries
	vals    [][]byte
	colIdx  []int
	excl    []int
	batchK  []uint64 // ScanKeys output batch
	batchT  []int64
}

func (e *Executor) getScratch() *planScratch {
	if v := e.scratch.Get(); v != nil {
		return v.(*planScratch)
	}
	return &planScratch{}
}

func (e *Executor) putScratch(sc *planScratch) {
	e.scratch.Put(sc)
}

func (sc *planScratch) valBuf(n int) [][]byte {
	if cap(sc.vals) < n {
		sc.vals = make([][]byte, n)
	}
	return sc.vals[:n]
}

func (sc *planScratch) colIdxBuf(n int) []int {
	if cap(sc.colIdx) < n {
		sc.colIdx = make([]int, n)
	}
	return sc.colIdx[:n]
}

// gatherHot enumerates the table's delta restricted to [from, to], sorted
// by key and deduped, into the scratch buffers. The returned key vector
// is parallel to the records: merge and adjustment loops compare against
// it instead of dereferencing a record per probe.
func (sc *planScratch) gatherHot(tab *memtable.Table, from, to uint64) ([]*memtable.Record, []uint64) {
	sc.hot = tab.HotRecords(sc.hot[:0])
	if cap(sc.hotKeys) < len(sc.hot) {
		sc.hotKeys = make([]uint64, 0, cap(sc.hot))
		sc.tmpR = make([]*memtable.Record, cap(sc.hot))
		sc.tmpK = make([]uint64, cap(sc.hot))
	}
	out, keys := sc.hot[:0], sc.hotKeys[:0]
	for _, r := range sc.hot {
		if k := r.Key; k >= from && k <= to {
			out = append(out, r)
			keys = append(keys, k)
		}
	}
	sc.hot, sc.hotKeys = colstore.SortDedupePairs(out, keys, sc.tmpR, sc.tmpK)
	return sc.hot, sc.hotKeys
}

// batchBuf returns the pooled ScanKeys output vectors.
func (sc *planScratch) batchBuf() ([]uint64, []int64) {
	if cap(sc.batchK) < scanKeysBatch {
		sc.batchK = make([]uint64, scanKeysBatch)
		sc.batchT = make([]int64, scanKeysBatch)
	}
	return sc.batchK[:scanKeysBatch], sc.batchT[:scanKeysBatch]
}

// usable reports whether the base segment participates in this snapshot,
// charging the prune counters. A segment whose whole key range misses
// [from, to], or whose oldest row is newer than the snapshot (only
// possible for queries below the freeze watermark, outside the read
// contract), is skipped whole.
func (s *Snapshot) usable(base *colstore.Segment, from, to uint64) bool {
	if base == nil {
		return false
	}
	if base.Len() == 0 || to < base.MinKey || from > base.MaxKey || s.TS < base.MinTS {
		s.ex.cs.PruneHits.Add(1)
		return false
	}
	s.ex.cs.PruneMisses.Add(1)
	return true
}

// baseRange returns the segment row range [bi, bn) covering [from, to].
// Caller has established usability (from ≤ MaxKey, so to+1 cannot wrap
// unless to == MaxKey == ^uint64(0), which takes the bn = Len branch).
func baseRange(base *colstore.Segment, from, to uint64) (int, int) {
	bi := base.LowerBound(from)
	bn := base.Len()
	if to < base.MaxKey {
		bn = base.LowerBound(to + 1)
	}
	return bi, bn
}

// baseRowMap materialises segment row i as a Row column map.
func baseRowMap(base *colstore.Segment, i int) map[uint32][]byte {
	row := make(map[uint32][]byte, len(base.Cols))
	base.ForEachColumn(i, func(id uint32, val []byte) { row[id] = val })
	return row
}

// stitchRow resolves a hot record (possibly shadowing base row i) into a
// Row, reporting ok=false when the record is invisible or deleted at the
// snapshot.
func (s *Snapshot) stitchRow(rec *memtable.Record, base *colstore.Segment, i int, inBase bool) (Row, bool) {
	v := rec.Visible(s.TS)
	baseLive := inBase && !base.Deleted(i)
	if v == nil {
		if !baseLive {
			return Row{}, false
		}
		return Row{Key: rec.Key, CommitTS: base.CommitTS[i], Columns: baseRowMap(base, i)}, true
	}
	if v.Deleted {
		return Row{}, false
	}
	row := make(map[uint32][]byte, 4)
	sawDelete := false
	for w := v; w != nil; w = w.Next() {
		if w.Deleted {
			sawDelete = true
			break // versions older than a delete belong to a prior row
		}
		for _, c := range w.Columns {
			if _, ok := row[c.ID]; !ok {
				row[c.ID] = c.Value
			}
		}
	}
	if !sawDelete && baseLive {
		base.ForEachColumn(i, func(id uint32, val []byte) {
			if _, ok := row[id]; !ok {
				row[id] = val
			}
		})
	}
	return Row{Key: rec.Key, CommitTS: v.CommitTS, Columns: row}, true
}

// chainColValue returns the value of col as of the version walk starting
// at v (the newest visible version): the first version carrying the
// column wins, a tombstone below stops the walk. found=false means the
// walk ran past the chain end — the caller may fill down from a base row.
func chainColValue(v *memtable.Version, col uint32) (val []byte, stop bool) {
	for w := v; w != nil; w = w.Next() {
		if w.Deleted {
			return nil, true
		}
		for _, c := range w.Columns {
			if c.ID == col {
				return c.Value, true
			}
		}
	}
	return nil, false
}

// ---------------------------------------------------------------------------
// Planned operations.

func (s *Snapshot) colGet(table wal.TableID, key uint64) (Row, bool, error) {
	st := s.ex.cs.Table(table)
	st.RLock()
	defer st.RUnlock()
	base := st.Base()
	rec := s.ex.mt.Table(table).Get(key)
	if rec == nil || rec.Latest() == nil {
		// No chain: the row exists only if frozen.
		if !s.usable(base, key, key) {
			return Row{}, false, nil
		}
		i, ok := base.Find(key)
		if !ok || base.Deleted(i) {
			return Row{}, false, nil
		}
		return Row{Key: key, CommitTS: base.CommitTS[i], Columns: baseRowMap(base, i)}, true, nil
	}
	i, inBase := -1, false
	if s.usable(base, key, key) {
		if j, ok := base.Find(key); ok {
			i, inBase = j, true
		}
	}
	row, ok := s.stitchRow(rec, base, i, inBase)
	return row, ok, nil
}

func (s *Snapshot) colScan(table wal.TableID, from, to uint64, fn func(Row) bool) error {
	st := s.ex.cs.Table(table)
	st.RLock()
	defer st.RUnlock()
	base := st.Base()
	if base == nil {
		// Never compacted: the row store is complete. Still under the
		// read lock, so a first compaction cannot tear this scan.
		s.rowScan(table, from, to, fn)
		return nil
	}
	tab := s.ex.mt.Table(table)
	sc := s.ex.getScratch()
	defer s.ex.putScratch(sc)
	hot, hotKeys := sc.gatherHot(tab, from, to)
	bi, bn := 0, 0
	if s.usable(base, from, to) {
		bi, bn = baseRange(base, from, to)
	}
	hj := 0
	for bi < bn || hj < len(hot) {
		if hj >= len(hot) || (bi < bn && base.Keys[bi] < hotKeys[hj]) {
			if !base.Deleted(bi) {
				if !fn(Row{Key: base.Keys[bi], CommitTS: base.CommitTS[bi], Columns: baseRowMap(base, bi)}) {
					return nil
				}
			}
			bi++
			continue
		}
		rec := hot[hj]
		hj++
		i, inBase := -1, false
		if bi < bn && base.Keys[bi] == rec.Key {
			i, inBase = bi, true
			bi++
		}
		if row, ok := s.stitchRow(rec, base, i, inBase); ok && !fn(row) {
			return nil
		}
	}
	return nil
}

func (s *Snapshot) colScanCols(table wal.TableID, from, to uint64, cols []uint32, fn func(key uint64, ts int64, vals [][]byte) bool) error {
	st := s.ex.cs.Table(table)
	st.RLock()
	defer st.RUnlock()
	base := st.Base()
	sc := s.ex.getScratch()
	defer s.ex.putScratch(sc)
	vals := sc.valBuf(len(cols))
	if base == nil {
		tab := s.ex.mt.Table(table)
		tab.Scan(from, to, func(key uint64, rec *memtable.Record) bool {
			v := rec.Visible(s.TS)
			if v == nil || v.Deleted {
				return true
			}
			for i, col := range cols {
				vals[i], _ = chainColValue(v, col)
			}
			return fn(key, v.CommitTS, vals)
		})
		return nil
	}
	tab := s.ex.mt.Table(table)
	hot, hotKeys := sc.gatherHot(tab, from, to)
	colIdx := sc.colIdxBuf(len(cols))
	for i, id := range cols {
		colIdx[i] = base.ColIndex(id)
	}
	bi, bn := 0, 0
	if s.usable(base, from, to) {
		bi, bn = baseRange(base, from, to)
	}
	emitBase := func(i int) bool {
		for c := range cols {
			if ci := colIdx[c]; ci >= 0 {
				vals[c], _ = base.Cols[ci].Value(i)
			} else {
				vals[c] = nil
			}
		}
		return fn(base.Keys[i], base.CommitTS[i], vals)
	}
	hj := 0
	for bi < bn || hj < len(hot) {
		if hj >= len(hot) || (bi < bn && base.Keys[bi] < hotKeys[hj]) {
			if !base.Deleted(bi) && !emitBase(bi) {
				return nil
			}
			bi++
			continue
		}
		rec := hot[hj]
		hj++
		i, inBase := -1, false
		if bi < bn && base.Keys[bi] == rec.Key {
			i, inBase = bi, true
			bi++
		}
		v := rec.Visible(s.TS)
		baseLive := inBase && !base.Deleted(i)
		if v == nil {
			if baseLive && !emitBase(i) {
				return nil
			}
			continue
		}
		if v.Deleted {
			continue
		}
		for c, col := range cols {
			val, stop := chainColValue(v, col)
			if !stop && val == nil && baseLive {
				if ci := colIdx[c]; ci >= 0 {
					val, _ = base.Cols[ci].Value(i)
				}
			}
			vals[c] = val
		}
		if !fn(rec.Key, v.CommitTS, vals) {
			return nil
		}
	}
	return nil
}

// rowScanKeys is the chain-walking ScanKeys: visible rows buffered into
// the scratch vectors and flushed in scanKeysBatch-row batches.
func (s *Snapshot) rowScanKeys(table wal.TableID, from, to uint64, fn func(keys []uint64, ts []int64) bool) {
	sc := s.ex.getScratch()
	defer s.ex.putScratch(sc)
	keys, tss := sc.batchBuf()
	kn := 0
	cont := true
	s.ex.mt.Table(table).Scan(from, to, func(key uint64, rec *memtable.Record) bool {
		v := rec.Visible(s.TS)
		if v == nil || v.Deleted {
			return true
		}
		keys[kn], tss[kn] = key, v.CommitTS
		kn++
		if kn == len(keys) {
			cont = fn(keys, tss)
			kn = 0
			return cont
		}
		return true
	})
	if cont && kn > 0 {
		fn(keys[:kn], tss[:kn])
	}
}

// colScanKeys is the vectorized scan: live base rows move into the output
// vectors by bulk copies over tombstone-bitmap runs (no per-row branch,
// no version resolution), and the hot delta stitches in at its galloped
// merge positions. This is the columnar counterpart of the memtable's
// materialized merged-scan view.
func (s *Snapshot) colScanKeys(table wal.TableID, from, to uint64, fn func(keys []uint64, ts []int64) bool) {
	st := s.ex.cs.Table(table)
	st.RLock()
	defer st.RUnlock()
	base := st.Base()
	if base == nil {
		// Never compacted: the row store is complete. Still under the
		// read lock, so a first compaction cannot tear this scan.
		s.rowScanKeys(table, from, to, fn)
		return
	}
	tab := s.ex.mt.Table(table)
	sc := s.ex.getScratch()
	defer s.ex.putScratch(sc)
	keys, tss := sc.batchBuf()
	kn := 0
	flush := func() bool {
		n := kn
		kn = 0
		return n == 0 || fn(keys[:n], tss[:n])
	}
	// nextTomb returns the first tombstone index in [i, end), walking the
	// bitmap a word at a time.
	nextTomb := func(i, end int) int {
		w := base.Del[i>>6] >> (uint(i) & 63)
		if w != 0 {
			if t := i + bits.TrailingZeros64(w); t < end {
				return t
			}
			return end
		}
		for wi := i>>6 + 1; wi <= (end-1)>>6; wi++ {
			if w := base.Del[wi]; w != 0 {
				if t := wi<<6 + bits.TrailingZeros64(w); t < end {
					return t
				}
				break
			}
		}
		return end
	}
	// emitBase hands live base runs of [i, end) to the consumer as
	// zero-copy windows directly over the segment's key and timestamp
	// vectors — nothing moves, tombstones just split the runs. Segments
	// are immutable, so the windows stay coherent even if a compaction
	// publishes a successor mid-scan.
	emitBase := func(i, end int) bool {
		for i < end {
			t := nextTomb(i, end)
			if t > i {
				if !flush() {
					return false
				}
				if !fn(base.Keys[i:t:t], base.CommitTS[i:t:t]) {
					return false
				}
			}
			i = t + 1
		}
		return true
	}
	push := func(key uint64, ts int64) bool {
		if kn == len(keys) && !flush() {
			return false
		}
		keys[kn], tss[kn] = key, ts
		kn++
		return true
	}

	hot, hotKeys := sc.gatherHot(tab, from, to)
	bi, bn := 0, 0
	if s.usable(base, from, to) {
		bi, bn = baseRange(base, from, to)
	}
	hj := 0
	for bi < bn || hj < len(hot) {
		if hj < len(hot) && bi < bn && base.Keys[bi] < hotKeys[hj] {
			// Bulk-emit the base run strictly below the next hot key.
			e := base.LowerBoundFrom(bi, hotKeys[hj])
			if e > bn {
				e = bn
			}
			if !emitBase(bi, e) {
				return
			}
			bi = e
			continue
		}
		if hj >= len(hot) {
			if !emitBase(bi, bn) {
				return
			}
			break
		}
		rec := hot[hj]
		hk := hotKeys[hj]
		hj++
		i, inBase := -1, false
		if bi < bn && base.Keys[bi] == hk {
			i, inBase = bi, true
			bi++
		}
		v := rec.Visible(s.TS)
		if v == nil {
			if inBase && !base.Deleted(i) && !push(hk, base.CommitTS[i]) {
				return
			}
			continue
		}
		if !v.Deleted && !push(hk, v.CommitTS) {
			return
		}
	}
	flush()
}

func (s *Snapshot) colCount(table wal.TableID) (int, error) {
	st := s.ex.cs.Table(table)
	st.RLock()
	defer st.RUnlock()
	base := st.Base()
	tab := s.ex.mt.Table(table)
	sc := s.ex.getScratch()
	defer s.ex.putScratch(sc)
	useBase := s.usable(base, 0, ^uint64(0))
	n := 0
	if useBase {
		n = base.Live
	}
	hot, hotKeys := sc.gatherHot(tab, 0, ^uint64(0))
	lo := 0 // hot is key-sorted: gallop the base positions monotonically
	for j, rec := range hot {
		v := rec.Visible(s.TS)
		if v == nil {
			continue // base row (if any) already counted
		}
		if !v.Deleted {
			n++
		}
		if useBase {
			i := base.LowerBoundFrom(lo, hotKeys[j])
			lo = i
			if i < base.Len() && base.Keys[i] == hotKeys[j] && !base.Deleted(i) {
				n-- // chain shadows the counted base row
			}
		}
	}
	return n, nil
}

func (s *Snapshot) colMaxCommitTS(table wal.TableID) (int64, error) {
	st := s.ex.cs.Table(table)
	st.RLock()
	defer st.RUnlock()
	base := st.Base()
	tab := s.ex.mt.Table(table)
	sc := s.ex.getScratch()
	defer s.ex.putScratch(sc)
	useBase := s.usable(base, 0, ^uint64(0))
	var max int64
	excl := sc.excl[:0]
	hot, hotKeys := sc.gatherHot(tab, 0, ^uint64(0))
	lo := 0
	for j, rec := range hot {
		v := rec.Visible(s.TS)
		if v == nil {
			continue
		}
		if !v.Deleted && v.CommitTS > max {
			max = v.CommitTS
		}
		if useBase {
			// A visible chain shadows its base row whatever its own
			// fate: the base row's ts must not count. hot is key-sorted,
			// so excl comes out ascending as MaxLiveTSExcluding needs.
			i := base.LowerBoundFrom(lo, hotKeys[j])
			lo = i
			if i < base.Len() && base.Keys[i] == hotKeys[j] {
				excl = append(excl, i)
			}
		}
	}
	sc.excl = excl
	if useBase {
		if len(excl) == 0 {
			if base.MaxLiveTS > max {
				max = base.MaxLiveTS
			}
		} else {
			max = base.MaxLiveTSExcluding(excl, max)
		}
	}
	return max, nil
}

func (s *Snapshot) colSumInt64(table wal.TableID, col uint32) (int64, error) {
	st := s.ex.cs.Table(table)
	st.RLock()
	defer st.RUnlock()
	base := st.Base()
	tab := s.ex.mt.Table(table)
	sc := s.ex.getScratch()
	defer s.ex.putScratch(sc)
	useBase := s.usable(base, 0, ^uint64(0))
	var sum int64
	ci := -1
	if useBase {
		sum = base.Sum(col)
		ci = base.ColIndex(col)
	}
	hot, hotKeys := sc.gatherHot(tab, 0, ^uint64(0))
	lo := 0
	for j, rec := range hot {
		v := rec.Visible(s.TS)
		if v == nil {
			continue
		}
		var baseVal []byte
		baseLive := false
		if useBase {
			i := base.LowerBoundFrom(lo, hotKeys[j])
			lo = i
			if i < base.Len() && base.Keys[i] == hotKeys[j] && !base.Deleted(i) {
				baseLive = true
				if ci >= 0 {
					baseVal, _ = base.Cols[ci].Value(i)
				}
				// The chain shadows the base row: back out its
				// precomputed contribution, then add the chain's.
				if len(baseVal) == 8 {
					sum -= int64(binary.LittleEndian.Uint64(baseVal))
				}
			}
		}
		if v.Deleted {
			continue
		}
		val, stop := chainColValue(v, col)
		if !stop && val == nil && baseLive {
			val = baseVal
		}
		if len(val) == 8 {
			sum += int64(binary.LittleEndian.Uint64(val))
		}
	}
	return sum, nil
}
