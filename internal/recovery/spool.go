// Package recovery is the crash-recovery subsystem of a backup node: a
// durable epoch spool (every replicated epoch is persisted locally
// before it is acknowledged), an atomic checkpoint manager (write-tmp,
// fsync, rename, retain-K, corruption fallback), and a replay
// supervisor that owns the htap.Node lifecycle — restoring the newest
// valid checkpoint plus the spool tail on startup and rebuilding the
// node with bounded, jittered backoff when replay fails fatally. A
// poison epoch that keeps failing is quarantined to a sidecar file so
// one bad epoch degrades the replica instead of crash-looping it.
package recovery

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"aets/internal/epoch"
	"aets/internal/metrics"
	"aets/internal/ship"
)

// SyncPolicy selects when the spool fsyncs appended epochs.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every appended epoch: an acknowledged
	// epoch survives power loss. Slowest, strongest.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs at most once per configured interval (plus on
	// rotation and close): bounded loss window, near-SyncNever speed.
	SyncInterval
	// SyncNever leaves flushing to the OS. A crash of the process alone
	// loses nothing (writes are unbuffered); power loss may lose the
	// tail — which the primary re-ships after the resume handshake.
	SyncNever
)

// ParseSyncPolicy maps the -sync flag values to a SyncPolicy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("recovery: unknown sync policy %q (want always, interval or never)", s)
}

// String returns the flag spelling of the policy.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	default:
		return "never"
	}
}

// ErrSpoolGap is returned by Append when an epoch does not extend the
// spool contiguously (the caller skipped a sequence).
var ErrSpoolGap = errors.New("recovery: spool sequence gap")

// ErrSpoolClosed is returned by operations on a closed spool.
var ErrSpoolClosed = errors.New("recovery: spool closed")

const (
	spoolPrefix = "spool-"
	spoolSuffix = ".seg"
	// DefaultSegmentBytes caps one spool segment file (same default as
	// wal.SegmentStore).
	DefaultSegmentBytes = 16 << 20
	// DefaultSyncInterval is the SyncInterval flush cadence.
	DefaultSyncInterval = 100 * time.Millisecond
)

// SpoolConfig configures a durable epoch spool.
type SpoolConfig struct {
	// Dir holds the segment files. Created if absent. Required.
	Dir string
	// MaxSegmentBytes rotates to a new segment file past this size.
	// ≤ 0 uses DefaultSegmentBytes.
	MaxSegmentBytes int
	// Policy is the fsync policy. Default SyncAlways.
	Policy SyncPolicy
	// Interval is the SyncInterval flush cadence. ≤ 0 uses
	// DefaultSyncInterval.
	Interval time.Duration
	// Metrics receives the spool gauges/counters; nil uses
	// metrics.Default.
	Metrics *metrics.Registry
}

// Spool is an append-only, file-backed archive of CRC-framed encoded
// epochs: the backup's local replication log. Each record is one ship
// EPOCH frame (magic, version, length, CRC32C) stored exactly as it
// arrived — a compressed v2 frame is spooled compressed (AppendWire)
// and only inflated when replayed. Frames are appended to segment
// files named spool-<seq>.seg, where seq is a lower bound on the first
// epoch the file contains: exact at creation, and raised in place by
// Compact, which rewrites the oldest segment dropping epochs below the
// checkpoint cursor without renaming it. On open the spool scans its
// segments, truncates a torn or corrupt tail at the last valid frame
// boundary, and exposes the replayable range [First, End).
//
// Append, AppendWire, TruncateBefore and Compact are safe for
// concurrent use; Replay must not run concurrently with Append or
// Compact (the supervisor serializes them).
type Spool struct {
	cfg SpoolConfig

	mu      sync.Mutex
	f       *os.File // current segment, nil before the first append
	size    int64
	first   uint64 // seq of the oldest spooled epoch (valid when have)
	next    uint64 // next seq Append accepts; end of the replayable range
	have    bool   // at least one epoch is spooled
	dirty   bool   // unsynced bytes in the current segment
	lastTry time.Time
	closed  bool
	stop    chan struct{}
	buf     []byte // reusable frame-encode buffer

	cTruncated *metrics.Counter
	cAppended  *metrics.Counter
	cSyncs     *metrics.Counter
	cCompacts  *metrics.Counter
	cReclaimed *metrics.Counter
	gEnd       *metrics.Gauge
	gSegments  *metrics.Gauge
}

// OpenSpool opens (or creates) the spool in cfg.Dir, recovering the
// replayable range: segments are scanned in order, the first torn or
// corrupt frame truncates the log from that point on (later segments
// are removed — they would be a gap), and the scan result defines
// First/End.
func (cfg SpoolConfig) open() (*Spool, error) {
	if cfg.MaxSegmentBytes <= 0 {
		cfg.MaxSegmentBytes = DefaultSegmentBytes
	}
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultSyncInterval
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.Default
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	sp := &Spool{
		cfg:        cfg,
		stop:       make(chan struct{}),
		cTruncated: cfg.Metrics.Counter("recovery_spool_truncated_total"),
		cAppended:  cfg.Metrics.Counter("recovery_spool_epochs_total"),
		cSyncs:     cfg.Metrics.Counter("recovery_spool_syncs_total"),
		cCompacts:  cfg.Metrics.Counter("recovery_spool_compactions_total"),
		cReclaimed: cfg.Metrics.Counter("recovery_spool_compact_reclaimed_bytes_total"),
		gEnd:       cfg.Metrics.Gauge("recovery_spool_end"),
		gSegments:  cfg.Metrics.Gauge("recovery_spool_segments"),
	}
	if err := sp.recover(); err != nil {
		return nil, err
	}
	if cfg.Policy == SyncInterval {
		go sp.syncLoop()
	}
	return sp, nil
}

// OpenSpool opens (or creates) a spool per cfg. See Spool.
func OpenSpool(cfg SpoolConfig) (*Spool, error) {
	if cfg.Dir == "" {
		return nil, errors.New("recovery: SpoolConfig.Dir is required")
	}
	return cfg.open()
}

// recover scans segments, truncating the log at the first invalid
// frame. Leftover .tmp files from a compaction that died before its
// rename are discarded first — the original segment is still intact.
func (sp *Spool) recover() error {
	ents, err := os.ReadDir(sp.cfg.Dir)
	if err != nil {
		return err
	}
	for _, de := range ents {
		if strings.HasSuffix(de.Name(), spoolSuffix+compactTmpSuffix) {
			if err := os.Remove(filepath.Join(sp.cfg.Dir, de.Name())); err != nil {
				return err
			}
		}
	}
	segs, err := sp.segments()
	if err != nil {
		return err
	}
	expect := uint64(0)
	haveAny := false
	for i, nameSeq := range segs {
		good, firstSeq, lastSeq, n, serr := scanSegment(sp.path(nameSeq), nameSeq, haveAny, expect)
		if n > 0 {
			if !haveAny {
				sp.first, sp.have, haveAny = firstSeq, true, true
			}
			expect = lastSeq + 1
		}
		if serr != nil {
			// Torn or corrupt tail: keep the valid prefix, drop the rest of
			// this segment and every later one (they would be a gap).
			if err := os.Truncate(sp.path(nameSeq), good); err != nil {
				return fmt.Errorf("recovery: truncating torn spool segment: %w", err)
			}
			for _, later := range segs[i+1:] {
				if err := os.Remove(sp.path(later)); err != nil {
					return err
				}
			}
			sp.cTruncated.Inc()
			if n == 0 && !haveAny {
				// The whole first segment was bad; nothing replayable in it.
				if good == 0 {
					_ = os.Remove(sp.path(nameSeq))
				}
			}
			break
		}
	}
	sp.next = expect
	if !sp.have {
		sp.next = 0
	}
	sp.publishGauges()
	return nil
}

// scanSegment walks one segment's frames. It returns the byte offset
// of the end of the last valid frame, the first and last epoch seqs
// read, the number of valid frames, and the error that ended the scan
// (nil at clean EOF). A compressed frame is inflated here purely to
// validate it — the spooled bytes stay as received. The segment's
// leading frame must carry a seq at or above nameSeq (the file name is
// a lower bound; compaction raises the content floor in place), and in
// a non-leading segment it must continue the previous segment exactly;
// subsequent frames must be consecutive. Any mismatch is treated as
// corruption at that frame.
func scanSegment(path string, nameSeq uint64, haveAny bool, expect uint64) (good int64, firstSeq, lastSeq uint64, n int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	defer f.Close()
	cr := &countingReader{r: f}
	for {
		_, kind, flags, payload, rerr := ship.ReadFrameFlags(cr)
		if rerr == io.EOF {
			return good, firstSeq, lastSeq, n, nil
		}
		if rerr != nil {
			return good, firstSeq, lastSeq, n, rerr
		}
		if kind != ship.KindEpoch {
			return good, firstSeq, lastSeq, n, fmt.Errorf("%w: unexpected frame kind %d in spool", ship.ErrCorrupt, kind)
		}
		enc, derr := ship.DecodeEpochFrame(flags, payload)
		if derr != nil {
			return good, firstSeq, lastSeq, n, derr
		}
		if n == 0 && !haveAny {
			if enc.Seq < nameSeq {
				return good, firstSeq, lastSeq, n, fmt.Errorf("%w: spool seq %d below segment floor %d", ship.ErrCorrupt, enc.Seq, nameSeq)
			}
			expect = enc.Seq
		}
		if enc.Seq != expect {
			return good, firstSeq, lastSeq, n, fmt.Errorf("%w: spool seq %d, want %d", ship.ErrCorrupt, enc.Seq, expect)
		}
		if n == 0 {
			firstSeq = enc.Seq
		}
		good, lastSeq = cr.n, enc.Seq
		expect++
		n++
	}
}

// countingReader counts consumed bytes; ReadFrame reads exactly what it
// needs, so n is always a frame boundary after a successful frame.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// Range returns the replayable range: the first spooled epoch seq and
// the next seq Append accepts (end of range). ok is false when the
// spool is empty (both values are then meaningless).
func (sp *Spool) Range() (first, next uint64, ok bool) {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return sp.first, sp.next, sp.have
}

// End returns the next epoch seq the spool will accept (0 when empty
// and unaligned).
func (sp *Spool) End() uint64 {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return sp.next
}

// Append persists one encoded epoch. Epochs must extend the spool
// contiguously; a seq below End is a duplicate and is dropped (it is
// already durable), a seq above it is ErrSpoolGap. The configured sync
// policy decides whether Append returns only after an fsync.
func (sp *Spool) Append(enc *epoch.Encoded) error {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	sp.buf = ship.AppendFrame(sp.buf[:0], ship.KindEpoch, ship.EncodeEpoch(enc))
	return sp.appendFrameLocked(enc.Seq, sp.buf)
}

// AppendWire persists one epoch exactly as it crossed the wire: the
// raw EPOCH frame payload plus its header flags, so a compressed frame
// is spooled compressed instead of being inflated and re-deflated.
// Same contiguity contract as Append.
func (sp *Spool) AppendWire(seq uint64, flags byte, payload []byte) error {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	sp.buf = ship.AppendFrameFlags(sp.buf[:0], ship.KindEpoch, flags, payload)
	return sp.appendFrameLocked(seq, sp.buf)
}

// appendFrameLocked writes one already-framed epoch record.
func (sp *Spool) appendFrameLocked(seq uint64, frame []byte) error {
	if sp.closed {
		return ErrSpoolClosed
	}
	if sp.have || sp.next > 0 {
		if seq < sp.next {
			return nil // already durable
		}
		if seq > sp.next {
			return fmt.Errorf("%w: appending %d, spool ends at %d", ErrSpoolGap, seq, sp.next)
		}
	}
	if sp.f == nil || sp.size >= int64(sp.cfg.MaxSegmentBytes) {
		if err := sp.rotateLocked(seq); err != nil {
			return err
		}
	}
	if _, err := sp.f.Write(frame); err != nil {
		return err
	}
	sp.size += int64(len(frame))
	if !sp.have {
		sp.first, sp.have = seq, true
	}
	sp.next = seq + 1
	sp.dirty = true
	sp.cAppended.Inc()
	sp.publishGauges()
	switch sp.cfg.Policy {
	case SyncAlways:
		return sp.syncLocked()
	case SyncInterval:
		if time.Since(sp.lastTry) >= sp.cfg.Interval {
			return sp.syncLocked()
		}
	}
	return nil
}

func (sp *Spool) syncLocked() error {
	if sp.f == nil || !sp.dirty {
		return nil
	}
	if err := sp.f.Sync(); err != nil {
		return err
	}
	sp.dirty = false
	sp.lastTry = time.Now()
	sp.cSyncs.Inc()
	return nil
}

// Sync forces an fsync of the current segment regardless of policy.
func (sp *Spool) Sync() error {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return sp.syncLocked()
}

// syncLoop bounds the SyncInterval loss window even when appends stop.
func (sp *Spool) syncLoop() {
	t := time.NewTicker(sp.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-sp.stop:
			return
		case <-t.C:
			sp.mu.Lock()
			if !sp.closed {
				_ = sp.syncLocked()
			}
			sp.mu.Unlock()
		}
	}
}

// rotateLocked closes the current segment (fsyncing it) and opens a new
// one whose name carries firstSeq. The directory entry is fsynced so
// the new file survives a crash.
func (sp *Spool) rotateLocked(firstSeq uint64) error {
	if sp.f != nil {
		if err := sp.syncLocked(); err != nil {
			return err
		}
		if err := sp.f.Close(); err != nil {
			return err
		}
		sp.f = nil
	}
	f, err := os.OpenFile(sp.path(firstSeq), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if err := syncDir(sp.cfg.Dir); err != nil {
		f.Close()
		return err
	}
	sp.f = f
	sp.size = 0
	return nil
}

// AlignTo prepares the spool to accept seq as its next append even when
// that leaves a gap — the supervisor calls it when a restored checkpoint
// is ahead of the spool (the skipped epochs are contained in the
// checkpoint, so the spooled prefix is useless history). All existing
// segments are removed.
func (sp *Spool) AlignTo(seq uint64) error {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if sp.closed {
		return ErrSpoolClosed
	}
	if sp.have && seq <= sp.next {
		return nil // contiguous (or behind): nothing to do
	}
	if sp.f != nil {
		sp.f.Close()
		sp.f = nil
		sp.size = 0
		sp.dirty = false
	}
	segs, err := sp.segments()
	if err != nil {
		return err
	}
	for _, s := range segs {
		if err := os.Remove(sp.path(s)); err != nil {
			return err
		}
	}
	sp.have = false
	sp.first = 0
	sp.next = seq
	sp.publishGauges()
	return nil
}

// TruncateBefore removes whole segments that contain only epochs below
// keep (typically the checkpoint cursor). The active segment is never
// removed. Returns the number of files removed.
func (sp *Spool) TruncateBefore(keep uint64) (int, error) {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if sp.closed {
		return 0, ErrSpoolClosed
	}
	segs, err := sp.segments()
	if err != nil {
		return 0, err
	}
	removed := 0
	for i := 0; i+1 < len(segs); i++ {
		if segs[i+1] <= keep {
			if err := os.Remove(sp.path(segs[i])); err != nil {
				return removed, err
			}
			removed++
		}
	}
	if removed > 0 && len(segs) > removed {
		if sp.first < segs[removed] {
			sp.first = segs[removed]
		}
	}
	sp.publishGauges()
	return removed, nil
}

// compactTmpSuffix marks a boundary segment mid-rewrite; recover()
// discards leftovers (the original is intact until the rename).
const compactTmpSuffix = ".tmp"

// Compact drops every spooled epoch below keep (typically the
// checkpoint cursor NextEpochSeq): segments wholly below it are
// removed — including the active one — and the boundary segment
// containing keep is rewritten in place without the dead prefix.
// Unlike TruncateBefore it reclaims disk as soon as the cursor moves,
// not only when a whole 16MB segment falls under it.
//
// Crash safety: whole-segment removals preserve contiguity at any
// prefix, and the boundary rewrite goes through write-tmp, fsync,
// rename, fsync-dir under the segment's existing name (which is why
// segment names are a lower bound, not the exact first seq). A crash
// at any point leaves either the old or the new content, never a gap;
// stale .tmp files are discarded on open. Safe with concurrent
// Append/AppendWire; must not run concurrently with Replay.
//
// Returns the bytes reclaimed.
func (sp *Spool) Compact(keep uint64) (int64, error) {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if sp.closed {
		return 0, ErrSpoolClosed
	}
	if !sp.have || keep <= sp.first {
		return 0, nil
	}
	if keep > sp.next {
		keep = sp.next
	}
	segs, err := sp.segments()
	if err != nil {
		return 0, err
	}
	// Content starts are read from the files themselves (the name is
	// only a floor); content end of segment i is the start of i+1, and
	// sp.next for the last.
	starts := make([]uint64, len(segs))
	for i, nameSeq := range segs {
		s, err := segmentFirstSeq(sp.path(nameSeq))
		if err != nil {
			return 0, err
		}
		starts[i] = s
	}
	var reclaimed int64
	worked := false
	for i, nameSeq := range segs {
		end := sp.next
		if i+1 < len(segs) {
			end = starts[i+1]
		}
		switch {
		case end <= keep:
			// Wholly dead: remove. The active segment is closed first so
			// the next append rotates to a fresh file.
			path := sp.path(nameSeq)
			st, err := os.Stat(path)
			if err != nil {
				return reclaimed, err
			}
			if i == len(segs)-1 && sp.f != nil {
				sp.f.Close()
				sp.f = nil
				sp.size = 0
				sp.dirty = false
			}
			if err := os.Remove(path); err != nil {
				return reclaimed, err
			}
			reclaimed += st.Size()
			worked = true
		case starts[i] < keep:
			// Boundary: rewrite in place without the dead prefix.
			active := i == len(segs)-1 && sp.f != nil
			if active {
				if err := sp.syncLocked(); err != nil {
					return reclaimed, err
				}
				sp.f.Close()
				sp.f = nil
			}
			newSize, oldSize, err := sp.rewriteSegment(nameSeq, keep)
			if err != nil {
				return reclaimed, err
			}
			reclaimed += oldSize - newSize
			worked = true
			if active {
				f, err := os.OpenFile(sp.path(nameSeq), os.O_WRONLY|os.O_APPEND, 0o644)
				if err != nil {
					return reclaimed, err
				}
				sp.f = f
				sp.size = newSize
			}
		}
	}
	if keep == sp.next {
		sp.have = false
		sp.first = 0
	} else if sp.first < keep {
		sp.first = keep
	}
	if worked {
		sp.cCompacts.Inc()
		sp.cReclaimed.Add(reclaimed)
	}
	if err := syncDir(sp.cfg.Dir); err != nil {
		return reclaimed, err
	}
	sp.publishGauges()
	return reclaimed, nil
}

// rewriteSegment streams the segment named nameSeq into a tmp file,
// keeping only frames with seq ≥ keep (stored bytes pass through
// unchanged, compressed frames included), then atomically replaces the
// original. Returns the new and old sizes.
func (sp *Spool) rewriteSegment(nameSeq, keep uint64) (newSize, oldSize int64, err error) {
	path := sp.path(nameSeq)
	st, err := os.Stat(path)
	if err != nil {
		return 0, 0, err
	}
	oldSize = st.Size()
	src, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer src.Close()
	tmpPath := path + compactTmpSuffix
	tmp, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, 0, err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			_ = os.Remove(tmpPath)
		}
	}()
	var frame []byte
	for {
		_, kind, flags, payload, rerr := ship.ReadFrameFlags(src)
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			return 0, 0, fmt.Errorf("recovery: compacting spool segment: %w", rerr)
		}
		if kind != ship.KindEpoch || len(payload) < 8 {
			return 0, 0, fmt.Errorf("%w: unexpected frame in spool during compaction", ship.ErrCorrupt)
		}
		if seq := binary.LittleEndian.Uint64(payload); seq < keep {
			continue
		}
		frame = ship.AppendFrameFlags(frame[:0], kind, flags, payload)
		n, werr := tmp.Write(frame)
		if werr != nil {
			return 0, 0, werr
		}
		newSize += int64(n)
	}
	if err = tmp.Sync(); err != nil {
		return 0, 0, err
	}
	if err = tmp.Close(); err != nil {
		return 0, 0, err
	}
	if err = os.Rename(tmpPath, path); err != nil {
		return 0, 0, err
	}
	return newSize, oldSize, nil
}

// segmentFirstSeq reads the seq of a segment's leading frame. An empty
// segment (possible after a recovery truncated it to zero) reports the
// maximum seq so callers treat it as containing nothing below any
// cursor.
func segmentFirstSeq(path string) (uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	_, kind, _, payload, err := ship.ReadFrameFlags(f)
	if err == io.EOF {
		return ^uint64(0), nil
	}
	if err != nil {
		return 0, err
	}
	if kind != ship.KindEpoch || len(payload) < 8 {
		return 0, fmt.Errorf("%w: unexpected frame at spool segment head", ship.ErrCorrupt)
	}
	return binary.LittleEndian.Uint64(payload), nil
}

// Replay streams every spooled epoch with seq ≥ from through fn, in
// order. It must not run concurrently with Append or Compact. fn's
// epoch (and its Buf) is freshly allocated per call and may be
// retained — spooled compressed frames are inflated here.
func (sp *Spool) Replay(from uint64, fn func(*epoch.Encoded) error) error {
	sp.mu.Lock()
	if sp.closed {
		sp.mu.Unlock()
		return ErrSpoolClosed
	}
	if err := sp.syncLocked(); err != nil {
		sp.mu.Unlock()
		return err
	}
	segs, err := sp.segments()
	sp.mu.Unlock()
	if err != nil {
		return err
	}
	// Start at the last segment whose first seq ≤ from.
	start := 0
	for i, s := range segs {
		if s <= from {
			start = i
		}
	}
	for _, firstSeq := range segs[start:] {
		if err := replaySegment(sp.path(firstSeq), from, fn); err != nil {
			return err
		}
	}
	return nil
}

func replaySegment(path string, from uint64, fn func(*epoch.Encoded) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	for {
		_, kind, flags, payload, err := ship.ReadFrameFlags(f)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if kind != ship.KindEpoch {
			return fmt.Errorf("%w: unexpected frame kind %d in spool", ship.ErrCorrupt, kind)
		}
		enc, err := ship.DecodeEpochFrame(flags, payload)
		if err != nil {
			return err
		}
		if enc.Seq < from {
			continue
		}
		if err := fn(enc); err != nil {
			return err
		}
	}
}

// Close fsyncs and closes the spool.
func (sp *Spool) Close() error {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if sp.closed {
		return nil
	}
	sp.closed = true
	close(sp.stop)
	if sp.f == nil {
		return nil
	}
	if err := sp.f.Sync(); err != nil {
		sp.f.Close()
		return err
	}
	err := sp.f.Close()
	sp.f = nil
	return err
}

func (sp *Spool) publishGauges() {
	sp.gEnd.Set(float64(sp.next))
	if segs, err := sp.segments(); err == nil {
		sp.gSegments.Set(float64(len(segs)))
	}
}

func (sp *Spool) path(firstSeq uint64) string {
	return filepath.Join(sp.cfg.Dir, fmt.Sprintf("%s%020d%s", spoolPrefix, firstSeq, spoolSuffix))
}

// segments returns the first seqs of all segment files, ascending.
func (sp *Spool) segments() ([]uint64, error) {
	ents, err := os.ReadDir(sp.cfg.Dir)
	if err != nil {
		return nil, err
	}
	var out []uint64
	for _, de := range ents {
		name := de.Name()
		if !strings.HasPrefix(name, spoolPrefix) || !strings.HasSuffix(name, spoolSuffix) {
			continue
		}
		n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, spoolPrefix), spoolSuffix), 10, 64)
		if err != nil {
			continue
		}
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// syncDir fsyncs a directory so renames and creates in it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
