package recovery

// snapshot.go is the supervisor side of wire-level snapshot catch-up
// and anti-entropy (ship.CapSnapshot). A supervised replica can have
// its whole state replaced by a snapshot streamed from upstream — the
// path a replica takes when its resume cursor predates the sender's
// retained history, or when a state-digest comparison caught silent
// divergence — and can itself serve snapshots to stale downstream
// peers when relaying.

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"aets/internal/htap"
	"aets/internal/ship"
)

// The supervisor restores and serves snapshots and verifies digests.
var (
	_ ship.SnapshotApplier = (*Supervisor)(nil)
	_ ship.DigestApplier   = (*Supervisor)(nil)
	_ ship.SnapshotSource  = (*Supervisor)(nil)
)

// RestoreSnapshot implements ship.SnapshotApplier: it replaces the
// replica's entire durable state with the snapshot. The stream is
// staged to a temp file and validated end to end (the checkpoint
// format's own CRC, via an actual node build) before anything durable
// changes; a torn or corrupt transfer therefore leaves the previous
// node running, the spool intact and the cursor unmoved — the sender
// simply restarts the transfer on its next connection. On success the
// snapshot is installed as a durable checkpoint, the spool realigns to
// the snapshot cursor, the node is swapped, and quarantined sequences
// the snapshot supersedes are healed (their transactions are in the
// snapshot, so the replica may leave Degraded).
func (s *Supervisor) RestoreSnapshot(cursor uint64, size int64, r io.Reader) error {
	// Stage and validate outside the lock: the copy can be large, and a
	// torn transfer must not stall Health/Stats or the watchdog. The
	// receiver serializes RestoreSnapshot against Feed, so no epoch
	// races the staging.
	tmp, err := os.CreateTemp(s.cfg.Spool.cfg.Dir, "snapshot-inbound-*.tmp")
	if err != nil {
		return err
	}
	defer tmp.Close()
	_ = os.Remove(tmp.Name()) // unlinked: a crash mid-stage leaks nothing
	if _, err := io.Copy(tmp, r); err != nil {
		return fmt.Errorf("recovery: snapshot stage: %w", err)
	}
	if _, err := tmp.Seek(0, io.SeekStart); err != nil {
		return err
	}
	node, meta, err := htap.RestoreNode(tmp, s.cfg.Kind, s.cfg.Plan, s.cfg.Node)
	if err != nil {
		return fmt.Errorf("recovery: snapshot validate: %w", err)
	}
	if got := meta.NextEpochSeq(); got != cursor {
		_ = node.Close()
		return fmt.Errorf("recovery: snapshot cursor %d, checkpoint resumes at %d", cursor, got)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	// An in-flight rebuild (watchdog probe mid-backoff) would stomp the
	// swapped node when it resumed; wait it out like recoverLocked does.
	for s.recovering {
		s.recoverCond.Wait()
	}
	if s.closed {
		_ = node.Close()
		return ErrSpoolClosed
	}
	// Durability first: once the checkpoint is installed, a crash at any
	// later point restores from it. Write streams from the staged file.
	if _, err := tmp.Seek(0, io.SeekStart); err != nil {
		_ = node.Close()
		return err
	}
	if _, err := s.cfg.Checkpoints.Write(func(w io.Writer) error {
		_, cerr := io.Copy(w, tmp)
		return cerr
	}); err != nil {
		_ = node.Close()
		return fmt.Errorf("recovery: snapshot install: %w", err)
	}
	// The spool's history below the snapshot is superseded; realign so
	// the next received epoch (cursor) is appendable.
	if err := s.cfg.Spool.AlignTo(cursor); err != nil {
		_ = node.Close()
		return err
	}
	if s.node != nil {
		_ = s.node.Close()
	}
	s.node = node
	s.sinceCkpt = 0
	s.lastCkpt = time.Now()
	// The installed snapshot is a retained checkpoint cut this lifetime;
	// track its cursor for the compaction window like any other cut.
	retain := s.cfg.Checkpoints.Retain()
	s.ckptCursors = append(s.ckptCursors, cursor)
	if len(s.ckptCursors) > retain {
		s.ckptCursors = s.ckptCursors[len(s.ckptCursors)-retain:]
	}
	s.failSeq, s.failCount = 0, 0
	s.forcePinpoint = false
	s.lastErr = nil
	s.needSnap = false
	s.clearQuarantineBelowLocked(cursor)
	if len(s.quarantined) == 0 {
		s.setState(StateRunning)
	} else {
		s.setState(StateDegraded)
	}
	s.snapRestores.Add(1)
	return nil
}

// clearQuarantineBelowLocked heals quarantined sequences a restored
// snapshot supersedes: their transactions are contained in the
// snapshot, so the sidecars (and the degradation they caused) are
// obsolete.
func (s *Supervisor) clearQuarantineBelowLocked(cursor uint64) {
	for seq := range s.quarantined {
		if seq >= cursor {
			continue
		}
		delete(s.quarantined, seq)
		_ = os.Remove(filepath.Join(s.cfg.Spool.cfg.Dir,
			fmt.Sprintf("%s%020d.epoch", quarantinePrefix, seq)))
	}
	s.nQuarant.Store(int64(len(s.quarantined)))
}

// VerifyDigest implements ship.DigestApplier: it compares the sender's
// committed-state digest against the local node's at the same cursor.
// A mismatch — silent divergence or at-rest corruption that slipped
// past every CRC, or a quarantine hole this replica is carrying —
// flags the replica for snapshot repair (the next handshake's WELCOME
// requests it) and reports ship.ErrDigestMismatch.
func (s *Supervisor) VerifyDigest(seq uint64, _ int64, digest uint64) error {
	s.mu.Lock()
	node := s.node
	s.mu.Unlock()
	if node == nil || node.NextSeq() != seq {
		// Not comparable at this instant; the next aligned digest still
		// guards the stream.
		return nil
	}
	local := node.StateDigest()
	if local == digest {
		return nil
	}
	s.mu.Lock()
	s.needSnap = true
	s.mu.Unlock()
	s.digestMismatches.Add(1)
	return fmt.Errorf("%w: local %016x, sender %016x at cursor %d",
		ship.ErrDigestMismatch, local, digest, seq)
}

// NeedSnapshot reports whether a digest mismatch awaits snapshot
// repair. Wire it to ship.ReceiverConfig.NeedSnapshot so the repair
// request survives receiver (and process) lifetimes until a snapshot
// actually lands.
func (s *Supervisor) NeedSnapshot() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.needSnap
}

// Snapshot implements ship.SnapshotSource for supervised relays: a
// downstream peer too stale to serve from the spool gets a fresh
// checkpoint cut from the live node. Cutting fresh (rather than
// shipping the newest retained checkpoint file) is what upholds the
// source contract — the snapshot covers every epoch this supervisor
// has applied, so the relay sender may retire its whole pending window
// at the returned cursor.
func (s *Supervisor) Snapshot() (uint64, int64, io.ReadCloser, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, 0, nil, ErrSpoolClosed
	}
	if s.node == nil {
		return 0, 0, nil, errors.New("recovery: no live node to snapshot")
	}
	f, err := os.CreateTemp(s.cfg.Spool.cfg.Dir, "snapshot-outbound-*.tmp")
	if err != nil {
		return 0, 0, nil, err
	}
	_ = os.Remove(f.Name())
	meta, err := s.node.Checkpoint(f)
	if err != nil {
		f.Close()
		return 0, 0, nil, err
	}
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return 0, 0, nil, err
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		f.Close()
		return 0, 0, nil, err
	}
	return meta.NextEpochSeq(), size, f, nil
}

// parseQuarantineSeq extracts the sequence from a quarantine sidecar
// filename, or false if the name is not one.
func parseQuarantineSeq(name string) (uint64, bool) {
	if !strings.HasPrefix(name, quarantinePrefix) || !strings.HasSuffix(name, ".epoch") {
		return 0, false
	}
	seq, err := strconv.ParseUint(
		strings.TrimSuffix(strings.TrimPrefix(name, quarantinePrefix), ".epoch"), 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}
