package recovery

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"aets/internal/metrics"
)

const (
	ckptPrefix = "ckpt-"
	ckptSuffix = ".aets"
	tmpSuffix  = ".tmp"
	// DefaultRetain is how many checkpoints the manager keeps. More than
	// one, so a checkpoint corrupted at rest still leaves a fallback.
	DefaultRetain = 3
)

// Manager owns a directory of checkpoints with crash-safe writes:
// content goes to a *.tmp file which is fsynced, renamed into place and
// made durable with a directory fsync — a crash mid-write leaves the
// previous checkpoint set untouched. Checkpoints are named by a
// monotonically increasing generation; the manager retains the newest
// K and deletes the rest.
type Manager struct {
	dir    string
	retain int

	mu  sync.Mutex
	gen uint64 // last generation used

	cWritten *metrics.Counter
	cPruned  *metrics.Counter
}

// OpenManager opens (or creates) the checkpoint directory. retain ≤ 0
// uses DefaultRetain. Stale *.tmp files from a crashed writer are
// removed.
func OpenManager(dir string, retain int, reg *metrics.Registry) (*Manager, error) {
	if dir == "" {
		return nil, fmt.Errorf("recovery: checkpoint dir is required")
	}
	if retain <= 0 {
		retain = DefaultRetain
	}
	if reg == nil {
		reg = metrics.Default
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	m := &Manager{
		dir:      dir,
		retain:   retain,
		cWritten: reg.Counter("recovery_ckpt_written_total"),
		cPruned:  reg.Counter("recovery_ckpt_pruned_total"),
	}
	gens, err := m.generations()
	if err != nil {
		return nil, err
	}
	if len(gens) > 0 {
		m.gen = gens[len(gens)-1]
	}
	// A *.tmp is a checkpoint that never made it: remove, never restore.
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, de := range ents {
		if strings.HasSuffix(de.Name(), tmpSuffix) {
			_ = os.Remove(filepath.Join(dir, de.Name()))
		}
	}
	return m, nil
}

// Write cuts one checkpoint: cut streams the content (a
// checkpoint.Write call, typically via htap.Node.Checkpoint), and Write
// makes it durable atomically, then prunes beyond the retention count.
// The final path is returned.
func (m *Manager) Write(cut func(w io.Writer) error) (string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	gen := m.gen + 1
	final := m.path(gen)
	tmp := final + tmpSuffix
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return "", err
	}
	if err := cut(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return "", err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return "", err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return "", err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return "", err
	}
	if err := syncDir(m.dir); err != nil {
		return "", err
	}
	m.gen = gen
	m.cWritten.Inc()
	if err := m.pruneLocked(); err != nil {
		return final, err
	}
	return final, nil
}

// Retain returns how many checkpoints the manager keeps.
func (m *Manager) Retain() int { return m.retain }

// List returns the retained checkpoint paths, newest first.
func (m *Manager) List() ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	gens, err := m.generations()
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(gens))
	for i := len(gens) - 1; i >= 0; i-- {
		out = append(out, m.path(gens[i]))
	}
	return out, nil
}

// Newest returns the newest checkpoint path, or "" when none exists.
func (m *Manager) Newest() (string, error) {
	paths, err := m.List()
	if err != nil || len(paths) == 0 {
		return "", err
	}
	return paths[0], nil
}

func (m *Manager) pruneLocked() error {
	gens, err := m.generations()
	if err != nil {
		return err
	}
	for len(gens) > m.retain {
		if err := os.Remove(m.path(gens[0])); err != nil {
			return err
		}
		m.cPruned.Inc()
		gens = gens[1:]
	}
	return nil
}

func (m *Manager) path(gen uint64) string {
	return filepath.Join(m.dir, fmt.Sprintf("%s%016d%s", ckptPrefix, gen, ckptSuffix))
}

// generations returns the stored checkpoint generations, ascending.
func (m *Manager) generations() ([]uint64, error) {
	ents, err := os.ReadDir(m.dir)
	if err != nil {
		return nil, err
	}
	var out []uint64
	for _, de := range ents {
		name := de.Name()
		if !strings.HasPrefix(name, ckptPrefix) || !strings.HasSuffix(name, ckptSuffix) {
			continue
		}
		n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, ckptPrefix), ckptSuffix), 10, 64)
		if err != nil {
			continue
		}
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}
