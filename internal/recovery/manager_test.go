package recovery

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"aets/internal/metrics"
)

func writeN(tb testing.TB, m *Manager, content string) string {
	tb.Helper()
	path, err := m.Write(func(w io.Writer) error {
		_, err := io.WriteString(w, content)
		return err
	})
	if err != nil {
		tb.Fatal(err)
	}
	return path
}

func TestManagerRetainsNewestK(t *testing.T) {
	dir := t.TempDir()
	reg := metrics.NewRegistry()
	m, err := OpenManager(dir, 3, reg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		writeN(t, m, strings.Repeat("x", i+1))
	}
	paths, err := m.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 3 {
		t.Fatalf("%d checkpoints retained, want 3", len(paths))
	}
	// Newest first: generation 5 has the longest content.
	data, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 5 {
		t.Fatalf("newest checkpoint has %d bytes, want 5", len(data))
	}
	if v := reg.Counter("recovery_ckpt_pruned_total").Load(); v != 2 {
		t.Fatalf("pruned counter %d, want 2", v)
	}

	// Reopen: generations continue past the retained set.
	m2, err := OpenManager(dir, 3, metrics.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	p := writeN(t, m2, "later")
	newest, err := m2.Newest()
	if err != nil || newest != p {
		t.Fatalf("newest %q err %v, want %q", newest, err, p)
	}
}

func TestManagerFailedCutLeavesNothing(t *testing.T) {
	dir := t.TempDir()
	m, err := OpenManager(dir, 0, metrics.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	writeN(t, m, "good")
	boom := errors.New("boom")
	if _, err := m.Write(func(w io.Writer) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("Write error %v, want boom", err)
	}
	paths, err := m.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 {
		t.Fatalf("%d checkpoints after failed cut, want 1", len(paths))
	}
	ents, _ := filepath.Glob(filepath.Join(dir, "*"+tmpSuffix))
	if len(ents) != 0 {
		t.Fatalf("stale tmp files after failed cut: %v", ents)
	}
}

func TestManagerRemovesStaleTmpOnOpen(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, ckptPrefix+"0000000000000009"+ckptSuffix+tmpSuffix)
	if err := os.WriteFile(stale, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenManager(dir, 0, metrics.NewRegistry()); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale tmp survived open: %v", err)
	}
}
