package recovery

import (
	"bytes"
	"compress/flate"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"aets/internal/epoch"
	"aets/internal/metrics"
	"aets/internal/ship"
)

// assertReplayFrom replays the spool from `from` and asserts it yields
// exactly encs[from:], byte-identical.
func assertReplayFrom(t *testing.T, sp *Spool, encs []epoch.Encoded, from uint64) {
	t.Helper()
	got := collect(t, sp, from)
	want := encs[from:]
	if len(got) != len(want) {
		t.Fatalf("replay from %d: %d epochs, want %d", from, len(got), len(want))
	}
	for i, enc := range got {
		if enc.Seq != want[i].Seq || !bytes.Equal(enc.Buf, want[i].Buf) {
			t.Fatalf("replay from %d: epoch %d (seq %d) did not round-trip", from, i, enc.Seq)
		}
	}
}

// TestSpoolCompactMidSegment compacts to a cursor inside a segment: the
// dead prefix is dropped, bytes are reclaimed, the rewritten boundary
// segment keeps its (now lower-bound) name, and a reopen recovers the
// exact surviving range.
func TestSpoolCompactMidSegment(t *testing.T) {
	dir := t.TempDir()
	reg := metrics.NewRegistry()
	encs := testEncs(t, 12)
	// 3 segments of ~4 epochs each.
	segBytes := 0
	for i := 0; i < 4; i++ {
		segBytes += len(ship.AppendFrame(nil, ship.KindEpoch, ship.EncodeEpoch(&encs[i])))
	}
	sp := openTestSpool(t, dir, SpoolConfig{MaxSegmentBytes: segBytes, Policy: SyncAlways, Metrics: reg})
	appendAll(t, sp, encs)

	reclaimed, err := sp.Compact(6) // inside the middle segment
	if err != nil {
		t.Fatal(err)
	}
	if reclaimed <= 0 {
		t.Fatalf("reclaimed %d bytes, want > 0", reclaimed)
	}
	if first, next, ok := sp.Range(); !ok || first != 6 || next != 12 {
		t.Fatalf("range [%d,%d) ok=%v, want [6,12)", first, next, ok)
	}
	assertReplayFrom(t, sp, encs, 6)
	if v := reg.Counter("recovery_spool_compactions_total").Load(); v != 1 {
		t.Fatalf("compactions counter %d, want 1", v)
	}
	if v := reg.Counter("recovery_spool_compact_reclaimed_bytes_total").Load(); v != reclaimed {
		t.Fatalf("reclaimed counter %d, want %d", v, reclaimed)
	}
	// The spool must keep accepting appends after compaction.
	extra := encs[11]
	extra.Seq = 12
	if err := sp.Append(&extra); err != nil {
		t.Fatalf("append after compact: %v", err)
	}
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: the boundary segment's name is now a lower bound on its
	// content; recovery must accept that and report the true range.
	sp = openTestSpool(t, dir, SpoolConfig{})
	defer sp.Close()
	if first, next, ok := sp.Range(); !ok || first != 6 || next != 13 {
		t.Fatalf("reopened range [%d,%d) ok=%v, want [6,13)", first, next, ok)
	}
}

// TestSpoolCompactFullDrop compacts to End: every segment (including
// the active one) is removed, and the stream continues seamlessly at
// the preserved cursor.
func TestSpoolCompactFullDrop(t *testing.T) {
	dir := t.TempDir()
	sp := openTestSpool(t, dir, SpoolConfig{Policy: SyncAlways})
	defer sp.Close()
	encs := testEncs(t, 8)
	appendAll(t, sp, encs[:6])

	reclaimed, err := sp.Compact(6)
	if err != nil {
		t.Fatal(err)
	}
	if reclaimed <= 0 {
		t.Fatalf("reclaimed %d bytes, want > 0", reclaimed)
	}
	if segs, _ := sp.segments(); len(segs) != 0 {
		t.Fatalf("%d segments survived a full drop", len(segs))
	}
	if _, _, ok := sp.Range(); ok {
		t.Fatal("spool claims a replayable range after dropping everything")
	}
	// The cursor carries in memory: seq 6 extends, seq 5 is a stale
	// duplicate, seq 9 is a gap.
	if err := sp.Append(&encs[5]); err != nil {
		t.Fatalf("stale duplicate after full drop: %v", err)
	}
	if err := sp.Append(&encs[6]); err != nil {
		t.Fatalf("append after full drop: %v", err)
	}
	assertReplayFrom(t, sp, encs[:7], 6)
}

// TestSpoolCompactTornTailAfterCompact tears the final frame after a
// compaction: recovery must keep the compacted segment's valid prefix —
// proving the rewritten file is a self-consistent frame stream.
func TestSpoolCompactTornTailAfterCompact(t *testing.T) {
	dir := t.TempDir()
	encs := testEncs(t, 6)
	sp := openTestSpool(t, dir, SpoolConfig{Policy: SyncAlways})
	appendAll(t, sp, encs)
	if _, err := sp.Compact(3); err != nil {
		t.Fatal(err)
	}
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}

	seg := lastSegment(t, dir)
	img, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, img[:len(img)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	sp = openTestSpool(t, dir, SpoolConfig{})
	defer sp.Close()
	if first, next, ok := sp.Range(); !ok || first != 3 || next != 5 {
		t.Fatalf("range [%d,%d) ok=%v, want [3,5)", first, next, ok)
	}
	assertReplayFrom(t, sp, encs[:5], 3)
}

// TestSpoolCompactStaleTmpDiscarded plants a leftover .tmp from a
// compaction that died before its rename: open must discard it and
// recover from the intact original.
func TestSpoolCompactStaleTmpDiscarded(t *testing.T) {
	dir := t.TempDir()
	encs := testEncs(t, 4)
	sp := openTestSpool(t, dir, SpoolConfig{Policy: SyncAlways})
	appendAll(t, sp, encs)
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}
	tmp := lastSegment(t, dir) + compactTmpSuffix
	if err := os.WriteFile(tmp, []byte("half-written garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	sp = openTestSpool(t, dir, SpoolConfig{})
	defer sp.Close()
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("stale compaction tmp survived open (stat err %v)", err)
	}
	assertReplayFrom(t, sp, encs, 0)
}

// TestSpoolCompactAppendRace hammers Compact while appends stream in
// (run under -race): the spool must stay consistent and end with the
// full surviving suffix replayable.
func TestSpoolCompactAppendRace(t *testing.T) {
	dir := t.TempDir()
	encs := testEncs(t, 64)
	segBytes := 4 * len(ship.AppendFrame(nil, ship.KindEpoch, ship.EncodeEpoch(&encs[0])))
	sp := openTestSpool(t, dir, SpoolConfig{MaxSegmentBytes: segBytes, Policy: SyncNever})
	defer sp.Close()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_, next, ok := sp.Range()
			if !ok || next < 8 {
				continue
			}
			if _, err := sp.Compact(next - 4); err != nil {
				t.Errorf("compact: %v", err)
				return
			}
		}
	}()
	appendAll(t, sp, encs)
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}

	// Quiesced: one final compact to a known cursor, then verify.
	keep := uint64(len(encs) - 4)
	if _, err := sp.Compact(keep); err != nil {
		t.Fatal(err)
	}
	first, next, ok := sp.Range()
	if !ok || next != uint64(len(encs)) || first < keep {
		t.Fatalf("range [%d,%d) ok=%v after racing compacts, want [≥%d,%d)", first, next, ok, keep, len(encs))
	}
	assertReplayFrom(t, sp, encs, first)
}

// TestSpoolAppendWireCompressed spools a compressed v2 frame exactly as
// received and replays it: the epoch comes back inflated and
// byte-identical, across a restart too.
func TestSpoolAppendWireCompressed(t *testing.T) {
	dir := t.TempDir()
	encs := testEncs(t, 4)
	sp := openTestSpool(t, dir, SpoolConfig{Policy: SyncAlways})
	appendAll(t, sp, encs[:2])

	// Hand-build the compressed EPOCH payload: the 36-byte header stays
	// clear (bufLen = raw length), the buf bytes become a flate stream.
	for i := 2; i < 4; i++ {
		raw := ship.EncodeEpoch(&encs[i])
		var cb bytes.Buffer
		fw, err := flate.NewWriter(&cb, flate.BestSpeed)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fw.Write(encs[i].Buf); err != nil {
			t.Fatal(err)
		}
		if err := fw.Close(); err != nil {
			t.Fatal(err)
		}
		payload := append(raw[:36:36], cb.Bytes()...)
		if err := sp.AppendWire(encs[i].Seq, ship.FlagCompressed, payload); err != nil {
			t.Fatalf("AppendWire %d: %v", i, err)
		}
	}
	assertReplayFrom(t, sp, encs, 0)
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: recovery scans (and validates) the mixed raw/compressed
	// segment, and replay still inflates correctly.
	sp = openTestSpool(t, dir, SpoolConfig{})
	defer sp.Close()
	if first, next, ok := sp.Range(); !ok || first != 0 || next != 4 {
		t.Fatalf("reopened range [%d,%d) ok=%v, want [0,4)", first, next, ok)
	}
	assertReplayFrom(t, sp, encs, 0)

	// Compaction must carry compressed frames through untouched.
	if _, err := sp.Compact(3); err != nil {
		t.Fatal(err)
	}
	assertReplayFrom(t, sp, encs, 3)
}

// TestSpoolCompactBelowFirstIsNoop: a cursor at or below the oldest
// spooled epoch must not touch any file.
func TestSpoolCompactBelowFirstIsNoop(t *testing.T) {
	dir := t.TempDir()
	reg := metrics.NewRegistry()
	sp := openTestSpool(t, dir, SpoolConfig{Policy: SyncAlways, Metrics: reg})
	defer sp.Close()
	encs := testEncs(t, 4)
	appendAll(t, sp, encs)
	if _, err := sp.Compact(5); err != nil { // beyond End clamps to End
		t.Fatal(err)
	}
	if err := sp.Append(&encs[3]); err != nil { // idempotent duplicate still fine
		t.Fatal(err)
	}
	reclaimed, err := sp.Compact(0)
	if err != nil {
		t.Fatal(err)
	}
	if reclaimed != 0 {
		t.Fatalf("compact below first reclaimed %d bytes", reclaimed)
	}
}

// TestSpoolCompactKeepsLowerBoundInvariant: after two compactions the
// directory must never contain a segment whose leading frame is below
// its file-name seq (the invariant recovery validates).
func TestSpoolCompactKeepsLowerBoundInvariant(t *testing.T) {
	dir := t.TempDir()
	encs := testEncs(t, 10)
	segBytes := 3 * len(ship.AppendFrame(nil, ship.KindEpoch, ship.EncodeEpoch(&encs[0])))
	sp := openTestSpool(t, dir, SpoolConfig{MaxSegmentBytes: segBytes, Policy: SyncAlways})
	defer sp.Close()
	appendAll(t, sp, encs)
	for _, keep := range []uint64{2, 7} {
		if _, err := sp.Compact(keep); err != nil {
			t.Fatal(err)
		}
		segs, err := sp.segments()
		if err != nil {
			t.Fatal(err)
		}
		for _, nameSeq := range segs {
			firstSeq, err := segmentFirstSeq(filepath.Join(dir, fmt.Sprintf("%s%020d%s", spoolPrefix, nameSeq, spoolSuffix)))
			if err != nil {
				t.Fatal(err)
			}
			if firstSeq < nameSeq {
				t.Fatalf("keep %d: segment %d holds seq %d below its name", keep, nameSeq, firstSeq)
			}
		}
		assertReplayFrom(t, sp, encs, keep)
	}
}
