package recovery

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"aets/internal/epoch"
	"aets/internal/grouping"
	"aets/internal/htap"
	"aets/internal/memtable"
	"aets/internal/metrics"
	"aets/internal/primary"
	"aets/internal/reference"
	"aets/internal/wal"
	"aets/internal/workload"
)

const supWarehouses = 2

func supPlan() *grouping.Plan {
	gen := workload.NewTPCC(supWarehouses)
	return grouping.Build(htap.TPCCRates(1000), workload.TableIDs(gen.Tables()),
		grouping.Options{Eps: 0.05, MinPts: 2})
}

func supTables() []wal.TableID {
	return workload.TableIDs(workload.NewTPCC(supWarehouses).Tables())
}

// supStream generates the test workload: the raw transactions (for the
// serial reference) and their encoded epochs.
func supStream(tb testing.TB, txnCount, epochSize int) ([]wal.Txn, []epoch.Encoded) {
	tb.Helper()
	p := primary.New(workload.NewTPCC(supWarehouses), 11)
	txns := p.GenerateTxns(txnCount)
	return txns, epoch.EncodeAll(epoch.MustSplit(txns, epochSize))
}

// supEnv is one supervisor instance over a spool and checkpoint dir.
type supEnv struct {
	spool *Spool
	mgr   *Manager
	sup   *Supervisor
}

func openSup(tb testing.TB, spoolDir, ckptDir string, mutate func(*Config)) *supEnv {
	tb.Helper()
	reg := metrics.NewRegistry()
	spool, err := OpenSpool(SpoolConfig{Dir: spoolDir, Metrics: reg})
	if err != nil {
		tb.Fatal(err)
	}
	mgr, err := OpenManager(ckptDir, 0, reg)
	if err != nil {
		tb.Fatal(err)
	}
	cfg := Config{
		Kind:          htap.KindAETS,
		Plan:          supPlan(),
		Node:          htap.Options{Workers: 2, Metrics: reg},
		Spool:         spool,
		Checkpoints:   mgr,
		RetryBase:     time.Millisecond,
		RetryMax:      5 * time.Millisecond,
		ProbeInterval: -1, // tests drive Probe explicitly
		Metrics:       reg,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	sup, err := NewSupervisor(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	if err := sup.Start(); err != nil {
		tb.Fatal(err)
	}
	return &supEnv{spool: spool, mgr: mgr, sup: sup}
}

func (e *supEnv) close(tb testing.TB) {
	tb.Helper()
	if err := e.sup.Close(); err != nil {
		tb.Fatal(err)
	}
	if err := e.spool.Close(); err != nil {
		tb.Fatal(err)
	}
}

func (e *supEnv) assertReference(tb testing.TB, txns []wal.Txn) {
	tb.Helper()
	want := memtable.New()
	reference.Apply(want, txns)
	node := e.sup.Node()
	if node == nil {
		tb.Fatal("no live node")
	}
	node.Drain()
	if err := reference.Equal(want, node.Memtable(), supTables()); err != nil {
		tb.Fatalf("state diverged from reference: %v", err)
	}
}

// TestSupervisorRestoreAcrossRestart feeds half the stream, checkpoints,
// feeds the rest, stops without a final checkpoint, and restarts: the
// node must come back via checkpoint + spool tail, reference-equal, and
// report the right resume cursor.
func TestSupervisorRestoreAcrossRestart(t *testing.T) {
	spoolDir, ckptDir := t.TempDir(), t.TempDir()
	txns, encs := supStream(t, 1200, 100)
	half := len(encs) / 2

	env := openSup(t, spoolDir, ckptDir, nil)
	for i := range encs[:half] {
		if err := env.sup.Feed(&encs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := env.sup.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := half; i < len(encs); i++ {
		if err := env.sup.Feed(&encs[i]); err != nil {
			t.Fatal(err)
		}
	}
	env.close(t) // no final checkpoint: the tail lives only in the spool

	env = openSup(t, spoolDir, ckptDir, nil)
	defer env.close(t)
	if got := env.sup.NextSeq(); got != uint64(len(encs)) {
		t.Fatalf("resume cursor %d, want %d", got, len(encs))
	}
	if st := env.sup.State(); st != StateRunning {
		t.Fatalf("state %s after restart, want running", st)
	}
	env.assertReference(t, txns)
}

// TestSupervisorQuarantinesPoisonEpoch injects an epoch whose payload
// cannot be decoded. The supervisor must attribute the failure, write
// the sidecar, mark the node degraded — and keep serving the rest of
// the stream instead of crash-looping.
func TestSupervisorQuarantinesPoisonEpoch(t *testing.T) {
	spoolDir, ckptDir := t.TempDir(), t.TempDir()
	txns, encs := supStream(t, 600, 100)
	k := len(encs) / 2

	env := openSup(t, spoolDir, ckptDir, nil)
	defer env.close(t)
	for i := range encs[:k] {
		if err := env.sup.Feed(&encs[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Counts stay within the wire-level bounds (≤ len(Buf)) so the frame
	// survives transport and spool validation; the garbage buf fails only
	// when the node decodes its WAL entries.
	poison := &epoch.Encoded{
		Seq:          uint64(k),
		TxnCount:     3,
		EntryCount:   7,
		Buf:          []byte{0xde, 0xad, 0xbe, 0xef, 0x00, 0x13, 0x37},
		LastCommitTS: encs[k-1].LastCommitTS,
	}
	if err := env.sup.Feed(poison); err != nil {
		t.Fatal(err)
	}

	// The decode failure surfaces asynchronously; the watchdog is off, so
	// probe until the supervisor has dealt with it.
	deadline := time.Now().Add(30 * time.Second)
	for env.sup.State() != StateDegraded {
		if time.Now().After(deadline) {
			t.Fatalf("state %s, never degraded (stats %+v)", env.sup.State(), env.sup.Stats())
		}
		_ = env.sup.Probe()
		time.Sleep(time.Millisecond)
	}

	st := env.sup.Stats()
	if st.Quarantined != 1 {
		t.Fatalf("quarantined %d epochs, want 1", st.Quarantined)
	}
	if seqs := env.sup.QuarantinedSeqs(); len(seqs) != 1 || seqs[0] != uint64(k) {
		t.Fatalf("quarantined seqs %v, want [%d]", seqs, k)
	}
	sidecars, _ := filepath.Glob(filepath.Join(spoolDir, quarantinePrefix+"*"))
	if len(sidecars) != 1 {
		t.Fatalf("%d sidecar files, want 1", len(sidecars))
	}

	// The rest of the stream continues past the hole (re-sequenced by one).
	for i := k; i < len(encs); i++ {
		shifted := encs[i]
		shifted.Seq++
		if err := env.sup.Feed(&shifted); err != nil {
			t.Fatalf("feed after quarantine: %v", err)
		}
	}
	if err := env.sup.Probe(); err != nil {
		t.Fatal(err)
	}
	if st := env.sup.State(); st != StateDegraded {
		t.Fatalf("state %s after continuing, want degraded", st)
	}
	env.assertReference(t, txns)

	h := env.sup.Health()
	if !h.Healthy || !h.Degraded || h.Supervisor != "degraded" || h.Quarantined != 1 {
		t.Fatalf("health %+v: degraded replica must stay healthy=true with degraded=true", h)
	}

	// A restart must remember the quarantine from the sidecar instead of
	// paying the failure budget again.
	env.close(t)
	env = openSup(t, spoolDir, ckptDir, nil)
	defer env.close(t)
	if st := env.sup.State(); st != StateDegraded {
		t.Fatalf("state %s after restart, want degraded (sidecar forgotten?)", st)
	}
	env.assertReference(t, txns)
}

// TestSupervisorFallsBackAcrossCorruptCheckpoint corrupts the newest
// checkpoint at rest: restore must fall back to the older one and
// rebuild the difference from the spool.
func TestSupervisorFallsBackAcrossCorruptCheckpoint(t *testing.T) {
	spoolDir, ckptDir := t.TempDir(), t.TempDir()
	txns, encs := supStream(t, 900, 100)

	env := openSup(t, spoolDir, ckptDir, nil)
	third := len(encs) / 3
	for i := range encs[:third] {
		if err := env.sup.Feed(&encs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := env.sup.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := third; i < 2*third; i++ {
		if err := env.sup.Feed(&encs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := env.sup.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 2 * third; i < len(encs); i++ {
		if err := env.sup.Feed(&encs[i]); err != nil {
			t.Fatal(err)
		}
	}
	env.close(t)

	newest, err := env.mgr.Newest()
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	for i := len(data) / 2; i < len(data)/2+8 && i < len(data); i++ {
		data[i] ^= 0xff
	}
	if err := os.WriteFile(newest, data, 0o644); err != nil {
		t.Fatal(err)
	}

	env = openSup(t, spoolDir, ckptDir, nil)
	defer env.close(t)
	if st := env.sup.Stats(); st.Fallbacks < 1 {
		t.Fatalf("fallbacks %d, want ≥ 1 (corrupt checkpoint silently used?)", st.Fallbacks)
	}
	if st := env.sup.State(); st != StateRunning {
		t.Fatalf("state %s, want running", st)
	}
	env.assertReference(t, txns)
}

// TestSupervisorCheckpointCompactsSpool cuts more checkpoints than the
// retention count: once a full retention window of cursors is known,
// the scheduler compacts the spool up to the OLDEST retained cursor —
// reclaiming disk without waiting for whole segments to age out, while
// keeping exactly the range a fallback across corrupt checkpoints
// could still need. A restart must then replay from the compacted
// spool and stay reference-equal.
func TestSupervisorCheckpointCompactsSpool(t *testing.T) {
	spoolDir, ckptDir := t.TempDir(), t.TempDir()
	txns, encs := supStream(t, 1500, 100)
	retain := 0
	var cursors []uint64

	env := openSup(t, spoolDir, ckptDir, nil)
	retain = env.mgr.Retain()
	rounds := retain + 2 // strictly more checkpoints than retained
	per := len(encs) / rounds
	for r := 0; r < rounds; r++ {
		for i := r * per; i < (r+1)*per; i++ {
			if err := env.sup.Feed(&encs[i]); err != nil {
				t.Fatal(err)
			}
		}
		if err := env.sup.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		cursors = append(cursors, env.sup.NextSeq())
	}
	// The spool floor must sit at the oldest RETAINED checkpoint's
	// cursor: compacting further would strand the fallback checkpoints,
	// compacting less would leak disk.
	wantFirst := cursors[len(cursors)-retain]
	first, next, ok := env.spool.Range()
	if !ok || first != wantFirst || next != uint64(rounds*per) {
		t.Fatalf("spool range [%d,%d) ok=%v, want [%d,%d)", first, next, ok, wantFirst, rounds*per)
	}
	// Feed the remaining tail (not checkpointed) and restart: restore is
	// newest checkpoint + compacted spool tail.
	for i := rounds * per; i < len(encs); i++ {
		if err := env.sup.Feed(&encs[i]); err != nil {
			t.Fatal(err)
		}
	}
	env.close(t)

	env = openSup(t, spoolDir, ckptDir, nil)
	defer env.close(t)
	if got := env.sup.NextSeq(); got != uint64(len(encs)) {
		t.Fatalf("resume cursor %d, want %d", got, len(encs))
	}
	env.assertReference(t, txns)
}
