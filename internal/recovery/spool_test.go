package recovery

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"aets/internal/epoch"
	"aets/internal/metrics"
	"aets/internal/primary"
	"aets/internal/ship"
	"aets/internal/workload"
)

func testEncs(tb testing.TB, n int) []epoch.Encoded {
	tb.Helper()
	p := primary.New(workload.NewTPCC(1), 7)
	return p.GenerateEncoded(n*8, 8) // n epochs of 8 txns
}

func openTestSpool(tb testing.TB, dir string, cfg SpoolConfig) *Spool {
	tb.Helper()
	cfg.Dir = dir
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	sp, err := OpenSpool(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return sp
}

func appendAll(tb testing.TB, sp *Spool, encs []epoch.Encoded) {
	tb.Helper()
	for i := range encs {
		if err := sp.Append(&encs[i]); err != nil {
			tb.Fatalf("append %d: %v", i, err)
		}
	}
}

func collect(tb testing.TB, sp *Spool, from uint64) []*epoch.Encoded {
	tb.Helper()
	var out []*epoch.Encoded
	if err := sp.Replay(from, func(enc *epoch.Encoded) error {
		out = append(out, enc)
		return nil
	}); err != nil {
		tb.Fatal(err)
	}
	return out
}

func TestSpoolRoundTrip(t *testing.T) {
	dir := t.TempDir()
	encs := testEncs(t, 10)
	sp := openTestSpool(t, dir, SpoolConfig{Policy: SyncAlways})
	appendAll(t, sp, encs)
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}

	sp = openTestSpool(t, dir, SpoolConfig{})
	defer sp.Close()
	first, next, ok := sp.Range()
	if !ok || first != 0 || next != uint64(len(encs)) {
		t.Fatalf("range [%d,%d) ok=%v, want [0,%d)", first, next, ok, len(encs))
	}
	got := collect(t, sp, 0)
	if len(got) != len(encs) {
		t.Fatalf("replayed %d epochs, want %d", len(got), len(encs))
	}
	for i, enc := range got {
		if enc.Seq != encs[i].Seq || !bytes.Equal(enc.Buf, encs[i].Buf) ||
			enc.TxnCount != encs[i].TxnCount || enc.LastCommitTS != encs[i].LastCommitTS {
			t.Fatalf("epoch %d did not round-trip", i)
		}
	}
}

func TestSpoolDuplicateAndGap(t *testing.T) {
	sp := openTestSpool(t, t.TempDir(), SpoolConfig{})
	defer sp.Close()
	encs := testEncs(t, 3)
	appendAll(t, sp, encs[:2])
	if err := sp.Append(&encs[0]); err != nil {
		t.Fatalf("duplicate append should be dropped, got %v", err)
	}
	if got := sp.End(); got != 2 {
		t.Fatalf("duplicate advanced the cursor: end %d, want 2", got)
	}
	if err := sp.Append(&encs[2]); err != nil {
		t.Fatal(err)
	}
	gap := encs[2]
	gap.Seq = 7
	if err := sp.Append(&gap); !errors.Is(err, ErrSpoolGap) {
		t.Fatalf("gap append: got %v, want ErrSpoolGap", err)
	}
}

func TestSpoolRotationAndTruncateBefore(t *testing.T) {
	dir := t.TempDir()
	// A tiny segment cap forces one rotation per epoch.
	sp := openTestSpool(t, dir, SpoolConfig{MaxSegmentBytes: 1})
	encs := testEncs(t, 8)
	appendAll(t, sp, encs)

	segs, err := sp.segments()
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != len(encs) {
		t.Fatalf("%d segments, want %d (one per epoch)", len(segs), len(encs))
	}
	removed, err := sp.TruncateBefore(5)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 5 {
		t.Fatalf("removed %d segments, want 5", removed)
	}
	got := collect(t, sp, 5)
	if len(got) != 3 || got[0].Seq != 5 {
		t.Fatalf("post-truncate replay: %d epochs from %d, want 3 from 5", len(got), got[0].Seq)
	}
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the range must pick up at the surviving prefix.
	sp = openTestSpool(t, dir, SpoolConfig{})
	defer sp.Close()
	first, next, ok := sp.Range()
	if !ok || first != 5 || next != 8 {
		t.Fatalf("reopened range [%d,%d) ok=%v, want [5,8)", first, next, ok)
	}
}

func TestSpoolAlignTo(t *testing.T) {
	sp := openTestSpool(t, t.TempDir(), SpoolConfig{})
	defer sp.Close()
	encs := testEncs(t, 4)
	appendAll(t, sp, encs[:2])

	// Contiguous target: a no-op that keeps the spooled epochs.
	if err := sp.AlignTo(1); err != nil {
		t.Fatal(err)
	}
	if got := len(collect(t, sp, 0)); got != 2 {
		t.Fatalf("AlignTo(1) dropped epochs: %d left, want 2", got)
	}

	// A checkpoint ahead of the spool: existing segments are stale
	// history and the next append must be the target seq.
	if err := sp.AlignTo(9); err != nil {
		t.Fatal(err)
	}
	if got := len(collect(t, sp, 0)); got != 0 {
		t.Fatalf("AlignTo(9) kept %d stale epochs", got)
	}
	jump := encs[3]
	jump.Seq = 9
	if err := sp.Append(&jump); err != nil {
		t.Fatalf("append at aligned seq: %v", err)
	}
	if got := sp.End(); got != 10 {
		t.Fatalf("end %d after aligned append, want 10", got)
	}
}

// lastSegment returns the path of the newest spool segment in dir.
func lastSegment(tb testing.TB, dir string) string {
	tb.Helper()
	ents, err := filepath.Glob(filepath.Join(dir, spoolPrefix+"*"+spoolSuffix))
	if err != nil || len(ents) == 0 {
		tb.Fatalf("no spool segments in %s (%v)", dir, err)
	}
	return ents[len(ents)-1]
}

// TestSpoolTornTailEveryOffset truncates an fsynced segment at every
// byte offset inside its final frame and asserts open recovers the
// longest valid prefix — all epochs but the torn one — without error.
func TestSpoolTornTailEveryOffset(t *testing.T) {
	const n = 5
	encs := testEncs(t, n)

	// Build the segment image once.
	master := t.TempDir()
	sp := openTestSpool(t, master, SpoolConfig{Policy: SyncAlways})
	appendAll(t, sp, encs)
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}
	img, err := os.ReadFile(lastSegment(t, master))
	if err != nil {
		t.Fatal(err)
	}
	lastFrame := len(ship.AppendFrame(nil, ship.KindEpoch, ship.EncodeEpoch(&encs[n-1])))
	tailStart := len(img) - lastFrame

	for cut := 0; cut < lastFrame; cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, filepath.Base(lastSegment(t, master))),
			img[:tailStart+cut], 0o644); err != nil {
			t.Fatal(err)
		}
		reg := metrics.NewRegistry()
		sp, err := OpenSpool(SpoolConfig{Dir: dir, Metrics: reg})
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		first, next, ok := sp.Range()
		if !ok || first != 0 || next != n-1 {
			t.Fatalf("cut %d: range [%d,%d) ok=%v, want [0,%d)", cut, first, next, ok, n-1)
		}
		got := collect(t, sp, 0)
		if len(got) != n-1 {
			t.Fatalf("cut %d: replayed %d epochs, want %d", cut, len(got), n-1)
		}
		// cut==0 severs exactly at a frame boundary: a clean EOF, nothing
		// truncated. Any partial frame must bump the truncation counter.
		wantTrunc := int64(1)
		if cut == 0 {
			wantTrunc = 0
		}
		if v := reg.Counter("recovery_spool_truncated_total").Load(); v != wantTrunc {
			t.Fatalf("cut %d: truncated counter %d, want %d", cut, v, wantTrunc)
		}
		// The spool must accept the torn epoch again (the transport
		// redelivers it after the resume handshake).
		if err := sp.Append(&encs[n-1]); err != nil {
			t.Fatalf("cut %d: re-append torn epoch: %v", cut, err)
		}
		if got := collect(t, sp, 0); len(got) != n {
			t.Fatalf("cut %d: after re-append replayed %d epochs, want %d", cut, len(got), n)
		}
		sp.Close()
	}
}

// TestSpoolBitFlipTruncatesAndDropsLaterSegments corrupts a byte in the
// middle of an early segment: open must keep the prefix before the flip
// and remove every later segment (they would be a sequence gap).
func TestSpoolBitFlipTruncatesAndDropsLaterSegments(t *testing.T) {
	dir := t.TempDir()
	sp := openTestSpool(t, dir, SpoolConfig{MaxSegmentBytes: 1}) // rotate per epoch
	encs := testEncs(t, 6)
	appendAll(t, sp, encs)
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip a byte in segment 3's payload.
	victim := filepath.Join(dir, fmt.Sprintf("%s%020d%s", spoolPrefix, 3, spoolSuffix))
	data, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(victim, data, 0o644); err != nil {
		t.Fatal(err)
	}

	reg := metrics.NewRegistry()
	sp, err = OpenSpool(SpoolConfig{Dir: dir, Metrics: reg})
	if err != nil {
		t.Fatalf("open after bit flip: %v", err)
	}
	defer sp.Close()
	first, next, ok := sp.Range()
	if !ok || first != 0 || next != 3 {
		t.Fatalf("range [%d,%d) ok=%v, want [0,3)", first, next, ok)
	}
	if got := collect(t, sp, 0); len(got) != 3 {
		t.Fatalf("replayed %d epochs, want 3", len(got))
	}
	segs, err := sp.segments()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range segs {
		if s > 3 {
			t.Fatalf("segment %d survived past the corruption", s)
		}
	}
	if v := reg.Counter("recovery_spool_truncated_total").Load(); v != 1 {
		t.Fatalf("truncated counter %d, want 1", v)
	}
}
