package recovery

// Tests for the supervisor's snapshot catch-up surface: serving a
// snapshot, restoring one (durably, surviving restart), refusing torn
// or corrupt transfers without disturbing the live node, anti-entropy
// digest verification, and quarantine healing on restore.

import (
	"bytes"
	"errors"
	"io"
	"path/filepath"
	"testing"
	"time"

	"aets/internal/epoch"
	"aets/internal/ship"
)

// feedAll replays encs[from:to] into the supervisor.
func feedAll(t *testing.T, sup *Supervisor, encs []epoch.Encoded, from, to int) {
	t.Helper()
	for i := from; i < to; i++ {
		if err := sup.Feed(&encs[i]); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSupervisorSnapshotRoundTrip cuts a snapshot from a fully-caught-up
// supervisor and installs it on a stale one: the target must jump to the
// source's cursor, match the reference, and keep the state across a
// restart (the restore is durable, not in-memory only).
func TestSupervisorSnapshotRoundTrip(t *testing.T) {
	txns, encs := supStream(t, 900, 100)
	half := len(encs) / 2

	src := openSup(t, t.TempDir(), t.TempDir(), nil)
	defer src.close(t)
	feedAll(t, src.sup, encs, 0, len(encs))
	src.sup.Node().Drain()

	tgtSpool, tgtCkpt := t.TempDir(), t.TempDir()
	tgt := openSup(t, tgtSpool, tgtCkpt, nil)
	feedAll(t, tgt.sup, encs, 0, half)

	cursor, size, rc, err := src.sup.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if cursor != uint64(len(encs)) {
		t.Fatalf("snapshot cursor %d, want %d", cursor, len(encs))
	}
	if err := tgt.sup.RestoreSnapshot(cursor, size, rc); err != nil {
		t.Fatal(err)
	}
	rc.Close()

	if got := tgt.sup.NextSeq(); got != cursor {
		t.Fatalf("target cursor %d after restore, want %d", got, cursor)
	}
	if st := tgt.sup.Stats(); st.SnapshotRestores != 1 {
		t.Fatalf("SnapshotRestores = %d, want 1", st.SnapshotRestores)
	}
	if h := tgt.sup.Health(); h.SnapshotRestores != 1 {
		t.Fatalf("health SnapshotRestores = %d, want 1", h.SnapshotRestores)
	}
	tgt.assertReference(t, txns)

	// Durability: a restart restores from the installed checkpoint.
	tgt.close(t)
	tgt = openSup(t, tgtSpool, tgtCkpt, nil)
	defer tgt.close(t)
	if got := tgt.sup.NextSeq(); got != cursor {
		t.Fatalf("cursor %d after restart, want %d", got, cursor)
	}
	tgt.assertReference(t, txns)
}

// failingReader errors after a prefix — a torn wire transfer as the
// applier sees it.
type failingReader struct {
	r io.Reader
}

func (f *failingReader) Read(p []byte) (int, error) {
	n, err := f.r.Read(p)
	if err == io.EOF {
		return n, ship.ErrShortFrame
	}
	return n, err
}

// TestSupervisorRestoreRejectsTornAndCorrupt: a torn stream and a
// corrupt stream must both fail without touching the live node, its
// cursor, or the durable checkpoint set.
func TestSupervisorRestoreRejectsTornAndCorrupt(t *testing.T) {
	txns, encs := supStream(t, 600, 100)
	half := len(encs) / 2

	src := openSup(t, t.TempDir(), t.TempDir(), nil)
	defer src.close(t)
	feedAll(t, src.sup, encs, 0, len(encs))
	src.sup.Node().Drain()

	tgt := openSup(t, t.TempDir(), t.TempDir(), nil)
	defer tgt.close(t)
	feedAll(t, tgt.sup, encs, 0, half)

	// Torn: half the snapshot bytes then an error.
	cursor, _, rc, err := src.sup.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	blob, err := io.ReadAll(rc)
	rc.Close()
	if err != nil {
		t.Fatal(err)
	}
	torn := &failingReader{r: bytes.NewReader(blob[:len(blob)/2])}
	if err := tgt.sup.RestoreSnapshot(cursor, int64(len(blob)), torn); err == nil {
		t.Fatal("torn snapshot restore succeeded")
	}

	// Corrupt: right size, garbage bytes.
	garbage := bytes.Repeat([]byte{0x5a}, len(blob))
	if err := tgt.sup.RestoreSnapshot(cursor, int64(len(blob)), bytes.NewReader(garbage)); err == nil {
		t.Fatal("corrupt snapshot restore succeeded")
	}

	// Cursor mismatch: a valid checkpoint claimed at the wrong cursor.
	if err := tgt.sup.RestoreSnapshot(cursor+7, int64(len(blob)), bytes.NewReader(blob)); err == nil {
		t.Fatal("cursor-mismatched snapshot restore succeeded")
	}

	if got := tgt.sup.NextSeq(); got != uint64(half) {
		t.Fatalf("cursor moved to %d after failed restores, want %d", got, half)
	}
	if st := tgt.sup.Stats(); st.SnapshotRestores != 0 {
		t.Fatalf("SnapshotRestores = %d after failed restores, want 0", st.SnapshotRestores)
	}
	if st := tgt.sup.State(); st != StateRunning {
		t.Fatalf("state %s after failed restores, want running", st)
	}
	tgt.assertReference(t, txns[:txnsThrough(t, encs, half)])
}

// txnsThrough counts the transactions contained in encs[:k] so a
// half-stream reference can be built from the txn slice.
func txnsThrough(t *testing.T, encs []epoch.Encoded, k int) int {
	t.Helper()
	n := 0
	for i := 0; i < k; i++ {
		n += encs[i].TxnCount
	}
	return n
}

// TestSupervisorDigestRepairFlow: a matching digest verifies clean; a
// mismatched one at the aligned cursor reports ship.ErrDigestMismatch
// and latches NeedSnapshot until a restore clears it.
func TestSupervisorDigestRepairFlow(t *testing.T) {
	_, encs := supStream(t, 600, 100)

	src := openSup(t, t.TempDir(), t.TempDir(), nil)
	defer src.close(t)
	feedAll(t, src.sup, encs, 0, len(encs))
	src.sup.Node().Drain()

	tgt := openSup(t, t.TempDir(), t.TempDir(), nil)
	defer tgt.close(t)
	feedAll(t, tgt.sup, encs, 0, len(encs))
	tgt.sup.Node().Drain()

	seq := tgt.sup.NextSeq()
	good := tgt.sup.Node().StateDigest()
	if err := tgt.sup.VerifyDigest(seq, 0, good); err != nil {
		t.Fatalf("matching digest rejected: %v", err)
	}
	// A digest at a non-aligned cursor is not comparable: skipped.
	if err := tgt.sup.VerifyDigest(seq+3, 0, good^0xff); err != nil {
		t.Fatalf("non-aligned digest not skipped: %v", err)
	}
	if tgt.sup.NeedSnapshot() {
		t.Fatal("NeedSnapshot latched without a mismatch")
	}

	if err := tgt.sup.VerifyDigest(seq, 0, good^0xdead); !errors.Is(err, ship.ErrDigestMismatch) {
		t.Fatalf("mismatched digest: want ErrDigestMismatch, got %v", err)
	}
	if !tgt.sup.NeedSnapshot() {
		t.Fatal("NeedSnapshot not latched after mismatch")
	}
	st := tgt.sup.Stats()
	if st.DigestMismatches != 1 {
		t.Fatalf("DigestMismatches = %d, want 1", st.DigestMismatches)
	}
	if h := tgt.sup.Health(); h.DigestMismatches != 1 {
		t.Fatalf("health DigestMismatches = %d, want 1", h.DigestMismatches)
	}

	// The repair snapshot clears the latch.
	cursor, size, rc, err := src.sup.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := tgt.sup.RestoreSnapshot(cursor, size, rc); err != nil {
		t.Fatal(err)
	}
	rc.Close()
	if tgt.sup.NeedSnapshot() {
		t.Fatal("NeedSnapshot still latched after restore")
	}
}

// TestSupervisorRestoreHealsQuarantine: a degraded replica carrying a
// quarantined epoch is fully healed by a snapshot that supersedes the
// hole — sidecar removed, state running, reference-equal.
func TestSupervisorRestoreHealsQuarantine(t *testing.T) {
	txns, encs := supStream(t, 600, 100)
	k := len(encs) / 2

	src := openSup(t, t.TempDir(), t.TempDir(), nil)
	defer src.close(t)
	feedAll(t, src.sup, encs, 0, len(encs))
	src.sup.Node().Drain()

	spoolDir, ckptDir := t.TempDir(), t.TempDir()
	tgt := openSup(t, spoolDir, ckptDir, nil)
	feedAll(t, tgt.sup, encs, 0, k)
	poison := &epoch.Encoded{
		Seq:          uint64(k),
		TxnCount:     3,
		EntryCount:   7,
		Buf:          []byte{0xde, 0xad, 0xbe, 0xef, 0x00, 0x13, 0x37},
		LastCommitTS: encs[k-1].LastCommitTS,
	}
	if err := tgt.sup.Feed(poison); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for tgt.sup.State() != StateDegraded {
		if time.Now().After(deadline) {
			t.Fatalf("never degraded (stats %+v)", tgt.sup.Stats())
		}
		_ = tgt.sup.Probe()
		time.Sleep(time.Millisecond)
	}

	// The snapshot covers the quarantined sequence: restoring it heals
	// the hole and the degradation.
	cursor, size, rc, err := src.sup.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := tgt.sup.RestoreSnapshot(cursor, size, rc); err != nil {
		t.Fatal(err)
	}
	rc.Close()

	if st := tgt.sup.State(); st != StateRunning {
		t.Fatalf("state %s after healing restore, want running", st)
	}
	if st := tgt.sup.Stats(); st.Quarantined != 0 {
		t.Fatalf("quarantined %d after healing restore, want 0", st.Quarantined)
	}
	if sidecars, _ := filepath.Glob(filepath.Join(spoolDir, quarantinePrefix+"*")); len(sidecars) != 0 {
		t.Fatalf("%d sidecar files survived the healing restore", len(sidecars))
	}
	tgt.assertReference(t, txns)

	// The healed state survives a restart: no sidecar resurrects the
	// quarantine.
	tgt.close(t)
	tgt = openSup(t, spoolDir, ckptDir, nil)
	defer tgt.close(t)
	if st := tgt.sup.State(); st != StateRunning {
		t.Fatalf("state %s after restart, want running", st)
	}
	if got := tgt.sup.NextSeq(); got != cursor {
		t.Fatalf("cursor %d after restart, want %d", got, cursor)
	}
	tgt.assertReference(t, txns)
}
