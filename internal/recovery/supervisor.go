package recovery

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"aets/internal/checkpoint"
	"aets/internal/epoch"
	"aets/internal/grouping"
	"aets/internal/htap"
	"aets/internal/metrics"
	"aets/internal/obsrv"
	"aets/internal/ship"
)

// State is the supervisor's coarse health state.
type State int32

const (
	// StateRunning: the node is live and every spooled epoch replayed.
	StateRunning State = iota
	// StateDegraded: the node is live but impaired — at least one poison
	// epoch was quarantined (its transactions are not in the store) or
	// replay had to skip unrecoverable history.
	StateDegraded
	// StateFatal: the retry budget is exhausted; the node is down and
	// the supervisor will not rebuild it again.
	StateFatal
)

// String returns the healthz status word for the state.
func (s State) String() string {
	switch s {
	case StateRunning:
		return "running"
	case StateDegraded:
		return "degraded"
	default:
		return "fatal"
	}
}

// ErrFatal is returned by Feed/Heartbeat once the supervisor has given
// up rebuilding the node.
var ErrFatal = errors.New("recovery: supervisor fatal, retry budget exhausted")

// quarantinePrefix names poison-epoch sidecar files in the spool dir.
const quarantinePrefix = "quarantine-"

// Config configures a Supervisor.
type Config struct {
	// Kind, Plan and Node build (and rebuild) the htap.Node.
	Kind htap.Kind
	Plan *grouping.Plan
	Node htap.Options
	// Spool is the durable epoch spool. Required.
	Spool *Spool
	// Checkpoints is the atomic checkpoint manager. Required.
	Checkpoints *Manager
	// CheckpointEveryEpochs cuts a checkpoint after this many applied
	// epochs. 0 disables count-based checkpointing.
	CheckpointEveryEpochs int
	// CheckpointInterval cuts a checkpoint at least this often while
	// epochs are arriving. 0 disables time-based checkpointing.
	CheckpointInterval time.Duration
	// RetryBase and RetryMax bound the exponential rebuild backoff
	// (jittered). Defaults 50ms and 5s.
	RetryBase, RetryMax time.Duration
	// RetryBudget is the consecutive failed rebuild attempts tolerated
	// before the supervisor goes fatal. Default 8. Must exceed
	// QuarantineAfter+1 for quarantine to engage before fatal.
	RetryBudget int
	// QuarantineAfter quarantines an epoch after this many consecutive
	// replay failures at the same sequence. Default 3.
	QuarantineAfter int
	// ProbeInterval is the watchdog cadence for detecting asynchronous
	// replay failures. 0 uses 250ms; negative disables the watchdog
	// (tests drive Probe explicitly).
	ProbeInterval time.Duration
	// Seed makes backoff jitter deterministic. Default 1.
	Seed int64
	// Metrics receives the recovery_* metrics; nil uses metrics.Default.
	Metrics *metrics.Registry
}

// Stats is a point-in-time view of the supervisor.
type Stats struct {
	State            State
	Restarts         int64 // successful rebuilds after the initial start
	Quarantined      int64 // poison epochs quarantined
	Fallbacks        int64 // corrupt checkpoints skipped during restore
	DigestMismatches int64 // anti-entropy divergences detected locally
	SnapshotRestores int64 // wire snapshots validated and installed
	LastErr          string
}

// Supervisor owns the htap.Node lifecycle on a backup: it spools every
// incoming epoch before applying it (so an acknowledged epoch is
// durable), restores newest-valid-checkpoint + spool tail on startup,
// and on a fatal replay error tears the node down and rebuilds it with
// jittered exponential backoff and a bounded retry budget. An epoch
// that keeps killing replay is quarantined to a sidecar file and
// skipped, leaving the node degraded instead of crash-looping.
//
// Supervisor implements ship.Applier: wire it to a ship.Receiver with
// Resume = NextSeq().
type Supervisor struct {
	cfg Config
	rng *rand.Rand

	mu            sync.Mutex
	recoverCond   *sync.Cond // signalled when an in-flight recovery ends
	recovering    bool
	node          *htap.Node
	started       bool
	closed        bool
	sinceCkpt     int
	lastCkpt      time.Time
	ckptCursors   []uint64 // NextEpochSeq of checkpoints cut this lifetime (≤ retain)
	failSeq       uint64   // last sequence replay failed on (valid when failCount > 0)
	failCount     int      // consecutive failures at failSeq
	forcePinpoint bool     // an unattributed failure demands per-epoch drains
	quarantined   map[uint64]bool
	lastErr       error
	// needSnap flags a detected digest mismatch awaiting snapshot
	// repair; it survives receiver lifetimes (see NeedSnapshot) and
	// clears only when a snapshot actually restores.
	needSnap bool

	state            atomic.Int32
	restarts         atomic.Int64
	nQuarant         atomic.Int64
	fallbacks        atomic.Int64
	digestMismatches atomic.Int64
	snapRestores     atomic.Int64

	stop      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	gState    *metrics.Gauge
	cRestarts *metrics.Counter
	cQuarant  *metrics.Counter
	cFallback *metrics.Counter
	cCkptErr  *metrics.Counter
	hRestore  *metrics.Histogram
	gLag      *metrics.Gauge
}

// NewSupervisor validates cfg and returns an unstarted supervisor.
func NewSupervisor(cfg Config) (*Supervisor, error) {
	if cfg.Spool == nil {
		return nil, errors.New("recovery: Config.Spool is required")
	}
	if cfg.Checkpoints == nil {
		return nil, errors.New("recovery: Config.Checkpoints is required")
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 50 * time.Millisecond
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = 5 * time.Second
	}
	if cfg.RetryBudget <= 0 {
		cfg.RetryBudget = 8
	}
	if cfg.QuarantineAfter <= 0 {
		cfg.QuarantineAfter = 3
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = 250 * time.Millisecond
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.Default
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	reg := cfg.Metrics
	s := &Supervisor{
		cfg:         cfg,
		rng:         rand.New(rand.NewSource(seed)),
		quarantined: make(map[uint64]bool),
		stop:        make(chan struct{}),
		gState:      reg.Gauge("recovery_state"),
		cRestarts:   reg.Counter("recovery_restarts_total"),
		cQuarant:    reg.Counter("recovery_quarantined_total"),
		cFallback:   reg.Counter("recovery_ckpt_fallback_total"),
		cCkptErr:    reg.Counter("recovery_ckpt_errors_total"),
		hRestore:    reg.Histogram("recovery_restore_seconds"),
		gLag:        reg.Gauge("replay_lag_ts"),
	}
	s.recoverCond = sync.NewCond(&s.mu)
	return s, nil
}

// Start restores the node (newest valid checkpoint + spool tail) and
// launches the watchdog and checkpoint scheduler. It retries per the
// backoff/budget policy; an error means the supervisor is fatal.
func (s *Supervisor) Start() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return errors.New("recovery: supervisor already started")
	}
	s.started = true
	s.loadQuarantineLocked()
	if err := s.recoverLocked(true); err != nil {
		return err
	}
	if s.cfg.ProbeInterval > 0 {
		s.wg.Add(1)
		go s.watchdog()
	}
	if s.cfg.CheckpointInterval > 0 {
		s.wg.Add(1)
		go s.checkpointLoop()
	}
	return nil
}

// Supervisor persists wire frames as received (compressed epochs are
// spooled compressed) — see FeedFrame.
var _ ship.FrameApplier = (*Supervisor)(nil)

// Feed implements ship.Applier: the epoch is made durable in the spool
// first (the ack the receiver sends after Feed returns is a durability
// promise), then applied to the node. A node failure triggers an
// in-line rebuild; only a fatal supervisor returns an error, which
// terminates the replication connection unacknowledged.
func (s *Supervisor) Feed(enc *epoch.Encoded) error {
	return s.feed(enc, func() error { return s.cfg.Spool.Append(enc) })
}

// FeedFrame implements ship.FrameApplier: identical to Feed, but the
// epoch is spooled as the exact frame that crossed the wire, so a
// compressed epoch stays compressed on disk and is only inflated when
// the spool replays it.
func (s *Supervisor) FeedFrame(flags byte, payload []byte, enc *epoch.Encoded) error {
	return s.feed(enc, func() error { return s.cfg.Spool.AppendWire(enc.Seq, flags, payload) })
}

func (s *Supervisor) feed(enc *epoch.Encoded, spool func() error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrSpoolClosed
	}
	if s.State() == StateFatal {
		return ErrFatal
	}
	if err := spool(); err != nil {
		return err
	}
	if err := s.applyLocked(enc); err != nil {
		return err
	}
	s.sinceCkpt++
	if s.cfg.CheckpointEveryEpochs > 0 && s.sinceCkpt >= s.cfg.CheckpointEveryEpochs {
		if err := s.checkpointLocked(); err != nil {
			s.cCkptErr.Inc()
		}
	}
	return nil
}

// applyLocked feeds one epoch to the node, rebuilding on failure. The
// epoch is already spooled, so the rebuild replays it from disk.
func (s *Supervisor) applyLocked(enc *epoch.Encoded) error {
	if s.quarantined[enc.Seq] {
		return nil
	}
	if s.node != nil {
		err := s.node.Feed(enc)
		if err == nil && s.node.Err() == nil {
			return nil
		}
	}
	return s.recoverLocked(false)
}

// Heartbeat implements ship.Applier. Heartbeats carry no epoch payload
// and are not spooled.
func (s *Supervisor) Heartbeat(ts int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrSpoolClosed
	}
	if s.State() == StateFatal {
		return ErrFatal
	}
	if s.node != nil {
		if err := s.node.Heartbeat(ts); err == nil && s.node.Err() == nil {
			return nil
		}
	}
	return s.recoverLocked(false)
}

// NextSeq is the replication resume cursor: every epoch below it is
// durable locally (spooled or contained in the restored checkpoint).
func (s *Supervisor) NextSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	next := s.cfg.Spool.End()
	if s.node != nil {
		if n := s.node.NextSeq(); n > next {
			next = n
		}
	}
	return next
}

// Node returns the current node (nil while fatal). The pointer changes
// across rebuilds; callers should re-fetch rather than retain it.
func (s *Supervisor) Node() *htap.Node {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.node
}

// State returns the supervisor's coarse state.
func (s *Supervisor) State() State { return State(s.state.Load()) }

// Stats returns a snapshot of the supervisor's counters.
func (s *Supervisor) Stats() Stats {
	st := Stats{
		State:            s.State(),
		Restarts:         s.restarts.Load(),
		Quarantined:      s.nQuarant.Load(),
		Fallbacks:        s.fallbacks.Load(),
		DigestMismatches: s.digestMismatches.Load(),
		SnapshotRestores: s.snapRestores.Load(),
	}
	s.mu.Lock()
	if s.lastErr != nil {
		st.LastErr = s.lastErr.Error()
	}
	s.mu.Unlock()
	return st
}

// Probe checks the node for an asynchronous fatal replay error and
// rebuilds if one surfaced. The watchdog calls it periodically; tests
// call it directly for determinism.
func (s *Supervisor) Probe() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.State() == StateFatal {
		return s.lastErr
	}
	if s.node != nil && s.node.Err() == nil {
		return nil
	}
	return s.recoverLocked(false)
}

// Checkpoint quiesces replay, cuts an atomic checkpoint and compacts
// the spool below the oldest retained checkpoint's cursor. Wire it to
// ship.ReceiverConfig.Drain so a clean end-of-stream leaves a durable
// resume point.
func (s *Supervisor) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrSpoolClosed
	}
	return s.checkpointLocked()
}

func (s *Supervisor) checkpointLocked() error {
	if s.node == nil {
		return errors.New("recovery: no live node to checkpoint")
	}
	var meta checkpoint.Meta
	_, err := s.cfg.Checkpoints.Write(func(w io.Writer) error {
		m, err := s.node.Checkpoint(w)
		meta = m
		return err
	})
	if err != nil {
		return err
	}
	s.sinceCkpt = 0
	s.lastCkpt = time.Now()
	// Compact, not TruncateBefore: the spool drops dead epochs as soon as
	// the cursor moves — including the active segment's prefix — instead
	// of waiting for whole segments to age out. But only below the OLDEST
	// retained checkpoint's cursor: restore falls back across corrupt
	// checkpoints, and an older checkpoint is only usable while the spool
	// still covers [its cursor, End). Cursors of checkpoints written
	// before this process started are unknown, so compaction waits until
	// this lifetime has cut a full retention window (then the retained
	// set is exactly s.ckptCursors).
	retain := s.cfg.Checkpoints.Retain()
	s.ckptCursors = append(s.ckptCursors, meta.NextEpochSeq())
	if len(s.ckptCursors) > retain {
		s.ckptCursors = s.ckptCursors[len(s.ckptCursors)-retain:]
	}
	if len(s.ckptCursors) == retain {
		if _, err := s.cfg.Spool.Compact(s.ckptCursors[0]); err != nil {
			return err
		}
	}
	return nil
}

// Close stops the watchdog and scheduler and closes the node. The spool
// and checkpoint manager are caller-owned and stay open.
func (s *Supervisor) Close() error {
	s.closeOnce.Do(func() { close(s.stop) })
	s.wg.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.node != nil {
		err := s.node.Close()
		s.node = nil
		if err != nil {
			return err
		}
	}
	return nil
}

// recoverLocked rebuilds the node: restore the newest checkpoint that
// validates (falling back across corrupt ones), replay the spool tail,
// and retry the whole sequence with jittered exponential backoff up to
// the budget. A sequence that keeps failing is quarantined once it hits
// the QuarantineAfter threshold. Called with s.mu held; the lock is
// released around backoff sleeps.
func (s *Supervisor) recoverLocked(initial bool) error {
	// The lock is released during backoff sleeps, so a watchdog Probe or
	// a Feed could start a second recovery mid-flight: serialize, and
	// piggyback on the other recovery's outcome when it already ran.
	for s.recovering {
		s.recoverCond.Wait()
	}
	if s.closed {
		return ErrSpoolClosed
	}
	if s.node != nil && s.node.Err() == nil {
		return nil // another caller already rebuilt the node
	}
	if s.State() == StateFatal {
		return ErrFatal
	}
	s.recovering = true
	defer func() {
		s.recovering = false
		s.recoverCond.Broadcast()
	}()

	start := time.Now()
	for attempt := 0; attempt < s.cfg.RetryBudget; attempt++ {
		if attempt > 0 {
			delay := s.backoff(attempt - 1)
			s.mu.Unlock()
			select {
			case <-time.After(delay):
			case <-s.stop:
				s.mu.Lock()
				s.lastErr = ErrSpoolClosed
				return ErrSpoolClosed
			}
			s.mu.Lock()
			if s.closed {
				s.lastErr = ErrSpoolClosed
				return ErrSpoolClosed
			}
		}
		if s.node != nil {
			_ = s.node.Close()
			s.node = nil
		}
		node, meta, err := s.restoreBest()
		if err != nil {
			s.lastErr = err
			continue
		}
		// The checkpoint can be ahead of the spool (spool truncated by a
		// corruption, epochs contained in the checkpoint): realign so the
		// resume cursor is appendable.
		if err := s.cfg.Spool.AlignTo(meta.NextEpochSeq()); err != nil {
			node.Close()
			s.lastErr = err
			continue
		}
		// After the first failure, pinpoint: drain per epoch so the
		// failing sequence is attributed exactly.
		pinpoint := s.forcePinpoint || s.failCount > 0 || attempt > 0
		badSeq, err := s.replaySpool(node, meta.NextEpochSeq(), pinpoint)
		if err != nil {
			node.Close()
			s.lastErr = err
			if pinpoint {
				if s.failCount > 0 && badSeq == s.failSeq {
					s.failCount++
				} else {
					s.failSeq, s.failCount = badSeq, 1
				}
			} else {
				// Unattributed failure: force pinpointing next round.
				s.forcePinpoint = true
			}
			continue
		}
		s.node = node
		s.failCount = 0
		s.forcePinpoint = false
		s.lastErr = nil
		if !initial {
			s.restarts.Add(1)
			s.cRestarts.Inc()
		}
		if s.nQuarant.Load() > 0 {
			s.setState(StateDegraded)
		} else {
			s.setState(StateRunning)
		}
		s.hRestore.Observe(time.Since(start))
		return nil
	}
	s.setState(StateFatal)
	if s.lastErr == nil {
		s.lastErr = ErrFatal
	}
	return fmt.Errorf("%w (last error: %v)", ErrFatal, s.lastErr)
}

// restoreBest builds a node from the newest checkpoint that passes
// validation, falling back across ErrCorrupt ones; with no usable
// checkpoint it builds a fresh node (the spool replays from 0).
func (s *Supervisor) restoreBest() (*htap.Node, checkpoint.Meta, error) {
	paths, err := s.cfg.Checkpoints.List()
	if err != nil {
		return nil, checkpoint.Meta{}, err
	}
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			s.fallbacks.Add(1)
			s.cFallback.Inc()
			continue
		}
		node, meta, err := htap.RestoreNode(f, s.cfg.Kind, s.cfg.Plan, s.cfg.Node)
		f.Close()
		if err == nil {
			return node, meta, nil
		}
		if errors.Is(err, checkpoint.ErrCorrupt) {
			s.fallbacks.Add(1)
			s.cFallback.Inc()
			continue
		}
		return nil, checkpoint.Meta{}, err
	}
	node, err := htap.NewNode(s.cfg.Kind, s.cfg.Plan, s.cfg.Node)
	return node, checkpoint.Meta{}, err
}

// replaySpool replays the spool tail from seq `from` into node. With
// pinpoint, every epoch is drained individually so a failure names its
// sequence; otherwise the drain happens once at the end (fast path).
// Epochs at or past the quarantine threshold are quarantined and
// skipped with a visibility-only dummy epoch.
func (s *Supervisor) replaySpool(node *htap.Node, from uint64, pinpoint bool) (badSeq uint64, err error) {
	lastFed := from
	ferr := s.cfg.Spool.Replay(from, func(enc *epoch.Encoded) error {
		lastFed = enc.Seq
		if s.quarantined[enc.Seq] {
			return s.skipEpoch(node, enc)
		}
		if enc.Seq == s.failSeq && s.failCount >= s.cfg.QuarantineAfter {
			if qerr := s.quarantineLocked(enc); qerr != nil {
				return qerr
			}
			return s.skipEpoch(node, enc)
		}
		if err := node.Feed(enc); err != nil {
			return err
		}
		if pinpoint {
			node.Drain()
			if err := node.Err(); err != nil {
				return err
			}
		}
		return nil
	})
	if ferr != nil {
		return lastFed, ferr
	}
	node.Drain()
	if err := node.Err(); err != nil {
		return lastFed, err
	}
	return 0, nil
}

// skipEpoch advances the node's cursor and visibility past a
// quarantined epoch without replaying its payload.
func (s *Supervisor) skipEpoch(node *htap.Node, enc *epoch.Encoded) error {
	return node.Feed(&epoch.Encoded{Seq: enc.Seq, LastCommitTS: enc.LastCommitTS})
}

// quarantineLocked writes the poison epoch's frame to a sidecar file in
// the spool dir and marks its sequence skipped.
func (s *Supervisor) quarantineLocked(enc *epoch.Encoded) error {
	path := filepath.Join(s.cfg.Spool.cfg.Dir,
		fmt.Sprintf("%s%020d.epoch", quarantinePrefix, enc.Seq))
	frame := ship.AppendFrame(nil, ship.KindEpoch, ship.EncodeEpoch(enc))
	if err := os.WriteFile(path, frame, 0o644); err != nil {
		return err
	}
	s.quarantined[enc.Seq] = true
	s.failSeq, s.failCount = 0, 0
	s.nQuarant.Add(1)
	s.cQuarant.Inc()
	s.setState(StateDegraded)
	return nil
}

// loadQuarantineLocked restores the quarantine set from sidecar files,
// so a restart does not pay the failure budget for an already-known
// poison epoch again.
func (s *Supervisor) loadQuarantineLocked() {
	ents, err := os.ReadDir(s.cfg.Spool.cfg.Dir)
	if err != nil {
		return
	}
	for _, de := range ents {
		seq, ok := parseQuarantineSeq(de.Name())
		if !ok {
			continue
		}
		s.quarantined[seq] = true
	}
	if len(s.quarantined) > 0 {
		s.nQuarant.Store(int64(len(s.quarantined)))
		s.setState(StateDegraded)
	}
}

// QuarantinedSeqs returns the quarantined epoch sequences, ascending.
func (s *Supervisor) QuarantinedSeqs() []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]uint64, 0, len(s.quarantined))
	for seq := range s.quarantined {
		out = append(out, seq)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (s *Supervisor) setState(st State) {
	s.state.Store(int32(st))
	s.gState.Set(float64(st))
}

// backoff returns the jittered exponential rebuild delay. Called with
// s.mu held (the rng is guarded by it). ship.Backoff clamps the shift
// so a long outage's retry count cannot overflow the duration back
// into a tiny (or negative-masked) delay.
func (s *Supervisor) backoff(retry int) time.Duration {
	d := ship.Backoff(s.cfg.RetryBase, s.cfg.RetryMax, retry)
	half := int64(d / 2)
	return time.Duration(half + s.rng.Int63n(half+1))
}

// watchdog periodically probes for asynchronous replay failures.
func (s *Supervisor) watchdog() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			_ = s.Probe()
		}
	}
}

// checkpointLoop cuts time-based checkpoints while epochs are arriving.
func (s *Supervisor) checkpointLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.CheckpointInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.mu.Lock()
			if !s.closed && s.node != nil && s.sinceCkpt > 0 &&
				time.Since(s.lastCkpt) >= s.cfg.CheckpointInterval {
				if err := s.checkpointLocked(); err != nil {
					s.cCkptErr.Inc()
				}
			}
			s.mu.Unlock()
		}
	}
}

// Health returns the obsrv health report: running and degraded serve
// 200 (a degraded replica still answers queries), fatal serves 503.
// Call it from obsrv.Options.Health; it refreshes replay_lag_ts.
func (s *Supervisor) Health() obsrv.Health {
	st := s.State()
	h := obsrv.Health{
		Healthy:          st != StateFatal,
		Status:           st.String(),
		Supervisor:       st.String(),
		Degraded:         st == StateDegraded,
		Restarts:         s.restarts.Load(),
		Quarantined:      s.nQuarant.Load(),
		DigestMismatches: s.digestMismatches.Load(),
		SnapshotRestores: s.snapRestores.Load(),
	}
	if st == StateRunning {
		h.Status = "ok"
	}
	s.mu.Lock()
	node := s.node
	if s.lastErr != nil {
		h.Err = s.lastErr.Error()
	}
	s.mu.Unlock()
	if node != nil {
		h.VisibleTS = node.VisibleTS()
		h.PrimaryTS = node.PrimaryTS()
		h.ReplayLagTS = node.ReplayLag()
		s.gLag.Set(float64(h.ReplayLagTS))
	}
	return h
}
