// Chaos end-to-end test: a primary ships TPC-C epochs over the real
// transport with injected faults, the supervised backup is hard-killed
// at random points across several lives — once with a bit flipped in
// its spool — and the final life must converge to exactly the state of
// a serial reference application.
package recovery

import (
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"aets/internal/epoch"
	"aets/internal/memtable"
	"aets/internal/metrics"
	"aets/internal/reference"
	"aets/internal/ship"
	"aets/internal/workload"
)

// chaosLives is the number of hard restarts before the clean final
// life; the acceptance bar is ≥ 5.
const chaosLives = 6

func chaosSchema() uint64 {
	return ship.SchemaHash("tpcc", workload.TableIDs(workload.NewTPCC(supWarehouses).Tables()))
}

// trackingListener remembers accepted connections so a "crash" can
// sever them all at once.
type trackingListener struct {
	net.Listener
	mu    sync.Mutex
	conns []net.Conn
}

func (l *trackingListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err == nil {
		l.mu.Lock()
		l.conns = append(l.conns, c)
		l.mu.Unlock()
	}
	return c, err
}

func (l *trackingListener) kill() {
	l.Listener.Close()
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, c := range l.conns {
		c.Close()
	}
	l.conns = nil
}

func TestChaosRestartsConvergeToReference(t *testing.T) {
	txnCount, epochSize := 6000, 128
	if testing.Short() {
		txnCount, epochSize = 2000, 64
	}
	// AETS_CHAOS_COMPRESS=1 runs the same chaos with negotiated frame
	// compression on every link: compressed frames then cross the faulty
	// wire, land in the spool as received, and survive the restarts.
	compress := os.Getenv("AETS_CHAOS_COMPRESS") != ""
	if compress {
		t.Log("chaos leg: flate compression negotiated on all links")
	}
	txns, encs := supStream(t, txnCount, epochSize)
	want := memtable.New()
	reference.Apply(want, txns)

	spoolDir, ckptDir := t.TempDir(), t.TempDir()
	rng := rand.New(rand.NewSource(42))

	// Faulty lives: the dial is cut after a random byte budget (the
	// random restart point), frames are fragmented and duplicated, and
	// when the sender dies the backup is hard-killed: connections
	// severed, the supervisor abandoned without a final checkpoint.
	for life := 0; life < chaosLives; life++ {
		env := openSup(t, spoolDir, ckptDir, func(cfg *Config) {
			cfg.CheckpointEveryEpochs = 4 // exercise checkpoint + spool pruning
		})

		base, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ln := &trackingListener{Listener: base}
		rcv, err := ship.NewReceiver(ship.ReceiverConfig{
			Schema:   chaosSchema(),
			Resume:   env.sup.NextSeq(),
			Applier:  env.sup,
			Metrics:  ship.NewMetrics(metrics.NewRegistry()),
			Compress: compress,
		})
		if err != nil {
			t.Fatal(err)
		}
		var serveWG sync.WaitGroup
		serveWG.Add(1)
		go func() {
			defer serveWG.Done()
			for {
				conn, err := ln.Accept()
				if err != nil {
					return
				}
				// Faulted connections die mid-frame by design; errors are
				// the point of this test.
				_, _ = rcv.Serve(conn)
			}
		}()

		cut := int64(20_000 + rng.Intn(1_500_000))
		chunk := 0
		if life%2 == 0 {
			chunk = 512 + rng.Intn(4096)
		}
		dup := 0
		if life%3 == 0 {
			dup = 2 + rng.Intn(5)
		}
		dial := ship.FaultDialer(
			func() (net.Conn, error) { return net.Dial("tcp", ln.Addr().String()) },
			func(i int) ship.FaultOpts {
				return ship.FaultOpts{CutWriteAfter: cut, Chunk: chunk, DuplicateEvery: dup}
			})
		s, err := ship.NewSender(ship.SenderConfig{
			Dial:        dial,
			Schema:      chaosSchema(),
			Window:      8,
			RetryBase:   time.Millisecond,
			RetryMax:    5 * time.Millisecond,
			MaxAttempts: 2, // every attempt is cut: the sender dies quickly
			Metrics:     ship.NewMetrics(metrics.NewRegistry()),
			Compress:    compress,
		})
		if err != nil {
			t.Fatal(err)
		}
		sent := 0
		for i := range encs {
			if err := s.Send(&encs[i]); err != nil {
				break // the cut wire killed the stream: this life is over
			}
			sent++
		}
		_ = s.Close()

		// Hard kill: sever every connection, abandon the supervisor with
		// no drain and no parting checkpoint. Durability is whatever the
		// spool and checkpoint manager already put on disk.
		ln.kill()
		serveWG.Wait()
		env.close(t)
		t.Logf("life %d: cut=%dB chunk=%d dup=%d, sender enqueued %d/%d epochs, backup cursor %d",
			life, cut, chunk, dup, sent, len(encs), rcv.Cursor())

		// Between two lives, corrupt the spool at rest: flip one bit in
		// the middle of the newest segment. Open must truncate the torn
		// tail and the transport must re-ship the difference.
		if life == chaosLives/2 {
			segs, err := filepath.Glob(filepath.Join(spoolDir, spoolPrefix+"*"+spoolSuffix))
			if err != nil || len(segs) == 0 {
				t.Fatalf("no spool segments to corrupt (%v)", err)
			}
			victim := segs[len(segs)-1]
			data, err := os.ReadFile(victim)
			if err != nil {
				t.Fatal(err)
			}
			if len(data) > 0 {
				data[len(data)/2] ^= 0x04
				if err := os.WriteFile(victim, data, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("life %d: flipped a bit at %s offset %d", life, filepath.Base(victim), len(data)/2)
			}
		}
	}

	// Final life: a clean link. The stream must finish with an EOS,
	// checkpoint via Drain, and match the serial reference exactly.
	env := openSup(t, spoolDir, ckptDir, nil)
	defer env.close(t)
	base, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()
	rcv, err := ship.NewReceiver(ship.ReceiverConfig{
		Schema:   chaosSchema(),
		Resume:   env.sup.NextSeq(),
		Applier:  env.sup,
		Drain:    env.sup.Checkpoint,
		Metrics:  ship.NewMetrics(metrics.NewRegistry()),
		Compress: compress,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		for {
			conn, err := base.Accept()
			if err != nil {
				done <- err
				return
			}
			eos, err := rcv.Serve(conn)
			if err != nil {
				done <- err
				return
			}
			if eos {
				done <- nil
				return
			}
		}
	}()
	s, err := ship.NewSender(ship.SenderConfig{
		Dial:     func() (net.Conn, error) { return net.Dial("tcp", base.Addr().String()) },
		Schema:   chaosSchema(),
		Window:   8,
		Metrics:  ship.NewMetrics(metrics.NewRegistry()),
		Compress: compress,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range encs {
		if err := s.Send(&encs[i]); err != nil {
			t.Fatalf("final life send: %v", err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("final life close: %v", err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("final life serve: %v", err)
		}
	case <-time.After(120 * time.Second):
		t.Fatal("final life timed out")
	}

	if st := env.sup.State(); st != StateRunning {
		t.Fatalf("final state %s (stats %+v), want running", st, env.sup.Stats())
	}
	node := env.sup.Node()
	node.Drain()
	if err := node.Err(); err != nil {
		t.Fatal(err)
	}
	if err := reference.Equal(want, node.Memtable(), supTables()); err != nil {
		t.Fatalf("chaos survivor diverged from reference: %v", err)
	}
	if got := env.sup.NextSeq(); got != uint64(len(encs)) {
		t.Fatalf("final cursor %d, want %d", got, len(encs))
	}
}

// TestChaosPoisonEpochQuarantinedNotCrashLooping is the poison half of
// the acceptance bar, driven through the Applier interface the
// transport uses: one undecodable epoch mid-stream must be quarantined
// within the configured failure budget, leaving the node degraded and
// still applying the rest of the stream.
func TestChaosPoisonEpochQuarantinedNotCrashLooping(t *testing.T) {
	_, encs := supStream(t, 1000, 100)
	k := len(encs) / 2
	spoolDir, ckptDir := t.TempDir(), t.TempDir()
	env := openSup(t, spoolDir, ckptDir, func(cfg *Config) {
		cfg.QuarantineAfter = 3
		cfg.RetryBudget = 8
	})
	defer env.close(t)

	for i := range encs[:k] {
		if err := env.sup.Feed(&encs[i]); err != nil {
			t.Fatal(err)
		}
	}
	poison := &epoch.Encoded{
		Seq:          uint64(k),
		TxnCount:     1,
		EntryCount:   1,
		Buf:          []byte{0xff, 0xfe, 0xfd, 0xfc},
		LastCommitTS: encs[k-1].LastCommitTS,
	}
	if err := env.sup.Feed(poison); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for env.sup.State() != StateDegraded {
		if time.Now().After(deadline) {
			t.Fatalf("poison epoch never quarantined (stats %+v)", env.sup.Stats())
		}
		_ = env.sup.Probe()
		time.Sleep(time.Millisecond)
	}
	st := env.sup.Stats()
	if st.Quarantined != 1 {
		t.Fatalf("quarantined %d, want 1", st.Quarantined)
	}
	// Not crash-looping: the node is live and keeps applying.
	for i := k; i < len(encs); i++ {
		shifted := encs[i]
		shifted.Seq++
		if err := env.sup.Feed(&shifted); err != nil {
			t.Fatalf("feed after quarantine: %v", err)
		}
	}
	if env.sup.Node() == nil {
		t.Fatal("no live node after quarantine")
	}
}
