package memtable

import (
	"testing"

	"aets/internal/wal"
)

// replayEpoch simulates one replay batch: carve n versions for keys
// 1..n from a fresh arena, commit them at ts, and unpin.
func replayEpoch(mt *Memtable, n int, ts int64) {
	ar := mt.Arenas().Get()
	vers := ar.Versions(n)
	tab := mt.Table(1)
	for i := range vers {
		vers[i].TxnID = uint64(ts)
		vers[i].CommitTS = ts
		vers[i].Columns = []wal.Column{{ID: 1, Value: []byte{byte(ts)}}}
		tab.GetOrCreate(uint64(i + 1)).Append(&vers[i])
	}
	ar.Unpin()
}

// TestArenaRecyclesAfterVacuum drives the full lifecycle: versions from
// epoch 1 are overwritten by epoch 2, the first Vacuum unlinks them
// (retiring their arena to limbo), and the second Vacuum's flush returns
// the arena to the pool.
func TestArenaRecyclesAfterVacuum(t *testing.T) {
	mt := NewWithShards(2)
	replayEpoch(mt, 100, 10)
	replayEpoch(mt, 100, 20)

	if got := mt.Arenas().Recycled(); got != 0 {
		t.Fatalf("recycled %d arenas before any vacuum", got)
	}
	// First vacuum unlinks every ts=10 version; the epoch-1 arena's live
	// count hits zero and it parks in limbo — not yet reusable, a straggler
	// reader may still be walking the unlinked suffix.
	if removed := mt.Vacuum(25); removed != 100 {
		t.Fatalf("vacuum removed %d, want 100", removed)
	}
	if got := mt.Arenas().Recycled(); got != 0 {
		t.Fatalf("arena recycled at the vacuum that freed it — fence broken (got %d)", got)
	}
	// The next vacuum's flush is the reclamation fence.
	mt.Vacuum(25)
	if got := mt.Arenas().Recycled(); got != 1 {
		t.Fatalf("recycled %d arenas after second vacuum, want 1", got)
	}

	// Surviving epoch-2 data is intact.
	for k := uint64(1); k <= 100; k++ {
		v := mt.Table(1).Get(k).Visible(25)
		if v == nil || v.CommitTS != 20 {
			t.Fatalf("key %d: surviving version %+v", k, v)
		}
	}
}

// TestArenaPinBlocksRetire: an arena whose versions are all dead must stay
// un-retired while the engine still holds its carving pin.
func TestArenaPinBlocksRetire(t *testing.T) {
	var p ArenaPool
	a := p.Get() // pinned
	s := a.Versions(3)
	for i := range s {
		s[i].arena.release(1) // simulate vacuum unlinking each version
	}
	p.Flush()
	if p.Recycled() != 0 {
		t.Fatal("arena retired while pinned")
	}
	a.Unpin() // drops to zero → limbo
	p.Flush()
	if p.Recycled() != 1 {
		t.Fatalf("recycled %d after unpin+flush, want 1", p.Recycled())
	}
}

// TestArenaReuseZeroed: an arena coming back from reset must hand out
// zero versions even though its slab memory held a previous epoch.
func TestArenaReuseZeroed(t *testing.T) {
	var p ArenaPool
	a := p.Get()
	s := a.Versions(16)
	for i := range s {
		s[i].TxnID = 99
		s[i].CommitTS = 99
		s[i].Deleted = true
		s[i].next.Store(&s[0])
	}
	a.reset()
	s2 := a.Versions(16)
	for i := range s2 {
		v := &s2[i]
		if v.TxnID != 0 || v.CommitTS != 0 || v.Deleted || v.Columns != nil || v.next.Load() != nil {
			t.Fatalf("reused version %d not zeroed: %+v", i, v)
		}
		if v.arena != a {
			t.Fatalf("reused version %d not tagged with its arena", i)
		}
	}
}

// TestArenaDecodersPartitioned: per-worker decoders must be distinct so
// phase-1 workers never share a chunk, and they persist across reuse.
func TestArenaDecodersPartitioned(t *testing.T) {
	var p ArenaPool
	a := p.Get()
	d := a.Decoders(4)
	if len(d) != 4 {
		t.Fatalf("got %d decoders", len(d))
	}
	for i := range d {
		for j := i + 1; j < len(d); j++ {
			if d[i] == d[j] {
				t.Fatalf("decoders %d and %d alias", i, j)
			}
		}
	}
	again := a.Decoders(2)
	if again[0] != d[0] || again[1] != d[1] {
		t.Fatal("decoder set not stable across calls")
	}
}
