package memtable

// arena.go implements epoch arenas for version chains. TPLR's translate
// phase used to allocate one Version slab per group batch and fresh decode
// chunks per worker, all of which the garbage collector then had to trace
// for as long as the versions lived — the dominant share of replay's GC
// pressure. A VersionArena bundles those allocations per batch and ties
// their lifetime to the version chains themselves: Vacuum releases each
// unlinked version back to its arena, and once every version an arena
// issued is dead the arena retires itself to the pool, where its chunks
// are reset and handed to the next epoch — a sync.Pool cycle instead of a
// GC cycle.

import (
	"sync"
	"sync/atomic"

	"aets/internal/alloc"

	"aets/internal/wal"
)

// VersionArena carves the Versions and decode storage (columns, value
// bytes) of one replay batch. Carving is single-threaded per arena except
// for the per-worker decoders, which partition the decode storage so
// phase-1 workers never share a chunk.
//
// Lifetime: the replay engine obtains an arena with ArenaPool.Get (which
// pins it), carves versions and decoders during the batch, and drops its
// pin with Unpin when the batch has committed. From then on the arena
// stays alive exactly as long as any of its versions is linked in a chain;
// Record.Vacuum releases versions as it unlinks them, and the release that
// drops the count to zero retires the arena for recycling.
type VersionArena struct {
	pool *ArenaPool
	vers alloc.Slab[Version]
	decs []*wal.DecodeArena

	// live counts issued versions not yet released, plus one pin bias
	// while the replay engine still carves from the arena.
	live atomic.Int64
}

// Versions returns a zeroed slab of n versions, each tagged with the
// arena so Vacuum can release it. The slice is contiguous: the engine
// indexes it by precomputed per-piece offsets, exactly as it did with a
// plain make.
func (a *VersionArena) Versions(n int) []Version {
	if n == 0 {
		return nil
	}
	s := a.vers.TakeZeroed(n)
	for i := range s {
		s[i].arena = a
	}
	a.live.Add(int64(n))
	return s
}

// Decoders returns n decode arenas, one per phase-1 worker. Their chunks
// are reset and reused when the arena is recycled. Must be called before
// the workers spawn; the returned decoders are then used concurrently,
// one per worker.
func (a *VersionArena) Decoders(n int) []*wal.DecodeArena {
	for len(a.decs) < n {
		a.decs = append(a.decs, new(wal.DecodeArena))
	}
	return a.decs[:n]
}

// Unpin drops the engine's carving pin. Once unpinned, the arena recycles
// as soon as all its versions are vacuumed. Calling Unpin on an arena
// whose versions are already all dead retires it immediately.
func (a *VersionArena) Unpin() { a.release(1) }

// release subtracts n from the live count and retires the arena when it
// hits zero.
func (a *VersionArena) release(n int64) {
	if a.live.Add(-n) == 0 {
		a.pool.retire(a)
	}
}

// reset prepares a retired arena for reuse.
func (a *VersionArena) reset() {
	a.vers.Reset()
	for _, d := range a.decs {
		d.Reset()
	}
}

// ArenaPool recycles VersionArenas whose versions have all been vacuumed.
//
// Reclamation fence: a fully released arena is not reusable immediately.
// Vacuum's contract lets a reader that entered before the watermark keep
// walking the (now unlinked) suffix; handing that memory to a new epoch
// right away would let the writer overwrite what the straggler is
// reading. Retired arenas therefore park in a limbo list, and Flush —
// called at the start of the *next* Memtable.Vacuum — moves them to the
// free pool. Any reader that could see an arena's versions started before
// the Vacuum that killed them, so by the time the next Vacuum begins
// (one full GC interval later, chosen ≥ the longest query) it has
// finished.
type ArenaPool struct {
	pool sync.Pool // *VersionArena, reset and ready to carve

	mu    sync.Mutex
	limbo []*VersionArena

	recycled atomic.Int64
}

// Get returns an arena ready to carve, pinned for the caller. The arena
// must be Unpinned when the caller is done carving.
func (p *ArenaPool) Get() *VersionArena {
	var a *VersionArena
	if v := p.pool.Get(); v != nil {
		a = v.(*VersionArena)
	} else {
		a = &VersionArena{pool: p}
	}
	a.live.Store(1) // pin bias
	return a
}

// retire parks a fully released arena in limbo until the next Flush.
func (p *ArenaPool) retire(a *VersionArena) {
	p.mu.Lock()
	p.limbo = append(p.limbo, a)
	p.mu.Unlock()
}

// Flush moves limbo arenas to the free pool, resetting their chunks.
// Memtable.Vacuum calls it at the start of every cycle; see the fence
// comment above for why recycling is deferred by one cycle.
func (p *ArenaPool) Flush() {
	p.mu.Lock()
	l := p.limbo
	p.limbo = nil
	p.mu.Unlock()
	for _, a := range l {
		a.reset()
		p.pool.Put(a)
		p.recycled.Add(1)
	}
}

// Recycled returns the number of arenas recycled through the pool so far.
// Test and monitoring helper.
func (p *ArenaPool) Recycled() int64 { return p.recycled.Load() }
