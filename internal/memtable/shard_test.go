package memtable

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestShardedScanOrder pins the k-way merge: a table whose keys are spread
// across many shards must still scan in ascending global key order, with
// bounds respected and early stop honoured.
func TestShardedScanOrder(t *testing.T) {
	tab := NewWithShards(8).Table(1)
	if tab.Shards() != 8 {
		t.Fatalf("Shards = %d, want 8", tab.Shards())
	}
	rng := rand.New(rand.NewSource(7))
	seen := map[uint64]bool{}
	var keys []uint64
	for i := 0; i < 5000; i++ {
		k := uint64(rng.Intn(1 << 20)) + 1
		if seen[k] {
			continue
		}
		seen[k] = true
		keys = append(keys, k)
		tab.GetOrCreate(k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	var got []uint64
	tab.Scan(0, ^uint64(0), func(k uint64, rec *Record) bool {
		if rec.Key != k {
			t.Fatalf("record key %d under scan key %d", rec.Key, k)
		}
		got = append(got, k)
		return true
	})
	if len(got) != len(keys) {
		t.Fatalf("scan returned %d keys, want %d", len(got), len(keys))
	}
	for i := range keys {
		if got[i] != keys[i] {
			t.Fatalf("merged scan order broken at %d: got %d want %d", i, got[i], keys[i])
		}
	}

	// Bounded scan stays inside [lo, hi] and misses nothing.
	lo, hi := keys[len(keys)/3], keys[2*len(keys)/3]
	want := 0
	for _, k := range keys {
		if k >= lo && k <= hi {
			want++
		}
	}
	n, prev := 0, uint64(0)
	tab.Scan(lo, hi, func(k uint64, _ *Record) bool {
		if k < lo || k > hi {
			t.Fatalf("key %d escaped [%d,%d]", k, lo, hi)
		}
		if k <= prev {
			t.Fatalf("bounded scan out of order: %d after %d", k, prev)
		}
		prev = k
		n++
		return true
	})
	if n != want {
		t.Fatalf("bounded scan visited %d keys, want %d", n, want)
	}

	// Early stop.
	n = 0
	tab.Scan(0, ^uint64(0), func(uint64, *Record) bool { n++; return n < 17 })
	if n != 17 {
		t.Fatalf("early stop visited %d, want 17", n)
	}

	if msg := tab.CheckInvariants(); msg != "" {
		t.Fatalf("invariants: %s", msg)
	}
}

// TestCheckInvariantsDetectsMisplacedKey makes sure the cross-shard
// disjointness check actually fires: a key planted in the wrong shard's
// tree must be reported.
func TestCheckInvariantsDetectsMisplacedKey(t *testing.T) {
	tab := NewWithShards(4).Table(1)
	key := uint64(12345)
	wrong := (tab.shardOf(key) + 1) & tab.mask
	tab.shards[wrong].t.insert(key, &Record{Key: key})
	if msg := tab.CheckInvariants(); msg == "" {
		t.Fatal("CheckInvariants missed a key planted in the wrong shard")
	}
}

// TestShardStress runs GetOrCreate writers against merged Scans and a
// Vacuum loop on one sharded table. It asserts no lost records, global
// scan order under concurrency, and clean invariants afterwards; run
// with -race it is the translate-vs-analytics-vs-GC interleaving check.
func TestShardStress(t *testing.T) {
	mt := NewWithShards(8)
	tab := mt.Table(1)
	const writers = 4
	const perWriter = 3000

	var stop atomic.Bool
	var writersWG, bgWG sync.WaitGroup

	// Writers: disjoint key ranges, each key gets a couple of versions.
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			base := uint64(w*perWriter) + 1
			for i := uint64(0); i < perWriter; i++ {
				rec := tab.GetOrCreate(base + i)
				rec.Append(&Version{TxnID: base + i, CommitTS: int64(i%10) + 1})
				rec.Append(&Version{TxnID: base + i, CommitTS: int64(i%10) + 2})
			}
		}(w)
	}

	// Scanners: whatever a merged scan observes must be ordered.
	for s := 0; s < 2; s++ {
		bgWG.Add(1)
		go func() {
			defer bgWG.Done()
			for !stop.Load() {
				prev := uint64(0)
				tab.Scan(0, ^uint64(0), func(k uint64, _ *Record) bool {
					if k <= prev {
						t.Errorf("concurrent scan out of order: %d after %d", k, prev)
						return false
					}
					prev = k
					return true
				})
			}
		}()
	}

	// Vacuum loop racing the writers and scanners.
	bgWG.Add(1)
	go func() {
		defer bgWG.Done()
		for !stop.Load() {
			mt.Vacuum(6)
			time.Sleep(time.Millisecond)
		}
	}()

	writersWG.Wait()
	stop.Store(true)
	bgWG.Wait()

	if got := tab.Len(); got != writers*perWriter {
		t.Fatalf("Len = %d, want %d", got, writers*perWriter)
	}
	if msg := tab.CheckInvariants(); msg != "" {
		t.Fatalf("invariants after stress: %s", msg)
	}
}

// TestAppendWritesCounterOrdering is the regression test for the
// writes-counter race: the counter is incremented before the new head is
// published, so a reader that walks the chain and THEN loads the counter
// must never see fewer counted writes than chain links. (The old code
// incremented after unlocking, so a reader could observe a head whose
// write was not yet counted; ATR's operation-sequence witness then
// mis-validated.) Run with -race.
func TestAppendWritesCounterOrdering(t *testing.T) {
	rec := &Record{Key: 1}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 1; i <= 5000; i++ {
			rec.Append(&Version{TxnID: uint64(i), CommitTS: int64(i)})
		}
	}()
	for {
		l := rec.ChainLen() // chain first,
		w := rec.Writes()   // counter second: w may only run ahead
		if int(w) < l {
			t.Fatalf("Writes() = %d < ChainLen() = %d: head published before count", w, l)
		}
		select {
		case <-done:
			if rec.Writes() != 5000 || rec.ChainLen() != 5000 {
				t.Fatalf("final writes %d chain %d, want 5000/5000", rec.Writes(), rec.ChainLen())
			}
			return
		default:
		}
	}
}
