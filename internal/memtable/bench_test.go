package memtable

import (
	"math/rand"
	"testing"

	"aets/internal/wal"
)

func BenchmarkGetOrCreate(b *testing.B) {
	mt := New()
	rng := rand.New(rand.NewSource(1))
	keys := make([]uint64, 1<<16)
	for i := range keys {
		keys[i] = rng.Uint64() % (1 << 18)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mt.Table(1).GetOrCreate(keys[i%len(keys)])
	}
}

func BenchmarkAppend(b *testing.B) {
	rec := &Record{Key: 1}
	vers := make([]*Version, 1024)
	for i := range vers {
		vers[i] = &Version{TxnID: uint64(i), CommitTS: int64(i),
			Columns: []wal.Column{{ID: 1, Value: make([]byte, 16)}}}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Append(vers[i%len(vers)])
	}
}

func BenchmarkVisible(b *testing.B) {
	rec := &Record{Key: 1}
	for i := 1; i <= 64; i++ {
		rec.Append(&Version{TxnID: uint64(i), CommitTS: int64(i * 10)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rec.Visible(int64((i%64+1)*10)) == nil {
			b.Fatal("version lost")
		}
	}
}

func BenchmarkVacuum(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		mt := New()
		for key := uint64(1); key <= 1000; key++ {
			rec := mt.Table(1).GetOrCreate(key)
			for ts := int64(1); ts <= 20; ts++ {
				rec.Append(&Version{TxnID: uint64(ts), CommitTS: ts})
			}
		}
		b.StartTimer()
		mt.Vacuum(15)
	}
}
