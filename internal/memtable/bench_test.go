package memtable

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"aets/internal/wal"
)

func BenchmarkGetOrCreate(b *testing.B) {
	mt := New()
	rng := rand.New(rand.NewSource(1))
	keys := make([]uint64, 1<<16)
	for i := range keys {
		keys[i] = rng.Uint64() % (1 << 18)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mt.Table(1).GetOrCreate(keys[i%len(keys)])
	}
}

// BenchmarkGetOrCreateParallel measures translate-phase index scaling: g
// goroutines hammer GetOrCreate on one 8-shard table, each with its own
// random key stream. On a multi-core host the sharded index should scale
// near-linearly where the old table-wide lock serialised; on a single
// hardware thread (GOMAXPROCS=1) the goroutines time-slice one core and
// the ratio stays ≈1 — the interesting number there is that adding
// goroutines does not *cost* anything.
func BenchmarkGetOrCreateParallel(b *testing.B) {
	for _, g := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("goroutines=%d", g), func(b *testing.B) {
			tab := NewWithShards(8).Table(1)
			streams := make([][]uint64, g)
			for w := range streams {
				rng := rand.New(rand.NewSource(int64(w + 1)))
				streams[w] = make([]uint64, 1<<15)
				for i := range streams[w] {
					streams[w][i] = rng.Uint64() % (1 << 18)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			per := b.N/g + 1
			for w := 0; w < g; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					keys := streams[w]
					for i := 0; i < per; i++ {
						tab.GetOrCreate(keys[i%len(keys)])
					}
				}(w)
			}
			wg.Wait()
		})
	}
}

// BenchmarkScanMerged prices the k-way merge against the single-tree fast
// path: a full-table ordered scan of 1<<16 records through 1 shard (no
// merge) and through 8 shards (heap-stitched).
func BenchmarkScanMerged(b *testing.B) {
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			tab := NewWithShards(shards).Table(1)
			rng := rand.New(rand.NewSource(3))
			for i := 0; i < 1<<16; i++ {
				tab.GetOrCreate(rng.Uint64() % (1 << 20))
			}
			n := tab.Len()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				seen := 0
				tab.Scan(0, ^uint64(0), func(uint64, *Record) bool {
					seen++
					return true
				})
				if seen != n {
					b.Fatalf("scan saw %d of %d records", seen, n)
				}
			}
		})
	}
}

func BenchmarkAppend(b *testing.B) {
	rec := &Record{Key: 1}
	vers := make([]*Version, 1024)
	for i := range vers {
		vers[i] = &Version{TxnID: uint64(i), CommitTS: int64(i),
			Columns: []wal.Column{{ID: 1, Value: make([]byte, 16)}}}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Append(vers[i%len(vers)])
	}
}

func BenchmarkVisible(b *testing.B) {
	rec := &Record{Key: 1}
	for i := 1; i <= 64; i++ {
		rec.Append(&Version{TxnID: uint64(i), CommitTS: int64(i * 10)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rec.Visible(int64((i%64+1)*10)) == nil {
			b.Fatal("version lost")
		}
	}
}

func BenchmarkVacuum(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		mt := New()
		for key := uint64(1); key <= 1000; key++ {
			rec := mt.Table(1).GetOrCreate(key)
			for ts := int64(1); ts <= 20; ts++ {
				rec.Append(&Version{TxnID: uint64(ts), CommitTS: ts})
			}
		}
		b.StartTimer()
		mt.Vacuum(15)
	}
}
