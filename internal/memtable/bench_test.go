package memtable

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"aets/internal/wal"
)

func BenchmarkGetOrCreate(b *testing.B) {
	mt := New()
	rng := rand.New(rand.NewSource(1))
	keys := make([]uint64, 1<<16)
	for i := range keys {
		keys[i] = rng.Uint64() % (1 << 18)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mt.Table(1).GetOrCreate(keys[i%len(keys)])
	}
}

// BenchmarkGetOrCreateParallel measures translate-phase index scaling: g
// goroutines hammer GetOrCreate on one 8-shard table, each with its own
// random key stream. On a multi-core host the sharded index should scale
// near-linearly where the old table-wide lock serialised; on a single
// hardware thread (GOMAXPROCS=1) the goroutines time-slice one core and
// the ratio stays ≈1 — the interesting number there is that adding
// goroutines does not *cost* anything.
func BenchmarkGetOrCreateParallel(b *testing.B) {
	for _, g := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("goroutines=%d", g), func(b *testing.B) {
			tab := NewWithShards(8).Table(1)
			streams := make([][]uint64, g)
			for w := range streams {
				rng := rand.New(rand.NewSource(int64(w + 1)))
				streams[w] = make([]uint64, 1<<15)
				for i := range streams[w] {
					streams[w][i] = rng.Uint64() % (1 << 18)
				}
			}
			// Pre-warm every stream key so the timed loop measures the
			// steady-state hit path. Without this, the table is built
			// during timing and the tree's splits and record slabs show
			// up as a per-op allocation cost that depends on b.N — the
			// higher-goroutine runs reported nonzero B/op purely because
			// their shorter per-goroutine loops amortised the build worse.
			for _, keys := range streams {
				for _, k := range keys {
					tab.GetOrCreate(k)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			per := b.N/g + 1
			for w := 0; w < g; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					keys := streams[w]
					for i := 0; i < per; i++ {
						tab.GetOrCreate(keys[i%len(keys)])
					}
				}(w)
			}
			wg.Wait()
		})
	}
}

// benchTable builds the shared scan-benchmark fixture: 1<<16 records with
// random keys below 1<<20 through the given shard count.
func benchTable(shards int) *Table {
	tab := NewWithShards(shards).Table(1)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1<<16; i++ {
		tab.GetOrCreate(rng.Uint64() % (1 << 20))
	}
	return tab
}

// scanBenchShards is the shard axis of the scan benchmarks: the full
// scaling curve from the single-tree fast path to 16-way merging.
var scanBenchShards = []int{1, 2, 4, 8, 16}

// BenchmarkScanMerged prices ordered scans across the shard scaling
// curve: full-range scans (which materialize and then ride the merged-scan
// view, the steady state of repeated analytical reads over a quiesced
// table) and narrow ~1/64th-range scans (which hit the merge cascade cold:
// a narrow scan does not materialize the view).
func BenchmarkScanMerged(b *testing.B) {
	for _, shards := range scanBenchShards {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			tab := benchTable(shards)
			n := tab.Len()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				seen := 0
				tab.Scan(0, ^uint64(0), func(uint64, *Record) bool {
					seen++
					return true
				})
				if seen != n {
					b.Fatalf("scan saw %d of %d records", seen, n)
				}
			}
		})
		b.Run(fmt.Sprintf("shards=%d/narrow", shards), func(b *testing.B) {
			tab := benchTable(shards)
			const lo, hi = uint64(1) << 19, uint64(1)<<19 + uint64(1)<<14
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tab.Scan(lo, hi, func(uint64, *Record) bool { return true })
			}
		})
	}
}

// BenchmarkScanCascade pins the raw merge cascade (mergeScan) with the
// view bypassed — the cost an ordered scan pays when the table changed
// since the last materialization. This is the number that regresses if
// the branchless merge loops do.
func BenchmarkScanCascade(b *testing.B) {
	for _, shards := range scanBenchShards {
		if shards == 1 {
			continue // no merge on the single-tree path
		}
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			tab := benchTable(shards)
			n := tab.Len()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				seen := 0
				for j := range tab.shards {
					tab.shards[j].mu.RLock()
				}
				m := tab.merge.Get().(*mergeScratch)
				tab.mergeScan(m, 0, ^uint64(0), func(uint64, *Record) bool {
					seen++
					return true
				})
				tab.putMerge(m)
				tab.runlockAll()
				if seen != n {
					b.Fatalf("scan saw %d of %d records", seen, n)
				}
			}
		})
	}
}

// BenchmarkScanAny prices the unordered variant: per-shard sequential
// walks, no merge, no view — the fast path for order-insensitive
// aggregates regardless of table churn.
func BenchmarkScanAny(b *testing.B) {
	for _, shards := range scanBenchShards {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			tab := benchTable(shards)
			n := tab.Len()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				seen := 0
				tab.ScanAny(0, ^uint64(0), func(uint64, *Record) bool {
					seen++
					return true
				})
				if seen != n {
					b.Fatalf("scan saw %d of %d records", seen, n)
				}
			}
		})
	}
}

// BenchmarkScanParallel prices the concurrent ordered scan (producers +
// loser-tree consumer). The fixture table is never fully Scan()ed, so the
// view stays unmaterialized and the parallel machinery itself is
// measured; on a single hardware thread it degrades to roughly the
// sequential cascade plus scheduling overhead.
func BenchmarkScanParallel(b *testing.B) {
	for _, shards := range []int{8, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			tab := benchTable(shards)
			n := tab.Len()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				seen := 0
				tab.ScanParallel(0, ^uint64(0), func(uint64, *Record) bool {
					seen++
					return true
				})
				if seen != n {
					b.Fatalf("scan saw %d of %d records", seen, n)
				}
			}
		})
	}
}

func BenchmarkAppend(b *testing.B) {
	rec := &Record{Key: 1}
	vers := make([]*Version, 1024)
	for i := range vers {
		vers[i] = &Version{TxnID: uint64(i), CommitTS: int64(i),
			Columns: []wal.Column{{ID: 1, Value: make([]byte, 16)}}}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Append(vers[i%len(vers)])
	}
}

func BenchmarkVisible(b *testing.B) {
	rec := &Record{Key: 1}
	for i := 1; i <= 64; i++ {
		rec.Append(&Version{TxnID: uint64(i), CommitTS: int64(i * 10)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rec.Visible(int64((i%64+1)*10)) == nil {
			b.Fatal("version lost")
		}
	}
}

func BenchmarkVacuum(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		mt := New()
		for key := uint64(1); key <= 1000; key++ {
			rec := mt.Table(1).GetOrCreate(key)
			for ts := int64(1); ts <= 20; ts++ {
				rec.Append(&Version{TxnID: uint64(ts), CommitTS: ts})
			}
		}
		b.StartTimer()
		mt.Vacuum(15)
	}
}
