// Package memtable implements the backup node's multi-version in-memory
// storage engine: a B+Tree per table whose records carry transaction-ID
// ordered version chains (paper §III-A, Figure 6).
//
// The paper describes one B+Tree per table behind one lock (§VI-A1). That
// serialises TPLR's translate phase — which the paper promises is "no
// dependency tracking, no locks" (§IV) — so this implementation splits
// every table into N key-hash shards (N = next power of two ≥ GOMAXPROCS),
// each with its own B+Tree and read/write mutex. Concurrent GetOrCreate
// calls on different shards never touch the same mutex; Scan stitches the
// shard iterators back together with a loser-tree merge (merge.go) so
// analytics queries keep seeing global key order, ScanAny visits shards
// one by one with zero merge cost for order-insensitive aggregates, and
// ScanParallel overlaps the shard walks with an order-preserving
// consumer (parallel.go).
package memtable

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"aets/internal/wal"
)

// Version is one committed after-image of a record. Versions form a
// newest-first singly linked chain; the chain is strictly decreasing in
// CommitTS, which equals the primary's commit order. The chain link is
// atomic because readers traverse lock-free while Vacuum truncates
// chains concurrently.
type Version struct {
	TxnID    uint64
	CommitTS int64
	Deleted  bool
	Columns  []wal.Column
	next     atomic.Pointer[Version] // next-older version

	// arena, when non-nil, is the epoch arena this version was carved
	// from; Vacuum releases the version back to it on unlink so the
	// arena's memory can be recycled once every version it issued is dead.
	arena *VersionArena
}

// Next returns the next-older version, or nil at the end of the chain.
func (v *Version) Next() *Version { return v.next.Load() }

// Record is one row of a table. The head of its version chain is an atomic
// pointer so that readers never block: Algorithm 1's short exclusive lock is
// needed only to serialise writers, and within AETS each record is committed
// by exactly one group commit goroutine, so the mutex is uncontended in the
// common case.
type Record struct {
	Key uint64

	mu     sync.Mutex
	head   atomic.Pointer[Version]
	writes atomic.Uint64

	// hotAt points at the shard whose hot list tracks this record; set
	// once under the shard write lock when the record is created. hotFlag
	// reports whether the record is currently on that list (see hot.go).
	hotAt   *shard
	hotFlag atomic.Bool
}

// Append installs v as the newest version (Algorithm 1, lines 10-13).
//
// The writes counter is bumped before the new head is published, all inside
// the critical section: a concurrent reader that observes the new chain
// head is then guaranteed to observe the incremented count as well. (The
// previous ordering — increment after unlock — let ATR's operation-sequence
// witness see a head whose write was not yet counted and mis-validate.)
//
// A record transitioning from an empty chain to a non-empty one (its first
// version ever, or its first version after a columnar freeze emptied the
// chain) registers itself on its shard's hot list, which is how the
// columnar compactor and the query planner's delta path enumerate records
// that carry in-memory versions without walking the whole tree.
func (r *Record) Append(v *Version) {
	r.mu.Lock()
	wasEmpty := r.head.Load() == nil
	v.next.Store(r.head.Load())
	r.writes.Add(1)
	r.head.Store(v)
	if wasEmpty {
		r.markHot()
	}
	r.mu.Unlock()
}

// Writes returns the number of versions installed so far. ATR's operation
// sequence check compares it against an entry's WriteSeq witness.
func (r *Record) Writes() uint64 { return r.writes.Load() }

// Latest returns the newest version, or nil if the record has none yet.
func (r *Record) Latest() *Version {
	return r.head.Load()
}

// Visible returns the newest version with CommitTS ≤ qts (Algorithm 3,
// line 11), or nil if no such version exists.
func (r *Record) Visible(qts int64) *Version {
	for v := r.head.Load(); v != nil; v = v.Next() {
		if v.CommitTS <= qts {
			return v
		}
	}
	return nil
}

// ReadRow materialises the full column image of the record as of qts by
// merging after-images from the newest visible version back to the insert
// that created it. It returns nil if the record is invisible or deleted at
// qts.
func (r *Record) ReadRow(qts int64) map[uint32][]byte {
	v := r.Visible(qts)
	if v == nil || v.Deleted {
		return nil
	}
	row := make(map[uint32][]byte, len(v.Columns))
	for ; v != nil; v = v.Next() {
		if v.Deleted {
			break // versions older than a delete belong to a prior row
		}
		for _, c := range v.Columns {
			if _, ok := row[c.ID]; !ok {
				row[c.ID] = c.Value
			}
		}
	}
	return row
}

// ChainLen returns the number of versions in the chain. Test helper.
func (r *Record) ChainLen() int {
	n := 0
	for v := r.head.Load(); v != nil; v = v.Next() {
		n++
	}
	return n
}

// ChainOrdered reports whether the version chain is newest-first ordered by
// (CommitTS, TxnID) compared lexicographically: TxnID only breaks CommitTS
// ties. A chain whose CommitTS strictly decreases is ordered regardless of
// how the TxnIDs relate. Equal pairs are permitted for adjacent versions
// because one transaction may modify the same row more than once; its
// versions then appear in entry order. Test helper for the core MVCC
// invariant.
func (r *Record) ChainOrdered() bool {
	v := r.head.Load()
	for v != nil && v.Next() != nil {
		n := v.Next()
		if v.CommitTS < n.CommitTS || (v.CommitTS == n.CommitTS && v.TxnID < n.TxnID) {
			return false
		}
		v = n
	}
	return true
}

// ---------------------------------------------------------------------------
// Shard-lock wait observability.

// WaitObserver receives the time a caller spent blocked acquiring a shard
// lock. metrics.Histogram satisfies it; memtable deliberately does not
// import the metrics package.
type WaitObserver interface {
	Observe(time.Duration)
}

// obsHook is the shared, swappable wait observer. Every Table of a
// Memtable points at the same hook, so SetWaitObserver takes effect for
// tables created before and after the call.
type obsHook struct {
	o atomic.Pointer[WaitObserver]
}

// rlock acquires mu for reading. The TryRLock fast path keeps the
// uncontended case free of clock reads; only a blocked acquisition is
// timed and reported.
func (h *obsHook) rlock(mu *sync.RWMutex) {
	if mu.TryRLock() {
		return
	}
	op := h.o.Load()
	if op == nil {
		mu.RLock()
		return
	}
	t0 := time.Now()
	mu.RLock()
	(*op).Observe(time.Since(t0))
}

// lock is rlock for the write lock.
func (h *obsHook) lock(mu *sync.RWMutex) {
	if mu.TryLock() {
		return
	}
	op := h.o.Load()
	if op == nil {
		mu.Lock()
		return
	}
	t0 := time.Now()
	mu.Lock()
	(*op).Observe(time.Since(t0))
}

// ---------------------------------------------------------------------------
// Sharded table.

// shard is one key-hash partition of a table: its own B+Tree behind its
// own lock. Padding keeps neighbouring shards' mutexes off one cache line
// so contended CAS traffic on shard i does not invalidate shard i+1.
type shard struct {
	mu sync.RWMutex
	t  *tree
	_  [96]byte

	// hot lists records of this shard that carry an in-memory version
	// chain (see hot.go). It is an over-approximation maintained under
	// its own mutex so the Append fast path never touches mu.
	hotMu sync.Mutex
	hot   []*Record
}

// Table is the sharded B+Tree index of one table's records.
type Table struct {
	ID wal.TableID

	mask   uint64
	shards []shard
	obs    *obsHook

	// merge and par pool the scratch state of Scan and ScanParallel
	// (iterators, loser-tree nodes, chunk rings) so repeated scans run
	// allocation-free. Per-table pools keep the scratch sized to this
	// table's shard count.
	merge sync.Pool // *mergeScratch
	par   sync.Pool // *parScratch

	// view caches the merged key order of all shards between table
	// growths; see view.go.
	view atomic.Pointer[mergedView]
}

// newTable builds a table with n shards (n must be a power of two).
func newTable(id wal.TableID, n int, obs *obsHook) *Table {
	t := &Table{ID: id, mask: uint64(n - 1), shards: make([]shard, n), obs: obs}
	for i := range t.shards {
		t.shards[i].t = newTree()
	}
	t.merge.New = func() any { return newMergeScratch(len(t.shards)) }
	t.par.New = func() any { return newParScratch(len(t.shards)) }
	return t
}

// shardOf maps a row key to its shard index. Row keys are often dense
// (sequential order IDs) or structured (warehouse*K+district), so the key
// is mixed through a splitmix64 finalizer before masking; without it,
// dense key ranges would pile onto a few shards.
func (t *Table) shardOf(key uint64) uint64 {
	key ^= key >> 30
	key *= 0xbf58476d1ce4e5b9
	key ^= key >> 27
	key *= 0x94d049bb133111eb
	key ^= key >> 31
	return key & t.mask
}

// Shards returns the number of key-hash shards. Test and monitoring helper.
func (t *Table) Shards() int { return len(t.shards) }

// Get returns the record with the given row key, or nil.
func (t *Table) Get(key uint64) *Record {
	s := &t.shards[t.shardOf(key)]
	t.obs.rlock(&s.mu)
	rec := s.t.get(key)
	s.mu.RUnlock()
	return rec
}

// GetOrCreate returns the record with the given row key, creating an empty
// record (no versions) if absent. TPLR's first phase uses this to resolve
// the Memtable node an uncommitted cell will point at. Calls for keys on
// different shards proceed in parallel with no shared lock.
func (t *Table) GetOrCreate(key uint64) *Record {
	s := &t.shards[t.shardOf(key)]
	t.obs.rlock(&s.mu)
	rec := s.t.get(key)
	s.mu.RUnlock()
	if rec != nil {
		return rec
	}
	t.obs.lock(&s.mu)
	rec, created := s.t.getOrCreate(key)
	if created {
		rec.hotAt = s
	}
	s.mu.Unlock()
	return rec
}

// Scan (ordered), ScanAny (unordered) and ScanParallel (ordered,
// concurrent shard walks) live in merge.go and parallel.go.

// Len returns the number of records in the table.
func (t *Table) Len() int {
	n := 0
	for i := range t.shards {
		s := &t.shards[i]
		t.obs.rlock(&s.mu)
		n += s.t.len()
		s.mu.RUnlock()
	}
	return n
}

// CheckInvariants verifies the B+Tree structural invariants of every shard
// and the cross-shard key partition: each key must live in exactly the
// shard its hash selects, which is what makes the merged Scan's "no
// tie-break" and disjoint-coverage assumptions sound. Test helper; it
// returns "" when the table is well-formed.
func (t *Table) CheckInvariants() string {
	for i := range t.shards {
		s := &t.shards[i]
		t.obs.rlock(&s.mu)
		msg := s.t.checkInvariants()
		if msg == "" {
			s.t.scan(0, ^uint64(0), func(key uint64, _ *Record) bool {
				if want := t.shardOf(key); want != uint64(i) {
					msg = fmt.Sprintf("key %d found in shard %d, hashes to shard %d", key, i, want)
					return false
				}
				return true
			})
		}
		s.mu.RUnlock()
		if msg != "" {
			return fmt.Sprintf("shard %d: %s", i, msg)
		}
	}
	return ""
}

// ---------------------------------------------------------------------------
// Memtable: the set of tables.

// tableMap is the copy-on-write table index. Lookups are a single atomic
// pointer load; the map itself is never mutated after publication.
type tableMap = map[wal.TableID]*Table

// Memtable is the set of tables of the backup database.
type Memtable struct {
	tables  atomic.Pointer[tableMap]
	mu      sync.Mutex // serialises table creation (rare)
	nshards int
	obs     obsHook
	arenas  ArenaPool
}

// New returns an empty Memtable whose tables carry the default shard
// count: the next power of two ≥ GOMAXPROCS, so that a full complement of
// replay workers can translate without colliding on a shard lock.
func New() *Memtable {
	return NewWithShards(defaultShards())
}

// NewWithShards returns an empty Memtable with an explicit per-table shard
// count (rounded up to a power of two, minimum 1). Tests and benchmarks
// use it to pin the shard layout regardless of the host.
func NewWithShards(n int) *Memtable {
	m := &Memtable{nshards: nextPow2(n)}
	empty := tableMap{}
	m.tables.Store(&empty)
	return m
}

func defaultShards() int {
	return nextPow2(runtime.GOMAXPROCS(0))
}

func nextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// SetWaitObserver installs o as the shard-lock wait observer: every time a
// lock acquisition on any shard of any table blocks, the wait duration is
// reported to o. A nil o disables observation. Takes effect immediately
// for existing tables.
func (m *Memtable) SetWaitObserver(o WaitObserver) {
	if o == nil {
		m.obs.o.Store(nil)
		return
	}
	m.obs.o.Store(&o)
}

// Arenas returns the Memtable's version-arena pool. Replay carves epoch
// version slabs from it; Vacuum drives the recycling.
func (m *Memtable) Arenas() *ArenaPool { return &m.arenas }

// Table returns the table with the given ID, creating it if absent. The
// lookup is a lock-free atomic pointer load over a copy-on-write map —
// table creation is rare (schema-sized), lookups happen per replayed log
// entry.
func (m *Memtable) Table(id wal.TableID) *Table {
	if t := (*m.tables.Load())[id]; t != nil {
		return t
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	old := *m.tables.Load()
	if t := old[id]; t != nil {
		return t
	}
	t := newTable(id, m.nshards, &m.obs)
	next := make(tableMap, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[id] = t
	m.tables.Store(&next)
	return t
}

// Tables returns a snapshot of all table IDs currently present.
func (m *Memtable) Tables() []wal.TableID {
	tabs := *m.tables.Load()
	out := make([]wal.TableID, 0, len(tabs))
	for id := range tabs {
		out = append(out, id)
	}
	return out
}
