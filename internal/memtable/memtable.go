// Package memtable implements the backup node's multi-version in-memory
// storage engine: a B+Tree per table whose records carry transaction-ID
// ordered version chains (paper §III-A, Figure 6).
package memtable

import (
	"sync"
	"sync/atomic"

	"aets/internal/wal"
)

// Version is one committed after-image of a record. Versions form a
// newest-first singly linked chain; the chain is strictly decreasing in
// CommitTS, which equals the primary's commit order. The chain link is
// atomic because readers traverse lock-free while Vacuum truncates
// chains concurrently.
type Version struct {
	TxnID    uint64
	CommitTS int64
	Deleted  bool
	Columns  []wal.Column
	next     atomic.Pointer[Version] // next-older version
}

// Next returns the next-older version, or nil at the end of the chain.
func (v *Version) Next() *Version { return v.next.Load() }

// Record is one row of a table. The head of its version chain is an atomic
// pointer so that readers never block: Algorithm 1's short exclusive lock is
// needed only to serialise writers, and within AETS each record is committed
// by exactly one group commit goroutine, so the mutex is uncontended in the
// common case.
type Record struct {
	Key uint64

	mu     sync.Mutex
	head   atomic.Pointer[Version]
	writes atomic.Uint64
}

// Append installs v as the newest version (Algorithm 1, lines 10-13).
func (r *Record) Append(v *Version) {
	r.mu.Lock()
	v.next.Store(r.head.Load())
	r.head.Store(v)
	r.mu.Unlock()
	r.writes.Add(1)
}

// Writes returns the number of versions installed so far. ATR's operation
// sequence check compares it against an entry's WriteSeq witness.
func (r *Record) Writes() uint64 { return r.writes.Load() }

// Latest returns the newest version, or nil if the record has none yet.
func (r *Record) Latest() *Version {
	return r.head.Load()
}

// Visible returns the newest version with CommitTS ≤ qts (Algorithm 3,
// line 11), or nil if no such version exists.
func (r *Record) Visible(qts int64) *Version {
	for v := r.head.Load(); v != nil; v = v.Next() {
		if v.CommitTS <= qts {
			return v
		}
	}
	return nil
}

// ReadRow materialises the full column image of the record as of qts by
// merging after-images from the newest visible version back to the insert
// that created it. It returns nil if the record is invisible or deleted at
// qts.
func (r *Record) ReadRow(qts int64) map[uint32][]byte {
	v := r.Visible(qts)
	if v == nil || v.Deleted {
		return nil
	}
	row := make(map[uint32][]byte, len(v.Columns))
	for ; v != nil; v = v.Next() {
		if v.Deleted {
			break // versions older than a delete belong to a prior row
		}
		for _, c := range v.Columns {
			if _, ok := row[c.ID]; !ok {
				row[c.ID] = c.Value
			}
		}
	}
	return row
}

// ChainLen returns the number of versions in the chain. Test helper.
func (r *Record) ChainLen() int {
	n := 0
	for v := r.head.Load(); v != nil; v = v.Next() {
		n++
	}
	return n
}

// ChainOrdered reports whether the version chain is newest-first ordered by
// (CommitTS, TxnID) compared lexicographically: TxnID only breaks CommitTS
// ties. A chain whose CommitTS strictly decreases is ordered regardless of
// how the TxnIDs relate. Equal pairs are permitted for adjacent versions
// because one transaction may modify the same row more than once; its
// versions then appear in entry order. Test helper for the core MVCC
// invariant.
func (r *Record) ChainOrdered() bool {
	v := r.head.Load()
	for v != nil && v.Next() != nil {
		n := v.Next()
		if v.CommitTS < n.CommitTS || (v.CommitTS == n.CommitTS && v.TxnID < n.TxnID) {
			return false
		}
		v = n
	}
	return true
}

// Table is the B+Tree index of one table's records.
type Table struct {
	ID wal.TableID

	mu sync.RWMutex
	t  *tree
}

// Get returns the record with the given row key, or nil.
func (t *Table) Get(key uint64) *Record {
	t.mu.RLock()
	rec := t.t.get(key)
	t.mu.RUnlock()
	return rec
}

// GetOrCreate returns the record with the given row key, creating an empty
// record (no versions) if absent. TPLR's first phase uses this to resolve
// the Memtable node an uncommitted cell will point at.
func (t *Table) GetOrCreate(key uint64) *Record {
	t.mu.RLock()
	rec := t.t.get(key)
	t.mu.RUnlock()
	if rec != nil {
		return rec
	}
	t.mu.Lock()
	rec, _ = t.t.getOrCreate(key)
	t.mu.Unlock()
	return rec
}

// Scan visits records with from ≤ key ≤ to in key order until fn returns
// false. Records created concurrently may or may not be observed.
func (t *Table) Scan(from, to uint64, fn func(key uint64, rec *Record) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.t.scan(from, to, fn)
}

// Len returns the number of records in the table.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.t.len()
}

// CheckInvariants verifies B+Tree structural invariants. Test helper; it
// returns "" when the tree is well-formed.
func (t *Table) CheckInvariants() string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.t.checkInvariants()
}

// Memtable is the set of tables of the backup database.
type Memtable struct {
	mu     sync.RWMutex
	tables map[wal.TableID]*Table
}

// New returns an empty Memtable.
func New() *Memtable {
	return &Memtable{tables: make(map[wal.TableID]*Table)}
}

// Table returns the table with the given ID, creating it if absent.
func (m *Memtable) Table(id wal.TableID) *Table {
	m.mu.RLock()
	t := m.tables[id]
	m.mu.RUnlock()
	if t != nil {
		return t
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if t = m.tables[id]; t == nil {
		t = &Table{ID: id, t: newTree()}
		m.tables[id] = t
	}
	return t
}

// Tables returns a snapshot of all table IDs currently present.
func (m *Memtable) Tables() []wal.TableID {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]wal.TableID, 0, len(m.tables))
	for id := range m.tables {
		out = append(out, id)
	}
	return out
}
