package memtable

// view.go implements the merged-scan view: an adaptive, lazily
// materialized projection of a sharded table's merged key order. The
// cascade in merge.go makes one ordered pass over k shards ~2.5x cheaper
// than the old iterator heap, but any k-way merge still pays log k
// comparisons per record; analytical readers that scan the same table
// repeatedly between replay batches should not pay the merge more than
// once. The view is that memo: one flat (key, record-pointer) pair per
// record, in global key order, built by a single cascade pass during a
// full-range Scan and served to every later ordered scan — full or
// narrow (narrow ranges become a binary search plus a contiguous walk) —
// until the table changes.
//
// Validity is keyed on table length. Records are never deleted from the
// index (Vacuum prunes versions inside records, not records), so a
// table's key set grows monotonically and its size uniquely identifies
// the set along the table's history; version appends mutate record
// contents behind the cached *Record pointers, never the key→record
// mapping. A cheap sum of shard sizes therefore decides staleness with
// zero bookkeeping on the write path. This is the two-stage replay
// pattern in miniature: while a replay batch is being applied the view
// goes stale and ordered scans fall back to the cascade; once the table
// quiesces, the first full scan re-materializes and subsequent analytical
// reads run at single-tree speed.
//
// Memory: 16 bytes per record, reclaimed when a rebuilt view replaces a
// stale one. The record pointers pin only slab-carved records that live
// exactly as long as the table itself.

import "sort"

// mergedView is one immutable materialization. n is the table length at
// build time; the view is valid exactly while the table still holds n
// records.
type mergedView struct {
	n    int
	keys []uint64
	recs []*Record
}

// emit walks the view's [from, to] subrange in key order until fn stops
// it. No sentinel games: the view path never reserves ^uint64(0).
func (v *mergedView) emit(from, to uint64, fn func(key uint64, rec *Record) bool) {
	keys := v.keys
	i := sort.Search(len(keys), func(j int) bool { return keys[j] >= from })
	for ; i < len(keys) && keys[i] <= to; i++ {
		if !fn(keys[i], v.recs[i]) {
			return
		}
	}
}

// lenShardsHeld sums shard sizes. Caller must hold every shard lock (read
// or write); Table.Len is the locking variant.
func (t *Table) lenShardsHeld() int {
	n := 0
	for i := range t.shards {
		n += t.shards[i].t.len()
	}
	return n
}

// buildView materializes the merged order with one cascade pass and
// publishes it. Caller holds every shard read lock, so the length
// captured here is consistent with the pass. Concurrent full scans may
// race to build; either result is correct and the loser's work is merely
// wasted (shard read locks are shared).
func (t *Table) buildView() *mergedView {
	n := t.lenShardsHeld()
	v := &mergedView{
		n:    n,
		keys: make([]uint64, 0, n),
		recs: make([]*Record, 0, n),
	}
	if n > 0 {
		m := t.merge.Get().(*mergeScratch)
		t.mergeScan(m, 0, ^uint64(0), func(k uint64, r *Record) bool {
			v.keys = append(v.keys, k)
			v.recs = append(v.recs, r)
			return true
		})
		t.putMerge(m)
	}
	t.view.Store(v)
	return v
}
