package memtable

import (
	"testing"

	"aets/internal/wal"
)

func hotVersion(ts int64, cols ...wal.Column) *Version {
	return &Version{TxnID: uint64(ts), CommitTS: ts, Columns: cols}
}

// TestHotTracking pins the hot-list invariant: a record joins its shard's
// hot list on the empty→non-empty chain transition, leaves it (flag-wise)
// on FreezeCommit, and rejoins when re-dirtied.
func TestHotTracking(t *testing.T) {
	tab := New().Table(1)
	r := tab.GetOrCreate(42)
	if r.Hot() {
		t.Fatal("fresh record with empty chain must not be hot")
	}
	r.Append(hotVersion(10))
	if !r.Hot() {
		t.Fatal("record with a chain must be hot")
	}
	if got := tab.HotLen(); got != 1 {
		t.Fatalf("HotLen = %d, want 1", got)
	}

	h0 := r.Latest()
	froze, released := r.FreezeCommit(h0, 10)
	if !froze || released != 1 {
		t.Fatalf("FreezeCommit = (%v, %d), want (true, 1)", froze, released)
	}
	if r.Hot() || r.Latest() != nil {
		t.Fatal("frozen record must have empty chain and clear hot flag")
	}
	tab.PruneHot()
	if got := tab.HotLen(); got != 0 {
		t.Fatalf("HotLen after prune = %d, want 0", got)
	}

	// Re-dirty: back on the list, and HotRecords may legally hold the
	// record once (it was pruned) — consumers dedupe regardless.
	r.Append(hotVersion(20))
	if !r.Hot() {
		t.Fatal("re-dirtied record must be hot again")
	}
	recs := tab.HotRecords(nil)
	if len(recs) != 1 || recs[0] != r {
		t.Fatalf("HotRecords = %v, want [r]", recs)
	}
}

// TestFreezeCommitRaceFallback pins the freeze-vs-append race: when the
// head moved past the snapshot the segment row was built from, the commit
// degrades to a plain Vacuum and the record stays hot.
func TestFreezeCommitRaceFallback(t *testing.T) {
	tab := New().Table(1)
	r := tab.GetOrCreate(7)
	r.Append(hotVersion(10))
	h0 := r.Latest()
	r.Append(hotVersion(20)) // racing writer

	froze, _ := r.FreezeCommit(h0, 10)
	if froze {
		t.Fatal("FreezeCommit must not freeze after the head moved")
	}
	if !r.Hot() {
		t.Fatal("record must stay hot after the fallback")
	}
	// Vacuum fallback: chain keeps [20, 10] — h0 is the newest version at
	// or below the watermark, exactly the image the segment row holds.
	if v := r.Latest(); v == nil || v.CommitTS != 20 {
		t.Fatalf("head = %v, want ts 20", v)
	}
	if v := r.Latest().Next(); v != h0 || v.Next() != nil {
		t.Fatal("chain below head must be exactly h0")
	}
}

// TestGetOrCreateHitPathAllocs pins the index hit path at zero
// allocations: once a key exists, GetOrCreate must not allocate
// (satellite of the GetOrCreateParallel benchmark fix — the B/op the
// benchmark used to report came from table growth during timing, not
// from the hit path).
func TestGetOrCreateHitPathAllocs(t *testing.T) {
	tab := NewWithShards(8).Table(1)
	keys := make([]uint64, 1024)
	for i := range keys {
		keys[i] = uint64(i * 2654435761)
		tab.GetOrCreate(keys[i])
	}
	i := 0
	allocs := testing.AllocsPerRun(4096, func() {
		tab.GetOrCreate(keys[i&1023])
		i++
	})
	if allocs != 0 {
		t.Fatalf("GetOrCreate hit path allocates %.1f/op, want 0", allocs)
	}
}
