package memtable

// bptree.go implements the in-memory B+Tree the paper uses as the storage
// engine of the backup node (§VI-A1: "The Memtable utilizes a B+Tree as the
// in-memory storage engine"). Keys are uint64 row keys; values are *Record.
//
// The tree itself is not internally synchronised: Table wraps it with a
// read/write mutex, while Record handles version-level concurrency.

const (
	// degree is the maximum number of children of an internal node. Leaves
	// hold up to degree-1 keys. 64 keeps nodes around a cache line multiple
	// without making splits too frequent.
	degree    = 64
	maxKeys   = degree - 1
	minKeys   = maxKeys / 2 // applies to all nodes except the root
	leafSplit = (maxKeys + 1) / 2
)

type node struct {
	// keys holds maxKeys slots; n of them are in use.
	keys [maxKeys]uint64
	n    int

	// Internal nodes use children (n+1 in use); leaves use values (n in
	// use) and next for ordered scans.
	children [degree]*node
	values   [maxKeys]*Record
	leaf     bool
	next     *node
}

// tree is a B+Tree mapping row keys to records.
type tree struct {
	root *node
	size int

	// recs is the current record slab: records are carved from chunks
	// instead of being allocated one by one, because record creation is
	// the translate path's dominant allocation (one per new row key) and
	// records live exactly as long as their tree. A full chunk is simply
	// replaced — records already handed out keep pointing into it.
	recs []Record
}

func newTree() *tree {
	return &tree{root: &node{leaf: true}}
}

// recSlabMin/Max bound the record chunk size: chunks double as the tree
// grows so a large table settles on few big allocations, capped so one
// chunk stays well under the large-object threshold.
const (
	recSlabMin = 64
	recSlabMax = 8192
)

// newRecord carves a record from the slab. Caller holds the shard write
// lock.
func (t *tree) newRecord(key uint64) *Record {
	if len(t.recs) == cap(t.recs) {
		c := 2 * cap(t.recs)
		if c < recSlabMin {
			c = recSlabMin
		}
		if c > recSlabMax {
			c = recSlabMax
		}
		t.recs = make([]Record, 0, c)
	}
	t.recs = append(t.recs, Record{Key: key})
	return &t.recs[len(t.recs)-1]
}

// get returns the record for key, or nil.
func (t *tree) get(key uint64) *Record {
	n := t.root
	for !n.leaf {
		n = n.children[n.childIndex(key)]
	}
	i, ok := n.search(key)
	if !ok {
		return nil
	}
	return n.values[i]
}

// getOrCreate returns the record for key, inserting a fresh empty record if
// none exists. created reports whether an insert happened.
func (t *tree) getOrCreate(key uint64) (rec *Record, created bool) {
	if r := t.get(key); r != nil {
		return r, false
	}
	rec = t.newRecord(key)
	t.insert(key, rec)
	return rec, true
}

// insert adds key→rec. The caller must ensure key is absent.
func (t *tree) insert(key uint64, rec *Record) {
	if t.root.n == maxKeys {
		old := t.root
		t.root = &node{}
		t.root.children[0] = old
		t.root.splitChild(0)
	}
	t.root.insertNonFull(key, rec)
	t.size++
}

// scan visits records with from ≤ key ≤ to in ascending key order until fn
// returns false. It reports whether the range was exhausted (false means
// fn stopped the scan early) so multi-shard callers can propagate early
// stop without a wrapper closure.
func (t *tree) scan(from, to uint64, fn func(key uint64, rec *Record) bool) bool {
	n := t.root
	for !n.leaf {
		n = n.children[n.childIndex(from)]
	}
	for n != nil {
		for i := 0; i < n.n; i++ {
			k := n.keys[i]
			if k < from {
				continue
			}
			if k > to {
				return true
			}
			if !fn(k, n.values[i]) {
				return false
			}
		}
		n = n.next
	}
	return true
}

// len returns the number of records in the tree.
func (t *tree) len() int { return t.size }

// treeIter is an explicit cursor over a tree's leaf chain, used by the
// sharded Table's k-way merged Scan. The caller must hold the tree's shard
// lock for the iterator's whole lifetime.
type treeIter struct {
	n *node
	i int
}

// seek returns an iterator positioned at the first key ≥ from.
func (t *tree) seek(from uint64) treeIter {
	n := t.root
	for !n.leaf {
		n = n.children[n.childIndex(from)]
	}
	i, _ := n.search(from)
	it := treeIter{n: n, i: i}
	it.skipExhausted()
	return it
}

// skipExhausted advances past leaves whose in-use keys are consumed.
func (it *treeIter) skipExhausted() {
	for it.n != nil && it.i >= it.n.n {
		it.n = it.n.next
		it.i = 0
	}
}

// valid reports whether the iterator points at a record.
func (it *treeIter) valid() bool { return it.n != nil }

func (it *treeIter) key() uint64  { return it.n.keys[it.i] }
func (it *treeIter) rec() *Record { return it.n.values[it.i] }

// next advances to the following key in ascending order.
func (it *treeIter) next() {
	it.i++
	it.skipExhausted()
}

// childIndex returns the index of the child subtree that may contain key.
// Internal-node semantics: child i holds keys < keys[i]; the last child
// holds keys ≥ keys[n-1].
func (n *node) childIndex(key uint64) int {
	lo, hi := 0, n.n
	for lo < hi {
		mid := (lo + hi) / 2
		if key < n.keys[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// search finds key among the node's keys.
func (n *node) search(key uint64) (int, bool) {
	lo, hi := 0, n.n
	for lo < hi {
		mid := (lo + hi) / 2
		if n.keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < n.n && n.keys[lo] == key
}

// splitChild splits the full child at index i, promoting its separator key.
func (n *node) splitChild(i int) {
	child := n.children[i]
	right := &node{leaf: child.leaf}

	var sep uint64
	if child.leaf {
		// Leaf split: right keeps the upper half including the separator;
		// the separator is copied (not moved) up, B+Tree style.
		right.n = child.n - leafSplit
		copy(right.keys[:], child.keys[leafSplit:child.n])
		copy(right.values[:], child.values[leafSplit:child.n])
		child.n = leafSplit
		right.next = child.next
		child.next = right
		sep = right.keys[0]
	} else {
		mid := child.n / 2
		sep = child.keys[mid]
		right.n = child.n - mid - 1
		copy(right.keys[:], child.keys[mid+1:child.n])
		copy(right.children[:], child.children[mid+1:child.n+1])
		child.n = mid
	}

	// Shift n's keys/children right to make room at i.
	copy(n.keys[i+1:n.n+1], n.keys[i:n.n])
	copy(n.children[i+2:n.n+2], n.children[i+1:n.n+1])
	n.keys[i] = sep
	n.children[i+1] = right
	n.n++
}

// insertNonFull inserts into a node known to have spare capacity.
func (n *node) insertNonFull(key uint64, rec *Record) {
	for !n.leaf {
		i := n.childIndex(key)
		if n.children[i].n == maxKeys {
			n.splitChild(i)
			if key >= n.keys[i] {
				i++
			}
		}
		n = n.children[i]
	}
	i, _ := n.search(key)
	copy(n.keys[i+1:n.n+1], n.keys[i:n.n])
	copy(n.values[i+1:n.n+1], n.values[i:n.n])
	n.keys[i] = key
	n.values[i] = rec
	n.n++
}

// checkInvariants walks the tree verifying ordering and occupancy rules.
// Used only by tests; returns a description of the first violation found.
func (t *tree) checkInvariants() string {
	var walk func(n *node, lo, hi uint64, root bool) string
	walk = func(n *node, lo, hi uint64, root bool) string {
		if !root && n.n < minKeys && !n.leaf {
			return "internal node underfull"
		}
		for i := 1; i < n.n; i++ {
			if n.keys[i-1] >= n.keys[i] {
				return "keys out of order"
			}
		}
		for i := 0; i < n.n; i++ {
			if n.keys[i] < lo || n.keys[i] > hi {
				return "key outside subtree bounds"
			}
		}
		if n.leaf {
			return ""
		}
		for i := 0; i <= n.n; i++ {
			clo, chi := lo, hi
			if i > 0 {
				clo = n.keys[i-1]
			}
			if i < n.n {
				if n.keys[i] == 0 {
					return "zero separator"
				}
				chi = n.keys[i] - 1
			}
			if s := walk(n.children[i], clo, chi, false); s != "" {
				return s
			}
		}
		return ""
	}
	return walk(t.root, 0, ^uint64(0), true)
}
