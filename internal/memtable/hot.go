package memtable

// hot.go tracks which records carry an in-memory version chain — the "hot
// delta" the columnar store leaves behind. Freezing a record into a
// columnar segment empties its chain (FreezeCommit); the per-shard hot
// lists let the compactor find freeze candidates and let the query
// planner enumerate the delta without walking the whole tree, which is
// what keeps columnar scans O(segment + delta) instead of O(records).
//
// Invariant: every record whose chain is non-empty is on its shard's hot
// list. The list is an over-approximation — it may also hold records
// frozen since the last PruneHot, and a record can appear more than once
// if it was frozen and re-dirtied between prunes — so consumers sort by
// key and dedupe (keys are unique within a table, so equal keys mean the
// same record).

// markHot puts the record on its shard's hot list. Called with r.mu held,
// on the empty→non-empty chain transition; the CAS makes it idempotent.
// Records created outside a Table (unit-test trees) have no shard and are
// never tracked.
func (r *Record) markHot() {
	s := r.hotAt
	if s == nil || !r.hotFlag.CompareAndSwap(false, true) {
		return
	}
	s.hotMu.Lock()
	s.hot = append(s.hot, r)
	s.hotMu.Unlock()
}

// FreezeCommit is the commit point of freezing this record into a columnar
// segment: if the chain head is still h0 (the version the caller built the
// segment row from) and h0 is at or below the freeze watermark, the entire
// chain is unlinked, every version is released back to its arena, and the
// record drops off the hot list (flag only; PruneHot compacts the list).
//
// If a writer raced the freeze — the head moved past h0 — the segment row
// the caller already built is still a correct base image (it equals the
// version a Vacuum at the watermark would have kept), so the fallback is
// exactly that Vacuum: the chain keeps its post-watermark suffix plus h0,
// the record stays hot, and reads stitch the chain over the base row.
//
// Same safety contract as Vacuum: no reader may be traversing versions the
// watermark retires, and stragglers that already hold a chain pointer keep
// a consistent view until the arena fence recycles it.
func (r *Record) FreezeCommit(h0 *Version, watermark int64) (froze bool, released int) {
	r.mu.Lock()
	if h0 != nil && r.head.Load() == h0 && h0.CommitTS <= watermark {
		n := 0
		for v := h0; v != nil; v = v.Next() {
			n++
			if a := v.arena; a != nil {
				a.release(1)
			}
		}
		r.head.Store(nil)
		r.hotFlag.Store(false)
		r.mu.Unlock()
		return true, n
	}
	r.mu.Unlock()
	return false, r.Vacuum(watermark)
}

// Hot reports whether the record is currently on its shard's hot list.
// Test helper.
func (r *Record) Hot() bool { return r.hotFlag.Load() }

// HotRecords appends every hot record of the table to buf and returns it.
// The result is unordered and may contain recently-frozen stragglers and
// duplicates (see the file comment); callers sort by key and dedupe.
func (t *Table) HotRecords(buf []*Record) []*Record {
	for i := range t.shards {
		s := &t.shards[i]
		s.hotMu.Lock()
		buf = append(buf, s.hot...)
		s.hotMu.Unlock()
	}
	return buf
}

// HotLen returns the current hot-list length across all shards (including
// stragglers not yet pruned). Monitoring helper.
func (t *Table) HotLen() int {
	n := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.hotMu.Lock()
		n += len(s.hot)
		s.hotMu.Unlock()
	}
	return n
}

// PruneHot compacts the hot lists, dropping entries whose records were
// frozen since the last prune. The compactor calls it once per pass, which
// bounds the straggler population between passes.
func (t *Table) PruneHot() {
	for i := range t.shards {
		s := &t.shards[i]
		s.hotMu.Lock()
		kept := s.hot[:0]
		for _, r := range s.hot {
			if r.hotFlag.Load() {
				kept = append(kept, r)
			}
		}
		for j := len(kept); j < len(s.hot); j++ {
			s.hot[j] = nil
		}
		s.hot = kept
		s.hotMu.Unlock()
	}
}
