package memtable

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"aets/internal/wal"
)

func TestBPTreeInsertGetQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := newTree()
		n := 1 + r.Intn(2000)
		keys := make(map[uint64]bool, n)
		for i := 0; i < n; i++ {
			k := uint64(r.Intn(5000)) + 1
			if keys[k] {
				continue
			}
			keys[k] = true
			tr.insert(k, &Record{Key: k})
		}
		if tr.len() != len(keys) {
			return false
		}
		if msg := tr.checkInvariants(); msg != "" {
			t.Logf("invariant: %s", msg)
			return false
		}
		for k := range keys {
			rec := tr.get(k)
			if rec == nil || rec.Key != k {
				return false
			}
		}
		// Absent keys must return nil.
		for i := 0; i < 50; i++ {
			k := uint64(r.Intn(5000)) + 6000
			if tr.get(k) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBPTreeScanOrder(t *testing.T) {
	tr := newTree()
	r := rand.New(rand.NewSource(11))
	var keys []uint64
	seen := map[uint64]bool{}
	for i := 0; i < 3000; i++ {
		k := uint64(r.Intn(100000)) + 1
		if seen[k] {
			continue
		}
		seen[k] = true
		keys = append(keys, k)
		tr.insert(k, &Record{Key: k})
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	var got []uint64
	tr.scan(0, ^uint64(0), func(k uint64, rec *Record) bool {
		got = append(got, k)
		return true
	})
	if len(got) != len(keys) {
		t.Fatalf("scan returned %d keys, want %d", len(got), len(keys))
	}
	for i := range keys {
		if got[i] != keys[i] {
			t.Fatalf("scan order broken at %d: got %d want %d", i, got[i], keys[i])
		}
	}

	// Bounded scan.
	lo, hi := keys[len(keys)/4], keys[3*len(keys)/4]
	var bounded []uint64
	tr.scan(lo, hi, func(k uint64, rec *Record) bool {
		bounded = append(bounded, k)
		return true
	})
	for _, k := range bounded {
		if k < lo || k > hi {
			t.Fatalf("scan leaked key %d outside [%d,%d]", k, lo, hi)
		}
	}
	want := 0
	for _, k := range keys {
		if k >= lo && k <= hi {
			want++
		}
	}
	if len(bounded) != want {
		t.Fatalf("bounded scan returned %d keys, want %d", len(bounded), want)
	}
}

func TestBPTreeScanEarlyStop(t *testing.T) {
	tr := newTree()
	for k := uint64(1); k <= 100; k++ {
		tr.insert(k, &Record{Key: k})
	}
	count := 0
	tr.scan(1, 100, func(k uint64, rec *Record) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Fatalf("early stop visited %d records, want 10", count)
	}
}

func TestGetOrCreateIdempotent(t *testing.T) {
	tab := NewWithShards(4).Table(1)
	a := tab.GetOrCreate(42)
	b := tab.GetOrCreate(42)
	if a != b {
		t.Fatal("GetOrCreate returned different records for the same key")
	}
	if tab.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tab.Len())
	}
}

func TestGetOrCreateConcurrent(t *testing.T) {
	mt := New()
	const goroutines = 8
	const keys = 500
	recs := make([][]*Record, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			recs[g] = make([]*Record, keys)
			for k := 0; k < keys; k++ {
				recs[g][k] = mt.Table(1).GetOrCreate(uint64(k + 1))
			}
		}(g)
	}
	wg.Wait()
	for k := 0; k < keys; k++ {
		for g := 1; g < goroutines; g++ {
			if recs[g][k] != recs[0][k] {
				t.Fatalf("key %d: goroutines obtained different records", k+1)
			}
		}
	}
	if mt.Table(1).Len() != keys {
		t.Fatalf("Len = %d, want %d", mt.Table(1).Len(), keys)
	}
	if msg := mt.Table(1).CheckInvariants(); msg != "" {
		t.Fatalf("tree invariant violated: %s", msg)
	}
}

func TestVersionChainVisibility(t *testing.T) {
	rec := &Record{Key: 1}
	for i := 1; i <= 5; i++ {
		rec.Append(&Version{TxnID: uint64(i), CommitTS: int64(i * 10),
			Columns: []wal.Column{{ID: 1, Value: []byte{byte(i)}}}})
	}
	if !rec.ChainOrdered() {
		t.Fatal("chain out of order")
	}
	if rec.ChainLen() != 5 {
		t.Fatalf("ChainLen = %d, want 5", rec.ChainLen())
	}
	cases := []struct {
		qts  int64
		want uint64 // expected TxnID; 0 = invisible
	}{
		{5, 0}, {10, 1}, {15, 1}, {30, 3}, {50, 5}, {1000, 5},
	}
	for _, c := range cases {
		v := rec.Visible(c.qts)
		switch {
		case c.want == 0 && v != nil:
			t.Fatalf("qts %d: want invisible, got txn %d", c.qts, v.TxnID)
		case c.want != 0 && (v == nil || v.TxnID != c.want):
			t.Fatalf("qts %d: want txn %d, got %+v", c.qts, c.want, v)
		}
	}
}

func TestReadRowMergesAfterImages(t *testing.T) {
	rec := &Record{Key: 1}
	rec.Append(&Version{TxnID: 1, CommitTS: 10, Columns: []wal.Column{
		{ID: 1, Value: []byte("a1")}, {ID: 2, Value: []byte("b1")}, {ID: 3, Value: []byte("c1")},
	}})
	rec.Append(&Version{TxnID: 2, CommitTS: 20, Columns: []wal.Column{
		{ID: 2, Value: []byte("b2")},
	}})
	rec.Append(&Version{TxnID: 3, CommitTS: 30, Columns: []wal.Column{
		{ID: 1, Value: []byte("a3")},
	}})

	row := rec.ReadRow(25)
	if string(row[1]) != "a1" || string(row[2]) != "b2" || string(row[3]) != "c1" {
		t.Fatalf("qts 25 row = %v", row)
	}
	row = rec.ReadRow(35)
	if string(row[1]) != "a3" || string(row[2]) != "b2" || string(row[3]) != "c1" {
		t.Fatalf("qts 35 row = %v", row)
	}
	if rec.ReadRow(5) != nil {
		t.Fatal("row visible before first commit")
	}
}

func TestReadRowStopsAtDelete(t *testing.T) {
	rec := &Record{Key: 1}
	rec.Append(&Version{TxnID: 1, CommitTS: 10, Columns: []wal.Column{{ID: 1, Value: []byte("old")}}})
	rec.Append(&Version{TxnID: 2, CommitTS: 20, Deleted: true})
	rec.Append(&Version{TxnID: 3, CommitTS: 30, Columns: []wal.Column{{ID: 2, Value: []byte("new")}}})

	if rec.ReadRow(25) != nil {
		t.Fatal("deleted row visible")
	}
	row := rec.ReadRow(35)
	if len(row) != 1 || string(row[2]) != "new" {
		t.Fatalf("reinserted row leaked pre-delete columns: %v", row)
	}
}

func TestMemtableTablesSnapshot(t *testing.T) {
	mt := New()
	mt.Table(3)
	mt.Table(1)
	mt.Table(2)
	ids := mt.Tables()
	if len(ids) != 3 {
		t.Fatalf("Tables() = %v", ids)
	}
}

func TestConcurrentAppendAndRead(t *testing.T) {
	// Readers walking the chain while a writer appends must never observe
	// a broken chain (run with -race).
	rec := &Record{Key: 1}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 1; i <= 2000; i++ {
			rec.Append(&Version{TxnID: uint64(i), CommitTS: int64(i)})
		}
	}()
	for {
		select {
		case <-done:
			if !rec.ChainOrdered() {
				t.Fatal("final chain out of order")
			}
			return
		default:
			if v := rec.Visible(1000); v != nil && v.CommitTS > 1000 {
				t.Fatal("Visible returned future version")
			}
		}
	}
}

// TestChainOrderedLexicographic pins the (CommitTS, TxnID) comparison:
// TxnID breaks ties only when CommitTS is equal. A chain whose CommitTS
// strictly decreases while TxnID increases (commit timestamps are not
// assigned in transaction-ID order under concurrency) is valid.
func TestChainOrderedLexicographic(t *testing.T) {
	chain := func(vs ...*Version) *Record {
		rec := &Record{Key: 1}
		for _, v := range vs {
			rec.Append(v)
		}
		return rec
	}
	// Appended oldest-first; the head ends up newest.
	cases := []struct {
		name string
		rec  *Record
		want bool
	}{
		{"strictly decreasing ts, increasing txn", chain(
			&Version{TxnID: 7, CommitTS: 3},
			&Version{TxnID: 1, CommitTS: 5},
		), true},
		{"equal ts, txn breaks tie", chain(
			&Version{TxnID: 1, CommitTS: 5},
			&Version{TxnID: 2, CommitTS: 5},
		), true},
		{"equal ts, equal txn (same txn twice)", chain(
			&Version{TxnID: 2, CommitTS: 5},
			&Version{TxnID: 2, CommitTS: 5},
		), true},
		{"commit ts regression", chain(
			&Version{TxnID: 1, CommitTS: 5},
			&Version{TxnID: 2, CommitTS: 3},
		), false},
		{"equal ts, txn regression", chain(
			&Version{TxnID: 2, CommitTS: 5},
			&Version{TxnID: 1, CommitTS: 5},
		), false},
	}
	for _, c := range cases {
		if got := c.rec.ChainOrdered(); got != c.want {
			t.Errorf("%s: ChainOrdered = %v, want %v", c.name, got, c.want)
		}
	}
}
