package memtable

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// refScan is the reference implementation the real scan variants are
// checked against: a flat map of every key ever inserted, filtered to
// [from, to] and (for ordered variants) sorted.
func refScan(keys map[uint64]bool, from, to uint64) []uint64 {
	out := make([]uint64, 0, len(keys))
	for k := range keys {
		if k >= from && k <= to {
			out = append(out, k)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// collect drives one scan variant and gathers the keys it emits,
// honoring an optional early-stop budget (limit < 0 means unlimited).
func collect(scan func(uint64, uint64, func(uint64, *Record) bool), from, to uint64, limit int) []uint64 {
	var got []uint64
	scan(from, to, func(k uint64, r *Record) bool {
		if r == nil {
			panic("scan emitted nil record")
		}
		got = append(got, k)
		return limit < 0 || len(got) < limit
	})
	return got
}

// checkVariants verifies all three scan variants against the reference
// for one (from, to) range: Scan and ScanParallel must match exactly
// (order included); ScanAny must match as a set.
func checkVariants(t *testing.T, tab *Table, keys map[uint64]bool, from, to uint64, limit int) {
	t.Helper()
	want := refScan(keys, from, to)
	if limit >= 0 && len(want) > limit {
		want = want[:limit]
	}

	for _, v := range []struct {
		name string
		scan func(uint64, uint64, func(uint64, *Record) bool)
	}{{"Scan", tab.Scan}, {"ScanParallel", tab.ScanParallel}} {
		got := collect(v.scan, from, to, limit)
		if len(got) != len(want) {
			t.Fatalf("%s[%d,%d] limit=%d: %d keys, want %d", v.name, from, to, limit, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s[%d,%d] at %d: got %d want %d", v.name, from, to, i, got[i], want[i])
			}
		}
	}

	got := collect(tab.ScanAny, from, to, limit)
	if limit >= 0 {
		// Early-stopped unordered scans only promise a prefix-sized subset
		// of the range — check membership and count.
		if len(got) != len(want) {
			t.Fatalf("ScanAny[%d,%d] limit=%d: %d keys, want %d", from, to, limit, len(got), len(want))
		}
		for _, k := range got {
			if !keys[k] || k < from || k > to {
				t.Fatalf("ScanAny[%d,%d]: emitted key %d outside the range or table", from, to, k)
			}
		}
		return
	}
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	if len(got) != len(want) {
		t.Fatalf("ScanAny[%d,%d]: %d keys, want %d", from, to, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("ScanAny[%d,%d] at %d: got %d want %d (sorted)", from, to, i, got[i], want[i])
		}
	}
}

// TestScanVariantsZeroAlloc pins the steady-state allocation contract of
// every scan variant: after warmup (which builds the merged-scan view and
// charges the pooled scratch), repeated scans allocate nothing. This is
// the regression fence for the 9 allocs/256B the 8-shard merge used to
// pay per scan.
func TestScanVariantsZeroAlloc(t *testing.T) {
	for _, shards := range []int{1, 8} {
		tab := NewWithShards(shards).Table(1)
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 1<<12; i++ {
			tab.GetOrCreate(rng.Uint64() % (1 << 16))
		}
		n := tab.Len()
		variants := []struct {
			name string
			scan func(uint64, uint64, func(uint64, *Record) bool)
		}{{"Scan", tab.Scan}, {"ScanAny", tab.ScanAny}, {"ScanParallel", tab.ScanParallel}}
		for _, v := range variants {
			v := v
			t.Run(fmt.Sprintf("%s/shards=%d", v.name, shards), func(t *testing.T) {
				// The visitor closure and its counter live outside the
				// measured region: allocated once here, reused per run, so
				// AllocsPerRun charges only what the scan itself allocates.
				seen := 0
				fn := func(uint64, *Record) bool { seen++; return true }
				// Warm: builds the view (Scan) and grows the scratch pools.
				v.scan(0, ^uint64(0), fn)
				if seen != n {
					t.Fatalf("warmup saw %d of %d records", seen, n)
				}
				short := false
				allocs := testing.AllocsPerRun(10, func() {
					seen = 0
					v.scan(0, ^uint64(0), fn)
					short = short || seen != n
				})
				if short {
					t.Fatalf("a measured scan missed records (table has %d)", n)
				}
				// All variants, ScanParallel included: its chunks and
				// channels live in pooled scratch and its producers spawn
				// through pre-built thunks, so even the goroutine fan-out
				// mallocs nothing.
				if allocs > 0 {
					t.Fatalf("%s shards=%d: %.1f allocs/op, want 0", v.name, shards, allocs)
				}
			})
		}
	}
}

// FuzzScanVariants cross-checks Scan, ScanAny and ScanParallel against
// the flat-map reference over fuzzer-chosen shard counts, key ranges and
// early-stop budgets. Each case is exercised twice around an extra batch
// of inserts so both the view-valid path (second scan of an unchanged
// table) and the view-stale path (scan right after inserts) are covered,
// including the sentinel keys 0 and ^uint64(0).
func FuzzScanVariants(f *testing.F) {
	f.Add(uint64(1), uint8(3), uint64(0), uint64(1<<16), int16(-1))
	f.Add(uint64(2), uint8(0), uint64(0), ^uint64(0), int16(-1))
	f.Add(uint64(3), uint8(4), uint64(500), uint64(400), int16(5)) // inverted range
	f.Add(uint64(4), uint8(7), ^uint64(0) - 10, ^uint64(0), int16(-1))
	f.Add(uint64(5), uint8(1), uint64(0), uint64(0), int16(1))
	f.Fuzz(func(t *testing.T, seed uint64, shardBits uint8, from, to uint64, stop int16) {
		shards := 1 << (shardBits % 5) // 1..16
		limit := int(stop)
		if limit < 0 {
			limit = -1
		}
		if limit == 0 {
			// The visitor always sees at least one key before it can say
			// stop, so a zero budget is really a budget of one.
			limit = 1
		}
		tab := NewWithShards(shards).Table(1)
		rng := rand.New(rand.NewSource(int64(seed)))
		keys := make(map[uint64]bool)
		insert := func(n int) {
			for i := 0; i < n; i++ {
				var k uint64
				switch rng.Intn(16) {
				case 0:
					k = 0
				case 1:
					k = ^uint64(0)
				case 2:
					k = ^uint64(0) - uint64(rng.Intn(8))
				default:
					k = rng.Uint64() % (1 << 14)
				}
				tab.GetOrCreate(k)
				keys[k] = true
			}
		}

		insert(200 + int(seed%800))
		// First pass hits the cascade (no view yet for narrow ranges, or
		// builds it for full ranges); second pass of the same range rides
		// whatever the first left behind.
		checkVariants(t, tab, keys, from, to, limit)
		checkVariants(t, tab, keys, from, to, limit)
		// Full-range scan forces the view to materialize...
		checkVariants(t, tab, keys, 0, ^uint64(0), -1)
		// ...then more inserts make it stale; every variant must notice.
		insert(100)
		checkVariants(t, tab, keys, from, to, limit)
		checkVariants(t, tab, keys, 0, ^uint64(0), -1)
	})
}

// TestScanParallelStress races ScanParallel against concurrent
// GetOrCreate and Vacuum on the same table (run under -race by `make
// race`). Concurrently inserted keys may or may not be observed; the
// invariants are: emitted keys are strictly ascending, every emitted key
// really exists, and every key present before the scans started is seen.
func TestScanParallelStress(t *testing.T) {
	tab := NewWithShards(8).Table(1)
	rng := rand.New(rand.NewSource(11))
	base := make(map[uint64]bool)
	for i := 0; i < 1<<12; i++ {
		k := rng.Uint64() % (1 << 18)
		rec := tab.GetOrCreate(k)
		rec.Append(&Version{TxnID: k, CommitTS: int64(i + 1)})
		base[k] = true
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := (1 << 18) + rng.Uint64()%(1<<16)
				rec := tab.GetOrCreate(k)
				rec.Append(&Version{TxnID: k, CommitTS: 1 << 30})
			}
		}(int64(100 + w))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			tab.Vacuum(1)
		}
	}()

	for iter := 0; iter < 50; iter++ {
		last := int64(-1) // keys fit in int64 here; -1 sentinels "none yet"
		seen := 0
		tab.ScanParallel(0, ^uint64(0), func(k uint64, r *Record) bool {
			if int64(k) <= last {
				t.Errorf("iter %d: order broken: %d after %d", iter, k, last)
				return false
			}
			last = int64(k)
			if r == nil {
				t.Errorf("iter %d: nil record for key %d", iter, k)
				return false
			}
			if base[k] {
				seen++
			}
			return true
		})
		if seen != len(base) {
			t.Fatalf("iter %d: saw %d of %d pre-existing keys", iter, seen, len(base))
		}
	}
	close(stop)
	wg.Wait()
}
