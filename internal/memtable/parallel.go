package memtable

// parallel.go implements ScanParallel: an ordered merged scan whose shard
// walks run concurrently. One producer goroutine per shard streams
// (key, record) chunks over a small bounded ring of reusable buffers; the
// caller's goroutine merges the chunk streams with the same loser tree and
// run-batching as the sequential Scan (merge.go) and invokes fn in global
// key order. On a multi-core host the leaf walks and the merge overlap;
// on one core it degrades to Scan plus scheduling overhead.
//
// All state — chunks, channels, tree — lives in a pooled parScratch, so
// the steady path allocates nothing. Producers hold only their own
// shard's read lock, and only while walking it: unlike Scan, the shards
// are not frozen as one unit, so a record created concurrently may be
// observed in one shard and missed in another (the existing "may or may
// not be observed" contract; per-record MVCC visibility is unaffected).

import (
	"sync"
	"sync/atomic"
)

// loserTree is a tournament tree over k streams identified by index, used
// by ScanParallel's consumer to merge the per-shard chunk streams. (The
// sequential Scan used one too, until the branchless merge cascade in
// merge.go measured ~2.4x faster; here the tree's per-pop pointer walk is
// amortized by chunk-granularity run batching, and the consumer's cost is
// dominated by channel handoffs anyway.)
//
// keys[i] is stream i's current key; done[i] marks an exhausted stream
// (its key is pinned to ^uint64(0), with done breaking the tie against a
// real maximal key — keys are unique across shards, so two live streams
// never tie). node[1..k-1] hold loser indices, node[0] the winner; leaf i
// is the virtual node i+k. ru is the runner-up: the index holding the
// smallest key among all streams except the winner.
type loserTree struct {
	keys []uint64
	done []bool
	node []int32
	ru   int32
}

// init sizes the tree for k streams (k must be a power of two ≥ 2).
func (lt *loserTree) init(k int) {
	if cap(lt.keys) < k {
		lt.keys = make([]uint64, k)
		lt.done = make([]bool, k)
		lt.node = make([]int32, k)
	}
	lt.keys = lt.keys[:k]
	lt.done = lt.done[:k]
	lt.node = lt.node[:k]
	lt.ru = -1
}

// less reports whether stream i's current key beats stream j's. Equal
// keys only happen when at least one side is exhausted (the shard hash
// partition is disjoint); a live stream beats a done one.
func (lt *loserTree) less(i, j int32) bool {
	ki, kj := lt.keys[i], lt.keys[j]
	if ki != kj {
		return ki < kj
	}
	return lt.done[j] && !lt.done[i]
}

// build plays every match bottom-up, filling node[1..k-1] with losers and
// node[0] with the winner, then computes the runner-up.
func (lt *loserTree) build(k int) {
	lt.node[0] = lt.play(1, k)
	lt.refreshRu(k)
}

// refreshRu recomputes the runner-up: the second-smallest key must have
// lost a match directly to the winner, so it is the smallest loser stored
// on the winner's leaf-to-root path. The walk must follow the *current*
// winner's path — losers on the previous winner's path are a different
// set below the point where the two paths join.
func (lt *loserTree) refreshRu(k int) {
	w := lt.node[0]
	ru := int32(-1)
	for x := (int(w) + k) / 2; x >= 1; x /= 2 {
		if ru < 0 || lt.less(lt.node[x], ru) {
			ru = lt.node[x]
		}
	}
	lt.ru = ru
}

// play returns the winner of the subtree rooted at internal node x,
// recording losers as it unwinds.
func (lt *loserTree) play(x, k int) int32 {
	if x >= k {
		return int32(x - k) // virtual leaf
	}
	a := lt.play(2*x, k)
	b := lt.play(2*x+1, k)
	if lt.less(a, b) {
		lt.node[x] = b
		return a
	}
	lt.node[x] = a
	return b
}

// fix replays the matches on stream w's leaf-to-root path after keys[w]
// changed (advanced or exhausted) — one comparison per level — then
// refreshes the runner-up from the new winner's path.
func (lt *loserTree) fix(w int32, k int) {
	win := w
	for x := (int(w) + k) / 2; x >= 1; x /= 2 {
		if lt.less(lt.node[x], win) {
			win, lt.node[x] = lt.node[x], win
		}
	}
	lt.node[0] = win
	lt.refreshRu(k)
}

const (
	// parChunkKeys amortizes channel operations: one send/recv pair and
	// at most one stop check per 256 records.
	parChunkKeys = 256
	// parChunksPerShard bounds each shard's in-flight buffering; a
	// producer that runs ahead of the merge blocks on its ring.
	parChunksPerShard = 4
)

// parChunk is one batch of a shard's scan output.
type parChunk struct {
	n    int
	keys [parChunkKeys]uint64
	recs [parChunkKeys]*Record
}

// parStream is one shard's chunk pipeline. out carries filled chunks
// producer→consumer, terminated by a nil marker; free recycles them
// consumer→producer. Capacities cover every chunk the stream owns, so
// returning chunks never blocks.
type parStream struct {
	out  chan *parChunk
	free chan *parChunk
}

// parScratch is the reusable state of one ScanParallel call.
type parScratch struct {
	tab      *Table
	from, to uint64
	stop     atomic.Bool
	wg       sync.WaitGroup
	streams  []parStream
	heads    []*parChunk // consumer's current chunk per shard
	idx      []int       // cursor into heads[i]
	eos      []bool      // nil end marker received from shard i
	spawn    []func()    // pre-built per-shard producer thunks (see below)
	lt       loserTree
}

func newParScratch(k int) *parScratch {
	ps := &parScratch{
		streams: make([]parStream, k),
		heads:   make([]*parChunk, k),
		idx:     make([]int, k),
		eos:     make([]bool, k),
		spawn:   make([]func(), k),
	}
	for i := range ps.streams {
		ps.streams[i].out = make(chan *parChunk, parChunksPerShard)
		ps.streams[i].free = make(chan *parChunk, parChunksPerShard+1)
		for c := 0; c < parChunksPerShard; c++ {
			ps.streams[i].free <- &parChunk{}
		}
	}
	// A `go f(args)` statement heap-allocates an implicit closure for the
	// arguments on every spawn; building the thunks once here (they live
	// with the pooled scratch) keeps the per-scan spawn loop at zero
	// allocations.
	for i := range ps.spawn {
		i := i
		ps.spawn[i] = func() { parProduce(ps, i) }
	}
	ps.lt.init(k)
	return ps
}

// parProduce walks shard si under its read lock, streaming chunks to the
// consumer. Spawned via the scratch's pre-built spawn thunks so the
// steady path allocates nothing. The stop flag is honoured at chunk
// granularity: after an early stop the producer emits at most one more
// partial chunk.
func parProduce(ps *parScratch, si int) {
	defer ps.wg.Done()
	t := ps.tab
	s := &t.shards[si]
	st := &ps.streams[si]
	var cur *parChunk
	t.obs.rlock(&s.mu)
	s.t.scan(ps.from, ps.to, func(k uint64, r *Record) bool {
		if cur == nil {
			if ps.stop.Load() {
				return false
			}
			cur = <-st.free
			cur.n = 0
		}
		cur.keys[cur.n] = k
		cur.recs[cur.n] = r
		cur.n++
		if cur.n == parChunkKeys {
			st.out <- cur
			cur = nil
		}
		return true
	})
	s.mu.RUnlock()
	if cur != nil {
		st.out <- cur
	}
	st.out <- nil
}

// putPar winds a scan down — normal completion, early stop or fn panic
// alike — and returns the scratch to the pool: producers are told to
// stop, every stream is drained to its nil marker (recycling chunks so
// no producer stays blocked), and the pool gets the scratch back only
// after the last producer exits.
func (t *Table) putPar(ps *parScratch) {
	ps.stop.Store(true)
	for i := range ps.streams {
		if ps.heads[i] != nil {
			ps.streams[i].free <- ps.heads[i]
			ps.heads[i] = nil
		}
		for !ps.eos[i] {
			c := <-ps.streams[i].out
			if c == nil {
				ps.eos[i] = true
				break
			}
			ps.streams[i].free <- c
		}
	}
	ps.wg.Wait()
	ps.tab = nil
	t.par.Put(ps)
}

// ScanParallel visits records with from ≤ key ≤ to in global key order
// until fn returns false, like Scan, but walks the shards concurrently:
// use it for large ranges where the per-shard leaf walks dominate and
// cores are available. fn runs on the caller's goroutine only. Early stop
// lets producers finish their in-flight chunk, so up to
// parChunkKeys·shards records may be walked (not passed to fn) after fn
// returns false. The steady path performs no allocations. A single-shard
// table degrades to the sequential fast path.
func (t *Table) ScanParallel(from, to uint64, fn func(key uint64, rec *Record) bool) {
	k := len(t.shards)
	if k == 1 {
		t.Scan(from, to, fn)
		return
	}
	// A valid merged-scan view beats spawning producers outright. The
	// length probe locks shards one at a time; with inserts-only growth a
	// sum that still equals the view's build length means every shard was
	// unchanged at the moment it was read — records appearing mid-probe
	// fall under the existing "may or may not be observed" contract.
	if v := t.view.Load(); v != nil && v.n == t.Len() {
		v.emit(from, to, fn)
		return
	}
	ps := t.par.Get().(*parScratch)
	ps.tab, ps.from, ps.to = t, from, to
	ps.stop.Store(false)
	for i := 0; i < k; i++ {
		ps.heads[i], ps.idx[i], ps.eos[i] = nil, 0, false
	}
	ps.wg.Add(k)
	for i := 0; i < k; i++ {
		go ps.spawn[i]()
	}
	defer t.putPar(ps)

	lt := &ps.lt
	lt.init(k)
	live := 0
	for i := 0; i < k; i++ {
		c := <-ps.streams[i].out
		if c == nil {
			ps.eos[i] = true
			lt.keys[i] = ^uint64(0)
			lt.done[i] = true
			continue
		}
		ps.heads[i] = c
		lt.keys[i] = c.keys[0]
		lt.done[i] = false
		live++
	}
	if live == 0 {
		return
	}
	lt.build(k)
	for {
		w := lt.node[0]
		c, i := ps.heads[w], ps.idx[w]

		// Same run batching as mergeScan, at chunk granularity: one
		// comparison against the runner-up clears a whole chunk.
		// Producers already enforce the to bound, so hi only tightens it.
		hi := to
		if ru := lt.ru; ru >= 0 && !lt.done[ru] && lt.keys[ru]-1 < hi {
			hi = lt.keys[ru] - 1
		}
		for {
			if c.keys[c.n-1] <= hi {
				for ; i < c.n; i++ {
					if !fn(c.keys[i], c.recs[i]) {
						return
					}
				}
				ps.heads[w] = nil
				ps.streams[w].free <- c
				c = <-ps.streams[w].out
				if c == nil {
					ps.eos[w] = true
					break
				}
				ps.heads[w], i = c, 0
				continue
			}
			for ; i < c.n && c.keys[i] <= hi; i++ {
				if !fn(c.keys[i], c.recs[i]) {
					return
				}
			}
			break
		}
		if c == nil {
			lt.keys[w] = ^uint64(0)
			lt.done[w] = true
			live--
			if live == 0 {
				return
			}
		} else {
			ps.idx[w] = i
			lt.keys[w] = c.keys[i]
		}
		lt.fix(w, k)
	}
}
