package memtable

import (
	"math/rand"
	"testing"
	"testing/quick"

	"aets/internal/wal"
)

func chainOf(times ...int64) *Record {
	r := &Record{Key: 1}
	for i, ts := range times {
		r.Append(&Version{TxnID: uint64(i + 1), CommitTS: ts,
			Columns: []wal.Column{{ID: 1, Value: []byte{byte(i)}}}})
	}
	return r
}

func TestVacuumKeepsWatermarkVersion(t *testing.T) {
	r := chainOf(10, 20, 30, 40, 50)
	removed := r.Vacuum(35)
	if removed != 2 { // 10 and 20 go; 30 stays (newest ≤ 35)
		t.Fatalf("removed %d, want 2", removed)
	}
	if r.ChainLen() != 3 {
		t.Fatalf("chain length %d, want 3", r.ChainLen())
	}
	// A reader exactly at the watermark still finds its version.
	if v := r.Visible(35); v == nil || v.CommitTS != 30 {
		t.Fatalf("watermark read broken: %+v", v)
	}
	// Newer reads unaffected.
	if v := r.Visible(45); v == nil || v.CommitTS != 40 {
		t.Fatalf("read above watermark broken: %+v", v)
	}
}

func TestVacuumNoVersionBelowWatermark(t *testing.T) {
	r := chainOf(100, 200)
	if removed := r.Vacuum(50); removed != 0 {
		t.Fatalf("removed %d from a chain entirely above the watermark", removed)
	}
	if r.ChainLen() != 2 {
		t.Fatal("chain modified")
	}
}

func TestVacuumEmptyRecord(t *testing.T) {
	r := &Record{Key: 9}
	if r.Vacuum(100) != 0 {
		t.Fatal("empty record vacuumed")
	}
}

func TestVacuumIdempotent(t *testing.T) {
	r := chainOf(10, 20, 30)
	r.Vacuum(25)
	if r.Vacuum(25) != 0 {
		t.Fatal("second vacuum at same watermark removed versions")
	}
}

func TestVacuumQuickSemantics(t *testing.T) {
	// Property: after Vacuum(w), reads at any ts ≥ w return exactly what
	// they returned before.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		times := make([]int64, n)
		ts := int64(0)
		for i := range times {
			ts += 1 + rng.Int63n(20)
			times[i] = ts
		}
		r := chainOf(times...)
		w := rng.Int63n(ts + 10)

		probes := make([]int64, 20)
		for i := range probes {
			probes[i] = w + rng.Int63n(ts-w+20)
		}
		type snap struct {
			ts  int64
			txn uint64
			ok  bool
		}
		var before []snap
		for _, p := range probes {
			v := r.Visible(p)
			if v == nil {
				before = append(before, snap{p, 0, false})
			} else {
				before = append(before, snap{p, v.TxnID, true})
			}
		}
		r.Vacuum(w)
		for i, p := range probes {
			v := r.Visible(p)
			switch {
			case v == nil && before[i].ok:
				return false
			case v != nil && (!before[i].ok || v.TxnID != before[i].txn):
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMemtableVacuum(t *testing.T) {
	mt := New()
	for table := wal.TableID(1); table <= 3; table++ {
		for key := uint64(1); key <= 50; key++ {
			rec := mt.Table(table).GetOrCreate(key)
			for ts := int64(10); ts <= 100; ts += 10 {
				rec.Append(&Version{TxnID: uint64(ts), CommitTS: ts})
			}
		}
	}
	if got := mt.Table(1).VersionCount(); got != 500 {
		t.Fatalf("version count %d, want 500", got)
	}
	removed := mt.Vacuum(55)
	// Per record: versions 10..50 exist below watermark; newest ≤55 is 50,
	// so 10..40 (4 versions) are pruned. 3 tables × 50 records × 4.
	if removed != 600 {
		t.Fatalf("removed %d, want 600", removed)
	}
	if got := mt.Table(2).VersionCount(); got != 300 {
		t.Fatalf("post-vacuum count %d, want 300", got)
	}
}
