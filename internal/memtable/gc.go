package memtable

// gc.go implements version-chain garbage collection. A backup accumulates
// one version per replayed modification; long-running replicas must prune
// versions no active reader can request. The paper's backup inherits this
// from its MVCC substrate (cf. its citations of HANA's hybrid GC and
// steam-style in-memory MVCC GC); the rule here is the classical
// watermark: given a GC timestamp no active or future reader will read
// below, every record keeps its newest version with CommitTS ≤ watermark
// (the version a reader exactly at the watermark needs) and drops
// everything older.

// Vacuum prunes the record's chain for the given watermark and returns the
// number of versions removed. Removed versions that were carved from an
// epoch arena are released back to it, which is what eventually lets the
// arena's memory be recycled (see ArenaPool).
//
// Safety: callers must guarantee no reader is traversing versions older
// than the watermark. Readers are lock-free, so this is a contract, not an
// enforced property — the usual arrangement is to take the minimum
// snapshot timestamp of active queries (or now−retention) as the
// watermark. A reader that already holds a pointer into the pruned suffix
// keeps a consistent view: the suffix stays intact off-chain until Go's
// collector reclaims it — or, for arena-carved versions, until the arena
// is recycled, which ArenaPool defers to the *next* Vacuum cycle precisely
// so that such stragglers have a full GC interval to finish (see
// ArenaPool's fence comment). The chain link itself is atomic, so a reader
// racing the truncation point observes either the old suffix or the cut —
// never a torn pointer.
func (r *Record) Vacuum(watermark int64) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	v := r.head.Load()
	// Find the newest version at or below the watermark; everything after
	// it (older) is unreachable for watermark-respecting readers.
	for v != nil && v.CommitTS > watermark {
		v = v.Next()
	}
	if v == nil {
		return 0
	}
	removed := 0
	for w := v.Next(); w != nil; w = w.Next() {
		removed++
		if a := w.arena; a != nil {
			a.release(1)
		}
	}
	v.next.Store(nil)
	return removed
}

// Vacuum prunes every record of the table and returns the total number of
// versions removed. Shards are vacuumed one at a time, so at most one
// shard's read lock is held at any moment — writers on the other shards
// proceed unhindered.
func (t *Table) Vacuum(watermark int64) int {
	removed := 0
	for i := range t.shards {
		s := &t.shards[i]
		t.obs.rlock(&s.mu)
		s.t.scan(0, ^uint64(0), func(_ uint64, rec *Record) bool {
			removed += rec.Vacuum(watermark)
			return true
		})
		s.mu.RUnlock()
	}
	return removed
}

// Vacuum prunes every table of the Memtable. It also advances the arena
// pool's reclamation fence: arenas fully released by earlier Vacuum cycles
// become reusable now.
func (m *Memtable) Vacuum(watermark int64) int {
	m.arenas.Flush()
	removed := 0
	for _, id := range m.Tables() {
		removed += m.Table(id).Vacuum(watermark)
	}
	return removed
}

// VersionCount returns the total number of live versions in the table —
// the quantity Vacuum exists to bound. Counting needs no key order, so it
// rides the unordered ScanAny fast path. Test and monitoring helper.
func (t *Table) VersionCount() int {
	n := 0
	t.ScanAny(0, ^uint64(0), func(_ uint64, rec *Record) bool {
		n += rec.ChainLen()
		return true
	})
	return n
}
