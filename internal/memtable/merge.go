package memtable

// merge.go stitches the per-shard B+Tree leaf chains of a sharded Table
// back into one globally ordered stream. Two layers share the work: the
// merge cascade below performs the actual k-way merge, and the merged-scan
// view (view.go) memoizes one cascade pass so repeated ordered scans of an
// unchanged table skip merging entirely. The cascade is a binary tree of
// branchless two-way merges (DESIGN.md §14):
//
//   - The k shard streams feed a perfect binary tree of k-1 merge stages
//     (k is always a power of two; newTable enforces it). Each stage merges
//     exactly two sorted inputs into 256-element chunks, pull-driven: a
//     stage refills its chunk only when its parent has consumed the
//     previous one, so memory stays O(k · chunk) regardless of table size.
//   - Every stage's inner loop is branchless: the winner of a comparison
//     is selected with a borrow mask from bits.Sub64 (SBB on amd64) and
//     cursor advances are arithmetic. A k-way tournament resolves ~log₂ k
//     bits of inherently unpredictable branching per element; taken
//     through branches that is ~log₂ k mispredictions (~15-20 cycles
//     each) per record. The cascade spends the same log₂ k comparisons
//     but each stage is a straight-line counted loop with zero
//     unpredictable branches, so it runs at ALU throughput instead of
//     misprediction latency. Measured on the reference 8-shard merge the
//     cascade is ~2.5x faster than the binary heap of iterators it
//     replaced and ~1.7x faster than a hand-optimized loser tree
//     (EXPERIMENTS.md has the full progression; the loser tree survives
//     as ScanParallel's chunk-stream consumer in parallel.go, where chunk
//     granularity amortizes its per-pop walk).
//   - The bottom stages read keys and records straight out of B+Tree leaf
//     arrays — leaves are clamped against the scan bound once per leaf
//     (binary search), so the counted loops never test the bound per key.
//
// Scratch state (stage nodes, chunk buffers) comes from a per-table
// sync.Pool, so the steady path allocates nothing. Chunk record arrays are
// not cleared on release: they pin only this table's slab-carved records,
// which live exactly as long as the table (and its pool) anyway.

import "math/bits"

// mergeChunk is the element capacity of one cascade stage's output chunk.
// 256 keeps a node's working set (~4 KB) L1-resident while amortizing
// refill dispatch to once per 256 records.
const mergeChunk = 256

// leafCursor is a position in one shard's leaf chain, pre-clamped against
// the scan's upper bound: i < lim always indexes an in-range key, and
// n == nil means the stream is exhausted. Clamping per leaf (one
// comparison against the leaf's last key, or one binary search on the
// boundary leaf) is what lets the merge loops run counted, with no
// per-key bound test.
type leafCursor struct {
	n   *node
	i   int
	lim int
}

func (c *leafCursor) init(tr *tree, from, effTo uint64) {
	it := tr.seek(from)
	if it.n == nil {
		c.n = nil
		return
	}
	c.n, c.i = it.n, it.i
	c.clamp(effTo)
}

// clamp truncates the current leaf at effTo, marking the stream exhausted
// if nothing in range remains. Leaves are ascending, so a leaf containing
// a key > effTo is the stream's last.
func (c *leafCursor) clamp(effTo uint64) {
	n := c.n
	if n.keys[n.n-1] <= effTo {
		c.lim = n.n
		return
	}
	lim, _ := n.search(effTo + 1)
	if lim <= c.i {
		c.n = nil
		return
	}
	c.lim = lim
}

// advance hops to the next leaf once the current one is consumed.
func (c *leafCursor) advance(effTo uint64) {
	n := c.n.next
	for n != nil && n.n == 0 {
		n = n.next
	}
	if n == nil {
		c.n = nil
		return
	}
	c.n, c.i = n, 0
	c.clamp(effTo)
}

// cascNode is one two-way merge stage. Base stages (a == nil) merge two
// shard leaf streams; interior stages merge two child nodes' chunk
// streams. Either way the output is chunks of up to mergeChunk
// (key, record) pairs, consumed by the parent via keys/recs[i:n].
type cascNode struct {
	a, b   *cascNode
	ca, cb leafCursor
	n, i   int
	keys   [mergeChunk]uint64
	recs   [mergeChunk]*Record
}

// refill produces the node's next chunk; false means the node (and its
// whole subtree) is exhausted. Exhausted nodes answer false idempotently.
func (nd *cascNode) refill(effTo uint64) bool {
	if nd.a == nil {
		return nd.refillBase(effTo)
	}
	a, b := nd.a, nd.b
	o := 0
	for o < mergeChunk {
		if a.i == a.n && !a.refill(effTo) {
			o = nd.drainNode(b, o, effTo)
			break
		}
		if b.i == b.n && !b.refill(effTo) {
			o = nd.drainNode(a, o, effTo)
			break
		}
		ai, bi := a.i, b.i
		m := mergeChunk - o
		if r := a.n - ai; r < m {
			m = r
		}
		if r := b.n - bi; r < m {
			m = r
		}
		// Branchless core: bo is 1 when a's key wins, mm its full mask.
		// Keys are unique across shards (disjoint hash partition), so
		// ties never happen and <= vs < is moot. The record is selected
		// through a two-slot array — an indexed load, not a conditional
		// branch, since this 50/50 "which side won" decision is exactly
		// the misprediction the cascade exists to avoid.
		var pr [2]*Record
		for e := 0; e < m; e++ {
			ka, kb := a.keys[ai], b.keys[bi]
			_, bo := bits.Sub64(ka, kb, 0)
			mm := uint64(0) - bo
			nd.keys[o] = kb ^ ((ka ^ kb) & mm)
			pr[0] = b.recs[bi]
			pr[1] = a.recs[ai]
			nd.recs[o] = pr[bo&1]
			o++
			ai += int(bo)
			bi += int(1 - bo)
		}
		a.i, b.i = ai, bi
	}
	nd.n, nd.i = o, 0
	return o > 0
}

// drainNode bulk-copies from child c after its sibling exhausted.
func (nd *cascNode) drainNode(c *cascNode, o int, effTo uint64) int {
	for {
		n := copy(nd.keys[o:], c.keys[c.i:c.n])
		copy(nd.recs[o:o+n], c.recs[c.i:c.i+n])
		c.i += n
		o += n
		if o == mergeChunk || !c.refill(effTo) {
			return o
		}
	}
}

// refillBase merges two shard leaf streams. Identical structure to the
// interior merge, but reading directly from leaf key/value arrays.
func (nd *cascNode) refillBase(effTo uint64) bool {
	o := 0
	ca, cb := &nd.ca, &nd.cb
	for o < mergeChunk {
		if ca.n == nil {
			o = nd.drainLeaves(cb, o, effTo)
			break
		}
		if cb.n == nil {
			o = nd.drainLeaves(ca, o, effTo)
			break
		}
		an, bn := ca.n, cb.n
		ai, bi := ca.i, cb.i
		m := mergeChunk - o
		if r := ca.lim - ai; r < m {
			m = r
		}
		if r := cb.lim - bi; r < m {
			m = r
		}
		var pr [2]*Record
		for e := 0; e < m; e++ {
			ka, kb := an.keys[ai], bn.keys[bi]
			_, bo := bits.Sub64(ka, kb, 0)
			mm := uint64(0) - bo
			nd.keys[o] = kb ^ ((ka ^ kb) & mm)
			pr[0] = bn.values[bi]
			pr[1] = an.values[ai]
			nd.recs[o] = pr[bo&1]
			o++
			ai += int(bo)
			bi += int(1 - bo)
		}
		ca.i, cb.i = ai, bi
		if ai == ca.lim {
			ca.advance(effTo)
		}
		if bi == cb.lim {
			cb.advance(effTo)
		}
	}
	nd.n, nd.i = o, 0
	return o > 0
}

// drainLeaves bulk-copies from leaf stream c after its sibling exhausted.
func (nd *cascNode) drainLeaves(c *leafCursor, o int, effTo uint64) int {
	for c.n != nil {
		n := copy(nd.keys[o:], c.n.keys[c.i:c.lim])
		copy(nd.recs[o:o+n], c.n.values[c.i:c.i+n])
		c.i += n
		o += n
		if c.i == c.lim {
			c.advance(effTo)
		}
		if o == mergeChunk {
			break
		}
	}
	return o
}

// cascRoot merges the cascade's two top streams, invoking fn per record in
// global key order. Returns false if fn stopped the scan early.
func cascRoot(a, b *cascNode, effTo uint64, fn func(key uint64, rec *Record) bool) bool {
	aok, bok := a.refill(effTo), b.refill(effTo)
	for aok && bok {
		m := a.n - a.i
		if r := b.n - b.i; r < m {
			m = r
		}
		x, y := a.i, b.i
		var pr [2]*Record
		for e := 0; e < m; e++ {
			ka, kb := a.keys[x], b.keys[y]
			_, bo := bits.Sub64(ka, kb, 0)
			mm := uint64(0) - bo
			kk := kb ^ ((ka ^ kb) & mm)
			pr[0] = b.recs[y]
			pr[1] = a.recs[x]
			rr := pr[bo&1]
			x += int(bo)
			y += int(1 - bo)
			if !fn(kk, rr) {
				a.i, b.i = x, y
				return false
			}
		}
		a.i, b.i = x, y
		if a.i == a.n {
			aok = a.refill(effTo)
		}
		if b.i == b.n {
			bok = b.refill(effTo)
		}
	}
	rest, rok := a, aok
	if bok {
		rest, rok = b, true
	}
	for rok {
		for i, n := rest.i, rest.n; i < n; i++ {
			if !fn(rest.keys[i], rest.recs[i]) {
				rest.i = i + 1
				return false
			}
		}
		rest.i = rest.n
		rok = rest.refill(effTo)
	}
	return true
}

// cascDrain drains a single node (the k == 2 cascade: one base stage, no
// interior), invoking fn per record.
func cascDrain(nd *cascNode, effTo uint64, fn func(key uint64, rec *Record) bool) bool {
	for nd.refill(effTo) {
		for i, n := nd.i, nd.n; i < n; i++ {
			if !fn(nd.keys[i], nd.recs[i]) {
				nd.i = i + 1
				return false
			}
		}
		nd.i = nd.n
	}
	return true
}

// mergeScratch is the pooled state of one ordered merged scan: the k-1
// cascade stages (k/2 base + the interior levels; the root consumes the
// final two streams directly).
type mergeScratch struct {
	nodes []cascNode
}

func newMergeScratch(k int) *mergeScratch {
	n := k - 2
	if n < 1 {
		n = 1
	}
	return &mergeScratch{nodes: make([]cascNode, n)}
}

// putMerge returns scratch to the pool with its leaf pointers cleared so
// a pooled scratch never pins tree nodes past the scan that used them.
// (Chunk record arrays are left as-is: they pin only this table's
// table-lifetime records; see file comment.)
func (t *Table) putMerge(m *mergeScratch) {
	for i := range m.nodes {
		m.nodes[i].ca.n = nil
		m.nodes[i].cb.n = nil
	}
	t.merge.Put(m)
}

// runlockAll releases every shard read lock taken by an ordered Scan.
func (t *Table) runlockAll() {
	for i := range t.shards {
		t.shards[i].mu.RUnlock()
	}
}

// Scan visits records with from ≤ key ≤ to in global key order until fn
// returns false. Shards partition the key space by hash, so ascending
// order within each shard plus the merge cascade (see file comment) yields
// ascending order overall. Records created concurrently may or may not be
// observed. All shard read locks are held for the duration of the scan —
// the same writer-blocking window the original table-wide lock imposed,
// split per shard. The steady path performs no allocations: merge state is
// pooled per table, and repeated scans of an unchanged table are served
// from the merged-scan view (view.go) without re-merging at all. A
// full-range scan that finds the view stale rebuilds it in the same pass;
// a narrow scan over a stale view falls back to the cascade (partially
// materializing would not pay for itself under interleaved writes).
func (t *Table) Scan(from, to uint64, fn func(key uint64, rec *Record) bool) {
	if len(t.shards) == 1 {
		s := &t.shards[0]
		t.obs.rlock(&s.mu)
		defer s.mu.RUnlock()
		s.t.scan(from, to, fn)
		return
	}
	for i := range t.shards {
		t.obs.rlock(&t.shards[i].mu)
	}
	defer t.runlockAll()
	v := t.view.Load()
	if v == nil || v.n != t.lenShardsHeld() {
		if from == 0 && to == ^uint64(0) {
			v = t.buildView()
		} else {
			m := t.merge.Get().(*mergeScratch)
			defer t.putMerge(m)
			t.mergeScan(m, from, to, fn)
			return
		}
	}
	v.emit(from, to, fn)
}

// mergeScan wires the cascade over the table's shards and runs it. Caller
// holds every shard read lock.
//
// The cascade reserves ^uint64(0) as its internal "stream exhausted"
// sentinel, so the merge itself runs with an effective upper bound of
// ^uint64(0)-1; a real record at key ^uint64(0) — necessarily the global
// maximum — is looked up directly and emitted last.
func (t *Table) mergeScan(m *mergeScratch, from, to uint64, fn func(key uint64, rec *Record) bool) {
	k := len(t.shards)
	effTo := to
	if to == ^uint64(0) {
		effTo = to - 1
	}
	nodes := m.nodes
	half := k / 2
	for i := 0; i < half; i++ {
		nd := &nodes[i]
		nd.a, nd.b = nil, nil
		nd.ca.init(t.shards[2*i].t, from, effTo)
		nd.cb.init(t.shards[2*i+1].t, from, effTo)
		nd.n, nd.i = 0, 0
	}
	prevStart, prevCount := 0, half
	idx := half
	for prevCount > 2 {
		cnt := prevCount / 2
		for j := 0; j < cnt; j++ {
			nd := &nodes[idx+j]
			nd.a = &nodes[prevStart+2*j]
			nd.b = &nodes[prevStart+2*j+1]
			nd.n, nd.i = 0, 0
		}
		prevStart, prevCount = idx, cnt
		idx += cnt
	}
	var completed bool
	if prevCount == 2 {
		completed = cascRoot(&nodes[prevStart], &nodes[prevStart+1], effTo, fn)
	} else {
		completed = cascDrain(&nodes[0], effTo, fn)
	}
	if completed && to == ^uint64(0) && from <= to {
		s := &t.shards[t.shardOf(^uint64(0))]
		if rec := s.t.get(^uint64(0)); rec != nil {
			fn(^uint64(0), rec)
		}
	}
}

// ScanAny visits records with from ≤ key ≤ to until fn returns false,
// with NO global ordering guarantee: shards are visited one after
// another, each in its own ascending key order, with zero merge cost.
// Aggregates that do not need key order (counts, sums, max-timestamp
// probes) should prefer it over Scan — it is the single-tree fast path
// repeated per shard. Unlike Scan, only one shard read lock is held at a
// time, so records created concurrently in a not-yet-visited shard may be
// observed while ones in an already-visited shard are not; the
// per-record visibility rules (version chains) are unaffected. The
// steady path performs no allocations.
func (t *Table) ScanAny(from, to uint64, fn func(key uint64, rec *Record) bool) {
	for i := range t.shards {
		s := &t.shards[i]
		t.obs.rlock(&s.mu)
		completed := s.t.scan(from, to, fn)
		s.mu.RUnlock()
		if !completed {
			return
		}
	}
}
