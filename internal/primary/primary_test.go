package primary

import (
	"testing"

	"aets/internal/wal"
	"aets/internal/workload"
)

func TestTxnIDsAndTimestampsMonotone(t *testing.T) {
	p := New(workload.NewTPCC(1), 1)
	var lastID uint64
	var lastTS int64
	for i := 0; i < 500; i++ {
		txn := p.NextTxn()
		if txn.ID <= lastID {
			t.Fatalf("txn ID %d after %d", txn.ID, lastID)
		}
		if txn.CommitTS <= lastTS {
			t.Fatalf("commit TS %d after %d", txn.CommitTS, lastTS)
		}
		lastID, lastTS = txn.ID, txn.CommitTS
		if p.LastCommitTS() != lastTS {
			t.Fatal("LastCommitTS out of sync")
		}
	}
}

func TestPrevTxnTracksLastWriter(t *testing.T) {
	p := New(workload.NewTPCC(1), 2)
	lastWriter := make(map[[2]uint64]uint64)
	for i := 0; i < 2000; i++ {
		txn := p.NextTxn()
		for _, e := range txn.Entries {
			key := [2]uint64{uint64(e.Table), e.RowKey}
			if e.PrevTxn != lastWriter[key] {
				t.Fatalf("txn %d table %d row %d: PrevTxn %d, want %d",
					txn.ID, e.Table, e.RowKey, e.PrevTxn, lastWriter[key])
			}
			lastWriter[key] = txn.ID
		}
	}
}

func TestEntriesCarryTxnMetadata(t *testing.T) {
	p := New(workload.NewSEATS(), 3)
	for i := 0; i < 100; i++ {
		txn := p.NextTxn()
		for _, e := range txn.Entries {
			if e.TxnID != txn.ID || e.Timestamp != txn.CommitTS {
				t.Fatalf("entry metadata mismatch: %+v vs txn %d/%d", e, txn.ID, txn.CommitTS)
			}
			if err := e.Validate(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestGenerateEncodedRoundTrips(t *testing.T) {
	p := New(workload.NewTPCC(1), 4)
	encs := p.GenerateEncoded(500, 128)
	if len(encs) != 4 {
		t.Fatalf("%d epochs, want 4 (500/128)", len(encs))
	}
	total := 0
	var lastID uint64
	for _, enc := range encs {
		txns, err := enc.Decode()
		if err != nil {
			t.Fatal(err)
		}
		total += len(txns)
		for _, txn := range txns {
			if txn.ID <= lastID {
				t.Fatalf("ID order broken across epochs: %d after %d", txn.ID, lastID)
			}
			lastID = txn.ID
		}
	}
	if total != 500 {
		t.Fatalf("decoded %d txns, want 500", total)
	}
}

func TestDeterministicForSameSeed(t *testing.T) {
	a := New(workload.NewTPCC(1), 7).GenerateTxns(200)
	b := New(workload.NewTPCC(1), 7).GenerateTxns(200)
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i].ID != b[i].ID || len(a[i].Entries) != len(b[i].Entries) {
			t.Fatalf("txn %d differs between same-seed runs", i)
		}
		for j := range a[i].Entries {
			ea, eb := a[i].Entries[j], b[i].Entries[j]
			if ea.Table != eb.Table || ea.RowKey != eb.RowKey || ea.PrevTxn != eb.PrevTxn {
				t.Fatalf("entry %d/%d differs between same-seed runs", i, j)
			}
		}
	}
}

func TestHeartbeatAdvancesTimestamp(t *testing.T) {
	p := New(workload.NewTPCC(1), 8)
	p.GenerateTxns(10)
	before := p.LastCommitTS()
	hb := p.Heartbeat(99)
	if hb.TxnCount != 0 || len(hb.Buf) != 0 {
		t.Fatalf("heartbeat carries payload: %+v", hb)
	}
	if hb.LastCommitTS <= before {
		t.Fatal("heartbeat timestamp did not advance")
	}
	if hb.Seq != 99 {
		t.Fatalf("heartbeat seq %d", hb.Seq)
	}
	txn := p.NextTxn()
	if txn.CommitTS <= hb.LastCommitTS {
		t.Fatal("post-heartbeat txn timestamp did not advance past heartbeat")
	}
}

func TestCustomClock(t *testing.T) {
	p := New(workload.NewTPCC(1), 9)
	now := int64(1_000_000)
	p.Clock = func() int64 { now += 500; return now }
	a := p.NextTxn()
	b := p.NextTxn()
	if b.CommitTS-a.CommitTS != 500 {
		t.Fatalf("custom clock ignored: %d %d", a.CommitTS, b.CommitTS)
	}
	_ = wal.Txn{} // keep wal import for the entry assertions above
}
