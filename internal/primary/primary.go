// Package primary simulates the primary database node: it executes a
// benchmark workload's transactions, assigns monotonically increasing
// transaction IDs and commit timestamps, tracks each row's previous writer
// (the before-image witness carried in the value log), batches committed
// transactions into epochs and encodes them into the replication wire
// format the backup replayers consume.
//
// The paper uses MySQL 8.0 as the primary; the replay framework only ever
// observes the value-log stream, so this simulator is a drop-in source with
// the same framing, ordering and content properties (see DESIGN.md §2).
package primary

import (
	"math/rand"
	"sync"

	"aets/internal/epoch"
	"aets/internal/wal"
	"aets/internal/workload"
)

// rowRef identifies one row across tables for previous-writer tracking.
type rowRef struct {
	t wal.TableID
	k uint64
}

// Primary is the primary-node simulator. Not safe for concurrent use; the
// primary serialises transactions in commit order by definition.
type Primary struct {
	gen workload.Generator
	rng *rand.Rand

	// Clock returns the commit timestamp of the next transaction. The
	// default is a virtual clock advancing 1µs per transaction, which keeps
	// traces deterministic; timestamps only ever need to be monotone and
	// shared between log entries and query snapshots.
	Clock func() int64

	nextTxnID  uint64
	lastTS     int64
	lastWriter map[rowRef]uint64
	writeCount map[rowRef]uint64
	writeBuf   []workload.Write

	mu sync.Mutex // guards LastCommitTS readers against the generator
}

// New returns a Primary running the given workload with a deterministic
// rng seed.
func New(gen workload.Generator, seed int64) *Primary {
	p := &Primary{
		gen:        gen,
		rng:        rand.New(rand.NewSource(seed)),
		lastWriter: make(map[rowRef]uint64),
		writeCount: make(map[rowRef]uint64),
	}
	p.Clock = func() int64 {
		return int64(p.nextTxnID) * 1000 // 1µs virtual tick per txn
	}
	return p
}

// Generator returns the workload behind the primary.
func (p *Primary) Generator() workload.Generator { return p.gen }

// NextTxn executes one transaction and returns its committed value-log
// form.
func (p *Primary) NextTxn() wal.Txn {
	p.writeBuf = p.gen.NextTxn(p.rng, p.writeBuf[:0])
	p.nextTxnID++
	id := p.nextTxnID
	ts := p.Clock()
	if ts <= p.lastTS {
		ts = p.lastTS + 1
	}

	t := wal.Txn{ID: id, CommitTS: ts, Entries: make([]wal.Entry, 0, len(p.writeBuf))}
	for _, w := range p.writeBuf {
		ref := rowRef{w.Table, w.Key}
		t.Entries = append(t.Entries, wal.Entry{
			Type:      w.Op,
			TxnID:     id,
			Timestamp: ts,
			Table:     w.Table,
			RowKey:    w.Key,
			Columns:   w.Cols,
			PrevTxn:   p.lastWriter[ref],
			WriteSeq:  p.writeCount[ref],
		})
		p.lastWriter[ref] = id
		p.writeCount[ref]++
	}
	p.mu.Lock()
	p.lastTS = ts
	p.mu.Unlock()
	return t
}

// LastCommitTS returns the commit timestamp of the most recent transaction
// (the "latest snapshot timestamp value from the primary" a query fetches
// in Algorithm 3). Safe to call concurrently with generation.
func (p *Primary) LastCommitTS() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lastTS
}

// GenerateTxns executes n transactions.
func (p *Primary) GenerateTxns(n int) []wal.Txn {
	out := make([]wal.Txn, n)
	for i := range out {
		out[i] = p.NextTxn()
	}
	return out
}

// GenerateEpochs executes totalTxns transactions and batches them into
// epochs of epochSize transactions.
func (p *Primary) GenerateEpochs(totalTxns, epochSize int) []*epoch.Epoch {
	return epoch.MustSplit(p.GenerateTxns(totalTxns), epochSize)
}

// GenerateEncoded executes totalTxns transactions and returns the encoded
// replication stream, one Encoded per epoch.
func (p *Primary) GenerateEncoded(totalTxns, epochSize int) []epoch.Encoded {
	return epoch.EncodeAll(p.GenerateEpochs(totalTxns, epochSize))
}

// Heartbeat returns a dummy empty epoch carrying the current primary
// timestamp: the idle-primary heartbeat of paper §V-B that keeps
// global_cmt_ts advancing on the backup.
func (p *Primary) Heartbeat(seq uint64) epoch.Encoded {
	p.mu.Lock()
	ts := p.lastTS + 1
	p.lastTS = ts
	p.mu.Unlock()
	return epoch.Encoded{Seq: seq, LastCommitTS: ts}
}
