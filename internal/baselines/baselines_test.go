package baselines

import (
	"testing"
	"time"

	"aets/internal/epoch"
	"aets/internal/memtable"
	"aets/internal/primary"
	"aets/internal/reference"
	"aets/internal/wal"
	"aets/internal/workload"
)

// replayerUnderTest abstracts ATR and C5 for the shared equivalence tests.
type replayerUnderTest interface {
	Name() string
	Start()
	Feed(*epoch.Encoded) error
	Drain()
	Stop()
	WaitVisible(int64, []wal.TableID)
	GlobalTS() int64
	Err() error
	Memtable() *memtable.Memtable
}

func runBaseline(t *testing.T, r replayerUnderTest, txns []wal.Txn, epochSize int) {
	t.Helper()
	r.Start()
	defer r.Stop()
	for _, enc := range epoch.EncodeAll(epoch.MustSplit(txns, epochSize)) {
		enc := enc
		if err := r.Feed(&enc); err != nil {
			t.Fatal(err)
		}
	}
	r.Drain()
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
}

func equivalenceTest(t *testing.T, mk func(mt *memtable.Memtable) replayerUnderTest) {
	gen := workload.NewTPCC(4)
	p := primary.New(gen, 21)
	txns := p.GenerateTxns(3000)

	ref := memtable.New()
	reference.Apply(ref, txns)

	mt := memtable.New()
	r := mk(mt)
	runBaseline(t, r, txns, 256)

	tables := workload.TableIDs(gen.Tables())
	if err := reference.Equal(ref, mt, tables); err != nil {
		t.Fatalf("%s: %v", r.Name(), err)
	}
	if err := reference.CheckChains(mt, tables); err != nil {
		t.Fatalf("%s: %v", r.Name(), err)
	}
}

func TestATRMatchesSerialReference(t *testing.T) {
	equivalenceTest(t, func(mt *memtable.Memtable) replayerUnderTest {
		return NewATR(mt, 8)
	})
}

func TestC5MatchesSerialReference(t *testing.T) {
	equivalenceTest(t, func(mt *memtable.Memtable) replayerUnderTest {
		return NewC5(mt, 8, time.Millisecond)
	})
}

func TestATRSingleWorker(t *testing.T) {
	equivalenceTest(t, func(mt *memtable.Memtable) replayerUnderTest {
		return NewATR(mt, 1)
	})
}

func TestC5SingleWorker(t *testing.T) {
	equivalenceTest(t, func(mt *memtable.Memtable) replayerUnderTest {
		return NewC5(mt, 1, time.Millisecond)
	})
}

func visibilityAfterDrainTest(t *testing.T, r replayerUnderTest, lastTS int64) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		r.WaitVisible(lastTS, nil)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		t.Fatalf("%s: WaitVisible(%d) stuck after Drain", r.Name(), lastTS)
	}
}

func TestATRVisibilityReachesLastCommit(t *testing.T) {
	gen := workload.NewTPCC(2)
	p := primary.New(gen, 22)
	txns := p.GenerateTxns(800)
	mt := memtable.New()
	r := NewATR(mt, 4)
	runBaseline(t, r, txns, 128)
	visibilityAfterDrainTest(t, r, txns[len(txns)-1].CommitTS)
}

func TestC5VisibilityReachesLastCommit(t *testing.T) {
	gen := workload.NewTPCC(2)
	p := primary.New(gen, 23)
	txns := p.GenerateTxns(800)
	mt := memtable.New()
	r := NewC5(mt, 4, time.Millisecond)
	runBaseline(t, r, txns, 128)
	visibilityAfterDrainTest(t, r, txns[len(txns)-1].CommitTS)
}

// TestATRNeverExposesFutureVersions checks the snapshot-read invariant: a
// reader admitted at qts never observes a version with a later commit
// timestamp on any record it reads.
func TestSnapshotReadInvariant(t *testing.T) {
	gen := workload.NewTPCC(1)
	for name, mk := range map[string]func(mt *memtable.Memtable) replayerUnderTest{
		"ATR": func(mt *memtable.Memtable) replayerUnderTest { return NewATR(mt, 4) },
		"C5":  func(mt *memtable.Memtable) replayerUnderTest { return NewC5(mt, 4, time.Millisecond) },
	} {
		p := primary.New(gen, 24)
		txns := p.GenerateTxns(600)
		mid := txns[len(txns)/2].CommitTS

		mt := memtable.New()
		r := mk(mt)
		r.Start()
		for _, enc := range epoch.EncodeAll(epoch.MustSplit(txns, 100)) {
			enc := enc
			r.Feed(&enc)
		}
		r.WaitVisible(mid, nil)
		// Read everything at qts=mid while replay continues.
		for _, tid := range workload.TableIDs(gen.Tables()) {
			mt.Table(tid).Scan(0, ^uint64(0), func(key uint64, rec *memtable.Record) bool {
				if v := rec.Visible(mid); v != nil && v.CommitTS > mid {
					t.Errorf("%s: table %d key %d: future version %d visible at %d",
						name, tid, key, v.CommitTS, mid)
					return false
				}
				return true
			})
		}
		r.Drain()
		r.Stop()
		if err := r.Err(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

// TestATRSequenceCheckOrdersHotRow forces heavy conflicts on single rows to
// exercise the operation sequence check: all writers hit one row per table.
func TestATRSequenceCheckOrdersHotRow(t *testing.T) {
	var txns []wal.Txn
	for i := 1; i <= 2000; i++ {
		txns = append(txns, wal.Txn{ID: uint64(i), CommitTS: int64(i * 10),
			Entries: []wal.Entry{{
				Type: wal.TypeUpdate, TxnID: uint64(i), Table: 1, RowKey: 7,
				PrevTxn: uint64(i - 1), WriteSeq: uint64(i - 1),
				Columns: []wal.Column{{ID: 1, Value: []byte{byte(i)}}},
			}}})
	}
	mt := memtable.New()
	r := NewATR(mt, 8)
	runBaseline(t, r, txns, 200)

	rec := mt.Table(1).Get(7)
	if rec == nil || rec.ChainLen() != 2000 {
		t.Fatalf("chain length %d, want 2000", rec.ChainLen())
	}
	if !rec.ChainOrdered() {
		t.Fatal("conflicting writes applied out of order")
	}
	v := rec.Latest()
	if v.TxnID != 2000 {
		t.Fatalf("latest version from txn %d, want 2000", v.TxnID)
	}
}

// TestC5RowOrderUnderConflicts does the same for C5's per-row queues.
func TestC5RowOrderUnderConflicts(t *testing.T) {
	var txns []wal.Txn
	for i := 1; i <= 2000; i++ {
		txns = append(txns, wal.Txn{ID: uint64(i), CommitTS: int64(i * 10),
			Entries: []wal.Entry{{
				Type: wal.TypeUpdate, TxnID: uint64(i), Table: 1, RowKey: 7,
				Columns: []wal.Column{{ID: 1, Value: []byte{byte(i)}}},
			}}})
	}
	mt := memtable.New()
	r := NewC5(mt, 8, time.Millisecond)
	runBaseline(t, r, txns, 200)

	rec := mt.Table(1).Get(7)
	if rec == nil || rec.ChainLen() != 2000 || !rec.ChainOrdered() {
		t.Fatal("row order violated under conflicts")
	}
}

func TestHeartbeatAdvancesBaselines(t *testing.T) {
	for name, mk := range map[string]func(mt *memtable.Memtable) replayerUnderTest{
		"ATR": func(mt *memtable.Memtable) replayerUnderTest { return NewATR(mt, 2) },
		"C5":  func(mt *memtable.Memtable) replayerUnderTest { return NewC5(mt, 2, time.Millisecond) },
	} {
		r := mk(memtable.New())
		r.Start()
		r.Feed(&epoch.Encoded{Seq: 0, LastCommitTS: 777})
		r.Drain()
		done := make(chan struct{})
		go func() {
			r.WaitVisible(777, nil)
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(2 * time.Second):
			t.Fatalf("%s: heartbeat did not advance snapshot", name)
		}
		r.Stop()
	}
}

func TestBaselineLifecycleErrors(t *testing.T) {
	for name, mk := range map[string]func(mt *memtable.Memtable) replayerUnderTest{
		"ATR": func(mt *memtable.Memtable) replayerUnderTest { return NewATR(mt, 2) },
		"C5":  func(mt *memtable.Memtable) replayerUnderTest { return NewC5(mt, 2, time.Millisecond) },
	} {
		enc := &epoch.Encoded{Seq: 0, LastCommitTS: 1}

		// Feed before Start fails fast instead of deadlocking on the
		// not-yet-consumed feed channel.
		r := mk(memtable.New())
		if err := r.Feed(enc); err != errNotStarted {
			t.Fatalf("%s: Feed before Start: got %v, want errNotStarted", name, err)
		}
		r.Start()
		r.Start() // idempotent
		if err := r.Feed(enc); err != nil {
			t.Fatalf("%s: Feed on started replayer: %v", name, err)
		}
		r.Stop()
		r.Stop() // idempotent
		if err := r.Feed(enc); err != errStopped {
			t.Fatalf("%s: Feed after Stop: got %v, want errStopped", name, err)
		}

		// Stop without Start must not hang and must poison Feed.
		r2 := mk(memtable.New())
		r2.Stop()
		if err := r2.Feed(enc); err != errStopped {
			t.Fatalf("%s: Feed after Stop-without-Start: got %v, want errStopped", name, err)
		}
	}
}
