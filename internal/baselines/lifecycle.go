package baselines

import (
	"errors"
	"sync"
	"sync/atomic"
)

// Lifecycle errors returned by the baseline replayers' Feed.
var (
	errNotStarted = errors.New("baselines: replayer not started")
	errStopped    = errors.New("baselines: replayer stopped")
)

// lifeState is the started/stopped machine shared by the baseline
// replayers: it makes Start idempotent, serialises Feed against Stop's
// channel close, and turns Feed on a never-started or stopped replayer
// into a clear error instead of a nil-channel deadlock.
type lifeState struct {
	mu    sync.RWMutex
	state atomic.Int32 // 0 new, 1 started, 2 stopped
}

// startOnce runs init and transitions to started; it returns false (and
// skips init) if the replayer already started or stopped.
func (l *lifeState) startOnce(init func()) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.state.Load() != 0 {
		return false
	}
	init()
	l.state.Store(1)
	return true
}

// feed runs send while holding the state read lock, so a concurrent Stop
// cannot close the channel mid-send.
func (l *lifeState) feed(send func()) error {
	l.mu.RLock()
	defer l.mu.RUnlock()
	switch l.state.Load() {
	case 0:
		return errNotStarted
	case 2:
		return errStopped
	}
	send()
	return nil
}

// stopOnce transitions started → stopped and runs closeFeed under the
// write lock; it returns false if the replayer never started (still
// marking it stopped) or already stopped.
func (l *lifeState) stopOnce(closeFeed func()) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.state.CompareAndSwap(1, 2) {
		l.state.CompareAndSwap(0, 2)
		return false
	}
	closeFeed()
	return true
}
