// Package baselines implements the two state-of-the-art parallel log replay
// competitors the paper evaluates against: ATR (SAP HANA's parallel
// replication replay, Lee et al., VLDB'17) and C5 (Helt et al., VLDB'22).
// Both consume the same encoded epoch stream as AETS and maintain the same
// MVCC Memtable, differing only in dispatch granularity, ordering checks
// and visibility advancement — the axes the paper compares.
package baselines

import (
	"sync"
	"sync/atomic"
)

// tsWatch is a monotone timestamp with blocking waiters: the snapshot
// timestamp of a baseline replayer. Readers wait until the timestamp
// reaches their query snapshot.
type tsWatch struct {
	ts      atomic.Int64
	mu      sync.Mutex
	cond    *sync.Cond
	waiters atomic.Int64
}

func newTSWatch() *tsWatch {
	w := &tsWatch{}
	w.cond = sync.NewCond(&w.mu)
	return w
}

// Load returns the current timestamp.
func (w *tsWatch) Load() int64 { return w.ts.Load() }

// Advance raises the timestamp to at least v and wakes waiters.
func (w *tsWatch) Advance(v int64) {
	for {
		cur := w.ts.Load()
		if cur >= v {
			return
		}
		if w.ts.CompareAndSwap(cur, v) {
			break
		}
	}
	if w.waiters.Load() == 0 {
		return
	}
	w.mu.Lock()
	w.cond.Broadcast()
	w.mu.Unlock()
}

// Wait blocks until the timestamp is ≥ qts.
func (w *tsWatch) Wait(qts int64) {
	if w.ts.Load() >= qts {
		return
	}
	w.waiters.Add(1)
	defer w.waiters.Add(-1)
	w.mu.Lock()
	defer w.mu.Unlock()
	for w.ts.Load() < qts {
		w.cond.Wait()
	}
}
