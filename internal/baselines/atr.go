package baselines

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"aets/internal/epoch"
	"aets/internal/memtable"
	"aets/internal/wal"
)

// ATR reproduces the parallel log replay of SAP HANA's ATR (paper §VI-A5):
//
//   - transactionID-based dispatch: each committed transaction is routed
//     whole to one of the worker queues by TxnID;
//   - workers install versions into the Memtable eagerly, guarding
//     per-record modification order with the *operation sequence check* —
//     before installing, the worker compares the record's applied-write
//     count against the entry's before-image witness (WriteSeq) and
//     synchronises (spins/yields) until every predecessor write has been
//     applied;
//   - a single visibility thread makes transactions visible strictly in
//     primary commit order by advancing the snapshot timestamp.
//
// Like AETS, dispatch parses only entry headers; the full data image is
// decoded by the worker that replays the transaction.
type ATR struct {
	mt      *memtable.Memtable
	workers int

	queues   []chan *atrTxn
	visQ     chan *atrTxn
	snapshot *tsWatch

	feed     chan *epoch.Encoded
	inflight sync.WaitGroup
	wg       sync.WaitGroup
	life     lifeState

	errMu sync.Mutex
	err   error

	txns    atomic.Int64
	entries atomic.Int64
}

// atrTxn is one dispatched transaction. done is closed by the worker after
// all its entries are installed; the visibility thread waits on it.
type atrTxn struct {
	id       uint64
	commitTS int64
	frames   [][]byte
	done     chan struct{}

	// epochEnd marks a sentinel carrying only a timestamp (heartbeats and
	// epoch boundaries) that the visibility thread uses for bookkeeping.
	epochEnd bool
	release  func()
}

// NewATR returns an ATR replayer with the given worker count over mt.
func NewATR(mt *memtable.Memtable, workers int) *ATR {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &ATR{mt: mt, workers: workers, snapshot: newTSWatch()}
}

// Name implements the Replayer interface.
func (a *ATR) Name() string { return "ATR" }

// Memtable returns the replayer's storage engine.
func (a *ATR) Memtable() *memtable.Memtable { return a.mt }

// Start launches the dispatcher, worker and visibility goroutines.
// Idempotent; a stopped replayer cannot be restarted.
func (a *ATR) Start() {
	a.life.startOnce(func() {
		a.feed = make(chan *epoch.Encoded, 8)
		a.visQ = make(chan *atrTxn, 4096)
		a.queues = make([]chan *atrTxn, a.workers)
		for i := range a.queues {
			a.queues[i] = make(chan *atrTxn, 1024)
			a.wg.Add(1)
			go a.worker(a.queues[i])
		}
		a.wg.Add(2)
		go a.dispatcher()
		go a.visibility()
	})
}

// Feed enqueues one encoded epoch. It returns a lifecycle error before
// Start or after Stop instead of hanging on a nil or closed channel.
func (a *ATR) Feed(enc *epoch.Encoded) error {
	return a.life.feed(func() {
		a.inflight.Add(1)
		a.feed <- enc
	})
}

// Drain blocks until every fed epoch is fully visible.
func (a *ATR) Drain() { a.inflight.Wait() }

// Stop drains and shuts down all goroutines. The replayer cannot be
// restarted; Feed after Stop returns an error.
func (a *ATR) Stop() {
	if a.life.stopOnce(func() { close(a.feed) }) {
		a.wg.Wait()
	}
}

// Err returns the first fatal replay error.
func (a *ATR) Err() error {
	a.errMu.Lock()
	defer a.errMu.Unlock()
	return a.err
}

// Stats returns totals replayed since Start.
func (a *ATR) Stats() (txns, entries int64) { return a.txns.Load(), a.entries.Load() }

// WaitVisible blocks until the snapshot timestamp reaches qts. ATR has no
// table groups, so the table set is ignored: everything becomes visible in
// one global order.
func (a *ATR) WaitVisible(qts int64, _ []wal.TableID) { a.snapshot.Wait(qts) }

// GlobalTS returns the current snapshot timestamp.
func (a *ATR) GlobalTS() int64 { return a.snapshot.Load() }

func (a *ATR) fail(err error) {
	a.errMu.Lock()
	if a.err == nil {
		a.err = err
	}
	a.errMu.Unlock()
}

// dispatcher performs the header-only parse, cuts transactions on framing
// boundaries and routes each whole transaction to queue[TxnID % workers].
func (a *ATR) dispatcher() {
	defer a.wg.Done()
	defer func() {
		for _, q := range a.queues {
			close(q)
		}
		close(a.visQ)
	}()
	for enc := range a.feed {
		if err := a.dispatchEpoch(enc); err != nil {
			a.fail(err)
			a.inflight.Done()
		}
	}
}

func (a *ATR) dispatchEpoch(enc *epoch.Encoded) error {
	buf := enc.Buf
	var cur *atrTxn
	for len(buf) > 0 {
		h, sz, err := wal.DecodeHeader(buf)
		if err != nil {
			return fmt.Errorf("atr: epoch %d: %w", enc.Seq, err)
		}
		frame := buf[:sz]
		buf = buf[sz:]
		switch h.Type {
		case wal.TypeBegin:
			cur = &atrTxn{id: h.TxnID, done: make(chan struct{})}
		case wal.TypeCommit:
			if cur == nil || cur.id != h.TxnID {
				return fmt.Errorf("atr: epoch %d: unframed COMMIT %d", enc.Seq, h.TxnID)
			}
			cur.commitTS = h.Timestamp
			a.queues[cur.id%uint64(a.workers)] <- cur
			a.visQ <- cur
			cur = nil
		default:
			if cur == nil || cur.id != h.TxnID {
				return fmt.Errorf("atr: epoch %d: unframed DML of txn %d", enc.Seq, h.TxnID)
			}
			cur.frames = append(cur.frames, frame)
		}
	}
	// Epoch sentinel: even empty (heartbeat) epochs advance visibility and
	// release the Drain waiter once everything before them is visible.
	a.visQ <- &atrTxn{
		epochEnd: true,
		commitTS: enc.LastCommitTS,
		release:  a.inflight.Done,
	}
	return nil
}

// worker replays whole transactions, enforcing per-record order with the
// operation sequence check.
func (a *ATR) worker(q chan *atrTxn) {
	defer a.wg.Done()
	for t := range q {
		for _, frame := range t.frames {
			e, _, err := wal.Decode(frame)
			if err != nil {
				a.fail(fmt.Errorf("atr: txn %d: %w", t.id, err))
				break
			}
			rec := a.mt.Table(e.Table).GetOrCreate(e.RowKey)
			a.sequenceCheck(rec, e.WriteSeq)
			rec.Append(&memtable.Version{
				TxnID:    e.TxnID,
				CommitTS: t.commitTS,
				Deleted:  e.Type == wal.TypeDelete,
				Columns:  e.Columns,
			})
			a.entries.Add(1)
		}
		a.txns.Add(1)
		close(t.done)
	}
}

// sequenceCheck blocks until the record has exactly `seq` installed
// versions — the before-image comparison of ATR's value log, which admits
// a write only when every earlier write to the row (by any transaction,
// including an earlier write of the same transaction) has been applied.
// This is the thread synchronisation the paper charges ATR for: under
// contention workers spin, then yield, then sleep.
func (a *ATR) sequenceCheck(rec *memtable.Record, seq uint64) {
	for spins := 0; ; spins++ {
		if rec.Writes() == seq {
			return
		}
		switch {
		case spins < 64:
			// busy spin
		case spins < 256:
			runtime.Gosched()
		default:
			time.Sleep(time.Microsecond)
		}
	}
}

// visibility is ATR's single commit-order thread: transactions become
// visible strictly in TxnID order once fully installed.
func (a *ATR) visibility() {
	defer a.wg.Done()
	for t := range a.visQ {
		if t.epochEnd {
			a.snapshot.Advance(t.commitTS)
			if t.release != nil {
				t.release()
			}
			continue
		}
		<-t.done
		a.snapshot.Advance(t.commitTS)
	}
}
