package baselines

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"aets/internal/epoch"
	"aets/internal/memtable"
	"aets/internal/wal"
)

// C5 reproduces the replay scheme of C5 (paper §VI-A5):
//
//   - row-based dispatch: every modification is routed to the dedicated
//     queue of its row (hashed onto workers), in transaction order, so each
//     row's versions are applied in primary order by construction with no
//     runtime ordering checks;
//   - the dispatcher must parse the *entire log data image* (full decode,
//     CRC and value copies) to learn the row key — the parsing-cost
//     asymmetry versus AETS/ATR the paper calls out;
//   - a periodic snapshot thread (default every 5 ms) advances the visible
//     snapshot to the timestamp below which all queues are fully applied.
type C5 struct {
	mt      *memtable.Memtable
	workers int
	period  time.Duration

	queues         []chan c5Item
	applied        []paddedTS // per-worker last applied commit timestamp
	backlog        []paddedCount
	lastDispatched atomic.Int64

	snapshot *tsWatch

	feed     chan *epoch.Encoded
	inflight sync.WaitGroup
	wg       sync.WaitGroup
	tickStop chan struct{}
	life     lifeState

	errMu sync.Mutex
	err   error

	txns    atomic.Int64
	entries atomic.Int64
}

// paddedTS and paddedCount avoid false sharing between per-worker counters.
type paddedTS struct {
	v atomic.Int64
	_ [48]byte
}

type paddedCount struct {
	v atomic.Int64
	_ [48]byte
}

// c5Item is one row modification with its commit timestamp resolved.
type c5Item struct {
	entry    wal.Entry
	commitTS int64
	ep       *c5Epoch
}

// c5Epoch tracks completion of one epoch for Drain.
type c5Epoch struct {
	remaining atomic.Int64
	lastTS    int64
	release   func()
}

// NewC5 returns a C5 replayer with the given worker count and snapshot
// period (0 means the paper's 5 ms).
func NewC5(mt *memtable.Memtable, workers int, period time.Duration) *C5 {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if period <= 0 {
		period = 5 * time.Millisecond
	}
	return &C5{mt: mt, workers: workers, period: period, snapshot: newTSWatch()}
}

// Name implements the Replayer interface.
func (c *C5) Name() string { return "C5" }

// Memtable returns the replayer's storage engine.
func (c *C5) Memtable() *memtable.Memtable { return c.mt }

// Start launches the dispatcher, workers and snapshot ticker. Idempotent;
// a stopped replayer cannot be restarted.
func (c *C5) Start() {
	c.life.startOnce(func() {
		c.feed = make(chan *epoch.Encoded, 8)
		c.tickStop = make(chan struct{})
		c.queues = make([]chan c5Item, c.workers)
		c.applied = make([]paddedTS, c.workers)
		c.backlog = make([]paddedCount, c.workers)
		for i := range c.queues {
			c.queues[i] = make(chan c5Item, 4096)
			c.wg.Add(1)
			go c.worker(i)
		}
		c.wg.Add(2)
		go c.dispatcher()
		go c.ticker()
	})
}

// Feed enqueues one encoded epoch. It returns a lifecycle error before
// Start or after Stop instead of hanging on a nil or closed channel.
func (c *C5) Feed(enc *epoch.Encoded) error {
	return c.life.feed(func() {
		c.inflight.Add(1)
		c.feed <- enc
	})
}

// Drain blocks until every fed epoch is fully applied and visible.
func (c *C5) Drain() { c.inflight.Wait() }

// Stop drains and shuts down all goroutines. The replayer cannot be
// restarted; Feed after Stop returns an error.
func (c *C5) Stop() {
	if c.life.stopOnce(func() { close(c.feed) }) {
		c.wg.Wait()
	}
}

// Err returns the first fatal replay error.
func (c *C5) Err() error {
	c.errMu.Lock()
	defer c.errMu.Unlock()
	return c.err
}

// Stats returns totals replayed since Start.
func (c *C5) Stats() (txns, entries int64) { return c.txns.Load(), c.entries.Load() }

// WaitVisible blocks until the periodic snapshot reaches qts; C5's
// visibility is global, so the table set is ignored.
func (c *C5) WaitVisible(qts int64, _ []wal.TableID) { c.snapshot.Wait(qts) }

// GlobalTS returns the current snapshot timestamp.
func (c *C5) GlobalTS() int64 { return c.snapshot.Load() }

func (c *C5) fail(err error) {
	c.errMu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.errMu.Unlock()
}

func (c *C5) dispatcher() {
	defer c.wg.Done()
	defer func() {
		for _, q := range c.queues {
			close(q)
		}
		close(c.tickStop)
	}()
	for enc := range c.feed {
		if err := c.dispatchEpoch(enc); err != nil {
			c.fail(err)
			c.inflight.Done()
		}
	}
}

func (c *C5) dispatchEpoch(enc *epoch.Encoded) error {
	ep := &c5Epoch{lastTS: enc.LastCommitTS, release: c.inflight.Done}
	ep.remaining.Store(1) // guard until the whole epoch is dispatched

	buf := enc.Buf
	var (
		pending []wal.Entry
		inTxn   bool
		curID   uint64
	)
	for len(buf) > 0 {
		// Row-based dispatch requires the row key, which lives in the data
		// image: C5 pays the full decode here.
		e, sz, err := wal.Decode(buf)
		if err != nil {
			return fmt.Errorf("c5: epoch %d: %w", enc.Seq, err)
		}
		buf = buf[sz:]
		switch e.Type {
		case wal.TypeBegin:
			inTxn, curID = true, e.TxnID
			pending = pending[:0]
		case wal.TypeCommit:
			if !inTxn || e.TxnID != curID {
				return fmt.Errorf("c5: epoch %d: unframed COMMIT %d", enc.Seq, e.TxnID)
			}
			ep.remaining.Add(int64(len(pending)))
			for i := range pending {
				w := int(rowHash(pending[i].Table, pending[i].RowKey) % uint64(c.workers))
				c.backlog[w].v.Add(1)
				c.queues[w] <- c5Item{entry: pending[i], commitTS: e.Timestamp, ep: ep}
			}
			c.lastDispatched.Store(e.Timestamp)
			c.txns.Add(1)
			inTxn = false
		default:
			if !inTxn || e.TxnID != curID {
				return fmt.Errorf("c5: epoch %d: unframed DML of txn %d", enc.Seq, e.TxnID)
			}
			pending = append(pending, e)
		}
	}
	if enc.LastCommitTS > c.lastDispatched.Load() {
		c.lastDispatched.Store(enc.LastCommitTS) // heartbeats advance the frontier
	}
	c.epochDone(ep, ep.remaining.Add(-1)) // drop the dispatch guard
	return nil
}

func (c *C5) epochDone(ep *c5Epoch, remaining int64) {
	if remaining != 0 {
		return
	}
	// Only release the Drain accounting here. The snapshot must NOT be
	// advanced on epoch completion: epochs can finish applying out of order
	// across worker queues, and only the ticker's all-queue watermark knows
	// when a timestamp is safe. The up-to-one-period visibility lag this
	// leaves is exactly C5's periodic-snapshot behaviour.
	ep.release()
}

func (c *C5) worker(i int) {
	defer c.wg.Done()
	for item := range c.queues[i] {
		e := &item.entry
		rec := c.mt.Table(e.Table).GetOrCreate(e.RowKey)
		rec.Append(&memtable.Version{
			TxnID:    e.TxnID,
			CommitTS: item.commitTS,
			Deleted:  e.Type == wal.TypeDelete,
			Columns:  e.Columns,
		})
		c.entries.Add(1)
		c.applied[i].v.Store(item.commitTS)
		c.backlog[i].v.Add(-1)
		c.epochDone(item.ep, item.ep.remaining.Add(-1))
	}
}

// ticker periodically computes the watermark below which all dedicated
// queues are fully applied and publishes it as the snapshot timestamp.
func (c *C5) ticker() {
	defer c.wg.Done()
	t := time.NewTicker(c.period)
	defer t.Stop()
	for {
		select {
		case <-c.tickStop:
			// Final watermark on shutdown: the dispatcher only closes the
			// ticker after the feed drains, so one last computation
			// publishes everything already applied.
			c.snapshot.Advance(c.watermark())
			return
		case <-t.C:
			c.snapshot.Advance(c.watermark())
		}
	}
}

// watermark computes the timestamp below which all dedicated queues are
// fully applied. The dispatch frontier is read first: if a worker's backlog
// then reads zero, that worker has applied everything dispatched before the
// frontier was observed (Go atomics are sequentially consistent).
func (c *C5) watermark() int64 {
	snap := c.lastDispatched.Load()
	for i := range c.backlog {
		if c.backlog[i].v.Load() > 0 {
			if ts := c.applied[i].v.Load(); ts < snap {
				snap = ts
			}
		}
	}
	return snap
}

// rowHash mixes table and row key into a queue index (FNV-style).
func rowHash(t wal.TableID, key uint64) uint64 {
	h := uint64(1469598103934665603)
	h = (h ^ uint64(t)) * 1099511628211
	h = (h ^ key) * 1099511628211
	return h
}
