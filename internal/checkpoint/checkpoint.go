// Package checkpoint persists and restores a backup's Memtable state. A
// replica that restarts without a checkpoint must re-replay the entire
// replicated log; with one, it resumes from the checkpoint's replay
// position (the SiloR lineage the paper's value log comes from pairs the
// log with exactly this kind of checkpointing).
//
// The format is a single self-describing stream:
//
//	magic "AETSCKPT" | version u16 | meta (3 varints + flags u8) | tableCount uvarint
//	per table:  tableID uvarint | recordCount uvarint
//	per record: key uvarint | versionCount uvarint
//	per version (oldest first): txnID uvarint | commitTS varint |
//	            deleted u8 | ncols uvarint | cols (id uvarint, len, bytes)
//	trailer: crc32 of everything before it (u32 LE)
//
// Versions are written oldest-first so restoration can rebuild chains with
// ordinary Appends.
package checkpoint

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sort"

	"aets/internal/memtable"
	"aets/internal/wal"
)

var magic = []byte("AETSCKPT")

// Format version history:
//
//	1 — initial format (no fed-ness flag; a fresh checkpoint was
//	    indistinguishable from one cut after epoch 0)
//	2 — a flags byte after the meta varints, bit 0 = Fed
const version = 2

// ErrCorrupt is returned when a checkpoint fails structural or CRC checks.
var ErrCorrupt = errors.New("checkpoint: corrupt stream")

// Meta records the replay position the checkpoint corresponds to. A
// restarted backup asks the primary to re-ship epochs after LastEpochSeq.
type Meta struct {
	// LastEpochSeq is the sequence number of the last fully replayed epoch.
	// Meaningful only when Fed is true.
	LastEpochSeq uint64
	// LastTxnID is the last committed transaction ID contained.
	LastTxnID uint64
	// LastCommitTS is the visibility watermark: every version with a
	// commit timestamp at or below it is contained in the checkpoint.
	LastCommitTS int64
	// Fed reports whether the node had applied any epoch when the
	// checkpoint was cut. False marks a fresh node: without it, a restore
	// could not tell "never fed" (resume from epoch 0) apart from "last
	// applied epoch was 0" (resume from epoch 1), and the handshake would
	// permanently skip epoch 0.
	Fed bool
}

// NextEpochSeq is the replication resume cursor the checkpoint implies:
// 0 for a checkpoint of a never-fed node, LastEpochSeq+1 otherwise.
func (m Meta) NextEpochSeq() uint64 {
	if !m.Fed {
		return 0
	}
	return m.LastEpochSeq + 1
}

// FrozenFunc resolves the columnar base-segment image of (table, key), if
// one exists: the single version a Vacuum at the freeze watermark would
// have kept. Checkpoint writers on columnar nodes use it to cover history
// the compactor moved out of the record chains (colstore.Store.Lookup has
// exactly this signature).
type FrozenFunc func(table wal.TableID, key uint64) (txn uint64, ts int64, deleted bool, cols []wal.Column, ok bool)

// Write serialises the Memtable and meta to w. The caller must ensure no
// concurrent replay is committing while the checkpoint is cut (quiesce at
// an epoch boundary — the natural point, since epochs commit atomically
// with respect to Drain).
func Write(w io.Writer, mt *memtable.Memtable, meta Meta) error {
	return WriteWith(w, mt, meta, nil)
}

// WriteWith is Write for columnar nodes: frozen (may be nil) supplies the
// base-segment image of each record. A record whose chain was emptied by a
// freeze is emitted as that single image; a record frozen and then
// re-dirtied gets the image prepended as its oldest version (the chain
// alone would silently drop columns a read fills down from the segment).
// The image is skipped when the chain's oldest version already has its
// commit timestamp — the freeze-fallback case, where the image never left
// the chain. The format is unchanged: restore rebuilds a plain row-wise
// node, which re-freezes on its own schedule.
func WriteWith(w io.Writer, mt *memtable.Memtable, meta Meta, frozen FrozenFunc) error {
	crc := crc32.NewIEEE()
	bw := bufio.NewWriterSize(io.MultiWriter(w, crc), 1<<16)

	if _, err := bw.Write(magic); err != nil {
		return err
	}
	var v16 [2]byte
	binary.LittleEndian.PutUint16(v16[:], version)
	bw.Write(v16[:])

	var scratch [binary.MaxVarintLen64]byte
	putUvarint := func(x uint64) {
		n := binary.PutUvarint(scratch[:], x)
		bw.Write(scratch[:n])
	}
	putVarint := func(x int64) {
		n := binary.PutVarint(scratch[:], x)
		bw.Write(scratch[:n])
	}

	putUvarint(meta.LastEpochSeq)
	putUvarint(meta.LastTxnID)
	putVarint(meta.LastCommitTS)
	var flags byte
	if meta.Fed {
		flags |= 1
	}
	bw.WriteByte(flags)

	tables := mt.Tables()
	sort.Slice(tables, func(i, j int) bool { return tables[i] < tables[j] })
	putUvarint(uint64(len(tables)))

	for _, tid := range tables {
		tab := mt.Table(tid)
		putUvarint(uint64(tid))
		putUvarint(uint64(tab.Len()))
		putVersion := func(txn uint64, ts int64, deleted bool, cols []wal.Column) {
			putUvarint(txn)
			putVarint(ts)
			if deleted {
				bw.WriteByte(1)
			} else {
				bw.WriteByte(0)
			}
			putUvarint(uint64(len(cols)))
			for _, c := range cols {
				putUvarint(uint64(c.ID))
				putUvarint(uint64(len(c.Value)))
				bw.Write(c.Value)
			}
		}
		tab.Scan(0, ^uint64(0), func(key uint64, rec *memtable.Record) bool {
			putUvarint(key)
			// Collect newest-first chain, emit oldest-first.
			var versions []*memtable.Version
			for v := rec.Latest(); v != nil; v = v.Next() {
				versions = append(versions, v)
			}
			// The frozen base image is the chain's history when it predates
			// the oldest in-chain version (or the whole row when the chain
			// is empty).
			var fTxn uint64
			var fTS int64
			var fDel, fOK bool
			var fCols []wal.Column
			if frozen != nil {
				fTxn, fTS, fDel, fCols, fOK = frozen(tid, key)
				if fOK && len(versions) > 0 && versions[len(versions)-1].CommitTS <= fTS {
					fOK = false // freeze fallback: the image is still in the chain
				}
			}
			n := len(versions)
			if fOK {
				n++
			}
			putUvarint(uint64(n))
			if fOK {
				putVersion(fTxn, fTS, fDel, fCols)
			}
			for i := len(versions) - 1; i >= 0; i-- {
				v := versions[i]
				putVersion(v.TxnID, v.CommitTS, v.Deleted, v.Columns)
			}
			return true
		})
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc.Sum32())
	_, err := w.Write(tail[:])
	return err
}

// Read restores a Memtable and its meta from r, verifying the trailer CRC.
// The stream is read fully into memory first: the CRC covers everything
// before the 4-byte trailer, and verifying it before parsing keeps corrupt
// inputs from building partial state.
func Read(r io.Reader) (*memtable.Memtable, Meta, error) {
	var meta Meta
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, meta, err
	}
	if len(data) < len(magic)+2+4 {
		return nil, meta, fmt.Errorf("%w: short stream", ErrCorrupt)
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return nil, meta, fmt.Errorf("%w: crc mismatch", ErrCorrupt)
	}
	br := bytes.NewReader(body)

	head := make([]byte, len(magic)+2)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, meta, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if string(head[:len(magic)]) != string(magic) {
		return nil, meta, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if got := binary.LittleEndian.Uint16(head[len(magic):]); got != version {
		return nil, meta, fmt.Errorf("checkpoint: unsupported version %d", got)
	}

	rd := func() (uint64, error) { return binary.ReadUvarint(br) }
	rdS := func() (int64, error) { return binary.ReadVarint(br) }
	// rdCount decodes a count and bounds it by the bytes left to parse:
	// the stream is fully in memory and every counted item costs at least
	// one byte, so a larger count is structurally impossible. Allocations
	// sized from counts stay proportional to the input, not to whatever a
	// hostile (CRC-valid) prefix claims.
	rdCount := func() (uint64, error) {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, err
		}
		if n > uint64(br.Len()) {
			return 0, fmt.Errorf("%w: count %d exceeds %d remaining bytes", ErrCorrupt, n, br.Len())
		}
		return n, nil
	}

	if meta.LastEpochSeq, err = rd(); err != nil {
		return nil, meta, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if meta.LastTxnID, err = rd(); err != nil {
		return nil, meta, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if meta.LastCommitTS, err = rdS(); err != nil {
		return nil, meta, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	flags, err := br.ReadByte()
	if err != nil {
		return nil, meta, fmt.Errorf("%w: flags", ErrCorrupt)
	}
	if flags &^ 1 != 0 {
		return nil, meta, fmt.Errorf("%w: unknown flags %#x", ErrCorrupt, flags)
	}
	meta.Fed = flags&1 != 0

	mt := memtable.New()
	nTables, err := rdCount()
	if err != nil {
		return nil, meta, fmt.Errorf("%w: table count", ErrCorrupt)
	}
	for t := uint64(0); t < nTables; t++ {
		tid, err := rd()
		if err != nil {
			return nil, meta, fmt.Errorf("%w: table id", ErrCorrupt)
		}
		nRecs, err := rdCount()
		if err != nil {
			return nil, meta, fmt.Errorf("%w: record count", ErrCorrupt)
		}
		tab := mt.Table(wal.TableID(tid))
		for i := uint64(0); i < nRecs; i++ {
			key, err := rd()
			if err != nil {
				return nil, meta, fmt.Errorf("%w: key", ErrCorrupt)
			}
			rec := tab.GetOrCreate(key)
			nVers, err := rdCount()
			if err != nil {
				return nil, meta, fmt.Errorf("%w: version count", ErrCorrupt)
			}
			for v := uint64(0); v < nVers; v++ {
				ver := &memtable.Version{}
				if ver.TxnID, err = rd(); err != nil {
					return nil, meta, fmt.Errorf("%w: txn id", ErrCorrupt)
				}
				if ver.CommitTS, err = rdS(); err != nil {
					return nil, meta, fmt.Errorf("%w: commit ts", ErrCorrupt)
				}
				del, err := br.ReadByte()
				if err != nil {
					return nil, meta, fmt.Errorf("%w: deleted flag", ErrCorrupt)
				}
				ver.Deleted = del == 1
				nCols, err := rdCount()
				if err != nil {
					return nil, meta, fmt.Errorf("%w: column count", ErrCorrupt)
				}
				if nCols > 0 {
					// Grow incrementally from a small capacity instead of
					// trusting the decoded count with one big make: the
					// count is bounded above, but keeping the allocation
					// proportional to parsed data costs nothing.
					ver.Columns = make([]wal.Column, 0, min(nCols, 16))
					for c := uint64(0); c < nCols; c++ {
						id, err := rd()
						if err != nil {
							return nil, meta, fmt.Errorf("%w: column id", ErrCorrupt)
						}
						n, err := rdCount()
						if err != nil {
							return nil, meta, fmt.Errorf("%w: column length", ErrCorrupt)
						}
						buf := make([]byte, n)
						if _, err := io.ReadFull(br, buf); err != nil {
							return nil, meta, fmt.Errorf("%w: column value", ErrCorrupt)
						}
						ver.Columns = append(ver.Columns, wal.Column{ID: uint32(id), Value: buf})
					}
				}
				rec.Append(ver)
			}
		}
	}

	if br.Len() != 0 {
		return nil, meta, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, br.Len())
	}
	return mt, meta, nil
}
