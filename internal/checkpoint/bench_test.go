package checkpoint

import (
	"bytes"
	"io"
	"testing"

	"aets/internal/memtable"
	"aets/internal/primary"
	"aets/internal/reference"
	"aets/internal/workload"
)

func benchState(b *testing.B) (*memtable.Memtable, Meta) {
	b.Helper()
	p := primary.New(workload.NewTPCC(2), 1)
	txns := p.GenerateTxns(2000)
	mt := memtable.New()
	reference.Apply(mt, txns)
	return mt, Meta{LastTxnID: txns[len(txns)-1].ID, LastCommitTS: txns[len(txns)-1].CommitTS}
}

func BenchmarkCheckpointWrite(b *testing.B) {
	mt, meta := benchState(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Write(io.Discard, mt, meta); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCheckpointRead(b *testing.B) {
	mt, meta := benchState(b)
	var buf bytes.Buffer
	if err := Write(&buf, mt, meta); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Read(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
