package checkpoint

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"

	"aets/internal/memtable"
	"aets/internal/wal"
)

// fuzzSeedV2 is a small valid version-2 stream: two tables, multi-column
// versions, a tombstone.
func fuzzSeedV2(tb testing.TB) []byte {
	tb.Helper()
	mt := memtable.New()
	tab := mt.Table(1)
	rec := tab.GetOrCreate(7)
	rec.Append(&memtable.Version{TxnID: 1, CommitTS: 10, Columns: []wal.Column{
		{ID: 0, Value: []byte("hello")},
		{ID: 3, Value: []byte{0xde, 0xad}},
	}})
	rec.Append(&memtable.Version{TxnID: 2, CommitTS: 20, Deleted: true})
	mt.Table(5).GetOrCreate(42).Append(&memtable.Version{TxnID: 3, CommitTS: 30,
		Columns: []wal.Column{{ID: 1, Value: nil}}})
	var buf bytes.Buffer
	if err := Write(&buf, mt, Meta{LastEpochSeq: 4, LastTxnID: 3, LastCommitTS: 30, Fed: true}); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// fuzzSeedV1 rewrites the v2 seed as a version-1 stream (no flags byte),
// with a recomputed trailer. Read must reject it as an unsupported
// version without crashing — the historical format keeps the version
// branch covered.
func fuzzSeedV1(tb testing.TB) []byte {
	tb.Helper()
	v2 := fuzzSeedV2(tb)
	body := v2[: len(v2)-4 : len(v2)-4]
	// Strip the flags byte: it sits after magic+version and three varints.
	off := len(magic) + 2
	br := bytes.NewReader(body[off:])
	for i := 0; i < 2; i++ {
		if _, err := binary.ReadUvarint(br); err != nil {
			tb.Fatal(err)
		}
	}
	if _, err := binary.ReadVarint(br); err != nil {
		tb.Fatal(err)
	}
	flagsAt := len(body) - br.Len() - 1
	v1 := append([]byte(nil), body[:flagsAt]...)
	v1 = append(v1, body[flagsAt+1:]...)
	binary.LittleEndian.PutUint16(v1[len(magic):], 1)
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc32.ChecksumIEEE(v1))
	return append(v1, tail[:]...)
}

// FuzzRead throws mutated checkpoint streams at Read. The invariant is
// purely defensive: Read must return (not panic, not OOM on a hostile
// length prefix), and when it does accept a stream, writing the result
// back out and re-reading it must be stable.
func FuzzRead(f *testing.F) {
	f.Add(fuzzSeedV2(f))
	f.Add(fuzzSeedV1(f))
	var empty bytes.Buffer
	if err := Write(&empty, memtable.New(), Meta{}); err != nil {
		f.Fatal(err)
	}
	f.Add(empty.Bytes())
	// A CRC-valid stream with a hostile column count: crafted corruption
	// that the trailer check alone cannot reject.
	hostile := append([]byte(nil), fuzzSeedV2(f)...)
	hostile[len(hostile)-5] ^= 0x40 // scramble a body byte near the tail
	binary.LittleEndian.PutUint32(hostile[len(hostile)-4:], crc32.ChecksumIEEE(hostile[:len(hostile)-4]))
	f.Add(hostile)

	f.Fuzz(func(t *testing.T, data []byte) {
		mt, meta, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, mt, meta); err != nil {
			t.Fatalf("re-write of accepted stream: %v", err)
		}
		if _, _, err := Read(&buf); err != nil {
			t.Fatalf("re-read of re-written stream: %v", err)
		}
	})
}
