package checkpoint

import (
	"bytes"
	"errors"
	"testing"

	"aets/internal/memtable"
	"aets/internal/primary"
	"aets/internal/reference"
	"aets/internal/workload"
)

func populatedMemtable(t *testing.T) (*memtable.Memtable, Meta) {
	t.Helper()
	p := primary.New(workload.NewTPCC(2), 33)
	txns := p.GenerateTxns(800)
	mt := memtable.New()
	reference.Apply(mt, txns)
	return mt, Meta{
		LastEpochSeq: 3,
		LastTxnID:    txns[len(txns)-1].ID,
		LastCommitTS: txns[len(txns)-1].CommitTS,
	}
}

func TestRoundTrip(t *testing.T) {
	mt, meta := populatedMemtable(t)
	var buf bytes.Buffer
	if err := Write(&buf, mt, meta); err != nil {
		t.Fatal(err)
	}
	got, gotMeta, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if gotMeta != meta {
		t.Fatalf("meta %+v, want %+v", gotMeta, meta)
	}
	tables := workload.TableIDs(workload.NewTPCC(2).Tables())
	if err := reference.Equal(mt, got, tables); err != nil {
		t.Fatal(err)
	}
	if err := reference.CheckChains(got, tables); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyMemtableRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, memtable.New(), Meta{LastEpochSeq: 7}); err != nil {
		t.Fatal(err)
	}
	mt, meta, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if meta.LastEpochSeq != 7 || len(mt.Tables()) != 0 {
		t.Fatalf("meta %+v tables %v", meta, mt.Tables())
	}
}

func TestCorruptionRejected(t *testing.T) {
	mt, meta := populatedMemtable(t)
	var buf bytes.Buffer
	if err := Write(&buf, mt, meta); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	for _, corrupt := range []func([]byte) []byte{
		func(b []byte) []byte { b[len(b)/2] ^= 0xff; return b },                     // body flip
		func(b []byte) []byte { b[len(b)-2] ^= 0xff; return b },                     // trailer flip
		func(b []byte) []byte { return b[:len(b)-5] },                               // truncation
		func(b []byte) []byte { b[0] = 'X'; return b },                              // magic
		func(b []byte) []byte { return append(b, 1, 2, 3) },                         // trailing garbage
		func(b []byte) []byte { return b[:3] },                                      // tiny
		func(b []byte) []byte { b[len(magic)] = 99; b[len(magic)+1] = 0; return b }, // version
	} {
		cp := append([]byte(nil), data...)
		if _, _, err := Read(bytes.NewReader(corrupt(cp))); err == nil {
			t.Fatal("corrupted checkpoint accepted")
		}
	}
}

func TestCorruptionErrorType(t *testing.T) {
	mt, meta := populatedMemtable(t)
	var buf bytes.Buffer
	_ = Write(&buf, mt, meta)
	data := buf.Bytes()
	data[len(data)/3] ^= 0x55
	_, _, err := Read(bytes.NewReader(data))
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
}

// TestResumeReplayAfterRestore is the recovery story end to end: replay
// half the stream, checkpoint, restore into a fresh node, replay the rest,
// and compare against a full serial application.
func TestResumeReplayAfterRestore(t *testing.T) {
	p := primary.New(workload.NewTPCC(2), 44)
	txns := p.GenerateTxns(1000)
	tables := workload.TableIDs(workload.NewTPCC(2).Tables())

	full := memtable.New()
	reference.Apply(full, txns)

	// First half on node A, checkpointed.
	nodeA := memtable.New()
	reference.Apply(nodeA, txns[:500])
	var buf bytes.Buffer
	if err := Write(&buf, nodeA, Meta{LastTxnID: txns[499].ID, LastCommitTS: txns[499].CommitTS}); err != nil {
		t.Fatal(err)
	}

	// Restore on node B, resume with the second half.
	nodeB, meta, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if meta.LastTxnID != txns[499].ID {
		t.Fatalf("resume position %d, want %d", meta.LastTxnID, txns[499].ID)
	}
	reference.Apply(nodeB, txns[500:])

	if err := reference.Equal(full, nodeB, tables); err != nil {
		t.Fatal(err)
	}
}
