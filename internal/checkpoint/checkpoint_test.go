package checkpoint

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"

	"aets/internal/memtable"
	"aets/internal/primary"
	"aets/internal/reference"
	"aets/internal/workload"
)

func populatedMemtable(t *testing.T) (*memtable.Memtable, Meta) {
	t.Helper()
	p := primary.New(workload.NewTPCC(2), 33)
	txns := p.GenerateTxns(800)
	mt := memtable.New()
	reference.Apply(mt, txns)
	return mt, Meta{
		LastEpochSeq: 3,
		LastTxnID:    txns[len(txns)-1].ID,
		LastCommitTS: txns[len(txns)-1].CommitTS,
		Fed:          true,
	}
}

func TestNextEpochSeq(t *testing.T) {
	if got := (Meta{}).NextEpochSeq(); got != 0 {
		t.Fatalf("fresh meta resume cursor %d, want 0", got)
	}
	if got := (Meta{LastEpochSeq: 0, Fed: true}).NextEpochSeq(); got != 1 {
		t.Fatalf("fed-at-epoch-0 resume cursor %d, want 1", got)
	}
	if got := (Meta{LastEpochSeq: 9, Fed: true}).NextEpochSeq(); got != 10 {
		t.Fatalf("resume cursor %d, want 10", got)
	}
}

// TestFedFlagRoundTrip covers both polarities: a fresh (never-fed)
// checkpoint must restore as never-fed, and a fed-at-epoch-0 checkpoint
// must restore with the cursor past epoch 0. Before the flags byte the
// two were indistinguishable.
func TestFedFlagRoundTrip(t *testing.T) {
	for _, fed := range []bool{false, true} {
		var buf bytes.Buffer
		if err := Write(&buf, memtable.New(), Meta{Fed: fed}); err != nil {
			t.Fatal(err)
		}
		_, meta, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if meta.Fed != fed {
			t.Fatalf("Fed=%v did not round-trip", fed)
		}
		want := uint64(0)
		if fed {
			want = 1
		}
		if got := meta.NextEpochSeq(); got != want {
			t.Fatalf("Fed=%v: resume cursor %d, want %d", fed, got, want)
		}
	}
}

func TestUnknownFlagsRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, memtable.New(), Meta{}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// The meta of a zero Meta is three zero varints; the flags byte is
	// right after them. Set a reserved bit and refresh the trailer CRC.
	flagsOff := len(magic) + 2 + 3
	data[flagsOff] |= 0x80
	body := data[:len(data)-4]
	binary.LittleEndian.PutUint32(data[len(data)-4:], crc32.ChecksumIEEE(body))
	if _, _, err := Read(bytes.NewReader(data)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt for unknown flags, got %v", err)
	}
}

func TestRoundTrip(t *testing.T) {
	mt, meta := populatedMemtable(t)
	var buf bytes.Buffer
	if err := Write(&buf, mt, meta); err != nil {
		t.Fatal(err)
	}
	got, gotMeta, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if gotMeta != meta {
		t.Fatalf("meta %+v, want %+v", gotMeta, meta)
	}
	tables := workload.TableIDs(workload.NewTPCC(2).Tables())
	if err := reference.Equal(mt, got, tables); err != nil {
		t.Fatal(err)
	}
	if err := reference.CheckChains(got, tables); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyMemtableRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, memtable.New(), Meta{LastEpochSeq: 7}); err != nil {
		t.Fatal(err)
	}
	mt, meta, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if meta.LastEpochSeq != 7 || len(mt.Tables()) != 0 {
		t.Fatalf("meta %+v tables %v", meta, mt.Tables())
	}
}

func TestCorruptionRejected(t *testing.T) {
	mt, meta := populatedMemtable(t)
	var buf bytes.Buffer
	if err := Write(&buf, mt, meta); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	for _, corrupt := range []func([]byte) []byte{
		func(b []byte) []byte { b[len(b)/2] ^= 0xff; return b },                     // body flip
		func(b []byte) []byte { b[len(b)-2] ^= 0xff; return b },                     // trailer flip
		func(b []byte) []byte { return b[:len(b)-5] },                               // truncation
		func(b []byte) []byte { b[0] = 'X'; return b },                              // magic
		func(b []byte) []byte { return append(b, 1, 2, 3) },                         // trailing garbage
		func(b []byte) []byte { return b[:3] },                                      // tiny
		func(b []byte) []byte { b[len(magic)] = 99; b[len(magic)+1] = 0; return b }, // version
	} {
		cp := append([]byte(nil), data...)
		if _, _, err := Read(bytes.NewReader(corrupt(cp))); err == nil {
			t.Fatal("corrupted checkpoint accepted")
		}
	}
}

func TestCorruptionErrorType(t *testing.T) {
	mt, meta := populatedMemtable(t)
	var buf bytes.Buffer
	_ = Write(&buf, mt, meta)
	data := buf.Bytes()
	data[len(data)/3] ^= 0x55
	_, _, err := Read(bytes.NewReader(data))
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
}

// TestResumeReplayAfterRestore is the recovery story end to end: replay
// half the stream, checkpoint, restore into a fresh node, replay the rest,
// and compare against a full serial application.
func TestResumeReplayAfterRestore(t *testing.T) {
	p := primary.New(workload.NewTPCC(2), 44)
	txns := p.GenerateTxns(1000)
	tables := workload.TableIDs(workload.NewTPCC(2).Tables())

	full := memtable.New()
	reference.Apply(full, txns)

	// First half on node A, checkpointed.
	nodeA := memtable.New()
	reference.Apply(nodeA, txns[:500])
	var buf bytes.Buffer
	if err := Write(&buf, nodeA, Meta{LastTxnID: txns[499].ID, LastCommitTS: txns[499].CommitTS}); err != nil {
		t.Fatal(err)
	}

	// Restore on node B, resume with the second half.
	nodeB, meta, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if meta.LastTxnID != txns[499].ID {
		t.Fatalf("resume position %d, want %d", meta.LastTxnID, txns[499].ID)
	}
	reference.Apply(nodeB, txns[500:])

	if err := reference.Equal(full, nodeB, tables); err != nil {
		t.Fatal(err)
	}
}
