package alloc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestUrgencyOrderingProperty: across random loads, a group's allocation
// never decreases when its rate increases (everything else fixed) — for
// the log urgency the paper argues for and the linear variant it rejects.
func TestUrgencyOrderingProperty(t *testing.T) {
	for _, u := range []UrgencyFunc{LogUrgency, LinearUrgency} {
		f := func(seed int64) bool {
			r := rand.New(rand.NewSource(seed))
			n := 2 + r.Intn(8)
			groups := make([]GroupLoad, n)
			for i := range groups {
				groups[i] = GroupLoad{Unreplayed: 1 + r.Intn(1<<16), Rate: r.Float64() * 1e4}
			}
			total := n + r.Intn(32)
			before := Allocate(total, groups, u)

			i := r.Intn(n)
			groups[i].Rate *= 10
			after := Allocate(total, groups, u)
			return after[i] >= before[i]
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestLinearUrgencyStarvation demonstrates the numerical-stability problem
// the paper's log choice avoids: with λ = r, one very hot group starves
// the rest down to their single reserved worker, while λ = log r keeps the
// spread bounded.
func TestLinearUrgencyStarvation(t *testing.T) {
	groups := []GroupLoad{
		{Unreplayed: 1 << 20, Rate: 1e6},
		{Unreplayed: 1 << 20, Rate: 10},
		{Unreplayed: 1 << 20, Rate: 10},
	}
	linear := Allocate(24, groups, LinearUrgency)
	logd := Allocate(24, groups, LogUrgency)

	if linear[1] != 1 || linear[2] != 1 {
		t.Fatalf("linear urgency should starve cool groups to their reserved worker: %v", linear)
	}
	if logd[1] < 3 {
		t.Fatalf("log urgency should keep cool groups working: %v", logd)
	}
	if logd[0] <= logd[1] {
		t.Fatalf("log urgency must still favour the hot group: %v", logd)
	}
}
