// Package alloc implements AETS's adaptive fine-grained thread resource
// allocation (paper §IV-B). Given a fixed budget T of replay workers, the
// number t_gi of workers per table group satisfies
//
//	λ_gi · n_gi / t_gi = const across groups,  Σ t_gi = T,
//
// where n_gi is the group's un-replayed log size and λ_gi the urgency factor
// derived from the group's predicted table access rate. Solving the system
// gives t_gi ∝ λ_gi·n_gi; the remainder of the package turns that fractional
// solution into integer worker counts.
package alloc

import "math"

// UrgencyFunc maps a table group's access rate to its urgency factor λ.
type UrgencyFunc func(rate float64) float64

// LogUrgency is the paper's choice: λ = log10(r), clamped to ≥1 so groups
// with tiny rates still progress and the solution stays numerically stable.
func LogUrgency(rate float64) float64 {
	if rate <= 10 {
		return 1
	}
	return math.Log10(rate)
}

// LinearUrgency uses λ = r directly — the numerically unstable alternative
// the paper argues against (a rate of 1000 would grab 1000× the threads).
// Kept for the ablation benchmark.
func LinearUrgency(rate float64) float64 {
	if rate < 1 {
		return 1
	}
	return rate
}

// NoURgency ignores the access rate entirely (λ = 1): the AETS-NOAC
// configuration of Fig 13, which allocates threads by log size only.
func NoURgency(float64) float64 { return 1 }

// GroupLoad describes one table group's demand for replay workers.
type GroupLoad struct {
	// Unreplayed is n_gi: bytes of received but un-replayed log entries.
	Unreplayed int
	// Rate is the predicted table access rate of the group.
	Rate float64
}

// Allocate distributes total workers over the groups. Every group with
// un-replayed work receives at least one worker; groups with no work receive
// zero. The fractional shares t_i ∝ λ(rate_i)·n_i are integerised with the
// largest-remainder method, which keeps the result monotone in λ·n and
// exactly sums to total (or to the number of non-empty groups when total is
// smaller than that).
func Allocate(total int, groups []GroupLoad, urgency UrgencyFunc) []int {
	if urgency == nil {
		urgency = LogUrgency
	}
	out := make([]int, len(groups))
	if total <= 0 {
		return out
	}

	weights := make([]float64, len(groups))
	var sum float64
	active := 0
	for i, g := range groups {
		if g.Unreplayed <= 0 {
			continue
		}
		w := urgency(g.Rate) * float64(g.Unreplayed)
		if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			w = 1
		}
		weights[i] = w
		sum += w
		active++
	}
	if active == 0 {
		return out
	}
	if total <= active {
		// Not enough workers for one each: give one to the heaviest groups.
		order := make([]iwPair, 0, active)
		for i, w := range weights {
			if w > 0 {
				order = append(order, iwPair{i, w})
			}
		}
		sortByWeight(order)
		for k := 0; k < total && k < len(order); k++ {
			out[order[k].i] = 1
		}
		return out
	}

	// Reserve one worker per active group, distribute the rest by weight
	// with largest remainders.
	rest := total - active
	type share struct {
		i    int
		frac float64
	}
	shares := make([]share, 0, active)
	assigned := 0
	for i, w := range weights {
		if w == 0 {
			continue
		}
		exact := float64(rest) * w / sum
		whole := int(exact)
		out[i] = 1 + whole
		assigned += whole
		shares = append(shares, share{i, exact - float64(whole)})
	}
	for left := rest - assigned; left > 0; left-- {
		best := -1
		for k := range shares {
			if best == -1 || shares[k].frac > shares[best].frac {
				best = k
			}
		}
		out[shares[best].i]++
		shares[best].frac = -1
	}
	return out
}

type iwPair = struct {
	i int
	w float64
}

func sortByWeight(s []iwPair) {
	// Insertion sort: group counts are small (tens), and this avoids pulling
	// in sort for a hot path invoked once per epoch.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].w > s[j-1].w; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
