package alloc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func sum(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

func TestAllocateSumsToTotalQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		total := 1 + r.Intn(64)
		n := 1 + r.Intn(20)
		groups := make([]GroupLoad, n)
		active := 0
		for i := range groups {
			if r.Intn(4) != 0 {
				groups[i] = GroupLoad{Unreplayed: 1 + r.Intn(1<<20), Rate: r.Float64() * 1e5}
				active++
			}
		}
		got := Allocate(total, groups, LogUrgency)
		s := sum(got)
		want := total
		if active == 0 {
			want = 0
		} else if total > active {
			want = total
		} else {
			want = total // one each for the heaviest `total` groups
		}
		if s != want {
			t.Logf("sum=%d want=%d total=%d active=%d", s, want, total, active)
			return false
		}
		for i, g := range groups {
			if g.Unreplayed <= 0 && got[i] != 0 {
				return false // empty groups get nothing
			}
			if g.Unreplayed > 0 && total >= active && got[i] < 1 {
				return false // non-empty groups get at least one when budget allows
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAllocateProportionalToWeight(t *testing.T) {
	groups := []GroupLoad{
		{Unreplayed: 1 << 20, Rate: 10},      // λ=1
		{Unreplayed: 1 << 20, Rate: 1000000}, // λ=6
	}
	got := Allocate(14, groups, LogUrgency)
	// Weights 1:6 over 12 spare workers (after 1 each) → 1+1=2 (±1) vs 1+11=12.
	if got[0]+got[1] != 14 {
		t.Fatalf("sum = %d", got[0]+got[1])
	}
	if got[1] <= got[0]*3 {
		t.Fatalf("allocation not urgency-weighted: %v", got)
	}
}

func TestAllocateMonotoneInLoad(t *testing.T) {
	groups := []GroupLoad{
		{Unreplayed: 100, Rate: 100},
		{Unreplayed: 1000, Rate: 100},
		{Unreplayed: 10000, Rate: 100},
	}
	got := Allocate(12, groups, LogUrgency)
	if !(got[0] <= got[1] && got[1] <= got[2]) {
		t.Fatalf("allocation not monotone in log size: %v", got)
	}
}

func TestAllocateScarceBudget(t *testing.T) {
	groups := []GroupLoad{
		{Unreplayed: 10, Rate: 1},
		{Unreplayed: 1000000, Rate: 100000},
		{Unreplayed: 500, Rate: 10},
	}
	got := Allocate(1, groups, LogUrgency)
	if sum(got) != 1 || got[1] != 1 {
		t.Fatalf("single worker must go to the heaviest group: %v", got)
	}
	got = Allocate(2, groups, LogUrgency)
	if sum(got) != 2 || got[1] != 1 {
		t.Fatalf("two workers must cover the two heaviest groups: %v", got)
	}
}

func TestAllocateZeroCases(t *testing.T) {
	if got := Allocate(0, []GroupLoad{{Unreplayed: 1}}, nil); sum(got) != 0 {
		t.Fatal("zero budget must allocate nothing")
	}
	if got := Allocate(8, nil, nil); len(got) != 0 {
		t.Fatal("no groups must yield empty result")
	}
	if got := Allocate(8, []GroupLoad{{}, {}}, nil); sum(got) != 0 {
		t.Fatal("all-empty groups must allocate nothing")
	}
}

func TestUrgencyFunctions(t *testing.T) {
	if LogUrgency(1000) != 3 {
		t.Fatalf("LogUrgency(1000) = %v, want 3 (the paper's log10 example)", LogUrgency(1000))
	}
	if LogUrgency(5) != 1 {
		t.Fatalf("LogUrgency(5) = %v, want clamp to 1", LogUrgency(5))
	}
	if LinearUrgency(1000) != 1000 || LinearUrgency(0.1) != 1 {
		t.Fatal("LinearUrgency broken")
	}
	if NoURgency(12345) != 1 {
		t.Fatal("NoURgency must ignore rate")
	}
	if math.IsNaN(LogUrgency(0)) {
		t.Fatal("LogUrgency(0) must be finite")
	}
}

func TestAllocateDefaultsUrgency(t *testing.T) {
	groups := []GroupLoad{{Unreplayed: 100, Rate: 1000}}
	if got := Allocate(4, groups, nil); got[0] != 4 {
		t.Fatalf("nil urgency: %v", got)
	}
}
