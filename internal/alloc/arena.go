package alloc

// arena.go extends the package's thread-budget allocation with a memory
// allocator of the same spirit: Slab is a chunked, resettable arena that
// amortises many small allocations into few large ones, generalising the
// pattern wal.DecodeArena hand-rolls for columns and value bytes. Replay
// uses it to carve per-epoch Version slabs that are recycled wholesale
// once the epoch's versions fall below the vacuum horizon, instead of
// leaving the garbage collector to trace and free them one by one.

// Slab is a chunked arena of T. Take returns contiguous runs carved from
// the current chunk; when a run does not fit, a fresh chunk is allocated
// with geometrically growing capacity, so a reused slab converges on a
// single chunk sized for its steady-state demand. The zero value is ready
// to use. Not safe for concurrent use.
type Slab[T any] struct {
	chunks [][]T // chunks[:ci] are full or skipped; chunks[ci] is current
	ci     int
	off    int // carve offset within chunks[ci]
	dirty  int // leading elements of chunks[0] that may hold stale data
}

// slabMinChunk is the smallest chunk capacity, in elements.
const slabMinChunk = 256

// Take returns a contiguous []T of length n carved from the slab. The
// slice aliases slab memory: it stays valid until Reset, and Reset must
// not be called while any taken slice is still referenced. After a Reset
// the returned memory may hold stale elements — callers that need zeroed
// storage must clear it.
func (s *Slab[T]) Take(n int) []T {
	if n <= 0 {
		return nil
	}
	for s.ci < len(s.chunks) {
		c := s.chunks[s.ci]
		if cap(c)-s.off >= n {
			out := c[s.off : s.off+n : s.off+n]
			s.off += n
			return out
		}
		s.ci++
		s.off = 0
	}
	// No retained chunk fits: allocate one, doubling the largest capacity
	// so far (minimum slabMinChunk, at least n).
	c := slabMinChunk
	if len(s.chunks) > 0 {
		if last := 2 * cap(s.chunks[len(s.chunks)-1]); last > c {
			c = last
		}
	}
	if n > c {
		c = n
	}
	chunk := make([]T, c)
	s.chunks = append(s.chunks, chunk)
	s.ci = len(s.chunks) - 1
	s.off = n
	return chunk[0:n:n]
}

// TakeZeroed is Take with the guarantee that every returned element is the
// zero value. Freshly allocated chunks arrive zeroed from the runtime, so
// the only memory that needs clearing is the region of the retained chunk
// being carved again after a Reset — one clear per reuse cycle instead of
// one per Take.
func (s *Slab[T]) TakeZeroed(n int) []T {
	ci, off := s.ci, s.off
	out := s.Take(n)
	if ci == 0 && s.ci == 0 && off < s.dirty {
		end := off + n
		if end > s.dirty {
			end = s.dirty
		}
		clear(out[:end-off])
	}
	return out
}

// Reset rewinds the slab so its chunks can be carved again. Only the
// largest chunk is retained — smaller chunks from the growth phase are
// released to the collector — so repeated Take/Reset cycles settle on one
// allocation-free chunk. The caller must guarantee nothing references
// previously taken slices.
func (s *Slab[T]) Reset() {
	if len(s.chunks) > 1 {
		largest := s.chunks[0]
		for _, c := range s.chunks[1:] {
			if cap(c) > cap(largest) {
				largest = c
			}
		}
		s.chunks = append(s.chunks[:0], largest)
	}
	s.ci = 0
	s.off = 0
	if len(s.chunks) > 0 {
		// Conservative: anything in the retained chunk may be stale.
		s.dirty = cap(s.chunks[0])
	}
}

// Cap returns the total capacity, in elements, across all chunks.
func (s *Slab[T]) Cap() int {
	n := 0
	for _, c := range s.chunks {
		n += cap(c)
	}
	return n
}
