package alloc

import "testing"

func TestSlabTakeContiguousAndDistinct(t *testing.T) {
	var s Slab[int]
	a := s.Take(10)
	b := s.Take(10)
	if len(a) != 10 || len(b) != 10 {
		t.Fatalf("lengths %d/%d, want 10/10", len(a), len(b))
	}
	// Runs must not alias each other.
	for i := range a {
		a[i] = i + 1
	}
	for i := range b {
		b[i] = -(i + 1)
	}
	for i := range a {
		if a[i] != i+1 {
			t.Fatalf("a[%d] = %d after writing b: runs alias", i, a[i])
		}
	}
	// Appending to a taken run must not grow into the next run (full cap).
	a = append(a, 99)
	if b[0] != -1 {
		t.Fatal("append to run a overwrote run b")
	}
}

func TestSlabGrowth(t *testing.T) {
	var s Slab[byte]
	if s.Take(0) != nil {
		t.Fatal("Take(0) should return nil")
	}
	s.Take(1)
	if s.Cap() != slabMinChunk {
		t.Fatalf("first chunk cap %d, want %d", s.Cap(), slabMinChunk)
	}
	// A run larger than any doubling lands in an exactly sized chunk.
	big := s.Take(10 * slabMinChunk)
	if len(big) != 10*slabMinChunk {
		t.Fatalf("big run length %d", len(big))
	}
	// Geometric growth: next overflow chunk doubles the largest so far.
	s.Take(10*slabMinChunk - 1) // fills most of the big chunk
	before := s.Cap()
	s.Take(2) // does not fit the big chunk's tail... or does; force overflow
	s.Take(10 * slabMinChunk)
	if s.Cap() <= before {
		t.Fatal("overflow did not allocate a new chunk")
	}
}

func TestSlabResetReuses(t *testing.T) {
	var s Slab[uint64]
	s.Take(100)
	s.Take(1000) // growth phase: several chunks
	s.Reset()
	if len(s.chunks) != 1 {
		t.Fatalf("Reset retained %d chunks, want 1", len(s.chunks))
	}
	capBefore := s.Cap()
	for i := 0; i < 10; i++ {
		s.Take(100)
		s.Reset()
	}
	if s.Cap() != capBefore {
		t.Fatalf("steady-state Take/Reset changed capacity %d → %d", capBefore, s.Cap())
	}
}

func TestSlabTakeZeroed(t *testing.T) {
	var s Slab[uint64]
	a := s.TakeZeroed(50)
	for i := range a {
		if a[i] != 0 {
			t.Fatalf("fresh TakeZeroed[%d] = %d", i, a[i])
		}
		a[i] = 0xdead
	}
	s.Reset()
	// The same memory comes back; it must be cleared.
	b := s.TakeZeroed(50)
	for i := range b {
		if b[i] != 0 {
			t.Fatalf("post-Reset TakeZeroed[%d] = %#x, stale data leaked", i, b[i])
		}
	}
	// A run extending past the dirty region must be zero throughout.
	c := s.TakeZeroed(slabMinChunk)
	for i := range c {
		if c[i] != 0 {
			t.Fatalf("overflow TakeZeroed[%d] = %#x", i, c[i])
		}
	}
}
