package colstore

import (
	"sync"

	"aets/internal/memtable"
	"aets/internal/wal"
)

// Compactor drives epoch-aligned freezing: each RunOnce takes the caller's
// watermark (the same "no reader below this" timestamp Vacuum takes — the
// natural cadence is the GC loop's) and, per table, freezes every record
// whose entire chain is at or below it, merging the frozen rows with the
// table's previous base segment into a fresh immutable segment.
//
// The pass is: collect candidates and snapshot their head versions with no
// table-wide lock held; build the merged segment (deep-copying all value
// bytes); then, under the table's write lock, publish the new base and
// FreezeCommit every candidate. Readers hold the read lock for the span of
// one operation, so they observe the publish and the chain unlinks
// atomically. A writer that raced a candidate (appended past the
// watermark) is detected by FreezeCommit's head check and degrades to a
// plain Vacuum — its segment row stays a correct base under the new chain.
type Compactor struct {
	mt    *memtable.Memtable
	store *Store

	mu   sync.Mutex // one pass at a time
	hot  []*memtable.Record
	rows []frozenRow
}

type frozenRow struct {
	rec *memtable.Record
	h0  *memtable.Version
}

// NewCompactor returns a compactor freezing mt's cold chains into store.
func NewCompactor(mt *memtable.Memtable, store *Store) *Compactor {
	return &Compactor{mt: mt, store: store}
}

// RunOnce performs one compaction pass at the given watermark and returns
// the number of rows frozen. Watermarks must not decrease across calls and
// must respect the same contract as Vacuum: no active or future query may
// read below it. Zero or negative watermarks are no-ops (mirrors the GC
// loop's "nothing visible yet" guard).
func (c *Compactor) RunOnce(watermark int64) int {
	if watermark <= 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	frozen := 0
	for _, id := range c.mt.Tables() {
		frozen += c.compactTable(id, watermark)
	}
	if frozen > 0 {
		c.store.FrozenRows.Add(int64(frozen))
	}
	c.store.Compactions.Add(1)
	return frozen
}

func (c *Compactor) compactTable(id wal.TableID, watermark int64) int {
	tab := c.mt.Table(id)
	c.hot = GatherHot(tab, c.hot[:0])

	// Candidates: hot records whose newest version is at or below the
	// watermark. Chains are strictly decreasing in CommitTS, so the head
	// check covers the whole chain. The head snapshot (h0) is what the
	// segment row is built from and what FreezeCommit verifies.
	c.rows = c.rows[:0]
	for _, rec := range c.hot {
		h0 := rec.Latest()
		if h0 == nil || h0.CommitTS > watermark {
			continue
		}
		c.rows = append(c.rows, frozenRow{rec: rec, h0: h0})
	}
	if len(c.rows) == 0 {
		tab.PruneHot()
		return 0
	}

	st := c.store.Table(id)
	old := st.Base()

	// Build the merged segment outside any lock: old base overlaid with
	// the new rows, newer wins on key collision. Both inputs are key-
	// sorted. Tombstones are kept — a frozen delete must keep shadowing
	// the key (and digesting/checkpointing like the tombstone version the
	// row store would have retained).
	b := NewBuilder(id, len(c.rows)+oldLen(old))
	oi, ni := 0, 0
	for oi < oldLen(old) || ni < len(c.rows) {
		switch {
		case ni >= len(c.rows) || (oi < oldLen(old) && old.Keys[oi] < c.rows[ni].rec.Key):
			b.Add(old.Keys[oi], old.CommitTS[oi], old.TxnID[oi], old.Deleted(oi), old.AppendRowColumns(oi, nil))
			oi++
		default:
			r := c.rows[ni]
			b.Add(r.rec.Key, r.h0.CommitTS, r.h0.TxnID, r.h0.Deleted, r.h0.Columns)
			if oi < oldLen(old) && old.Keys[oi] == r.rec.Key {
				oi++ // superseded by the re-frozen row
			}
			ni++
		}
	}
	seg := b.Build()

	// Commit: publish the segment and empty the frozen chains under the
	// table's write lock, so no reader can see a base without the rows
	// whose chains are already gone (or vice versa).
	st.mu.Lock()
	if old == nil {
		c.store.Segments.Add(1)
	}
	st.base.Store(seg)
	frozen := 0
	for _, r := range c.rows {
		if ok, _ := r.rec.FreezeCommit(r.h0, watermark); ok {
			frozen++
		}
	}
	st.mu.Unlock()

	tab.PruneHot()
	return frozen
}

func oldLen(s *Segment) int {
	if s == nil {
		return 0
	}
	return s.Len()
}
