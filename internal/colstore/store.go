package colstore

import (
	"sync"
	"sync/atomic"

	"aets/internal/memtable"
	"aets/internal/wal"
)

// Store holds the columnar state of one node: per table, at most one base
// segment (each compaction pass merges the old base with the newly frozen
// rows into a fresh immutable segment — the delta-merge write side), plus
// the operational counters the observability surface scrapes.
type Store struct {
	tabs atomic.Pointer[map[wal.TableID]*TableState]
	mu   sync.Mutex // serialises TableState creation (schema-sized, rare)

	// Counters. Segments counts tables with a live base segment;
	// FrozenRows and Compactions are cumulative; PruneHits/PruneMisses
	// count planner decisions — a hit is a segment skipped whole via its
	// footer (key range or ts), a miss is a segment that had to be read.
	Segments    atomic.Int64
	FrozenRows  atomic.Int64
	Compactions atomic.Int64
	PruneHits   atomic.Int64
	PruneMisses atomic.Int64
}

// NewStore returns an empty columnar store.
func NewStore() *Store {
	s := &Store{}
	empty := map[wal.TableID]*TableState{}
	s.tabs.Store(&empty)
	return s
}

// TableState is one table's columnar side: the base segment behind an
// atomic pointer (readers load it once per operation), and the reader/
// compactor lock that makes "chain empty ⇒ the base I loaded has the row"
// a real invariant: the compactor publishes a new base and empties the
// frozen chains under the write lock, so a reader inside the read lock
// sees either the old world (chains intact) or the new one (base has
// every frozen row) — never the torn middle.
type TableState struct {
	mu   sync.RWMutex
	base atomic.Pointer[Segment]
}

// Base returns the current base segment, or nil before the first
// compaction. Callers that correlate the segment with chain reads must
// hold RLock around both (query does; see planner).
func (ts *TableState) Base() *Segment { return ts.base.Load() }

// RLock/RUnlock bracket a read operation that stitches the base segment
// with record chains.
func (ts *TableState) RLock()   { ts.mu.RLock() }
func (ts *TableState) RUnlock() { ts.mu.RUnlock() }

// Get returns the table's columnar state, or nil if the table was never
// compacted. Lock-free; the planner's per-query fast path.
func (s *Store) Get(id wal.TableID) *TableState {
	return (*s.tabs.Load())[id]
}

// Table returns the table's columnar state, creating it if absent.
func (s *Store) Table(id wal.TableID) *TableState {
	if ts := s.Get(id); ts != nil {
		return ts
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	old := *s.tabs.Load()
	if ts := old[id]; ts != nil {
		return ts
	}
	ts := &TableState{}
	next := make(map[wal.TableID]*TableState, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[id] = ts
	s.tabs.Store(&next)
	return ts
}

// Tables returns the IDs of all tables with columnar state.
func (s *Store) Tables() []wal.TableID {
	m := *s.tabs.Load()
	out := make([]wal.TableID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	return out
}

// Lookup resolves the frozen row image of (table, key), if one exists:
// the single-version image a Vacuum at the freeze watermark would have
// kept. Checkpoint writers and state digests use it to cover records
// whose chains the compactor emptied. The columns slice is freshly
// allocated; its values alias the segment.
func (s *Store) Lookup(id wal.TableID, key uint64) (txn uint64, ts int64, deleted bool, cols []wal.Column, ok bool) {
	st := s.Get(id)
	if st == nil {
		return 0, 0, false, nil, false
	}
	seg := st.Base()
	if seg == nil {
		return 0, 0, false, nil, false
	}
	i, found := seg.Find(key)
	if !found {
		return 0, 0, false, nil, false
	}
	return seg.TxnID[i], seg.CommitTS[i], seg.Deleted(i), seg.AppendRowColumns(i, nil), true
}

// GatherHot appends the table's hot records to buf sorted by key with
// duplicates removed — the canonical delta enumeration the compactor, the
// planner and the digest path share.
func GatherHot(tab *memtable.Table, buf []*memtable.Record) []*memtable.Record {
	return SortDedupe(tab.HotRecords(buf))
}

// SortDedupe sorts records by key in place and removes duplicates (equal
// keys within one table mean the same record), nil-ing the freed tail.
// Allocation-free.
func SortDedupe(recs []*memtable.Record) []*memtable.Record {
	sortRecords(recs)
	return dedupeRecords(recs)
}

// SortDedupePairs sorts the parallel (record, key) vectors by key in
// place and removes duplicate keys, nil-ing the freed record tail.
// keys[i] must equal recs[i].Key on entry; the planner extracts the keys
// while filtering so the sort never chases a record pointer, and the
// sorted key vector feeds its merge loops afterwards. tmpR and tmpK are
// caller-provided temporaries with len ≥ len(recs) for the radix passes
// (unused below the small-input cutoff). Allocation-free.
func SortDedupePairs(recs []*memtable.Record, keys []uint64, tmpR []*memtable.Record, tmpK []uint64) ([]*memtable.Record, []uint64) {
	if len(recs) < 64 {
		shellSortPairs(recs, keys)
	} else {
		radixSortPairs(recs, keys, tmpR, tmpK)
	}
	outR, outK := recs[:0], keys[:0]
	for i := range recs {
		if i == 0 || keys[i-1] != keys[i] {
			outR = append(outR, recs[i])
			outK = append(outK, keys[i])
		}
	}
	for j := len(outR); j < len(recs); j++ {
		recs[j] = nil
	}
	return outR, outK
}

func shellSortPairs(recs []*memtable.Record, keys []uint64) {
	gap := 1
	for gap < len(recs)/3 {
		gap = 3*gap + 1
	}
	for ; gap >= 1; gap /= 3 {
		for i := gap; i < len(recs); i++ {
			r, k := recs[i], keys[i]
			j := i
			for ; j >= gap && keys[j-gap] > k; j -= gap {
				recs[j], keys[j] = recs[j-gap], keys[j-gap]
			}
			recs[j], keys[j] = r, k
		}
	}
}

// radixSortPairs is an LSD byte radix sort over the significant key
// bytes: O(n) per pass, no comparisons, counts on the stack. Passes whose
// digit is constant across the input are skipped, so clustered key spaces
// pay only for the bytes that vary.
func radixSortPairs(recs []*memtable.Record, keys []uint64, tmpR []*memtable.Record, tmpK []uint64) {
	n := len(recs)
	var or uint64
	for _, k := range keys {
		or |= k
	}
	srcR, srcK := recs, keys
	dstR, dstK := tmpR[:n], tmpK[:n]
	for shift := uint(0); shift < 64 && or>>shift != 0; shift += 8 {
		var counts [256]int
		for _, k := range srcK {
			counts[(k>>shift)&0xff]++
		}
		if counts[(srcK[0]>>shift)&0xff] == n {
			continue // constant digit
		}
		sum := 0
		for i := range counts {
			c := counts[i]
			counts[i] = sum
			sum += c
		}
		for i, k := range srcK {
			d := (k >> shift) & 0xff
			p := counts[d]
			counts[d] = p + 1
			dstK[p] = k
			dstR[p] = srcR[i]
		}
		srcR, srcK, dstR, dstK = dstR, dstK, srcR, srcK
	}
	if &srcK[0] != &keys[0] {
		copy(keys, srcK)
		copy(recs, srcR)
	}
}

func sortRecords(recs []*memtable.Record) {
	// Shell sort with the Knuth gap sequence: in-place and allocation-
	// free (sort.Slice's closure would escape), which keeps the planner's
	// steady-state delta gather at 0 allocs/op.
	gap := 1
	for gap < len(recs)/3 {
		gap = 3*gap + 1
	}
	for ; gap >= 1; gap /= 3 {
		for i := gap; i < len(recs); i++ {
			r := recs[i]
			j := i
			for ; j >= gap && recs[j-gap].Key > r.Key; j -= gap {
				recs[j] = recs[j-gap]
			}
			recs[j] = r
		}
	}
}

func dedupeRecords(recs []*memtable.Record) []*memtable.Record {
	out := recs[:0]
	for i, r := range recs {
		if i == 0 || recs[i-1].Key != r.Key {
			out = append(out, r)
		}
	}
	for j := len(out); j < len(recs); j++ {
		recs[j] = nil
	}
	return out
}
