package colstore

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"

	"aets/internal/wal"
)

func le64(v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return b[:]
}

// buildTestSegment exercises all three encodings: col 1 all-8-byte
// (fixed8), col 2 two distinct values over many rows (dict), col 3
// variable-length strings (plain) with gaps in presence.
func buildTestSegment(tb testing.TB) *Segment {
	tb.Helper()
	b := NewBuilder(3, 8)
	vals := []string{"aa", "bb"}
	for i := 0; i < 8; i++ {
		key := uint64(i * 10)
		cols := []wal.Column{{ID: 1, Value: le64(uint64(i + 100))}}
		cols = append(cols, wal.Column{ID: 2, Value: []byte(vals[i&1])})
		if i%3 == 0 {
			cols = append(cols, wal.Column{ID: 3, Value: []byte{byte(i), byte(i), byte(i)}[:i%4]})
		}
		b.Add(key, int64(1000+i), uint64(i+1), i == 5, cols)
	}
	return b.Build()
}

func TestSegmentBuildStats(t *testing.T) {
	s := buildTestSegment(t)
	if s.Len() != 8 || s.Live != 7 {
		t.Fatalf("len/live = %d/%d, want 8/7", s.Len(), s.Live)
	}
	if s.MinKey != 0 || s.MaxKey != 70 || s.MinTS != 1000 || s.MaxTS != 1007 {
		t.Fatalf("footer = %d..%d ts %d..%d", s.MinKey, s.MaxKey, s.MinTS, s.MaxTS)
	}
	if s.MaxLiveTS != 1007 {
		t.Fatalf("MaxLiveTS = %d, want 1007", s.MaxLiveTS)
	}
	// Sum of col 1 over live rows: Σ(100..107) minus the tombstone (105).
	want := int64(0)
	for i := 100; i < 108; i++ {
		if i != 105 {
			want += int64(i)
		}
	}
	if got := s.Sum(1); got != want {
		t.Fatalf("Sum(1) = %d, want %d", got, want)
	}
	if got := s.Sum(99); got != 0 {
		t.Fatalf("Sum of absent column = %d, want 0", got)
	}
	// Encoding choices.
	if c := s.Cols[s.ColIndex(1)]; c.Enc != EncFixed8 {
		t.Fatalf("col 1 enc = %d, want fixed8", c.Enc)
	}
	if c := s.Cols[s.ColIndex(2)]; c.Enc != EncDict {
		t.Fatalf("col 2 enc = %d, want dict", c.Enc)
	}
	if c := s.Cols[s.ColIndex(3)]; c.Enc != EncPlain {
		t.Fatalf("col 3 enc = %d, want plain", c.Enc)
	}
}

func TestSegmentFindValue(t *testing.T) {
	s := buildTestSegment(t)
	if i, ok := s.Find(30); !ok || i != 3 {
		t.Fatalf("Find(30) = (%d, %v)", i, ok)
	}
	if _, ok := s.Find(31); ok {
		t.Fatal("Find(31) must miss")
	}
	if got := s.LowerBound(31); got != 4 {
		t.Fatalf("LowerBound(31) = %d, want 4", got)
	}
	c := &s.Cols[s.ColIndex(1)]
	for i := 0; i < s.Len(); i++ {
		v, ok := c.Value(i)
		if !ok || binary.LittleEndian.Uint64(v) != uint64(i+100) {
			t.Fatalf("col1 row %d = %v, %v", i, v, ok)
		}
	}
	c3 := &s.Cols[s.ColIndex(3)]
	for i := 0; i < s.Len(); i++ {
		_, ok := c3.Value(i)
		if want := i%3 == 0; ok != want {
			t.Fatalf("col3 presence row %d = %v, want %v", i, ok, want)
		}
	}
}

func TestSegmentRoundTrip(t *testing.T) {
	s := buildTestSegment(t)
	enc := s.Encode()
	d, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(d.Encode(), enc) {
		t.Fatal("decode→encode is not stable")
	}
	if d.Live != s.Live || d.MaxLiveTS != s.MaxLiveTS || d.Sum(1) != s.Sum(1) {
		t.Fatal("recomputed stats disagree with the original")
	}
	for i := 0; i < s.Len(); i++ {
		want := s.AppendRowColumns(i, nil)
		got := d.AppendRowColumns(i, nil)
		if len(want) != len(got) {
			t.Fatalf("row %d column count mismatch", i)
		}
		for j := range want {
			if want[j].ID != got[j].ID || !bytes.Equal(want[j].Value, got[j].Value) {
				t.Fatalf("row %d col %d mismatch", i, want[j].ID)
			}
		}
	}
}

func TestSegmentEmpty(t *testing.T) {
	s := NewBuilder(1, 0).Build()
	d, err := Decode(s.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 0 || d.Live != 0 {
		t.Fatal("empty segment must round-trip empty")
	}
}

func TestMaxLiveTSExcluding(t *testing.T) {
	b := NewBuilder(1, 0)
	for i := 0; i < 130; i++ { // spans three bitmap words
		b.Add(uint64(i), int64(i+1), 1, i == 64, nil)
	}
	s := b.Build()
	if got := s.MaxLiveTSExcluding(nil, 0); got != 130 {
		t.Fatalf("no exclusions = %d, want 130", got)
	}
	if got := s.MaxLiveTSExcluding([]int{129}, 0); got != 129 {
		t.Fatalf("excluding the max = %d, want 129", got)
	}
	if got := s.MaxLiveTSExcluding([]int{127, 128, 129}, 0); got != 127 {
		t.Fatalf("excluding top three = %d, want 127", got)
	}
	if got := s.MaxLiveTSExcluding([]int{129}, 500); got != 500 {
		t.Fatalf("dominating seed = %d, want 500", got)
	}
}

func TestBuilderPanicsOnUnsortedKeys(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-ascending keys")
		}
	}()
	b := NewBuilder(1, 0)
	b.Add(5, 1, 1, false, nil)
	b.Add(5, 2, 2, false, nil)
}

// FuzzSegmentDecode throws mutated segment streams at Decode. Purely
// defensive: Decode must return (not panic, not OOM on a hostile length
// prefix), and an accepted stream must re-encode canonically — the
// re-encoding decodes and encodes to the identical bytes. (Byte-identity
// with the input is too strong: ReadUvarint tolerates non-minimal
// varints the canonical encoder never writes.)
func FuzzSegmentDecode(f *testing.F) {
	f.Add(buildTestSegment(f).Encode())
	f.Add(NewBuilder(1, 0).Build().Encode())
	// Sentinel keys at the domain edges, single row, zero-length values.
	b := NewBuilder(2, 2)
	b.Add(0, 1, 1, false, []wal.Column{{ID: 0, Value: nil}})
	b.Add(^uint64(0), 2, 2, true, nil)
	f.Add(b.Build().Encode())
	// CRC-valid corruption: scramble a body byte, re-trailer. The decoder
	// must catch it structurally.
	hostile := append([]byte(nil), buildTestSegment(f).Encode()...)
	hostile[len(hostile)-6] ^= 0x55
	binary.LittleEndian.PutUint32(hostile[len(hostile)-4:], crc32.ChecksumIEEE(hostile[:len(hostile)-4]))
	f.Add(hostile)

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err != nil {
			return
		}
		re := s.Encode()
		s2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoding of accepted stream rejected: %v", err)
		}
		if !bytes.Equal(s2.Encode(), re) {
			t.Fatal("re-encoding is not a canonical fixed point")
		}
		if s2.Live != s.Live || s2.MaxLiveTS != s.MaxLiveTS || s2.Len() != s.Len() {
			t.Fatal("round-trip changed recomputed stats")
		}
	})
}
