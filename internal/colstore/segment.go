// Package colstore is the columnar read-optimized layer behind the
// memtable: epoch-aligned compaction freezes records whose entire version
// chain is at or below the vacuum watermark into immutable, column-major
// segments, and the query planner reads segments + the memtable's hot
// delta stitched together at the snapshot timestamp (the delta-merge
// pattern of native HTAP engines; DESIGN.md §17).
//
// The freeze rule makes segment rows exactly the image a Vacuum at the
// watermark would have kept: the chain-head version's fields, verbatim —
// no column merge down the chain. That is what makes columnar reads
// provably equal to the row-wise path on a twin that vacuums at every
// freeze point, which the differential fuzz in internal/query exercises.
package colstore

import (
	"math/bits"

	"aets/internal/wal"
)

// Column encodings. The builder picks per column: fixed8 when every value
// is exactly 8 bytes (the WAL's integer convention — sums vectorize over
// the raw blob), dict when at least half the values repeat, plain
// otherwise.
const (
	EncPlain  = uint8(0)
	EncFixed8 = uint8(1)
	EncDict   = uint8(2)
)

// Column is one column's values across all rows of a segment, with a
// presence bitmap (not every row carries every column — WAL entries are
// after-images) and a per-word rank index for O(1) random access.
type Column struct {
	ID  uint32
	Enc uint8

	// Present bit i set ⇔ row i carries this column. Rank[w] is the
	// number of present rows before row 64·w, so the value index of a
	// present row is Rank[i>>6] + popcount(Present[i>>6] masked below i).
	Present  []uint64
	Rank     []uint32
	PresentN int

	// EncFixed8: Blob holds 8 bytes per present row, rank-indexed.
	// EncPlain: value r is Blob[Off[r]:Off[r+1]] (len(Off) == PresentN+1).
	// EncDict:  Idx[r] selects Dict[DictOff[Idx[r]]:DictOff[Idx[r]+1]].
	Blob    []byte
	Off     []uint32
	Dict    []byte
	DictOff []uint32
	Idx     []uint32
}

// has reports whether row carries this column.
func (c *Column) has(row int) bool {
	return c.Present[row>>6]>>(uint(row)&63)&1 == 1
}

// Value returns the column's value for the given row, or ok=false when the
// row does not carry it. The returned slice aliases the segment's blob and
// must not be mutated. O(1).
func (c *Column) Value(row int) ([]byte, bool) {
	w := c.Present[row>>6]
	bit := uint(row) & 63
	if w>>bit&1 == 0 {
		return nil, false
	}
	r := int(c.Rank[row>>6]) + bits.OnesCount64(w&(1<<bit-1))
	switch c.Enc {
	case EncFixed8:
		return c.Blob[8*r : 8*r+8 : 8*r+8], true
	case EncDict:
		d := c.Idx[r]
		return c.Dict[c.DictOff[d]:c.DictOff[d+1]:c.DictOff[d+1]], true
	default:
		return c.Blob[c.Off[r]:c.Off[r+1]:c.Off[r+1]], true
	}
}

// Segment is an immutable column-major image of one table's frozen rows,
// sorted by key. Tombstones are kept (Del bit set) so a frozen delete
// keeps shadowing earlier generations of the same key, exactly as the
// post-Vacuum row store would.
type Segment struct {
	TableID wal.TableID

	Keys     []uint64 // strictly ascending
	CommitTS []int64
	TxnID    []uint64
	Del      []uint64 // tombstone bitmap, 1 bit per row
	Cols     []Column // ascending by ID

	// Footer stats, for segment pruning and aggregate shortcuts. All row
	// commit timestamps are ≤ the freeze watermark, so a query at qts ≥
	// watermark (the GC/freeze contract) sees every row; MinTS/MaxTS
	// bound the ts-prune, MaxLiveTS caps MaxCommitTS.
	MinKey, MaxKey uint64
	MinTS, MaxTS   int64
	MaxLiveTS      int64
	Live           int // rows with the Del bit clear

	sums map[uint32]int64 // per-column Σ of 8-byte LE values over live rows
}

// Len returns the number of rows (tombstones included).
func (s *Segment) Len() int { return len(s.Keys) }

// Deleted reports whether row i is a tombstone.
func (s *Segment) Deleted(i int) bool {
	return s.Del[i>>6]>>(uint(i)&63)&1 == 1
}

// Sum returns the precomputed sum of column col interpreted as little-
// endian int64 over all live rows (values that are not exactly 8 bytes
// contribute 0, matching query.SumInt64). Absent columns sum to 0.
func (s *Segment) Sum(col uint32) int64 { return s.sums[col] }

// MaxLiveTSExcluding returns the maximum of seed and the commit timestamps
// of all live rows except those whose indexes appear in excl (ascending).
// The delta-shadow case of MaxCommitTS: excluded rows are hidden by a
// visible chain, so their timestamps must not count. Runs word-at-a-time
// over the tombstone bitmap with an early exit once seed already dominates
// MaxLiveTS.
func (s *Segment) MaxLiveTSExcluding(excl []int, seed int64) int64 {
	if seed >= s.MaxLiveTS {
		return seed
	}
	max := seed
	e := 0
	for i, n := 0, s.Len(); i < n; i++ {
		if uint(i)&63 == 0 && s.Del[i>>6] == 0 && (e >= len(excl) || excl[e] >= i+64) {
			// Whole word live and unexcluded: take the block in one sweep.
			end := i + 64
			if end > n {
				end = n
			}
			for ; i < end; i++ {
				if s.CommitTS[i] > max {
					max = s.CommitTS[i]
				}
			}
			i--
			continue
		}
		if e < len(excl) && excl[e] == i {
			e++
			continue
		}
		if !s.Deleted(i) && s.CommitTS[i] > max {
			max = s.CommitTS[i]
		}
	}
	return max
}

// Find locates key by binary search, returning its row index and whether
// it is present.
func (s *Segment) Find(key uint64) (int, bool) {
	lo, hi := 0, len(s.Keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.Keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(s.Keys) && s.Keys[lo] == key
}

// LowerBound returns the index of the first row with Keys[i] ≥ key.
func (s *Segment) LowerBound(key uint64) int {
	i, _ := s.Find(key)
	return i
}

// LowerBoundFrom returns the first row index ≥ lo whose key is ≥ key,
// galloping forward from lo before binary-searching the bracketed span.
// A monotone position walk (sorted probe keys, lo advanced past each hit)
// pays O(log gap) per probe instead of O(log n).
func (s *Segment) LowerBoundFrom(lo int, key uint64) int {
	n := len(s.Keys)
	if lo >= n || s.Keys[lo] >= key {
		return lo
	}
	step, hi := 1, lo+1
	for hi < n && s.Keys[hi] < key {
		lo = hi
		step <<= 1
		hi = lo + step
	}
	if hi > n {
		hi = n
	}
	// Invariant: Keys[lo] < key, and hi == n or Keys[hi] ≥ key.
	l, h := lo+1, hi
	for l < h {
		m := int(uint(l+h) >> 1)
		if s.Keys[m] < key {
			l = m + 1
		} else {
			h = m
		}
	}
	return l
}

// ColIndex returns the index into Cols of the column with the given ID, or
// -1. Cols is small and sorted; binary search keeps Get cheap.
func (s *Segment) ColIndex(id uint32) int {
	lo, hi := 0, len(s.Cols)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.Cols[mid].ID < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(s.Cols) && s.Cols[lo].ID == id {
		return lo
	}
	return -1
}

// ForEachColumn visits row i's columns in ascending column-ID order —
// the canonical order frozen rows are digested and checkpointed in.
func (s *Segment) ForEachColumn(i int, fn func(id uint32, val []byte)) {
	for c := range s.Cols {
		if v, ok := s.Cols[c].Value(i); ok {
			fn(s.Cols[c].ID, v)
		}
	}
}

// AppendRowColumns appends row i's columns (ascending by ID) to buf. The
// values alias the segment; checkpoint writers copy them into the stream.
func (s *Segment) AppendRowColumns(i int, buf []wal.Column) []wal.Column {
	s.ForEachColumn(i, func(id uint32, val []byte) {
		buf = append(buf, wal.Column{ID: id, Value: val})
	})
	return buf
}

// ---------------------------------------------------------------------------
// Builder.

// Builder accumulates frozen row images (in strictly ascending key order)
// and materialises them into a Segment. All value bytes are copied into
// segment-owned blobs — a segment never aliases arena-backed chain memory,
// so the arenas the frozen versions are released to can recycle freely.
type Builder struct {
	tableID wal.TableID
	keys    []uint64
	ts      []int64
	txn     []uint64
	del     []bool
	cols    map[uint32][]cell
}

type cell struct {
	row int
	val []byte
}

// NewBuilder returns a builder for one table's segment. capHint sizes the
// row vectors (0 is fine).
func NewBuilder(id wal.TableID, capHint int) *Builder {
	return &Builder{
		tableID: id,
		keys:    make([]uint64, 0, capHint),
		ts:      make([]int64, 0, capHint),
		txn:     make([]uint64, 0, capHint),
		del:     make([]bool, 0, capHint),
		cols:    make(map[uint32][]cell),
	}
}

// Add appends one row image. Keys must arrive strictly ascending; duplicate
// column IDs within one row keep the first occurrence (ReadRow semantics).
func (b *Builder) Add(key uint64, ts int64, txn uint64, deleted bool, cols []wal.Column) {
	if n := len(b.keys); n > 0 && b.keys[n-1] >= key {
		panic("colstore: Builder.Add keys not strictly ascending")
	}
	row := len(b.keys)
	b.keys = append(b.keys, key)
	b.ts = append(b.ts, ts)
	b.txn = append(b.txn, txn)
	b.del = append(b.del, deleted)
	for _, c := range cols {
		cells := b.cols[c.ID]
		if n := len(cells); n > 0 && cells[n-1].row == row {
			continue // duplicate column ID within the row: first wins
		}
		// No copy here; the deep copy into segment-owned blobs happens in
		// Build, which runs before the frozen chains are released.
		b.cols[c.ID] = append(cells, cell{row: row, val: c.Value})
	}
}

// Len returns the number of rows added so far.
func (b *Builder) Len() int { return len(b.keys) }

// Build materialises the segment: bitmaps, per-column encodings, rank
// indexes and footer stats.
func (b *Builder) Build() *Segment {
	n := len(b.keys)
	seg := &Segment{
		TableID:  b.tableID,
		Keys:     b.keys,
		CommitTS: b.ts,
		TxnID:    b.txn,
		Del:      make([]uint64, (n+63)/64),
		sums:     make(map[uint32]int64),
	}
	for i, d := range b.del {
		if d {
			seg.Del[i>>6] |= 1 << (uint(i) & 63)
		}
	}

	ids := make([]uint32, 0, len(b.cols))
	for id := range b.cols {
		ids = append(ids, id)
	}
	sortU32(ids)
	seg.Cols = make([]Column, 0, len(ids))
	for _, id := range ids {
		seg.Cols = append(seg.Cols, buildColumn(id, b.cols[id], n))
	}

	seg.finalize()
	return seg
}

// buildColumn copies the cells into the chosen encoding.
func buildColumn(id uint32, cells []cell, rows int) Column {
	c := Column{
		ID:       id,
		Present:  make([]uint64, (rows+63)/64),
		PresentN: len(cells),
	}
	allFixed8 := true
	total := 0
	for _, cl := range cells {
		c.Present[cl.row>>6] |= 1 << (uint(cl.row) & 63)
		if len(cl.val) != 8 {
			allFixed8 = false
		}
		total += len(cl.val)
	}
	c.Rank = buildRank(c.Present)

	switch {
	case allFixed8 && len(cells) > 0:
		c.Enc = EncFixed8
		c.Blob = make([]byte, 0, 8*len(cells))
		for _, cl := range cells {
			c.Blob = append(c.Blob, cl.val...)
		}
	default:
		// Count distinct values; dictionary-encode when at least half
		// the occurrences repeat.
		uniq := make(map[string]uint32, len(cells))
		for _, cl := range cells {
			if _, ok := uniq[string(cl.val)]; !ok {
				uniq[string(cl.val)] = uint32(len(uniq))
			}
		}
		if len(cells) >= 2 && len(uniq)*2 <= len(cells) {
			c.Enc = EncDict
			c.Dict = make([]byte, 0, total)
			c.DictOff = make([]uint32, 1, len(uniq)+1)
			c.Idx = make([]uint32, 0, len(cells))
			// Assign dictionary slots in first-appearance order so the
			// encoding is deterministic.
			seen := make(map[string]uint32, len(uniq))
			for _, cl := range cells {
				slot, ok := seen[string(cl.val)]
				if !ok {
					slot = uint32(len(seen))
					seen[string(cl.val)] = slot
					c.Dict = append(c.Dict, cl.val...)
					c.DictOff = append(c.DictOff, uint32(len(c.Dict)))
				}
				c.Idx = append(c.Idx, slot)
			}
		} else {
			c.Enc = EncPlain
			c.Blob = make([]byte, 0, total)
			c.Off = make([]uint32, 1, len(cells)+1)
			for _, cl := range cells {
				c.Blob = append(c.Blob, cl.val...)
				c.Off = append(c.Off, uint32(len(c.Blob)))
			}
		}
	}
	return c
}

// buildRank computes the per-word present-row rank prefix.
func buildRank(present []uint64) []uint32 {
	rank := make([]uint32, len(present))
	var acc uint32
	for w := range present {
		rank[w] = acc
		acc += uint32(bits.OnesCount64(present[w]))
	}
	return rank
}

// finalize recomputes the footer stats from the column vectors. Build and
// Decode share it, so a decoded segment's stats can never disagree with
// its data.
func (s *Segment) finalize() {
	n := len(s.Keys)
	s.Live = 0
	s.MinTS, s.MaxTS, s.MaxLiveTS = 0, 0, 0
	if s.sums == nil {
		s.sums = make(map[uint32]int64)
	}
	for k := range s.sums {
		delete(s.sums, k)
	}
	if n == 0 {
		s.MinKey, s.MaxKey = 0, 0
		return
	}
	s.MinKey, s.MaxKey = s.Keys[0], s.Keys[n-1]
	s.MinTS, s.MaxTS = s.CommitTS[0], s.CommitTS[0]
	for i, ts := range s.CommitTS {
		if ts < s.MinTS {
			s.MinTS = ts
		}
		if ts > s.MaxTS {
			s.MaxTS = ts
		}
		if !s.Deleted(i) {
			s.Live++
			if ts > s.MaxLiveTS {
				s.MaxLiveTS = ts
			}
		}
	}
	for ci := range s.Cols {
		c := &s.Cols[ci]
		if c.Enc != EncFixed8 {
			// Non-fixed8 columns can still hold 8-byte values; walk them.
			var sum int64
			row := 0
			for r := 0; r < c.PresentN; r++ {
				row = c.nextPresent(row)
				if !s.Deleted(row) {
					if v, ok := c.Value(row); ok && len(v) == 8 {
						sum += int64(leU64(v))
					}
				}
				row++
			}
			if sum != 0 {
				s.sums[c.ID] = sum
			}
			continue
		}
		var sum int64
		row := 0
		for r := 0; r < c.PresentN; r++ {
			row = c.nextPresent(row)
			if !s.Deleted(row) {
				sum += int64(leU64(c.Blob[8*r : 8*r+8]))
			}
			row++
		}
		if sum != 0 {
			s.sums[c.ID] = sum
		}
	}
}

// nextPresent returns the first present row ≥ from.
func (c *Column) nextPresent(from int) int {
	w := from >> 6
	if w >= len(c.Present) {
		return from
	}
	cur := c.Present[w] &^ (1<<(uint(from)&63) - 1)
	for cur == 0 {
		w++
		if w >= len(c.Present) {
			return w << 6
		}
		cur = c.Present[w]
	}
	return w<<6 + bits.TrailingZeros64(cur)
}

func leU64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func sortU32(x []uint32) {
	// Insertion sort: the column-ID set is schema-sized.
	for i := 1; i < len(x); i++ {
		for j := i; j > 0 && x[j-1] > x[j]; j-- {
			x[j-1], x[j] = x[j], x[j-1]
		}
	}
}
