package colstore

// encode.go serialises segments. The format follows the checkpoint
// conventions: a magic + version header, varint-packed vectors (keys and
// commit timestamps delta-encoded — sorted keys and epoch-clustered
// timestamps compress to a byte or two each), and a CRC32-IEEE trailer.
// Decode is hardened against hostile length prefixes the same way
// checkpoint.Read is: every count is bounded by the bytes remaining
// before anything is allocated from it, so a corrupt (even CRC-valid)
// prefix can only cost memory proportional to the input.
//
//	magic "AETSCSEG" | version u16 | tableID uvarint | rows uvarint
//	keys: first uvarint, then uvarint deltas (strictly positive)
//	commitTS: varint deltas (first absolute)
//	txnID: uvarint each
//	del bitmap: ceil(rows/64) u64 LE words (trailing bits zero)
//	ncols uvarint; per column (ascending ID):
//	  id uvarint | enc u8 | present bitmap words | per encoding:
//	    fixed8: 8·presentN raw bytes
//	    plain:  presentN values, each len uvarint + bytes
//	    dict:   dictN uvarint, dict values (len uvarint + bytes),
//	            presentN indexes (uvarint < dictN)
//	trailer: crc32 of everything before it (u32 LE)

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math/bits"

	"aets/internal/wal"
)

var segMagic = []byte("AETSCSEG")

const segVersion = 1

// ErrCorrupt is returned when a segment stream fails structural or CRC
// checks.
var ErrCorrupt = errors.New("colstore: corrupt segment")

// Encode serialises the segment.
func (s *Segment) Encode() []byte {
	var buf bytes.Buffer
	buf.Write(segMagic)
	var v16 [2]byte
	binary.LittleEndian.PutUint16(v16[:], segVersion)
	buf.Write(v16[:])

	var scratch [binary.MaxVarintLen64]byte
	putU := func(x uint64) { buf.Write(scratch[:binary.PutUvarint(scratch[:], x)]) }
	putS := func(x int64) { buf.Write(scratch[:binary.PutVarint(scratch[:], x)]) }

	n := len(s.Keys)
	putU(uint64(s.TableID))
	putU(uint64(n))
	for i, k := range s.Keys {
		if i == 0 {
			putU(k)
		} else {
			putU(k - s.Keys[i-1])
		}
	}
	prev := int64(0)
	for i, ts := range s.CommitTS {
		if i == 0 {
			putS(ts)
		} else {
			putS(ts - prev)
		}
		prev = ts
	}
	for _, t := range s.TxnID {
		putU(t)
	}
	writeWords(&buf, s.Del)

	putU(uint64(len(s.Cols)))
	for ci := range s.Cols {
		c := &s.Cols[ci]
		putU(uint64(c.ID))
		buf.WriteByte(c.Enc)
		writeWords(&buf, c.Present)
		switch c.Enc {
		case EncFixed8:
			buf.Write(c.Blob)
		case EncPlain:
			for r := 0; r < c.PresentN; r++ {
				v := c.Blob[c.Off[r]:c.Off[r+1]]
				putU(uint64(len(v)))
				buf.Write(v)
			}
		case EncDict:
			putU(uint64(len(c.DictOff) - 1))
			for d := 0; d+1 < len(c.DictOff); d++ {
				v := c.Dict[c.DictOff[d]:c.DictOff[d+1]]
				putU(uint64(len(v)))
				buf.Write(v)
			}
			for _, ix := range c.Idx {
				putU(uint64(ix))
			}
		}
	}

	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc32.ChecksumIEEE(buf.Bytes()))
	buf.Write(tail[:])
	return buf.Bytes()
}

func writeWords(buf *bytes.Buffer, words []uint64) {
	var b [8]byte
	for _, w := range words {
		binary.LittleEndian.PutUint64(b[:], w)
		buf.Write(b[:])
	}
}

// Decode parses a segment stream, verifying the CRC before structure and
// bounding every count by the remaining input before allocating from it.
// Footer stats are recomputed, never trusted.
func Decode(data []byte) (*Segment, error) {
	if len(data) < len(segMagic)+2+4 {
		return nil, fmt.Errorf("%w: short stream", ErrCorrupt)
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("%w: crc mismatch", ErrCorrupt)
	}
	if !bytes.Equal(body[:len(segMagic)], segMagic) {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if got := binary.LittleEndian.Uint16(body[len(segMagic):]); got != segVersion {
		return nil, fmt.Errorf("colstore: unsupported segment version %d", got)
	}
	br := bytes.NewReader(body[len(segMagic)+2:])

	rdU := func() (uint64, error) { return binary.ReadUvarint(br) }
	rdS := func() (int64, error) { return binary.ReadVarint(br) }
	// rdCount bounds a decoded count by the bytes left: every counted item
	// costs at least one byte, so larger counts are structurally
	// impossible and must not size an allocation.
	rdCount := func() (uint64, error) {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, err
		}
		if n > uint64(br.Len()) {
			return 0, fmt.Errorf("%w: count %d exceeds %d remaining bytes", ErrCorrupt, n, br.Len())
		}
		return n, nil
	}
	readWords := func(rows int) ([]uint64, error) {
		nw := (rows + 63) / 64
		if 8*nw > br.Len() {
			return nil, fmt.Errorf("%w: bitmap truncated", ErrCorrupt)
		}
		words := make([]uint64, nw)
		var b [8]byte
		for i := range words {
			if _, err := io.ReadFull(br, b[:]); err != nil {
				return nil, err
			}
			words[i] = binary.LittleEndian.Uint64(b[:])
		}
		if nw > 0 && rows%64 != 0 {
			if words[nw-1]&^(1<<(uint(rows)&63)-1) != 0 {
				return nil, fmt.Errorf("%w: bitmap has bits past row count", ErrCorrupt)
			}
		}
		return words, nil
	}

	tid, err := rdU()
	if err != nil {
		return nil, fmt.Errorf("%w: table id", ErrCorrupt)
	}
	rows64, err := rdCount()
	if err != nil {
		return nil, fmt.Errorf("%w: row count", ErrCorrupt)
	}
	rows := int(rows64)
	seg := &Segment{
		TableID:  wal.TableID(tid),
		Keys:     make([]uint64, rows),
		CommitTS: make([]int64, rows),
		TxnID:    make([]uint64, rows),
	}
	var prevKey uint64
	for i := 0; i < rows; i++ {
		d, err := rdU()
		if err != nil {
			return nil, fmt.Errorf("%w: key %d", ErrCorrupt, i)
		}
		if i == 0 {
			prevKey = d
		} else {
			next := prevKey + d
			if d == 0 || next < prevKey {
				return nil, fmt.Errorf("%w: keys not strictly ascending at row %d", ErrCorrupt, i)
			}
			prevKey = next
		}
		seg.Keys[i] = prevKey
	}
	var prevTS int64
	for i := 0; i < rows; i++ {
		d, err := rdS()
		if err != nil {
			return nil, fmt.Errorf("%w: commit ts %d", ErrCorrupt, i)
		}
		if i == 0 {
			prevTS = d
		} else {
			prevTS += d
		}
		seg.CommitTS[i] = prevTS
	}
	for i := 0; i < rows; i++ {
		if seg.TxnID[i], err = rdU(); err != nil {
			return nil, fmt.Errorf("%w: txn id %d", ErrCorrupt, i)
		}
	}
	if seg.Del, err = readWords(rows); err != nil {
		return nil, fmt.Errorf("%w: del bitmap: %v", ErrCorrupt, err)
	}

	nCols, err := rdCount()
	if err != nil {
		return nil, fmt.Errorf("%w: column count", ErrCorrupt)
	}
	seg.Cols = make([]Column, 0, min(int(nCols), 64))
	prevID := int64(-1)
	for ci := uint64(0); ci < nCols; ci++ {
		id, err := rdU()
		if err != nil {
			return nil, fmt.Errorf("%w: column id", ErrCorrupt)
		}
		if id > 1<<32-1 || int64(id) <= prevID {
			return nil, fmt.Errorf("%w: column ids not ascending 32-bit", ErrCorrupt)
		}
		prevID = int64(id)
		enc, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("%w: column enc", ErrCorrupt)
		}
		if enc > EncDict {
			return nil, fmt.Errorf("%w: unknown encoding %d", ErrCorrupt, enc)
		}
		c := Column{ID: uint32(id), Enc: enc}
		if c.Present, err = readWords(rows); err != nil {
			return nil, fmt.Errorf("%w: present bitmap: %v", ErrCorrupt, err)
		}
		for _, w := range c.Present {
			c.PresentN += bits.OnesCount64(w)
		}
		c.Rank = buildRank(c.Present)
		switch enc {
		case EncFixed8:
			if 8*c.PresentN > br.Len() {
				return nil, fmt.Errorf("%w: fixed8 blob truncated", ErrCorrupt)
			}
			c.Blob = make([]byte, 8*c.PresentN)
			if _, err := io.ReadFull(br, c.Blob); err != nil {
				return nil, err
			}
		case EncPlain:
			c.Off = make([]uint32, 1, c.PresentN+1)
			for r := 0; r < c.PresentN; r++ {
				vl, err := rdCount()
				if err != nil {
					return nil, fmt.Errorf("%w: value length", ErrCorrupt)
				}
				start := len(c.Blob)
				c.Blob = append(c.Blob, make([]byte, vl)...)
				if _, err := io.ReadFull(br, c.Blob[start:]); err != nil {
					return nil, fmt.Errorf("%w: value bytes", ErrCorrupt)
				}
				c.Off = append(c.Off, uint32(len(c.Blob)))
			}
		case EncDict:
			dictN, err := rdCount()
			if err != nil {
				return nil, fmt.Errorf("%w: dict size", ErrCorrupt)
			}
			c.DictOff = make([]uint32, 1, dictN+1)
			for d := uint64(0); d < dictN; d++ {
				vl, err := rdCount()
				if err != nil {
					return nil, fmt.Errorf("%w: dict value length", ErrCorrupt)
				}
				start := len(c.Dict)
				c.Dict = append(c.Dict, make([]byte, vl)...)
				if _, err := io.ReadFull(br, c.Dict[start:]); err != nil {
					return nil, fmt.Errorf("%w: dict value bytes", ErrCorrupt)
				}
				c.DictOff = append(c.DictOff, uint32(len(c.Dict)))
			}
			c.Idx = make([]uint32, c.PresentN)
			for r := range c.Idx {
				ix, err := rdU()
				if err != nil {
					return nil, fmt.Errorf("%w: dict index", ErrCorrupt)
				}
				if ix >= dictN {
					return nil, fmt.Errorf("%w: dict index %d out of range %d", ErrCorrupt, ix, dictN)
				}
				c.Idx[r] = uint32(ix)
			}
		}
		seg.Cols = append(seg.Cols, c)
	}

	if br.Len() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, br.Len())
	}
	seg.finalize()
	return seg, nil
}
