package colstore

import (
	"encoding/binary"
	"testing"

	"aets/internal/memtable"
	"aets/internal/wal"
)

func put(mt *memtable.Memtable, key uint64, ts int64, del bool, val string) {
	var cols []wal.Column
	if !del {
		b := make([]byte, 8)
		binary.LittleEndian.PutUint64(b, uint64(ts))
		cols = []wal.Column{{ID: 1, Value: b}, {ID: 2, Value: []byte(val)}}
	}
	mt.Table(1).GetOrCreate(key).Append(&memtable.Version{
		TxnID: uint64(ts), CommitTS: ts, Deleted: del, Columns: cols,
	})
}

func TestCompactorFreezesColdChains(t *testing.T) {
	mt := memtable.New()
	cs := NewStore()
	c := NewCompactor(mt, cs)

	for k := uint64(0); k < 100; k++ {
		put(mt, k, int64(k+1), k == 50, "v")
	}
	frozen := c.RunOnce(60)
	if frozen != 60 {
		t.Fatalf("frozen = %d, want 60 (heads 1..60 are at or below the watermark)", frozen)
	}
	seg := cs.Get(1).Base()
	if seg == nil || seg.Len() != 60 {
		t.Fatalf("base = %v", seg)
	}
	if seg.Live != 59 {
		t.Fatalf("live = %d, want 59 (key 50 is a tombstone)", seg.Live)
	}
	// Frozen chains are empty; unfrozen ones intact and still hot.
	if mt.Table(1).Get(10).Latest() != nil {
		t.Fatal("frozen chain not emptied")
	}
	if mt.Table(1).Get(80).Latest() == nil {
		t.Fatal("warm chain must survive")
	}
	if cs.Segments.Load() != 1 || cs.FrozenRows.Load() != 60 {
		t.Fatalf("counters: segments=%d frozen=%d", cs.Segments.Load(), cs.FrozenRows.Load())
	}

	// Second pass: merge the rest into one fresh base, newer wins.
	put(mt, 10, 200, false, "updated") // re-dirty a frozen key
	if got := c.RunOnce(300); got != 41 {
		t.Fatalf("second pass froze %d, want 41 (keys 60..99 plus re-frozen 10)", got)
	}
	seg = cs.Get(1).Base()
	if seg.Len() != 100 {
		t.Fatalf("merged base = %d rows, want 100", seg.Len())
	}
	i, ok := seg.Find(10)
	if !ok || seg.CommitTS[i] != 200 {
		t.Fatalf("re-frozen key 10: ts = %d, want 200", seg.CommitTS[i])
	}
	ci := seg.ColIndex(2)
	if v, ok := seg.Cols[ci].Value(i); !ok || string(v) != "updated" {
		t.Fatalf("re-frozen key 10: col2 = %q", v)
	}
	if cs.Segments.Load() != 1 {
		t.Fatalf("segments gauge = %d, want 1 (one base per table)", cs.Segments.Load())
	}
}

func TestCompactorWatermarkGuard(t *testing.T) {
	mt := memtable.New()
	cs := NewStore()
	c := NewCompactor(mt, cs)
	put(mt, 1, 10, false, "a")
	if got := c.RunOnce(0); got != 0 {
		t.Fatalf("zero watermark froze %d rows", got)
	}
	if got := c.RunOnce(5); got != 0 {
		t.Fatalf("watermark below every head froze %d rows", got)
	}
	if cs.Get(1) != nil && cs.Get(1).Base() != nil {
		t.Fatal("no segment should exist")
	}
}

func TestStoreLookup(t *testing.T) {
	mt := memtable.New()
	cs := NewStore()
	c := NewCompactor(mt, cs)
	put(mt, 7, 10, false, "x")
	put(mt, 8, 20, true, "")
	c.RunOnce(50)

	txn, ts, del, cols, ok := cs.Lookup(1, 7)
	if !ok || del || ts != 10 || txn != 10 || len(cols) != 2 {
		t.Fatalf("Lookup(7) = %d %d %v %v %v", txn, ts, del, cols, ok)
	}
	if _, _, del, _, ok := cs.Lookup(1, 8); !ok || !del {
		t.Fatal("frozen tombstone must resolve with deleted=true")
	}
	if _, _, _, _, ok := cs.Lookup(1, 99); ok {
		t.Fatal("missing key must not resolve")
	}
	if _, _, _, _, ok := cs.Lookup(9, 7); ok {
		t.Fatal("missing table must not resolve")
	}
}
