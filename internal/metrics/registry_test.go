package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ship_epochs_sent")
	c.Add(3)
	if got := r.Counter("ship_epochs_sent").Load(); got != 3 {
		t.Fatalf("counter not shared: got %d, want 3", got)
	}
	g := r.Gauge("ship_lag_seconds")
	g.Set(0.25)
	if got := r.Gauge("ship_lag_seconds").Load(); got != 0.25 {
		t.Fatalf("gauge not shared: got %v, want 0.25", got)
	}

	snap := r.Snapshot()
	if snap["ship_epochs_sent"] != 3 || snap["ship_lag_seconds"] != 0.25 {
		t.Fatalf("bad snapshot: %v", snap)
	}
}

func TestRegistryLine(t *testing.T) {
	r := NewRegistry()
	r.Counter("ship_inflight_b").Add(2)
	r.Counter("ship_inflight_a").Add(1)
	r.Gauge("other_metric").Set(9)
	line := r.Line("ship_")
	if line != "ship_inflight_a=1 ship_inflight_b=2" {
		t.Fatalf("bad line: %q", line)
	}
	if strings.Contains(r.Line(""), "other_metric=9") == false {
		t.Fatalf("unfiltered line misses gauge: %q", r.Line(""))
	}
}

func TestWithLabelAndBaseName(t *testing.T) {
	got := WithLabel("ship_connected", "peer", "r1")
	if got != `ship_connected{peer="r1"}` {
		t.Fatalf("WithLabel: %q", got)
	}
	if WithLabel("ship_connected", "peer", "") != "ship_connected" {
		t.Fatal("empty label value must keep the plain name")
	}
	if BaseName(got) != "ship_connected" {
		t.Fatalf("BaseName(%q) = %q", got, BaseName(got))
	}
	if BaseName("plain") != "plain" {
		t.Fatalf("BaseName(plain) = %q", BaseName("plain"))
	}
	// Labelled and unlabelled series are distinct registry entries.
	r := NewRegistry()
	r.Counter("ship_epochs_sent").Add(1)
	r.Counter(WithLabel("ship_epochs_sent", "peer", "a")).Add(2)
	r.Counter(WithLabel("ship_epochs_sent", "peer", "b")).Add(3)
	snap := r.Snapshot()
	if snap["ship_epochs_sent"] != 1 || snap[`ship_epochs_sent{peer="a"}`] != 2 || snap[`ship_epochs_sent{peer="b"}`] != 3 {
		t.Fatalf("labelled series collided: %v", snap)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c").Inc()
				r.Gauge("g").Set(float64(j))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Load(); got != 8000 {
		t.Fatalf("lost increments: got %d, want 8000", got)
	}
}
