package metrics

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketsAndCount(t *testing.T) {
	var h Histogram
	h.Observe(500 * time.Nanosecond) // below first bound → first bucket
	h.Observe(3 * time.Microsecond)
	h.Observe(100 * time.Millisecond)
	h.Observe(10 * time.Minute) // beyond last bound → +Inf only
	h.Observe(-time.Second)     // clamped to 0

	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count %d, want 5", s.Count)
	}
	if got := s.Buckets[len(s.Buckets)-1].Count; got != 4 {
		t.Fatalf("last finite bucket cumulative %d, want 4 (one sample is +Inf-only)", got)
	}
	if s.Buckets[0].Count != 2 { // 500ns and -1s→0 both land in the first bucket
		t.Fatalf("first bucket %d, want 2", s.Buckets[0].Count)
	}
	// Cumulative counts must be monotone and bounds ascending.
	for i := 1; i < len(s.Buckets); i++ {
		if s.Buckets[i].Count < s.Buckets[i-1].Count {
			t.Fatalf("bucket %d cumulative count decreased", i)
		}
		if s.Buckets[i].UpperSeconds <= s.Buckets[i-1].UpperSeconds {
			t.Fatalf("bucket %d bound not ascending", i)
		}
	}
	wantSum := (500*time.Nanosecond + 3*time.Microsecond + 100*time.Millisecond + 10*time.Minute).Seconds()
	if math.Abs(s.SumSeconds-wantSum) > 1e-9 {
		t.Fatalf("sum %v, want %v", s.SumSeconds, wantSum)
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	for i := 0; i < 1000; i++ {
		h.Observe(time.Millisecond)
	}
	s := h.Snapshot()
	p50 := s.Quantile(0.5)
	// All samples are 1ms; the estimate must land within the 2× bucket that
	// contains it.
	if p50 < 0.5e-3 || p50 > 2.2e-3 {
		t.Fatalf("p50 %v, want ≈1ms", p50)
	}
	var empty HistogramSnapshot
	if empty.Quantile(0.99) != 0 {
		t.Fatal("empty snapshot quantile must be 0")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count %d", h.Count())
	}
}

// TestHistogramObserveAllocs pins the hot-path claim: recording a sample
// allocates nothing, so histograms can sit on the TPLR hand-off path
// without breaking its zero-allocation guarantee.
func TestHistogramObserveAllocs(t *testing.T) {
	var h Histogram
	n := testing.AllocsPerRun(1000, func() {
		h.Observe(3 * time.Millisecond)
	})
	if n != 0 {
		t.Fatalf("Observe allocates %.1f objects/op, want 0", n)
	}
}

func TestRegistryHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("replay_test_seconds")
	if h != r.Histogram("replay_test_seconds") {
		t.Fatal("get-or-create must return the same instance")
	}
	h.Observe(time.Millisecond)
	snap := r.SnapshotAll()
	hs, ok := snap.Histograms["replay_test_seconds"]
	if !ok || hs.Count != 1 {
		t.Fatalf("snapshot %+v", snap.Histograms)
	}
	r.Counter("c").Add(3)
	r.Gauge("g").Set(1.5)
	snap = r.SnapshotAll()
	if snap.Counters["c"] != 3 || snap.Gauges["g"] != 1.5 {
		t.Fatalf("typed snapshot %+v", snap)
	}
}

func TestDelayRecorderReservoirBounds(t *testing.T) {
	var r DelayRecorder
	const n = 3 * ReservoirSize
	for i := 1; i <= n; i++ {
		r.Record(time.Duration(i) * time.Microsecond)
	}
	if r.Count() != n {
		t.Fatalf("count %d, want %d", r.Count(), n)
	}
	r.mu.Lock()
	retained := len(r.samples)
	r.mu.Unlock()
	if retained != ReservoirSize {
		t.Fatalf("retained %d samples, want capped at %d", retained, ReservoirSize)
	}
	// Mean stays exact even with sampling.
	if m := r.Mean(); math.Abs(m-float64(n+1)/2) > 1e-6 {
		t.Fatalf("mean %v, want %v", m, float64(n+1)/2)
	}
	// The reservoir is uniform over 1..n µs: the median estimate must land
	// near n/2 (generous tolerance — this guards gross bias, not variance).
	if p50 := r.Quantile(0.5); p50 < float64(n)*0.4 || p50 > float64(n)*0.6 {
		t.Fatalf("reservoir p50 %v, want ≈%v", p50, float64(n)/2)
	}
}

func TestDelayRecorderExactMode(t *testing.T) {
	r := NewExactDelayRecorder()
	const n = 2 * ReservoirSize
	for i := 1; i <= n; i++ {
		r.Record(time.Duration(i) * time.Microsecond)
	}
	r.mu.Lock()
	retained := len(r.samples)
	r.mu.Unlock()
	if retained != n {
		t.Fatalf("exact mode retained %d, want all %d", retained, n)
	}
	if p := r.Quantile(1); p != float64(n) {
		t.Fatalf("exact max %v, want %v", p, float64(n))
	}
	r.Reset()
	if r.Count() != 0 || r.Quantile(0.5) != 0 || r.Mean() != 0 {
		t.Fatal("reset incomplete")
	}
}
