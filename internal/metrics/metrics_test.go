package metrics

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestDelayRecorderStats(t *testing.T) {
	var r DelayRecorder
	for i := 1; i <= 100; i++ {
		r.Record(time.Duration(i) * time.Microsecond)
	}
	if r.Count() != 100 {
		t.Fatalf("count %d", r.Count())
	}
	if m := r.Mean(); math.Abs(m-50.5) > 1e-9 {
		t.Fatalf("mean %v, want 50.5", m)
	}
	if p := r.Quantile(0.5); math.Abs(p-50.5) > 1 {
		t.Fatalf("p50 %v", p)
	}
	if p := r.Quantile(0); p != 1 {
		t.Fatalf("min %v", p)
	}
	if p := r.Quantile(1); p != 100 {
		t.Fatalf("max %v", p)
	}
	r.Reset()
	if r.Count() != 0 || r.Mean() != 0 || r.Quantile(0.9) != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestDelayRecorderConcurrent(t *testing.T) {
	var r DelayRecorder
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Record(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if r.Count() != 8000 {
		t.Fatalf("count %d", r.Count())
	}
}

func TestDelayRecorderSummary(t *testing.T) {
	var r DelayRecorder
	r.Record(10 * time.Microsecond)
	s := r.Summary()
	if s == "" || len(s) < 10 {
		t.Fatalf("summary: %q", s)
	}
}

func TestBreakdownShares(t *testing.T) {
	var b Breakdown
	d0, r0, c0 := b.Shares()
	if d0 != 0 || r0 != 0 || c0 != 0 {
		t.Fatal("empty breakdown must be all zero")
	}
	b.AddDispatch(1 * time.Millisecond)
	b.AddReplay(98 * time.Millisecond)
	b.AddCommit(1 * time.Millisecond)
	d, r, c := b.Shares()
	if math.Abs(d-0.01) > 1e-9 || math.Abs(r-0.98) > 1e-9 || math.Abs(c-0.01) > 1e-9 {
		t.Fatalf("shares %v %v %v", d, r, c)
	}
	b.Reset()
	if d, r, c := b.Shares(); d+r+c != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestThroughput(t *testing.T) {
	tp := Throughput{Entries: 1000, Txns: 100, Elapsed: time.Second}
	if tp.EntriesPerSec() != 1000 || tp.TxnsPerSec() != 100 {
		t.Fatalf("%v %v", tp.EntriesPerSec(), tp.TxnsPerSec())
	}
	zero := Throughput{}
	if zero.EntriesPerSec() != 0 || zero.TxnsPerSec() != 0 {
		t.Fatal("zero elapsed must give zero rates")
	}
}
