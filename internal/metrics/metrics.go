// Package metrics provides the measurement primitives of the evaluation:
// visibility-delay recorders, replay throughput, and the dispatch/replay/
// commit time breakdown of Table II.
package metrics

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ReservoirSize is the sample cap of a bounded DelayRecorder: enough for
// stable p99 estimates, small enough that a replayd process serving a
// multi-day stream holds a constant ~32 KB per recorder instead of one
// float per query ever issued.
const ReservoirSize = 4096

// DelayRecorder accumulates visibility-delay samples. Safe for concurrent
// use by many query goroutines.
//
// The zero value keeps at most ReservoirSize samples via reservoir
// sampling (Vitter's Algorithm R): Count and Mean stay exact, quantiles
// become uniform estimates over the whole stream. The experiment harness,
// which reports the paper's exact percentiles over bounded runs, opts out
// with NewExactDelayRecorder.
type DelayRecorder struct {
	mu      sync.Mutex
	exact   bool
	count   int64
	sum     float64   // microseconds
	samples []float64 // microseconds; full stream when exact, reservoir otherwise
	rng     *rand.Rand
}

// NewExactDelayRecorder returns a recorder that retains every sample, so
// quantiles are exact. Memory grows with the sample count — for bounded
// experiment runs only, never for long-running daemons.
func NewExactDelayRecorder() *DelayRecorder {
	return &DelayRecorder{exact: true}
}

// Record adds one sample.
func (r *DelayRecorder) Record(d time.Duration) {
	us := float64(d) / float64(time.Microsecond)
	r.mu.Lock()
	r.count++
	r.sum += us
	switch {
	case r.exact || len(r.samples) < ReservoirSize:
		r.samples = append(r.samples, us)
	default:
		// Algorithm R: sample i (1-based) replaces a random slot with
		// probability ReservoirSize/i, keeping the reservoir uniform.
		if r.rng == nil {
			r.rng = rand.New(rand.NewSource(0x5eed5eed))
		}
		if j := r.rng.Int63n(r.count); j < ReservoirSize {
			r.samples[j] = us
		}
	}
	r.mu.Unlock()
}

// Count returns the number of samples recorded (not the number retained).
func (r *DelayRecorder) Count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return int(r.count)
}

// Mean returns the mean delay in microseconds (0 when empty). Exact in
// both modes: the sum is accumulated outside the reservoir.
func (r *DelayRecorder) Mean() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.count == 0 {
		return 0
	}
	return r.sum / float64(r.count)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) in microseconds — exact when
// every sample was retained, a reservoir estimate otherwise. The retained
// samples are copied under the lock but sorted outside it, so a slow
// quantile query does not stall Record callers.
func (r *DelayRecorder) Quantile(q float64) float64 {
	r.mu.Lock()
	s := append([]float64(nil), r.samples...)
	r.mu.Unlock()
	if len(s) == 0 {
		return 0
	}
	sort.Float64s(s)
	idx := q * float64(len(s)-1)
	lo := int(math.Floor(idx))
	hi := int(math.Ceil(idx))
	if lo == hi {
		return s[lo]
	}
	frac := idx - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Reset discards all samples.
func (r *DelayRecorder) Reset() {
	r.mu.Lock()
	r.count = 0
	r.sum = 0
	r.samples = nil
	r.mu.Unlock()
}

// Summary renders count/mean/p50/p95/p99 for log output.
func (r *DelayRecorder) Summary() string {
	return fmt.Sprintf("n=%d mean=%.1fus p50=%.1fus p95=%.1fus p99=%.1fus",
		r.Count(), r.Mean(), r.Quantile(0.5), r.Quantile(0.95), r.Quantile(0.99))
}

// Breakdown accumulates the per-phase time shares of Table II. The three
// phases are accounted in nanoseconds of work (summed across goroutines for
// the parallel replay phase, matching the paper's CPU-time breakdown).
type Breakdown struct {
	DispatchNS atomic.Int64
	ReplayNS   atomic.Int64
	CommitNS   atomic.Int64
}

// AddDispatch, AddReplay and AddCommit add elapsed work time to a phase.
func (b *Breakdown) AddDispatch(d time.Duration) { b.DispatchNS.Add(int64(d)) }

// AddReplay adds elapsed work time to the replay phase.
func (b *Breakdown) AddReplay(d time.Duration) { b.ReplayNS.Add(int64(d)) }

// AddCommit adds elapsed work time to the commit phase.
func (b *Breakdown) AddCommit(d time.Duration) { b.CommitNS.Add(int64(d)) }

// Shares returns the dispatch/replay/commit fractions, summing to 1 when
// any time has been recorded.
func (b *Breakdown) Shares() (dispatch, replay, commit float64) {
	d := float64(b.DispatchNS.Load())
	r := float64(b.ReplayNS.Load())
	c := float64(b.CommitNS.Load())
	tot := d + r + c
	if tot == 0 {
		return 0, 0, 0
	}
	return d / tot, r / tot, c / tot
}

// Reset zeroes all phases.
func (b *Breakdown) Reset() {
	b.DispatchNS.Store(0)
	b.ReplayNS.Store(0)
	b.CommitNS.Store(0)
}

// Throughput describes one replay run for reporting.
type Throughput struct {
	Entries int
	Txns    int
	Elapsed time.Duration
}

// EntriesPerSec returns replayed log entries per second.
func (t Throughput) EntriesPerSec() float64 {
	if t.Elapsed <= 0 {
		return 0
	}
	return float64(t.Entries) / t.Elapsed.Seconds()
}

// TxnsPerSec returns replayed transactions per second.
func (t Throughput) TxnsPerSec() float64 {
	if t.Elapsed <= 0 {
		return 0
	}
	return float64(t.Txns) / t.Elapsed.Seconds()
}
