package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing operational metric (events,
// epochs, reconnects). Safe for concurrent use; the zero value is ready.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is a point-in-time operational metric (in-flight window size,
// replication lag). Safe for concurrent use; the zero value is ready.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Load returns the current value.
func (g *Gauge) Load() float64 { return math.Float64frombits(g.bits.Load()) }

// WithLabel renders a metric name carrying one label dimension in the
// Prometheus series syntax: WithLabel("ship_connected", "peer", "r1") is
// "ship_connected{peer=\"r1\"}". Labelled series are ordinary registry
// entries — the registry stays a flat name space — but the exposition
// layer (obsrv) groups series of one family under a single TYPE line by
// splitting on BaseName. An empty value returns name unchanged, so
// single-link callers keep the unlabelled series.
func WithLabel(name, key, value string) string {
	if value == "" {
		return name
	}
	return fmt.Sprintf("%s{%s=%q}", name, key, value)
}

// BaseName strips a label block from a registry name: the family name
// Prometheus TYPE lines are declared for. Names without labels pass
// through unchanged.
func BaseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// Registry names counters and gauges so subsystems can register their
// operational metrics once and reporting loops can snapshot them all.
// Lookups are get-or-create, so independent components naming the same
// metric share one instance.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Default is the process-wide registry used when callers do not supply
// their own (cmd/replayd reports from it).
var Default = NewRegistry()

// Counter returns the named counter, creating it if absent.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if absent.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it if absent.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.histograms[name]
	if h == nil {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Snapshot is a typed capture of a registry's full contents, used by the
// obsrv exposition endpoints (where counter vs. gauge vs. histogram
// matters for the Prometheus TYPE line).
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// SnapshotAll captures every registered metric with its kind preserved.
func (r *Registry) SnapshotAll() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.histograms)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Load()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Load()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// Snapshot returns every registered counter's and gauge's current value by
// name (histograms are exposed through SnapshotAll).
func (r *Registry) Snapshot() map[string]float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64, len(r.counters)+len(r.gauges))
	for name, c := range r.counters {
		out[name] = float64(c.Load())
	}
	for name, g := range r.gauges {
		out[name] = g.Load()
	}
	return out
}

// Line renders the metrics whose names start with prefix as one
// "name=value" log line, sorted by name.
func (r *Registry) Line(prefix string) string {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		if strings.HasPrefix(name, prefix) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, name := range names {
		v := snap[name]
		if v == math.Trunc(v) && math.Abs(v) < 1e15 {
			parts[i] = fmt.Sprintf("%s=%d", name, int64(v))
		} else {
			parts[i] = fmt.Sprintf("%s=%.3f", name, v)
		}
	}
	return strings.Join(parts, " ")
}
