package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket layout: powers of two in nanoseconds, from 2^histMinPow
// (≈1 µs) to 2^histMaxPow (≈69 s). Latencies below the first bound land in
// the first bucket; latencies above the last bound count only toward the
// +Inf bucket (Count). The geometric spacing gives ~2× resolution across
// six decades with a fixed 27-slot array, so recording is a single atomic
// add with no allocation — safe on the replay hot path.
const (
	histMinPow  = 10 // 2^10 ns = 1.024 µs
	histMaxPow  = 36 // 2^36 ns ≈ 68.7 s
	histNumBkts = histMaxPow - histMinPow + 1
)

// Histogram is a fixed-bucket latency histogram (exponential, base 2).
// Safe for concurrent use; the zero value is ready. Observe is
// allocation-free and wait-free, which is what lets the replay engine
// record dispatch/commit/wait latencies inside its pinned-allocation hot
// paths.
type Histogram struct {
	buckets [histNumBkts]atomic.Int64 // per-bucket (non-cumulative) counts
	count   atomic.Int64
	sumNS   atomic.Int64
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.count.Add(1)
	h.sumNS.Add(ns)
	// bits.Len64(ns) is the smallest p with ns < 2^p, so the sample belongs
	// to the bucket with upper bound 2^p.
	p := bits.Len64(uint64(ns))
	switch {
	case p <= histMinPow:
		h.buckets[0].Add(1)
	case p <= histMaxPow:
		h.buckets[p-histMinPow].Add(1)
		// else: beyond the last bound — counted in Count (+Inf) only.
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed latencies.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sumNS.Load()) }

// HistogramBucket is one cumulative bucket of a snapshot: the number of
// observations at or below UpperSeconds.
type HistogramBucket struct {
	UpperSeconds float64 `json:"le"`
	Count        int64   `json:"count"`
}

// HistogramSnapshot is a point-in-time view of a Histogram, in the
// cumulative form Prometheus exposition wants. Buckets are ascending;
// observations above the last bound appear only in Count (the +Inf
// bucket).
type HistogramSnapshot struct {
	Count      int64             `json:"count"`
	SumSeconds float64           `json:"sum_seconds"`
	Buckets    []HistogramBucket `json:"buckets,omitempty"`
}

// Snapshot captures the histogram's current state. Concurrent Observes may
// land between bucket reads; the snapshot is still internally monotone
// because buckets are accumulated in one pass and Count is read last.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Buckets: make([]HistogramBucket, histNumBkts)}
	var cum int64
	for i := 0; i < histNumBkts; i++ {
		cum += h.buckets[i].Load()
		s.Buckets[i] = HistogramBucket{
			UpperSeconds: bucketUpperSeconds(i),
			Count:        cum,
		}
	}
	s.SumSeconds = float64(h.sumNS.Load()) / float64(time.Second)
	c := h.count.Load()
	if c < cum {
		c = cum // Count read raced behind the bucket adds
	}
	s.Count = c
	return s
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) in seconds from the
// snapshot's buckets: the upper bound of the first bucket whose cumulative
// count reaches q·Count, log-interpolated within the bucket. Good to ~2×,
// which is all a monitoring endpoint needs.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	target := q * float64(s.Count)
	prevCount := int64(0)
	for i, b := range s.Buckets {
		if float64(b.Count) >= target {
			lower := 0.0
			if i > 0 {
				lower = s.Buckets[i-1].UpperSeconds
			}
			in := b.Count - prevCount
			if in <= 0 {
				return b.UpperSeconds
			}
			frac := (target - float64(prevCount)) / float64(in)
			return lower + (b.UpperSeconds-lower)*math.Min(1, math.Max(0, frac))
		}
		prevCount = b.Count
	}
	// Above the last bound (+Inf bucket): report the last finite bound.
	return s.Buckets[len(s.Buckets)-1].UpperSeconds
}

func bucketUpperSeconds(i int) float64 {
	return float64(int64(1)<<uint(histMinPow+i)) / float64(time.Second)
}
