// Package dispatch implements the log parser and dispatcher (paper §III-C,
// component ①). It scans an encoded epoch once, using header-only frame
// decoding, finds transaction boundaries from the BEGIN/COMMIT framing, and
// routes each DML frame to the replay batch of its table's group. A
// transaction updating tables from several groups is split into per-group
// pieces; the transaction's ID is pushed into the commit_order_queue of
// every group it touches, preserving the primary commit order per group.
package dispatch

import (
	"fmt"

	"aets/internal/epoch"
	"aets/internal/grouping"
	"aets/internal/wal"
)

// Piece is one transaction's modifications restricted to one table group.
// Frames holds the encoded DML frames (sub-slices of the epoch buffer);
// replay workers decode them fully during the first TPLR phase.
type Piece struct {
	TxnID    uint64
	CommitTS int64
	Frames   [][]byte
	Bytes    int
}

// GroupBatch collects all pieces of one epoch routed to one group, plus the
// group's commit_order_queue for the epoch. Pieces[i] is the piece of
// CommitOrder[i]: dispatch appends both on the same COMMIT, so the pieces
// are stored in primary commit order and a committer can address "the next
// transaction to commit" by slot index.
type GroupBatch struct {
	Group       int
	Pieces      []Piece
	CommitOrder []uint64 // txn IDs in primary commit order
	Bytes       int
	Entries     int
}

// Result is the dispatch output for one epoch.
type Result struct {
	PerGroup     []*GroupBatch // indexed by group ID; nil when untouched
	Txns         int
	Entries      int
	LastTxnID    uint64
	LastCommitTS int64
}

// Buffers recycles a dispatcher's output structures — the Result, the
// per-group batches with their Pieces/CommitOrder backing arrays, and the
// per-piece Frames arrays — across epochs, so a steady-state dispatch
// allocates nothing. One Buffers serves one epoch at a time; the pipelined
// replay engine keeps a pool of them, one per in-flight epoch, and returns
// each to the pool when its epoch is fully committed. The Result and
// batches returned by Dispatch alias the Buffers and die with the next
// Dispatch call on it.
type Buffers struct {
	res       Result
	batches   []GroupBatch
	pending   []Piece
	touched   []int
	frameFree [][][]byte // harvested Frames backing arrays
}

// NewBuffers returns an empty recyclable dispatch buffer set.
func NewBuffers() *Buffers { return &Buffers{} }

// reset prepares the buffers for one epoch over ngroups groups, harvesting
// every previous batch's Frames arrays for reuse.
func (b *Buffers) reset(ngroups int) {
	for gi := range b.batches {
		gb := &b.batches[gi]
		for i := range gb.Pieces {
			if f := gb.Pieces[i].Frames; f != nil {
				b.frameFree = append(b.frameFree, f[:0])
				gb.Pieces[i].Frames = nil
			}
		}
		gb.Pieces = gb.Pieces[:0]
		gb.CommitOrder = gb.CommitOrder[:0]
		gb.Bytes, gb.Entries = 0, 0
	}
	if cap(b.batches) < ngroups {
		b.batches = make([]GroupBatch, ngroups)
		b.pending = make([]Piece, ngroups)
		b.res.PerGroup = make([]*GroupBatch, ngroups)
	}
	b.batches = b.batches[:ngroups]
	b.pending = b.pending[:ngroups]
	for gi := range b.pending {
		// A pending piece's Frames array was either handed to a batch (nil,
		// harvested above) or abandoned by an error path; a nil Frames marks
		// the piece untouched, so stale TxnIDs cannot collide with a new
		// epoch's transactions.
		b.pending[gi].TxnID = 0
		b.pending[gi].Bytes = 0
		if f := b.pending[gi].Frames; f != nil {
			b.frameFree = append(b.frameFree, f[:0])
			b.pending[gi].Frames = nil
		}
	}
	b.touched = b.touched[:0]
	b.res.PerGroup = b.res.PerGroup[:ngroups]
	for gi := range b.res.PerGroup {
		b.res.PerGroup[gi] = nil
	}
	b.res.Txns, b.res.Entries = 0, 0
}

// takeFrames pops a recycled frames array, or returns nil (append will
// then allocate a fresh one).
func (b *Buffers) takeFrames() [][]byte {
	n := len(b.frameFree)
	if n == 0 {
		return nil
	}
	f := b.frameFree[n-1]
	b.frameFree[n-1] = nil
	b.frameFree = b.frameFree[:n-1]
	return f
}

// Dispatch routes one encoded epoch according to plan, reusing b's backing
// arrays. It decodes only entry headers; frame payloads are passed through
// untouched. The Result is valid until the next Dispatch on b.
func (b *Buffers) Dispatch(enc *epoch.Encoded, plan *grouping.Plan) (*Result, error) {
	b.reset(len(plan.Groups))
	res := &b.res
	res.LastTxnID = enc.LastTxnID
	res.LastCommitTS = enc.LastCommitTS

	buf := enc.Buf
	// pending is indexed by group ID and reused across transactions; a
	// piece belongs to the current transaction iff its TxnID matches, so no
	// per-transaction clearing or map allocation is needed on this hot
	// path (dispatch must stay ≈1% of total replay work, Table II).
	var (
		inTxn bool
		curID uint64
	)
	for len(buf) > 0 {
		h, sz, err := wal.DecodeHeader(buf)
		if err != nil {
			return nil, err
		}
		frame := buf[:sz]
		buf = buf[sz:]

		switch h.Type {
		case wal.TypeBegin:
			if inTxn {
				return nil, fmt.Errorf("dispatch: BEGIN %d inside open txn %d", h.TxnID, curID)
			}
			inTxn, curID = true, h.TxnID
			b.touched = b.touched[:0]

		case wal.TypeCommit:
			if !inTxn || h.TxnID != curID {
				return nil, fmt.Errorf("dispatch: COMMIT %d without matching BEGIN", h.TxnID)
			}
			for _, gi := range b.touched {
				p := &b.pending[gi]
				p.CommitTS = h.Timestamp
				gb := res.PerGroup[gi]
				if gb == nil {
					gb = &b.batches[gi]
					gb.Group = gi
					res.PerGroup[gi] = gb
				}
				gb.Pieces = append(gb.Pieces, *p)
				gb.CommitOrder = append(gb.CommitOrder, curID)
				gb.Bytes += p.Bytes
				gb.Entries += len(p.Frames)
				p.Frames = nil // hand ownership of the slice to the batch
				p.Bytes = 0
			}
			res.Txns++
			if h.TxnID > res.LastTxnID {
				res.LastTxnID = h.TxnID
			}
			if h.Timestamp > res.LastCommitTS {
				res.LastCommitTS = h.Timestamp
			}
			inTxn = false

		case wal.TypeInsert, wal.TypeUpdate, wal.TypeDelete:
			if !inTxn || h.TxnID != curID {
				return nil, fmt.Errorf("dispatch: DML of txn %d outside its frame", h.TxnID)
			}
			gi, ok := plan.GroupOf(h.Table)
			if !ok {
				return nil, fmt.Errorf("dispatch: table %d not covered by the group plan", h.Table)
			}
			p := &b.pending[gi]
			if p.TxnID != curID || p.Frames == nil {
				p.TxnID = curID
				if p.Frames == nil {
					p.Frames = b.takeFrames()
				}
				p.Frames = p.Frames[:0]
				p.Bytes = 0
				b.touched = append(b.touched, gi)
			}
			p.Frames = append(p.Frames, frame)
			p.Bytes += sz
			res.Entries++

		default:
			return nil, fmt.Errorf("dispatch: invalid entry type %d", h.Type)
		}
	}
	if inTxn {
		return nil, fmt.Errorf("dispatch: epoch %d ends inside open txn %d", enc.Seq, curID)
	}
	return res, nil
}

// Dispatch routes one encoded epoch according to plan with fresh,
// single-use buffers. Steady-state callers should hold a Buffers and use
// its Dispatch method instead.
func Dispatch(enc *epoch.Encoded, plan *grouping.Plan) (*Result, error) {
	return NewBuffers().Dispatch(enc, plan)
}
