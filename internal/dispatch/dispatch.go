// Package dispatch implements the log parser and dispatcher (paper §III-C,
// component ①). It scans an encoded epoch once, using header-only frame
// decoding, finds transaction boundaries from the BEGIN/COMMIT framing, and
// routes each DML frame to the replay batch of its table's group. A
// transaction updating tables from several groups is split into per-group
// pieces; the transaction's ID is pushed into the commit_order_queue of
// every group it touches, preserving the primary commit order per group.
package dispatch

import (
	"fmt"

	"aets/internal/epoch"
	"aets/internal/grouping"
	"aets/internal/wal"
)

// Piece is one transaction's modifications restricted to one table group.
// Frames holds the encoded DML frames (sub-slices of the epoch buffer);
// replay workers decode them fully during the first TPLR phase.
type Piece struct {
	TxnID    uint64
	CommitTS int64
	Frames   [][]byte
	Bytes    int
}

// GroupBatch collects all pieces of one epoch routed to one group, plus the
// group's commit_order_queue for the epoch.
type GroupBatch struct {
	Group       int
	Pieces      []Piece
	CommitOrder []uint64 // txn IDs in primary commit order
	Bytes       int
	Entries     int
}

// Result is the dispatch output for one epoch.
type Result struct {
	PerGroup     []*GroupBatch // indexed by group ID; nil when untouched
	Txns         int
	Entries      int
	LastTxnID    uint64
	LastCommitTS int64
}

// Dispatch routes one encoded epoch according to plan. It decodes only
// entry headers; frame payloads are passed through untouched.
func Dispatch(enc *epoch.Encoded, plan *grouping.Plan) (*Result, error) {
	res := &Result{
		PerGroup:     make([]*GroupBatch, len(plan.Groups)),
		LastTxnID:    enc.LastTxnID,
		LastCommitTS: enc.LastCommitTS,
	}

	buf := enc.Buf
	// pending is indexed by group ID and reused across transactions; a
	// piece belongs to the current transaction iff its TxnID matches, so no
	// per-transaction clearing or map allocation is needed on this hot
	// path (dispatch must stay ≈1% of total replay work, Table II).
	var (
		inTxn   bool
		curID   uint64
		touched []int // group IDs touched by the current txn
		pending = make([]Piece, len(plan.Groups))
	)
	for len(buf) > 0 {
		h, sz, err := wal.DecodeHeader(buf)
		if err != nil {
			return nil, err
		}
		frame := buf[:sz]
		buf = buf[sz:]

		switch h.Type {
		case wal.TypeBegin:
			if inTxn {
				return nil, fmt.Errorf("dispatch: BEGIN %d inside open txn %d", h.TxnID, curID)
			}
			inTxn, curID = true, h.TxnID
			touched = touched[:0]

		case wal.TypeCommit:
			if !inTxn || h.TxnID != curID {
				return nil, fmt.Errorf("dispatch: COMMIT %d without matching BEGIN", h.TxnID)
			}
			for _, gi := range touched {
				p := &pending[gi]
				p.CommitTS = h.Timestamp
				gb := res.PerGroup[gi]
				if gb == nil {
					gb = &GroupBatch{Group: gi}
					res.PerGroup[gi] = gb
				}
				gb.Pieces = append(gb.Pieces, *p)
				gb.CommitOrder = append(gb.CommitOrder, curID)
				gb.Bytes += p.Bytes
				gb.Entries += len(p.Frames)
				p.Frames = nil // hand ownership of the slice to the batch
				p.Bytes = 0
			}
			res.Txns++
			if h.TxnID > res.LastTxnID {
				res.LastTxnID = h.TxnID
			}
			if h.Timestamp > res.LastCommitTS {
				res.LastCommitTS = h.Timestamp
			}
			inTxn = false

		case wal.TypeInsert, wal.TypeUpdate, wal.TypeDelete:
			if !inTxn || h.TxnID != curID {
				return nil, fmt.Errorf("dispatch: DML of txn %d outside its frame", h.TxnID)
			}
			gi, ok := plan.GroupOf(h.Table)
			if !ok {
				return nil, fmt.Errorf("dispatch: table %d not covered by the group plan", h.Table)
			}
			p := &pending[gi]
			if p.TxnID != curID || p.Frames == nil {
				p.TxnID = curID
				p.Frames = p.Frames[:0]
				p.Bytes = 0
				touched = append(touched, gi)
			}
			p.Frames = append(p.Frames, frame)
			p.Bytes += sz
			res.Entries++

		default:
			return nil, fmt.Errorf("dispatch: invalid entry type %d", h.Type)
		}
	}
	if inTxn {
		return nil, fmt.Errorf("dispatch: epoch %d ends inside open txn %d", enc.Seq, curID)
	}
	return res, nil
}
