package dispatch

import (
	"math/rand"
	"testing"

	"aets/internal/epoch"
	"aets/internal/grouping"
	"aets/internal/wal"
)

func twoGroupPlan() *grouping.Plan {
	// Tables 1,2 hot (group 0 and 1), table 3 cold (group 2).
	return grouping.Build(
		map[wal.TableID]float64{1: 100, 2: 50},
		[]wal.TableID{1, 2, 3},
		grouping.Options{PerTable: true},
	)
}

func makeEncoded(t *testing.T, txns []wal.Txn) *epoch.Encoded {
	t.Helper()
	ep := &epoch.Epoch{Seq: 0, Txns: txns}
	enc, _ := epoch.Encode(ep, 1)
	return &enc
}

func entry(table wal.TableID, key uint64) wal.Entry {
	return wal.Entry{Type: wal.TypeUpdate, Table: table, RowKey: key,
		Columns: []wal.Column{{ID: 1, Value: []byte("v")}}}
}

func TestDispatchRoutesByGroup(t *testing.T) {
	plan := twoGroupPlan()
	txns := []wal.Txn{
		{ID: 1, CommitTS: 10, Entries: []wal.Entry{entry(1, 1), entry(3, 1)}},
		{ID: 2, CommitTS: 20, Entries: []wal.Entry{entry(2, 1)}},
		{ID: 3, CommitTS: 30, Entries: []wal.Entry{entry(1, 2), entry(1, 3)}},
	}
	res, err := Dispatch(makeEncoded(t, txns), plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.Txns != 3 || res.Entries != 5 {
		t.Fatalf("txns=%d entries=%d", res.Txns, res.Entries)
	}
	if res.LastCommitTS != 30 || res.LastTxnID != 3 {
		t.Fatalf("last ts=%d id=%d", res.LastCommitTS, res.LastTxnID)
	}

	g1, _ := plan.GroupOf(1)
	g2, _ := plan.GroupOf(2)
	g3, _ := plan.GroupOf(3)

	gb1 := res.PerGroup[g1]
	if gb1 == nil || gb1.Entries != 3 || len(gb1.Pieces) != 2 {
		t.Fatalf("group of table 1: %+v", gb1)
	}
	if len(gb1.CommitOrder) != 2 || gb1.CommitOrder[0] != 1 || gb1.CommitOrder[1] != 3 {
		t.Fatalf("commit order of table-1 group: %v", gb1.CommitOrder)
	}
	gb2 := res.PerGroup[g2]
	if gb2 == nil || gb2.Entries != 1 || gb2.CommitOrder[0] != 2 {
		t.Fatalf("group of table 2: %+v", gb2)
	}
	gb3 := res.PerGroup[g3]
	if gb3 == nil || gb3.Entries != 1 || gb3.CommitOrder[0] != 1 {
		t.Fatalf("group of table 3: %+v", gb3)
	}
}

func TestDispatchSplitsMultiGroupTxn(t *testing.T) {
	plan := twoGroupPlan()
	txns := []wal.Txn{
		{ID: 1, CommitTS: 10, Entries: []wal.Entry{entry(1, 1), entry(2, 1), entry(3, 1)}},
	}
	res, err := Dispatch(makeEncoded(t, txns), plan)
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for _, gb := range res.PerGroup {
		if gb == nil {
			continue
		}
		seen++
		if len(gb.Pieces) != 1 || gb.Pieces[0].TxnID != 1 || gb.Pieces[0].CommitTS != 10 {
			t.Fatalf("piece: %+v", gb.Pieces[0])
		}
	}
	if seen != 3 {
		t.Fatalf("txn split over %d groups, want 3", seen)
	}
}

func TestDispatchPieceFramesDecode(t *testing.T) {
	plan := twoGroupPlan()
	txns := []wal.Txn{
		{ID: 1, CommitTS: 10, Entries: []wal.Entry{entry(1, 42)}},
	}
	res, err := Dispatch(makeEncoded(t, txns), plan)
	if err != nil {
		t.Fatal(err)
	}
	g1, _ := plan.GroupOf(1)
	frame := res.PerGroup[g1].Pieces[0].Frames[0]
	e, _, err := wal.Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	if e.Table != 1 || e.RowKey != 42 || string(e.Columns[0].Value) != "v" {
		t.Fatalf("decoded frame: %+v", e)
	}
}

func TestDispatchByteAccounting(t *testing.T) {
	plan := twoGroupPlan()
	txns := []wal.Txn{
		{ID: 1, CommitTS: 10, Entries: []wal.Entry{entry(1, 1), entry(1, 2)}},
	}
	enc := makeEncoded(t, txns)
	res, err := Dispatch(enc, plan)
	if err != nil {
		t.Fatal(err)
	}
	g1, _ := plan.GroupOf(1)
	gb := res.PerGroup[g1]
	var frameBytes int
	for _, p := range gb.Pieces {
		for _, f := range p.Frames {
			frameBytes += len(f)
		}
	}
	if gb.Bytes != frameBytes {
		t.Fatalf("Bytes=%d, frames sum to %d", gb.Bytes, frameBytes)
	}
}

func TestDispatchRejectsUnknownTable(t *testing.T) {
	plan := twoGroupPlan()
	txns := []wal.Txn{
		{ID: 1, CommitTS: 10, Entries: []wal.Entry{entry(99, 1)}},
	}
	if _, err := Dispatch(makeEncoded(t, txns), plan); err == nil {
		t.Fatal("unknown table accepted")
	}
}

func TestDispatchRejectsBadFraming(t *testing.T) {
	plan := twoGroupPlan()
	// COMMIT without BEGIN.
	bad := wal.EncodeStream([]wal.Entry{{Type: wal.TypeCommit, TxnID: 1, Timestamp: 1}})
	_, err := Dispatch(&epoch.Encoded{Buf: bad}, plan)
	if err == nil {
		t.Fatal("unframed COMMIT accepted")
	}
	// DML outside txn.
	bad = wal.EncodeStream([]wal.Entry{entryWithTxn(1, 1)})
	if _, err := Dispatch(&epoch.Encoded{Buf: bad}, plan); err == nil {
		t.Fatal("unframed DML accepted")
	}
	// Stream ends inside txn.
	bad = wal.EncodeStream([]wal.Entry{{Type: wal.TypeBegin, TxnID: 1}})
	if _, err := Dispatch(&epoch.Encoded{Buf: bad}, plan); err == nil {
		t.Fatal("dangling BEGIN accepted")
	}
}

func entryWithTxn(table wal.TableID, txn uint64) wal.Entry {
	e := entry(table, 1)
	e.TxnID = txn
	return e
}

func TestDispatchLargeEpochCommitOrderPreserved(t *testing.T) {
	plan := twoGroupPlan()
	rng := rand.New(rand.NewSource(5))
	var txns []wal.Txn
	for i := 1; i <= 500; i++ {
		txn := wal.Txn{ID: uint64(i), CommitTS: int64(i * 10)}
		for j := 0; j < 1+rng.Intn(4); j++ {
			txn.Entries = append(txn.Entries, entryWithTxnID(wal.TableID(1+rng.Intn(3)), uint64(i)))
		}
		txns = append(txns, txn)
	}
	res, err := Dispatch(makeEncoded(t, txns), plan)
	if err != nil {
		t.Fatal(err)
	}
	for gi, gb := range res.PerGroup {
		if gb == nil {
			continue
		}
		for i := 1; i < len(gb.CommitOrder); i++ {
			if gb.CommitOrder[i] <= gb.CommitOrder[i-1] {
				t.Fatalf("group %d commit order not increasing at %d", gi, i)
			}
		}
		if len(gb.Pieces) != len(gb.CommitOrder) {
			t.Fatalf("group %d: %d pieces, %d commit slots", gi, len(gb.Pieces), len(gb.CommitOrder))
		}
	}
}

func entryWithTxnID(table wal.TableID, txn uint64) wal.Entry {
	e := entry(table, txn)
	e.TxnID = txn
	return e
}

// TestBuffersReuseMatchesFresh replays several distinct epochs through one
// recycled Buffers and checks every result matches a fresh single-use
// dispatch, including after a plan change resizes the group count.
func TestBuffersReuseMatchesFresh(t *testing.T) {
	plan := twoGroupPlan()
	single := grouping.SingleGroup([]wal.TableID{1, 2, 3})
	rng := rand.New(rand.NewSource(42))
	b := NewBuffers()
	for ep := 0; ep < 20; ep++ {
		p := plan
		if ep%5 == 4 {
			p = single // exercise reset across group-count changes
		}
		var txns []wal.Txn
		base := uint64(ep*100 + 1)
		for i := 0; i < 10+rng.Intn(10); i++ {
			id := base + uint64(i)
			txn := wal.Txn{ID: id, CommitTS: int64(id) * 10}
			for k := 0; k < 1+rng.Intn(4); k++ {
				txn.Entries = append(txn.Entries, entry(wal.TableID(1+rng.Intn(3)), rng.Uint64()%1000))
			}
			txns = append(txns, txn)
		}
		enc := makeEncoded(t, txns)

		got, err := b.Dispatch(enc, p)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Dispatch(enc, p)
		if err != nil {
			t.Fatal(err)
		}
		if got.Txns != want.Txns || got.Entries != want.Entries ||
			got.LastTxnID != want.LastTxnID || got.LastCommitTS != want.LastCommitTS {
			t.Fatalf("epoch %d: summary mismatch: %+v vs %+v", ep, got, want)
		}
		for gi := range want.PerGroup {
			wb, gb := want.PerGroup[gi], got.PerGroup[gi]
			if (wb == nil) != (gb == nil) {
				t.Fatalf("epoch %d group %d: touched mismatch", ep, gi)
			}
			if wb == nil {
				continue
			}
			if gb.Bytes != wb.Bytes || gb.Entries != wb.Entries ||
				len(gb.Pieces) != len(wb.Pieces) || len(gb.CommitOrder) != len(wb.CommitOrder) {
				t.Fatalf("epoch %d group %d: batch mismatch: %+v vs %+v", ep, gi, gb, wb)
			}
			for i := range wb.Pieces {
				if gb.CommitOrder[i] != wb.CommitOrder[i] {
					t.Fatalf("epoch %d group %d: commit order diverges at %d", ep, gi, i)
				}
				gp, wp := &gb.Pieces[i], &wb.Pieces[i]
				if gp.TxnID != wp.TxnID || gp.CommitTS != wp.CommitTS ||
					gp.Bytes != wp.Bytes || len(gp.Frames) != len(wp.Frames) {
					t.Fatalf("epoch %d group %d piece %d: %+v vs %+v", ep, gi, i, gp, wp)
				}
			}
		}
	}
}

// TestBuffersSteadyStateAllocs checks a warmed Buffers dispatches without
// allocating.
func TestBuffersSteadyStateAllocs(t *testing.T) {
	plan := twoGroupPlan()
	var txns []wal.Txn
	for i := 1; i <= 50; i++ {
		txns = append(txns, wal.Txn{ID: uint64(i), CommitTS: int64(i) * 10,
			Entries: []wal.Entry{entry(1, uint64(i)), entry(2, uint64(i)), entry(3, uint64(i))}})
	}
	enc := makeEncoded(t, txns)
	b := NewBuffers()
	if _, err := b.Dispatch(enc, plan); err != nil { // warm the backing arrays
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := b.Dispatch(enc, plan); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("steady-state dispatch allocates %.1f objects/epoch, want 0", allocs)
	}
}
