package dispatch

import (
	"testing"

	"aets/internal/grouping"
	"aets/internal/primary"
	"aets/internal/wal"
	"aets/internal/workload"
)

func BenchmarkDispatchTPCC(b *testing.B) {
	gen := workload.NewTPCC(4)
	p := primary.New(gen, 1)
	eps := p.GenerateEncoded(2048, 2048)
	rates := map[wal.TableID]float64{
		workload.TPCCDistrict: 1000, workload.TPCCStock: 1000,
		workload.TPCCCustomer: 1000, workload.TPCCOrder: 1000,
		workload.TPCCOrderLine: 2000,
	}
	plan := grouping.Build(rates, workload.TableIDs(gen.Tables()), grouping.Options{})
	enc := &eps[0]
	b.SetBytes(int64(len(enc.Buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Dispatch(enc, plan); err != nil {
			b.Fatal(err)
		}
	}
}

var benchSink *Result

func BenchmarkDispatchManyGroups(b *testing.B) {
	gen := workload.NewBusTracker()
	p := primary.New(gen, 1)
	eps := p.GenerateEncoded(2048, 2048)
	plan := grouping.Build(gen.Rates(0), workload.TableIDs(gen.Tables()),
		grouping.Options{Eps: 0.3, MinPts: 2})
	enc := &eps[0]
	b.SetBytes(int64(len(enc.Buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Dispatch(enc, plan)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = res
	}
}
