package reference

import (
	"testing"

	"aets/internal/memtable"
	"aets/internal/wal"
)

func twoTxns() []wal.Txn {
	return []wal.Txn{
		{ID: 1, CommitTS: 10, Entries: []wal.Entry{
			{Type: wal.TypeInsert, Table: 1, RowKey: 1, Columns: []wal.Column{{ID: 1, Value: []byte("a")}}},
		}},
		{ID: 2, CommitTS: 20, Entries: []wal.Entry{
			{Type: wal.TypeUpdate, Table: 1, RowKey: 1, Columns: []wal.Column{{ID: 1, Value: []byte("b")}}},
			{Type: wal.TypeDelete, Table: 2, RowKey: 5},
		}},
	}
}

func TestApplyBuildsChains(t *testing.T) {
	mt := memtable.New()
	Apply(mt, twoTxns())
	rec := mt.Table(1).Get(1)
	if rec == nil || rec.ChainLen() != 2 {
		t.Fatalf("chain: %+v", rec)
	}
	if v := rec.Latest(); v.TxnID != 2 || string(v.Columns[0].Value) != "b" {
		t.Fatalf("latest: %+v", v)
	}
	if v := mt.Table(2).Get(5).Latest(); !v.Deleted {
		t.Fatal("delete not applied")
	}
}

func TestEqualDetectsDifferences(t *testing.T) {
	a, b := memtable.New(), memtable.New()
	Apply(a, twoTxns())
	Apply(b, twoTxns())
	tables := []wal.TableID{1, 2}
	if err := Equal(a, b, tables); err != nil {
		t.Fatalf("identical memtables compared unequal: %v", err)
	}

	// Extra version in b.
	b.Table(1).Get(1).Append(&memtable.Version{TxnID: 3, CommitTS: 30})
	if Equal(a, b, tables) == nil {
		t.Fatal("chain-length difference missed")
	}

	// Missing record.
	c := memtable.New()
	Apply(c, twoTxns()[:1])
	if Equal(a, c, tables) == nil {
		t.Fatal("missing record missed")
	}

	// Different value.
	d := memtable.New()
	txns := twoTxns()
	txns[1].Entries[0].Columns[0].Value = []byte("x")
	Apply(d, txns)
	if Equal(a, d, tables) == nil {
		t.Fatal("value difference missed")
	}
}

func TestCheckChains(t *testing.T) {
	mt := memtable.New()
	Apply(mt, twoTxns())
	if err := CheckChains(mt, []wal.TableID{1, 2}); err != nil {
		t.Fatal(err)
	}
	// Force a broken chain.
	mt.Table(1).Get(1).Append(&memtable.Version{TxnID: 1, CommitTS: 5})
	if CheckChains(mt, []wal.TableID{1}) == nil {
		t.Fatal("broken chain not detected")
	}
}
