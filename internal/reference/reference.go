// Package reference provides a trivially correct serial log applier and
// Memtable comparison helpers. The serial applier is the correctness oracle
// for every parallel replayer: after a full drain, each replayer's Memtable
// must be version-for-version equal to the serial result.
package reference

import (
	"bytes"
	"fmt"

	"aets/internal/memtable"
	"aets/internal/wal"
)

// Apply installs the transactions into mt strictly in order, one version
// per DML entry.
func Apply(mt *memtable.Memtable, txns []wal.Txn) {
	for i := range txns {
		t := &txns[i]
		for j := range t.Entries {
			e := &t.Entries[j]
			rec := mt.Table(e.Table).GetOrCreate(e.RowKey)
			rec.Append(&memtable.Version{
				TxnID:    t.ID,
				CommitTS: t.CommitTS,
				Deleted:  e.Type == wal.TypeDelete,
				Columns:  e.Columns,
			})
		}
	}
}

// Equal compares the full version chains of every record in the given
// tables across two Memtables. It returns nil when they are identical.
func Equal(a, b *memtable.Memtable, tables []wal.TableID) error {
	for _, tid := range tables {
		ta, tb := a.Table(tid), b.Table(tid)
		if ta.Len() != tb.Len() {
			return fmt.Errorf("table %d: %d records vs %d", tid, ta.Len(), tb.Len())
		}
		var err error
		ta.Scan(0, ^uint64(0), func(key uint64, ra *memtable.Record) bool {
			rb := tb.Get(key)
			if rb == nil {
				err = fmt.Errorf("table %d key %d: missing in second memtable", tid, key)
				return false
			}
			if err = equalChains(tid, key, ra, rb); err != nil {
				return false
			}
			return true
		})
		if err != nil {
			return err
		}
	}
	return nil
}

func equalChains(tid wal.TableID, key uint64, a, b *memtable.Record) error {
	va, vb := a.Latest(), b.Latest()
	depth := 0
	for va != nil && vb != nil {
		if va.TxnID != vb.TxnID || va.CommitTS != vb.CommitTS || va.Deleted != vb.Deleted {
			return fmt.Errorf("table %d key %d depth %d: version mismatch (txn %d/%d ts %d/%d)",
				tid, key, depth, va.TxnID, vb.TxnID, va.CommitTS, vb.CommitTS)
		}
		if len(va.Columns) != len(vb.Columns) {
			return fmt.Errorf("table %d key %d depth %d: column count %d vs %d",
				tid, key, depth, len(va.Columns), len(vb.Columns))
		}
		for i := range va.Columns {
			if va.Columns[i].ID != vb.Columns[i].ID || !bytes.Equal(va.Columns[i].Value, vb.Columns[i].Value) {
				return fmt.Errorf("table %d key %d depth %d col %d: value mismatch", tid, key, depth, i)
			}
		}
		va, vb = va.Next(), vb.Next()
		depth++
	}
	if va != nil || vb != nil {
		return fmt.Errorf("table %d key %d: chain length differs at depth %d", tid, key, depth)
	}
	return nil
}

// CheckChains verifies that every record's version chain in the given
// tables is strictly ordered newest-first; it returns the first violation.
func CheckChains(mt *memtable.Memtable, tables []wal.TableID) error {
	for _, tid := range tables {
		var err error
		mt.Table(tid).Scan(0, ^uint64(0), func(key uint64, r *memtable.Record) bool {
			if !r.ChainOrdered() {
				err = fmt.Errorf("table %d key %d: version chain out of order", tid, key)
				return false
			}
			return true
		})
		if err != nil {
			return err
		}
	}
	return nil
}
